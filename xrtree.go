// Package xrtree is a Go implementation of the XR-tree (XML Region Tree)
// of Jiang, Lu, Wang and Ooi, "XR-Tree: Indexing XML Data for Efficient
// Structural Joins" (ICDE 2003), together with everything needed to use and
// evaluate it: a paged storage manager with a buffer pool, region encoding
// of XML documents, a B+-tree baseline, the XR-stack structural-join
// algorithm and the baselines it is compared against, synthetic corpus
// generators, and the workloads of the paper's performance study.
//
// The typical flow is:
//
//	store := xrtree.NewMemStore(xrtree.StoreOptions{})
//	defer store.Close()
//	doc, _ := xrtree.ParseXML(file, 1)
//	emps, _ := store.IndexElements(doc.ElementsByTag("employee"), xrtree.IndexOptions{})
//	names, _ := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
//	var stats xrtree.Stats
//	xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, emps, names,
//	    func(a, d xrtree.Element) { fmt.Println(a, d) }, &stats)
package xrtree

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"xrtree/internal/btree"
	"xrtree/internal/bufferpool"
	"xrtree/internal/core"
	"xrtree/internal/elemlist"
	"xrtree/internal/join"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/wal"
	"xrtree/internal/xmldoc"
)

// Element is one region-encoded XML element: see xmldoc.Element.
type Element = xmldoc.Element

// Document is a parsed, region-encoded XML document.
type Document = xmldoc.Document

// Stats carries the cost counters of an operation (elements scanned, page
// misses, I/Os, elapsed time).
type Stats = metrics.Counters

// PoolPolicy selects the buffer-pool replacement policy (StoreOptions).
type PoolPolicy = bufferpool.Policy

// Buffer replacement policies.
const (
	// PoolLRU is strict least-recently-unpinned replacement (default).
	PoolLRU = bufferpool.PolicyLRU
	// Pool2Q is scan-resistant 2Q-style replacement: a probationary FIFO
	// for first-touch pages and a protected LRU for re-referenced ones.
	Pool2Q = bufferpool.Policy2Q
)

// ParsePoolPolicy validates a policy name ("", "lru", "2q").
func ParsePoolPolicy(s string) (PoolPolicy, error) { return bufferpool.ParsePolicy(s) }

// CostModel converts counted page misses and scans into a derived time.
type CostModel = metrics.CostModel

// DefaultCostModel mirrors the paper's observation that elapsed time is
// dominated by page misses.
var DefaultCostModel = metrics.DefaultCostModel

// ParseXML region-encodes the XML document read from r (§2.1).
func ParseXML(r io.Reader, docID uint32) (*Document, error) {
	return xmldoc.Parse(r, xmldoc.ParseOptions{DocID: docID})
}

// ParseOptions configures ParseXMLWithOptions: position gaps, text
// retention, and materializing attributes ("@name") and text runs
// ("#text") as region-encoded nodes, per the paper's tree model.
type ParseOptions = xmldoc.ParseOptions

// ParseXMLWithOptions is ParseXML with full control over the numbering and
// which node kinds are materialized.
func ParseXMLWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	return xmldoc.Parse(r, opts)
}

// DurableCode is the durable (order, size) numbering scheme of §2.1.
type DurableCode = xmldoc.DurableCode

// DietzCode is Dietz's (preorder, postorder) numbering scheme of §2.1.
type DietzCode = xmldoc.DietzCode

// FromDurable converts durably numbered elements to region-encoded
// elements ready for indexing, preserving the ancestor relation exactly.
func FromDurable(docID uint32, codes []DurableCode) ([]Element, error) {
	return xmldoc.FromDurable(docID, codes)
}

// FromDietz converts Dietz-numbered elements to region-encoded elements
// ready for indexing, preserving the ancestor relation exactly.
func FromDietz(docID uint32, codes []DietzCode) ([]Element, error) {
	return xmldoc.FromDietz(docID, codes)
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// PageSize in bytes; a power of two ≥ 256. Default 4096.
	PageSize int
	// BufferPages is the buffer-pool capacity in frames. Default 100, the
	// paper's setting (§6.1).
	BufferPages int
	// PoolShards is the number of lock-striped buffer-pool partitions
	// (rounded to a power of two). 0 selects a capacity-based heuristic:
	// 1 shard for small pools (preserving exact global LRU), up to 8 with
	// at least 16 frames each. See DESIGN.md "Concurrency".
	PoolShards int
	// PoolPolicy selects the buffer replacement policy: PolicyLRU (the
	// default, paper-faithful) or Policy2Q (scan-resistant; see DESIGN.md
	// "Storage performance").
	PoolPolicy PoolPolicy
	// Prefetch starts the pool's asynchronous readahead workers: iterators
	// publish next-page hints and the workers pull the pages in with
	// coalesced vectored reads, without pinning them.
	Prefetch bool
	// Tracer, when non-nil, receives structured trace events (page I/O,
	// index descents, skips, output batches) from every operation on the
	// store. Equivalent to calling SetTracer after creation.
	Tracer Tracer
	// WAL enables write-ahead logging on a file-backed store: every
	// Insert/Delete commits durably (group-committed fsync) before
	// returning, and OpenStore redoes the log after a crash. See
	// DESIGN.md "Durability & recovery".
	WAL bool
	// WALDir is the log directory; default "<store path>.wal".
	WALDir string
	// WALSegmentBytes rotates log segments past this size (default 1 MiB).
	WALSegmentBytes int64
	// WALCheckpointBytes triggers a fuzzy checkpoint once this many log
	// bytes accumulate (default 4 MiB).
	WALCheckpointBytes int64
	// WALFS substitutes the filesystem the log writes through; nil means
	// the OS. The crash-injection harness uses it to kill the log
	// mid-write.
	WALFS WALFS
}

// Store owns one paged file and its buffer pool; all indexes built through
// it share both, so experiment costs are observed the way the paper's
// storage manager observes them.
type Store struct {
	file *pagefile.File
	pool *bufferpool.Pool
	// tracer is the store's default tracer, restored when an AttachStats
	// sink with its own tracer detaches.
	tracer Tracer
	// wal is the write-ahead log, nil unless StoreOptions.WAL (see
	// durability.go); recovery is the report of the open-time redo pass.
	wal      *wal.Log
	recovery *RecoveryReport
}

func newStore(file *pagefile.File, opts StoreOptions) (*Store, error) {
	frames := opts.BufferPages
	if frames == 0 {
		frames = bufferpool.DefaultFrames
	}
	pool, err := bufferpool.NewWithConfig(file, bufferpool.Config{
		Capacity: frames,
		Shards:   opts.PoolShards,
		Policy:   opts.PoolPolicy,
		Prefetch: opts.Prefetch,
	})
	if err != nil {
		file.Close()
		return nil, err
	}
	s := &Store{file: file, pool: pool, tracer: opts.Tracer}
	if opts.Tracer != nil {
		file.SetTracer(opts.Tracer)
	}
	if file.NumPages() == 1 {
		// Fresh file: reserve page 1 as the catalog head before anything
		// else is allocated (see catalog.go).
		id, data, err := pool.FetchNew()
		if err != nil {
			file.Close()
			return nil, err
		}
		putCatU32(data[catOffMagic:], catMagic)
		putCatU32(data[catOffNext:], uint32(pagefile.InvalidPage))
		putCatU16(data[catOffCount:], 0)
		if err := pool.Unpin(id, true); err != nil {
			file.Close()
			return nil, err
		}
	}
	return s, nil
}

// CreateStore creates a store backed by a new file at path.
func CreateStore(path string, opts StoreOptions) (*Store, error) {
	file, err := pagefile.Create(path, pagefile.Options{PageSize: opts.PageSize})
	if err != nil {
		return nil, err
	}
	s, err := newStore(file, opts)
	if err != nil || !opts.WAL {
		return s, err
	}
	if err := s.startWAL(path, opts, 0); err != nil {
		s.Close()
		return nil, fmt.Errorf("xrtree: start log: %w", err)
	}
	return s, nil
}

// NewMemStore creates a store backed by memory — identical behavior and
// cost accounting, no filesystem.
func NewMemStore(opts StoreOptions) (*Store, error) {
	if opts.WAL {
		return nil, errors.New("xrtree: WAL requires a file-backed store")
	}
	return newStore(pagefile.NewMem(pagefile.Options{PageSize: opts.PageSize}), opts)
}

// Close stops the pool's background workers, then flushes and closes the
// underlying file. With a WAL attached it also fsyncs the page file and
// writes a clean-shutdown record, so the next open skips redo and keeps
// the free list.
func (s *Store) Close() error {
	s.pool.Close()
	if err := s.pool.FlushAll(); err != nil {
		if s.wal != nil {
			s.wal.Abandon()
		}
		s.file.Close()
		return err
	}
	if s.wal != nil {
		if err := s.file.Sync(); err != nil {
			s.wal.Abandon()
			s.file.Close()
			return err
		}
		if err := s.wal.CloseClean(); err != nil {
			s.file.Close()
			return err
		}
	}
	return s.file.Close()
}

// DropCache evicts all clean pages from the buffer pool, cold-starting the
// next measurement deterministically.
func (s *Store) DropCache() error { return s.pool.DropClean() }

// AttachStats directs buffer-pool hit/miss accounting to st (nil detaches).
// When st carries a Tracer, physical-I/O events are routed to it for the
// duration of the attachment; detaching restores the store's own tracer.
func (s *Store) AttachStats(st *Stats) {
	s.pool.SetSink(st)
	if st != nil && st.Tracer != nil {
		s.file.SetTracer(st.Tracer)
	} else {
		s.file.SetTracer(s.tracer)
	}
}

// PoolStats returns the buffer pool's cumulative counters.
func (s *Store) PoolStats() Stats { return s.pool.Stats() }

// PinnedPages returns the number of buffer-pool frames currently pinned.
// A quiesced store reports 0; the serving layer exposes this so load tests
// can assert that canceled queries leak no pins.
func (s *Store) PinnedPages() int { return s.pool.PinnedCount() }

// FileStats returns the paged file's physical I/O counters.
func (s *Store) FileStats() Stats { return s.file.Stats() }

// IndexOptions selects which access paths IndexElements builds.
type IndexOptions struct {
	// SkipList, SkipBTree, SkipXRTree drop the respective access path;
	// by default all three are built so every algorithm can run.
	SkipList   bool
	SkipBTree  bool
	SkipXRTree bool
	// Fill is the bulk-load page occupancy in (0,1]; 0 means packed.
	Fill float64
	// InsertBuild builds the XR-tree by repeated insertion instead of bulk
	// loading (exercises the dynamic maintenance path of §4).
	InsertBuild bool
	// DisableKeyChoice turns off the §3.2 separator optimization (ablation).
	DisableKeyChoice bool
}

// ElementSet is one indexed element set: the operand of structural joins.
type ElementSet struct {
	store *Store
	els   []Element

	list *elemlist.List
	bt   *btree.Tree
	xr   *core.Tree

	// sib caches the containment sibling table for the B+sp variant,
	// built once (safe under concurrent joins).
	sibOnce sync.Once
	sib     join.SiblingTable
}

// siblingSource lazily builds the B+sp sibling pointers over the set.
func (e *ElementSet) siblingSource() (join.SiblingListSource, error) {
	e.sibOnce.Do(func() { e.sib = join.BuildSiblingTable(e.els) })
	return join.SiblingListSource{L: e.list, Sib: e.sib}, nil
}

// ErrNoAccessPath is returned when a join algorithm needs an access path
// the set was built without.
var ErrNoAccessPath = errors.New("xrtree: element set lacks the required access path")

// IndexElements stores es (start-sorted, one document) and builds the
// requested access paths over it.
func (s *Store) IndexElements(es []Element, opts IndexOptions) (*ElementSet, error) {
	if len(es) == 0 {
		return nil, errors.New("xrtree: empty element set")
	}
	set := &ElementSet{store: s, els: es}
	var err error
	if !opts.SkipList {
		if set.list, err = elemlist.Build(s.pool, es); err != nil {
			return nil, fmt.Errorf("xrtree: element list: %w", err)
		}
	}
	if !opts.SkipBTree {
		if set.bt, err = btree.New(s.pool, es[0].DocID); err != nil {
			return nil, err
		}
		if err := set.bt.BulkLoad(es, opts.Fill); err != nil {
			return nil, fmt.Errorf("xrtree: B+-tree build: %w", err)
		}
	}
	if !opts.SkipXRTree {
		if set.xr, err = core.New(s.pool, es[0].DocID, core.Options{DisableKeyChoice: opts.DisableKeyChoice}); err != nil {
			return nil, err
		}
		if opts.InsertBuild {
			for _, e := range es {
				if err := set.xr.Insert(e); err != nil {
					return nil, fmt.Errorf("xrtree: XR-tree insert: %w", err)
				}
			}
		} else if err := set.xr.BulkLoad(es, opts.Fill); err != nil {
			return nil, fmt.Errorf("xrtree: XR-tree build: %w", err)
		}
	}
	return set, nil
}

// Len returns the number of elements in the set.
func (e *ElementSet) Len() int { return len(e.els) }

// Elements returns the underlying start-sorted element slice (shared; do
// not modify).
func (e *ElementSet) Elements() []Element { return e.els }

// List exposes the set's paged element list — the sequential access path
// the no-index algorithms scan. Its iterator publishes windowed readahead
// hints when the store runs with StoreOptions.Prefetch.
func (e *ElementSet) List() (*elemlist.List, error) {
	if e.list == nil {
		return nil, ErrNoAccessPath
	}
	return e.list, nil
}

// BTree exposes the set's B+-tree baseline for direct use of its lookup,
// scan, and update operations.
func (e *ElementSet) BTree() (*btree.Tree, error) {
	if e.bt == nil {
		return nil, ErrNoAccessPath
	}
	return e.bt, nil
}

// XRTree exposes the set's XR-tree for direct use of the §5.1 operations
// (FindAncestors, FindDescendants, FindParent, FindChildren) and the §4
// update operations (Insert, Delete).
func (e *ElementSet) XRTree() (*core.Tree, error) {
	if e.xr == nil {
		return nil, ErrNoAccessPath
	}
	return e.xr, nil
}

// FindAncestors returns the set elements that are strict ancestors of a
// region starting at sd, using the XR-tree (Algorithm 4, Theorem 4).
func (e *ElementSet) FindAncestors(sd uint32, st *Stats) ([]Element, error) {
	if e.xr == nil {
		return nil, ErrNoAccessPath
	}
	return e.xr.FindAncestors(sd, 0, st)
}

// FindDescendants returns the set elements strictly inside (sa, ea), using
// the XR-tree backbone (Algorithm 3, Theorem 3).
func (e *ElementSet) FindDescendants(sa, ea uint32, st *Stats) ([]Element, error) {
	if e.xr == nil {
		return nil, ErrNoAccessPath
	}
	return e.xr.FindDescendants(sa, ea, st)
}

// StabStats returns the XR-tree's stab-list footprint: elements held in
// stab lists and stab pages allocated (§3.3).
func (e *ElementSet) StabStats() (elements, pages int, err error) {
	if e.xr == nil {
		return 0, 0, ErrNoAccessPath
	}
	elements, pages = e.xr.StabStats()
	return elements, pages, nil
}

// Algorithm names a structural-join algorithm of §6.1 Table 1.
type Algorithm int

// The four algorithms of the performance study (plus MPMGJN).
const (
	// AlgNoIndex is Stack-Tree-Desc over plain sorted lists ("no-index").
	AlgNoIndex Algorithm = iota
	// AlgMPMGJN is the multi-predicate merge join baseline.
	AlgMPMGJN
	// AlgBPlus is Anc_Des_B+ over B+-tree indexed inputs ("B+").
	AlgBPlus
	// AlgBPlusSP is the sibling-pointer variant of B+ ("B+sp") — the paper
	// measured it, found it "similar to B+", and omitted the results;
	// BenchmarkBPlusSP reproduces that finding.
	AlgBPlusSP
	// AlgXRStack is Algorithm 6 over XR-tree indexed inputs ("XR-stack").
	AlgXRStack
)

// String returns the paper's notation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgNoIndex:
		return "no-index"
	case AlgMPMGJN:
		return "MPMGJN"
	case AlgBPlus:
		return "B+"
	case AlgBPlusSP:
		return "B+sp"
	case AlgXRStack:
		return "XR-stack"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the algorithms the paper's tables present, in order.
var Algorithms = []Algorithm{AlgNoIndex, AlgBPlus, AlgXRStack}

// Mode selects ancestor-descendant ("//") or parent-child ("/") semantics.
type Mode = join.Mode

// Join relationship modes.
const (
	AncestorDescendant = join.AncestorDescendant
	ParentChild        = join.ParentChild
)

// EmitFunc receives result pairs from Join.
type EmitFunc = join.EmitFunc

// Pair is a materialized join result.
type Pair = join.Pair

// Join runs the structural join between ancestor set a and descendant set d
// with the chosen algorithm, streaming result pairs to emit and accounting
// costs into st (both may be nil).
func Join(alg Algorithm, mode Mode, a, d *ElementSet, emit EmitFunc, st *Stats) error {
	if emit == nil {
		emit = func(Element, Element) {}
	}
	switch alg {
	case AlgNoIndex:
		if a.list == nil || d.list == nil {
			return ErrNoAccessPath
		}
		return join.StackTreeDesc(mode, join.ListSource{L: a.list}, join.ListSource{L: d.list}, emit, st)
	case AlgMPMGJN:
		if a.list == nil || d.list == nil {
			return ErrNoAccessPath
		}
		return join.MPMGJN(mode, join.ListSource{L: a.list}, join.ListSource{L: d.list}, emit, st)
	case AlgBPlus:
		if a.bt == nil || d.bt == nil {
			return ErrNoAccessPath
		}
		return join.BPlus(mode, join.BTreeSource{T: a.bt}, join.BTreeSource{T: d.bt}, emit, st)
	case AlgBPlusSP:
		if a.list == nil || d.bt == nil {
			return ErrNoAccessPath
		}
		src, err := a.siblingSource()
		if err != nil {
			return err
		}
		return join.BPlusSP(mode, src, join.BTreeSource{T: d.bt}, emit, st)
	case AlgXRStack:
		if a.xr == nil || d.xr == nil {
			return ErrNoAccessPath
		}
		return join.XRStack(mode, join.XRTreeSource{T: a.xr}, join.XRTreeSource{T: d.xr}, emit, st)
	default:
		return fmt.Errorf("xrtree: unknown algorithm %d", alg)
	}
}

// withCtx attaches ctx to st for the duration of fn, restoring the prior
// context afterward; a nil st gets a local scratch counter set. The context
// rides inside the counters (like the Tracer) so cancellation reaches every
// layer without changing the internal call signatures.
func withCtx(ctx context.Context, st *Stats, fn func(st *Stats) error) error {
	var local Stats
	if st == nil {
		st = &local
	}
	prev := st.Ctx
	st.Ctx = ctx
	defer func() { st.Ctx = prev }()
	return fn(st)
}

// JoinContext is Join with cancellation: when ctx is canceled or its
// deadline passes, the join stops at its next poll point — a page boundary
// of an index or list scan, or a fixed element stride — releasing every
// page pin on the way out, and returns ctx's error (context.Canceled or
// context.DeadlineExceeded).
func JoinContext(ctx context.Context, alg Algorithm, mode Mode, a, d *ElementSet, emit EmitFunc, st *Stats) error {
	return withCtx(ctx, st, func(st *Stats) error { return Join(alg, mode, a, d, emit, st) })
}

// JoinPairs is Join materialized into a slice, for small inputs and tests.
func JoinPairs(alg Algorithm, mode Mode, a, d *ElementSet, st *Stats) ([]Pair, error) {
	var out []Pair
	err := Join(alg, mode, a, d, join.Collect(&out), st)
	return out, err
}
