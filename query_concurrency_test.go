package xrtree_test

import (
	"sync"
	"testing"

	"xrtree"
)

// TestConcurrentSetBuildsOnce hammers IndexedDocument.Set from many
// goroutines: lazy index construction must be serialized (no racing map
// writes, no double builds through the shared buffer pool) and every
// caller for one tag must get the same *ElementSet. Run under -race this
// also covers the lazy ElementsByTag cache inside Document, which the
// builders hit concurrently.
func TestConcurrentSetBuildsOnce(t *testing.T) {
	idx := indexedDoc(t, queryXML)
	tags := append(idx.Document().Tags(), "*", "nosuch")

	const callers = 8
	got := make([][]*xrtree.ElementSet, len(tags))
	for i := range got {
		got[i] = make([]*xrtree.ElementSet, callers)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(tags)*callers)
	for ti, tag := range tags {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(ti, c int, tag string) {
				defer wg.Done()
				set, err := idx.Set(tag)
				if err != nil {
					errs <- err
					return
				}
				got[ti][c] = set
			}(ti, c, tag)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for ti, tag := range tags {
		for c := 1; c < callers; c++ {
			if got[ti][c] != got[ti][0] {
				t.Fatalf("Set(%q): caller %d got a different set than caller 0 — built more than once", tag, c)
			}
		}
		if tag == "nosuch" && got[ti][0] != nil {
			t.Fatalf("Set(%q) = %v, want nil for an absent tag", tag, got[ti][0])
		}
	}
}

// TestConcurrentQueries runs full path queries from many goroutines over
// one IndexedDocument; results must match the single-threaded answer and
// the run must be race-clean.
func TestConcurrentQueries(t *testing.T) {
	idx := indexedDoc(t, queryXML)
	want, err := idx.Query("department//name", nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := idx.Query("department//name", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("got %d matches, want %d", len(got), len(want))
			}
		}()
	}
	wg.Wait()
}
