package xrtree_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"xrtree"
)

// TestBenchReportRoundTrip builds a tiny report, serializes it, and parses
// it back — the guarantee external tooling depends on.
func TestBenchReportRoundTrip(t *testing.T) {
	rep, err := xrtree.BuildBenchReport(xrtree.ExperimentConfig{
		Seed:  7,
		Scale: 0.05,
		Sweep: []float64{0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != xrtree.BenchSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Sweeps) == 0 {
		t.Fatal("no sweeps in report")
	}
	experiments := map[string]bool{}
	for _, sw := range rep.Sweeps {
		experiments[sw.Experiment] = true
		for _, p := range sw.Points {
			if len(p.Algorithms) == 0 {
				t.Fatalf("%s/%s point %s has no algorithms", sw.Experiment, sw.Corpus, p.Label)
			}
			for _, alg := range p.Algorithms {
				if alg.Phases == nil || alg.Events == nil {
					t.Errorf("%s %s: observability fields missing", sw.Experiment, alg.Alg)
				}
				if alg.OutputPairs != int64(p.Pairs) {
					t.Errorf("%s %s: %d pairs, workload says %d", sw.Experiment, alg.Alg, alg.OutputPairs, p.Pairs)
				}
			}
		}
	}
	for _, want := range []string{"ancestor-selectivity", "descendant-selectivity", "both-selectivity"} {
		if !experiments[want] {
			t.Errorf("missing experiment %q", want)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back xrtree.BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != rep.Schema || back.Seed != rep.Seed || len(back.Sweeps) != len(rep.Sweeps) {
		t.Errorf("round-trip mismatch: %+v vs %+v", back.Schema, rep.Schema)
	}
	// Spot-check a nested numeric field survives.
	a0 := rep.Sweeps[0].Points[0].Algorithms
	b0 := back.Sweeps[0].Points[0].Algorithms
	if len(a0) != len(b0) || a0[0].ElementsScanned != b0[0].ElementsScanned {
		t.Error("nested algorithm data does not round-trip")
	}
}
