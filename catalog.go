package xrtree

// Store persistence: a catalog maps set names to the on-disk handles of
// their access paths (element-list head, B+-tree meta page, XR-tree meta
// page) so a disk-backed store can be closed and reopened with every index
// intact — what a downstream user needs to adopt the library beyond a
// single process lifetime.
//
// The catalog lives in a page chain whose head is always the first page
// allocated in the file (page 1, created by CreateStore before anything
// else), serialized as:
//
//	0:  magic    u32 — identifies a catalog page
//	4:  next     u32 — next catalog page (InvalidPage at end)
//	8:  count    u16 — entries on this page
//	10: entries — each:
//	    nameLen u16 | name … | docID u32 | elems u32 |
//	    listHead u32 | listPages u32 | btMeta u32 | xrMeta u32
//
// Handles that are zero mean the access path was not built for that set.

import (
	"errors"
	"fmt"

	"xrtree/internal/btree"
	"xrtree/internal/core"
	"xrtree/internal/elemlist"
	"xrtree/internal/pagefile"
	"xrtree/internal/wal"
)

const (
	catMagic    = 0x58524341 // "XRCA"
	catOffMagic = 0
	catOffNext  = 4
	catOffCount = 8
	catHeader   = 10
	catEntryFix = 2 + 4 + 4 + 4 + 4 + 4 + 4 // fixed bytes besides the name
)

// ErrNoCatalog is returned by OpenStore on files without a catalog page.
var ErrNoCatalog = errors.New("xrtree: store has no catalog (created before SaveSet?)")

// ErrUnknownSet is returned when opening a set name the catalog lacks.
var ErrUnknownSet = errors.New("xrtree: set not in catalog")

// catEntry is one persisted set.
type catEntry struct {
	name      string
	docID     uint32
	elems     uint32
	listHead  pagefile.PageID
	listPages uint32
	btMeta    pagefile.PageID
	xrMeta    pagefile.PageID
}

func (e catEntry) size() int { return catEntryFix + len(e.name) }

// SaveSet records the element set under a name in the store's catalog so
// OpenSet can reattach to it after reopening the store file. The store must
// have been created with CreateStore (memory stores persist nothing beyond
// the process, though SaveSet still works for symmetry).
func (s *Store) SaveSet(name string, set *ElementSet) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("xrtree: invalid set name %q", name)
	}
	entries, err := s.readCatalog()
	if err != nil && !errors.Is(err, ErrNoCatalog) {
		return err
	}
	e := catEntry{
		name:  name,
		docID: set.els[0].DocID,
		elems: uint32(len(set.els)),
	}
	if set.list != nil {
		e.listHead = set.list.Head()
		e.listPages = uint32(set.list.Pages())
	}
	if set.bt != nil {
		e.btMeta = set.bt.Meta()
	}
	if set.xr != nil {
		e.xrMeta = set.xr.Meta()
	}
	replaced := false
	for i := range entries {
		if entries[i].name == name {
			entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, e)
	}
	// The catalog pages are written unlogged, like the bulk-built trees
	// they point to; the flush-fsync-checkpoint below is the durability
	// point for both.
	s.pool.BeginUnlogged()
	err = s.writeCatalog(entries)
	s.pool.EndUnlogged()
	if err != nil {
		return err
	}
	return s.syncDurable()
}

// SetNames lists the names saved in the catalog.
func (s *Store) SetNames() ([]string, error) {
	entries, err := s.readCatalog()
	if err != nil {
		if errors.Is(err, ErrNoCatalog) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.name
	}
	return names, nil
}

// OpenSet reattaches to a set previously recorded with SaveSet.
func (s *Store) OpenSet(name string) (*ElementSet, error) {
	entries, err := s.readCatalog()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.name != name {
			continue
		}
		set := &ElementSet{store: s}
		if e.listHead != pagefile.InvalidPage {
			l, err := elemlist.Open(s.pool, e.listHead, int(e.elems), int(e.listPages), e.docID)
			if err != nil {
				return nil, fmt.Errorf("xrtree: set %q list: %w", name, err)
			}
			set.list = l
		}
		if e.btMeta != pagefile.InvalidPage {
			bt, err := btree.Open(s.pool, e.btMeta)
			if err != nil {
				return nil, fmt.Errorf("xrtree: set %q B+-tree: %w", name, err)
			}
			set.bt = bt
		}
		if e.xrMeta != pagefile.InvalidPage {
			xr, err := core.Open(s.pool, e.xrMeta, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("xrtree: set %q XR-tree: %w", name, err)
			}
			set.xr = xr
		}
		set.els, err = s.materialize(set, int(e.elems))
		if err != nil {
			return nil, err
		}
		return set, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownSet, name)
}

// materialize rebuilds the in-memory element slice from the set's cheapest
// access path (used by workload derivation and Elements()).
func (s *Store) materialize(set *ElementSet, n int) ([]Element, error) {
	out := make([]Element, 0, n)
	if set.list != nil {
		it := set.list.Scan(nil)
		defer it.Close()
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, e)
		}
		return out, it.Err()
	}
	if set.xr != nil {
		it, err := set.xr.Scan(nil)
		if err != nil {
			return nil, err
		}
		defer it.Close()
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, e)
		}
		return out, it.Err()
	}
	if set.bt != nil {
		it, err := set.bt.Scan(nil)
		if err != nil {
			return nil, err
		}
		defer it.Close()
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, e)
		}
		return out, it.Err()
	}
	return nil, errors.New("xrtree: catalog entry has no access paths")
}

// catalogHead returns the id of the catalog head page. Stores created by
// this package allocate it as the file's first page (page 1) before any
// index page, and it carries a magic value so foreign files are rejected.
func (s *Store) catalogHead() (pagefile.PageID, error) {
	if s.file.NumPages() <= 1 {
		return pagefile.InvalidPage, ErrNoCatalog
	}
	head := pagefile.PageID(1)
	data, err := s.pool.Fetch(head)
	if err != nil {
		return pagefile.InvalidPage, err
	}
	ok := getCatU32(data[catOffMagic:]) == catMagic
	if err := s.pool.Unpin(head, false); err != nil {
		return pagefile.InvalidPage, err
	}
	if !ok {
		return pagefile.InvalidPage, ErrNoCatalog
	}
	return head, nil
}

func (s *Store) readCatalog() ([]catEntry, error) {
	head, err := s.catalogHead()
	if err != nil {
		return nil, err
	}
	var entries []catEntry
	p := head
	for p != pagefile.InvalidPage {
		data, err := s.pool.Fetch(p)
		if err != nil {
			return nil, err
		}
		n := int(getCatU16(data[catOffCount:]))
		off := catHeader
		ok := true
		for i := 0; i < n; i++ {
			if off+2 > len(data) {
				ok = false
				break
			}
			nameLen := int(getCatU16(data[off:]))
			off += 2
			if off+nameLen+catEntryFix-2 > len(data) {
				ok = false
				break
			}
			e := catEntry{name: string(data[off : off+nameLen])}
			off += nameLen
			e.docID = getCatU32(data[off:])
			e.elems = getCatU32(data[off+4:])
			e.listHead = pagefile.PageID(getCatU32(data[off+8:]))
			e.listPages = getCatU32(data[off+12:])
			e.btMeta = pagefile.PageID(getCatU32(data[off+16:]))
			e.xrMeta = pagefile.PageID(getCatU32(data[off+20:]))
			off += 24
			entries = append(entries, e)
		}
		next := pagefile.PageID(getCatU32(data[catOffNext:]))
		if uerr := s.pool.Unpin(p, false); uerr != nil {
			return nil, uerr
		}
		if !ok {
			return nil, fmt.Errorf("xrtree: corrupt catalog page %d", p)
		}
		p = next
	}
	return entries, nil
}

func (s *Store) writeCatalog(entries []catEntry) error {
	head, err := s.catalogHead()
	if err != nil {
		return err
	}
	p := head
	i := 0
	prev := pagefile.InvalidPage
	_ = prev
	for {
		data, err := s.pool.Fetch(p)
		if err != nil {
			return err
		}
		off := catHeader
		n := 0
		for i < len(entries) && off+entries[i].size() <= len(data) {
			e := entries[i]
			putCatU16(data[off:], uint16(len(e.name)))
			off += 2
			copy(data[off:], e.name)
			off += len(e.name)
			putCatU32(data[off:], e.docID)
			putCatU32(data[off+4:], e.elems)
			putCatU32(data[off+8:], uint32(e.listHead))
			putCatU32(data[off+12:], e.listPages)
			putCatU32(data[off+16:], uint32(e.btMeta))
			putCatU32(data[off+20:], uint32(e.xrMeta))
			off += 24
			n++
			i++
		}
		putCatU16(data[catOffCount:], uint16(n))
		next := pagefile.PageID(getCatU32(data[catOffNext:]))
		if i < len(entries) && next == pagefile.InvalidPage {
			// Grow the chain.
			nid, ndata, err := s.pool.FetchNew()
			if err != nil {
				s.pool.Unpin(p, true)
				return err
			}
			putCatU32(ndata[catOffMagic:], catMagic)
			putCatU32(ndata[catOffNext:], uint32(pagefile.InvalidPage))
			putCatU16(ndata[catOffCount:], 0)
			if err := s.pool.Unpin(nid, true); err != nil {
				s.pool.Unpin(p, true)
				return err
			}
			putCatU32(data[catOffNext:], uint32(nid))
			next = nid
		}
		if err := s.pool.Unpin(p, true); err != nil {
			return err
		}
		if i >= len(entries) {
			// Clear any trailing pages' counts.
			for next != pagefile.InvalidPage {
				data, err := s.pool.Fetch(next)
				if err != nil {
					return err
				}
				putCatU16(data[catOffCount:], 0)
				nn := pagefile.PageID(getCatU32(data[catOffNext:]))
				if err := s.pool.Unpin(next, true); err != nil {
					return err
				}
				next = nn
			}
			return nil
		}
		p = next
	}
}

// OpenStore reopens a store file created by CreateStore, with its catalog.
// With StoreOptions.WAL it first runs crash recovery: the page file's
// physical tail is repaired and every committed transaction in the log is
// redone (see Recovery for the report). Without it, a store that needs
// recovery — torn page-file tail, or a log directory left by a WAL-enabled
// run — fails with ErrRecoveryNeeded instead of opening silently.
func OpenStore(path string, opts StoreOptions) (*Store, error) {
	if opts.WAL {
		return openStoreWAL(path, opts)
	}
	if hasWAL(path, opts) {
		// A cleanly closed log means the page file is fully in sync, so a
		// plain open is safe; anything else demands recovery.
		clean, err := wal.CleanlyClosed(opts.WALFS, walDir(path, opts))
		if err != nil {
			return nil, err
		}
		if !clean {
			return nil, fmt.Errorf("%w: log segments exist at %s", ErrRecoveryNeeded, walDir(path, opts))
		}
	}
	file, err := pagefile.Open(path)
	if err != nil {
		if errors.Is(err, pagefile.ErrTornTail) {
			return nil, fmt.Errorf("%w: %v", ErrRecoveryNeeded, err)
		}
		return nil, err
	}
	return newStore(file, opts)
}

func putCatU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getCatU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putCatU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getCatU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
