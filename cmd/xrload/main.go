// Command xrload parses an XML document, region-encodes it, and builds the
// three access paths (paged list, B+-tree, XR-tree) over the requested tag
// sets in a store file, reporting index sizes and stab-list statistics.
//
// Usage:
//
//	xrload -in dept.xml -store dept.db -tags employee,name
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"xrtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrload: ")
	var (
		in       = flag.String("in", "", "input XML file (required unless -verify)")
		storeArg = flag.String("store", "", "store file to create (default: in-memory, stats only)")
		tags     = flag.String("tags", "", "comma-separated tags to index (default: all tags)")
		pageSize = flag.Int("pagesize", 4096, "page size in bytes")
		buffers  = flag.Int("buffers", 100, "buffer pool pages")
		verify   = flag.String("verify", "", "verify an existing store: check every catalogued XR-tree's invariants")
	)
	flag.Parse()
	if *verify != "" {
		verifyStore(*verify)
		return
	}
	if *in == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	doc, err := xrtree.ParseXML(f, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d elements, max position %d\n", doc.NumElements(), doc.MaxPosition())

	var store *xrtree.Store
	opts := xrtree.StoreOptions{PageSize: *pageSize, BufferPages: *buffers}
	if *storeArg != "" {
		store, err = xrtree.CreateStore(*storeArg, opts)
	} else {
		store, err = xrtree.NewMemStore(opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	tagList := doc.Tags()
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	for _, tag := range tagList {
		els := doc.ElementsByTag(tag)
		if len(els) == 0 {
			fmt.Printf("%-14s no elements, skipped\n", tag)
			continue
		}
		set, err := store.IndexElements(els, xrtree.IndexOptions{})
		if err != nil {
			log.Fatalf("indexing %s: %v", tag, err)
		}
		if *storeArg != "" {
			if err := store.SaveSet(tag, set); err != nil {
				log.Fatalf("cataloging %s: %v", tag, err)
			}
		}
		entries, pages, err := set.StabStats()
		if err != nil {
			log.Fatal(err)
		}
		xr, err := set.XRTree()
		if err != nil {
			log.Fatal(err)
		}
		space, err := xr.Space()
		if err != nil {
			log.Fatal(err)
		}
		nest, err := xr.MaxNesting()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7d elements  height=%d  leaves=%d  nesting=%d  stab: %d entries / %d pages (avg %.2f, max %d per node)\n",
			tag, set.Len(), xr.Height(), space.LeafPages, nest, entries, pages,
			space.AvgStabPages(), space.MaxStabPages)
	}
	st := store.FileStats()
	fmt.Printf("physical I/O: %d reads, %d writes\n", st.PhysicalReads, st.PhysicalWrites)
}

// verifyStore reopens a catalogued store and runs the full Definition 4
// invariant checker over every persisted XR-tree.
func verifyStore(path string) {
	store, err := xrtree.OpenStore(path, xrtree.StoreOptions{BufferPages: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	names, err := store.SetNames()
	if err != nil {
		log.Fatal(err)
	}
	if len(names) == 0 {
		log.Fatal("store has no catalogued sets")
	}
	bad := 0
	for _, name := range names {
		set, err := store.OpenSet(name)
		if err != nil {
			log.Fatalf("open %q: %v", name, err)
		}
		xr, err := set.XRTree()
		if err != nil {
			fmt.Printf("%-14s no XR-tree (skipped)\n", name)
			continue
		}
		if err := xr.CheckInvariants(); err != nil {
			fmt.Printf("%-14s FAILED: %v\n", name, err)
			bad++
			continue
		}
		entries, pages := xr.StabStats()
		fmt.Printf("%-14s OK: %d elements, height %d, %d stab entries / %d pages\n",
			name, xr.Len(), xr.Height(), entries, pages)
	}
	if bad > 0 {
		log.Fatalf("%d set(s) failed verification", bad)
	}
}
