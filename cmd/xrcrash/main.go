// Command xrcrash is the crash-recovery gate run by CI (`make
// crash-smoke`): it kills a WAL-enabled store's log at randomized byte
// offsets mid-workload, reopens through recovery, and verifies that every
// acknowledged transaction survived and every index invariant (Definition
// 4, B+-tree ordering) holds. A final phase hammers one store with
// concurrent writers and asserts the group-commit signature, fsyncs <
// commits.
//
// Usage:
//
//	xrcrash [-n 30] [-ops 200] [-seed 1] [-writers 8] [-wops 100] [-v]
//
// Exit status 0 means every crash recovered clean.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"xrtree/internal/wal/crashtest"
)

func main() {
	var (
		n       = flag.Int("n", 30, "randomized kill points to test")
		ops     = flag.Int("ops", 200, "insert/delete transactions per run")
		seed    = flag.Int64("seed", 1, "base random seed")
		writers = flag.Int("writers", 8, "concurrent writers in the group-commit phase")
		wops    = flag.Int("wops", 100, "inserts per writer in the group-commit phase")
		verbose = flag.Bool("v", false, "print every run")
	)
	flag.Parse()

	root, err := os.MkdirTemp("", "xrcrash")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(root)

	// Probe run: no crash, clean close. Measures the log size so kill
	// points cover the whole byte range the workload writes, and checks
	// the clean-shutdown path itself.
	probeDir := filepath.Join(root, "probe")
	if err := os.Mkdir(probeDir, 0o755); err != nil {
		fatal(err)
	}
	probe, err := crashtest.Run(probeDir, crashtest.Config{Seed: *seed, Ops: *ops})
	if err != nil {
		fatal(fmt.Errorf("probe run: %w", err))
	}
	if probe.LogBytes == 0 {
		fatal(fmt.Errorf("probe run wrote no log bytes"))
	}
	fmt.Printf("probe: %d transactions, %d log bytes, clean close honored\n",
		probe.Committed, probe.LogBytes)

	// Crash runs: kill the log at a random offset, recover, verify.
	rng := rand.New(rand.NewSource(*seed))
	fired := 0
	for i := 0; i < *n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("run%03d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			fatal(err)
		}
		cfg := crashtest.Config{
			Seed:      *seed + int64(i) + 1,
			Ops:       *ops,
			KillAfter: 1 + rng.Int63n(probe.LogBytes),
		}
		res, err := crashtest.Run(dir, cfg)
		if err != nil {
			fatal(fmt.Errorf("run %d (seed %d, kill %d): %w", i, cfg.Seed, cfg.KillAfter, err))
		}
		if res.Crashed {
			fired++
		}
		if *verbose {
			fmt.Printf("run %3d: kill@%-7d crashed=%-5v committed=%-4d redo: %d tx, %d pages, torn=%v\n",
				i, cfg.KillAfter, res.Crashed, res.Committed,
				res.Report.TxCommitted, res.Report.PagesApplied, res.Report.TornTail)
		}
		os.RemoveAll(dir)
	}
	fmt.Printf("crash: %d/%d kill points fired, all recovered clean\n", fired, *n)
	if fired == 0 {
		fatal(fmt.Errorf("no kill point fired — kill range miscalibrated"))
	}

	// Group-commit phase: concurrent writers must share fsyncs.
	stats, err := crashtest.RunGroupCommit(filepath.Join(root, "gc.db"), *writers, *wops)
	if err != nil {
		fatal(fmt.Errorf("group commit: %w", err))
	}
	fmt.Printf("group commit: %d commits, %d fsyncs, max group %d\n",
		stats.Commits, stats.Fsyncs, stats.MaxGroup)
	if stats.Fsyncs >= stats.Commits {
		fatal(fmt.Errorf("group commit absent: %d fsyncs for %d commits", stats.Fsyncs, stats.Commits))
	}
	fmt.Println("ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xrcrash:", err)
	os.Exit(1)
}
