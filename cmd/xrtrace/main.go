// Command xrtrace pretty-prints request traces from a running xrserve's
// flight recorder (/debug/traces) or from a saved JSON document. Each
// trace renders as an indented span tree: the root span is the request's
// admission-to-response window, child spans are the engine phases (the
// join, the per-document tasks of a parallel join), and span attributes
// are the typed events recorded while that span was current — page reads,
// leaf scans, skip distances — so a slow request decomposes into where the
// time and the I/O went.
//
// Usage:
//
//	xrtrace -url http://localhost:8080                 # all retained traces
//	xrtrace -url http://localhost:8080 -slow           # pinned outliers only
//	xrtrace -url http://localhost:8080 -trace 4bf92f…  # one trace by id
//	curl -s localhost:8080/debug/traces | xrtrace -    # from a saved scrape
//
// Trace ids come from the join/query responses (trace_id), from response
// traceparent headers, or from xrblast's slowest-decile report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"xrtree/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrtrace: ")
	var (
		baseURL = flag.String("url", "", "server base URL; fetches <url>/debug/traces")
		slow    = flag.Bool("slow", false, "only traces pinned by the slow-trace threshold")
		traceID = flag.String("trace", "", "only the trace whose id starts with this hex prefix")
		timeout = flag.Duration("timeout", 10*time.Second, "fetch timeout with -url")
	)
	flag.Parse()

	var r io.Reader
	switch {
	case *baseURL != "":
		if flag.NArg() != 0 {
			log.Fatal("-url and a file argument are mutually exclusive")
		}
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*baseURL + "/debug/traces")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s/debug/traces: status %d", *baseURL, resp.StatusCode)
		}
		r = resp.Body
	case flag.NArg() == 1 && flag.Arg(0) != "-":
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	case flag.NArg() <= 1:
		r = os.Stdin
	default:
		log.Fatal("usage: xrtrace [-url base | file | -] [-slow] [-trace id]")
	}

	traces, stats, err := decode(r)
	if err != nil {
		log.Fatal(err)
	}

	shown := 0
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		if *slow && !tr.Pinned {
			continue
		}
		if *traceID != "" && !strings.HasPrefix(tr.TraceID, strings.ToLower(*traceID)) {
			continue
		}
		if shown > 0 {
			fmt.Println()
		}
		if err := tr.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		shown++
	}
	if stats != nil {
		fmt.Printf("\nrecorder: %d/%d retained, %d recorded, %d slow (threshold %dms)\n",
			len(traces), stats.Capacity, stats.Recorded, stats.Slow, stats.SlowThreshMS)
	}
	if shown == 0 {
		log.Fatal("no traces matched (is -trace-sample set, or the request stamped with a sampled traceparent?)")
	}
}

// decode accepts either the /debug/traces document ({stats, traces}) or a
// bare array of trace records.
func decode(r io.Reader) ([]*obs.TraceRecord, *obs.RecorderStats, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	var doc struct {
		Stats  obs.RecorderStats  `json:"stats"`
		Traces []*obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && doc.Traces != nil {
		return doc.Traces, &doc.Stats, nil
	}
	var bare []*obs.TraceRecord
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, nil, fmt.Errorf("input is neither a /debug/traces document nor a trace array: %w", err)
	}
	return bare, nil, nil
}
