// Command xrblast is the load generator companion of xrserve: it drives
// query traffic in closed loop (a fixed number of clients, each issuing
// the next request as soon as the previous answers) or open loop (a fixed
// arrival rate, independent of response times), and reports throughput
// and latency percentiles from the internal/obs histogram code as text or
// as the "serving" section of the bench JSON schema.
//
// Assertion flags turn a run into a scripted check (the serve-smoke CI
// job): -wait-ready polls /healthz before driving, -min-ok/-min-rejected
// bound the outcome counts, and -assert-no-pins verifies through
// /api/v1/stats that the server's buffer pools hold no pinned pages after
// the run — i.e. canceled and timed-out queries leaked nothing.
//
// With -trace, a fraction of requests carry a sampled W3C traceparent so
// the server traces them; the report ends with the server-assigned trace
// ids of the slowest decile — handles for /debug/traces and xrtrace.
//
// With -ingest N, xrblast instead measures reader latency under write
// load: a read-only baseline phase, then the same closed-loop read drive
// with N workers batching inserts into POST /api/v1/insert, and
// -max-p99-inflation asserts the readers' p99 stayed within a factor of
// the baseline — the serve-side check that per-page latching keeps
// queries flowing during inserts.
//
// Usage:
//
//	xrblast -url http://localhost:8080 -target '/api/v1/join?anc=employee&desc=name' \
//	        -clients 64 -duration 5s
//	xrblast -url http://localhost:8080 -rate 200 -duration 10s -json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xrtree"
	"xrtree/internal/obs"
)

// targetsFlag collects repeatable -target values; workers round-robin.
type targetsFlag []string

func (f *targetsFlag) String() string { return strings.Join(*f, " ") }
func (f *targetsFlag) Set(v string) error {
	if !strings.HasPrefix(v, "/") {
		return fmt.Errorf("target must start with /, got %q", v)
	}
	*f = append(*f, v)
	return nil
}

// results accumulates outcome counts and the latency histogram across
// workers. Latency is recorded for every completed HTTP exchange (including
// 429s — rejection latency is part of the served experience).
type results struct {
	requests atomic.Int64
	ok       atomic.Int64
	rejected atomic.Int64
	timeouts atomic.Int64
	errors   atomic.Int64
	degraded atomic.Int64 // 200s carrying X-XR-Shards-Failed (cluster mode)
	maxNS    atomic.Int64
	col      *obs.Collector
}

func (r *results) record(code int, d time.Duration, err error) {
	r.requests.Add(1)
	switch {
	case err != nil:
		r.errors.Add(1)
		return
	case code == http.StatusOK:
		r.ok.Add(1)
	case code == http.StatusTooManyRequests:
		r.rejected.Add(1)
	case code == http.StatusServiceUnavailable:
		r.timeouts.Add(1)
	default:
		r.errors.Add(1)
	}
	ns := d.Nanoseconds()
	r.col.Event(obs.EvServeSpan, ns)
	for {
		cur := r.maxNS.Load()
		if ns <= cur || r.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// traceLog retains (trace id, latency) pairs for the requests the server
// traced, so the report can surface handles for the slowest ones.
type traceLog struct {
	mu      sync.Mutex
	entries []xrtree.TraceHandle
}

func (t *traceLog) add(id string, d time.Duration) {
	t.mu.Lock()
	t.entries = append(t.entries, xrtree.TraceHandle{TraceID: id, LatencyMS: float64(d.Nanoseconds()) * 1e-6})
	t.mu.Unlock()
}

// slowestDecile returns the slowest tenth of the collected handles
// (at least one, at most 16 so reports stay bounded), slowest first.
func (t *traceLog) slowestDecile() []xrtree.TraceHandle {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) == 0 {
		return nil
	}
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].LatencyMS > t.entries[j].LatencyMS })
	n := (len(t.entries) + 9) / 10
	if n > 16 {
		n = 16
	}
	return append([]xrtree.TraceHandle(nil), t.entries[:n]...)
}

func (r *results) latency() xrtree.LatencySummary {
	h := r.col.Histogram(obs.EvServeSpan)
	if h == nil || h.Count() == 0 {
		return xrtree.LatencySummary{}
	}
	const msPerNs = 1e-6
	return xrtree.LatencySummary{
		Count:  h.Count(),
		MeanMS: h.Mean() * msPerNs,
		P50MS:  float64(h.Quantile(0.50)) * msPerNs,
		P90MS:  float64(h.Quantile(0.90)) * msPerNs,
		P99MS:  float64(h.Quantile(0.99)) * msPerNs,
		MaxMS:  float64(r.maxNS.Load()) * msPerNs,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrblast: ")
	var targets targetsFlag
	var (
		baseURL   = flag.String("url", "", "server base URL, e.g. http://127.0.0.1:8080 (required)")
		label     = flag.String("label", "run", "row label in the report")
		clients   = flag.Int("clients", 8, "closed-loop workers; in open loop, the outstanding-request bound")
		rate      = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
		duration  = flag.Duration("duration", 5*time.Second, "run length")
		requests  = flag.Int64("requests", 0, "stop after this many requests (0: duration only)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		jsonOut   = flag.Bool("json", false, "emit the bench JSON serving section instead of text")
		waitReady = flag.Duration("wait-ready", 0, "poll /healthz up to this long before driving")
		minOK     = flag.Int64("min-ok", -1, "assert at least this many 2xx responses")
		minRej    = flag.Int64("min-rejected", -1, "assert at least this many 429 rejections")
		maxErr    = flag.Int64("max-errors", -1, "assert at most this many transport/other errors")
		noPins    = flag.Bool("assert-no-pins", false, "assert /api/v1/stats reports zero pinned pages after the run")
		traceRate = flag.Float64("trace", 0, "stamp this fraction of requests with a sampled traceparent; the report lists the slowest decile's server trace ids")
		traceSeed = flag.Uint64("trace-seed", 0, "seed for the trace-stamping decisions and ids (0: random)")
		shardList = flag.String("cluster", "", "comma-separated name=url shard list: adds the bench-JSON cluster section (router /api/v1/cluster scrape) plus a direct /healthz reachability probe per shard")
		minDeg    = flag.Int64("min-degraded", -1, "assert at least this many degraded (shards_failed) responses")
		minHedges = flag.Int64("min-hedges", -1, "assert the router reports at least this many hedged sub-requests")

		ingest      = flag.Int("ingest", 0, "ingest mode: this many concurrent insert workers POST /api/v1/insert while readers drive; runs a read-only baseline phase first")
		ingestSet   = flag.String("ingest-set", "employee", "catalogued set the ingest workers insert into")
		ingestBack  = flag.String("ingest-backend", "", "backend for ingest inserts (empty: the sole registered backend)")
		ingestBatch = flag.Int("ingest-batch", 16, "elements per insert request in ingest mode")
		maxInfl     = flag.Float64("max-p99-inflation", 0, "ingest mode: assert reader p99 under ingest stays within this factor of the read-only baseline (0: no assertion)")
		minInserted = flag.Int64("min-inserted", -1, "ingest mode: assert at least this many elements were inserted")
	)
	flag.Var(&targets, "target", "request path+query, must start with / (repeatable; workers round-robin)")
	flag.Parse()
	if *baseURL == "" {
		log.Fatal("-url is required")
	}
	if len(targets) == 0 {
		targets = targetsFlag{"/api/v1/join?anc=employee&desc=name"}
	}
	if *clients < 1 {
		*clients = 1
	}

	client := &http.Client{Timeout: *timeout}
	if *waitReady > 0 {
		if err := waitForReady(client, *baseURL, *waitReady); err != nil {
			log.Fatal(err)
		}
	}

	if *ingest > 0 {
		if *rate > 0 {
			log.Fatal("-ingest is a closed-loop mode; drop -rate")
		}
		runIngestMode(client, *baseURL, targets, *clients, *duration,
			*ingest, *ingestBatch, *ingestSet, *ingestBack, *maxInfl, *minInserted, *noPins)
		return
	}

	res := &results{col: obs.NewCollector()}
	var budget atomic.Int64
	budget.Store(*requests) // 0 means unlimited
	takeBudget := func() bool {
		if *requests == 0 {
			return true
		}
		return budget.Add(-1) >= 0
	}

	// Trace propagation: a stamped request carries a sampled W3C
	// traceparent, which forces the server to trace it; the server echoes
	// its trace context back, and the echoed trace ids of the slowest
	// requests become the run's actionable handles (feed them to xrtrace
	// against /debug/traces).
	var sampler *obs.Sampler
	var ids *obs.IDSource
	traces := &traceLog{}
	if *traceRate > 0 {
		sampler = obs.NewSampler(*traceRate, *traceSeed)
		ids = obs.NewIDSource(*traceSeed)
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	var seq atomic.Int64
	shoot := func() {
		i := seq.Add(1)
		target := targets[int(i)%len(targets)]
		tp := ""
		if sampler != nil && sampler.Sample() {
			tp = obs.Traceparent(ids.TraceID(), ids.SpanID(), true)
		}
		t0 := time.Now()
		code, hdr, err := get(client, *baseURL+target, tp)
		d := time.Since(t0)
		res.record(code, d, err)
		if err == nil && code == http.StatusOK && hdr.Get("X-XR-Shards-Failed") != "" {
			res.degraded.Add(1)
		}
		if tp != "" && err == nil {
			if tid, _, _, ok := obs.ParseTraceparent(hdr.Get("traceparent")); ok {
				traces.add(tid.String(), d)
			}
		}
	}

	if *rate <= 0 {
		// Closed loop: each worker drives the next request as soon as the
		// previous one completes — throughput adapts to server latency.
		for w := 0; w < *clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) && takeBudget() {
					shoot()
				}
			}()
		}
	} else {
		// Open loop: arrivals at a fixed rate regardless of completions,
		// bounded at -clients outstanding; arrivals past the bound are
		// shed client-side and counted as errors.
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		sem := make(chan struct{}, *clients)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for time.Now().Before(deadline) && takeBudget() {
			<-tick.C
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					shoot()
				}()
			default:
				res.requests.Add(1)
				res.errors.Add(1)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	row := xrtree.ServingRow{
		Label:       *label,
		Target:      strings.Join(targets, " "),
		Clients:     *clients,
		RateRPS:     *rate,
		DurationSec: elapsed.Seconds(),
		Requests:    res.requests.Load(),
		OK:          res.ok.Load(),
		Rejected:    res.rejected.Load(),
		Timeouts:    res.timeouts.Load(),
		Errors:      res.errors.Load(),
		Latency:     res.latency(),
	}
	if elapsed > 0 {
		row.ThroughputRPS = float64(row.OK) / elapsed.Seconds()
	}
	row.SlowTraces = traces.slowestDecile()

	var study *xrtree.ClusterStudy
	var studyErr error
	if *shardList != "" || *minHedges >= 0 {
		study, studyErr = clusterStudy(client, *baseURL, *shardList, res)
		if studyErr != nil {
			log.Printf("cluster scrape: %v", studyErr)
		}
	}

	if *jsonOut {
		rep := &xrtree.BenchReport{
			Schema:    xrtree.BenchSchema,
			CreatedAt: time.Now().UTC(),
			GoVersion: runtime.Version(),
			Serving:   &xrtree.ServingStudy{BaseURL: *baseURL, Rows: []xrtree.ServingRow{row}},
			Cluster:   study,
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		lat := row.Latency
		fmt.Printf("%-10s requests=%d ok=%d rejected=%d timeouts=%d errors=%d in %.2fs (%.1f ok/s)\n",
			row.Label, row.Requests, row.OK, row.Rejected, row.Timeouts, row.Errors,
			row.DurationSec, row.ThroughputRPS)
		fmt.Printf("%-10s latency mean=%.2fms p50≤%.2fms p90≤%.2fms p99≤%.2fms max=%.2fms\n",
			"", lat.MeanMS, lat.P50MS, lat.P90MS, lat.P99MS, lat.MaxMS)
		for _, h := range row.SlowTraces {
			fmt.Printf("%-10s slow trace %s %.2fms\n", "", h.TraceID, h.LatencyMS)
		}
		if study != nil {
			fmt.Printf("%-10s cluster shards=%d subrequests=%d hedges=%d (rate %.3f) retries=%d degraded=%d\n",
				"", len(study.Shards), study.Subrequests, study.Hedges, study.HedgeRate, study.Retries, study.Degraded)
			for _, sh := range study.Shards {
				state := "up"
				if !sh.Up {
					state = "DOWN"
				}
				if sh.Reachable != nil && *sh.Reachable != sh.Up {
					state += " (disagrees with direct probe)"
				}
				fmt.Printf("%-10s shard %-8s %-4s docs=%d subrequests=%d failures=%d hedges=%d retries=%d p99≤%.2fms\n",
					"", sh.Name, state, sh.Docs, sh.Subrequests, sh.Failures, sh.Hedges, sh.Retries, sh.Latency.P99MS)
			}
		}
	}

	failed := false
	check := func(cond bool, format string, args ...any) {
		if !cond {
			failed = true
			log.Printf("ASSERTION FAILED: "+format, args...)
		}
	}
	if *minOK >= 0 {
		check(row.OK >= *minOK, "ok=%d < min-ok=%d", row.OK, *minOK)
	}
	if *minRej >= 0 {
		check(row.Rejected >= *minRej, "rejected=%d < min-rejected=%d", row.Rejected, *minRej)
	}
	if *maxErr >= 0 {
		check(row.Errors <= *maxErr, "errors=%d > max-errors=%d", row.Errors, *maxErr)
	}
	if *noPins {
		pins, err := pinnedPages(client, *baseURL)
		if err != nil {
			failed = true
			log.Printf("ASSERTION FAILED: stats fetch: %v", err)
		} else {
			check(pins == 0, "server reports %d pinned pages after the run", pins)
		}
	}
	if *minDeg >= 0 {
		check(res.degraded.Load() >= *minDeg, "degraded=%d < min-degraded=%d", res.degraded.Load(), *minDeg)
	}
	if *minHedges >= 0 {
		if study == nil {
			failed = true
			log.Printf("ASSERTION FAILED: min-hedges set but cluster status unavailable: %v", studyErr)
		} else {
			check(study.Hedges >= *minHedges, "hedges=%d < min-hedges=%d", study.Hedges, *minHedges)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// get issues one GET, stamping the traceparent header when tp is
// non-empty, and returns the status code plus the response headers (the
// echoed traceparent and, in cluster mode, X-XR-Shards-Failed).
func get(client *http.Client, url, tp string) (int, http.Header, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header, err
}

// waitForReady polls /healthz until the server answers 200.
func waitForReady(client *http.Client, base string, bound time.Duration) error {
	deadline := time.Now().Add(bound)
	for {
		code, _, err := get(client, base+"/healthz", "")
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last: code=%d err=%v)", base, bound, code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// clusterStudy assembles the bench-JSON cluster section: client-observed
// end-to-end counts and latency from this run, the router's per-shard view
// scraped from /api/v1/cluster, and (for shards named in the -cluster
// list) a direct /healthz probe so the report can flag router/client
// disagreement about a shard's health.
func clusterStudy(client *http.Client, base, shardList string, res *results) (*xrtree.ClusterStudy, error) {
	resp, err := client.Get(base + "/api/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/api/v1/cluster: status %d", resp.StatusCode)
	}
	var scraped struct {
		Shards []struct {
			Name        string                `json:"name"`
			Addr        string                `json:"addr"`
			Up          bool                  `json:"up"`
			Docs        int                   `json:"docs"`
			Subrequests int64                 `json:"subrequests"`
			Failures    int64                 `json:"failures"`
			Hedges      int64                 `json:"hedges"`
			Retries     int64                 `json:"retries"`
			Latency     xrtree.LatencySummary `json:"latency"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scraped); err != nil {
		return nil, err
	}

	reach := make(map[string]*bool)
	if shardList != "" {
		for _, part := range strings.Split(shardList, ",") {
			name, url, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("bad -cluster entry %q (want name=url)", part)
			}
			code, _, err := get(client, strings.TrimRight(url, "/")+"/healthz", "")
			up := err == nil && code == http.StatusOK
			reach[name] = &up
		}
	}

	study := &xrtree.ClusterStudy{
		Router:   base,
		Requests: res.requests.Load(),
		OK:       res.ok.Load(),
		Degraded: res.degraded.Load(),
		Latency:  res.latency(),
	}
	for _, sh := range scraped.Shards {
		study.Subrequests += sh.Subrequests
		study.Hedges += sh.Hedges
		study.Retries += sh.Retries
		study.Shards = append(study.Shards, xrtree.ClusterShardRow{
			Name:        sh.Name,
			Addr:        sh.Addr,
			Up:          sh.Up,
			Reachable:   reach[sh.Name],
			Docs:        sh.Docs,
			Subrequests: sh.Subrequests,
			Failures:    sh.Failures,
			Hedges:      sh.Hedges,
			Retries:     sh.Retries,
			Latency:     sh.Latency,
		})
	}
	if study.Subrequests > 0 {
		study.HedgeRate = float64(study.Hedges) / float64(study.Subrequests)
	}
	return study, nil
}

// runIngestMode measures reader-latency inflation under concurrent
// writes: a read-only baseline phase of closed-loop readers, then the
// identical read drive with -ingest insert workers batching elements into
// /api/v1/insert. Both phases last -duration. With the tree's per-page
// latching, inserts (including page splits on the shared upper levels)
// must not stall the readers, so the p99 under ingest should stay within
// a small factor of the baseline — -max-p99-inflation turns that bound
// into a scripted assertion for the serve-smoke CI job.
func runIngestMode(client *http.Client, baseURL string, targets []string, clients int,
	dur time.Duration, workers, batch int, set, backend string,
	maxInflation float64, minInserted int64, noPins bool) {
	phase := func(withIngest bool) (lat []time.Duration, readErrs, inserted, insertErrs int64) {
		deadline := time.Now().Add(dur)
		var wg sync.WaitGroup
		lats := make([][]time.Duration, clients)
		var rerrs atomic.Int64
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					t0 := time.Now()
					code, _, err := get(client, baseURL+targets[(w+i)%len(targets)], "")
					if err != nil || code != http.StatusOK {
						rerrs.Add(1)
						continue
					}
					lats[w] = append(lats[w], time.Since(t0))
				}
			}(w)
		}
		var ins, ierrs atomic.Int64
		if withIngest {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Each worker owns a private flat key range far above any
					// generated corpus, so batches never collide with the
					// indexed document or with each other.
					next := uint32(1)<<30 + uint32(w)<<24
					for time.Now().Before(deadline) {
						els := make([]xrtree.Element, batch)
						for i := range els {
							els[i] = xrtree.Element{Start: next, End: next + 2, Level: 1}
							next += 4
						}
						if err := postInsert(client, baseURL, backend, set, els); err != nil {
							ierrs.Add(1)
							log.Printf("ingest: %v", err)
							return
						}
						ins.Add(int64(batch))
					}
				}(w)
			}
		}
		wg.Wait()
		for _, ls := range lats {
			lat = append(lat, ls...)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat, rerrs.Load(), ins.Load(), ierrs.Load()
	}

	base, baseRErrs, _, _ := phase(false)
	ing, ingRErrs, inserted, insertErrs := phase(true)
	bp50, bp99 := quantileMS(base, 0.50), quantileMS(base, 0.99)
	ip50, ip99 := quantileMS(ing, 0.50), quantileMS(ing, 0.99)
	sec := dur.Seconds()
	fmt.Printf("baseline   reads=%d (%.1f/s) p50≤%.2fms p99≤%.2fms errors=%d\n",
		len(base), float64(len(base))/sec, bp50, bp99, baseRErrs)
	fmt.Printf("ingest     reads=%d (%.1f/s) p50≤%.2fms p99≤%.2fms errors=%d inserted=%d (%.1f/s) insert-errors=%d\n",
		len(ing), float64(len(ing))/sec, ip50, ip99, ingRErrs, inserted, float64(inserted)/sec, insertErrs)
	inflation := 0.0
	if bp99 > 0 {
		inflation = ip99 / bp99
		fmt.Printf("ingest     reader p99 inflation %.2f×\n", inflation)
	}

	failed := false
	check := func(cond bool, format string, args ...any) {
		if !cond {
			failed = true
			log.Printf("ASSERTION FAILED: "+format, args...)
		}
	}
	check(len(base) > 0, "baseline phase completed no reads")
	check(len(ing) > 0, "ingest phase completed no reads")
	check(baseRErrs == 0 && ingRErrs == 0, "read errors: baseline=%d ingest=%d", baseRErrs, ingRErrs)
	check(insertErrs == 0, "insert errors: %d", insertErrs)
	check(inserted > 0, "ingest workers inserted nothing")
	if minInserted >= 0 {
		check(inserted >= minInserted, "inserted=%d < min-inserted=%d", inserted, minInserted)
	}
	if maxInflation > 0 && bp99 > 0 {
		check(inflation <= maxInflation,
			"reader p99 inflated %.2f× under ingest (%.2fms → %.2fms), bound %.1f×",
			inflation, bp99, ip99, maxInflation)
	}
	if noPins {
		pins, err := pinnedPages(client, baseURL)
		if err != nil {
			failed = true
			log.Printf("ASSERTION FAILED: stats fetch: %v", err)
		} else {
			check(pins == 0, "server reports %d pinned pages after the run", pins)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// quantileMS returns the q-quantile of sorted durations, in milliseconds.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[int(q*float64(len(sorted)-1))].Nanoseconds()) * 1e-6
}

// postInsert sends one element batch to /api/v1/insert.
func postInsert(client *http.Client, base, backend, set string, els []xrtree.Element) error {
	body, err := json.Marshal(struct {
		Set      string           `json:"set"`
		Elements []xrtree.Element `json:"elements"`
	}{Set: set, Elements: els})
	if err != nil {
		return err
	}
	u := base + "/api/v1/insert"
	if backend != "" {
		u += "?backend=" + url.QueryEscape(backend)
	}
	resp, err := client.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/api/v1/insert: status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// pinnedPages sums pinned_pages over every backend of /api/v1/stats.
func pinnedPages(client *http.Client, base string) (int, error) {
	resp, err := client.Get(base + "/api/v1/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/api/v1/stats: status %d", resp.StatusCode)
	}
	var st struct {
		Backends []struct {
			Name string `json:"name"`
			Pool struct {
				PinnedPages int `json:"pinned_pages"`
			} `json:"pool"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	total := 0
	for _, b := range st.Backends {
		total += b.Pool.PinnedPages
	}
	return total, nil
}
