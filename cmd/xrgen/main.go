// Command xrgen generates the synthetic XML corpora of the paper's
// performance study (§6.1, Figure 6 DTDs) and writes them as XML files.
//
// Usage:
//
//	xrgen -dtd department -out dept.xml -scale 1.0 -seed 1
//	xrgen -dtd conference -out conf.xml
//	xrgen -dtd nested -depth 15 -elements 50000 -out deep.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"xrtree/internal/datagen"
	"xrtree/internal/xmldoc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrgen: ")
	var (
		dtd      = flag.String("dtd", "department", "DTD to generate: department, conference, or nested")
		out      = flag.String("out", "", "output file (default stdout)")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.Float64("scale", 1.0, "size multiplier for department/conference")
		depth    = flag.Int("depth", 10, "max nesting depth (nested DTD)")
		elements = flag.Int("elements", 10000, "element count (nested DTD)")
	)
	flag.Parse()

	var doc *xmldoc.Document
	var err error
	switch *dtd {
	case "department":
		doc, err = datagen.Department(datagen.DeptConfig{
			Seed: *seed, DocID: 1,
			Departments: scaled(40, *scale), Employees: scaled(25, *scale),
		})
	case "conference":
		doc, err = datagen.Conference(datagen.ConfConfig{
			Seed: *seed, DocID: 1,
			Conferences: scaled(60, *scale), Papers: scaled(40, *scale),
		})
	case "nested":
		doc, err = datagen.Nested(datagen.NestedConfig{
			Seed: *seed, DocID: 1, Elements: *elements, MaxDepth: *depth, DeepBias: 0.7,
		})
	default:
		log.Fatalf("unknown -dtd %q (want department, conference, or nested)", *dtd)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := doc.WriteXML(w); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d elements (%s DTD)\n", doc.NumElements(), *dtd)
	for _, tag := range doc.Tags() {
		fmt.Fprintf(os.Stderr, "  %-12s %d\n", tag, len(doc.ElementsByTag(tag)))
	}
}

func scaled(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 1 {
		v = 1
	}
	return v
}
