// Command xrquery evaluates structural queries over an XML document.
//
// A two-step query ("anc//desc" or "anc/desc") runs as one structural join
// with the chosen algorithm(s), printing result pairs and cost counters —
// a miniature of the paper's experimental runs. A longer path expression
// ("departments/department//employee/name") runs as a pipeline of XR-stack
// joins (the paper's §7 future work).
//
// Usage:
//
//	xrquery -in dept.xml -query 'employee//name' -alg xr
//	xrquery -in dept.xml -query 'employee/name' -alg all -quiet
//	xrquery -in dept.xml -query 'department//employee/name'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"xrtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrquery: ")
	var (
		in       = flag.String("in", "", "input XML file")
		storeArg = flag.String("store", "", "store file built by xrload (alternative to -in)")
		query    = flag.String("query", "", "join query: anc//desc or anc/desc (required)")
		alg      = flag.String("alg", "xr", "algorithm: noindex, mpmgjn, bplus, xr, or all")
		quiet    = flag.Bool("quiet", false, "suppress pair output, print only counts")
		limit    = flag.Int("limit", 20, "max pairs to print")
		attrs    = flag.Bool("attrs", false, "materialize attributes (@name) and text (#text) as nodes")
	)
	flag.Parse()
	if (*in == "") == (*storeArg == "") || *query == "" {
		log.Fatal("exactly one of -in or -store, plus -query, are required")
	}

	if *storeArg != "" {
		runFromStore(*storeArg, *query, *alg, *quiet, *limit)
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	doc, err := xrtree.ParseXMLWithOptions(f, xrtree.ParseOptions{
		DocID: 1, IncludeAttributes: *attrs, IncludeText: *attrs, KeepText: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	ancTag, descTag, mode, err := parseQuery(*query)
	if err != nil {
		// Not a two-step join: evaluate as a path-expression pipeline.
		runPath(store, doc, *query, *quiet, *limit)
		return
	}

	a, err := store.IndexElements(doc.ElementsByTag(ancTag), xrtree.IndexOptions{})
	if err != nil {
		log.Fatalf("indexing %s: %v", ancTag, err)
	}
	d, err := store.IndexElements(doc.ElementsByTag(descTag), xrtree.IndexOptions{})
	if err != nil {
		log.Fatalf("indexing %s: %v", descTag, err)
	}

	algs, err := pickAlgorithms(*alg)
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range algs {
		if err := store.DropCache(); err != nil {
			log.Fatal(err)
		}
		var st xrtree.Stats
		store.AttachStats(&st)
		printed := 0
		err := xrtree.Join(algo, mode, a, d, func(av, dv xrtree.Element) {
			if !*quiet && printed < *limit {
				fmt.Printf("  %v  ⊃  %v\n", av, dv)
				printed++
			}
		}, &st)
		store.AttachStats(nil)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v\n",
			algo, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed)
	}
}

// parseQuery recognizes the simple two-step form anc//desc or anc/desc;
// anything else is handled by the path-expression pipeline.
func parseQuery(q string) (anc, desc string, mode xrtree.Mode, err error) {
	if strings.ContainsAny(q, "[]") {
		return "", "", 0, fmt.Errorf("query %q has predicates; use the path pipeline", q)
	}
	if i := strings.Index(q, "//"); i > 0 {
		anc, desc = q[:i], q[i+2:]
		mode = xrtree.AncestorDescendant
	} else if i := strings.Index(q, "/"); i > 0 {
		anc, desc = q[:i], q[i+1:]
		mode = xrtree.ParentChild
	} else {
		return "", "", 0, fmt.Errorf("query %q is not of the form anc//desc or anc/desc", q)
	}
	if strings.Contains(anc, "/") || strings.Contains(desc, "/") {
		return "", "", 0, fmt.Errorf("query %q has more than two steps", q)
	}
	return anc, desc, mode, nil
}

// runFromStore reopens a catalogued store and runs a two-step join over
// its persisted index sets — no XML parsing or index building involved.
func runFromStore(path, query, alg string, quiet bool, limit int) {
	store, err := xrtree.OpenStore(path, xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ancTag, descTag, mode, err := parseQuery(query)
	if err != nil {
		log.Fatalf("store mode supports two-step joins only: %v", err)
	}
	a, err := store.OpenSet(ancTag)
	if err != nil {
		log.Fatalf("set %q: %v", ancTag, err)
	}
	d, err := store.OpenSet(descTag)
	if err != nil {
		log.Fatalf("set %q: %v", descTag, err)
	}
	algs, err := pickAlgorithms(alg)
	if err != nil {
		log.Fatal(err)
	}
	for _, algo := range algs {
		if err := store.DropCache(); err != nil {
			log.Fatal(err)
		}
		var st xrtree.Stats
		store.AttachStats(&st)
		printed := 0
		err := xrtree.Join(algo, mode, a, d, func(av, dv xrtree.Element) {
			if !quiet && printed < limit {
				fmt.Printf("  %v  ⊃  %v\n", av, dv)
				printed++
			}
		}, &st)
		store.AttachStats(nil)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v\n",
			algo, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed)
	}
}

// runPath evaluates a multi-step path expression with the XR-stack
// pipeline and prints the matching elements.
func runPath(store *xrtree.Store, doc *xrtree.Document, query string, quiet bool, limit int) {
	idx := store.IndexDocument(doc)
	var st xrtree.Stats
	els, err := idx.Query(query, &st)
	if err != nil {
		log.Fatal(err)
	}
	if !quiet {
		for i, e := range els {
			if i >= limit {
				fmt.Printf("  … %d more\n", len(els)-limit)
				break
			}
			fmt.Printf("  %v\n", e)
		}
	}
	fmt.Printf("path      results=%d scanned=%d elapsed=%v\n",
		len(els), st.ElementsScanned, st.Elapsed)
}

func pickAlgorithms(name string) ([]xrtree.Algorithm, error) {
	switch name {
	case "noindex":
		return []xrtree.Algorithm{xrtree.AlgNoIndex}, nil
	case "mpmgjn":
		return []xrtree.Algorithm{xrtree.AlgMPMGJN}, nil
	case "bplus", "b+":
		return []xrtree.Algorithm{xrtree.AlgBPlus}, nil
	case "bplussp", "b+sp":
		return []xrtree.Algorithm{xrtree.AlgBPlusSP}, nil
	case "xr", "xrstack":
		return []xrtree.Algorithm{xrtree.AlgXRStack}, nil
	case "all":
		return []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgBPlusSP, xrtree.AlgXRStack}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
