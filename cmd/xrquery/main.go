// Command xrquery evaluates structural queries over XML documents.
//
// A two-step query ("anc//desc" or "anc/desc") runs as one structural join
// with the chosen algorithm(s), printing result pairs and cost counters —
// a miniature of the paper's experimental runs. A longer path expression
// ("departments/department//employee/name") runs as a pipeline of XR-stack
// joins (the paper's §7 future work). With a comma-separated -in list the
// query runs over a document collection (the DocId join condition of §2.2)
// and -workers parallelizes the join across documents. A -timeout bounds
// the whole query through the engine's cancellation plumbing: on expiry
// xrquery exits non-zero with a clear message.
//
// Usage:
//
//	xrquery -in dept.xml -query 'employee//name' -alg xr
//	xrquery -in dept.xml -query 'employee/name' -alg all -quiet
//	xrquery -in a.xml,b.xml -query 'employee//name' -workers 4
//	xrquery -in dept.xml -query 'department//employee/name' -timeout 500ms
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"xrtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrquery: ")
	var (
		in        = flag.String("in", "", "input XML file(s), comma-separated for a collection")
		storeArg  = flag.String("store", "", "store file built by xrload (alternative to -in)")
		query     = flag.String("query", "", "join query: anc//desc or anc/desc (required)")
		alg       = flag.String("alg", "xr", "algorithm: noindex, mpmgjn, bplus, xr, or all")
		quiet     = flag.Bool("quiet", false, "suppress pair output, print only counts")
		limit     = flag.Int("limit", 20, "max pairs to print")
		attrs     = flag.Bool("attrs", false, "materialize attributes (@name) and text (#text) as nodes")
		stats     = flag.Bool("stats", false, "print the full counter snapshot and join-phase breakdown per query")
		statsJSON = flag.Bool("stats-json", false, "print the per-query observation as JSON")
		timeout   = flag.Duration("timeout", 0, "per-query deadline; on expiry exit non-zero (0: none)")
		workers   = flag.Int("workers", 1, "parallel join workers (collection input)")
	)
	flag.Parse()
	if (*in == "") == (*storeArg == "") || *query == "" {
		log.Fatal("exactly one of -in or -store, plus -query, are required")
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := runOpts{
		quiet: *quiet, limit: *limit, stats: *stats, statsJSON: *statsJSON,
		ctx: ctx, timeout: *timeout, workers: *workers,
	}

	if *storeArg != "" {
		runFromStore(*storeArg, *query, *alg, opts)
		return
	}

	files := strings.Split(*in, ",")
	docs := make([]*xrtree.Document, 0, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := xrtree.ParseXMLWithOptions(f, xrtree.ParseOptions{
			DocID: uint32(i + 1), IncludeAttributes: *attrs, IncludeText: *attrs, KeepText: true,
		})
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		docs = append(docs, doc)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	if len(docs) > 1 {
		runCollection(store, docs, *query, *alg, opts)
		return
	}
	doc := docs[0]

	ancTag, descTag, mode, err := parseQuery(*query)
	if err != nil {
		// Not a two-step join: evaluate as a path-expression pipeline.
		runPath(store, doc, *query, opts)
		return
	}

	a, err := store.IndexElements(doc.ElementsByTag(ancTag), xrtree.IndexOptions{})
	if err != nil {
		log.Fatalf("indexing %s: %v", ancTag, err)
	}
	d, err := store.IndexElements(doc.ElementsByTag(descTag), xrtree.IndexOptions{})
	if err != nil {
		log.Fatalf("indexing %s: %v", descTag, err)
	}

	algs, err := pickAlgorithms(*alg)
	if err != nil {
		log.Fatal(err)
	}
	runJoins(store, a, d, algs, mode, opts)
}

// runOpts bundles the output and execution options of a query run.
type runOpts struct {
	quiet     bool
	limit     int
	stats     bool
	statsJSON bool
	ctx       context.Context
	timeout   time.Duration
	workers   int
}

// fatal reports err and exits non-zero, with a dedicated message when the
// query hit its -timeout deadline.
func (o runOpts) fatal(what string, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("%s timed out after %v (deadline exceeded; partial work discarded)", what, o.timeout)
	}
	log.Fatalf("%s: %v", what, err)
}

// queryObservation is the machine-readable form of one -stats-json line.
type queryObservation struct {
	Alg               string               `json:"alg"`
	Pairs             int64                `json:"pairs"`
	ElementsScanned   int64                `json:"elements_scanned"`
	BufferHits        int64                `json:"buffer_hits"`
	BufferMisses      int64                `json:"buffer_misses"`
	PhysicalReads     int64                `json:"physical_reads"`
	PageEvictions     int64                `json:"page_evictions"`
	ElapsedMS         float64              `json:"elapsed_ms"`
	SkipEffectiveness float64              `json:"skip_effectiveness"`
	Phases            xrtree.JoinPhases    `json:"phases"`
	Events            xrtree.TraceSnapshot `json:"events"`
}

func printObservation(rep *xrtree.JoinReport, opts runOpts) {
	st := rep.Stats
	if opts.statsJSON {
		obs := queryObservation{
			Alg:               rep.Alg.String(),
			Pairs:             st.OutputPairs,
			ElementsScanned:   st.ElementsScanned,
			BufferHits:        st.BufferHits,
			BufferMisses:      st.BufferMisses,
			PhysicalReads:     st.PhysicalReads,
			PageEvictions:     st.PageEvictions,
			ElapsedMS:         float64(st.Elapsed.Microseconds()) / 1000,
			SkipEffectiveness: rep.SkipEffectiveness,
			Phases:            rep.Phases,
			Events:            rep.Events,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obs); err != nil {
			log.Fatal(err)
		}
		return
	}
	ph := rep.Phases
	fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v\n",
		rep.Alg, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed)
	fmt.Printf("          hits=%d physical_reads=%d evictions=%d skip_effectiveness=%.3f\n",
		st.BufferHits, st.PhysicalReads, st.PageEvictions, rep.SkipEffectiveness)
	fmt.Printf("          phases: anc_probes=%d ancestors_fetched=%d anc_skips=%d (dist %d) desc_skips=%d (dist %d) output_batches=%d index_descends=%d stab_scans=%d\n",
		ph.AncProbes, ph.AncestorsFetched, ph.AncSkips, ph.AncSkipDistance,
		ph.DescSkips, ph.DescSkipDistance, ph.OutputBatches, ph.IndexDescends, ph.StabScans)
}

// runJoins runs every requested algorithm over the indexed sets, printing
// pairs and the cost summary; with stats/statsJSON it traces each run and
// reports the phase breakdown and skipping effectiveness too.
func runJoins(store *xrtree.Store, a, d *xrtree.ElementSet, algs []xrtree.Algorithm, mode xrtree.Mode, opts runOpts) {
	for _, algo := range algs {
		if err := store.DropCache(); err != nil {
			log.Fatal(err)
		}
		printed := 0
		emit := func(av, dv xrtree.Element) {
			if !opts.quiet && printed < opts.limit {
				fmt.Printf("  %v  ⊃  %v\n", av, dv)
				printed++
			}
		}
		if !opts.stats && !opts.statsJSON {
			var st xrtree.Stats
			store.AttachStats(&st)
			err := xrtree.JoinContext(opts.ctx, algo, mode, a, d, emit, &st)
			store.AttachStats(nil)
			if err != nil {
				opts.fatal(algo.String(), err)
			}
			fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v\n",
				algo, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed)
			continue
		}
		rep, err := xrtree.ObservedJoinContext(opts.ctx, algo, mode, a, d, emit)
		if err != nil {
			opts.fatal(algo.String(), err)
		}
		printObservation(rep, opts)
	}
}

// runCollection evaluates the query over a multi-document collection:
// two-step joins run per document under the DocId condition, distributed
// over -workers; longer expressions run the path pipeline per document.
func runCollection(store *xrtree.Store, docs []*xrtree.Document, query, alg string, opts runOpts) {
	coll := store.NewCollection()
	for _, doc := range docs {
		if err := coll.Add(doc); err != nil {
			log.Fatal(err)
		}
	}
	ancTag, descTag, mode, err := parseQuery(query)
	if err != nil {
		// Path pipeline across the collection.
		var st xrtree.Stats
		els, err := coll.QueryContext(opts.ctx, query, &st)
		if err != nil {
			opts.fatal("path query", err)
		}
		printElements(els, opts)
		fmt.Printf("path      results=%d scanned=%d elapsed=%v (%d docs)\n",
			len(els), st.ElementsScanned, st.Elapsed, coll.Len())
		return
	}
	algs, err := pickAlgorithms(alg)
	if err != nil {
		log.Fatal(err)
	}
	jopts := xrtree.ParallelJoinOptions{Workers: opts.workers}
	for _, algo := range algs {
		printed := 0
		emit := func(av, dv xrtree.Element) {
			if !opts.quiet && printed < opts.limit {
				fmt.Printf("  %v  ⊃  %v\n", av, dv)
				printed++
			}
		}
		if opts.stats || opts.statsJSON {
			rep, err := coll.ObservedParallelJoinContext(opts.ctx, algo, mode, ancTag, descTag, emit, jopts)
			if err != nil {
				opts.fatal(algo.String(), err)
			}
			printObservation(rep, opts)
			continue
		}
		var st xrtree.Stats
		if err := coll.ParallelJoinContext(opts.ctx, algo, mode, ancTag, descTag, emit, &st, jopts); err != nil {
			opts.fatal(algo.String(), err)
		}
		fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v (%d docs, %d workers)\n",
			algo, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed, coll.Len(), opts.workers)
	}
}

// parseQuery recognizes the simple two-step form anc//desc or anc/desc;
// anything else is handled by the path-expression pipeline.
func parseQuery(q string) (anc, desc string, mode xrtree.Mode, err error) {
	if strings.ContainsAny(q, "[]") {
		return "", "", 0, fmt.Errorf("query %q has predicates; use the path pipeline", q)
	}
	if i := strings.Index(q, "//"); i > 0 {
		anc, desc = q[:i], q[i+2:]
		mode = xrtree.AncestorDescendant
	} else if i := strings.Index(q, "/"); i > 0 {
		anc, desc = q[:i], q[i+1:]
		mode = xrtree.ParentChild
	} else {
		return "", "", 0, fmt.Errorf("query %q is not of the form anc//desc or anc/desc", q)
	}
	if strings.Contains(anc, "/") || strings.Contains(desc, "/") {
		return "", "", 0, fmt.Errorf("query %q has more than two steps", q)
	}
	return anc, desc, mode, nil
}

// runFromStore reopens a catalogued store and runs a two-step join over
// its persisted index sets — no XML parsing or index building involved.
func runFromStore(path, query, alg string, opts runOpts) {
	store, err := xrtree.OpenStore(path, xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ancTag, descTag, mode, err := parseQuery(query)
	if err != nil {
		log.Fatalf("store mode supports two-step joins only: %v", err)
	}
	a, err := store.OpenSet(ancTag)
	if err != nil {
		log.Fatalf("set %q: %v", ancTag, err)
	}
	d, err := store.OpenSet(descTag)
	if err != nil {
		log.Fatalf("set %q: %v", descTag, err)
	}
	algs, err := pickAlgorithms(alg)
	if err != nil {
		log.Fatal(err)
	}
	runJoins(store, a, d, algs, mode, opts)
}

func printElements(els []xrtree.Element, opts runOpts) {
	if opts.quiet {
		return
	}
	for i, e := range els {
		if i >= opts.limit {
			fmt.Printf("  … %d more\n", len(els)-opts.limit)
			break
		}
		fmt.Printf("  %v\n", e)
	}
}

// runPath evaluates a multi-step path expression with the XR-stack
// pipeline and prints the matching elements.
func runPath(store *xrtree.Store, doc *xrtree.Document, query string, opts runOpts) {
	idx := store.IndexDocument(doc)
	var st xrtree.Stats
	els, err := idx.QueryContext(opts.ctx, query, &st)
	if err != nil {
		opts.fatal("path query", err)
	}
	printElements(els, opts)
	fmt.Printf("path      results=%d scanned=%d elapsed=%v\n",
		len(els), st.ElementsScanned, st.Elapsed)
}

func pickAlgorithms(name string) ([]xrtree.Algorithm, error) {
	switch name {
	case "noindex":
		return []xrtree.Algorithm{xrtree.AlgNoIndex}, nil
	case "mpmgjn":
		return []xrtree.Algorithm{xrtree.AlgMPMGJN}, nil
	case "bplus", "b+":
		return []xrtree.Algorithm{xrtree.AlgBPlus}, nil
	case "bplussp", "b+sp":
		return []xrtree.Algorithm{xrtree.AlgBPlusSP}, nil
	case "xr", "xrstack":
		return []xrtree.Algorithm{xrtree.AlgXRStack}, nil
	case "all":
		return []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgBPlusSP, xrtree.AlgXRStack}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
