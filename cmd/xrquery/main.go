// Command xrquery evaluates structural queries over an XML document.
//
// A two-step query ("anc//desc" or "anc/desc") runs as one structural join
// with the chosen algorithm(s), printing result pairs and cost counters —
// a miniature of the paper's experimental runs. A longer path expression
// ("departments/department//employee/name") runs as a pipeline of XR-stack
// joins (the paper's §7 future work).
//
// Usage:
//
//	xrquery -in dept.xml -query 'employee//name' -alg xr
//	xrquery -in dept.xml -query 'employee/name' -alg all -quiet
//	xrquery -in dept.xml -query 'department//employee/name'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"xrtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrquery: ")
	var (
		in        = flag.String("in", "", "input XML file")
		storeArg  = flag.String("store", "", "store file built by xrload (alternative to -in)")
		query     = flag.String("query", "", "join query: anc//desc or anc/desc (required)")
		alg       = flag.String("alg", "xr", "algorithm: noindex, mpmgjn, bplus, xr, or all")
		quiet     = flag.Bool("quiet", false, "suppress pair output, print only counts")
		limit     = flag.Int("limit", 20, "max pairs to print")
		attrs     = flag.Bool("attrs", false, "materialize attributes (@name) and text (#text) as nodes")
		stats     = flag.Bool("stats", false, "print the full counter snapshot and join-phase breakdown per query")
		statsJSON = flag.Bool("stats-json", false, "print the per-query observation as JSON")
	)
	flag.Parse()
	if (*in == "") == (*storeArg == "") || *query == "" {
		log.Fatal("exactly one of -in or -store, plus -query, are required")
	}
	opts := runOpts{quiet: *quiet, limit: *limit, stats: *stats, statsJSON: *statsJSON}

	if *storeArg != "" {
		runFromStore(*storeArg, *query, *alg, opts)
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	doc, err := xrtree.ParseXMLWithOptions(f, xrtree.ParseOptions{
		DocID: 1, IncludeAttributes: *attrs, IncludeText: *attrs, KeepText: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	ancTag, descTag, mode, err := parseQuery(*query)
	if err != nil {
		// Not a two-step join: evaluate as a path-expression pipeline.
		runPath(store, doc, *query, *quiet, *limit)
		return
	}

	a, err := store.IndexElements(doc.ElementsByTag(ancTag), xrtree.IndexOptions{})
	if err != nil {
		log.Fatalf("indexing %s: %v", ancTag, err)
	}
	d, err := store.IndexElements(doc.ElementsByTag(descTag), xrtree.IndexOptions{})
	if err != nil {
		log.Fatalf("indexing %s: %v", descTag, err)
	}

	algs, err := pickAlgorithms(*alg)
	if err != nil {
		log.Fatal(err)
	}
	runJoins(store, a, d, algs, mode, opts)
}

// runOpts bundles the output options of a join run.
type runOpts struct {
	quiet     bool
	limit     int
	stats     bool
	statsJSON bool
}

// queryObservation is the machine-readable form of one -stats-json line.
type queryObservation struct {
	Alg               string               `json:"alg"`
	Pairs             int64                `json:"pairs"`
	ElementsScanned   int64                `json:"elements_scanned"`
	BufferHits        int64                `json:"buffer_hits"`
	BufferMisses      int64                `json:"buffer_misses"`
	PhysicalReads     int64                `json:"physical_reads"`
	PageEvictions     int64                `json:"page_evictions"`
	ElapsedMS         float64              `json:"elapsed_ms"`
	SkipEffectiveness float64              `json:"skip_effectiveness"`
	Phases            xrtree.JoinPhases    `json:"phases"`
	Events            xrtree.TraceSnapshot `json:"events"`
}

// runJoins runs every requested algorithm over the indexed sets, printing
// pairs and the cost summary; with stats/statsJSON it traces each run and
// reports the phase breakdown and skipping effectiveness too.
func runJoins(store *xrtree.Store, a, d *xrtree.ElementSet, algs []xrtree.Algorithm, mode xrtree.Mode, opts runOpts) {
	for _, algo := range algs {
		if err := store.DropCache(); err != nil {
			log.Fatal(err)
		}
		printed := 0
		emit := func(av, dv xrtree.Element) {
			if !opts.quiet && printed < opts.limit {
				fmt.Printf("  %v  ⊃  %v\n", av, dv)
				printed++
			}
		}
		if !opts.stats && !opts.statsJSON {
			var st xrtree.Stats
			store.AttachStats(&st)
			err := xrtree.Join(algo, mode, a, d, emit, &st)
			store.AttachStats(nil)
			if err != nil {
				log.Fatalf("%s: %v", algo, err)
			}
			fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v\n",
				algo, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed)
			continue
		}
		rep, err := xrtree.ObservedJoin(algo, mode, a, d, emit)
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		st := rep.Stats
		if opts.statsJSON {
			obs := queryObservation{
				Alg:               algo.String(),
				Pairs:             st.OutputPairs,
				ElementsScanned:   st.ElementsScanned,
				BufferHits:        st.BufferHits,
				BufferMisses:      st.BufferMisses,
				PhysicalReads:     st.PhysicalReads,
				PageEvictions:     st.PageEvictions,
				ElapsedMS:         float64(st.Elapsed.Microseconds()) / 1000,
				SkipEffectiveness: rep.SkipEffectiveness,
				Phases:            rep.Phases,
				Events:            rep.Events,
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(obs); err != nil {
				log.Fatal(err)
			}
			continue
		}
		ph := rep.Phases
		fmt.Printf("%-9s pairs=%d scanned=%d misses=%d elapsed=%v\n",
			algo, st.OutputPairs, st.ElementsScanned, st.BufferMisses, st.Elapsed)
		fmt.Printf("          hits=%d physical_reads=%d evictions=%d skip_effectiveness=%.3f\n",
			st.BufferHits, st.PhysicalReads, st.PageEvictions, rep.SkipEffectiveness)
		fmt.Printf("          phases: anc_probes=%d ancestors_fetched=%d anc_skips=%d (dist %d) desc_skips=%d (dist %d) output_batches=%d index_descends=%d stab_scans=%d\n",
			ph.AncProbes, ph.AncestorsFetched, ph.AncSkips, ph.AncSkipDistance,
			ph.DescSkips, ph.DescSkipDistance, ph.OutputBatches, ph.IndexDescends, ph.StabScans)
	}
}

// parseQuery recognizes the simple two-step form anc//desc or anc/desc;
// anything else is handled by the path-expression pipeline.
func parseQuery(q string) (anc, desc string, mode xrtree.Mode, err error) {
	if strings.ContainsAny(q, "[]") {
		return "", "", 0, fmt.Errorf("query %q has predicates; use the path pipeline", q)
	}
	if i := strings.Index(q, "//"); i > 0 {
		anc, desc = q[:i], q[i+2:]
		mode = xrtree.AncestorDescendant
	} else if i := strings.Index(q, "/"); i > 0 {
		anc, desc = q[:i], q[i+1:]
		mode = xrtree.ParentChild
	} else {
		return "", "", 0, fmt.Errorf("query %q is not of the form anc//desc or anc/desc", q)
	}
	if strings.Contains(anc, "/") || strings.Contains(desc, "/") {
		return "", "", 0, fmt.Errorf("query %q has more than two steps", q)
	}
	return anc, desc, mode, nil
}

// runFromStore reopens a catalogued store and runs a two-step join over
// its persisted index sets — no XML parsing or index building involved.
func runFromStore(path, query, alg string, opts runOpts) {
	store, err := xrtree.OpenStore(path, xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ancTag, descTag, mode, err := parseQuery(query)
	if err != nil {
		log.Fatalf("store mode supports two-step joins only: %v", err)
	}
	a, err := store.OpenSet(ancTag)
	if err != nil {
		log.Fatalf("set %q: %v", ancTag, err)
	}
	d, err := store.OpenSet(descTag)
	if err != nil {
		log.Fatalf("set %q: %v", descTag, err)
	}
	algs, err := pickAlgorithms(alg)
	if err != nil {
		log.Fatal(err)
	}
	runJoins(store, a, d, algs, mode, opts)
}

// runPath evaluates a multi-step path expression with the XR-stack
// pipeline and prints the matching elements.
func runPath(store *xrtree.Store, doc *xrtree.Document, query string, quiet bool, limit int) {
	idx := store.IndexDocument(doc)
	var st xrtree.Stats
	els, err := idx.Query(query, &st)
	if err != nil {
		log.Fatal(err)
	}
	if !quiet {
		for i, e := range els {
			if i >= limit {
				fmt.Printf("  … %d more\n", len(els)-limit)
				break
			}
			fmt.Printf("  %v\n", e)
		}
	}
	fmt.Printf("path      results=%d scanned=%d elapsed=%v\n",
		len(els), st.ElementsScanned, st.Elapsed)
}

func pickAlgorithms(name string) ([]xrtree.Algorithm, error) {
	switch name {
	case "noindex":
		return []xrtree.Algorithm{xrtree.AlgNoIndex}, nil
	case "mpmgjn":
		return []xrtree.Algorithm{xrtree.AlgMPMGJN}, nil
	case "bplus", "b+":
		return []xrtree.Algorithm{xrtree.AlgBPlus}, nil
	case "bplussp", "b+sp":
		return []xrtree.Algorithm{xrtree.AlgBPlusSP}, nil
	case "xr", "xrstack":
		return []xrtree.Algorithm{xrtree.AlgXRStack}, nil
	case "all":
		return []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgBPlusSP, xrtree.AlgXRStack}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
