package main

import (
	"testing"

	"xrtree"
)

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in       string
		anc, dsc string
		mode     xrtree.Mode
		err      bool
	}{
		{"employee//name", "employee", "name", xrtree.AncestorDescendant, false},
		{"employee/name", "employee", "name", xrtree.ParentChild, false},
		{"a//b/c", "", "", 0, true}, // three steps → path mode
		{"a/b//c", "", "", 0, true},
		{"name", "", "", 0, true},
		{"//name", "", "", 0, true},
	}
	for _, tc := range cases {
		anc, dsc, mode, err := parseQuery(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("parseQuery(%q) succeeded: %q %q", tc.in, anc, dsc)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseQuery(%q): %v", tc.in, err)
			continue
		}
		if anc != tc.anc || dsc != tc.dsc || mode != tc.mode {
			t.Errorf("parseQuery(%q) = %q,%q,%v", tc.in, anc, dsc, mode)
		}
	}
}

func TestPickAlgorithms(t *testing.T) {
	if algs, err := pickAlgorithms("all"); err != nil || len(algs) != 5 {
		t.Errorf("all: %v, %v", algs, err)
	}
	if algs, err := pickAlgorithms("xr"); err != nil || len(algs) != 1 || algs[0] != xrtree.AlgXRStack {
		t.Errorf("xr: %v, %v", algs, err)
	}
	if _, err := pickAlgorithms("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}
