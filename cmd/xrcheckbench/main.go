// Command xrcheckbench diffs a machine-readable benchmark report (the
// xrbench -json output) against a committed baseline — by SHAPE, not by
// timing. CI runs a reduced-scale smoke report and checks that it still
// has the schema version, sweep structure, algorithm coverage, phase
// breakdowns, parallel-study rows, serving rows, storage-study rows, and
// cluster-study shard fleet of the committed baseline: the kinds
// of regressions a refactor silently introduces (a sweep dropped, an
// algorithm skipped, observation wired out) without any timing noise.
//
// Usage:
//
//	xrcheckbench -baseline BENCH_baseline.json candidate.json
//	curl -s localhost:8080/metrics | xrcheckbench -promlint -
//
// With -promlint the input is a Prometheus text-exposition document (a
// /metrics scrape) instead of a bench report, and the same structural
// checks promtool's linter would apply run against it: declared types,
// legal names, cumulative histogram buckets, no duplicate samples.
//
// Exit status 0 when the candidate matches the baseline's shape (or the
// exposition is clean); 1 with a list of mismatches otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"xrtree"
	"xrtree/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrcheckbench: ")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	promlint := flag.Bool("promlint", false, "lint a Prometheus text-exposition file (- for stdin) instead of diffing a bench report")
	flag.Parse()
	if *promlint {
		os.Exit(lintProm(flag.Args()))
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: xrcheckbench [-baseline file] candidate.json")
	}

	base := load(*baselinePath)
	cand := load(flag.Arg(0))

	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if cand.Schema != base.Schema {
		addf("schema: candidate %q, baseline %q", cand.Schema, base.Schema)
	}
	if len(cand.Sweeps) != len(base.Sweeps) {
		addf("sweeps: candidate has %d, baseline %d", len(cand.Sweeps), len(base.Sweeps))
	}
	for i := 0; i < len(base.Sweeps) && i < len(cand.Sweeps); i++ {
		checkSweep(addf, cand.Sweeps[i], base.Sweeps[i])
	}
	checkParallel(addf, cand.Parallel, base.Parallel)
	checkServing(addf, cand.Serving, base.Serving)
	checkStorage(addf, cand.Storage, base.Storage)
	checkCluster(addf, cand.Cluster, base.Cluster)
	checkMixed(addf, cand.Mixed, base.Mixed)

	if len(problems) > 0 {
		for _, p := range problems {
			log.Printf("MISMATCH: %s", p)
		}
		log.Fatalf("%d shape mismatches against %s", len(problems), *baselinePath)
	}
	fmt.Printf("ok: %s matches the shape of %s (%d sweeps)\n",
		flag.Arg(0), *baselinePath, len(base.Sweeps))
}

func checkSweep(addf func(string, ...any), c, b xrtree.BenchSweep) {
	id := fmt.Sprintf("sweep %s/%s", b.Experiment, b.Corpus)
	if c.Experiment != b.Experiment || c.Corpus != b.Corpus {
		addf("%s: candidate has %s/%s in its place", id, c.Experiment, c.Corpus)
		return
	}
	if len(c.Points) != len(b.Points) {
		addf("%s: %d points, baseline %d", id, len(c.Points), len(b.Points))
		return
	}
	for j, bp := range b.Points {
		cp := c.Points[j]
		pid := fmt.Sprintf("%s point %s", id, bp.Label)
		if cp.Label != bp.Label {
			addf("%s: candidate label %q", pid, cp.Label)
			continue
		}
		if len(cp.Algorithms) != len(bp.Algorithms) {
			addf("%s: %d algorithms, baseline %d", pid, len(cp.Algorithms), len(bp.Algorithms))
			continue
		}
		for k, ba := range bp.Algorithms {
			ca := cp.Algorithms[k]
			aid := fmt.Sprintf("%s alg %s", pid, ba.Alg)
			if ca.Alg != ba.Alg {
				addf("%s: candidate has %s in its place", aid, ca.Alg)
				continue
			}
			// Shape of the observation, not its values: the smoke run must
			// still carry a phase breakdown and an event snapshot, and a
			// join that produced pairs in the baseline must produce pairs.
			if ca.Phases == nil {
				addf("%s: phase breakdown missing", aid)
			} else if *ca.Phases == (xrtree.JoinPhases{}) && *ba.Phases != (xrtree.JoinPhases{}) {
				addf("%s: phase breakdown empty", aid)
			}
			if ca.Events == nil {
				addf("%s: event snapshot missing", aid)
			}
			if ba.OutputPairs > 0 && ca.OutputPairs == 0 {
				addf("%s: no output pairs (baseline had %d)", aid, ba.OutputPairs)
			}
		}
	}
}

func checkParallel(addf func(string, ...any), c, b *xrtree.ParallelStudy) {
	if b == nil {
		return
	}
	if c == nil {
		addf("parallel study missing from candidate")
		return
	}
	if len(c.Rows) != len(b.Rows) {
		addf("parallel study: %d rows, baseline %d", len(c.Rows), len(b.Rows))
		return
	}
	for i, br := range b.Rows {
		cr := c.Rows[i]
		if cr.Workers != br.Workers {
			addf("parallel row %d: workers %d, baseline %d", i, cr.Workers, br.Workers)
		}
		if cr.Pairs == 0 || cr.ElementsScanned == 0 {
			addf("parallel row %d (workers=%d): empty measurement", i, cr.Workers)
		}
		if cr.Pairs != c.Rows[0].Pairs {
			addf("parallel row %d (workers=%d): %d pairs, row 0 has %d — worker counts must not change results",
				i, cr.Workers, cr.Pairs, c.Rows[0].Pairs)
		}
	}
}

// checkServing mirrors checkParallel for the xrblast serving section:
// same row labels and targets, non-empty traffic, and outcome counts that
// partition the request total — never the timings themselves.
func checkServing(addf func(string, ...any), c, b *xrtree.ServingStudy) {
	if b == nil {
		return
	}
	if c == nil {
		addf("serving study missing from candidate")
		return
	}
	if len(c.Rows) != len(b.Rows) {
		addf("serving study: %d rows, baseline %d", len(c.Rows), len(b.Rows))
		return
	}
	for i, br := range b.Rows {
		cr := c.Rows[i]
		id := fmt.Sprintf("serving row %d (%s)", i, br.Label)
		if cr.Label != br.Label {
			addf("%s: candidate label %q", id, cr.Label)
			continue
		}
		if cr.Target != br.Target {
			addf("%s: target %q, baseline %q", id, cr.Target, br.Target)
		}
		if cr.Requests == 0 {
			addf("%s: no traffic", id)
			continue
		}
		if sum := cr.OK + cr.Rejected + cr.Timeouts + cr.Errors; sum != cr.Requests {
			addf("%s: outcomes sum to %d but requests=%d", id, sum, cr.Requests)
		}
		if br.OK > 0 && cr.OK == 0 {
			addf("%s: no successful responses (baseline had %d)", id, br.OK)
		}
		if cr.OK > 0 && cr.Latency.Count == 0 {
			addf("%s: latency histogram empty despite %d completions", id, cr.OK)
		}
	}
}

// checkStorage guards the storage-stack performance claims: the study must
// carry both policy rows, and the 2Q+readahead row must beat the LRU
// baseline on the counters the tentpole optimizations target — strictly
// fewer physical reads, a strictly higher hit rate, and a coalesced-read
// ratio above one (vectored I/O actually merging adjacent pages). These are
// count comparisons on a deterministic workload, not timings, so they are
// safe to gate CI on.
func checkStorage(addf func(string, ...any), c, b *xrtree.StorageStudy) {
	if b == nil {
		return
	}
	if c == nil {
		addf("storage study missing from candidate")
		return
	}
	if len(c.Rows) != len(b.Rows) {
		addf("storage study: %d rows, baseline %d", len(c.Rows), len(b.Rows))
		return
	}
	var lru, twoQ *xrtree.StorageRow
	for i := range c.Rows {
		r := &c.Rows[i]
		switch {
		case r.Policy == "lru" && !r.Prefetch:
			lru = r
		case r.Policy == "2q" && r.Prefetch:
			twoQ = r
		}
	}
	if lru == nil || twoQ == nil {
		addf("storage study: need an lru/no-prefetch row and a 2q/prefetch row")
		return
	}
	for _, r := range []*xrtree.StorageRow{lru, twoQ} {
		id := fmt.Sprintf("storage row %s", r.Policy)
		if r.OutputPairs == 0 {
			addf("%s: joins produced no pairs", id)
		}
		if r.BufferHits == 0 || r.BufferMisses == 0 || r.PhysicalReads == 0 {
			addf("%s: empty measurement", id)
		}
	}
	if lru.PrefetchIssued != 0 || lru.PrefetchReads != 0 {
		addf("storage row lru: prefetch activity (%d issued, %d reads) on the no-prefetch baseline",
			lru.PrefetchIssued, lru.PrefetchReads)
	}
	if lru.ReadCalls != lru.PhysicalReads {
		addf("storage row lru: %d read calls for %d physical reads — demand misses must not coalesce",
			lru.ReadCalls, lru.PhysicalReads)
	}
	if twoQ.PhysicalReads >= lru.PhysicalReads {
		addf("storage: 2q+readahead physical_reads=%d, lru=%d — want strictly fewer",
			twoQ.PhysicalReads, lru.PhysicalReads)
	}
	if twoQ.HitRate <= lru.HitRate {
		addf("storage: 2q+readahead hit_rate=%.4f, lru=%.4f — want strictly higher",
			twoQ.HitRate, lru.HitRate)
	}
	if twoQ.CoalescedRatio <= 1 {
		addf("storage: 2q+readahead coalesced_ratio=%.3f — want > 1 (vectored reads not merging)",
			twoQ.CoalescedRatio)
	}
	if twoQ.ScanEvictions == 0 || twoQ.ProtectedHits == 0 {
		addf("storage row 2q: scan_evictions=%d protected_hits=%d — 2Q accounting wired out",
			twoQ.ScanEvictions, twoQ.ProtectedHits)
	}
	if twoQ.PrefetchReads == 0 {
		addf("storage row 2q: prefetch issued %d hints but read no pages", twoQ.PrefetchIssued)
	}
}

// checkMixed guards the B-link write-concurrency claim: for every writer
// count, the blink row's reader throughput — sampled strictly while
// ingest was in flight — must beat the coarse-latch emulation's. That is
// a ratio between two cells of the same run on the same machine, not an
// absolute timing, so it is safe to gate CI on; everything else checked
// here is shape (row pairing, non-empty measurement windows, latency
// percentiles present wherever reads completed).
func checkMixed(addf func(string, ...any), c, b *xrtree.MixedStudy) {
	if b == nil {
		return
	}
	if c == nil {
		addf("mixed study missing from candidate")
		return
	}
	if len(c.Rows) != len(b.Rows) {
		addf("mixed study: %d rows, baseline %d", len(c.Rows), len(b.Rows))
		return
	}
	cells := map[int]map[string]xrtree.MixedRow{}
	for i, br := range b.Rows {
		cr := c.Rows[i]
		id := fmt.Sprintf("mixed row %d (%s, %d writers)", i, br.Mode, br.Writers)
		if cr.Mode != br.Mode || cr.Writers != br.Writers {
			addf("%s: candidate has (%s, %d writers) in its place", id, cr.Mode, cr.Writers)
			continue
		}
		if cr.WriterOps == 0 || cr.WriterOpsPerSec == 0 {
			addf("%s: no writer traffic", id)
		}
		if cr.ReaderOps == 0 {
			addf("%s: no reader samples during ingest", id)
			continue
		}
		if cr.ReaderP50US <= 0 || cr.ReaderP99US < cr.ReaderP50US {
			addf("%s: broken latency percentiles (p50=%.1fµs p99=%.1fµs)",
				id, cr.ReaderP50US, cr.ReaderP99US)
		}
		if cells[cr.Writers] == nil {
			cells[cr.Writers] = map[string]xrtree.MixedRow{}
		}
		cells[cr.Writers][cr.Mode] = cr
	}
	for writers, byMode := range cells {
		coarse, okC := byMode["coarse"]
		blink, okB := byMode["blink"]
		if !okC || !okB {
			addf("mixed study: writer count %d lacks a coarse/blink row pair", writers)
			continue
		}
		if blink.ReaderOpsPerSec <= coarse.ReaderOpsPerSec {
			addf("mixed (%d writers): blink reader throughput %.0f/s does not beat coarse %.0f/s — per-page latching regressed",
				writers, blink.ReaderOpsPerSec, coarse.ReaderOpsPerSec)
		}
	}
}

// checkCluster guards the distributed-serving section's shape: the same
// shard fleet as the baseline, actual traffic, degraded responses bounded
// by successes, and a non-empty sub-request latency histogram wherever the
// router completed sub-requests. The router's counters are cumulative
// across runs, so a degraded candidate checked against a healthy baseline
// still passes — only structure is compared, never rates or timings.
func checkCluster(addf func(string, ...any), c, b *xrtree.ClusterStudy) {
	if b == nil {
		return
	}
	if c == nil {
		addf("cluster study missing from candidate")
		return
	}
	if c.Router == "" {
		addf("cluster study: empty router URL")
	}
	if c.Requests == 0 {
		addf("cluster study: no traffic")
		return
	}
	if b.OK > 0 && c.OK == 0 {
		addf("cluster study: no successful responses (baseline had %d)", b.OK)
	}
	if c.Degraded > c.OK {
		addf("cluster study: degraded=%d exceeds ok=%d", c.Degraded, c.OK)
	}
	if c.OK > 0 && c.Latency.Count == 0 {
		addf("cluster study: latency histogram empty despite %d completions", c.OK)
	}
	if c.Subrequests == 0 {
		addf("cluster study: router reports no sub-requests")
	}
	names := func(s *xrtree.ClusterStudy) map[string]xrtree.ClusterShardRow {
		m := make(map[string]xrtree.ClusterShardRow, len(s.Shards))
		for _, r := range s.Shards {
			m[r.Name] = r
		}
		return m
	}
	cm, bm := names(c), names(b)
	for name := range bm {
		if _, ok := cm[name]; !ok {
			addf("cluster study: shard %q missing from candidate", name)
		}
	}
	for name, cr := range cm {
		if _, ok := bm[name]; !ok {
			addf("cluster study: shard %q not in baseline", name)
			continue
		}
		if ok := cr.Subrequests - cr.Failures; ok > 0 && cr.Latency.Count == 0 {
			addf("cluster shard %s: latency histogram empty despite %d completed sub-requests", name, ok)
		}
		if cr.Reachable != nil && *cr.Reachable && !cr.Up {
			addf("cluster shard %s: router says down but the client probe reached it", name)
		}
	}
}

// lintProm runs the shared exposition linter (internal/obs.PromLint — the
// same checks the serving tests apply to /metrics) over a file or stdin.
func lintProm(args []string) int {
	var r io.Reader = os.Stdin
	name := "stdin"
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, name = f, args[0]
	} else if len(args) > 1 {
		log.Fatal("usage: xrcheckbench -promlint [file|-]")
	}
	problems := obs.PromLint(r)
	for _, p := range problems {
		log.Printf("PROMLINT: %s: %s", name, p)
	}
	if len(problems) > 0 {
		log.Printf("%d exposition problems in %s", len(problems), name)
		return 1
	}
	fmt.Printf("ok: %s is a clean Prometheus text exposition\n", name)
	return 0
}

func load(path string) *xrtree.BenchReport {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var rep xrtree.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return &rep
}
