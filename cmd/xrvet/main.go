// Command xrvet runs the repo's custom static analyzers over module
// packages, in the manner of go vet:
//
//	go run ./cmd/xrvet ./...            # everything
//	go run ./cmd/xrvet ./internal/core  # one package
//	go run ./cmd/xrvet -run pinleak ./...
//
// The checks (see DESIGN.md "Static analysis & invariants"):
//
//	pinleak        every buffer-pool pin is released on every path
//	latchorder     locks follow tree-latch → pool-shard → pool-series
//	ctxpoll        page/cursor loops poll Counters.Interrupted
//	countersthread Counters is threaded by pointer, never copied/dropped
//
// Exit status is 1 if any analyzer reports a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xrtree/internal/analysis"
	"xrtree/internal/analysis/countersthread"
	"xrtree/internal/analysis/ctxpoll"
	"xrtree/internal/analysis/latchorder"
	"xrtree/internal/analysis/pinleak"
)

var all = []*analysis.Analyzer{
	pinleak.Analyzer,
	latchorder.Analyzer,
	ctxpoll.Analyzer,
	countersthread.Analyzer,
}

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xrvet [-run analyzers] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := all
	if *runFilter != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "xrvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Packages(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrvet:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xrvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "xrvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
