// Command xrvet runs the repo's custom static analyzers over module
// packages, in the manner of go vet:
//
//	go run ./cmd/xrvet ./...            # everything
//	go run ./cmd/xrvet ./internal/core  # one package
//	go run ./cmd/xrvet -run pinleak ./...
//	go run ./cmd/xrvet -nocache ./...   # force a cold run
//
// The checks (see DESIGN.md "Static analysis & invariants"):
//
//	pinleak        every buffer-pool pin is released on every path
//	latchorder     locks follow tree latch → ckpt gate → pool shard →
//	               pool series → cluster shard state → prober
//	ctxpoll        page/cursor loops poll Counters.Interrupted
//	countersthread Counters is threaded by pointer, never copied/dropped
//	walheld        page mutations inside a Tx use held-frame fetches
//	spanend        every started obs.Span is ended on every path
//	errclass       errors crossing the shard boundary are ShardErrors
//	atomicfield    sync/atomic fields are never accessed plainly
//
// Results are cached per (package, analyzer) under the user cache dir,
// keyed by the xrvet binary, the module's export surface, and the
// package's sources; -nocache disables the cache for one run.
//
// Exit status is 1 if any analyzer reports a finding, 2 on load errors —
// including patterns that match no packages at all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xrtree/internal/analysis"
	"xrtree/internal/analysis/atomicfield"
	"xrtree/internal/analysis/countersthread"
	"xrtree/internal/analysis/ctxpoll"
	"xrtree/internal/analysis/errclass"
	"xrtree/internal/analysis/latchorder"
	"xrtree/internal/analysis/pinleak"
	"xrtree/internal/analysis/spanend"
	"xrtree/internal/analysis/walheld"
)

var all = []*analysis.Analyzer{
	pinleak.Analyzer,
	latchorder.Analyzer,
	ctxpoll.Analyzer,
	countersthread.Analyzer,
	walheld.Analyzer,
	spanend.Analyzer,
	errclass.Analyzer,
	atomicfield.Analyzer,
}

func main() {
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	noCache := flag.Bool("nocache", false, "disable the per-package analyzer result cache")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xrvet [-run analyzers] [-nocache] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := all
	if *runFilter != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFilter, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "xrvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrvet:", err)
		os.Exit(2)
	}
	var cache *analysis.Cache
	if !*noCache {
		// Cache failures (no home dir, unreadable binary) silently
		// degrade to cold runs.
		cache, _ = analysis.OpenCache(loader)
	}
	dirs, err := loader.PackageDirs(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "xrvet:", err)
		os.Exit(2)
	}

	findings := 0
	for _, dir := range dirs {
		key := cache.PackageKey(dir)
		var lines []string
		var miss []*analysis.Analyzer
		for _, a := range analyzers {
			if cached, ok := cache.Get(key, a.Name); ok {
				lines = append(lines, cached...)
			} else {
				miss = append(miss, a)
			}
		}
		if len(miss) > 0 {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xrvet:", err)
				os.Exit(2)
			}
			for _, a := range miss {
				diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
				if err != nil {
					fmt.Fprintln(os.Stderr, "xrvet:", err)
					os.Exit(2)
				}
				var rendered []string
				for _, d := range diags {
					rendered = append(rendered, fmt.Sprintf("%s: %s", pkg.Fset.Position(d.Pos), d.Message))
				}
				cache.Put(key, a.Name, rendered)
				lines = append(lines, rendered...)
			}
		}
		for _, line := range lines {
			fmt.Println(line)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "xrvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
