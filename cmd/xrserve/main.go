// Command xrserve serves structural-join and path-expression queries over
// HTTP/JSON from stores built by xrload (or from XML documents indexed at
// startup), with admission control: bounded concurrency, a bounded
// deadline-aware wait queue, per-request timeouts, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	xrload -in dept.xml -store dept.db -tags department,employee,name
//	xrserve -store dept=dept.db -addr :8080
//	curl 'localhost:8080/api/v1/join?anc=employee&desc=name&alg=xr&stats=1'
//
//	xrserve -xml docs=a.xml,b.xml            # path queries + parallel joins
//	curl 'localhost:8080/api/v1/query?path=departments//employee/name'
//
// Endpoints: /api/v1/join, /api/v1/query, /api/v1/insert, /api/v1/stats,
// /api/v1/backends, /debug/vars, /debug/traces, /metrics, /healthz. Request tracing is
// enabled with -trace-sample (or per request via a sampled traceparent
// header); -slow-trace pins outliers in the flight recorder; -debug-addr
// serves net/http/pprof on a separate listener. See DESIGN.md "Serving"
// and "Request tracing".
//
// Cluster mode (DESIGN.md "Distributed serving"): with -cluster FILE and
// no -shard, xrserve runs as a router — no local backends, every join and
// query scatter-gathers across the shards named in FILE, /api/v1/cluster
// reports fleet health. A shard node serves a DocId slice of the corpus:
// either -owns 1-4 (explicit claim, used by scripts) or -shard NAME with
// -cluster FILE (ownership derived from the placement ring). A router
// refuses to start when the config's explicit ownership claims overlap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xrtree"
	"xrtree/internal/cluster"
	"xrtree/internal/server"
)

// backendFlag collects repeatable name=path[,path...] flag values.
type backendFlag struct {
	entries []backendSpec
}

type backendSpec struct {
	name  string
	paths []string
}

func (f *backendFlag) String() string {
	var parts []string
	for _, e := range f.entries {
		parts = append(parts, e.name+"="+strings.Join(e.paths, ","))
	}
	return strings.Join(parts, " ")
}

func (f *backendFlag) Set(v string) error {
	name, paths, ok := strings.Cut(v, "=")
	if !ok || name == "" || paths == "" {
		return fmt.Errorf("want name=path[,path...], got %q", v)
	}
	f.entries = append(f.entries, backendSpec{name: name, paths: strings.Split(paths, ",")})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrserve: ")
	var stores, xmls backendFlag
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file (port discovery for scripts)")
		maxConcurrent = flag.Int("max-concurrent", 8, "requests executing at once")
		maxQueue      = flag.Int("max-queue", 0, "admission queue bound (0: 2×max-concurrent, negative: no queue)")
		defTimeout    = flag.Duration("timeout", 10*time.Second, "default per-request timeout")
		maxTimeout    = flag.Duration("max-timeout", 60*time.Second, "cap on requested timeouts")
		workers       = flag.Int("workers", 1, "default parallel-join workers for document backends")
		limit         = flag.Int("limit", 10, "default result-sample size")
		buffers       = flag.Int("buffers", 100, "buffer pool pages per store")
		useWAL        = flag.Bool("wal", false, "open -store backends with the write-ahead log: recovery runs on open, mutations are crash-durable")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-drain bound on shutdown")
		traceSample   = flag.Float64("trace-sample", 0, "head-based trace sampling rate in [0,1] (0: only requests with a sampled traceparent)")
		traceBuffer   = flag.Int("trace-buffer", 64, "flight-recorder capacity (completed traces)")
		tracePinned   = flag.Int("trace-pinned", 16, "pinned slow-trace ring capacity")
		slowTrace     = flag.Duration("slow-trace", 0, "pin traces at or above this duration (0: disabled)")
		traceSeed     = flag.Uint64("trace-seed", 0, "seed for sampling and trace ids (0: random; fixed seeds are deterministic)")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof on this separate listener (empty: disabled)")
		clusterFile   = flag.String("cluster", "", "cluster membership file: router mode without -shard, ring ownership with -shard")
		shardName     = flag.String("shard", "", "this node's shard name in the -cluster file")
		ownsFlag      = flag.String("owns", "", "DocId ranges this shard owns, e.g. 1-4,9 (explicit claim)")
		subTimeout    = flag.Duration("sub-timeout", 5*time.Second, "router: per-shard sub-request budget")
		hedgeAfter    = flag.Duration("hedge-after", 0, "router: fixed hedge delay (0: derive from each shard's p99)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "router: /healthz probe cadence")
		fanout        = flag.Int("fanout", 8, "router: concurrent shard sub-requests")
	)
	flag.Var(&stores, "store", "store backend, name=path (repeatable; path built by xrload)")
	flag.Var(&xmls, "xml", "document backend, name=file.xml[@docid][,file2.xml...] (repeatable)")
	flag.Parse()
	routerMode := *clusterFile != "" && *shardName == ""
	if routerMode && len(stores.entries)+len(xmls.entries) > 0 {
		log.Fatal("router mode (-cluster without -shard) serves no local backends; drop -store/-xml or add -shard")
	}
	if !routerMode && len(stores.entries)+len(xmls.entries) == 0 {
		log.Fatal("at least one -store or -xml backend is required")
	}

	var owns func(uint32) bool
	if *ownsFlag != "" {
		set, err := cluster.ParseDocSet(*ownsFlag)
		if err != nil {
			log.Fatalf("-owns: %v", err)
		}
		owns = func(id uint32) bool { return cluster.DocSetContains(set, id) }
	}
	if *shardName != "" && owns == nil {
		// Ownership comes from the same placement ring the router uses, so
		// shard and router agree on every DocId by construction.
		if *clusterFile == "" {
			log.Fatal("-shard needs -cluster (ring ownership) or -owns (explicit claim)")
		}
		ccfg, err := cluster.ParseConfigFile(*clusterFile)
		if err != nil {
			log.Fatal(err)
		}
		if ccfg.Shard(*shardName) == nil {
			log.Fatalf("-shard %q is not in %s", *shardName, *clusterFile)
		}
		ring, name := cluster.NewRing(ccfg), *shardName
		owns = func(id uint32) bool {
			owner, ok := ring.Owner(id)
			return ok && owner == name
		}
	}

	scfg := server.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		DefaultLimit:   *limit,
		TraceSample:    *traceSample,
		TraceBuffer:    *traceBuffer,
		TracePinned:    *tracePinned,
		SlowTrace:      *slowTrace,
		TraceSeed:      *traceSeed,
		ShardName:      *shardName,
		Owns:           owns,
	}
	var srv *server.Server
	if routerMode {
		ccfg, err := cluster.ParseConfigFile(*clusterFile)
		if err != nil {
			var oe *cluster.OverlapError
			if errors.As(err, &oe) {
				log.Fatalf("refusing to start: %v", err)
			}
			log.Fatal(err)
		}
		coord, err := cluster.New(ccfg, cluster.Options{
			SubTimeout:    *subTimeout,
			HedgeAfter:    *hedgeAfter,
			ProbeInterval: *probeInterval,
			Fanout:        *fanout,
		})
		if err != nil {
			log.Fatal(err)
		}
		coord.Start()
		defer coord.Close()
		srv = server.NewRouter(scfg, coord)
		log.Printf("router over %d shards (%s)", len(ccfg.Shards), *clusterFile)
	} else {
		srv = server.New(scfg)
	}

	var closers []func() error
	defer func() {
		for _, c := range closers {
			if err := c(); err != nil {
				log.Printf("close: %v", err)
			}
		}
	}()

	for _, e := range stores.entries {
		if len(e.paths) != 1 {
			log.Fatalf("-store %s: exactly one store file per backend", e.name)
		}
		st, err := xrtree.OpenStore(e.paths[0], xrtree.StoreOptions{BufferPages: *buffers, WAL: *useWAL})
		if err != nil {
			if errors.Is(err, xrtree.ErrRecoveryNeeded) {
				log.Fatalf("-store %s: %v (pass -wal to recover)", e.name, err)
			}
			log.Fatalf("-store %s: %v", e.name, err)
		}
		if rep := st.Recovery(); rep != nil && rep.Replayed() {
			log.Printf("-store %s: recovered: %d transactions redone, %d pages, torn tail: %v",
				e.name, rep.TxCommitted, rep.PagesApplied, rep.TornTail)
		}
		closers = append(closers, st.Close)
		if err := srv.AddStore(e.name, st); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range xmls.entries {
		st, err := xrtree.NewMemStore(xrtree.StoreOptions{BufferPages: *buffers})
		if err != nil {
			log.Fatal(err)
		}
		closers = append(closers, st.Close)
		var docs []*xrtree.Document
		nextID := uint32(1)
		for _, spec := range e.paths {
			path, idStr, hasID := strings.Cut(spec, "@")
			docID := nextID
			if hasID {
				n, err := strconv.ParseUint(idStr, 10, 32)
				if err != nil || n == 0 {
					log.Fatalf("-xml %s: bad doc id %q (want file.xml@N, N ≥ 1)", e.name, idStr)
				}
				docID = uint32(n)
			}
			nextID = docID + 1
			f, err := os.Open(path)
			if err != nil {
				log.Fatalf("-xml %s: %v", e.name, err)
			}
			doc, err := xrtree.ParseXML(f, docID)
			f.Close()
			if err != nil {
				log.Fatalf("-xml %s: %s: %v", e.name, path, err)
			}
			docs = append(docs, doc)
		}
		if err := srv.AddDocuments(e.name, st, docs...); err != nil {
			log.Fatal(err)
		}
	}

	// The pprof endpoints go on their own listener, never the serving
	// address: profiles are operator-only (bind -debug-addr to loopback or
	// a private interface) and a long profile download must not occupy an
	// admission slot. Handlers are registered on a private mux so nothing
	// here depends on http.DefaultServeMux.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("serving on http://%s (max-concurrent=%d)", ln.Addr(), *maxConcurrent)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (bound %v)...", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Print("drained cleanly")
}
