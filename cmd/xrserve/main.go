// Command xrserve serves structural-join and path-expression queries over
// HTTP/JSON from stores built by xrload (or from XML documents indexed at
// startup), with admission control: bounded concurrency, a bounded
// deadline-aware wait queue, per-request timeouts, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	xrload -in dept.xml -store dept.db -tags department,employee,name
//	xrserve -store dept=dept.db -addr :8080
//	curl 'localhost:8080/api/v1/join?anc=employee&desc=name&alg=xr&stats=1'
//
//	xrserve -xml docs=a.xml,b.xml            # path queries + parallel joins
//	curl 'localhost:8080/api/v1/query?path=departments//employee/name'
//
// Endpoints: /api/v1/join, /api/v1/query, /api/v1/stats, /api/v1/backends,
// /debug/vars, /debug/traces, /metrics, /healthz. Request tracing is
// enabled with -trace-sample (or per request via a sampled traceparent
// header); -slow-trace pins outliers in the flight recorder; -debug-addr
// serves net/http/pprof on a separate listener. See DESIGN.md "Serving"
// and "Request tracing".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xrtree"
	"xrtree/internal/server"
)

// backendFlag collects repeatable name=path[,path...] flag values.
type backendFlag struct {
	entries []backendSpec
}

type backendSpec struct {
	name  string
	paths []string
}

func (f *backendFlag) String() string {
	var parts []string
	for _, e := range f.entries {
		parts = append(parts, e.name+"="+strings.Join(e.paths, ","))
	}
	return strings.Join(parts, " ")
}

func (f *backendFlag) Set(v string) error {
	name, paths, ok := strings.Cut(v, "=")
	if !ok || name == "" || paths == "" {
		return fmt.Errorf("want name=path[,path...], got %q", v)
	}
	f.entries = append(f.entries, backendSpec{name: name, paths: strings.Split(paths, ",")})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrserve: ")
	var stores, xmls backendFlag
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file (port discovery for scripts)")
		maxConcurrent = flag.Int("max-concurrent", 8, "requests executing at once")
		maxQueue      = flag.Int("max-queue", 0, "admission queue bound (0: 2×max-concurrent, negative: no queue)")
		defTimeout    = flag.Duration("timeout", 10*time.Second, "default per-request timeout")
		maxTimeout    = flag.Duration("max-timeout", 60*time.Second, "cap on requested timeouts")
		workers       = flag.Int("workers", 1, "default parallel-join workers for document backends")
		limit         = flag.Int("limit", 10, "default result-sample size")
		buffers       = flag.Int("buffers", 100, "buffer pool pages per store")
		useWAL        = flag.Bool("wal", false, "open -store backends with the write-ahead log: recovery runs on open, mutations are crash-durable")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-drain bound on shutdown")
		traceSample   = flag.Float64("trace-sample", 0, "head-based trace sampling rate in [0,1] (0: only requests with a sampled traceparent)")
		traceBuffer   = flag.Int("trace-buffer", 64, "flight-recorder capacity (completed traces)")
		tracePinned   = flag.Int("trace-pinned", 16, "pinned slow-trace ring capacity")
		slowTrace     = flag.Duration("slow-trace", 0, "pin traces at or above this duration (0: disabled)")
		traceSeed     = flag.Uint64("trace-seed", 0, "seed for sampling and trace ids (0: random; fixed seeds are deterministic)")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof on this separate listener (empty: disabled)")
	)
	flag.Var(&stores, "store", "store backend, name=path (repeatable; path built by xrload)")
	flag.Var(&xmls, "xml", "document backend, name=file.xml[,file2.xml...] (repeatable)")
	flag.Parse()
	if len(stores.entries)+len(xmls.entries) == 0 {
		log.Fatal("at least one -store or -xml backend is required")
	}

	srv := server.New(server.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		DefaultLimit:   *limit,
		TraceSample:    *traceSample,
		TraceBuffer:    *traceBuffer,
		TracePinned:    *tracePinned,
		SlowTrace:      *slowTrace,
		TraceSeed:      *traceSeed,
	})

	var closers []func() error
	defer func() {
		for _, c := range closers {
			if err := c(); err != nil {
				log.Printf("close: %v", err)
			}
		}
	}()

	for _, e := range stores.entries {
		if len(e.paths) != 1 {
			log.Fatalf("-store %s: exactly one store file per backend", e.name)
		}
		st, err := xrtree.OpenStore(e.paths[0], xrtree.StoreOptions{BufferPages: *buffers, WAL: *useWAL})
		if err != nil {
			if errors.Is(err, xrtree.ErrRecoveryNeeded) {
				log.Fatalf("-store %s: %v (pass -wal to recover)", e.name, err)
			}
			log.Fatalf("-store %s: %v", e.name, err)
		}
		if rep := st.Recovery(); rep != nil && rep.Replayed() {
			log.Printf("-store %s: recovered: %d transactions redone, %d pages, torn tail: %v",
				e.name, rep.TxCommitted, rep.PagesApplied, rep.TornTail)
		}
		closers = append(closers, st.Close)
		if err := srv.AddStore(e.name, st); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range xmls.entries {
		st, err := xrtree.NewMemStore(xrtree.StoreOptions{BufferPages: *buffers})
		if err != nil {
			log.Fatal(err)
		}
		closers = append(closers, st.Close)
		var docs []*xrtree.Document
		for i, path := range e.paths {
			f, err := os.Open(path)
			if err != nil {
				log.Fatalf("-xml %s: %v", e.name, err)
			}
			doc, err := xrtree.ParseXML(f, uint32(i+1))
			f.Close()
			if err != nil {
				log.Fatalf("-xml %s: %s: %v", e.name, path, err)
			}
			docs = append(docs, doc)
		}
		if err := srv.AddDocuments(e.name, st, docs...); err != nil {
			log.Fatal(err)
		}
	}

	// The pprof endpoints go on their own listener, never the serving
	// address: profiles are operator-only (bind -debug-addr to loopback or
	// a private interface) and a long profile download must not occupy an
	// admission slot. Handlers are registered on a private mux so nothing
	// here depends on http.DefaultServeMux.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("-debug-addr: %v", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
		go func() {
			if err := http.Serve(dln, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("serving on http://%s (max-concurrent=%d)", ln.Addr(), *maxConcurrent)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (bound %v)...", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Print("drained cleanly")
}
