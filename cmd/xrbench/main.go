// Command xrbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	table2   — Table 2: elements scanned, ancestor-selectivity sweep
//	fig8ab   — Figure 8(a)(b): time for the ancestor-selectivity sweep
//	table3   — Table 3: elements scanned, descendant-selectivity sweep
//	fig8cd   — Figure 8(c)(d): time for the descendant-selectivity sweep
//	fig8ef   — Figure 8(e)(f): both selectivities varied, sizes constant
//	stablist — §3.3 stab-list size study
//	updates  — §4 amortized update-cost study (Theorems 1–2)
//	ops      — §5 basic-operation cost study (Theorems 3–4)
//	ablation — §3.2 separator key-choice ablation
//	pc       — §5.3 extension: the ancestor sweep under parent-child joins
//	parallel — workers-speedup sweep of the parallel join driver
//	storage  — storage-stack study: LRU vs 2Q+readahead on the mixed
//	           probe/scan/join workload
//	mixed    — concurrent read/write latching study: coarse-latch
//	           emulation vs B-link per-page latching, -writers writers
//	           against -readers readers
//	all      — everything above
//
// Usage:
//
//	xrbench -exp table2 -scale 1.0 -seed 1
//	xrbench -exp table2 -csv out/   # also write plotting-friendly CSVs
//	xrbench -json BENCH_xrbench.json  # machine-readable report of all
//	                                  # three selectivity sweeps, with
//	                                  # phase breakdowns and histograms
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"xrtree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xrbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment id (see package comment)")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "corpus size multiplier")
		buffers = flag.Int("buffers", 100, "buffer pool pages")
		workers = flag.Int("workers", 4, "maximum worker count for the parallel experiment")
		writers = flag.Int("writers", 4, "maximum concurrent writer count for the mixed experiment (sweeps 1 and this)")
		readers = flag.Int("readers", 4, "concurrent reader count for the mixed experiment")
		csvDir  = flag.String("csv", "", "also write each sweep as CSV files into this directory")
		jsonOut = flag.String("json", "", "write the machine-readable benchmark report (schema xrtree-bench/1) to this file and exit")
		policy  = flag.String("pool-policy", "lru", "buffer replacement policy for every measured store: lru or 2q")
		prefet  = flag.Bool("prefetch", false, "enable asynchronous readahead in every measured store")
	)
	flag.Parse()

	pol, err := xrtree.ParsePoolPolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	cfg := xrtree.ExperimentConfig{
		Seed: *seed, Scale: *scale, BufferPages: *buffers,
		PoolPolicy: pol, Prefetch: *prefet,
	}

	if *jsonOut != "" {
		// Open the output before the (long) sweep run so a bad path fails
		// immediately.
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		rep := must(xrtree.BuildBenchReport(cfg))
		check(rep.WriteJSON(f))
		check(f.Close())
		log.Printf("wrote %s", *jsonOut)
		return
	}
	run := func(id string) {
		switch id {
		case "table2":
			res := must(xrtree.RunAncestorSweep(cfg))
			for _, r := range res {
				fmt.Printf("\nTable 2 — elements scanned, 99%% of descendants join (%s)\n", r.Corpus)
				check(xrtree.FormatScannedTable(os.Stdout, r, "Join-A"))
				writeCSV(*csvDir, "table2", r, "join_a")
			}
		case "fig8ab":
			res := must(xrtree.RunAncestorSweep(cfg))
			for _, r := range res {
				fmt.Printf("\nFigure 8(a)(b) — elapsed time, ancestor sweep (%s)\n", r.Corpus)
				check(xrtree.FormatTimeTable(os.Stdout, r, "Join-A"))
			}
		case "table3":
			res := must(xrtree.RunDescendantSweep(cfg))
			for _, r := range res {
				fmt.Printf("\nTable 3 — elements scanned, 99%% of ancestors join (%s)\n", r.Corpus)
				check(xrtree.FormatScannedTable(os.Stdout, r, "Join-D"))
				writeCSV(*csvDir, "table3", r, "join_d")
			}
		case "fig8cd":
			res := must(xrtree.RunDescendantSweep(cfg))
			for _, r := range res {
				fmt.Printf("\nFigure 8(c)(d) — elapsed time, descendant sweep (%s)\n", r.Corpus)
				check(xrtree.FormatTimeTable(os.Stdout, r, "Join-D"))
			}
		case "fig8ef":
			res := must(xrtree.RunBothSweep(cfg))
			for _, r := range res {
				fmt.Printf("\nFigure 8(e)(f) — elapsed time, both selectivities vary, sizes constant (%s)\n", r.Corpus)
				check(xrtree.FormatTimeTable(os.Stdout, r, "Join-A&D"))
				check(xrtree.FormatScannedTable(os.Stdout, r, "Join-A&D"))
				writeCSV(*csvDir, "fig8ef", r, "join_ad")
			}
		case "pc":
			// Extension (§5.3): the ancestor sweep under parent-child
			// semantics — the same skipping machinery with the level filter.
			pcCfg := cfg
			pcCfg.Mode = xrtree.ParentChild
			res := must(xrtree.RunAncestorSweep(pcCfg))
			for _, r := range res {
				fmt.Printf("\n§5.3 extension — parent-child joins, ancestor sweep (%s)\n", r.Corpus)
				check(xrtree.FormatScannedTable(os.Stdout, r, "Join-A"))
			}
		case "parallel":
			ws := []int{1}
			for w := 2; w < *workers; w *= 2 {
				ws = append(ws, w)
			}
			if *workers > 1 {
				ws = append(ws, *workers)
			}
			s := must(xrtree.RunParallelStudy(xrtree.ParallelStudyConfig{
				Seed:        *seed,
				Departments: int(25 * *scale),
				Workers:     ws,
			}))
			fmt.Println("\nParallel driver — workers speedup, multi-document employee//name join")
			check(xrtree.FormatParallelStudy(os.Stdout, s))
		case "storage":
			s := must(xrtree.RunStorageStudy(xrtree.StorageStudyConfig{
				Seed: *seed, BufferPages: *buffers,
			}))
			fmt.Println("\nStorage stack — LRU baseline vs 2Q+readahead, mixed probe/scan/join workload")
			check(xrtree.FormatStorageStudy(os.Stdout, s))
		case "mixed":
			ws := []int{1}
			if *writers > 1 {
				ws = append(ws, *writers)
			}
			s := must(xrtree.RunMixedStudy(xrtree.MixedStudyConfig{
				Seed:     *seed,
				Elements: int(20000 * *scale),
				Writers:  ws,
				Readers:  *readers,
			}))
			fmt.Println("\nMixed read/write — coarse-latch emulation vs B-link per-page latching")
			check(xrtree.FormatMixedStudy(os.Stdout, s))
		case "stablist":
			rows := must(xrtree.RunStabListStudy(xrtree.StabStudyConfig{
				Seed: *seed, Elements: int(20000 * *scale),
			}))
			fmt.Println("\n§3.3 — stab-list sizes vs nesting depth")
			check(xrtree.FormatStabStudy(os.Stdout, rows))
		case "updates":
			rows := must(xrtree.RunUpdateCostStudy(*seed, nil))
			fmt.Println("\n§4 — amortized update cost (page accesses per operation)")
			check(xrtree.FormatUpdateStudy(os.Stdout, rows))
		case "ops":
			rows := must(xrtree.RunBasicOpsStudy(*seed, nil, 0))
			fmt.Println("\n§5 — FindAncestors / FindDescendants cost (page accesses per probe)")
			check(xrtree.FormatOpsStudy(os.Stdout, rows))
		case "ablation":
			fmt.Println("\n§3.2 ablation — separator key choice on/off")
			on := must(xrtree.RunStabListStudy(xrtree.StabStudyConfig{
				Seed: *seed, Elements: int(20000 * *scale),
			}))
			off := must(xrtree.RunStabListStudy(xrtree.StabStudyConfig{
				Seed: *seed, Elements: int(20000 * *scale), DisableKeyChoice: true,
			}))
			fmt.Println("with key choice (prefer separator s−1):")
			check(xrtree.FormatStabStudy(os.Stdout, on))
			fmt.Println("without key choice:")
			check(xrtree.FormatStabStudy(os.Stdout, off))
		default:
			log.Fatalf("unknown experiment %q", id)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"table2", "fig8ab", "table3", "fig8cd", "fig8ef", "stablist", "updates", "ops", "ablation", "pc", "parallel", "storage", "mixed"} {
			fmt.Printf("\n==== %s ====\n", strings.ToUpper(id))
			run(id)
		}
		return
	}
	run(*exp)
}

// writeCSV writes one sweep's CSV file into dir (no-op when dir is empty).
func writeCSV(dir, exp string, r xrtree.SweepResult, axis string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	name := fmt.Sprintf("%s_%s.csv", exp, strings.ReplaceAll(r.Corpus, " ", "_"))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := xrtree.WriteCSV(f, r, axis); err != nil {
		log.Fatal(err)
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
