package xrtree

// Multi-document support. The paper's structural-join definition (§2.2)
// joins (DocId, start, end, level) tuples with the condition
// a.DocId == d.DocId: input lists cover a whole collection and pairs never
// cross documents. Since region codes of different documents are
// independent, the standard evaluation is per-document joins over lists
// grouped by DocId — which is what Collection provides on top of the
// single-document machinery.

import (
	"context"
	"fmt"
	"sort"

	"xrtree/internal/join"
	"xrtree/internal/metrics"
)

// Collection indexes tag sets across multiple documents and runs
// structural joins with the DocId equality condition.
type Collection struct {
	store *Store
	docs  []*IndexedDocument
	byID  map[uint32]*IndexedDocument
}

// NewCollection creates an empty collection over the store.
func (s *Store) NewCollection() *Collection {
	return &Collection{store: s, byID: make(map[uint32]*IndexedDocument)}
}

// Add registers a parsed document. DocIDs must be unique.
func (c *Collection) Add(doc *Document) error {
	if _, dup := c.byID[doc.DocID]; dup {
		return fmt.Errorf("xrtree: collection already holds DocID %d", doc.DocID)
	}
	idx := c.store.IndexDocument(doc)
	c.docs = append(c.docs, idx)
	c.byID[doc.DocID] = idx
	return nil
}

// Len returns the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Documents returns the indexed documents in insertion order.
func (c *Collection) Documents() []*IndexedDocument {
	return append([]*IndexedDocument(nil), c.docs...)
}

// Join runs the structural join ancTag × descTag across every document of
// the collection with the given algorithm, enforcing the DocId condition
// by joining per document. Costs accumulate into st.
func (c *Collection) Join(alg Algorithm, mode Mode, ancTag, descTag string, emit EmitFunc, st *Stats) error {
	if emit == nil {
		emit = func(Element, Element) {}
	}
	for _, idx := range c.docs {
		as := idx.doc.ElementsByTag(ancTag)
		ds := idx.doc.ElementsByTag(descTag)
		if len(as) == 0 || len(ds) == 0 {
			continue
		}
		a, err := c.setFor(idx, ancTag, as)
		if err != nil {
			return err
		}
		d, err := c.setFor(idx, descTag, ds)
		if err != nil {
			return err
		}
		if err := Join(alg, mode, a, d, emit, st); err != nil {
			return fmt.Errorf("xrtree: DocID %d: %w", idx.doc.DocID, err)
		}
	}
	return nil
}

// ParallelJoinOptions configures Collection.ParallelJoin.
type ParallelJoinOptions struct {
	// Workers is the number of join goroutines; ≤ 0 selects GOMAXPROCS,
	// 1 degrades to the sequential per-document loop.
	Workers int
	// Keep, when non-nil, restricts the join to documents it accepts.
	// Since pairs never cross documents (§2.2), the filtered result is
	// exactly the unfiltered stream with the rejected documents' pairs cut
	// out — the property cluster shards rely on to serve a DocId slice.
	Keep func(docID uint32) bool
}

// ParallelJoin is Collection.Join distributed over a worker pool: the join
// partitions by DocId (pairs never cross documents, §2.2), each worker
// runs whole per-document joins, and results reach emit in document order
// — the exact pair stream of the sequential Join. Costs from every worker
// are merged into st after the pool drains, so st needs no atomicity; a
// Tracer carried by st must be safe for concurrent use (Collector is).
// Index building happens up front in the calling goroutine and is not
// parallelized.
func (c *Collection) ParallelJoin(alg Algorithm, mode Mode, ancTag, descTag string, emit EmitFunc, st *Stats, opts ParallelJoinOptions) error {
	var tasks []join.Task
	for _, idx := range c.docs {
		if opts.Keep != nil && !opts.Keep(idx.doc.DocID) {
			continue
		}
		as := idx.doc.ElementsByTag(ancTag)
		ds := idx.doc.ElementsByTag(descTag)
		if len(as) == 0 || len(ds) == 0 {
			continue
		}
		a, err := c.setFor(idx, ancTag, as)
		if err != nil {
			return err
		}
		d, err := c.setFor(idx, descTag, ds)
		if err != nil {
			return err
		}
		docID := idx.doc.DocID
		tasks = append(tasks, join.Task{
			DocID: docID,
			Run: func(emit EmitFunc, jc *metrics.Counters) error {
				if err := Join(alg, mode, a, d, emit, jc); err != nil {
					return fmt.Errorf("xrtree: DocID %d: %w", docID, err)
				}
				return nil
			},
		})
	}
	return join.Parallel(tasks, join.Options{Workers: opts.Workers}, emit, st)
}

// ParallelJoinContext is ParallelJoin with cancellation: a canceled or
// timed-out context stops dispatching new per-document partitions, stops
// each in-flight partition at its next poll point, and returns ctx's error.
func (c *Collection) ParallelJoinContext(ctx context.Context, alg Algorithm, mode Mode, ancTag, descTag string, emit EmitFunc, st *Stats, opts ParallelJoinOptions) error {
	return withCtx(ctx, st, func(st *Stats) error {
		return c.ParallelJoin(alg, mode, ancTag, descTag, emit, st, opts)
	})
}

// setFor builds (or reuses) the full three-path index for a tag within one
// document, serialized by the document's mutex so concurrent requests
// against one collection never race on lazy index construction.
func (c *Collection) setFor(idx *IndexedDocument, tag string, els []Element) (*ElementSet, error) {
	return idx.fullSet(tag, els)
}

// DocIDs returns the collection's document ids in ascending order.
func (c *Collection) DocIDs() []uint32 {
	ids := make([]uint32, 0, len(c.docs))
	for _, idx := range c.docs {
		ids = append(ids, idx.doc.DocID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Query evaluates a path expression over every document and returns the
// union of the results, sorted by (DocID, start).
func (c *Collection) Query(expr string, st *Stats) ([]Element, error) {
	return c.QueryDocs(expr, nil, st)
}

// QueryDocs is Query restricted to the documents keep accepts (nil keeps
// all) — the query-side counterpart of ParallelJoinOptions.Keep.
func (c *Collection) QueryDocs(expr string, keep func(docID uint32) bool, st *Stats) ([]Element, error) {
	var out []Element
	for _, idx := range c.docs {
		if keep != nil && !keep(idx.doc.DocID) {
			continue
		}
		els, err := idx.Query(expr, st)
		if err != nil {
			return nil, fmt.Errorf("xrtree: DocID %d: %w", idx.doc.DocID, err)
		}
		out = append(out, els...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DocID != out[j].DocID {
			return out[i].DocID < out[j].DocID
		}
		return out[i].Start < out[j].Start
	})
	return out, nil
}

// QueryContext is Query with cancellation, stopping between per-document
// evaluations and at the pipeline's poll points within one.
func (c *Collection) QueryContext(ctx context.Context, expr string, st *Stats) ([]Element, error) {
	return c.QueryContextDocs(ctx, expr, nil, st)
}

// QueryContextDocs is QueryDocs with cancellation.
func (c *Collection) QueryContextDocs(ctx context.Context, expr string, keep func(docID uint32) bool, st *Stats) ([]Element, error) {
	var out []Element
	err := withCtx(ctx, st, func(st *Stats) error {
		var err error
		out, err = c.QueryDocs(expr, keep, st)
		return err
	})
	return out, err
}
