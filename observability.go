package xrtree

// Public surface of the observability layer (internal/obs): tracers,
// event collectors with histograms, per-join-phase breakdowns, and the
// derived skipping-effectiveness metric the paper's Table 3 discussion is
// about. Tracing is strictly opt-in — with no tracer attached every Emit
// call is two nil checks and zero allocations (see
// BenchmarkJoinTracerOverhead).

import (
	"context"

	"xrtree/internal/obs"
)

// Tracer receives structured trace events. Implementations must be safe
// for concurrent use; Collector is the standard implementation.
type Tracer = obs.Tracer

// EventKind identifies one traced operation kind.
type EventKind = obs.EventKind

// The trace event vocabulary (see internal/obs for each kind's value
// semantics: tree heights, scan lengths, skip distances, batch sizes,
// nanoseconds).
const (
	EvIndexDescend = obs.EvIndexDescend
	EvStabScan     = obs.EvStabScan
	EvLeafScan     = obs.EvLeafScan
	EvSkipDesc     = obs.EvSkipDesc
	EvSkipAnc      = obs.EvSkipAnc
	EvAncProbe     = obs.EvAncProbe
	EvOutput       = obs.EvOutput
	EvPageRead     = obs.EvPageRead
	EvPageWrite    = obs.EvPageWrite
	EvPageEvict    = obs.EvPageEvict
	EvJoinSpan     = obs.EvJoinSpan
)

// Request tracing (see internal/obs): Span implements Tracer, so a span
// attached through Stats.Tracer receives every engine event as a typed
// attribute while the events also roll up into the owning Trace. The
// serving layer creates one Trace per sampled request; embedders can do
// the same around any engine call.
type (
	// Span is one timed phase of a request trace; it implements Tracer.
	Span = obs.Span
	// SpanTracer is a Tracer that can open child spans (*Span implements
	// it); layers that want sub-structure type-assert the tracer they hold.
	SpanTracer = obs.SpanTracer
	// RequestTrace is one request's span tree plus an event rollup.
	RequestTrace = obs.Trace
	// TraceRecord is the exported, JSON-serializable form of a completed
	// trace — the element type of /debug/traces and xrtrace's input.
	TraceRecord = obs.TraceRecord
	// SpanRecord is the exported form of one span within a TraceRecord.
	SpanRecord = obs.SpanRecord
	// FlightRecorder retains the last N completed traces, pinning slow
	// outliers past a threshold.
	FlightRecorder = obs.FlightRecorder
)

// NewRequestTrace starts a request trace and its root span. A zero id
// mints a fresh one; next (usually a Collector) receives a copy of every
// span event.
func NewRequestTrace(name string, id obs.TraceID, parent obs.SpanID, ids *obs.IDSource, next Tracer) *RequestTrace {
	return obs.NewTrace(name, id, parent, ids, next)
}

// NewFlightRecorder returns a recorder holding the last size completed
// traces plus pinned slow traces.
func NewFlightRecorder(size, pinned int) *FlightRecorder {
	return obs.NewFlightRecorder(size, pinned)
}

// Collector is the standard Tracer: lock-free per-kind counters and
// fixed-bucket histograms of event values.
type Collector = obs.Collector

// NewCollector returns an empty Collector ready to attach as a Tracer.
func NewCollector() *Collector { return obs.NewCollector() }

// JoinPhases is the per-phase breakdown of one traced join: ancestor
// probing, ancestor/descendant skipping, and output emission.
type JoinPhases = obs.JoinPhases

// TraceSnapshot is a point-in-time export of a Collector: per-event counts,
// value sums, and histograms, JSON-serializable.
type TraceSnapshot = obs.Snapshot

// SkippingEffectiveness is the fraction of input elements a join avoided
// scanning: 1 − scanned/total, clamped to [0, 1]. The paper's Table 3
// argument is that XR-stack keeps this near 1 on low-selectivity joins.
func SkippingEffectiveness(scanned, total int64) float64 {
	return obs.SkippingEffectiveness(scanned, total)
}

// SetTracer installs tr as the store's default tracer (nil removes it).
// The tracer observes physical page I/O on the store's file; operations
// that take a *Stats with their own Tracer see events routed there while
// an AttachStats attachment is live.
func (s *Store) SetTracer(tr Tracer) {
	s.tracer = tr
	s.file.SetTracer(tr)
}

// JoinReport is the full observation of one traced join run.
type JoinReport struct {
	// Alg is the algorithm that ran.
	Alg Algorithm `json:"alg"`
	// Stats holds the classic counters (elements scanned, hits, misses,
	// physical I/O, output pairs, elapsed).
	Stats Stats `json:"-"`
	// Phases breaks the join into its phases: ancestor probes, skips on
	// either side with total skip distances, and output batches.
	Phases JoinPhases `json:"phases"`
	// Events is the raw per-event snapshot including histograms.
	Events TraceSnapshot `json:"events"`
	// SkipEffectiveness is 1 − scanned/(len(a)+len(d)), clamped to [0, 1].
	SkipEffectiveness float64 `json:"skip_effectiveness"`
}

// ObservedJoin runs Join with a fresh Collector attached and returns the
// complete observation: classic counters, per-phase breakdown, raw event
// histograms, and skipping effectiveness. Buffer-pool and physical-I/O
// costs of the sets' store(s) are attributed to the run.
func ObservedJoin(alg Algorithm, mode Mode, a, d *ElementSet, emit EmitFunc) (*JoinReport, error) {
	return ObservedJoinContext(context.Background(), alg, mode, a, d, emit)
}

// ObservedJoinContext is ObservedJoin with cancellation: a canceled or
// timed-out ctx stops the join at its next poll point (see JoinContext)
// and returns ctx's error.
func ObservedJoinContext(ctx context.Context, alg Algorithm, mode Mode, a, d *ElementSet, emit EmitFunc) (*JoinReport, error) {
	col := NewCollector()
	st := Stats{Tracer: col, Ctx: ctx}
	a.store.AttachStats(&st)
	if d.store != a.store {
		d.store.AttachStats(&st)
	}
	err := Join(alg, mode, a, d, emit, &st)
	a.store.AttachStats(nil)
	if d.store != a.store {
		d.store.AttachStats(nil)
	}
	if err != nil {
		return nil, err
	}
	// Physical I/O is counted at the file layer, not in the per-run
	// counter set; the tracer saw every page event, so recover the counts
	// from it.
	st.PhysicalReads = col.Count(obs.EvPageRead)
	st.PhysicalWrites = col.Count(obs.EvPageWrite)
	return &JoinReport{
		Alg:               alg,
		Stats:             st,
		Phases:            col.JoinPhases(),
		Events:            col.Snapshot(),
		SkipEffectiveness: SkippingEffectiveness(st.ElementsScanned, int64(a.Len()+d.Len())),
	}, nil
}

// ObservedParallelJoin runs Collection.ParallelJoin with a fresh Collector
// attached and returns one merged observation: the workers' counters fold
// into a single Stats, and their trace events — emitted concurrently into
// the lock-free Collector — yield one phase breakdown and histogram set
// spanning the whole run. Stats.Elapsed is the driver's wall-clock time.
func (c *Collection) ObservedParallelJoin(alg Algorithm, mode Mode, ancTag, descTag string, emit EmitFunc, opts ParallelJoinOptions) (*JoinReport, error) {
	return c.ObservedParallelJoinContext(context.Background(), alg, mode, ancTag, descTag, emit, opts)
}

// ObservedParallelJoinContext is ObservedParallelJoin with cancellation:
// a canceled or timed-out ctx stops dispatching partitions and stops each
// in-flight worker at its next poll point.
func (c *Collection) ObservedParallelJoinContext(ctx context.Context, alg Algorithm, mode Mode, ancTag, descTag string, emit EmitFunc, opts ParallelJoinOptions) (*JoinReport, error) {
	col := NewCollector()
	st := Stats{Tracer: col, Ctx: ctx}
	c.store.AttachStats(&st)
	err := c.ParallelJoin(alg, mode, ancTag, descTag, emit, &st, opts)
	c.store.AttachStats(nil)
	if err != nil {
		return nil, err
	}
	st.PhysicalReads = col.Count(obs.EvPageRead)
	st.PhysicalWrites = col.Count(obs.EvPageWrite)
	var total int64
	for _, idx := range c.docs {
		total += int64(len(idx.doc.ElementsByTag(ancTag)) + len(idx.doc.ElementsByTag(descTag)))
	}
	return &JoinReport{
		Alg:               alg,
		Stats:             st,
		Phases:            col.JoinPhases(),
		Events:            col.Snapshot(),
		SkipEffectiveness: SkippingEffectiveness(st.ElementsScanned, total),
	}, nil
}
