package xrtree_test

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the auxiliary studies and ablations listed in DESIGN.md. Each
// benchmark reports the paper's own metrics — elements scanned and buffer
// misses — via b.ReportMetric alongside wall-clock time, so `go test
// -bench=.` regenerates every row shape. cmd/xrbench prints the same data
// as full tables at arbitrary scale.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"xrtree"
	"xrtree/internal/datagen"
	"xrtree/internal/workload"
)

// benchScale shrinks the corpora so the full -bench=. run stays laptop
// friendly; override with XRTREE_BENCH_SCALE=1.0 for paper-sized sweeps.
var benchScale = func() float64 {
	if s := os.Getenv("XRTREE_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.25
}()

// benchCorpora caches the two §6.1 corpora across benchmarks.
var benchCorpora = func() []datagen.Corpus {
	cs, err := datagen.PaperCorpora(1, benchScale)
	if err != nil {
		panic(err)
	}
	return cs
}()

// joinOnce builds fresh indexes over one workload and runs one algorithm,
// returning its stats.
func joinOnce(b *testing.B, sets workload.Sets, alg xrtree.Algorithm) xrtree.Stats {
	b.Helper()
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	a, err := store.IndexElements(sets.A, xrtree.IndexOptions{})
	if err != nil {
		b.Fatal(err)
	}
	d, err := store.IndexElements(sets.D, xrtree.IndexOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if err := store.DropCache(); err != nil {
		b.Fatal(err)
	}
	var st xrtree.Stats
	store.AttachStats(&st)
	if err := xrtree.Join(alg, xrtree.AncestorDescendant, a, d, nil, &st); err != nil {
		b.Fatal(err)
	}
	return st
}

// sweepBench runs one (corpus, selectivity, algorithm) cell as a sub-bench.
func sweepBench(b *testing.B, kind string, pcts []float64) {
	for _, corpus := range benchCorpora {
		baseA := corpus.Doc.ElementsByTag(corpus.AncestorTag)
		baseD := corpus.Doc.ElementsByTag(corpus.DescendantTag)
		for _, pct := range pcts {
			var sets workload.Sets
			switch kind {
			case "ancestor":
				sets = workload.VaryAncestorSelectivity(baseA, baseD, pct, 0.99, 1)
			case "descendant":
				sets = workload.VaryDescendantSelectivity(baseA, baseD, pct, 0.99, 1)
			case "both":
				sets = workload.VaryBothSelectivity(baseA, baseD, pct, 1)
			}
			for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
				name := fmt.Sprintf("%s/%02d%%/%s", corpus.Name, int(pct*100+0.5), alg)
				b.Run(name, func(b *testing.B) {
					var last xrtree.Stats
					for i := 0; i < b.N; i++ {
						last = joinOnce(b, sets, alg)
					}
					b.ReportMetric(float64(last.ElementsScanned), "scanned/op")
					b.ReportMetric(float64(last.BufferMisses), "misses/op")
					b.ReportMetric(float64(last.OutputPairs), "pairs/op")
				})
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (and Figure 8(a)(b), which plots the
// same runs as time): elements scanned while ancestor selectivity varies
// and 99% of descendants join.
func BenchmarkTable2(b *testing.B) {
	sweepBench(b, "ancestor", []float64{0.90, 0.25, 0.01})
}

// BenchmarkTable3 regenerates Table 3 (and Figure 8(c)(d)): elements
// scanned while descendant selectivity varies and 99% of ancestors join.
func BenchmarkTable3(b *testing.B) {
	sweepBench(b, "descendant", []float64{0.90, 0.25, 0.01})
}

// BenchmarkFigure8ef regenerates Figure 8(e)(f): both selectivities vary
// together with constant set sizes.
func BenchmarkFigure8ef(b *testing.B) {
	sweepBench(b, "both", []float64{0.90, 0.25, 0.01})
}

// BenchmarkMPMGJN compares the extra MPMGJN baseline against the stack
// merge on the nested corpus (the redundant-scan overhead of §2.2).
func BenchmarkMPMGJN(b *testing.B) {
	corpus := benchCorpora[0]
	sets := workload.Sets{
		A: corpus.Doc.ElementsByTag(corpus.AncestorTag),
		D: corpus.Doc.ElementsByTag(corpus.DescendantTag),
	}
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN} {
		b.Run(alg.String(), func(b *testing.B) {
			var last xrtree.Stats
			for i := 0; i < b.N; i++ {
				last = joinOnce(b, sets, alg)
			}
			b.ReportMetric(float64(last.ElementsScanned), "scanned/op")
		})
	}
}

// BenchmarkBPlusSP reproduces the result the paper measured and omitted:
// the sibling-pointer B+ variant behaves like plain B+ — identical scans
// and pairs, fewer index-node probes.
func BenchmarkBPlusSP(b *testing.B) {
	corpus := benchCorpora[0]
	sets := workload.VaryAncestorSelectivity(
		corpus.Doc.ElementsByTag(corpus.AncestorTag),
		corpus.Doc.ElementsByTag(corpus.DescendantTag), 0.25, 0.99, 1)
	for _, alg := range []xrtree.Algorithm{xrtree.AlgBPlus, xrtree.AlgBPlusSP} {
		b.Run(alg.String(), func(b *testing.B) {
			var last xrtree.Stats
			for i := 0; i < b.N; i++ {
				last = joinOnce(b, sets, alg)
			}
			b.ReportMetric(float64(last.ElementsScanned), "scanned/op")
			b.ReportMetric(float64(last.IndexNodeReads), "idx-probes/op")
			b.ReportMetric(float64(last.OutputPairs), "pairs/op")
		})
	}
}

// BenchmarkStabListSizes regenerates the §3.3 study: stab-list footprint
// as nesting deepens.
func BenchmarkStabListSizes(b *testing.B) {
	for _, depth := range []int{2, 10, 20} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var rows []xrtree.StabStudyRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = xrtree.RunStabListStudy(xrtree.StabStudyConfig{
					Seed: 1, Elements: int(20000 * benchScale), Depths: []int{depth},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].StabEntries), "stab-entries")
			b.ReportMetric(float64(rows[0].StabPages), "stab-pages")
			b.ReportMetric(100*rows[0].StabLeafRatio, "stab/leaf-%")
		})
	}
}

// BenchmarkAblationKeyChoice measures the §3.2 separator-choice
// optimization: stab entries with and without it.
func BenchmarkAblationKeyChoice(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "keychoice=on"
		if disable {
			name = "keychoice=off"
		}
		b.Run(name, func(b *testing.B) {
			var rows []xrtree.StabStudyRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = xrtree.RunStabListStudy(xrtree.StabStudyConfig{
					Seed: 1, Elements: int(10000 * benchScale), Depths: []int{10},
					DisableKeyChoice: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows[0].StabEntries), "stab-entries")
		})
	}
}

// BenchmarkAblationBufferPool revisits the paper's observation that the
// buffer-pool size does not essentially change the join results (§6.1):
// the XR-stack join at three pool sizes.
func BenchmarkAblationBufferPool(b *testing.B) {
	corpus := benchCorpora[0]
	sets := workload.VaryAncestorSelectivity(
		corpus.Doc.ElementsByTag(corpus.AncestorTag),
		corpus.Doc.ElementsByTag(corpus.DescendantTag), 0.25, 0.99, 1)
	for _, frames := range []int{50, 100, 400} {
		b.Run(fmt.Sprintf("frames=%d", frames), func(b *testing.B) {
			var last xrtree.Stats
			for i := 0; i < b.N; i++ {
				store, err := xrtree.NewMemStore(xrtree.StoreOptions{BufferPages: frames})
				if err != nil {
					b.Fatal(err)
				}
				a, err := store.IndexElements(sets.A, xrtree.IndexOptions{})
				if err != nil {
					b.Fatal(err)
				}
				d, err := store.IndexElements(sets.D, xrtree.IndexOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if err := store.DropCache(); err != nil {
					b.Fatal(err)
				}
				var st xrtree.Stats
				store.AttachStats(&st)
				if err := xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil, &st); err != nil {
					b.Fatal(err)
				}
				store.Close()
				last = st
			}
			b.ReportMetric(float64(last.ElementsScanned), "scanned/op")
			b.ReportMetric(float64(last.BufferMisses), "misses/op")
		})
	}
}

// BenchmarkUpdateCost regenerates the §4 update study: page accesses per
// insert/delete (Theorems 1–2).
func BenchmarkUpdateCost(b *testing.B) {
	var rows []xrtree.UpdateStudyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = xrtree.RunUpdateCostStudy(1, []int{int(20000 * benchScale)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].InsertAccesses, "insert-pages/op")
	b.ReportMetric(rows[0].DeleteAccesses, "delete-pages/op")
}

// BenchmarkBasicOps regenerates the §5 study: FindAncestors and
// FindDescendants page accesses per probe (Theorems 3–4).
func BenchmarkBasicOps(b *testing.B) {
	var rows []xrtree.OpsStudyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = xrtree.RunBasicOpsStudy(1, []int{int(20000 * benchScale)}, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].AncAvgPages, "findanc-pages/op")
	b.ReportMetric(rows[0].DescAvgPages, "finddesc-pages/op")
}

// BenchmarkXRTreeInsert is a micro-benchmark of the §4.1 insertion path.
func BenchmarkXRTreeInsert(b *testing.B) {
	doc, err := datagen.Nested(datagen.NestedConfig{
		Seed: 1, DocID: 1, Elements: 50000, MaxDepth: 12, DeepBias: 0.6,
	})
	if err != nil {
		b.Fatal(err)
	}
	els := doc.ElementsByTag("item")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store, err := xrtree.NewMemStore(xrtree.StoreOptions{BufferPages: 512})
		if err != nil {
			b.Fatal(err)
		}
		set, err := store.IndexElements(els[:1], xrtree.IndexOptions{SkipList: true, SkipBTree: true})
		if err != nil {
			b.Fatal(err)
		}
		xr, err := set.XRTree()
		if err != nil {
			b.Fatal(err)
		}
		n := 10000
		if n > len(els)-1 {
			n = len(els) - 1
		}
		b.StartTimer()
		for _, e := range els[1 : n+1] {
			if err := xr.Insert(e); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		store.Close()
		b.StartTimer()
	}
}

// BenchmarkFindAncestors is a micro-benchmark of Algorithm 4.
func BenchmarkFindAncestors(b *testing.B) {
	doc, err := datagen.Nested(datagen.NestedConfig{
		Seed: 1, DocID: 1, Elements: 50000, MaxDepth: 14, DeepBias: 0.6,
	})
	if err != nil {
		b.Fatal(err)
	}
	els := doc.ElementsByTag("item")
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{BufferPages: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	set, err := store.IndexElements(els, xrtree.IndexOptions{SkipList: true, SkipBTree: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := els[i%len(els)].Start + 1
		if _, err := set.FindAncestors(probe, nil); err != nil {
			b.Fatal(err)
		}
	}
}
