package xrtree

// Serving-layer benchmark types: the "serving" section of the bench JSON
// document (additive to schema xrtree-bench/1, like the parallel study —
// readers of the original shape ignore it). Rows are produced by
// cmd/xrblast driving cmd/xrserve; cmd/xrcheckbench verifies the shape
// against a committed baseline without comparing timings.

// LatencySummary digests a latency distribution in milliseconds. xrblast
// reports quantiles from the power-of-two histogram of internal/obs —
// upper bounds, coarse but stable across runs; the serving endpoint
// /api/v1/stats reports the same digest for the server-side view.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms,omitempty"`
}

// ServingRow is one load-generation run against one serving target.
type ServingRow struct {
	// Label names the run ("smoke", "closed-64", ...).
	Label string `json:"label"`
	// Target is the request path+query that was driven.
	Target string `json:"target"`
	// Clients is the closed-loop worker count, or the outstanding-request
	// bound in open loop.
	Clients int `json:"clients"`
	// RateRPS is the open-loop arrival rate; 0 means closed loop.
	RateRPS float64 `json:"rate_rps,omitempty"`
	// DurationSec is the measured wall time of the run.
	DurationSec float64 `json:"duration_sec"`
	// Requests counts every attempt; the outcome classes below partition it.
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`       // 2xx responses
	Rejected int64 `json:"rejected"` // 429: admission queue full
	Timeouts int64 `json:"timeouts"` // 503: deadline exceeded
	Errors   int64 `json:"errors"`   // transport failures and other statuses
	// ThroughputRPS is OK responses per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency digests the end-to-end client-observed request latency.
	Latency LatencySummary `json:"latency"`
	// SlowTraces lists the server-assigned trace ids of the run's
	// slowest-decile requests (present when the run propagated trace
	// context), so a load run ends with handles to feed /debug/traces
	// and xrtrace rather than just aggregate quantiles.
	SlowTraces []TraceHandle `json:"slow_traces,omitempty"`
}

// TraceHandle points at one traced request: the client-observed latency
// and the trace id the server echoed back in its traceparent header.
type TraceHandle struct {
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
}

// ServingStudy is the root of the bench JSON "serving" section.
type ServingStudy struct {
	BaseURL string       `json:"base_url"`
	Rows    []ServingRow `json:"rows"`
}
