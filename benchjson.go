package xrtree

// Machine-readable benchmark output: BuildBenchReport runs the three §6
// sweeps with observation enabled and flattens everything — run metadata,
// the classic counters, derived and wall times, per-phase breakdowns,
// event histograms, skipping effectiveness — into one JSON document with a
// stable schema ("xrtree-bench/1"), so regression tooling can diff runs
// without parsing the human tables.

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// BenchSchema identifies the report format; bump on incompatible change.
const BenchSchema = "xrtree-bench/1"

// BenchReport is the root of the JSON benchmark document.
type BenchReport struct {
	Schema      string       `json:"schema"`
	CreatedAt   time.Time    `json:"created_at"`
	GoVersion   string       `json:"go_version"`
	Seed        int64        `json:"seed"`
	Scale       float64      `json:"scale"`
	PageSize    int          `json:"page_size"`
	BufferPages int          `json:"buffer_pages"`
	CostModel   CostModel    `json:"cost_model"`
	Sweeps      []BenchSweep `json:"sweeps"`
	// Parallel is the workers-speedup study of the parallel join driver
	// (added after schema 1 shipped; additive, so the schema id is
	// unchanged — readers of the original shape ignore it).
	Parallel *ParallelStudy `json:"parallel,omitempty"`
	// Serving is the query-serving load study produced by cmd/xrblast
	// (additive, like Parallel).
	Serving *ServingStudy `json:"serving,omitempty"`
	// Storage is the storage-stack study: the mixed probe/scan/join
	// workload under LRU vs 2Q+readahead (additive, like Parallel).
	Storage *StorageStudy `json:"storage,omitempty"`
	// Cluster is the distributed-serving study produced by cmd/xrblast in
	// -cluster mode (additive, like Parallel).
	Cluster *ClusterStudy `json:"cluster,omitempty"`
	// Mixed is the concurrent read/write latching study: coarse-latch
	// emulation vs the B-link per-page protocol (additive, like Parallel).
	Mixed *MixedStudy `json:"mixed,omitempty"`
	// PoolPolicy and Prefetch record the pool configuration the sweeps ran
	// under (additive; empty/false means the LRU default).
	PoolPolicy string `json:"pool_policy,omitempty"`
	Prefetch   bool   `json:"prefetch,omitempty"`
}

// BenchSweep is one experiment (ancestor / descendant / both selectivity)
// over one corpus.
type BenchSweep struct {
	Experiment string       `json:"experiment"`
	Corpus     string       `json:"corpus"`
	Points     []BenchPoint `json:"points"`
}

// BenchPoint is one x-axis point of a sweep.
type BenchPoint struct {
	Label      string     `json:"label"`
	Target     float64    `json:"target"`
	NumA       int        `json:"num_a"`
	NumD       int        `json:"num_d"`
	Pairs      int        `json:"pairs"`
	Algorithms []BenchAlg `json:"algorithms"`
}

// BenchAlg is one algorithm's measurement at one point.
type BenchAlg struct {
	Alg               string         `json:"alg"`
	ElementsScanned   int64          `json:"elements_scanned"`
	OutputPairs       int64          `json:"output_pairs"`
	IndexNodeReads    int64          `json:"index_node_reads"`
	LeafReads         int64          `json:"leaf_reads"`
	StabPageReads     int64          `json:"stab_page_reads"`
	BufferHits        int64          `json:"buffer_hits"`
	BufferMisses      int64          `json:"buffer_misses"`
	PhysicalReads     int64          `json:"physical_reads"`
	PhysicalWrites    int64          `json:"physical_writes"`
	PageEvictions     int64          `json:"page_evictions"`
	DerivedMS         float64        `json:"derived_ms"`
	WallMS            float64        `json:"wall_ms"`
	SkipEffectiveness float64        `json:"skip_effectiveness"`
	Phases            *JoinPhases    `json:"phases,omitempty"`
	Events            *TraceSnapshot `json:"events,omitempty"`
}

func benchAlg(r AlgResult) BenchAlg {
	return BenchAlg{
		Alg:               r.Alg.String(),
		ElementsScanned:   r.Stats.ElementsScanned,
		OutputPairs:       r.Stats.OutputPairs,
		IndexNodeReads:    r.Stats.IndexNodeReads,
		LeafReads:         r.Stats.LeafReads,
		StabPageReads:     r.Stats.StabPageReads,
		BufferHits:        r.Stats.BufferHits,
		BufferMisses:      r.Stats.BufferMisses,
		PhysicalReads:     r.Stats.PhysicalReads,
		PhysicalWrites:    r.Stats.PhysicalWrites,
		PageEvictions:     r.Stats.PageEvictions,
		DerivedMS:         float64(r.Derived.Microseconds()) / 1000,
		WallMS:            float64(r.Stats.Elapsed.Microseconds()) / 1000,
		SkipEffectiveness: r.SkipEffectiveness,
		Phases:            r.Phases,
		Events:            r.Events,
	}
}

func benchSweeps(experiment string, res []SweepResult) []BenchSweep {
	var out []BenchSweep
	for _, sr := range res {
		bs := BenchSweep{Experiment: experiment, Corpus: sr.Corpus}
		for _, p := range sr.Points {
			bp := BenchPoint{
				Label:  p.Label,
				Target: p.Target,
				NumA:   p.Workload.NumA,
				NumD:   p.Workload.NumD,
				Pairs:  p.Workload.Pairs,
			}
			for _, r := range p.Results {
				bp.Algorithms = append(bp.Algorithms, benchAlg(r))
			}
			bs.Points = append(bs.Points, bp)
		}
		out = append(out, bs)
	}
	return out
}

// BuildBenchReport runs the ancestor-, descendant- and both-selectivity
// sweeps with observation enabled and assembles the full report.
func BuildBenchReport(cfg ExperimentConfig) (*BenchReport, error) {
	cfg.defaults()
	cfg.Observe = true
	rep := &BenchReport{
		Schema:      BenchSchema,
		CreatedAt:   time.Now().UTC(),
		GoVersion:   runtime.Version(),
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		PageSize:    cfg.PageSize,
		BufferPages: cfg.BufferPages,
		CostModel:   cfg.Model,
		PoolPolicy:  string(cfg.PoolPolicy),
		Prefetch:    cfg.Prefetch,
	}
	for _, exp := range []struct {
		name string
		run  func(ExperimentConfig) ([]SweepResult, error)
	}{
		{"ancestor-selectivity", RunAncestorSweep},
		{"descendant-selectivity", RunDescendantSweep},
		{"both-selectivity", RunBothSweep},
	} {
		res, err := exp.run(cfg)
		if err != nil {
			return nil, err
		}
		rep.Sweeps = append(rep.Sweeps, benchSweeps(exp.name, res)...)
	}
	ps, err := RunParallelStudy(ParallelStudyConfig{
		Seed:        cfg.Seed,
		Departments: int(25 * cfg.Scale),
		Model:       cfg.Model,
	})
	if err != nil {
		return nil, err
	}
	rep.Parallel = ps
	// The storage study deliberately keeps its own corpus floor (see
	// StorageStudyConfig.Elements) instead of cfg.Scale, so its LRU-vs-2Q
	// comparison stays meaningful in scaled-down smoke runs.
	ss, err := RunStorageStudy(StorageStudyConfig{
		Seed:        cfg.Seed,
		PageSize:    cfg.PageSize,
		BufferPages: cfg.BufferPages,
	})
	if err != nil {
		return nil, err
	}
	rep.Storage = ss
	// Like the storage study, the mixed read/write study keeps its own
	// corpus and ingest floors instead of cfg.Scale: the coarse-vs-blink
	// reader-throughput comparison needs an ingest window long enough to
	// sample, even in scaled-down smoke runs.
	ms, err := RunMixedStudy(MixedStudyConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rep.Mixed = ms
	return rep, nil
}

// WriteJSON writes the report, indented, to w.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
