package xrtree_test

import (
	"strings"
	"testing"

	"xrtree"
)

// TestSmallAccessors covers the thin public accessors end to end.
func TestSmallAccessors(t *testing.T) {
	store := memStore(t)
	doc, err := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Elements(); len(got) != set.Len() {
		t.Errorf("Elements() = %d, Len() = %d", len(got), set.Len())
	}
	entries, pages, err := set.StabStats()
	if err != nil {
		t.Fatalf("StabStats: %v", err)
	}
	if entries < 0 || pages < 0 {
		t.Errorf("StabStats = %d, %d", entries, pages)
	}

	// Pool/file stats accumulate across the work above.
	if ps := store.PoolStats(); ps.PageAccesses() == 0 {
		t.Error("PoolStats shows no page accesses")
	}
	if fs := store.FileStats(); fs.PhysicalWrites == 0 {
		t.Error("FileStats shows no writes")
	}

	idx := store.IndexDocument(doc)
	if idx.Document() != doc {
		t.Error("IndexedDocument.Document mismatch")
	}

	coll := store.NewCollection()
	if err := coll.Add(doc); err != nil {
		t.Fatal(err)
	}
	docs := coll.Documents()
	if len(docs) != 1 || docs[0].Document() != doc {
		t.Errorf("Documents() = %v", docs)
	}
}

// TestFromDietzPublic covers the Dietz converter through the facade.
func TestFromDietzPublic(t *testing.T) {
	codes := []xrtree.DietzCode{
		{Pre: 1, Post: 3}, // root
		{Pre: 2, Post: 1}, // first child
		{Pre: 3, Post: 2}, // second child
	}
	els, err := xrtree.FromDietz(1, codes)
	if err != nil {
		t.Fatal(err)
	}
	if !els[0].IsAncestorOf(els[1]) || !els[0].IsAncestorOf(els[2]) {
		t.Errorf("root not ancestor of children: %v", els)
	}
	if els[1].IsAncestorOf(els[2]) || els[2].IsAncestorOf(els[1]) {
		t.Errorf("siblings nest: %v", els)
	}
}

// TestStoreDoubleClose verifies Close is safe to call repeatedly enough for
// deferred cleanups.
func TestStoreDoubleClose(t *testing.T) {
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
