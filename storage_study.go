package xrtree

// The storage-stack study: the same mixed workload — hot FindAncestors
// probes, cold leaf-chain scans, and a descendant-selectivity XR-stack join
// sweep — measured twice over an identical store, once with the default
// strict-LRU pool and once with scan-resistant 2Q replacement plus
// asynchronous readahead. The scans are sized to overflow the pool many
// times over, so the study isolates exactly what the storage pass claims:
// 2Q keeps the probe working set resident across scans (fewer physical
// reads, higher hit rate) and readahead coalesces adjacent leaf reads into
// vectored calls (coalesced-read ratio above one).

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"text/tabwriter"
	"time"

	"xrtree/internal/datagen"
	"xrtree/internal/workload"
)

// StorageStudyConfig parameterizes RunStorageStudy.
type StorageStudyConfig struct {
	// Seed makes the corpus, probe positions, and join workloads
	// deterministic. Default 1.
	Seed int64
	// Elements is the corpus size. Default 60000 — deliberately NOT scaled
	// by the harness -scale knob: the study is only meaningful when the
	// leaf chain dwarfs the pool, so the floor holds even in smoke runs.
	Elements int
	// PageSize and BufferPages configure the store (defaults 4096 / 100).
	// The default pool is ~100 pages against a ~400-page working set.
	PageSize    int
	BufferPages int
	// Rounds repeats the scan+join workload this many times (default 3) so
	// LRU's scan damage recurs while 2Q's protected set survives.
	Rounds int
	// HotKeys is the size of the fixed probe-key set (default 6). Each
	// probe runs FindAncestors at the key plus FindDescendants over a
	// ProbeSpan-wide region anchored there, and the probes cycle through
	// the keys, so the probed index paths and leaf runs form a hot working
	// set that must fit the protected region of a 2Q pool.
	HotKeys int
	// ProbeSpan is the width, in document positions, of each probe's
	// FindDescendants region (default 4096 ≈ eight leaf pages).
	ProbeSpan int
	// ProbeStride interleaves one probe every this many scanned elements
	// (default 2600) — the classic point-query-versus-scan interference a
	// scan-resistant policy exists for. The default is tuned so one full
	// probe cycle (HotKeys × ProbeStride elements) drags more distinct
	// scan pages through the pool than it has frames: LRU then evicts
	// every probe path before its next re-reference, while 2Q keeps the
	// probed pages in the protected region.
	ProbeStride int
	// Sweep is the descendant-selectivity join axis (default 90%, 50%, 10%).
	Sweep []float64
}

func (c *StorageStudyConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Elements == 0 {
		c.Elements = 60000
	}
	if c.BufferPages == 0 {
		c.BufferPages = 100
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.HotKeys == 0 {
		c.HotKeys = 12
	}
	if c.ProbeSpan == 0 {
		c.ProbeSpan = 8192
	}
	if c.ProbeStride == 0 {
		c.ProbeStride = 1300
	}
	if len(c.Sweep) == 0 {
		c.Sweep = []float64{0.9, 0.5, 0.1}
	}
}

// StorageRow is one storage configuration's measurement of the mixed
// workload. CoalescedRatio is physical pages read per read system call
// (1.0 when every read fetches a single page; above 1 when the readahead
// path coalesces adjacent pages).
type StorageRow struct {
	Policy         string  `json:"policy"`
	Prefetch       bool    `json:"prefetch"`
	BufferHits     int64   `json:"buffer_hits"`
	BufferMisses   int64   `json:"buffer_misses"`
	HitRate        float64 `json:"hit_rate"`
	PhysicalReads  int64   `json:"physical_reads"`
	ReadCalls      int64   `json:"read_calls"`
	CoalescedRatio float64 `json:"coalesced_ratio"`
	PageEvictions  int64   `json:"page_evictions"`
	ScanEvictions  int64   `json:"scan_evictions"`
	ProtectedHits  int64   `json:"protected_hits"`
	PrefetchIssued int64   `json:"prefetch_issued"`
	PrefetchReads  int64   `json:"prefetch_reads"`
	OutputPairs    int64   `json:"output_pairs"`
	WallMS         float64 `json:"wall_ms"`
}

// StorageStudy is the full storage-stack comparison: identical workloads
// under the LRU baseline and under 2Q+readahead.
type StorageStudy struct {
	Elements    int          `json:"elements"`
	PageSize    int          `json:"page_size"`
	BufferPages int          `json:"buffer_pages"`
	Rounds      int          `json:"rounds"`
	Rows        []StorageRow `json:"rows"`
}

// RunStorageStudy measures the mixed probe/scan/join workload under the LRU
// baseline and under 2Q replacement with readahead, in that row order.
func RunStorageStudy(cfg StorageStudyConfig) (*StorageStudy, error) {
	cfg.defaults()
	doc, err := datagen.Nested(datagen.NestedConfig{
		Seed: cfg.Seed, DocID: 1, Elements: cfg.Elements, MaxDepth: 12, DeepBias: 0.6,
	})
	if err != nil {
		return nil, err
	}
	els := doc.ElementsByTag("item")
	// The join phase reuses the §6.3 construction over two disjoint element
	// sets split by level parity (even levels ancestors, odd descendants),
	// so each operand gets its own leaf chain and the descendant side's
	// scan pressure competes with the ancestor side's index pages.
	var baseA, baseD []Element
	for _, e := range els {
		if e.Level%2 == 0 {
			baseA = append(baseA, e)
		} else {
			baseD = append(baseD, e)
		}
	}
	var joinSets []workload.Sets
	for _, pct := range cfg.Sweep {
		joinSets = append(joinSets, workload.VaryDescendantSelectivity(baseA, baseD, pct, 0.99, cfg.Seed))
	}

	study := &StorageStudy{
		Elements:    len(els),
		PageSize:    cfg.PageSize,
		BufferPages: cfg.BufferPages,
		Rounds:      cfg.Rounds,
	}
	for _, variant := range []struct {
		policy   PoolPolicy
		prefetch bool
	}{
		{PoolLRU, false},
		{Pool2Q, true},
	} {
		row, err := runStorageRow(cfg, els, joinSets, variant.policy, variant.prefetch)
		if err != nil {
			return nil, fmt.Errorf("storage study (%s, prefetch=%v): %w", variant.policy, variant.prefetch, err)
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// runStorageRow builds one store with the given replacement policy, indexes
// the corpus and the join operands, then measures the mixed workload.
func runStorageRow(cfg StorageStudyConfig, els []Element, joinSets []workload.Sets, policy PoolPolicy, prefetch bool) (StorageRow, error) {
	row := StorageRow{Policy: string(policy), Prefetch: prefetch}
	store, err := NewMemStore(StoreOptions{
		PageSize:    cfg.PageSize,
		BufferPages: cfg.BufferPages,
		PoolPolicy:  policy,
		Prefetch:    prefetch,
	})
	if err != nil {
		return row, err
	}
	defer store.Close()

	// The main set carries the XR-tree (probe target) and the paged list
	// (scan target, whose iterator publishes windowed readahead hints);
	// join operands only need the XR-tree.
	idx := IndexOptions{SkipList: true, SkipBTree: true}
	main, err := store.IndexElements(els, IndexOptions{SkipBTree: true})
	if err != nil {
		return row, err
	}
	xr, err := main.XRTree()
	if err != nil {
		return row, err
	}
	list, err := main.List()
	if err != nil {
		return row, err
	}
	type operands struct{ a, d *ElementSet }
	var joins []operands
	for _, sets := range joinSets {
		a, err := store.IndexElements(sets.A, idx)
		if err != nil {
			return row, err
		}
		d, err := store.IndexElements(sets.D, idx)
		if err != nil {
			return row, err
		}
		joins = append(joins, operands{a, d})
	}
	if err := store.DropCache(); err != nil {
		return row, err
	}

	// A fixed probe-key set, identical in every row: the rng is seeded per
	// row, so LRU and 2Q measure exactly the same access sequence. The
	// cycled keys make the probe paths (root, internal nodes, stab-list
	// heads, a handful of leaves) a genuinely hot working set.
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxPos := els[len(els)-1].End
	span := uint32(cfg.ProbeSpan)
	if span >= maxPos {
		span = maxPos - 1
	}
	hot := make([]uint32, cfg.HotKeys)
	for i := range hot {
		hot[i] = uint32(rng.Intn(int(maxPos-span))) + 1
	}
	probe := 0
	poolBefore, fileBefore := store.PoolStats(), store.FileStats()
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		// Phase 1 — cold scan with interleaved hot probes: one pass over
		// the whole paged list (several pool capacities long) while the
		// probes keep re-touching the same XR-tree paths and leaf runs.
		// Under LRU the scan flushes those pages between consecutive
		// probes, so every probe re-reads them; under 2Q they reach the
		// protected region (via re-reference or the ghost list) and the
		// scan churns through probation only, its own pages arriving via
		// the iterator's windowed readahead hints.
		var st Stats
		it := list.Scan(&st)
		for n := 0; ; n++ {
			if _, ok := it.Next(); !ok {
				break
			}
			if n%64 == 0 {
				runtime.Gosched()
			}
			if n%cfg.ProbeStride == 0 {
				key := hot[probe%len(hot)]
				if _, err := xr.FindAncestors(key, 0, &st); err != nil {
					it.Close()
					return row, err
				}
				if _, err := xr.FindDescendants(key, key+span, &st); err != nil {
					it.Close()
					return row, err
				}
				probe++
			}
		}
		if err := it.Close(); err != nil {
			return row, err
		}
		if err := it.Err(); err != nil {
			return row, err
		}
		// Phase 2 — the descendant-selectivity join sweep: XR-stack skip
		// targets are hinted to the readahead workers before each seek, and
		// the descendant side's leaf scan exerts the same pressure on the
		// ancestor side's index pages that the probes saw in phase 1.
		for _, op := range joins {
			var js Stats
			if err := Join(AlgXRStack, AncestorDescendant, op.a, op.d, nil, &js); err != nil {
				return row, err
			}
			row.OutputPairs += js.OutputPairs
		}
	}
	row.WallMS = float64(time.Since(start).Microseconds()) / 1000
	pool, file := store.PoolStats(), store.FileStats()

	row.BufferHits = pool.BufferHits - poolBefore.BufferHits
	row.BufferMisses = pool.BufferMisses - poolBefore.BufferMisses
	row.PageEvictions = pool.PageEvictions - poolBefore.PageEvictions
	row.ScanEvictions = pool.ScanEvictions - poolBefore.ScanEvictions
	row.ProtectedHits = pool.ProtectedHits - poolBefore.ProtectedHits
	row.PrefetchIssued = pool.PrefetchIssued - poolBefore.PrefetchIssued
	row.PrefetchReads = pool.PrefetchReads - poolBefore.PrefetchReads
	row.PhysicalReads = file.PhysicalReads - fileBefore.PhysicalReads
	row.ReadCalls = file.ReadCalls - fileBefore.ReadCalls
	if total := row.BufferHits + row.BufferMisses; total > 0 {
		row.HitRate = float64(row.BufferHits) / float64(total)
	}
	if row.ReadCalls > 0 {
		row.CoalescedRatio = float64(row.PhysicalReads) / float64(row.ReadCalls)
	}
	return row, nil
}

// FormatStorageStudy renders the study as a table.
func FormatStorageStudy(w io.Writer, s *StorageStudy) error {
	fmt.Fprintf(w, "elements=%d buffer-pages=%d rounds=%d\n", s.Elements, s.BufferPages, s.Rounds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tprefetch\thits\tmisses\thit-rate\tphys-reads\tread-calls\tcoalesce\tscan-evict\tprot-hits\tpf-issued\tpf-reads\twall")
	for _, r := range s.Rows {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%.1f%%\t%d\t%d\t%.2f\t%d\t%d\t%d\t%d\t%.0fms\n",
			r.Policy, r.Prefetch, r.BufferHits, r.BufferMisses, 100*r.HitRate,
			r.PhysicalReads, r.ReadCalls, r.CoalescedRatio,
			r.ScanEvictions, r.ProtectedHits, r.PrefetchIssued, r.PrefetchReads, r.WallMS)
	}
	return tw.Flush()
}
