#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the serving subsystem, run by
# `make serve-smoke` and CI. Exercises the acceptance criteria directly:
#
#   1. 64 closed-loop clients against max-concurrent=8/max-queue=16 must
#      see real work done AND real 429 rejections (bounded admission, not
#      unbounded goroutine pileup), with zero transport errors and zero
#      pinned buffer pages afterwards.
#   2. Requests with a ~1ms-class deadline are answered 503 and leak no
#      pinned pages.
#   3. A traced request (xrblast -trace) must surface in /debug/traces
#      with its xrblast-reported trace id, and /metrics must be a clean
#      Prometheus text exposition (xrcheckbench -promlint).
#   4. Concurrent ingest (xrblast -ingest against POST /api/v1/insert)
#      must complete without errors while readers keep flowing: reader
#      p99 under ingest is bounded relative to a read-only baseline.
#   5. SIGTERM drains in-flight requests and the server exits 0 with
#      "drained cleanly".
set -eu

GO=${GO:-go}
TMP=$(mktemp -d /tmp/xrtree_serve_smoke.XXXXXX)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build"
$GO build -o "$TMP" ./cmd/xrgen ./cmd/xrload ./cmd/xrserve ./cmd/xrblast \
    ./cmd/xrtrace ./cmd/xrcheckbench

echo "== corpus + store"
"$TMP/xrgen" -dtd department -out "$TMP/dept.xml"
"$TMP/xrload" -in "$TMP/dept.xml" -store "$TMP/dept.db" -tags department,employee,name

echo "== boot xrserve"
"$TMP/xrserve" -store dept="$TMP/dept.db" -addr 127.0.0.1:0 \
    -addr-file "$TMP/addr.txt" -max-concurrent 8 -max-queue 16 \
    -drain 10s >"$TMP/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
    [ -s "$TMP/addr.txt" ] && break
    sleep 0.1
done
[ -s "$TMP/addr.txt" ] || { echo "server never wrote addr file"; cat "$TMP/server.log"; exit 1; }
BASE="http://$(cat "$TMP/addr.txt")"
echo "   serving at $BASE"

echo "== saturation: 64 closed-loop clients vs 8 slots + queue of 16"
"$TMP/xrblast" -url "$BASE" -wait-ready 10s -label saturate \
    -target '/api/v1/join?anc=employee&desc=name&alg=xr' \
    -clients 64 -duration 3s \
    -min-ok 10 -min-rejected 1 -max-errors 0 -assert-no-pins

echo "== short deadlines: 1ms-class timeout must 503 and leak nothing"
OUT=$("$TMP/xrblast" -url "$BASE" -label deadline \
    -target '/api/v1/join?anc=employee&desc=name&timeout=1ns' \
    -clients 1 -requests 4 -duration 30s \
    -max-errors 0 -assert-no-pins)
echo "$OUT"
echo "$OUT" | grep -q 'timeouts=4' || { echo "FAIL: expected all 4 short-deadline requests to time out (503)"; exit 1; }

echo "== trace smoke: propagated traceparent must land in /debug/traces"
OUT=$("$TMP/xrblast" -url "$BASE" -label traced \
    -target '/api/v1/join?anc=employee&desc=name&alg=xr&stats=1' \
    -clients 1 -requests 3 -duration 30s -trace 1 -trace-seed 7 \
    -min-ok 3 -max-errors 0)
echo "$OUT"
TID=$(echo "$OUT" | awk '/slow trace/ {print $3; exit}')
[ -n "$TID" ] || { echo "FAIL: xrblast reported no trace handles"; exit 1; }
"$TMP/xrtrace" -url "$BASE" -trace "$TID" >"$TMP/trace.txt" \
    || { echo "FAIL: xrtrace found no trace $TID in /debug/traces"; exit 1; }
cat "$TMP/trace.txt"
grep -q "trace $TID" "$TMP/trace.txt" || { echo "FAIL: trace $TID missing from xrtrace output"; exit 1; }

echo "== /metrics must be a clean Prometheus text exposition"
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
grep -q 'xrtree_serve_requests_total' "$TMP/metrics.txt" || { echo "FAIL: serving counters missing from /metrics"; exit 1; }
"$TMP/xrcheckbench" -promlint "$TMP/metrics.txt"

echo "== ingest: concurrent inserts must not starve readers"
# 4 readers + 2 insert workers stay under the 8 execution slots, so the
# measured inflation is latching, not admission queueing. The bound is
# deliberately loose — it catches a return to coarse blocking (readers
# queueing behind whole insert transactions), not scheduling jitter.
"$TMP/xrblast" -url "$BASE" -label ingest \
    -target '/api/v1/join?anc=employee&desc=name&alg=xr' \
    -clients 4 -duration 2s -ingest 2 -ingest-set employee -ingest-batch 16 \
    -min-inserted 64 -max-p99-inflation 25 -assert-no-pins

echo "== graceful drain on SIGTERM"
kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
cat "$TMP/server.log"
[ "$STATUS" -eq 0 ] || { echo "FAIL: xrserve exited $STATUS"; exit 1; }
grep -q 'drained cleanly' "$TMP/server.log" || { echo "FAIL: no 'drained cleanly' in server log"; exit 1; }

echo "serve-smoke: all checks passed"
