#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the distributed-serving subsystem,
# run by `make cluster-smoke` and CI. Exercises the acceptance criteria:
#
#   1. A router over three DocId-sharded xrserve nodes answers a join with
#      exactly the sum of the shards' pairs (scatter-gather correctness;
#      the byte-identical-merge proof lives in the router unit tests).
#   2. A config with overlapping ownership claims is refused at startup.
#   3. Under load with -hedge-after 1ms, hedged sub-requests fire and are
#      visible in the bench JSON cluster section (-min-hedges).
#   4. SIGKILL of one shard mid-run degrades, never hangs: partial=1
#      responses carry shards_failed=["c"], the healthy shards' pairs stay
#      correct, and xr_cluster_shard_up{shard="c"} drops to 0 on /metrics.
#   5. The degraded bench JSON still matches the healthy run's shape
#      (xrcheckbench), and the router drains cleanly on SIGTERM.
set -eu

GO=${GO:-go}
TMP=$(mktemp -d /tmp/xrtree_cluster_smoke.XXXXXX)
PIDS=""
cleanup() {
    for p in $PIDS; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build"
$GO build -o "$TMP" ./cmd/xrgen ./cmd/xrserve ./cmd/xrblast ./cmd/xrcheckbench

echo "== corpus: six department documents"
for i in 1 2 3 4 5 6; do
    "$TMP/xrgen" -dtd department -seed "$i" -scale 0.2 -out "$TMP/d$i.xml"
done

# Shards get generous admission: the router hedges aggressively in this
# smoke (-hedge-after 5ms), which roughly doubles shard load, and a queue
# wait long enough to hit the sub-request budget would read as a degraded
# fleet when nothing is actually broken.
boot_shard() { # name owns docspecs
    "$TMP/xrserve" -xml "docs=$3" -owns "$2" -addr 127.0.0.1:0 \
        -max-concurrent 16 -max-queue 64 \
        -addr-file "$TMP/$1.addr" >"$TMP/$1.log" 2>&1 &
    PIDS="$PIDS $!"
    eval "PID_$1=$!"
}
wait_addr() {
    for _ in $(seq 1 100); do
        [ -s "$TMP/$1.addr" ] && return 0
        sleep 0.1
    done
    echo "FAIL: $1 never wrote its addr file"; cat "$TMP/$1.log"; exit 1
}

echo "== boot three shards (DocIds 1-2 / 3-4 / 5-6)"
boot_shard a 1-2 "$TMP/d1.xml@1,$TMP/d2.xml@2"
boot_shard b 3-4 "$TMP/d3.xml@3,$TMP/d4.xml@4"
boot_shard c 5-6 "$TMP/d5.xml@5,$TMP/d6.xml@6"
wait_addr a; wait_addr b; wait_addr c
A="http://$(cat "$TMP/a.addr")"; B="http://$(cat "$TMP/b.addr")"; C="http://$(cat "$TMP/c.addr")"

# Replicas point back at the shard itself: hedges then exercise the full
# two-attempt path and still succeed.
cat >"$TMP/cluster.conf" <<EOF
# smoke fleet: explicit DocId claims
a $A replica=$A range=1-2
b $B replica=$B range=3-4
c $C range=5-6
EOF

echo "== overlapping ownership claims must be refused"
cat >"$TMP/bad.conf" <<EOF
a $A range=1-4
b $B range=4-6
EOF
if OUT=$("$TMP/xrserve" -cluster "$TMP/bad.conf" 2>&1); then
    echo "FAIL: router started on overlapping claims"; exit 1
fi
echo "$OUT" | grep -qi overlap || { echo "FAIL: refusal does not name the overlap: $OUT"; exit 1; }

echo "== boot router"
"$TMP/xrserve" -cluster "$TMP/cluster.conf" -addr 127.0.0.1:0 \
    -addr-file "$TMP/router.addr" -hedge-after 5ms \
    -probe-interval 100ms -drain 10s >"$TMP/router.log" 2>&1 &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"
wait_addr router
BASE="http://$(cat "$TMP/router.addr")"
echo "   router at $BASE over a=$A b=$B c=$C"

JOIN='/api/v1/join?anc=employee&desc=name'

echo "== scatter-gather correctness: router pairs == sum of shard pairs"
PA=$(curl -fsS "$A$JOIN" | jq .pairs)
PB=$(curl -fsS "$B$JOIN" | jq .pairs)
PC=$(curl -fsS "$C$JOIN" | jq .pairs)
PR=$(curl -fsS "$BASE$JOIN" | jq .pairs)
[ "$PR" -gt 0 ] || { echo "FAIL: router join found nothing"; exit 1; }
[ "$PR" -eq $((PA + PB + PC)) ] || { echo "FAIL: router pairs $PR != $PA+$PB+$PC"; exit 1; }
echo "   $PR pairs ($PA + $PB + $PC)"

echo "== healthy load: hedges must fire and reach the bench JSON"
"$TMP/xrblast" -url "$BASE" -wait-ready 10s -label cluster \
    -target "$JOIN&partial=1" -clients 4 -duration 3s \
    -min-ok 10 -max-errors 0 -min-hedges 1 \
    -cluster "a=$A,b=$B,c=$C" -json >"$TMP/healthy.json"
jq -e '.cluster.hedges >= 1 and .cluster.degraded == 0' "$TMP/healthy.json" >/dev/null \
    || { echo "FAIL: healthy cluster section wrong"; jq .cluster "$TMP/healthy.json"; exit 1; }

echo "== SIGKILL shard c mid-run: degraded responses, no hangs"
"$TMP/xrblast" -url "$BASE" -label cluster \
    -target "$JOIN&partial=1" -clients 4 -duration 6s \
    -min-ok 10 -max-errors 0 -min-degraded 1 \
    -cluster "a=$A,b=$B,c=$C" -json >"$TMP/degraded.json" &
BLAST_PID=$!
sleep 1.5
kill -9 "$PID_c"
wait "$BLAST_PID" || { echo "FAIL: degraded-run assertions failed"; jq .cluster "$TMP/degraded.json" || true; exit 1; }
jq -e '.cluster.degraded >= 1' "$TMP/degraded.json" >/dev/null \
    || { echo "FAIL: no degraded responses recorded"; jq .cluster "$TMP/degraded.json"; exit 1; }

echo "== degraded correctness: healthy shards' results survive"
BODY=$(curl -fsS "$BASE$JOIN&partial=1")
echo "$BODY" | jq -e '.shards_failed == ["c"] and .degraded == true' >/dev/null \
    || { echo "FAIL: shards_failed missing: $BODY"; exit 1; }
PR2=$(echo "$BODY" | jq .pairs)
[ "$PR2" -eq $((PA + PB)) ] || { echo "FAIL: degraded pairs $PR2 != $PA+$PB"; exit 1; }
curl -fsS -o /dev/null -w '%{http_code}' "$BASE$JOIN" | grep -q 502 \
    || { echo "FAIL: fail-fast request to a degraded fleet was not 502"; exit 1; }
echo "   degraded responses carry shards_failed=[c], $PR2 pairs ($PA + $PB)"

echo "== bench-JSON shape gate: degraded vs healthy baseline"
"$TMP/xrcheckbench" -baseline "$TMP/healthy.json" "$TMP/degraded.json"

echo "== router /metrics: shard c down, exposition lint-clean"
DOWN=0
for _ in $(seq 1 30); do
    curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
    if grep -q 'xr_cluster_shard_up{shard="c"} 0' "$TMP/metrics.txt"; then DOWN=1; break; fi
    sleep 0.1
done
[ "$DOWN" -eq 1 ] || { echo "FAIL: shard c never marked down on /metrics"; exit 1; }
grep -q 'xr_cluster_hedges_total' "$TMP/metrics.txt" || { echo "FAIL: hedge counters missing"; exit 1; }
grep -q 'xr_cluster_degraded_total' "$TMP/metrics.txt" || { echo "FAIL: degraded counter missing"; exit 1; }
"$TMP/xrcheckbench" -promlint "$TMP/metrics.txt"

echo "== graceful drain on SIGTERM"
kill -TERM "$ROUTER_PID"
STATUS=0
wait "$ROUTER_PID" || STATUS=$?
cat "$TMP/router.log"
[ "$STATUS" -eq 0 ] || { echo "FAIL: router exited $STATUS"; exit 1; }
grep -q 'drained cleanly' "$TMP/router.log" || { echo "FAIL: no 'drained cleanly' in router log"; exit 1; }

echo "cluster-smoke: all checks passed"
