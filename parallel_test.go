package xrtree_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrtree"
)

// genDocXML builds one synthetic document: na top-level <a> subtrees, each
// holding nested <a> and <d> elements, so the a//d join has work in every
// document.
func genDocXML(rng *rand.Rand, na int) string {
	var b strings.Builder
	b.WriteString("<r>")
	var subtree func(depth int)
	subtree = func(depth int) {
		b.WriteString("<a>")
		kids := rng.Intn(4) + 1
		for i := 0; i < kids; i++ {
			if depth < 3 && rng.Intn(3) == 0 {
				subtree(depth + 1)
			} else {
				b.WriteString("<d/>")
			}
		}
		b.WriteString("</a>")
	}
	for i := 0; i < na; i++ {
		subtree(0)
	}
	b.WriteString("</r>")
	return b.String()
}

func newParallelCollection(t *testing.T, docs int) *xrtree.Collection {
	t.Helper()
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	coll := store.NewCollection()
	rng := rand.New(rand.NewSource(7))
	for id := 1; id <= docs; id++ {
		doc, err := xrtree.ParseXML(strings.NewReader(genDocXML(rng, 60)), uint32(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	return coll
}

// TestParallelJoinMatchesSequential checks the central claim of the
// parallel driver: for every worker count, the pair stream and the merged
// index-level counters are identical to the sequential per-document loop.
// Run with -race for concurrency coverage of the latched read path.
func TestParallelJoinMatchesSequential(t *testing.T) {
	coll := newParallelCollection(t, 8)

	var seqPairs []xrtree.Pair
	var seqStats xrtree.Stats
	if err := coll.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, "a", "d",
		func(a, d xrtree.Element) { seqPairs = append(seqPairs, xrtree.Pair{A: a, D: d}) }, &seqStats); err != nil {
		t.Fatal(err)
	}
	if len(seqPairs) == 0 {
		t.Fatal("sequential join produced no pairs; workload broken")
	}

	for _, workers := range []int{0, 1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var pairs []xrtree.Pair
			var st xrtree.Stats
			err := coll.ParallelJoin(xrtree.AlgXRStack, xrtree.AncestorDescendant, "a", "d",
				func(a, d xrtree.Element) { pairs = append(pairs, xrtree.Pair{A: a, D: d}) },
				&st, xrtree.ParallelJoinOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != len(seqPairs) {
				t.Fatalf("%d pairs, want %d", len(pairs), len(seqPairs))
			}
			for i := range pairs {
				if pairs[i] != seqPairs[i] {
					t.Fatalf("pair %d = %v, want %v (order must match the sequential join)", i, pairs[i], seqPairs[i])
				}
			}
			if st.ElementsScanned != seqStats.ElementsScanned ||
				st.OutputPairs != seqStats.OutputPairs ||
				st.IndexNodeReads != seqStats.IndexNodeReads ||
				st.LeafReads != seqStats.LeafReads ||
				st.StabPageReads != seqStats.StabPageReads {
				t.Fatalf("merged counters diverge from sequential:\n  par: %s\n  seq: %s", st.String(), seqStats.String())
			}
		})
	}
}

// TestParallelJoinAllAlgorithms runs every algorithm through the parallel
// driver and cross-checks pair counts against the sequential join.
func TestParallelJoinAllAlgorithms(t *testing.T) {
	coll := newParallelCollection(t, 4)
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
		var seq, par int
		if err := coll.Join(alg, xrtree.AncestorDescendant, "a", "d",
			func(a, d xrtree.Element) { seq++ }, nil); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := coll.ParallelJoin(alg, xrtree.AncestorDescendant, "a", "d",
			func(a, d xrtree.Element) { par++ }, nil, xrtree.ParallelJoinOptions{Workers: 4}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if par != seq {
			t.Errorf("%s: parallel %d pairs, sequential %d", alg, par, seq)
		}
	}
}

// TestObservedParallelJoin checks the merged JoinReport: counters, traced
// events from all workers, and physical I/O recovered from the collector.
func TestObservedParallelJoin(t *testing.T) {
	coll := newParallelCollection(t, 6)
	rep, err := coll.ObservedParallelJoin(xrtree.AlgXRStack, xrtree.AncestorDescendant, "a", "d",
		nil, xrtree.ParallelJoinOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.OutputPairs == 0 {
		t.Fatal("no output pairs observed")
	}
	if rep.Stats.ElementsScanned == 0 {
		t.Fatal("no scans observed")
	}
	if rep.Phases.AncProbes == 0 {
		t.Fatal("no ancestor probes in phase breakdown")
	}
	if rep.Stats.Elapsed <= 0 {
		t.Fatal("Elapsed not set")
	}
	if rep.SkipEffectiveness < 0 || rep.SkipEffectiveness > 1 {
		t.Fatalf("SkipEffectiveness = %v out of range", rep.SkipEffectiveness)
	}
}
