package xrtree

// The cluster section of the bench JSON: what cmd/xrblast observes when it
// drives a cluster router. End-to-end quantiles come from the load run
// itself; the per-shard rows are scraped from the router's /api/v1/cluster
// status (sub-request counts, failures, hedges, retries and sub-request
// latency as the router saw them), optionally cross-checked with a direct
// /healthz probe per shard from the client side.

// ClusterShardRow is one shard's entry in the cluster study.
type ClusterShardRow struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Up is the router's health verdict at scrape time.
	Up bool `json:"up"`
	// Reachable is xrblast's own /healthz probe of the shard, when it ran
	// (nil: not probed). Divergence from Up means router and client
	// disagree about the shard — worth alarming on.
	Reachable *bool `json:"reachable,omitempty"`
	// Docs is the number of documents the placement assigns to this shard.
	Docs        int            `json:"docs"`
	Subrequests int64          `json:"subrequests"`
	Failures    int64          `json:"failures"`
	Hedges      int64          `json:"hedges"`
	Retries     int64          `json:"retries"`
	Latency     LatencySummary `json:"latency"`
}

// ClusterStudy is the distributed-serving study: one xrblast run against a
// cluster router.
type ClusterStudy struct {
	// Router is the router base URL the run drove.
	Router string `json:"router"`
	// Requests/OK/Degraded count end-to-end router responses seen by the
	// client; Degraded are 200s that carried a non-empty shards_failed.
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	// Subrequests/Hedges/Retries aggregate the per-shard rows.
	Subrequests int64 `json:"subrequests"`
	Hedges      int64 `json:"hedges"`
	Retries     int64 `json:"retries"`
	// HedgeRate is Hedges/Subrequests (0 when no sub-requests ran).
	HedgeRate float64 `json:"hedge_rate"`
	// Latency is the end-to-end router request latency of the run.
	Latency LatencySummary `json:"latency"`
	// Shards holds one row per shard of the fleet.
	Shards []ClusterShardRow `json:"shards"`
}
