package xrtree

// Path-expression evaluation over an indexed document: the paper's §7
// future work, built as a pipeline of XR-stack structural joins (see
// internal/pathexpr).

import (
	"context"
	"sync"

	"xrtree/internal/core"
	"xrtree/internal/pathexpr"
	"xrtree/internal/xmldoc"
)

// IndexedDocument couples a parsed document with a store, indexing each
// tag's element set lazily on first use so path queries can run step by
// step over XR-trees. Safe for concurrent queries: the lazy per-tag index
// construction is serialized by a mutex, so two racing queries for one tag
// build its indexes exactly once.
type IndexedDocument struct {
	store *Store
	doc   *Document

	// mu guards sets. Index building happens under the lock: builds write
	// through the shared buffer pool, and racing builders for one tag would
	// otherwise both index it (and racing map writes are fatal).
	mu   sync.Mutex
	sets map[string]*ElementSet
}

// IndexDocument prepares doc for path queries against s. Indexes are built
// lazily per tag.
func (s *Store) IndexDocument(doc *Document) *IndexedDocument {
	return &IndexedDocument{store: s, doc: doc, sets: make(map[string]*ElementSet)}
}

// Document returns the underlying parsed document.
func (d *IndexedDocument) Document() *Document { return d.doc }

// Set returns (building if needed) the indexed element set for one tag.
// The pseudo-tag "*" indexes every element. Tags with no elements return
// (nil, nil).
func (d *IndexedDocument) Set(tag string) (*ElementSet, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if set, ok := d.sets[tag]; ok {
		return set, nil
	}
	var els []Element
	if tag == "*" {
		els = d.doc.AllElements()
	} else {
		els = d.doc.ElementsByTag(tag)
	}
	if len(els) == 0 {
		d.sets[tag] = nil
		return nil, nil
	}
	set, err := d.store.IndexElements(els, IndexOptions{SkipList: true, SkipBTree: true})
	if err != nil {
		return nil, err
	}
	d.sets[tag] = set
	return set, nil
}

// fullSet returns (building if needed) the all-access-paths indexed set for
// tag over els — what collection joins need, unlike path queries which only
// build XR-trees. A cached XR-only set from a prior path query is upgraded.
func (d *IndexedDocument) fullSet(tag string, els []Element) (*ElementSet, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if set, ok := d.sets[tag]; ok && set != nil && set.list != nil && set.bt != nil {
		return set, nil
	}
	set, err := d.store.IndexElements(els, IndexOptions{})
	if err != nil {
		return nil, err
	}
	d.sets[tag] = set
	return set, nil
}

// XRTreeForTag implements pathexpr.SetProvider.
func (d *IndexedDocument) XRTreeForTag(tag string) (*core.Tree, error) {
	set, err := d.Set(tag)
	if err != nil || set == nil {
		return nil, err
	}
	return set.XRTree()
}

// Query evaluates a path expression such as "department//employee/name"
// over the document, returning the elements matching the final step sorted
// by start. A leading axis defaults to '//'. Steps may use the "*"
// wildcard, "@attr"/"#text" node tests (when the document was parsed with
// those nodes materialized), and bracketed existence predicates evaluated
// as structural semi-joins: "employee[email]//name". Costs accumulate into
// st.
func (d *IndexedDocument) Query(expr string, st *Stats) ([]Element, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return nil, err
	}
	return pathexpr.Evaluate(p, d, st)
}

// QueryContext is Query with cancellation: a canceled or timed-out context
// stops the pipeline at its next poll point (a step boundary, a page
// boundary, or an element stride) and returns ctx's error.
func (d *IndexedDocument) QueryContext(ctx context.Context, expr string, st *Stats) ([]Element, error) {
	var out []Element
	err := withCtx(ctx, st, func(st *Stats) error {
		var err error
		out, err = d.Query(expr, st)
		return err
	})
	return out, err
}

// QueryNodes is Query with results resolved back to document nodes (tag,
// text, children) via their Ref locators.
func (d *IndexedDocument) QueryNodes(expr string, st *Stats) ([]*Node, error) {
	els, err := d.Query(expr, st)
	if err != nil {
		return nil, err
	}
	nodes := make([]*Node, 0, len(els))
	for _, e := range els {
		if n, ok := d.doc.Node(e.Ref); ok {
			nodes = append(nodes, n)
		}
	}
	return nodes, nil
}

// Node re-exports the document tree node type (tag, text, parent/children
// links) so QueryNodes results are self-contained.
type Node = xmldoc.Node
