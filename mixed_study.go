package xrtree

// The mixed read/write study for the B-link write-concurrency work: one
// XR-tree under concurrent FindAncestors probes while writers ingest, run
// twice per writer count — once with a study-level RWMutex wrapped around
// every operation (emulating the coarse per-tree latch the B-link protocol
// replaced) and once with the tree's own per-page latching. The rows
// report reader throughput and latency percentiles measured strictly while
// ingest is in flight, plus writer throughput, so the comparison captures
// exactly the claim of the refactor: readers keep flowing during splits
// and commit waits instead of queueing behind each insert.
//
// The store is file-backed with the WAL enabled — the configuration the
// coarse-vs-fine distinction matters for. Under the replaced design the
// tree latch was held across the whole insert transaction including the
// group-committed fsync, so every reader stalled for the commit; that is
// exactly what the coarse rows reproduce, and the window per-page latching
// wins back even on a single-CPU host (readers execute during the
// writer's commit wait instead of queueing on the latch).

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"xrtree/internal/datagen"
)

// MixedStudyConfig parameterizes RunMixedStudy.
type MixedStudyConfig struct {
	// Seed makes the corpus and probe positions deterministic. Default 1.
	Seed int64
	// Elements is the static corpus size readers probe (default 20000).
	Elements int
	// Writers is the sweep of concurrent writer counts; default {1, 4}.
	Writers []int
	// Readers is the number of concurrent probe goroutines (default 4).
	Readers int
	// InsertsPerWriter is each writer's ingest volume (default 1200). The
	// measurement window is the ingest: readers are sampled only while at
	// least one writer is still inserting.
	InsertsPerWriter int
	// PageSize and BufferPages configure each cell's store (defaults
	// 4096 / 512 — large enough that the comparison measures latching,
	// not eviction).
	PageSize    int
	BufferPages int
}

func (c *MixedStudyConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Elements <= 0 {
		c.Elements = 20000
	}
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 4}
	}
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.InsertsPerWriter <= 0 {
		c.InsertsPerWriter = 1200
	}
	if c.BufferPages == 0 {
		c.BufferPages = 512
	}
}

// MixedRow is one (latching mode, writer count) cell.
type MixedRow struct {
	// Mode is "coarse" (study-level RWMutex around every operation) or
	// "blink" (the tree's own per-page latching).
	Mode    string `json:"mode"`
	Writers int    `json:"writers"`
	Readers int    `json:"readers"`
	// Writer side: total inserts and throughput over the ingest window.
	WriterOps       int64   `json:"writer_ops"`
	WriterOpsPerSec float64 `json:"writer_ops_per_sec"`
	// Reader side, sampled only while ingest was in flight.
	ReaderOps       int64   `json:"reader_ops"`
	ReaderOpsPerSec float64 `json:"reader_ops_per_sec"`
	ReaderP50US     float64 `json:"reader_p50_us"`
	ReaderP99US     float64 `json:"reader_p99_us"`
	WallMS          float64 `json:"wall_ms"`
}

// MixedStudy is the full coarse-vs-blink comparison.
type MixedStudy struct {
	Elements         int        `json:"elements"`
	Readers          int        `json:"readers"`
	InsertsPerWriter int        `json:"inserts_per_writer"`
	Rows             []MixedRow `json:"rows"`
}

// RunMixedStudy measures the mixed ingest/probe workload for every writer
// count, under the coarse-latch emulation and under the tree's per-page
// latching. Every cell gets a fresh store and an identical bulk-loaded
// corpus, so the rows differ only in latching mode and writer count.
func RunMixedStudy(cfg MixedStudyConfig) (*MixedStudy, error) {
	cfg.defaults()
	doc, err := datagen.Nested(datagen.NestedConfig{
		Seed: cfg.Seed, DocID: 1, Elements: cfg.Elements, MaxDepth: 12, DeepBias: 0.6,
	})
	if err != nil {
		return nil, err
	}
	els := doc.ElementsByTag("item")
	study := &MixedStudy{
		Elements:         len(els),
		Readers:          cfg.Readers,
		InsertsPerWriter: cfg.InsertsPerWriter,
	}
	for _, writers := range cfg.Writers {
		for _, mode := range []string{"coarse", "blink"} {
			row, err := runMixedCell(cfg, els, mode, writers)
			if err != nil {
				return nil, fmt.Errorf("mixed study (%s, %d writers): %w", mode, writers, err)
			}
			study.Rows = append(study.Rows, row)
		}
	}
	return study, nil
}

// runMixedCell measures one (mode, writers) cell on a fresh WAL-backed
// store in a private temp directory.
func runMixedCell(cfg MixedStudyConfig, els []Element, mode string, writers int) (MixedRow, error) {
	row := MixedRow{Mode: mode, Writers: writers, Readers: cfg.Readers}
	dir, err := os.MkdirTemp("", "xrtree-mixed-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	store, err := CreateStore(filepath.Join(dir, "mixed.xrt"), StoreOptions{
		PageSize: cfg.PageSize, BufferPages: cfg.BufferPages, WAL: true,
	})
	if err != nil {
		return row, err
	}
	defer store.Close()
	set, err := store.IndexElements(els, IndexOptions{SkipList: true, SkipBTree: true})
	if err != nil {
		return row, err
	}
	xr, err := set.XRTree()
	if err != nil {
		return row, err
	}

	// The coarse emulation reproduces the replaced design at the study
	// level: every insert takes the write side, every probe the read side,
	// for the operation's whole duration. Blink cells leave gate nil and
	// rely on the tree's own latching.
	var gate *sync.RWMutex
	if mode == "coarse" {
		gate = new(sync.RWMutex)
	}

	// Writers ingest flat elements strictly above the static corpus, each
	// in a private arithmetic range — no key collisions, but every insert
	// still climbs through (and splits) the shared upper levels readers
	// descend.
	base := els[len(els)-1].End + 2
	var ingesting atomic.Int64
	ingesting.Store(int64(writers))

	var wg sync.WaitGroup
	writerErrs := make([]error, writers)
	latencies := make([][]time.Duration, cfg.Readers)
	readerErrs := make([]error, cfg.Readers)

	start := time.Now()
	var ingestEnd atomic.Int64 // ns since start when the last writer finished
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if ingesting.Add(-1) == 0 {
					ingestEnd.Store(int64(time.Since(start)))
				}
			}()
			first := base + uint32(w)*uint32(cfg.InsertsPerWriter)*4
			for i := 0; i < cfg.InsertsPerWriter; i++ {
				s := first + uint32(i)*4
				e := Element{DocID: 1, Start: s, End: s + 2, Level: 1}
				if gate != nil {
					gate.Lock()
				}
				err := xr.Insert(e)
				if gate != nil {
					gate.Unlock()
				}
				if err != nil {
					writerErrs[w] = err
					return
				}
			}
		}(w)
	}
	for g := 0; g < cfg.Readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*101))
			var st Stats
			for ingesting.Load() > 0 {
				probe := els[rng.Intn(len(els))].Start
				opStart := time.Now()
				if gate != nil {
					gate.RLock()
				}
				_, err := xr.FindAncestors(probe, 0, &st)
				if gate != nil {
					gate.RUnlock()
				}
				if err != nil {
					readerErrs[g] = err
					return
				}
				latencies[g] = append(latencies[g], time.Since(opStart))
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range append(writerErrs, readerErrs...) {
		if err != nil {
			return row, err
		}
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	window := time.Duration(ingestEnd.Load())
	if window <= 0 {
		window = wall
	}
	row.WriterOps = int64(writers) * int64(cfg.InsertsPerWriter)
	row.WriterOpsPerSec = float64(row.WriterOps) / window.Seconds()
	row.ReaderOps = int64(len(all))
	row.ReaderOpsPerSec = float64(len(all)) / window.Seconds()
	row.ReaderP50US = quantileUS(all, 0.50)
	row.ReaderP99US = quantileUS(all, 0.99)
	row.WallMS = float64(wall.Microseconds()) / 1000
	return row, nil
}

// quantileUS returns the q-quantile of sorted durations, in microseconds.
func quantileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1000
}

// FormatMixedStudy renders the coarse-vs-blink comparison as a table.
func FormatMixedStudy(w io.Writer, s *MixedStudy) error {
	fmt.Fprintf(w, "elements=%d readers=%d inserts/writer=%d\n",
		s.Elements, s.Readers, s.InsertsPerWriter)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\twriters\twriter-ops/s\treader-ops/s\treader-p50-µs\treader-p99-µs\twall-ms")
	for _, r := range s.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\n",
			r.Mode, r.Writers, r.WriterOpsPerSec, r.ReaderOpsPerSec,
			r.ReaderP50US, r.ReaderP99US, r.WallMS)
	}
	return tw.Flush()
}
