package xrtree_test

import (
	"strings"
	"testing"

	"xrtree"
)

const collDocA = `<dept><emp><name/><emp><name/></emp></emp></dept>`
const collDocB = `<dept><emp><name/></emp><emp><name/></emp></dept>`

func newCollection(t *testing.T) (*xrtree.Collection, *xrtree.Store) {
	t.Helper()
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	coll := store.NewCollection()
	for id, xml := range map[uint32]string{1: collDocA, 2: collDocB} {
		doc, err := xrtree.ParseXML(strings.NewReader(xml), id)
		if err != nil {
			t.Fatal(err)
		}
		if err := coll.Add(doc); err != nil {
			t.Fatal(err)
		}
	}
	return coll, store
}

func TestCollectionJoinRespectsDocID(t *testing.T) {
	coll, _ := newCollection(t)
	if coll.Len() != 2 {
		t.Fatalf("Len = %d", coll.Len())
	}
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
		var pairs []xrtree.Pair
		var st xrtree.Stats
		err := coll.Join(alg, xrtree.AncestorDescendant, "emp", "name",
			func(a, d xrtree.Element) { pairs = append(pairs, xrtree.Pair{A: a, D: d}) }, &st)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Doc A: emp(outer) contains both names (2 pairs) + emp(inner) has
		// its name (1) = 3; Doc B: 2 flat emps × 1 name = 2. Total 5.
		if len(pairs) != 5 {
			t.Errorf("%s: %d pairs, want 5", alg, len(pairs))
		}
		for _, p := range pairs {
			if p.A.DocID != p.D.DocID {
				t.Errorf("%s: cross-document pair %v × %v", alg, p.A, p.D)
			}
		}
	}
}

func TestCollectionDuplicateDocID(t *testing.T) {
	coll, _ := newCollection(t)
	doc, err := xrtree.ParseXML(strings.NewReader("<a/>"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Add(doc); err == nil {
		t.Error("duplicate DocID accepted")
	}
}

func TestCollectionQueryUnionsDocuments(t *testing.T) {
	coll, _ := newCollection(t)
	els, err := coll.Query("emp//name", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 4 {
		t.Fatalf("Query = %d results, want 4 (2 per document)", len(els))
	}
	for i := 1; i < len(els); i++ {
		if els[i-1].DocID > els[i].DocID {
			t.Error("results not grouped by DocID")
		}
	}
	if els[0].DocID != 1 || els[3].DocID != 2 {
		t.Errorf("results: %v", els)
	}
}

func TestCollectionSkipsDocsWithoutTags(t *testing.T) {
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coll := store.NewCollection()
	d1, _ := xrtree.ParseXML(strings.NewReader("<x><emp><name/></emp></x>"), 1)
	d2, _ := xrtree.ParseXML(strings.NewReader("<x><other/></x>"), 2)
	coll.Add(d1)
	coll.Add(d2)
	n := 0
	err = coll.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, "emp", "name",
		func(a, d xrtree.Element) { n++ }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("pairs = %d, want 1", n)
	}
}
