package xrtree

// The workers-speedup study for the parallel structural-join driver: build
// one collection of K independently generated Department documents, then
// run the same employee//name join at increasing worker counts and report
// wall time and speedup over the single-worker run. Structural joins never
// pair elements across documents (§2.2), so document partitioning keeps
// the output stream and every counter identical while spreading the work.
//
// Wall-clock speedup is hardware-dependent — a single-CPU machine cannot
// overlap CPU-bound partitions no matter how the driver schedules them —
// so the study also reports a modeled speedup: each document's join cost
// under the paper-style CostModel (Figure 8's derived-time proxy), list-
// scheduled onto the worker pool exactly as the driver dispatches tasks.
// The modeled makespan is deterministic, machine-independent, and shows
// how well DocId partitioning balances; wall time tracks it when real
// cores are available (see the CPUs field).

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"xrtree/internal/datagen"
)

// ParallelStudyConfig parameterizes RunParallelStudy.
type ParallelStudyConfig struct {
	Seed int64
	// Docs is the number of generated documents; default 8. Parallelism is
	// bounded by the document count, so keep Docs ≥ max(Workers).
	Docs int
	// Departments scales per-document size (department elements per doc);
	// default 25.
	Departments int
	// Workers is the sweep; default {1, 2, 4, 8}. The first entry is the
	// speedup baseline.
	Workers []int
	// Reps is the number of timed repetitions per worker count; the best
	// (minimum) wall time is kept. Default 3.
	Reps int
	// Alg selects the join algorithm; default AlgXRStack.
	Alg Algorithm
	// Model converts counted page misses and scans into the modeled
	// per-document cost (default DefaultCostModel).
	Model       CostModel
	PageSize    int
	BufferPages int
	PoolShards  int
}

func (c *ParallelStudyConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Docs <= 0 {
		c.Docs = 8
	}
	if c.Departments <= 0 {
		c.Departments = 25
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Model == (CostModel{}) {
		c.Model = DefaultCostModel
	}
	if c.BufferPages == 0 {
		c.BufferPages = 512
	}
}

// ParallelStudyRow is one worker count's measurement.
type ParallelStudyRow struct {
	Workers int `json:"workers"`
	// WallMS is the best measured wall time; WallSpeedup is relative to the
	// first row. Meaningful only with ≥ Workers real CPUs.
	WallMS      float64 `json:"wall_ms"`
	WallSpeedup float64 `json:"wall_speedup"`
	// ModelMS is the list-scheduled makespan of the per-document modeled
	// costs on this many workers; ModelSpeedup is relative to the first row.
	ModelMS         float64 `json:"model_ms"`
	ModelSpeedup    float64 `json:"model_speedup"`
	Pairs           int64   `json:"pairs"`
	ElementsScanned int64   `json:"elements_scanned"`
}

// ParallelStudy is the full result of one workers sweep.
type ParallelStudy struct {
	// CPUs records runtime.NumCPU at measurement time: the hard ceiling on
	// wall-clock speedup.
	CPUs int `json:"cpus"`
	Docs int `json:"docs"`
	// TaskModelMS is the modeled join cost of each document, in task order
	// — the input to the makespan model.
	TaskModelMS []float64          `json:"task_model_ms"`
	Rows        []ParallelStudyRow `json:"rows"`
}

// modelMakespan list-schedules the task costs onto `workers` workers the
// way the driver dispatches them: in order, each to the earliest-free
// worker. Returns the makespan.
func modelMakespan(taskMS []float64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	busy := make([]float64, workers)
	for _, t := range taskMS {
		min := 0
		for w := 1; w < workers; w++ {
			if busy[w] < busy[min] {
				min = w
			}
		}
		busy[min] += t
	}
	var span float64
	for _, b := range busy {
		if b > span {
			span = b
		}
	}
	return span
}

// RunParallelStudy builds the multi-document workload and sweeps the
// worker counts. Every run must produce the same pair count and scan
// count — the partitioned join does identical work, only scheduled
// differently — so the rows double as a correctness check.
func RunParallelStudy(cfg ParallelStudyConfig) (*ParallelStudy, error) {
	cfg.defaults()
	coll, err := buildParallelWorkload(cfg)
	if err != nil {
		return nil, err
	}
	defer coll.store.Close()

	run := func(workers int) (time.Duration, Stats, error) {
		var st Stats
		start := time.Now()
		err := coll.ParallelJoin(cfg.Alg, AncestorDescendant, "employee", "name",
			nil, &st, ParallelJoinOptions{Workers: workers})
		return time.Since(start), st, err
	}
	// Warm-up: builds and caches the per-document indexes so the timed runs
	// measure joining, not index construction.
	if _, _, err := run(1); err != nil {
		return nil, err
	}

	// Model input: each document's join measured alone, costed with the
	// paper-style model.
	study := &ParallelStudy{CPUs: runtime.NumCPU(), Docs: coll.Len()}
	for _, idx := range coll.docs {
		a, err := coll.setFor(idx, "employee", idx.doc.ElementsByTag("employee"))
		if err != nil {
			return nil, err
		}
		d, err := coll.setFor(idx, "name", idx.doc.ElementsByTag("name"))
		if err != nil {
			return nil, err
		}
		var st Stats
		if err := Join(cfg.Alg, AncestorDescendant, a, d, nil, &st); err != nil {
			return nil, err
		}
		study.TaskModelMS = append(study.TaskModelMS,
			float64(cfg.Model.DerivedTime(&st).Microseconds())/1000)
	}

	for _, w := range cfg.Workers {
		var best time.Duration
		var st Stats
		for r := 0; r < cfg.Reps; r++ {
			d, s, err := run(w)
			if err != nil {
				return nil, err
			}
			if r == 0 || d < best {
				best, st = d, s
			}
		}
		study.Rows = append(study.Rows, ParallelStudyRow{
			Workers:         w,
			WallMS:          float64(best.Microseconds()) / 1000,
			ModelMS:         modelMakespan(study.TaskModelMS, w),
			Pairs:           st.OutputPairs,
			ElementsScanned: st.ElementsScanned,
		})
	}
	wallBase, modelBase := study.Rows[0].WallMS, study.Rows[0].ModelMS
	for i := range study.Rows {
		r := &study.Rows[i]
		if r.WallMS > 0 {
			r.WallSpeedup = wallBase / r.WallMS
		}
		if r.ModelMS > 0 {
			r.ModelSpeedup = modelBase / r.ModelMS
		}
	}
	return study, nil
}

func buildParallelWorkload(cfg ParallelStudyConfig) (*Collection, error) {
	store, err := NewMemStore(StoreOptions{
		PageSize: cfg.PageSize, BufferPages: cfg.BufferPages, PoolShards: cfg.PoolShards,
	})
	if err != nil {
		return nil, err
	}
	coll := store.NewCollection()
	for i := 0; i < cfg.Docs; i++ {
		doc, err := datagen.Department(datagen.DeptConfig{
			Seed:        cfg.Seed + int64(i)*7919,
			DocID:       uint32(i + 1),
			Departments: cfg.Departments,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		if err := coll.Add(doc); err != nil {
			store.Close()
			return nil, err
		}
	}
	return coll, nil
}

// FormatParallelStudy renders the workers sweep as a table.
func FormatParallelStudy(w io.Writer, s *ParallelStudy) error {
	fmt.Fprintf(w, "docs=%d cpus=%d\n", s.Docs, s.CPUs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\twall-ms\twall-speedup\tmodel-ms\tmodel-speedup\tpairs\tscanned")
	for _, r := range s.Rows {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2fx\t%.2f\t%.2fx\t%d\t%d\n",
			r.Workers, r.WallMS, r.WallSpeedup, r.ModelMS, r.ModelSpeedup,
			r.Pairs, r.ElementsScanned)
	}
	return tw.Flush()
}
