package xrtree_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrtree"
	"xrtree/internal/xmldoc"
)

// walStore creates a WAL-enabled store with one saved set built from the
// shared sample document.
func walStore(t *testing.T, path string) (*xrtree.Store, *xrtree.ElementSet) {
	t.Helper()
	store, err := xrtree.CreateStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{SkipList: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("emps", set); err != nil {
		t.Fatal(err)
	}
	return store, set
}

// TestWALRecoveryRoundtrip commits inserts, drops the store without
// closing, and checks that recovery on reopen redoes them.
func TestWALRecoveryRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xr.db")
	store, set := walStore(t, path)
	xr, err := set.XRTree()
	if err != nil {
		t.Fatal(err)
	}
	ins := xmldoc.Element{DocID: 1, Start: 1000, End: 1003, Level: 1}
	if err := xr.Insert(ins); err != nil {
		t.Fatal(err)
	}
	if st, ok := store.WALStats(); !ok || st.Commits == 0 {
		t.Fatalf("no commits logged: %+v ok=%v", st, ok)
	}
	store.Abandon() // crash: the insert's commit was acknowledged

	re, err := xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := re.Recovery()
	if rep == nil || !rep.Replayed() {
		t.Fatalf("recovery report %+v", rep)
	}
	set2, err := re.OpenSet("emps")
	if err != nil {
		t.Fatal(err)
	}
	xr2, err := set2.XRTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := xr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := set2.FindAncestors(1001, nil)
	if err != nil || len(got) != 1 || got[0].Start != ins.Start || got[0].End != ins.End {
		t.Fatalf("committed insert lost: %v %v", got, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// The clean close must be trusted: no redo on the next open.
	re2, err := xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if rep := re2.Recovery(); rep == nil || rep.Replayed() {
		t.Fatalf("clean shutdown not honored: %+v", rep)
	}
}

// TestOpenWithoutWALNeedsRecovery: a store that crashed with log segments
// on disk must refuse a non-WAL open with the typed error instead of
// silently exposing pre-crash state.
func TestOpenWithoutWALNeedsRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xr.db")
	store, _ := walStore(t, path)
	store.Abandon()

	_, err := xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64})
	if !errors.Is(err, xrtree.ErrRecoveryNeeded) {
		t.Fatalf("err = %v, want ErrRecoveryNeeded", err)
	}

	// Reopening with WAL recovers and, after a clean close, the plain
	// open works again.
	re, err := xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64})
	if err != nil {
		t.Fatalf("open after recovery and clean close: %v", err)
	}
	plain.Close()
}

// TestTornPagefileNeedsRecovery: a page file shorter than its header
// claims (a torn tail from a crashed unsynced write) must surface the
// typed error on a plain open, not open silently.
func TestTornPagefileNeedsRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xr.db")
	store, err := xrtree.CreateStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{SkipList: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSet("emps", set); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-truncate the file mid-page.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-100); err != nil {
		t.Fatal(err)
	}
	_, err = xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64})
	if !errors.Is(err, xrtree.ErrRecoveryNeeded) {
		t.Fatalf("err = %v, want ErrRecoveryNeeded", err)
	}
}

// TestMemStoreRejectsWAL: the log is file-backed by definition.
func TestMemStoreRejectsWAL(t *testing.T) {
	if _, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 512, WAL: true}); err == nil {
		t.Fatal("NewMemStore accepted WAL")
	}
}

// TestExplicitCheckpoint: a checkpoint truncates the log's replay work —
// a crash right after it redoes nothing.
func TestExplicitCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xr.db")
	store, set := walStore(t, path)
	xr, err := set.XRTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := xr.Insert(xmldoc.Element{DocID: 1, Start: 1000, End: 1003, Level: 1}); err != nil {
		t.Fatal(err)
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	store.Abandon()

	re, err := xrtree.OpenStore(path, xrtree.StoreOptions{PageSize: 512, BufferPages: 64, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rep := re.Recovery()
	if rep == nil || rep.PagesApplied != 0 {
		t.Fatalf("checkpointed log still redid pages: %+v", rep)
	}
	set2, err := re.OpenSet("emps")
	if err != nil {
		t.Fatal(err)
	}
	xr2, err := set2.XRTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := xr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, err := set2.FindAncestors(1001, nil); err != nil || len(got) != 1 {
		t.Fatalf("checkpointed insert lost: %v %v", got, err)
	}
}
