package xrtree_test

import (
	"fmt"
	"log"
	"strings"

	"xrtree"
)

// The examples share a miniature of the paper's Figure 1 document.
const exampleXML = `<dept><emp><name/><emp><name/></emp></emp><emp><name/></emp></dept>`

func ExampleJoin() {
	doc, err := xrtree.ParseXML(strings.NewReader(exampleXML), 1)
	if err != nil {
		log.Fatal(err)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	emps, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	names, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var st xrtree.Stats
	err = xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, emps, names,
		func(a, d xrtree.Element) { fmt.Printf("%v contains %v\n", a, d) }, &st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs:", st.OutputPairs)
	// Output:
	// (2, 9) contains (3, 4)
	// (2, 9) contains (6, 7)
	// (5, 8) contains (6, 7)
	// (10, 13) contains (11, 12)
	// pairs: 4
}

func ExampleElementSet_FindAncestors() {
	doc, _ := xrtree.ParseXML(strings.NewReader(exampleXML), 1)
	store, _ := xrtree.NewMemStore(xrtree.StoreOptions{})
	defer store.Close()
	emps, _ := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{})

	// The second name starts at position 6; both enclosing emps contain it.
	anc, err := emps.FindAncestors(6, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range anc {
		fmt.Println(a)
	}
	// Output:
	// (2, 9)
	// (5, 8)
}

func ExampleIndexedDocument_Query() {
	doc, _ := xrtree.ParseXML(strings.NewReader(exampleXML), 1)
	store, _ := xrtree.NewMemStore(xrtree.StoreOptions{})
	defer store.Close()

	idx := store.IndexDocument(doc)
	els, err := idx.Query("emp/emp//name", nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range els {
		fmt.Println(e)
	}
	// Output:
	// (6, 7)
}

func ExampleFromDurable() {
	// (order, size) codes for a root with one child.
	codes := []xrtree.DurableCode{
		{Order: 1, Size: 4},
		{Order: 2, Size: 1},
	}
	els, err := xrtree.FromDurable(1, codes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(els[0].IsAncestorOf(els[1]))
	// Output:
	// true
}
