package xrtree_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"xrtree"
	"xrtree/internal/datagen"
)

const sampleXML = `<dept>
  <emp><name/><emp><emp><name/></emp></emp></emp>
  <emp><name/></emp>
  <office/>
</dept>`

func memStore(t *testing.T) *xrtree.Store {
	t.Helper()
	s, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 512, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEndToEndQuickFlow(t *testing.T) {
	doc, err := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	store := memStore(t)
	emps, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatalf("IndexElements(emp): %v", err)
	}
	names, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatalf("IndexElements(name): %v", err)
	}

	// emp//name: every name is under at least one emp; the doubly nested
	// name matches three emps.
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgXRStack} {
		pairs, err := xrtree.JoinPairs(alg, xrtree.AncestorDescendant, emps, names, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(pairs) != 5 {
			t.Errorf("%s: emp//name = %d pairs, want 5", alg, len(pairs))
		}
	}
	// emp/name: direct children only.
	pairs, err := xrtree.JoinPairs(xrtree.AlgXRStack, xrtree.ParentChild, emps, names, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Errorf("emp/name = %d pairs, want 3", len(pairs))
	}
}

func TestAlgorithmsAgreeOnCorpus(t *testing.T) {
	corpora, err := datagen.PaperCorpora(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, corpus := range corpora {
		store := memStore(t)
		a, err := store.IndexElements(corpus.Doc.ElementsByTag(corpus.AncestorTag), xrtree.IndexOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := store.IndexElements(corpus.Doc.ElementsByTag(corpus.DescendantTag), xrtree.IndexOptions{})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[xrtree.Algorithm]int64)
		for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgBPlusSP, xrtree.AlgXRStack} {
			var st xrtree.Stats
			if err := xrtree.Join(alg, xrtree.AncestorDescendant, a, d, nil, &st); err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			counts[alg] = st.OutputPairs
		}
		for alg, n := range counts {
			if n != counts[xrtree.AlgNoIndex] {
				t.Errorf("%s: %s produced %d pairs, no-index produced %d",
					corpus.Name, alg, n, counts[xrtree.AlgNoIndex])
			}
		}
		if counts[xrtree.AlgNoIndex] == 0 {
			t.Errorf("%s: no pairs at all", corpus.Name)
		}
	}
}

func TestFindAncestorsDescendantsAPI(t *testing.T) {
	doc, err := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	if err != nil {
		t.Fatal(err)
	}
	store := memStore(t)
	emps, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	names := doc.ElementsByTag("name")
	deepest := names[1] // the name under emp>emp>emp
	anc, err := emps.FindAncestors(deepest.Start, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 {
		t.Errorf("FindAncestors = %d, want 3", len(anc))
	}
	root := doc.ElementsByTag("emp")[0]
	des, err := emps.FindDescendants(root.Start, root.End, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 2 {
		t.Errorf("FindDescendants = %d, want 2", len(des))
	}
}

func TestSkippedAccessPathsError(t *testing.T) {
	doc, _ := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	store := memStore(t)
	a, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{SkipBTree: true, SkipXRTree: true})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{SkipBTree: true, SkipXRTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := xrtree.Join(xrtree.AlgBPlus, xrtree.AncestorDescendant, a, d, nil, nil); !errors.Is(err, xrtree.ErrNoAccessPath) {
		t.Errorf("BPlus without B+-tree: err = %v", err)
	}
	if err := xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil, nil); !errors.Is(err, xrtree.ErrNoAccessPath) {
		t.Errorf("XRStack without XR-tree: err = %v", err)
	}
	if err := xrtree.Join(xrtree.AlgNoIndex, xrtree.AncestorDescendant, a, d, nil, nil); err != nil {
		t.Errorf("NoIndex with lists: %v", err)
	}
	if _, err := a.FindAncestors(5, nil); !errors.Is(err, xrtree.ErrNoAccessPath) {
		t.Errorf("FindAncestors without XR-tree: %v", err)
	}
}

func TestDiskBackedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "xr.db")
	store, err := xrtree.CreateStore(path, xrtree.StoreOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xrtree.ParseXML(strings.NewReader(sampleXML), 1)
	a, err := store.IndexElements(doc.ElementsByTag("emp"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.IndexElements(doc.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := xrtree.JoinPairs(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Errorf("pairs = %d, want 5", len(pairs))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBuildEqualsBulkLoad(t *testing.T) {
	corpora, err := datagen.PaperCorpora(5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	doc := corpora[0].Doc
	els := doc.ElementsByTag("employee")
	store := memStore(t)
	bulk, err := store.IndexElements(els, xrtree.IndexOptions{SkipList: true, SkipBTree: true})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := store.IndexElements(els, xrtree.IndexOptions{SkipList: true, SkipBTree: true, InsertBuild: true})
	if err != nil {
		t.Fatal(err)
	}
	probes := doc.ElementsByTag("name")
	if len(probes) > 50 {
		probes = probes[:50]
	}
	for _, probe := range probes {
		a1, err := bulk.FindAncestors(probe.Start, nil)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ins.FindAncestors(probe.Start, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a1) != len(a2) {
			t.Fatalf("probe %d: bulk %d ancestors, insert-built %d", probe.Start, len(a1), len(a2))
		}
	}
	bx, _ := bulk.XRTree()
	ix, _ := ins.XRTree()
	if err := bx.CheckInvariants(); err != nil {
		t.Errorf("bulk invariants: %v", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Errorf("insert-built invariants: %v", err)
	}
}

func TestRunAncestorSweepSmall(t *testing.T) {
	res, err := xrtree.RunAncestorSweep(xrtree.ExperimentConfig{
		Seed: 1, Scale: 0.05, PageSize: 1024, Sweep: []float64{0.90, 0.25, 0.01},
	})
	if err != nil {
		t.Fatalf("RunAncestorSweep: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("corpora = %d, want 2", len(res))
	}
	for _, r := range res {
		if len(r.Points) != 3 {
			t.Fatalf("%s: points = %d", r.Corpus, len(r.Points))
		}
		// Every algorithm must emit the same number of pairs at every point.
		for _, p := range r.Points {
			for _, ar := range p.Results[1:] {
				if ar.Stats.OutputPairs != p.Results[0].Stats.OutputPairs {
					t.Errorf("%s %s: %s pairs %d != %d", r.Corpus, p.Label, ar.Alg,
						ar.Stats.OutputPairs, p.Results[0].Stats.OutputPairs)
				}
			}
		}
		// Shape check: XR-stack scans no more than no-index at the lowest
		// selectivity (it skips; no-index cannot). Only meaningful when the
		// workload is big enough that constant overheads don't dominate.
		last := r.Points[len(r.Points)-1]
		if last.Workload.NumA+last.Workload.NumD > 500 {
			nidx, xrs := findAlg(t, last, xrtree.AlgNoIndex), findAlg(t, last, xrtree.AlgXRStack)
			if xrs.Stats.ElementsScanned > nidx.Stats.ElementsScanned {
				t.Errorf("%s at %s: XR scanned %d > no-index %d", r.Corpus, last.Label,
					xrs.Stats.ElementsScanned, nidx.Stats.ElementsScanned)
			}
		}
		var buf bytes.Buffer
		if err := xrtree.FormatScannedTable(&buf, r, "Join-A"); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "XR-stack") {
			t.Error("table missing XR-stack column")
		}
		if err := xrtree.FormatTimeTable(&buf, r, "Join-A"); err != nil {
			t.Fatal(err)
		}
	}
}

func findAlg(t *testing.T, p xrtree.SweepPoint, alg xrtree.Algorithm) xrtree.AlgResult {
	t.Helper()
	for _, r := range p.Results {
		if r.Alg == alg {
			return r
		}
	}
	t.Fatalf("algorithm %s missing", alg)
	return xrtree.AlgResult{}
}

func TestRunDescendantAndBothSweepsSmall(t *testing.T) {
	cfg := xrtree.ExperimentConfig{Seed: 2, Scale: 0.04, PageSize: 1024, Sweep: []float64{0.55, 0.05}}
	res, err := xrtree.RunDescendantSweep(cfg)
	if err != nil {
		t.Fatalf("RunDescendantSweep: %v", err)
	}
	for _, r := range res {
		for _, p := range r.Points {
			for _, ar := range p.Results[1:] {
				if ar.Stats.OutputPairs != p.Results[0].Stats.OutputPairs {
					t.Errorf("%s %s: pair mismatch", r.Corpus, p.Label)
				}
			}
		}
	}
	both, err := xrtree.RunBothSweep(cfg)
	if err != nil {
		t.Fatalf("RunBothSweep: %v", err)
	}
	for _, r := range both {
		for _, p := range r.Points {
			// Sizes must be constant across the sweep (§6.4).
			if p.Workload.NumA != r.Points[0].Workload.NumA ||
				p.Workload.NumD != r.Points[0].Workload.NumD {
				t.Errorf("%s: sizes drift across sweep", r.Corpus)
			}
		}
	}
}

func TestRunStabListStudy(t *testing.T) {
	rows, err := xrtree.RunStabListStudy(xrtree.StabStudyConfig{
		Seed: 1, Elements: 3000, Depths: []int{2, 12}, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].StabEntries <= rows[0].StabEntries {
		t.Errorf("deeper nesting should stab more: %+v", rows)
	}
	var buf bytes.Buffer
	if err := xrtree.FormatStabStudy(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stab/leaf") {
		t.Error("study table missing header")
	}
}

func TestRunUpdateAndOpsStudies(t *testing.T) {
	up, err := xrtree.RunUpdateCostStudy(1, []int{500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 2 || up[0].InsertAccesses <= 0 || up[0].DeleteAccesses <= 0 {
		t.Errorf("update study rows: %+v", up)
	}
	var buf bytes.Buffer
	if err := xrtree.FormatUpdateStudy(&buf, up); err != nil {
		t.Fatal(err)
	}

	ops, err := xrtree.RunBasicOpsStudy(1, []int{500, 2000}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].AncAvgPages <= 0 {
		t.Errorf("ops study rows: %+v", ops)
	}
	if err := xrtree.FormatOpsStudy(&buf, ops); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[xrtree.Algorithm]string{
		xrtree.AlgNoIndex: "no-index",
		xrtree.AlgMPMGJN:  "MPMGJN",
		xrtree.AlgBPlus:   "B+",
		xrtree.AlgBPlusSP: "B+sp",
		xrtree.AlgXRStack: "XR-stack",
	}
	for alg, want := range cases {
		if alg.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(alg), alg.String(), want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := xrtree.RunAncestorSweep(xrtree.ExperimentConfig{
		Seed: 1, Scale: 0.03, PageSize: 1024, Sweep: []float64{0.55},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := xrtree.WriteCSV(&buf, res[0], "join_a"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + one row per algorithm.
	if len(lines) != 1+len(res[0].Points[0].Results) {
		t.Fatalf("CSV has %d lines: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "corpus,join_a,algorithm,") {
		t.Errorf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 9 {
			t.Errorf("row has wrong arity: %q", line)
		}
	}
}
