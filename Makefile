# Convenience targets for the XR-tree reproduction.

GO ?= go

.PHONY: all build test race bench examples experiments verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure; see bench_test.go.
bench:
	$(GO) test -bench=. -benchmem -run XXX .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/department
	$(GO) run ./examples/conference
	$(GO) run ./examples/maintenance
	$(GO) run ./examples/persistence

# Regenerate every table and figure of the paper (EXPERIMENTS.md records
# the reference output).
experiments:
	$(GO) run ./cmd/xrbench -exp all -scale 1.0

clean:
	$(GO) clean ./...
