# Convenience targets for the XR-tree reproduction.

GO ?= go

.PHONY: all build test race bench bench-json bench-smoke microbench serve-smoke cluster-smoke examples experiments verify clean fmt-check lint vet vet-analyzers vet-run test-debug fuzz-smoke crash-smoke ci

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure; see bench_test.go.
bench:
	$(GO) test -bench=. -benchmem -run XXX .

# Machine-readable benchmark report (schema xrtree-bench/1): all three
# selectivity sweeps with phase breakdowns, event histograms, and skipping
# effectiveness. BENCH_baseline.json in the repo is one committed run.
bench-json:
	$(GO) run ./cmd/xrbench -json BENCH_xrbench.json

# Bench-regression gate: a reduced-scale report diffed against the
# committed baseline by shape (schema, sweeps, phase breakdowns, parallel,
# serving, storage, and mixed rows) — never by timing, so it is safe on
# loaded CI machines, with one exception: the mixed read/write section
# gates on B-link reader throughput beating the coarse-latch emulation,
# a relative comparison within one run that holds on any hardware. Runs
# once under each buffer-replacement policy so both the LRU default and
# the 2Q+readahead configuration stay green, plus one human-readable
# mixed run covering the 1-writer and 4-writer points.
bench-smoke:
	$(GO) run ./cmd/xrbench -exp mixed -writers 4 -readers 4
	$(GO) run ./cmd/xrbench -json /tmp/xrtree_bench_smoke.json -scale 0.2
	$(GO) run ./cmd/xrcheckbench -baseline BENCH_baseline.json /tmp/xrtree_bench_smoke.json
	$(GO) run ./cmd/xrbench -json /tmp/xrtree_bench_smoke_2q.json -scale 0.2 -pool-policy 2q -prefetch
	$(GO) run ./cmd/xrcheckbench -baseline BENCH_baseline.json /tmp/xrtree_bench_smoke_2q.json

# Storage-stack microbenchmarks (allocation counts are the regression
# signal, hence -benchmem; -count=5 for a spread benchstat can consume):
# the pool pin/unpin fast path, a full leaf-chain scan, and an XR-stack
# join end to end.
microbench:
	$(GO) test -run XXX -bench 'BenchmarkPoolFetch|BenchmarkLeafChainScan|BenchmarkXRStackJoin' \
		-benchmem -count=5 ./internal/bufferpool ./internal/elemlist ./internal/join

# End-to-end smoke of the serving subsystem: boot xrserve on a temp
# store, saturate it with xrblast (bounded admission, zero leaked pins),
# fire short-deadline requests, then SIGTERM and assert a clean drain.
serve-smoke:
	GO="$(GO)" sh ./scripts/serve_smoke.sh

# End-to-end smoke of the distributed-serving subsystem: three DocId
# shards plus a router, scatter-gather correctness, hedge visibility,
# refusal of overlapping ownership claims, SIGKILL of one shard mid-run
# (degraded responses with shards_failed, healthy results intact), and a
# clean router drain.
cluster-smoke:
	GO="$(GO)" sh ./scripts/cluster_smoke.sh

# Project-specific invariant checkers (cmd/xrvet). vet-analyzers runs
# the analyzers' own suites (per-analyzer `// want` testdata plus the
# harness meta-tests); vet-run applies all eight checkers over the whole
# module — repeat runs hit the per-(package, analyzer) cache under
# ~/.cache/xrvet — and stock `go vet` (copylocks and friends) alongside.
vet-analyzers:
	$(GO) test ./internal/analysis/...

vet-run:
	$(GO) run ./cmd/xrvet ./...
	$(GO) vet ./...

vet: vet-analyzers vet-run

# The whole test suite with the xrtreedebug runtime assertions compiled
# in: resting-page checksums, the net-pin ledger, per-operation pin
# balance, and sampled whole-tree invariant checks after every mutation.
test-debug:
	$(GO) test -tags xrtreedebug ./...

# Short coverage-guided runs of both fuzz targets (parser robustness and
# path-expression round-tripping); CI runs the same budget.
fuzz-smoke:
	$(GO) test -run FuzzParseDocument -fuzz FuzzParseDocument -fuzztime 10s ./internal/xmldoc
	$(GO) test -run FuzzPathExpr -fuzz FuzzPathExpr -fuzztime 10s ./internal/pathexpr
	$(GO) test -run FuzzWALReplay -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal

# Crash-recovery gate: 30 randomized kill points against a WAL-enabled
# store (the crossing log write torn partway), each reopened through redo
# and re-verified against the Definition 4 oracle and the acknowledged
# commit set, plus the concurrent-writer group-commit phase (fsyncs <
# commits). CI runs the same budget in the `crash` job.
crash-smoke:
	$(GO) run ./cmd/xrcrash -n 30

# gofmt as a check: fail when any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Prefer golangci-lint (config in .golangci.yml), fall back to staticcheck,
# then to go vet when neither tool is installed.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	elif command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "golangci-lint/staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Everything the CI pipeline runs, in the same order, runnable locally.
ci: build fmt-check lint vet test race test-debug bench-smoke serve-smoke cluster-smoke crash-smoke
	@echo "ci: all checks passed"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/department
	$(GO) run ./examples/conference
	$(GO) run ./examples/maintenance
	$(GO) run ./examples/persistence

# Regenerate every table and figure of the paper (EXPERIMENTS.md records
# the reference output).
experiments:
	$(GO) run ./cmd/xrbench -exp all -scale 1.0

clean:
	$(GO) clean ./...
