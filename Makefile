# Convenience targets for the XR-tree reproduction.

GO ?= go

.PHONY: all build test race bench bench-json examples experiments verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure; see bench_test.go.
bench:
	$(GO) test -bench=. -benchmem -run XXX .

# Machine-readable benchmark report (schema xrtree-bench/1): all three
# selectivity sweeps with phase breakdowns, event histograms, and skipping
# effectiveness. BENCH_baseline.json in the repo is one committed run.
bench-json:
	$(GO) run ./cmd/xrbench -json BENCH_xrbench.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/department
	$(GO) run ./examples/conference
	$(GO) run ./examples/maintenance
	$(GO) run ./examples/persistence

# Regenerate every table and figure of the paper (EXPERIMENTS.md records
# the reference output).
experiments:
	$(GO) run ./cmd/xrbench -exp all -scale 1.0

clean:
	$(GO) clean ./...
