// Conference: the paper's paper-vs-author scenario (§6.1, Figure 6(b)) —
// a flat corpus where the ancestor set does not nest. This is the case
// where the B+ algorithm degenerates to the sequential scan (Figure 7(b))
// while XR-stack still skips, and it also demonstrates parent-child joins
// (§5.3): authors are direct children of papers, so paper/author and
// paper//author coincide here, while conference//author and
// conference/author do not.
package main

import (
	"fmt"
	"log"

	"xrtree"
	"xrtree/internal/datagen"
	"xrtree/internal/workload"
)

func main() {
	log.SetFlags(0)

	corpus, err := datagen.Conference(datagen.ConfConfig{
		Seed: 11, DocID: 1, Conferences: 30, Papers: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	papers := corpus.ElementsByTag("paper")
	authors := corpus.ElementsByTag("author")
	confs := corpus.ElementsByTag("conference")
	fmt.Printf("Conference corpus: %d conferences, %d papers, %d authors\n",
		len(confs), len(papers), len(authors))

	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	paperSet, err := store.IndexElements(papers, xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	authorSet, err := store.IndexElements(authors, xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	confSet, err := store.IndexElements(confs, xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, alg xrtree.Algorithm, mode xrtree.Mode, a, d *xrtree.ElementSet) {
		if err := store.DropCache(); err != nil {
			log.Fatal(err)
		}
		var st xrtree.Stats
		store.AttachStats(&st)
		if err := xrtree.Join(alg, mode, a, d, nil, &st); err != nil {
			log.Fatal(err)
		}
		store.AttachStats(nil)
		fmt.Printf("  %-22s %-9s pairs=%-6d scanned=%-6d misses=%d\n",
			name, alg, st.OutputPairs, st.ElementsScanned, st.BufferMisses)
	}

	fmt.Println("\nancestor-descendant vs parent-child:")
	run("paper//author", xrtree.AlgXRStack, xrtree.AncestorDescendant, paperSet, authorSet)
	run("paper/author", xrtree.AlgXRStack, xrtree.ParentChild, paperSet, authorSet)
	run("conference//author", xrtree.AlgXRStack, xrtree.AncestorDescendant, confSet, authorSet)
	run("conference/author", xrtree.AlgXRStack, xrtree.ParentChild, confSet, authorSet)

	// Figure 7(b): on flat ancestors, B+ cannot skip — it scans like the
	// no-index merge — while XR-stack jumps straight to each descendant's
	// ancestors. Thin the descendant list so only 5% of papers join.
	sets := workload.VaryAncestorSelectivity(papers, authors, 0.05, 0.99, 11)
	fmt.Printf("\nflat-ancestor skipping at 5%% selectivity (%s):\n", workload.Measure(sets))
	wstore, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer wstore.Close()
	a5, err := wstore.IndexElements(sets.A, xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	d5, err := wstore.IndexElements(sets.D, xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
		if err := wstore.DropCache(); err != nil {
			log.Fatal(err)
		}
		var st xrtree.Stats
		wstore.AttachStats(&st)
		if err := xrtree.Join(alg, xrtree.AncestorDescendant, a5, d5, nil, &st); err != nil {
			log.Fatal(err)
		}
		wstore.AttachStats(nil)
		fmt.Printf("  %-9s pairs=%-6d scanned=%-6d misses=%d\n",
			alg, st.OutputPairs, st.ElementsScanned, st.BufferMisses)
	}
}
