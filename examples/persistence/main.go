// Persistence: build a disk-backed store with catalogued indexes, close
// it, reopen it cold, and serve structural joins and path queries from the
// persisted pages — the full adopt-me lifecycle of the library.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xrtree"
	"xrtree/internal/datagen"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "xrtree-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.db")

	// Phase 1: build and catalog.
	func() {
		store, err := xrtree.CreateStore(path, xrtree.StoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		doc, err := datagen.Department(datagen.DeptConfig{
			Seed: 42, DocID: 1, Departments: 15, Employees: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, tag := range []string{"employee", "name", "department"} {
			set, err := store.IndexElements(doc.ElementsByTag(tag), xrtree.IndexOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if err := store.SaveSet(tag, set); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("indexed and catalogued %-12s %6d elements\n", tag, set.Len())
		}
	}()
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store file closed: %d KiB on disk\n\n", info.Size()/1024)

	// Phase 2: reopen cold and query.
	store, err := xrtree.OpenStore(path, xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	names, err := store.SetNames()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog after reopen: %v\n", names)

	emps, err := store.OpenSet("employee")
	if err != nil {
		log.Fatal(err)
	}
	nameSet, err := store.OpenSet("name")
	if err != nil {
		log.Fatal(err)
	}
	var st xrtree.Stats
	store.AttachStats(&st)
	if err := xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, emps, nameSet, nil, &st); err != nil {
		log.Fatal(err)
	}
	store.AttachStats(nil)
	fmt.Printf("employee//name from cold pages: %d pairs, %d scanned, %d page misses\n",
		st.OutputPairs, st.ElementsScanned, st.BufferMisses)

	// The reopened XR-tree still upholds every invariant and keeps serving
	// updates.
	xr, err := emps.XRTree()
	if err != nil {
		log.Fatal(err)
	}
	if err := xr.CheckInvariants(); err != nil {
		log.Fatalf("invariants after reopen: %v", err)
	}
	first := emps.Elements()[0]
	if err := xr.Delete(first.Start); err != nil {
		log.Fatal(err)
	}
	if err := xr.Insert(first); err != nil {
		log.Fatal(err)
	}
	if err := xr.CheckInvariants(); err != nil {
		log.Fatalf("invariants after update: %v", err)
	}
	fmt.Println("reopened XR-tree validated and updated in place")
}
