// Department: the paper's employee-vs-name scenario (§6.1, Figure 6(a)) —
// a highly nested corpus where employees recursively contain employees.
// The example generates the corpus, runs the ancestor-selectivity workload
// of Table 2 at a few points, and shows how XR-stack's ancestor skipping
// pulls ahead of B+ and the sequential merge as selectivity drops.
package main

import (
	"fmt"
	"log"

	"xrtree"
	"xrtree/internal/datagen"
	"xrtree/internal/workload"
)

func main() {
	log.SetFlags(0)

	corpus, err := datagen.Department(datagen.DeptConfig{
		Seed: 7, DocID: 1, Departments: 20, Employees: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	employees := corpus.ElementsByTag("employee")
	names := corpus.ElementsByTag("name")
	fmt.Printf("Department corpus: %d employees (ancestors), %d names (descendants)\n",
		len(employees), len(names))

	for _, pct := range []float64{0.90, 0.25, 0.05} {
		sets := workload.VaryAncestorSelectivity(employees, names, pct, 0.99, 7)
		achieved := workload.Measure(sets)
		fmt.Printf("\nancestor selectivity %.0f%% (achieved: %s)\n", pct*100, achieved)

		store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		a, err := store.IndexElements(sets.A, xrtree.IndexOptions{})
		if err != nil {
			log.Fatal(err)
		}
		d, err := store.IndexElements(sets.D, xrtree.IndexOptions{})
		if err != nil {
			log.Fatal(err)
		}
		for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
			if err := store.DropCache(); err != nil {
				log.Fatal(err)
			}
			var st xrtree.Stats
			store.AttachStats(&st)
			if err := xrtree.Join(alg, xrtree.AncestorDescendant, a, d, nil, &st); err != nil {
				log.Fatal(err)
			}
			store.AttachStats(nil)
			fmt.Printf("  %-9s pairs=%-7d scanned=%-7d page-misses=%d\n",
				alg, st.OutputPairs, st.ElementsScanned, st.BufferMisses)
		}
		store.Close()
	}

	// The §3.3 stab-list footprint of the employee index.
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	set, err := store.IndexElements(employees, xrtree.IndexOptions{SkipList: true, SkipBTree: true})
	if err != nil {
		log.Fatal(err)
	}
	entries, pages, err := set.StabStats()
	if err != nil {
		log.Fatal(err)
	}
	xr, err := set.XRTree()
	if err != nil {
		log.Fatal(err)
	}
	nesting, err := xr.MaxNesting()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXR-tree over employees: %d of %d elements in stab lists across %d pages (max nesting %d)\n",
		entries, set.Len(), pages, nesting)
}
