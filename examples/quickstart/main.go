// Quickstart: parse an XML document, index two element sets, and run a
// structural join with every algorithm — the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"xrtree"
)

// A miniature of the paper's Figure 1 document: a department with nested
// employees, some of which have name children.
const doc = `
<dept>
  <emp><name>alice</name>
    <emp><name>bob</name>
      <emp><name>carol</name></emp>
    </emp>
  </emp>
  <emp><name>dave</name></emp>
  <office/>
</dept>`

func main() {
	log.SetFlags(0)

	// 1. Region-encode the document (§2.1 numbering scheme).
	parsed, err := xrtree.ParseXML(strings.NewReader(doc), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d elements; tags: %v\n", parsed.NumElements(), parsed.Tags())

	// 2. Build the access paths (paged list, B+-tree, XR-tree) over the
	// "emp" and "name" element sets inside one store.
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	emps, err := store.IndexElements(parsed.ElementsByTag("emp"), xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	names, err := store.IndexElements(parsed.ElementsByTag("name"), xrtree.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate emp//name with each structural-join algorithm. All four
	// produce the same pairs; they differ in how much work they do.
	for _, alg := range []xrtree.Algorithm{
		xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgXRStack,
	} {
		var st xrtree.Stats
		n := 0
		err := xrtree.Join(alg, xrtree.AncestorDescendant, emps, names,
			func(a, d xrtree.Element) { n++ }, &st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s emp//name: %d pairs, %d elements scanned\n", alg, n, st.ElementsScanned)
	}

	// 4. The XR-tree's basic operations (§5.1) are available directly.
	deepName := parsed.ElementsByTag("name")[2] // carol's name
	anc, err := emps.FindAncestors(deepName.Start, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ancestor emps of the deepest name: %v\n", anc)
}
