// Maintenance: the XR-tree is a dynamic index (§4) — this example inserts
// and deletes elements while continuously answering FindAncestors queries
// and validating every structural invariant of Definition 4, demonstrating
// that stab lists stay correct through node splits, merges, redistributions
// and the re-homing of stabbed elements.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"xrtree"
	"xrtree/internal/datagen"
)

func main() {
	log.SetFlags(0)

	corpus, err := datagen.Nested(datagen.NestedConfig{
		Seed: 3, DocID: 1, Elements: 4000, MaxDepth: 12, DeepBias: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	els := corpus.ElementsByTag("item")

	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024, BufferPages: 128})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Build incrementally through the §4.1 insertion algorithm.
	set, err := store.IndexElements(els[:1], xrtree.IndexOptions{SkipList: true, SkipBTree: true})
	if err != nil {
		log.Fatal(err)
	}
	xr, err := set.XRTree()
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range els[1:] {
		if err := xr.Insert(e); err != nil {
			log.Fatal(err)
		}
	}
	entries, pages := xr.StabStats()
	fmt.Printf("built by insertion: %d elements, height %d, %d stab entries on %d pages\n",
		xr.Len(), xr.Height(), entries, pages)
	if err := xr.CheckInvariants(); err != nil {
		log.Fatalf("invariants after build: %v", err)
	}
	fmt.Println("Definition 4 invariants hold after insertion build")

	// Churn: delete and re-insert random slices while querying.
	rng := rand.New(rand.NewSource(99))
	alive := make(map[int]bool, len(els))
	for i := range els {
		alive[i] = true
	}
	queries := 0
	for round := 0; round < 5; round++ {
		for k := 0; k < 400; k++ {
			i := rng.Intn(len(els))
			if alive[i] {
				if err := xr.Delete(els[i].Start); err != nil {
					log.Fatalf("delete %v: %v", els[i], err)
				}
				alive[i] = false
			} else {
				if err := xr.Insert(els[i]); err != nil {
					log.Fatalf("insert %v: %v", els[i], err)
				}
				alive[i] = true
			}
		}
		// Validate a query against a brute-force answer.
		probe := els[rng.Intn(len(els))].Start + 1
		got, err := xr.FindAncestors(probe, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		want := 0
		for i, e := range els {
			if alive[i] && e.Start < probe && probe < e.End {
				want++
			}
		}
		if len(got) != want {
			log.Fatalf("round %d: FindAncestors(%d) = %d results, want %d", round, probe, len(got), want)
		}
		queries++
		if err := xr.CheckInvariants(); err != nil {
			log.Fatalf("invariants after round %d: %v", round, err)
		}
		entries, pages = xr.StabStats()
		fmt.Printf("round %d: %d live elements, %d stab entries on %d pages — invariants hold\n",
			round+1, xr.Len(), entries, pages)
	}
	fmt.Printf("done: %d churn rounds, %d validated queries\n", 5, queries)
}
