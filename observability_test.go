package xrtree_test

// Tests of the observability layer's end-to-end guarantees: stats
// propagation from every storage layer into one counter set, per-phase
// breakdowns for each algorithm, and the zero-overhead nil-tracer fast
// path.

import (
	"strings"
	"testing"

	"xrtree"
	"xrtree/internal/datagen"
	"xrtree/internal/workload"
)

// obsWorkload indexes a small deterministic corpus in a fresh store and
// returns both sets.
func obsWorkload(t testing.TB) (*xrtree.Store, *xrtree.ElementSet, *xrtree.ElementSet) {
	t.Helper()
	corpora, err := datagen.PaperCorpora(7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	corpus := corpora[0]
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	a, err := store.IndexElements(corpus.Doc.ElementsByTag(corpus.AncestorTag), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.IndexElements(corpus.Doc.ElementsByTag(corpus.DescendantTag), xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return store, a, d
}

// TestStatsPropagation audits the invariant behind every number the
// harness reports: the counters a join accumulates equal the deltas of the
// pool's and file's own always-on counters over the run.
func TestStatsPropagation(t *testing.T) {
	store, a, d := obsWorkload(t)
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgBPlus, xrtree.AlgXRStack} {
		if err := store.DropCache(); err != nil {
			t.Fatal(err)
		}
		poolBefore := store.PoolStats()
		fileBefore := store.FileStats()
		var st xrtree.Stats
		store.AttachStats(&st)
		err := xrtree.Join(alg, xrtree.AncestorDescendant, a, d, nil, &st)
		store.AttachStats(nil)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		poolAfter := store.PoolStats()
		fileAfter := store.FileStats()

		if got, want := st.BufferHits, poolAfter.BufferHits-poolBefore.BufferHits; got != want {
			t.Errorf("%s: join saw %d hits, pool delta %d", alg, got, want)
		}
		if got, want := st.BufferMisses, poolAfter.BufferMisses-poolBefore.BufferMisses; got != want {
			t.Errorf("%s: join saw %d misses, pool delta %d", alg, got, want)
		}
		if got, want := st.PageEvictions, poolAfter.PageEvictions-poolBefore.PageEvictions; got != want {
			t.Errorf("%s: join saw %d evictions, pool delta %d", alg, got, want)
		}
		// A read-only join faults every miss in from the file: the pool's
		// miss delta must equal the file's physical-read delta.
		if got, want := st.BufferMisses, fileAfter.PhysicalReads-fileBefore.PhysicalReads; got != want {
			t.Errorf("%s: %d misses but %d physical reads", alg, got, want)
		}
		if st.ElementsScanned == 0 || st.OutputPairs == 0 {
			t.Errorf("%s: empty-looking run: %+v", alg, st)
		}
	}
}

// TestObservedJoinPhases checks the traced per-phase breakdown: output
// events sum to the pair count for every algorithm, and the XR-stack run
// reports ancestor probes, skips on both sides, and a high skipping
// effectiveness on this low-selectivity-free workload.
func TestObservedJoinPhases(t *testing.T) {
	_, a, d := obsWorkload(t)
	var pairsRef int64
	for _, alg := range []xrtree.Algorithm{xrtree.AlgNoIndex, xrtree.AlgMPMGJN, xrtree.AlgBPlus, xrtree.AlgBPlusSP, xrtree.AlgXRStack} {
		rep, err := xrtree.ObservedJoin(alg, xrtree.AncestorDescendant, a, d, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if pairsRef == 0 {
			pairsRef = rep.Stats.OutputPairs
		}
		if rep.Stats.OutputPairs != pairsRef {
			t.Errorf("%s: %d pairs, want %d", alg, rep.Stats.OutputPairs, pairsRef)
		}
		if rep.Phases.OutputPairs != rep.Stats.OutputPairs {
			t.Errorf("%s: traced output %d != counter %d",
				alg, rep.Phases.OutputPairs, rep.Stats.OutputPairs)
		}
		if rep.Phases.OutputBatches == 0 {
			t.Errorf("%s: no output batches traced", alg)
		}
		if rep.SkipEffectiveness < 0 || rep.SkipEffectiveness > 1 {
			t.Errorf("%s: skip effectiveness %v out of range", alg, rep.SkipEffectiveness)
		}

		switch alg {
		case xrtree.AlgNoIndex, xrtree.AlgMPMGJN:
			if rep.Phases.AncSkips != 0 || rep.Phases.DescSkips != 0 {
				t.Errorf("%s: scan-based join reports skips: %+v", alg, rep.Phases)
			}
		case xrtree.AlgXRStack:
			if rep.Phases.AncProbes == 0 {
				t.Error("XR-stack: no ancestor probes traced")
			}
			if rep.Phases.IndexDescends == 0 {
				t.Error("XR-stack: no index descents traced")
			}
			if rep.Phases.AncSkips == 0 {
				t.Error("XR-stack: no ancestor skips traced")
			}
			if rep.Events.Events["StabScan"].Count == 0 && rep.Phases.StabScans != 0 {
				t.Error("XR-stack: snapshot and phases disagree on stab scans")
			}
		}

		txt := &strings.Builder{}
		if err := rep.Events.WriteText(txt); err != nil {
			t.Fatalf("%s: WriteText: %v", alg, err)
		}
		if !strings.Contains(txt.String(), "Output") {
			t.Errorf("%s: text export missing Output: %q", alg, txt.String())
		}
	}
}

// TestXRStackSkipsMore checks the Table 2 story through the new metric: on
// an ancestor-selectivity point where few ancestors join, XR-stack's
// skipping effectiveness must beat the no-index scan's (which is ~0 by
// construction).
func TestXRStackSkipsMore(t *testing.T) {
	corpora, err := datagen.PaperCorpora(7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	corpus := corpora[0]
	// 5% of ancestors join, 99% of descendants do — the leftmost Table 2
	// column, where ancestor skipping matters most.
	sets := workload.VaryAncestorSelectivity(
		corpus.Doc.ElementsByTag(corpus.AncestorTag),
		corpus.Doc.ElementsByTag(corpus.DescendantTag), 0.05, 0.99, 7)
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	a, err := store.IndexElements(sets.A, xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.IndexElements(sets.D, xrtree.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noRep, err := xrtree.ObservedJoin(xrtree.AlgNoIndex, xrtree.AncestorDescendant, a, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	xr, err := xrtree.ObservedJoin(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if noRep.SkipEffectiveness > 0.05 {
		t.Errorf("no-index skip effectiveness %v, want ~0", noRep.SkipEffectiveness)
	}
	if xr.SkipEffectiveness <= noRep.SkipEffectiveness+0.1 {
		t.Errorf("XR-stack skip effectiveness %v not clearly above no-index %v",
			xr.SkipEffectiveness, noRep.SkipEffectiveness)
	}
}

// TestNilTracerJoinAllocs locks in the zero-overhead fast path: a join
// with plain counters and no tracer allocates no more than it did before
// tracing existed (the join's own cursor/stack allocations only).
func TestNilTracerJoinAllocs(t *testing.T) {
	_, a, d := obsWorkload(t)
	var st xrtree.Stats
	base := testing.AllocsPerRun(3, func() {
		st.Reset()
		if err := xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil, &st); err != nil {
			t.Fatal(err)
		}
	})
	var stT xrtree.Stats
	stT.Tracer = xrtree.NewCollector()
	traced := testing.AllocsPerRun(3, func() {
		stT.Reset()
		if err := xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil, &stT); err != nil {
			t.Fatal(err)
		}
	})
	// The traced run must not allocate per event — the collector is
	// allocation-free after construction, so the two runs should allocate
	// alike (small slack for map/timer noise).
	if traced > base+8 {
		t.Errorf("traced join allocates %.0f vs %.0f untraced — per-event allocation?", traced, base)
	}
}

// BenchmarkJoinTracerOverhead measures the nil-tracer fast path against a
// live Collector; run with -bench to compare.
func BenchmarkJoinTracerOverhead(b *testing.B) {
	store, a, d := obsWorkload(b)
	run := func(b *testing.B, st *xrtree.Stats) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := xrtree.Join(xrtree.AlgXRStack, xrtree.AncestorDescendant, a, d, nil, st); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil-tracer", func(b *testing.B) {
		var st xrtree.Stats
		run(b, &st)
	})
	b.Run("collector", func(b *testing.B) {
		st := xrtree.Stats{Tracer: xrtree.NewCollector()}
		store.AttachStats(&st)
		defer store.AttachStats(nil)
		run(b, &st)
	})
}
