package xrtree_test

import (
	"strings"
	"testing"

	"xrtree"
	"xrtree/internal/datagen"
	"xrtree/internal/pathexpr"
)

const queryXML = `
<departments>
  <department><name>eng</name>
    <employee><name>alice</name>
      <employee><name>bob</name><email/></employee>
    </employee>
    <employee><name>carol</name></employee>
  </department>
  <department><name>ops</name>
    <employee><name>dave</name></employee>
  </department>
</departments>`

func indexedDoc(t *testing.T, xml string) *xrtree.IndexedDocument {
	t.Helper()
	doc, err := xrtree.ParseXML(strings.NewReader(xml), 1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store.IndexDocument(doc)
}

func TestQueryPathExpressions(t *testing.T) {
	idx := indexedDoc(t, queryXML)
	cases := []struct {
		expr string
		want int
	}{
		{"employee//name", 4},         // names under any employee
		{"employee/name", 4},          // all four are direct children
		{"department/name", 2},        // department names only
		{"department//name", 6},       // all names below departments
		{"employee//employee", 1},     // only bob's employee is nested
		{"employee/employee/name", 1}, // bob's name
		{"departments//employee/email", 1},
		{"department/employee/email", 0}, // email is one level deeper
		{"nosuch//name", 0},
		{"employee//nosuch", 0},
	}
	for _, tc := range cases {
		var st xrtree.Stats
		got, err := idx.Query(tc.expr, &st)
		if err != nil {
			t.Fatalf("Query(%q): %v", tc.expr, err)
		}
		if len(got) != tc.want {
			t.Errorf("Query(%q) = %d results, want %d (%v)", tc.expr, len(got), tc.want, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Start >= got[i].Start {
				t.Errorf("Query(%q): results not sorted", tc.expr)
			}
		}
	}
}

func TestQueryNodesResolvesText(t *testing.T) {
	doc, err := xrtree.ParseXML(strings.NewReader(queryXML), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = doc
	// Re-parse keeping text so nodes carry names.
	idx := indexedDoc(t, queryXML)
	nodes, err := idx.QueryNodes("employee/employee/name", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Tag != "name" {
		t.Fatalf("QueryNodes = %v", nodes)
	}
	if nodes[0].Parent == nil || nodes[0].Parent.Tag != "employee" {
		t.Error("node parent link broken")
	}
}

func TestQueryParseErrors(t *testing.T) {
	idx := indexedDoc(t, queryXML)
	for _, expr := range []string{"", "a//", "a b", "///"} {
		if _, err := idx.Query(expr, nil); err == nil {
			t.Errorf("Query(%q) succeeded, want parse error", expr)
		}
	}
}

func TestQueryMatchesReferenceOnCorpus(t *testing.T) {
	corpus, err := datagen.Department(datagen.DeptConfig{Seed: 9, DocID: 1, Departments: 6, Employees: 8})
	if err != nil {
		t.Fatal(err)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	idx := store.IndexDocument(corpus)
	for _, expr := range []string{
		"department//name",
		"employee/employee//name",
		"departments/department/employee",
		"employee//email",
	} {
		got, err := idx.Query(expr, nil)
		if err != nil {
			t.Fatalf("Query(%q): %v", expr, err)
		}
		p, err := pathexpr.Parse(expr)
		if err != nil {
			t.Fatal(err)
		}
		want := pathexpr.Reference(p, corpus)
		if len(got) != len(want) {
			t.Fatalf("Query(%q) = %d results, reference %d", expr, len(got), len(want))
		}
		for i := range want {
			if got[i].Start != want[i].Start {
				t.Fatalf("Query(%q) result %d = %v, want %v", expr, i, got[i], want[i])
			}
		}
	}
}

func TestQueryAttributeAndTextSteps(t *testing.T) {
	const xml = `<dept><emp id="7"><name>alice</name></emp><emp id="8"/><office id="x"/></dept>`
	doc, err := xrtree.ParseXMLWithOptions(strings.NewReader(xml), xrtree.ParseOptions{
		DocID: 1, IncludeAttributes: true, IncludeText: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	idx := store.IndexDocument(doc)

	ids, err := idx.Query("emp/@id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("emp/@id = %d results, want 2 (office's id excluded)", len(ids))
	}
	nodes, err := idx.QueryNodes("emp//name/#text", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Text != "alice" {
		t.Fatalf("emp//name/#text = %v", nodes)
	}
}

func TestIndexedDocumentCachesSets(t *testing.T) {
	idx := indexedDoc(t, queryXML)
	s1, err := idx.Set("employee")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := idx.Set("employee")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("Set rebuilt an already-indexed tag")
	}
	missing, err := idx.Set("nosuch")
	if err != nil || missing != nil {
		t.Errorf("Set(nosuch) = %v, %v", missing, err)
	}
}
