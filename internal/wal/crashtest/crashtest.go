package crashtest

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"xrtree"
	"xrtree/internal/btree"
	"xrtree/internal/core"
	"xrtree/internal/xmldoc"
)

// Config parameterizes one crash run.
type Config struct {
	// Seed drives the workload and the document shape deterministically.
	Seed int64
	// Ops is the number of insert/delete transactions attempted.
	Ops int
	// KillAfter is the log-byte budget before the injected crash; ≤ 0
	// runs the workload to completion and closes cleanly instead (the
	// probe run, which also measures the log size for picking kill
	// points).
	KillAfter int64
	// PageSize, BufferPages size the store; small defaults keep splits,
	// merges, segment rotation and checkpoints all hot within a short
	// workload.
	PageSize    int
	BufferPages int
}

func (cfg *Config) defaults() {
	if cfg.Ops <= 0 {
		cfg.Ops = 200
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 512
	}
	if cfg.BufferPages <= 0 {
		cfg.BufferPages = 64
	}
}

// Result reports what one run did and what recovery found.
type Result struct {
	Crashed   bool                  // the injected crash fired
	Committed int                   // transactions acknowledged before the end
	LogBytes  int64                 // record bytes the log accumulated
	Report    xrtree.RecoveryReport // what the reopening redo pass found
}

const setName = "crashset"

// op is one mutation of one tree.
type op struct {
	insert bool
	e      xmldoc.Element
}

// model tracks the committed contents of one tree plus the single
// operation whose acknowledgment the crash swallowed.
type model struct {
	present map[uint32]xmldoc.Element
	pending *op // in flight at the crash: atomically applied or not
}

func newModel(es []xmldoc.Element) *model {
	m := &model{present: make(map[uint32]xmldoc.Element, len(es))}
	for _, e := range es {
		m.present[e.Start] = e
	}
	return m
}

func (m *model) apply(o op) {
	if o.insert {
		m.present[o.e.Start] = o.e
	} else {
		delete(m.present, o.e.Start)
	}
}

// verify compares a reopened tree's scan against the model: the committed
// state must match exactly, except that the pending operation may or may
// not have applied (commit is atomic, so nothing in between).
func (m *model) verify(kind string, got []xmldoc.Element) error {
	if m.matches(got) {
		return nil
	}
	if m.pending != nil {
		m.apply(*m.pending)
		ok := m.matches(got)
		m.apply(op{insert: !m.pending.insert, e: m.pending.e}) // undo
		if ok {
			return nil
		}
	}
	return fmt.Errorf("crashtest: %s diverged from committed state: %d elements on disk, %d committed (pending: %+v)",
		kind, len(got), len(m.present), m.pending)
}

func (m *model) matches(got []xmldoc.Element) bool {
	if len(got) != len(m.present) {
		return false
	}
	for _, e := range got {
		w, ok := m.present[e.Start]
		if !ok || w != e {
			return false
		}
	}
	return true
}

// document generates a region-encoded document in preorder: every pair of
// regions is disjoint or properly nested, starts strictly increase, and
// levels are real tree depths — exactly what the indexes assume.
func document(rng *rand.Rand, n int) []xmldoc.Element {
	var out []xmldoc.Element
	var pos uint32 = 1
	var ref uint32
	var gen func(level uint16)
	gen = func(level uint16) {
		if len(out) >= n {
			return
		}
		e := xmldoc.Element{DocID: 1, Start: pos, Level: level, Ref: ref}
		idx := len(out)
		out = append(out, e)
		pos++
		ref++
		if level < 12 {
			for k := rng.Intn(4); k > 0 && len(out) < n; k-- {
				gen(level + 1)
			}
		}
		out[idx].End = pos
		pos++
	}
	for len(out) < n {
		gen(1)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Run executes one crash (or probe) run in dir: build a store, mutate it
// until the log dies (or the workload ends), reopen through recovery, and
// verify the committed state and every index invariant.
func Run(dir string, cfg Config) (Result, error) {
	cfg.defaults()
	var res Result
	rng := rand.New(rand.NewSource(cfg.Seed))
	universe := document(rng, 512)

	// Split the universe into the bulk-loaded base and insert candidates.
	var base, extra []xmldoc.Element
	for _, e := range universe {
		if rng.Intn(2) == 0 {
			base = append(base, e)
		} else {
			extra = append(extra, e)
		}
	}
	if len(base) == 0 {
		base, extra = extra[:1], extra[1:]
	}

	var cfs *FS
	opts := xrtree.StoreOptions{
		PageSize:           cfg.PageSize,
		BufferPages:        cfg.BufferPages,
		WAL:                true,
		WALSegmentBytes:    8 << 10,
		WALCheckpointBytes: 32 << 10,
	}
	if cfg.KillAfter > 0 {
		cfs = NewFS(cfg.KillAfter)
		opts.WALFS = cfs
	}
	path := filepath.Join(dir, "store.db")

	xrModel, btModel, err := workload(path, opts, cfg, rng, base, extra, cfs, &res)
	if err != nil {
		return res, err
	}
	return res, reverify(path, cfg, xrModel, btModel, &res)
}

// workload builds the store, runs the mutation stream until it finishes
// or the log dies, and abandons (or cleanly closes) the store. The
// returned models are nil when the crash hit before the initial save —
// nothing was acknowledged, so there is nothing to hold recovery to.
func workload(path string, opts xrtree.StoreOptions, cfg Config, rng *rand.Rand,
	base, extra []xmldoc.Element, cfs *FS, res *Result) (*model, *model, error) {

	crashed := func(err error) bool { return cfs != nil && cfs.Crashed() && err != nil }

	store, err := xrtree.CreateStore(path, opts)
	if err != nil {
		if crashed(err) {
			// The budget died inside the first segment header: the log
			// never started, nothing was acknowledged.
			res.Crashed = true
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("crashtest: create store: %w", err)
	}

	set, err := store.IndexElements(base, xrtree.IndexOptions{SkipList: true})
	if err == nil {
		err = store.SaveSet(setName, set)
	}
	if err != nil {
		store.Abandon()
		if crashed(err) {
			res.Crashed = true
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("crashtest: setup: %w", err)
	}

	xr, err := set.XRTree()
	if err != nil {
		store.Abandon()
		return nil, nil, err
	}
	bt, err := set.BTree()
	if err != nil {
		store.Abandon()
		return nil, nil, err
	}

	xrModel := newModel(base)
	btModel := newModel(base)

	// The mutation stream: each op is applied to both trees (two separate
	// transactions), with delete victims drawn from the committed state.
	inPool := append([]xmldoc.Element(nil), extra...)
	for i := 0; i < cfg.Ops; i++ {
		var o op
		if len(inPool) > 0 && (len(xrModel.present) < 8 || rng.Intn(2) == 0) {
			j := rng.Intn(len(inPool))
			o = op{insert: true, e: inPool[j]}
			inPool[j] = inPool[len(inPool)-1]
			inPool = inPool[:len(inPool)-1]
		} else {
			starts := make([]uint32, 0, len(xrModel.present))
			for s := range xrModel.present {
				starts = append(starts, s)
			}
			sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
			o = op{insert: false, e: xrModel.present[starts[rng.Intn(len(starts))]]}
		}

		for _, tree := range []struct {
			m  *model
			do func() error
		}{
			{xrModel, func() error {
				if o.insert {
					return xr.Insert(o.e)
				}
				return xr.Delete(o.e.Start)
			}},
			{btModel, func() error {
				if o.insert {
					return bt.Insert(o.e)
				}
				return bt.Delete(o.e.Start)
			}},
		} {
			if err := tree.do(); err != nil {
				store.Abandon()
				if crashed(err) {
					res.Crashed = true
					tree.m.pending = &o
					return xrModel, btModel, nil
				}
				return nil, nil, fmt.Errorf("crashtest: op %d: %w", i, err)
			}
			tree.m.apply(o)
			res.Committed++
		}
	}

	if st, ok := store.WALStats(); ok {
		res.LogBytes = st.Bytes
	}
	if cfs != nil {
		// Budget never hit: crash at the end instead of closing.
		res.Crashed = cfs.Crashed()
		store.Abandon()
		return xrModel, btModel, nil
	}
	if err := store.Close(); err != nil {
		return nil, nil, fmt.Errorf("crashtest: clean close: %w", err)
	}
	return xrModel, btModel, nil
}

// reverify reopens the store, lets recovery redo the log, and checks both
// trees against their models and the XR-tree against Definition 4. It
// then closes cleanly and reopens once more, verifying that the clean
// path replays nothing.
func reverify(path string, cfg Config, xrModel, btModel *model, res *Result) error {
	opts := xrtree.StoreOptions{PageSize: cfg.PageSize, BufferPages: cfg.BufferPages, WAL: true}
	store, err := xrtree.OpenStore(path, opts)
	if err != nil {
		return fmt.Errorf("crashtest: reopen: %w", err)
	}
	if rep := store.Recovery(); rep != nil {
		res.Report = *rep
	}
	if err := checkStore(store, xrModel, btModel); err != nil {
		store.Abandon()
		return err
	}
	if err := store.Close(); err != nil {
		return fmt.Errorf("crashtest: close after recovery: %w", err)
	}

	// Second open: the previous close was clean, so recovery must trust it.
	store, err = xrtree.OpenStore(path, opts)
	if err != nil {
		return fmt.Errorf("crashtest: second reopen: %w", err)
	}
	defer store.Close()
	if rep := store.Recovery(); rep == nil || rep.Replayed() {
		return fmt.Errorf("crashtest: clean shutdown not honored: report %+v", rep)
	}
	return checkStore(store, xrModel, btModel)
}

// checkStore verifies one opened store against the models. Nil models
// mean the crash predated the save: any consistent catalog state is
// acceptable, including no catalog entry at all.
func checkStore(store *xrtree.Store, xrModel, btModel *model) error {
	set, err := store.OpenSet(setName)
	if err != nil {
		if xrModel == nil && (errors.Is(err, xrtree.ErrUnknownSet) || errors.Is(err, xrtree.ErrNoCatalog)) {
			return nil
		}
		return fmt.Errorf("crashtest: open set: %w", err)
	}

	xr, err := set.XRTree()
	if err != nil {
		return err
	}
	if err := xr.CheckInvariants(); err != nil {
		return fmt.Errorf("crashtest: Definition 4 violated after recovery: %w", err)
	}
	if xrModel != nil {
		got, err := scanXR(xr)
		if err != nil {
			return err
		}
		if err := xrModel.verify("xr-tree", got); err != nil {
			return err
		}
	}

	bt, err := set.BTree()
	if err != nil {
		return err
	}
	if btModel != nil {
		got, err := scanBT(bt)
		if err != nil {
			return err
		}
		if err := btModel.verify("b+tree", got); err != nil {
			return err
		}
	}
	return nil
}

func scanXR(t *core.Tree) ([]xmldoc.Element, error) {
	it, err := t.Scan(nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []xmldoc.Element
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out, it.Err()
}

func scanBT(t *btree.Tree) ([]xmldoc.Element, error) {
	it, err := t.Scan(nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []xmldoc.Element
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out, it.Err()
}
