package crashtest

import (
	"fmt"
	"math/rand"
	"sync"

	"xrtree"
	"xrtree/internal/core"
	"xrtree/internal/xmldoc"
)

// RunGroupCommit drives concurrent writer goroutines, each committing
// inserts into its own tree of one shared WAL-enabled store, then drops
// the store without closing it and reopens through recovery, verifying
// that every acknowledged insert survived. It returns the log stats
// captured just before the drop: Fsyncs < Commits is the observable
// signature of group commit batching concurrent writers into shared
// fsyncs.
func RunGroupCommit(path string, writers, opsPerWriter int) (xrtree.WALStats, error) {
	if writers < 2 {
		writers = 2
	}
	if opsPerWriter <= 0 {
		opsPerWriter = 100
	}
	opts := xrtree.StoreOptions{PageSize: 1024, BufferPages: 256, WAL: true}
	store, err := xrtree.CreateStore(path, opts)
	if err != nil {
		return xrtree.WALStats{}, fmt.Errorf("crashtest: create store: %w", err)
	}

	// One element set per writer: trees have exclusive write latches, so
	// concurrency across the log needs concurrency across trees.
	rng := rand.New(rand.NewSource(42))
	worlds := make([][]xmldoc.Element, writers)
	trees := make([]*core.Tree, writers)
	for i := 0; i < writers; i++ {
		es := document(rng, opsPerWriter+1)
		for j := range es {
			es[j].DocID = uint32(i + 1)
		}
		worlds[i] = es
		set, err := store.IndexElements(es[:1], xrtree.IndexOptions{SkipList: true, SkipBTree: true})
		if err == nil {
			err = store.SaveSet(fmt.Sprintf("w%d", i), set)
		}
		if err != nil {
			store.Abandon()
			return xrtree.WALStats{}, fmt.Errorf("crashtest: writer %d setup: %w", i, err)
		}
		xr, err := set.XRTree()
		if err != nil {
			store.Abandon()
			return xrtree.WALStats{}, err
		}
		trees[i] = xr
	}

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, e := range worlds[i][1:] {
				if err := trees[i].Insert(e); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			store.Abandon()
			return xrtree.WALStats{}, fmt.Errorf("crashtest: writer %d: %w", i, err)
		}
	}

	stats, _ := store.WALStats()
	store.Abandon() // crash: every acknowledged commit must still survive

	re, err := xrtree.OpenStore(path, opts)
	if err != nil {
		return stats, fmt.Errorf("crashtest: reopen: %w", err)
	}
	defer re.Close()
	for i := 0; i < writers; i++ {
		set, err := re.OpenSet(fmt.Sprintf("w%d", i))
		if err != nil {
			return stats, fmt.Errorf("crashtest: writer %d set lost: %w", i, err)
		}
		xr, err := set.XRTree()
		if err != nil {
			return stats, err
		}
		if err := xr.CheckInvariants(); err != nil {
			return stats, fmt.Errorf("crashtest: writer %d: %w", i, err)
		}
		got, err := scanXR(xr)
		if err != nil {
			return stats, err
		}
		if m := newModel(worlds[i]); !m.matches(got) {
			return stats, fmt.Errorf("crashtest: writer %d lost committed inserts: %d on disk, %d acknowledged",
				i, len(got), len(worlds[i]))
		}
	}
	return stats, nil
}
