package crashtest

import (
	"math/rand"
	"testing"
)

// TestProbeRun exercises the no-crash path: full workload, clean close,
// reopen trusting the clean-shutdown record.
func TestProbeRun(t *testing.T) {
	res, err := Run(t.TempDir(), Config{Seed: 1, Ops: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("probe run reported a crash")
	}
	if res.LogBytes == 0 {
		t.Fatal("probe run wrote no log bytes")
	}
}

// TestStabPageRedo is the regression for the unlogged-stab-page bug: stab
// chain pages were fetched outside the mutation's transaction, so their
// after-images never reached the log and recovery reconstructed internal
// nodes whose directories disagreed with their chains. Seed 2 at this kill
// offset reproduced it deterministically (node split re-keying a chain
// entry between the last checkpoint and the tear).
func TestStabPageRedo(t *testing.T) {
	if _, err := Run(t.TempDir(), Config{Seed: 2, Ops: 200, KillAfter: 187011}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSmoke covers a spread of kill points: the segment header, the
// early log, and random offsets through one probe-measured workload.
func TestCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crash smoke is slow")
	}
	probe, err := Run(t.TempDir(), Config{Seed: 3, Ops: 150})
	if err != nil {
		t.Fatal(err)
	}
	kills := []int64{1, 16, 40, 200}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		kills = append(kills, 1+rng.Int63n(probe.LogBytes))
	}
	for _, k := range kills {
		if _, err := Run(t.TempDir(), Config{Seed: 3, Ops: 150, KillAfter: k}); err != nil {
			t.Fatalf("kill@%d: %v", k, err)
		}
	}
}

// TestGroupCommit runs the concurrent-writer phase; under -race this is
// the group-commit data-race gate.
func TestGroupCommit(t *testing.T) {
	stats, err := RunGroupCommit(t.TempDir()+"/gc.db", 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fsyncs >= stats.Commits {
		t.Fatalf("group commit absent: %d fsyncs for %d commits", stats.Fsyncs, stats.Commits)
	}
}
