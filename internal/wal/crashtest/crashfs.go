// Package crashtest is the crash-injection harness behind `make
// crash-smoke` and cmd/xrcrash: it runs a randomized insert/delete
// workload against a WAL-enabled store whose log dies after a chosen
// number of bytes — tearing the final write partway through — then
// reopens the store, lets recovery redo the log, and verifies that every
// acknowledged operation survived and every index invariant holds.
package crashtest

import (
	"errors"
	"os"
	"sync"

	"xrtree/internal/wal"
)

// ErrCrashed is the error every filesystem operation returns once the
// byte budget is spent.
var ErrCrashed = errors.New("crashtest: injected crash")

// FS wraps the OS filesystem and kills the log after a byte budget: the
// write that crosses the budget is torn partway through (its prefix
// reaches the file, like a sector-aligned crash mid-append), and every
// later write and fsync fails. Reads keep working so recovery can run
// against the torn result.
type FS struct {
	mu      sync.Mutex
	remain  int64
	crashed bool
}

// NewFS returns a crash-injecting filesystem that dies after budget
// written bytes.
func NewFS(budget int64) *FS { return &FS{remain: budget} }

// Crashed reports whether the budget has been hit.
func (c *FS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// charge consumes n bytes of budget, returning how many may still be
// written (< n once the crash fires).
func (c *FS) charge(n int64) (int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, false
	}
	if n > c.remain {
		part := c.remain
		c.remain = 0
		c.crashed = true
		return part, false
	}
	c.remain -= n
	return n, true
}

// OpenFile implements wal.FS.
func (c *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := wal.OSFS{}.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

// ReadDir implements wal.FS.
func (c *FS) ReadDir(dir string) ([]string, error) { return wal.OSFS{}.ReadDir(dir) }

// Remove implements wal.FS. Removes are failed after the crash so a dying
// process cannot keep pruning segments.
func (c *FS) Remove(name string) error {
	if c.Crashed() {
		return ErrCrashed
	}
	return wal.OSFS{}.Remove(name)
}

// MkdirAll implements wal.FS.
func (c *FS) MkdirAll(dir string, perm os.FileMode) error {
	if c.Crashed() {
		return ErrCrashed
	}
	return wal.OSFS{}.MkdirAll(dir, perm)
}

type crashFile struct {
	fs *FS
	f  wal.File
}

func (f *crashFile) Write(p []byte) (int, error) {
	allowed, ok := f.fs.charge(int64(len(p)))
	if ok {
		return f.f.Write(p)
	}
	if allowed > 0 {
		f.f.Write(p[:allowed])
	}
	return int(allowed), ErrCrashed
}

func (f *crashFile) Sync() error {
	if f.fs.Crashed() {
		return ErrCrashed
	}
	return f.f.Sync()
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *crashFile) Size() (int64, error)                    { return f.f.Size() }
func (f *crashFile) Close() error                            { return f.f.Close() }
