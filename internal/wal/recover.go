package wal

import (
	"fmt"
	"io"
	"path/filepath"

	"xrtree/internal/pagefile"
)

// Applier receives the redo stream during recovery. The page-file layer
// implements it; recovery writes committed images in log order, so the
// final content of every page is its newest committed image.
type Applier interface {
	// ApplyPage writes one committed page image, extending the file when
	// id lies past the current page count.
	ApplyPage(id pagefile.PageID, data []byte) error
}

// Report describes what one recovery pass found and did.
type Report struct {
	Segments     int    `json:"segments"`      // segment files scanned
	Records      int    `json:"records"`       // CRC-valid records scanned
	TxCommitted  int    `json:"tx_committed"`  // transactions redone
	TxDiscarded  int    `json:"tx_discarded"`  // uncommitted transactions dropped
	PagesApplied int    `json:"pages_applied"` // page images written (after coalescing)
	TornTail     bool   `json:"torn_tail"`     // the log ended in a torn record
	CleanClose   bool   `json:"clean_close"`   // last record was a clean shutdown
	NextLSN      uint64 `json:"next_lsn"`      // where the next log incarnation starts
}

// Replayed reports whether recovery changed or could have changed the
// page file — when false the previous shutdown was clean and the page
// file's free list can be trusted.
func (r Report) Replayed() bool { return r.PagesApplied > 0 || !r.CleanClose }

// maxWALRecord bounds a single record's stated payload length during
// replay, so corrupt length fields cannot ask for gigabyte allocations.
const maxWALRecord = 1 << 24

// Replay scans the log segments in dir and redoes every committed
// transaction through ap. It tolerates (and reports) a torn tail: the
// first incomplete or CRC-invalid record ends the log, and transactions
// without a commit record are discarded. A missing or empty directory is
// an empty log. pageSize must match the store's; segments recording a
// different page size are rejected.
func Replay(fsys FS, dir string, pageSize int, ap Applier) (Report, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	var rep Report
	bases, err := listSegments(fsys, dir)
	if err != nil {
		return rep, err
	}
	// Committed images are coalesced per page (last wins) before applying,
	// so a hot page rewritten by hundreds of transactions costs one write.
	final := make(map[pagefile.PageID][]byte)
	order := []pagefile.PageID{}
	pending := make(map[uint64]map[pagefile.PageID][]byte)
	pendingOrder := make(map[uint64][]pagefile.PageID)
	lastType := byte(0)

scan:
	for i, base := range bases {
		rep.Segments++
		last := i == len(bases)-1
		if base > rep.NextLSN {
			rep.NextLSN = base
		}
		name := filepath.Join(dir, segmentName(base))
		data, err := readSegment(fsys, name)
		if err != nil {
			// The newest segment's header may itself be torn — the crash
			// hit inside Start or a rotation. Anything earlier is real
			// corruption.
			if last {
				rep.TornTail = true
				break scan
			}
			return rep, err
		}
		segPS, segBase, err := parseSegmentHeader(data)
		if err != nil {
			if last {
				rep.TornTail = true
				break scan
			}
			return rep, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		if segPS != pageSize {
			return rep, fmt.Errorf("wal: segment %s page size %d, store has %d", name, segPS, pageSize)
		}
		if segBase != base {
			return rep, fmt.Errorf("wal: segment %s header base %d does not match its name", name, segBase)
		}
		body := data[segHeader:]
		off := 0
		for off < len(body) {
			rec, ok := parseRecord(body[off:])
			if !ok || len(rec.payload) > maxWALRecord {
				rep.TornTail = true
				break scan
			}
			switch rec.typ {
			case recPage:
				if len(rec.payload) != 4+pageSize {
					rep.TornTail = true
					break scan
				}
				id := pagefile.PageID(getU32(rec.payload))
				if id == pagefile.InvalidPage {
					rep.TornTail = true
					break scan
				}
				img := make([]byte, pageSize)
				copy(img, rec.payload[4:])
				if pending[rec.txid] == nil {
					pending[rec.txid] = make(map[pagefile.PageID][]byte)
				}
				if _, dup := pending[rec.txid][id]; !dup {
					pendingOrder[rec.txid] = append(pendingOrder[rec.txid], id)
				}
				pending[rec.txid][id] = img
			case recCommit:
				for _, id := range pendingOrder[rec.txid] {
					if _, seen := final[id]; !seen {
						order = append(order, id)
					}
					final[id] = pending[rec.txid][id]
				}
				delete(pending, rec.txid)
				delete(pendingOrder, rec.txid)
				rep.TxCommitted++
			case recCheckpoint, recClean:
				// Barrier: the writer flushed every committed image and
				// fsynced the page file before appending the marker, so
				// redo work accumulated below it is already on disk —
				// and must be dropped, or replay would clobber pages the
				// store reused for unlogged bulk builds since then.
				final = make(map[pagefile.PageID][]byte)
				order = order[:0]
			}
			rep.Records++
			lastType = rec.typ
			off += rec.size
			rep.NextLSN = base + uint64(off)
		}
	}
	rep.TxDiscarded = len(pending)
	rep.CleanClose = !rep.TornTail && lastType == recClean && rep.TxDiscarded == 0
	for _, id := range order {
		if err := ap.ApplyPage(id, final[id]); err != nil {
			return rep, fmt.Errorf("wal: redo page %d: %w", id, err)
		}
		rep.PagesApplied++
	}
	return rep, nil
}

// discardApplier swallows the redo stream; CleanlyClosed probes with it.
type discardApplier struct{}

func (discardApplier) ApplyPage(pagefile.PageID, []byte) error { return nil }

// CleanlyClosed reports whether the log in dir ends in a clean-shutdown
// record, without writing anything: a cleanly closed log means the page
// file is fully in sync and a store may be opened without the WAL. Any
// parse trouble reads as "not clean" — the caller then demands recovery.
func CleanlyClosed(fsys FS, dir string) (bool, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	bases, err := listSegments(fsys, dir)
	if err != nil || len(bases) == 0 {
		return false, err
	}
	data, err := readSegment(fsys, filepath.Join(dir, segmentName(bases[len(bases)-1])))
	if err != nil {
		return false, nil
	}
	ps, _, err := parseSegmentHeader(data)
	if err != nil {
		return false, nil
	}
	rep, err := Replay(fsys, dir, ps, discardApplier{})
	if err != nil {
		return false, nil
	}
	return rep.CleanClose, nil
}

// readSegment loads a whole segment file. Segments are bounded by the
// rotation threshold, so whole-file reads are fine at recovery time.
func readSegment(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, 0, 0) // os.O_RDONLY == 0
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: stat segment %s: %w", name, err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
	}
	if len(buf) < segHeader {
		return nil, fmt.Errorf("wal: segment %s: %w", name, ErrBadSegment)
	}
	return buf, nil
}
