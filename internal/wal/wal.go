// Package wal implements the write-ahead log beneath the paged store: a
// segmented append-only log of physical redo records with group commit and
// ARIES-style redo-only recovery.
//
// # Protocol
//
// Every index mutation (one XR-tree or B+-tree Insert/Delete) runs as one
// transaction. The mutation dirties pages in the buffer pool as before,
// but the pool holds those frames back from write-back ("no steal"); at
// commit the full after-images of every dirtied page are appended to the
// log, followed by a commit record, and the committer parks until the
// group-commit flusher has fsynced past its commit LSN. Only then are the
// frames released for ordinary lazy write-back — so a page never reaches
// the page file before the log records that recreate it are durable (the
// WAL rule), and a torn or un-fsynced log tail can only lose whole
// transactions, never tear one.
//
// Because the records are full page images, redo is idempotent and needs
// no persistent per-page LSN: recovery replays every committed
// transaction's images in log order and the final state is exactly the
// newest committed image of each page. Records of transactions with no
// commit record — the crash caught them mid-append — are discarded.
//
// # Group commit
//
// Appends happen under the log mutex and go straight to the OS (buffered);
// the expensive fsync is delegated to a single flusher goroutine. A
// committer signals the flusher and waits until the flushed LSN covers its
// commit record; every commit that arrives while an fsync is in flight is
// covered by the next one, so N concurrent writers cost far fewer than N
// fsyncs. The Stats expose the ratio.
//
// # Checkpoints
//
// A checkpoint (written after the buffer pool has flushed and the page
// file has fsynced) records that every lower-LSN image is durably in the
// page file; segments wholly below it are deleted. A clean-shutdown record
// additionally marks the page file's free list as trustworthy — recovery
// after anything else rebuilds it empty, trading a bounded page leak for
// never handing a corrupt free-list link to the allocator.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 1 << 20

// Options configures Start.
type Options struct {
	// FS is the filesystem the log writes through; OSFS when nil. The
	// crash-injection harness substitutes a failing wrapper here.
	FS FS
	// SegmentBytes rotates segments once their payload exceeds this size;
	// DefaultSegmentBytes when 0.
	SegmentBytes int64
}

// Stats is a snapshot of the log's counters. Fsyncs < Commits under
// concurrent writers is the observable signature of group commit.
type Stats struct {
	Commits     int64 `json:"commits"`     // transactions committed
	Fsyncs      int64 `json:"fsyncs"`      // fsync calls issued by the flusher
	MaxGroup    int64 `json:"max_group"`   // most commits acked by one fsync
	Bytes       int64 `json:"bytes"`       // record bytes appended
	PageImages  int64 `json:"page_images"` // page-image records appended
	Checkpoints int64 `json:"checkpoints"` // checkpoint records written
	Segments    int64 `json:"segments"`    // segments created
	Truncated   int64 `json:"truncated"`   // segments deleted by checkpoints
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	fs       FS
	dir      string
	pageSize int
	segBytes int64

	mu         sync.Mutex
	cond       *sync.Cond // flushedLSN advanced or err set
	cur        File
	curBase    uint64
	curSize    int64 // record bytes in the current segment (past the header)
	nextLSN    uint64
	flushedLSN uint64
	waiters    int64 // commits appended but not yet covered by an fsync
	nextTx     uint64
	sinceCkpt  int64 // record bytes since the last checkpoint
	err        error // sticky: the log is dead once a write or fsync fails
	closed     bool

	segs []uint64 // base LSNs of live segments, ascending; last is cur

	wake chan struct{}
	done chan struct{}

	stats Stats
}

// Start opens a fresh log in dir, beginning a new segment at base LSN
// next. Pre-existing segments are the previous incarnation's; the caller
// replays them first (see Replay) and Start deletes them once the new
// segment exists, because replay already made their effects durable.
func Start(dir string, pageSize int, next uint64, opts Options) (*Log, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	old, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		fs:       fs,
		dir:      dir,
		pageSize: pageSize,
		segBytes: segBytes,
		nextLSN:  next,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	l.flushedLSN = next
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	// The new segment is durable; drop the replayed predecessors.
	for _, base := range old {
		if base != l.curBase {
			if err := fs.Remove(filepath.Join(dir, segmentName(base))); err != nil {
				l.cur.Close()
				return nil, fmt.Errorf("wal: remove replayed segment: %w", err)
			}
		}
	}
	go l.flusher()
	return l, nil
}

// listSegments returns the base LSNs of the segments in dir, ascending.
func listSegments(fs FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var bases []uint64
	for _, n := range names {
		if base, ok := parseSegmentName(n); ok {
			bases = append(bases, base)
		}
	}
	for i := 1; i < len(bases); i++ {
		for j := i; j > 0 && bases[j] < bases[j-1]; j-- {
			bases[j], bases[j-1] = bases[j-1], bases[j]
		}
	}
	return bases, nil
}

// HasSegments reports whether dir holds any log segments — the mark of a
// store that was last run with a log and must be opened with one.
func HasSegments(fsys FS, dir string) (bool, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	bases, err := listSegments(fsys, dir)
	return len(bases) > 0, err
}

// openSegmentLocked creates the segment whose base is l.nextLSN, writes
// its header, and makes it current. Caller holds l.mu (or is Start).
func (l *Log) openSegmentLocked() error {
	name := filepath.Join(l.dir, segmentName(l.nextLSN))
	f, err := l.fs.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(encodeSegmentHeader(l.pageSize, l.nextLSN)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	l.cur = f
	l.curBase = l.nextLSN
	l.curSize = 0
	l.segs = append(l.segs, l.curBase)
	l.stats.Segments++
	return nil
}

// appendLocked writes raw record bytes to the current segment and advances
// nextLSN. Caller holds l.mu and has checked l.err/l.closed.
func (l *Log) appendLocked(buf []byte) error {
	if _, err := l.cur.Write(buf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		l.cond.Broadcast()
		return l.err
	}
	l.nextLSN += uint64(len(buf))
	l.curSize += int64(len(buf))
	l.sinceCkpt += int64(len(buf))
	l.stats.Bytes += int64(len(buf))
	return nil
}

// rotateLocked flushes the current segment to its end, then starts the
// next one. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	target := l.nextLSN
	l.kick()
	for l.flushedLSN < target && l.err == nil {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if err := l.cur.Close(); err != nil {
		l.err = fmt.Errorf("wal: close segment: %w", err)
		return l.err
	}
	return l.openSegmentLocked()
}

// kick signals the flusher without blocking.
func (l *Log) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// flusher is the single group-commit goroutine: each pass fsyncs the
// current segment and acknowledges every commit appended before the sync
// began. Commits arriving during an fsync are covered by the next pass.
func (l *Log) flusher() {
	for {
		select {
		case <-l.done:
			return
		case <-l.wake:
		}
		l.mu.Lock()
		if l.err != nil || l.flushedLSN >= l.nextLSN {
			l.mu.Unlock()
			continue
		}
		target := l.nextLSN
		group := l.waiters
		l.waiters = 0
		f := l.cur
		l.mu.Unlock()

		err := f.Sync()

		l.mu.Lock()
		if err != nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		} else {
			l.stats.Fsyncs++
			if group > l.stats.MaxGroup {
				l.stats.MaxGroup = group
			}
			if target > l.flushedLSN {
				l.flushedLSN = target
			}
		}
		l.cond.Broadcast()
		more := l.err == nil && l.flushedLSN < l.nextLSN
		l.mu.Unlock()
		if more {
			l.kick()
		}
	}
}

// Commit appends the transaction's page images and a commit record, then
// blocks until the flusher has made them durable. It returns the commit
// record's end LSN. Commit is the only append path writers use, so a
// transaction's records are always contiguous in the log.
func (l *Log) Commit(images []PageImage) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if l.curSize >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return 0, err
		}
	}
	txid := l.nextTx
	l.nextTx++
	buf := make([]byte, 0, len(images)*(recHeader+4+l.pageSize)+recHeader)
	payload := make([]byte, 4+l.pageSize)
	for _, im := range images {
		if len(im.Data) != l.pageSize {
			l.mu.Unlock()
			return 0, fmt.Errorf("wal: page image is %d bytes, want %d", len(im.Data), l.pageSize)
		}
		putU32(payload, uint32(im.ID))
		copy(payload[4:], im.Data)
		buf = appendRecord(buf, recPage, txid, payload)
	}
	buf = appendRecord(buf, recCommit, txid, nil)
	if err := l.appendLocked(buf); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	lsn := l.nextLSN
	l.stats.PageImages += int64(len(images))
	l.stats.Commits++
	l.waiters++
	l.kick()
	for l.flushedLSN < lsn && l.err == nil {
		l.cond.Wait()
	}
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return lsn, nil
}

// FlushTo blocks until the flushed LSN reaches lsn — the WAL-before-page
// rule's wait, called by the buffer pool before writing back a page whose
// newest image sits at lsn. Commits are synchronous, so in practice this
// returns immediately; it exists so the rule survives future asynchronous
// commit modes.
func (l *Log) FlushTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.flushedLSN >= lsn {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	l.kick()
	for l.flushedLSN < lsn && l.err == nil {
		l.cond.Wait()
	}
	return l.err
}

// SinceCheckpoint returns the record bytes appended since the last
// checkpoint — the buffer pool's trigger for writing the next one.
func (l *Log) SinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt
}

// Checkpoint appends a checkpoint record, flushes it, and deletes every
// segment wholly below it. The caller must already have flushed the
// buffer pool and fsynced the page file: the record asserts that every
// lower-LSN committed image is durable there.
func (l *Log) Checkpoint() error {
	return l.barrier(recCheckpoint)
}

// CloseClean writes a clean-shutdown record, flushes, and closes the log.
// Recovery that finds the record as the last in the log trusts the page
// file's free list.
func (l *Log) CloseClean() error {
	if err := l.barrier(recClean); err != nil {
		l.stop()
		return err
	}
	l.stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.cur.Close()
}

// Abandon closes the log without flushing anything — the crash harness's
// way of dropping a store on the floor.
func (l *Log) Abandon() {
	l.stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		l.cur.Close()
	}
}

func (l *Log) stop() {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
}

// barrier appends a marker record (checkpoint or clean shutdown), waits
// for it to be durable, and prunes dead segments.
func (l *Log) barrier(typ byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if l.curSize >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	markLSN := l.nextLSN // records strictly below this are covered
	if err := l.appendLocked(appendRecord(nil, typ, 0, nil)); err != nil {
		return err
	}
	target := l.nextLSN
	l.kick()
	for l.flushedLSN < target && l.err == nil {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if typ == recCheckpoint {
		l.stats.Checkpoints++
		l.sinceCkpt = 0
	}
	// Delete segments that end at or below the marker: segment i spans
	// [segs[i], segs[i+1]), and the current segment is never deleted.
	live := l.segs[:0]
	for i, base := range l.segs {
		end := markLSN
		if i+1 < len(l.segs) {
			end = l.segs[i+1]
		}
		if base != l.curBase && end <= markLSN {
			if err := l.fs.Remove(filepath.Join(l.dir, segmentName(base))); err != nil {
				// Non-fatal: the segment replays idempotently next open.
				live = append(live, base)
				continue
			}
			l.stats.Truncated++
			continue
		}
		live = append(live, base)
	}
	l.segs = live
	return nil
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }
