package wal

import (
	"os"
	"path/filepath"
	"testing"

	"xrtree/internal/pagefile"
)

const testPS = 512

// mapApplier collects replayed images in memory.
type mapApplier map[pagefile.PageID][]byte

func (m mapApplier) ApplyPage(id pagefile.PageID, data []byte) error {
	img := make([]byte, len(data))
	copy(img, data)
	m[id] = img
	return nil
}

func img(b byte) []byte {
	d := make([]byte, testPS)
	for i := range d {
		d[i] = b
	}
	return d
}

func startLog(t *testing.T, dir string, next uint64, opts Options) *Log {
	t.Helper()
	l, err := Start(dir, testPS, next, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestRoundtrip commits transactions, crashes (Abandon), and checks that
// replay reconstructs the newest committed image of every page.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{})
	if _, err := l.Commit([]PageImage{{ID: 3, Data: img(0xaa)}, {ID: 5, Data: img(0xbb)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]PageImage{{ID: 3, Data: img(0xcc)}}); err != nil {
		t.Fatal(err)
	}
	l.Abandon()

	got := mapApplier{}
	rep, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TxCommitted != 2 || rep.TxDiscarded != 0 || rep.CleanClose {
		t.Fatalf("report %+v", rep)
	}
	if rep.PagesApplied != 2 {
		t.Fatalf("applied %d pages, want 2 (coalesced)", rep.PagesApplied)
	}
	if got[3][0] != 0xcc || got[5][0] != 0xbb {
		t.Fatalf("wrong images: page3=%x page5=%x", got[3][0], got[5][0])
	}
	if !rep.Replayed() {
		t.Fatal("crash recovery must report Replayed")
	}
}

// TestTornTail truncates the log mid-record: complete transactions before
// the tear replay, the torn one is discarded, and the tail is reported.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{})
	if _, err := l.Commit([]PageImage{{ID: 1, Data: img(0x11)}}); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Commit([]PageImage{{ID: 2, Data: img(0x22)}})
	if err != nil {
		t.Fatal(err)
	}
	l.Abandon()

	// Tear the last 5 bytes off the second transaction's commit record:
	// its page record is intact, the commit is not.
	name := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, data[:segHeader+int(lsn)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	got := mapApplier{}
	rep, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail {
		t.Fatalf("torn tail not detected: %+v", rep)
	}
	if rep.TxCommitted != 1 || rep.TxDiscarded != 1 {
		t.Fatalf("report %+v", rep)
	}
	if _, ok := got[2]; ok {
		t.Fatal("discarded transaction's image was applied")
	}
	if got[1][0] != 0x11 {
		t.Fatal("committed transaction lost")
	}
}

// TestRotation forces segment rotation with a tiny threshold and replays
// across the resulting chain.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{SegmentBytes: 2 * testPS})
	for i := 0; i < 8; i++ {
		if _, err := l.Commit([]PageImage{{ID: pagefile.PageID(i + 1), Data: img(byte(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	l.Abandon()

	got := mapApplier{}
	rep, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments < 2 || rep.TxCommitted != 8 || len(got) != 8 {
		t.Fatalf("report %+v, %d images", rep, len(got))
	}
}

// TestCheckpointBarrier checks the barrier semantics replay relies on:
// images committed below a checkpoint are NOT re-applied (the writer
// flushed them to the page file before the marker), and segments wholly
// below it are pruned.
func TestCheckpointBarrier(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{SegmentBytes: 2 * testPS})
	// Two transactions overflow the tiny segment, so the checkpoint
	// rotates first and the old segment falls wholly below the marker.
	if _, err := l.Commit([]PageImage{{ID: 1, Data: img(0x01)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]PageImage{{ID: 1, Data: img(0x03)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit([]PageImage{{ID: 2, Data: img(0x02)}}); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Truncated == 0 {
		t.Fatalf("checkpoint pruned no segments: %+v", st)
	}
	l.Abandon()

	got := mapApplier{}
	rep, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got[1]; ok {
		t.Fatal("image below the checkpoint barrier was re-applied")
	}
	if got[2] == nil || got[2][0] != 0x02 {
		t.Fatalf("image above the barrier lost: %+v", rep)
	}
}

// TestCleanShutdown closes the log cleanly and checks that the following
// replay trusts it: nothing applied, CleanClose reported.
func TestCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{})
	if _, err := l.Commit([]PageImage{{ID: 7, Data: img(0x77)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseClean(); err != nil {
		t.Fatal(err)
	}
	got := mapApplier{}
	rep, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CleanClose || rep.Replayed() || rep.PagesApplied != 0 {
		t.Fatalf("clean shutdown not honored: %+v", rep)
	}
	if rep.NextLSN == 0 {
		t.Fatal("NextLSN not advanced")
	}

	// Restarting at NextLSN and replaying again still works.
	l = startLog(t, dir, rep.NextLSN, Options{})
	if _, err := l.Commit([]PageImage{{ID: 8, Data: img(0x88)}}); err != nil {
		t.Fatal(err)
	}
	l.Abandon()
	got = mapApplier{}
	rep2, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.NextLSN <= rep.NextLSN || got[8] == nil {
		t.Fatalf("restarted log broken: %+v", rep2)
	}
}

// TestTornSegmentHeader simulates a crash inside Start or a rotation: the
// newest segment holds a short or garbage header. Replay must treat it as
// the torn tail, not corruption.
func TestTornSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{})
	if _, err := l.Commit([]PageImage{{ID: 1, Data: img(0x11)}}); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	l.Abandon()

	// A later segment whose header write was torn to 7 bytes.
	next := uint64(segHeader) + uint64(st.Bytes)
	if err := os.WriteFile(filepath.Join(dir, segmentName(next)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := mapApplier{}
	rep, err := Replay(nil, dir, testPS, got)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.TxCommitted != 1 || got[1] == nil {
		t.Fatalf("torn header not tolerated: %+v", rep)
	}
	if rep.NextLSN < next {
		t.Fatalf("NextLSN %d did not reach the torn segment base %d", rep.NextLSN, next)
	}
}

// TestPageSizeMismatch rejects a log recorded under a different page size.
func TestPageSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{})
	if _, err := l.Commit([]PageImage{{ID: 1, Data: img(0x11)}}); err != nil {
		t.Fatal(err)
	}
	if err := l.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(nil, dir, 2*testPS, mapApplier{}); err == nil {
		t.Fatal("page-size mismatch not rejected")
	}
}

// TestHasSegments reports segment presence for the recovery-needed probe.
func TestHasSegments(t *testing.T) {
	dir := t.TempDir()
	if ok, err := HasSegments(nil, dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	l := startLog(t, dir, 0, Options{})
	l.Abandon()
	if ok, err := HasSegments(nil, dir); err != nil || !ok {
		t.Fatalf("after start: ok=%v err=%v", ok, err)
	}
}

// TestGroupCommitStats hammers the log from concurrent goroutines and
// checks the group-commit signature on the stats.
func TestGroupCommitStats(t *testing.T) {
	dir := t.TempDir()
	l := startLog(t, dir, 0, Options{})
	const writers, per = 8, 25
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				if _, err := l.Commit([]PageImage{{ID: pagefile.PageID(w + 1), Data: img(byte(i))}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if err := l.CloseClean(); err != nil {
		t.Fatal(err)
	}
	if st.Commits != writers*per {
		t.Fatalf("commits %d, want %d", st.Commits, writers*per)
	}
	if st.Fsyncs >= st.Commits {
		t.Fatalf("group commit absent: %d fsyncs for %d commits", st.Fsyncs, st.Commits)
	}
}
