package wal

import (
	"errors"
	"fmt"
	"hash/crc32"

	"xrtree/internal/pagefile"
)

// On-disk format.
//
// A segment file is a fixed 32-byte header followed by a dense sequence of
// records:
//
//	header: magic u32 | version u32 | pageSize u32 | pad u32 | baseLSN u64 | pad u64
//	record: length u32 | type u8 | txid u64 | crc u32 | payload (length bytes)
//
// All integers are little-endian (matching every other on-disk structure
// in this repository). A record's LSN is its byte position in the logical
// log stream: baseLSN plus the record's offset past the segment header, so
// LSNs stay strictly increasing across segment rotation. The CRC covers
// type, txid, and payload; a record whose stated length runs past the end
// of the segment, or whose CRC does not match, is the torn tail — it and
// everything after it is discarded by recovery.
//
// Record types:
//
//	recPage:       payload pageID u32 | page image (pageSize bytes).
//	               Physical redo: the full after-image of one page as of
//	               the owning transaction's commit.
//	recCommit:     empty payload. The transaction's page images are
//	               durable and must be redone on recovery.
//	recCheckpoint: empty payload. Every committed image at a strictly
//	               lower LSN is durably in the page file; segments wholly
//	               below this record can be deleted.
//	recClean:      empty payload. Clean shutdown: the page file (including
//	               its free list) is in sync with the log.
const (
	segMagic   = 0x58525741 // "XRWA"
	segVersion = 1
	segHeader  = 32

	recHeader = 4 + 1 + 8 + 4 // length | type | txid | crc

	recPage       = 1
	recCommit     = 2
	recCheckpoint = 3
	recClean      = 4
)

// Errors surfaced by the log.
var (
	ErrClosed     = errors.New("wal: log is closed")
	ErrBadSegment = errors.New("wal: bad segment header")
)

// PageImage is one page's after-image inside a committing transaction.
type PageImage struct {
	ID   pagefile.PageID
	Data []byte
}

// appendRecord serializes one record onto buf.
func appendRecord(buf []byte, typ byte, txid uint64, payload []byte) []byte {
	var hdr [recHeader]byte
	putU32(hdr[0:], uint32(len(payload)))
	hdr[4] = typ
	putU64(hdr[5:], txid)
	crc := crc32.ChecksumIEEE(hdr[4:13])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	putU32(hdr[13:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// record is one decoded record.
type record struct {
	typ     byte
	txid    uint64
	payload []byte
	size    int // total on-disk bytes including the header
}

// parseRecord decodes the record at the front of b. It returns ok=false
// when b holds no complete, CRC-valid record — the torn-tail condition.
func parseRecord(b []byte) (record, bool) {
	if len(b) < recHeader {
		return record{}, false
	}
	n := int(getU32(b[0:]))
	if n < 0 || len(b) < recHeader+n {
		return record{}, false
	}
	crc := crc32.ChecksumIEEE(b[4:13])
	crc = crc32.Update(crc, crc32.IEEETable, b[recHeader:recHeader+n])
	if crc != getU32(b[13:]) {
		return record{}, false
	}
	typ := b[4]
	if typ < recPage || typ > recClean {
		return record{}, false
	}
	return record{typ: typ, txid: getU64(b[5:]), payload: b[recHeader : recHeader+n], size: recHeader + n}, true
}

// segmentName renders the file name of the segment with the given base LSN.
func segmentName(base uint64) string { return fmt.Sprintf("%016x.wal", base) }

// parseSegmentName extracts the base LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if len(name) != 20 || name[16:] != ".wal" {
		return 0, false
	}
	var base uint64
	for i := 0; i < 16; i++ {
		c := name[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		base = base<<4 | d
	}
	return base, true
}

// encodeSegmentHeader renders a segment header.
func encodeSegmentHeader(pageSize int, base uint64) []byte {
	hdr := make([]byte, segHeader)
	putU32(hdr[0:], segMagic)
	putU32(hdr[4:], segVersion)
	putU32(hdr[8:], uint32(pageSize))
	putU64(hdr[16:], base)
	return hdr
}

// parseSegmentHeader validates a segment header and returns its page size
// and base LSN.
func parseSegmentHeader(hdr []byte) (pageSize int, base uint64, err error) {
	if len(hdr) < segHeader || getU32(hdr[0:]) != segMagic || getU32(hdr[4:]) != segVersion {
		return 0, 0, ErrBadSegment
	}
	ps := int(getU32(hdr[8:]))
	if ps < pagefile.MinPageSize || ps&(ps-1) != 0 {
		return 0, 0, ErrBadSegment
	}
	return ps, getU64(hdr[16:]), nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}
