package wal

import (
	"fmt"
	"os"
	"testing"

	"xrtree/internal/pagefile"
)

// fuzzApplier rejects images of the wrong size — replay must never hand
// the page file a malformed image, no matter what the log bytes say.
type fuzzApplier struct{ ps int }

func (a fuzzApplier) ApplyPage(id pagefile.PageID, data []byte) error {
	if len(data) != a.ps {
		panic("replay applied a wrong-sized image")
	}
	if id == pagefile.InvalidPage {
		panic("replay applied the invalid page id")
	}
	return nil
}

// memFS serves one read-only segment from memory, so each fuzz exec costs
// no disk I/O.
type memFS struct {
	name string
	data []byte
}

func (m *memFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if name != m.name {
		return nil, fmt.Errorf("memFS: no file %s", name)
	}
	return &memFile{data: m.data}, nil
}
func (m *memFS) ReadDir(dir string) ([]string, error)        { return []string{segmentName(0)}, nil }
func (m *memFS) Remove(name string) error                    { return nil }
func (m *memFS) MkdirAll(dir string, perm os.FileMode) error { return nil }

type memFile struct{ data []byte }

func (f *memFile) Write(p []byte) (int, error) { return 0, fmt.Errorf("memFile: read-only") }
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, fmt.Errorf("memFile: read past end")
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("memFile: short read")
	}
	return n, nil
}
func (f *memFile) Size() (int64, error) { return int64(len(f.data)), nil }
func (f *memFile) Sync() error          { return nil }
func (f *memFile) Close() error         { return nil }

// fuzzSeedSegment builds a small valid segment: two committed
// transactions with a checkpoint between them, one uncommitted.
func fuzzSeedSegment() []byte {
	img := make([]byte, 4+fuzzPS)
	data := encodeSegmentHeader(fuzzPS, 0)
	putU32(img, 3)
	data = append(data, appendRecord(nil, recPage, 1, img)...)
	data = append(data, appendRecord(nil, recCommit, 1, nil)...)
	data = append(data, appendRecord(nil, recCheckpoint, 0, nil)...)
	putU32(img, 5)
	data = append(data, appendRecord(nil, recPage, 2, img)...)
	data = append(data, appendRecord(nil, recCommit, 2, nil)...)
	putU32(img, 7)
	data = append(data, appendRecord(nil, recPage, 3, img)...)
	return data
}

const fuzzPS = 256

// FuzzWALReplay feeds arbitrary bytes to recovery as the store's only log
// segment. Whatever the bytes, Replay must return normally — reporting a
// torn tail or an error, never panicking — and must never emit a
// malformed page image.
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedSegment()
	f.Add(seed)
	f.Add(seed[:len(seed)-9])            // torn tail mid-record
	f.Add(seed[:segHeader])              // header only
	f.Add(seed[:7])                      // torn header
	f.Add([]byte{})                      // empty segment file
	flip := append([]byte(nil), seed...) // CRC mismatch
	flip[segHeader+recHeader+2] ^= 0x40
	f.Add(flip)
	huge := append([]byte(nil), seed...) // absurd stated record length
	putU32(huge[segHeader:], 0xfffffff0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := &memFS{name: "log/" + segmentName(0), data: data}
		rep, err := Replay(fsys, "log", fuzzPS, fuzzApplier{ps: fuzzPS})
		if err != nil {
			return // rejected cleanly
		}
		if rep.NextLSN > uint64(len(data))+segHeader {
			t.Fatalf("NextLSN %d past the end of a %d-byte segment", rep.NextLSN, len(data))
		}
	})
}
