package wal

import (
	"io"
	"os"
	"sort"
)

// FS abstracts the filesystem the log writes through. The default is the
// operating system (OSFS); the crash-injection harness substitutes a
// wrapper whose writes die after a configured number of bytes, which is
// how "kill the process at a random WAL offset" is simulated in-process.
type FS interface {
	// OpenFile opens (or creates) a log segment for appending and reading.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists the file names (not paths) in dir, in any order.
	ReadDir(dir string) ([]string, error)
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
}

// File is one log segment: appended sequentially, read back at recovery,
// and fsynced by the group-commit flusher.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Size returns the file's current length in bytes.
	Size() (int64, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Remove(name string) error                    { return os.Remove(name) }
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
