//go:build !xrtreedebug

// Package invariant provides build-tagged runtime assertions; see
// enabled.go. This is the release variant: assertions are no-ops.
package invariant

// Enabled reports whether debug assertions are compiled in.
const Enabled = false

// Assertf is a no-op in release builds.
func Assertf(cond bool, format string, args ...any) {}
