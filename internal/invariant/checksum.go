package invariant

// Checksum returns the FNV-1a hash of b. The buffer pool records one per
// resting page under xrtreedebug and re-verifies it on the next fetch,
// catching writes to unpinned frames (use-after-unpin) and torn
// evict/readmit cycles.
func Checksum(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
