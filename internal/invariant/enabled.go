//go:build xrtreedebug

// Package invariant provides build-tagged runtime assertions. Under the
// xrtreedebug tag (make test-debug) Enabled is true and Assertf panics on
// violation; in release builds both compile to nothing, so the storage
// layers can assert structural invariants (pin balance, key-region
// ordering, page checksums, stab-list disjointness) without release-path
// cost.
package invariant

import "fmt"

// Enabled reports whether debug assertions are compiled in. It is a
// constant, so `if invariant.Enabled { ... }` blocks are eliminated
// entirely from release builds.
const Enabled = true

// Assertf panics with a formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
