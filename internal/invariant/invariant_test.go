package invariant_test

import (
	"testing"

	"xrtree/internal/invariant"
)

func TestAssertf(t *testing.T) {
	invariant.Assertf(true, "true must never fire")
	if invariant.Enabled {
		defer func() {
			if recover() == nil {
				t.Fatal("Assertf(false) did not panic in a debug build")
			}
		}()
		invariant.Assertf(false, "boom %d", 1)
		t.Fatal("unreachable: Assertf(false) returned in a debug build")
	} else {
		invariant.Assertf(false, "must be a no-op in release builds")
	}
}

func TestChecksum(t *testing.T) {
	a := []byte("xr-tree page image")
	b := []byte("xr-tree page imagf")
	if invariant.Checksum(a) == invariant.Checksum(b) {
		t.Fatal("checksums of different buffers collide")
	}
	if invariant.Checksum(a) != invariant.Checksum([]byte("xr-tree page image")) {
		t.Fatal("checksum is not deterministic")
	}
	if invariant.Checksum(nil) != 14695981039346656037 {
		t.Fatal("checksum of empty input must be the FNV-1a offset basis")
	}
}
