// Package a models the buffer pool's transaction protocol for the
// walheld analyzer tests: a Pool with Begin and held/plain fetches, and
// a Tree using the repo's beginTx / fetch-wrapper idiom.
package a

type PageID uint32

type Tx struct{}

type Tracer interface{ Event(kind int) }

type Pool struct{}

func (p *Pool) Begin() *Tx { return nil }
func (p *Pool) FetchHeld(tx *Tx, id PageID) ([]byte, error) {
	return nil, nil
}
func (p *Pool) FetchHeldTraced(tx *Tx, id PageID, tr Tracer) ([]byte, error) {
	return nil, nil
}
func (p *Pool) FetchNewHeld(tx *Tx) (PageID, []byte, error) { return 0, nil, nil }
func (p *Pool) Fetch(id PageID) ([]byte, error)             { return nil, nil }
func (p *Pool) FetchTraced(id PageID, tr Tracer) ([]byte, error) {
	return nil, nil
}
func (p *Pool) FetchCopy(id PageID, dst []byte) error   { return nil }
func (p *Pool) TryFetchCopy(id PageID, dst []byte) bool { return false }
func (p *Pool) CommitTx(tx *Tx) error                   { return nil }
func (p *Pool) Unpin(id PageID, dirty bool) error       { return nil }

type Tree struct {
	pool *Pool
	tx   *Tx
}

// beginTx opens the transaction and returns the deferred commit closure,
// mirroring core.Tree.beginTx.
func (t *Tree) beginTx() func(*error) {
	t.tx = t.pool.Begin()
	return func(errp *error) {
		tx := t.tx
		t.tx = nil
		if cerr := t.pool.CommitTx(tx); cerr != nil && *errp == nil {
			*errp = cerr
		}
	}
}

// fetch and fetchStab are the held wrappers mutation code goes through.
func (t *Tree) fetch(id PageID) ([]byte, error) { return t.pool.FetchHeld(t.tx, id) }

func (t *Tree) fetchStab(id PageID) ([]byte, error) {
	return t.pool.FetchHeldTraced(t.tx, id, nil)
}

// ---- negative cases ----

// Lookup is a query path: no transaction, plain fetches allowed.
func (t *Tree) Lookup(id PageID) ([]byte, error) {
	return t.pool.FetchTraced(id, nil)
}

// Insert goes through the held wrappers only: clean.
func (t *Tree) Insert(id PageID) (err error) {
	done := t.beginTx()
	defer done(&err)
	if _, err := t.fetch(id); err != nil {
		return err
	}
	_, err = t.fetchStab(id + 1)
	return err
}

// GoodPrecheck fetches plainly *before* opening the transaction — only
// positions after the opener call are in-Tx.
func (t *Tree) GoodPrecheck(id PageID) (err error) {
	if _, err := t.pool.Fetch(id); err != nil {
		return err
	}
	done := t.beginTx()
	defer done(&err)
	_, err = t.fetch(id)
	return err
}

// BulkAppend is an audited unlogged path: the escape carries its
// justification.
func (t *Tree) BulkAppend(id PageID) (err error) {
	done := t.beginTx()
	defer done(&err)
	//xrvet:unlogged builder frames are flushed by the store's save checkpoint
	_, err = t.pool.Fetch(id)
	return err
}

// ---- positive cases ----

// BadInsert fetches plainly inside its open transaction.
func (t *Tree) BadInsert(id PageID) (err error) {
	done := t.beginTx()
	defer done(&err)
	_, err = t.pool.Fetch(id) // want `unlogged page fetch in a mutation transaction: t.pool.Fetch bypasses the held-frame protocol`
	return err
}

// stabChain is only ever called from an open transaction: the fixpoint
// marks it wholly in-Tx and its plain fetch is the PR 7 stab-chain bug.
func (t *Tree) stabChain(id PageID) error {
	_, err := t.pool.FetchTraced(id, nil) // want `unlogged page fetch in a mutation transaction: t.pool.FetchTraced bypasses the held-frame protocol`
	return err
}

func (t *Tree) BadDelete(id PageID) (err error) {
	done := t.beginTx()
	defer done(&err)
	return t.stabChain(id)
}

// BadCopy: the copying fetches bypass the hold protocol just the same —
// the copy reads a frame the commit will never log.
func (t *Tree) BadCopy(id PageID, buf []byte) (err error) {
	done := t.beginTx()
	defer done(&err)
	return t.pool.FetchCopy(id, buf) // want `unlogged page fetch in a mutation transaction: t.pool.FetchCopy bypasses the held-frame protocol`
}

// BadBare carries an escape with no justification: rejected.
func (t *Tree) BadBare(id PageID) (err error) {
	done := t.beginTx()
	defer done(&err)
	//xrvet:unlogged
	_, err = t.pool.Fetch(id) // want `bare //xrvet:unlogged escape on t.pool.Fetch: add a justification`
	return err
}
