package walheld_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/walheld"
)

func TestWalHeld(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), walheld.Analyzer, "a")
}
