// Package walheld proves the WAL no-steal protocol at the fetch layer:
// every page fetched inside an open transaction must come through a
// held-frame fetch (Pool.FetchHeld / FetchHeldTraced / FetchNewHeld). A
// plain Fetch in a mutation path produces a frame the commit's snapshot
// never sees — its after-image never reaches the log, and eviction can
// steal it before the commit is durable. PR 7's crash harness caught
// exactly this bug dynamically in the stab-chain maintenance code; this
// analyzer decides it statically.
//
// A function is a mutation entry point when it opens a transaction
// (calls Pool.Begin, directly or through a same-package helper like
// core's beginTx). Code is "in-Tx" from that call onward, and every
// same-package function called from in-Tx code is wholly in-Tx —
// propagated to a fixpoint, so helpers inherit their callers'
// obligations the way core's fetchStab chain does. Any plain fetch
// (Fetch, FetchTraced, FetchCopy, FetchCopyTraced, FetchNew,
// TryFetchCopy) at an in-Tx position is flagged.
//
// Matching is by type and method name (a named type Pool with the fetch
// methods), so analysistest packages can model the pool locally. The
// region tracking is lexical within a function: in the repo's idiom the
// transaction opens at the top of the mutation and commits in a deferred
// closure, so source position order coincides with execution order.
//
// `//xrvet:unlogged <reason>` on the call line (or the line above, or
// the function declaration) escapes an audited unlogged write — bulk
// builds whose durability point is the store's explicit save. The
// justification is mandatory; a bare `//xrvet:unlogged` is itself a
// finding.
package walheld

import (
	"go/ast"
	"go/token"
	"go/types"

	"xrtree/internal/analysis"
)

// Analyzer is the walheld analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walheld",
	Doc:  "check that every page fetch inside an open WAL transaction is a held-frame fetch",
	Run:  run,
}

// heldFetches are the transaction-aware fetches; plainFetches bypass the
// hold protocol and are forbidden at in-Tx positions.
var (
	heldFetches = map[string]bool{
		"FetchHeld": true, "FetchHeldTraced": true, "FetchNewHeld": true,
	}
	plainFetches = map[string]bool{
		"Fetch": true, "FetchTraced": true, "FetchCopy": true,
		"FetchCopyTraced": true, "FetchNew": true, "TryFetchCopy": true,
	}
)

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		openAt:   map[types.Object]token.Pos{},
		inTx:     map[types.Object]bool{},
		unlogged: analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:unlogged"),
	}
	// Fixpoint: discover transaction openers (and the position their Tx
	// opens at), then functions called from in-Tx code, until nothing
	// changes. Opener positions only move earlier and the in-Tx set only
	// grows, so this terminates.
	for {
		c.changed = false
		c.scanAll(false)
		if !c.changed {
			break
		}
	}
	c.scanAll(true)
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// openAt maps a function to the position after which its body runs
	// inside an open transaction (it calls Pool.Begin or an opener).
	openAt map[types.Object]token.Pos
	// inTx marks functions wholly in-Tx: called from in-Tx code.
	inTx     map[types.Object]bool
	unlogged map[analysis.LineKey]string
	changed  bool
}

func (c *checker) scanAll(report bool) {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.scanFunc(fn, report)
		}
	}
}

func (c *checker) scanFunc(fn *ast.FuncDecl, report bool) {
	obj := c.pass.TypesInfo.Defs[fn.Name]
	// start is the position from which this body is in-Tx; NoPos when the
	// function never runs inside a transaction. Updated in source order as
	// opener calls are encountered.
	start := token.NoPos
	if obj != nil && c.inTx[obj] {
		start = fn.Body.Pos()
	} else if obj != nil {
		if p, ok := c.openAt[obj]; ok {
			start = p
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := c.calleeObj(call)
		opens := analysis.IsMethodCall(c.pass.TypesInfo, call, "Pool", "Begin")
		if !opens && callee != nil {
			_, opens = c.openAt[callee]
		}
		if opens {
			if obj != nil {
				if old, ok := c.openAt[obj]; !ok || call.End() < old {
					c.openAt[obj] = call.End()
					c.changed = true
				}
			}
			if !start.IsValid() || call.End() < start {
				start = call.End()
			}
			return true
		}
		inTxHere := start.IsValid() && call.Pos() >= start
		if inTxHere && callee != nil && callee.Pkg() == c.pass.Pkg && !c.inTx[callee] {
			c.inTx[callee] = true
			c.changed = true
		}
		if report && inTxHere {
			c.checkFetch(fn, call)
		}
		return true
	})
}

func (c *checker) checkFetch(fn *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !plainFetches[sel.Sel.Name] {
		return
	}
	if !analysis.TypeNameIs(c.pass.TypesInfo.TypeOf(sel.X), "", "Pool") {
		return
	}
	reason, annotated := analysis.Annotation(c.pass.Fset, c.unlogged, call.Pos())
	if !annotated {
		reason, annotated = analysis.Annotation(c.pass.Fset, c.unlogged, fn.Pos())
	}
	if annotated {
		if reason == "" {
			c.pass.Reportf(call.Pos(),
				"bare //xrvet:unlogged escape on %s: add a justification (//xrvet:unlogged <reason>)",
				types.ExprString(call.Fun))
		}
		return
	}
	c.pass.Reportf(call.Pos(),
		"unlogged page fetch in a mutation transaction: %s bypasses the held-frame protocol — use FetchHeld/FetchHeldTraced/FetchNewHeld so the commit logs the page's after-image, or annotate an audited bulk-build path with //xrvet:unlogged <reason>",
		types.ExprString(call.Fun))
}

func (c *checker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
