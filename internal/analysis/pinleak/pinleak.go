// Package pinleak checks that every buffer-pool pin is released on every
// path. A call to Pool.Fetch or Pool.FetchNew (or to a package-local
// wrapper that returns pinned page data, like core's fetchStab) pins a
// page; the pin must reach Pool.Unpin or Pool.Discard — directly, through
// a defer, or by handing the page id to another function that assumes
// ownership — before the function returns or re-enters a loop iteration.
//
// The check is flow-sensitive: it walks every path through the function
// body, tracking the set of held pins per path. It understands the
// idiomatic shapes the storage layers use:
//
//   - error guards: after `data, err := pool.Fetch(id)`, the pin exists
//     only on the err == nil side of a guard on that same err variable;
//   - defer release, including `defer pool.Unpin(id, false)` and defers
//     of function literals whose body releases the pin;
//   - releases in any expression position: `return pool.Unpin(id, true)`,
//     `if err := pool.Unpin(id, false); err != nil`, `err = pool.Unpin(…)`;
//   - ownership transfer: passing the page id to a non-release call,
//     storing the id or data in a variable, field, or composite literal,
//     or returning the data (which marks the function as a pin-returning
//     wrapper whose callers then inherit the obligation).
//
// Matching is by type and method name (a named type Pool with
// Fetch/FetchNew/Unpin/Discard methods), so analysistest packages can
// model the pool locally. `//xrvet:pinleak-ignore` on a function
// declaration suppresses the check for that function.
package pinleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"xrtree/internal/analysis"
)

// Analyzer is the pinleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "pinleak",
	Doc:  "check that every buffer-pool Fetch/FetchNew is paired with Unpin/Discard on all paths",
	Run:  run,
}

// poolMethods are the Pool methods whose own bodies are exempt (they
// implement pinning, they don't consume it).
var poolMethods = map[string]bool{
	"Fetch": true, "FetchCopy": true, "FetchNew": true,
	"TryFetchCopy": true, "Prefetch": true,
	"Unpin": true, "Discard": true,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		wrappers: map[types.Object]int{},
		reported: map[string]bool{},
		ignore:   analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:pinleak-ignore"),
	}
	// Fixpoint pass: discover pin-returning wrappers (whose callers then
	// acquire pins through them) before reporting anything. Wrapper chains
	// are short; a few rounds reach closure.
	c.collect = true
	for range 4 {
		c.changed = false
		c.walkAll()
		if !c.changed {
			break
		}
	}
	c.collect = false
	c.walkAll()
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// wrappers maps a function object to the index of its page-id
	// parameter: calling it pins the page passed at that index.
	wrappers map[types.Object]int
	collect  bool
	changed  bool
	reported map[string]bool
	ignore   map[analysis.LineKey]string
}

func (c *checker) walkAll() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil || c.skipFunc(fn) {
					return false
				}
				c.checkFunc(fn.Type, fn.Body, c.pass.TypesInfo.Defs[fn.Name])
			case *ast.FuncLit:
				// Function literals are checked as functions in their own
				// right; pins they inherit from the enclosing function are
				// that function's responsibility (transfer rules apply).
				c.checkFunc(fn.Type, fn.Body, nil)
			}
			return true
		})
	}
}

func (c *checker) skipFunc(fn *ast.FuncDecl) bool {
	if analysis.Annotated(c.pass.Fset, c.ignore, fn.Pos()) {
		return true
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	return poolMethods[fn.Name.Name] && analysis.TypeNameIs(c.pass.TypesInfo.TypeOf(fn.Recv.List[0].Type), "", "Pool")
}

// pin is one held page pin on one path.
type pin struct {
	key     string       // source text of the page-id expression
	idObj   types.Object // id variable, when it is a plain ident
	dataObj types.Object // page-data variable
	errObj  types.Object // acquisition's error variable
	// conditional marks a pin whose acquisition error has not been
	// checked yet: it exists only if that error was nil.
	conditional bool
	pos         token.Pos // acquisition site
}

type state []pin

func (st state) clone() state {
	out := make(state, len(st))
	copy(out, st)
	return out
}

func (st state) sig() string {
	s := ""
	for _, p := range st {
		s += p.key
		if p.conditional {
			s += "?"
		}
		s += "@" + strconv.Itoa(int(p.pos)) + ";"
	}
	return s
}

type outKind int

const (
	outFall outKind = iota
	outBreak
	outContinue
	outTerm // return, panic, goto: path accounted for or abandoned
)

type outcome struct {
	kind outKind
	st   state
}

// mergeOutcomes dedupes by (kind, pin set) and caps path blowup.
func mergeOutcomes(outs []outcome) []outcome {
	seen := map[string]bool{}
	var res []outcome
	for _, o := range outs {
		key := strconv.Itoa(int(o.kind)) + "|" + o.st.sig()
		if seen[key] {
			continue
		}
		seen[key] = true
		res = append(res, o)
		if len(res) >= 64 {
			break
		}
	}
	return res
}

// walker analyzes one function body.
type walker struct {
	c      *checker
	fnObj  types.Object         // nil for function literals
	params map[types.Object]int // declared parameter -> index
	ftype  *ast.FuncType
}

func (c *checker) checkFunc(ftype *ast.FuncType, body *ast.BlockStmt, fnObj types.Object) {
	w := &walker{c: c, fnObj: fnObj, params: map[types.Object]int{}, ftype: ftype}
	idx := 0
	if ftype.Params != nil {
		for _, fld := range ftype.Params.List {
			for _, name := range fld.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					w.params[obj] = idx
				}
				idx++
			}
			if len(fld.Names) == 0 {
				idx++
			}
		}
	}
	outs := w.walkList(body.List, nil)
	for _, o := range outs {
		if o.kind == outFall {
			// Falling off the end of the body is an implicit return.
			w.reportLeaks(o.st, body.Rbrace)
		}
	}
}

func (w *walker) walkList(stmts []ast.Stmt, st state) []outcome {
	if len(stmts) == 0 {
		return []outcome{{outFall, st}}
	}
	first := w.walkStmt(stmts[0], st)
	var res []outcome
	for _, o := range first {
		if o.kind == outFall {
			res = append(res, w.walkList(stmts[1:], o.st)...)
		} else {
			res = append(res, o)
		}
	}
	return mergeOutcomes(res)
}

func (w *walker) walkStmt(s ast.Stmt, st state) []outcome {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return []outcome{{outFall, w.assign(st, s.Lhs, s.Rhs, s.Pos())}}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					st = w.assign(st, lhs, vs.Values, s.Pos())
				}
			}
		}
		return []outcome{{outFall, st}}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, _ := w.callee(call); name == "panic" {
				return []outcome{{outTerm, st}}
			}
			if w.isAcquire(call) {
				if !w.c.collect {
					w.report(s.Pos(), "pin leak: pinned result of %s is discarded", types.ExprString(call.Fun))
				}
				return []outcome{{outFall, w.scanExprs(st, s.X)}}
			}
		}
		return []outcome{{outFall, w.scanExprs(st, s.X)}}
	case *ast.ReturnStmt:
		st = w.scanExprs(st, s.Results...)
		st = w.returnTransfers(st, s.Results)
		w.reportLeaks(st, s.Pos())
		return []outcome{{outTerm, st}}
	case *ast.DeferStmt:
		return []outcome{{outFall, w.deferred(st, s.Call)}}
	case *ast.GoStmt:
		return []outcome{{outFall, w.deferred(st, s.Call)}}
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		return w.forStmt(s, st)
	case *ast.RangeStmt:
		return w.rangeStmt(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.simple(s.Init, st)
		}
		st = w.scanExprs(st, s.Tag)
		return w.clauses(s.Body, st, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.simple(s.Init, st)
		}
		return w.clauses(s.Body, st, hasDefault(s.Body))
	case *ast.SelectStmt:
		return w.clauses(s.Body, st, true)
	case *ast.BlockStmt:
		return w.walkList(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return []outcome{{outBreak, st}}
		case token.CONTINUE:
			return []outcome{{outContinue, st}}
		case token.FALLTHROUGH:
			return []outcome{{outFall, st}}
		default: // goto: abandon path analysis rather than guess
			return []outcome{{outTerm, st}}
		}
	case *ast.SendStmt:
		return []outcome{{outFall, w.scanExprs(st, s.Chan, s.Value)}}
	case *ast.IncDecStmt:
		return []outcome{{outFall, st}}
	case *ast.EmptyStmt:
		return []outcome{{outFall, st}}
	}
	return []outcome{{outFall, st}}
}

// simple runs a statement known not to branch (loop/if/switch inits) and
// returns the single fall-through state.
func (w *walker) simple(s ast.Stmt, st state) state {
	outs := w.walkStmt(s, st)
	for _, o := range outs {
		if o.kind == outFall {
			return o.st
		}
	}
	return st
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

// clauses walks switch/select case bodies. Unless the statement is
// exhaustive, the no-case-taken path falls through with the entry state.
func (w *walker) clauses(body *ast.BlockStmt, st state, exhaustive bool) []outcome {
	var res []outcome
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			st2 := w.scanExprs(st.clone(), cl.List...)
			res = append(res, w.walkList(cl.Body, st2)...)
		case *ast.CommClause:
			st2 := st.clone()
			if cl.Comm != nil {
				st2 = w.simple(cl.Comm, st2)
			}
			res = append(res, w.walkList(cl.Body, st2)...)
		}
	}
	if !exhaustive {
		res = append(res, outcome{outFall, st})
	}
	// break inside switch/select exits the statement, not a loop.
	for i, o := range res {
		if o.kind == outBreak {
			res[i].kind = outFall
		}
	}
	return mergeOutcomes(res)
}

func (w *walker) ifStmt(s *ast.IfStmt, st state) []outcome {
	if s.Init != nil {
		st = w.simple(s.Init, st)
	}
	st = w.scanExprs(st, s.Cond)
	thenSt, elseSt := w.applyGuard(st, s.Cond)
	res := w.walkList(s.Body.List, thenSt)
	if s.Else != nil {
		res = append(res, w.walkStmt(s.Else, elseSt)...)
	} else {
		res = append(res, outcome{outFall, elseSt})
	}
	return mergeOutcomes(res)
}

// applyGuard interprets `err != nil` / `err == nil` conditions for pins
// conditional on err: on the error side the pin never existed, on the nil
// side it is definitely held.
func (w *walker) applyGuard(st state, cond ast.Expr) (thenSt, elseSt state) {
	thenSt, elseSt = st.clone(), st.clone()
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	id := guardOperand(be)
	if id == nil {
		return
	}
	obj := w.obj(id)
	if obj == nil {
		return
	}
	for i := range st {
		if !st[i].conditional || st[i].errObj != obj {
			continue
		}
		if be.Op == token.NEQ { // err != nil: then = failed, else = held
			thenSt = removePinAt(thenSt, st[i].pos)
			elseSt = confirmPinAt(elseSt, st[i].pos)
		} else { // err == nil: then = held, else = failed
			thenSt = confirmPinAt(thenSt, st[i].pos)
			elseSt = removePinAt(elseSt, st[i].pos)
		}
	}
	return
}

func guardOperand(be *ast.BinaryExpr) *ast.Ident {
	if isNil(be.Y) {
		if id, ok := be.X.(*ast.Ident); ok {
			return id
		}
	}
	if isNil(be.X) {
		if id, ok := be.Y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func removePinAt(st state, pos token.Pos) state {
	out := st[:0:0]
	for _, p := range st {
		if p.pos != pos {
			out = append(out, p)
		}
	}
	return out
}

func confirmPinAt(st state, pos token.Pos) state {
	out := st.clone()
	for i := range out {
		if out[i].pos == pos {
			out[i].conditional = false
		}
	}
	return out
}

func (w *walker) forStmt(s *ast.ForStmt, st state) []outcome {
	if s.Init != nil {
		st = w.simple(s.Init, st)
	}
	st = w.scanExprs(st, s.Cond)
	body := w.walkList(s.Body.List, st.clone())
	var res []outcome
	for _, o := range body {
		switch o.kind {
		case outFall, outContinue:
			// Back edge: pins acquired inside the body must not survive
			// into the next iteration. Report once, then drop them so the
			// after-loop paths don't re-report the same acquisition.
			w.reportLoopLeaks(o.st, s.Body)
			if s.Cond != nil {
				res = append(res, outcome{outFall, dropBodyPins(o.st, s.Body)})
			}
		case outBreak:
			res = append(res, outcome{outFall, o.st})
		default:
			res = append(res, o)
		}
	}
	if s.Cond != nil {
		res = append(res, outcome{outFall, st}) // zero iterations
	}
	return mergeOutcomes(res)
}

func (w *walker) rangeStmt(s *ast.RangeStmt, st state) []outcome {
	st = w.scanExprs(st, s.X)
	body := w.walkList(s.Body.List, st.clone())
	var res []outcome
	for _, o := range body {
		switch o.kind {
		case outFall, outContinue:
			w.reportLoopLeaks(o.st, s.Body)
			res = append(res, outcome{outFall, dropBodyPins(o.st, s.Body)})
		case outBreak:
			res = append(res, outcome{outFall, o.st})
		default:
			res = append(res, o)
		}
	}
	res = append(res, outcome{outFall, st}) // zero iterations
	return mergeOutcomes(res)
}

// dropBodyPins removes pins acquired inside body: they were reported at
// the loop's back edge already.
func dropBodyPins(st state, body *ast.BlockStmt) state {
	out := st[:0:0]
	for _, p := range st {
		if p.pos > body.Lbrace && p.pos < body.Rbrace {
			continue
		}
		out = append(out, p)
	}
	return out
}

// assign processes one (possibly multi-value) assignment: releases and
// transfers in the RHS, overwrite/guard bookkeeping on the LHS, then pin
// acquisition if the RHS is a pinning call.
func (w *walker) assign(st state, lhs, rhs []ast.Expr, pos token.Pos) state {
	st = w.scanExprs(st, rhs...)

	// Aliasing: assigning the pin's *data* to another variable or field
	// hands the pin over (`prevID, prevData = id, data`, `it.data = data`).
	// Assigning the id alone is bookkeeping and keeps the obligation here.
	for _, r := range rhs {
		if id, ok := r.(*ast.Ident); ok {
			if obj := w.obj(id); obj != nil {
				st = w.dropOwned(st, obj)
			}
		}
	}

	var acq *ast.CallExpr
	if len(rhs) == 1 {
		if call, ok := rhs[0].(*ast.CallExpr); ok && w.isAcquire(call) {
			acq = call
		}
	}

	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.obj(id)
		if obj == nil {
			continue
		}
		for i := range st {
			if st[i].idObj == obj && !w.c.collect {
				w.report(pos, "pin leak: %s is overwritten while still pinned (fetched at line %d)",
					st[i].key, w.line(st[i].pos))
			}
		}
		st = removeByID(st, obj)
		// Reassigning the guard variable of a conditional pin severs the
		// guard: treat the pin as definitely held from here on.
		for i := range st {
			if st[i].conditional && st[i].errObj == obj {
				st[i].conditional = false
			}
		}
	}

	if acq != nil {
		if p, ok := w.acquiredPin(acq, lhs, pos); ok {
			st = append(st.clone(), p)
		}
	}
	return st
}

func removeByID(st state, obj types.Object) state {
	out := st[:0:0]
	for _, p := range st {
		if p.idObj != obj {
			out = append(out, p)
		}
	}
	return out
}

// dropOwned removes pins whose data variable is obj: the pinned bytes
// have been handed to another variable, field, or structure, which now
// carries the release obligation.
func (w *walker) dropOwned(st state, obj types.Object) state {
	out := st[:0:0]
	for _, p := range st {
		if p.dataObj != nil && p.dataObj == obj {
			continue
		}
		out = append(out, p)
	}
	return out
}

// acquiredPin builds the pin for an acquisition call assigned to lhs.
func (w *walker) acquiredPin(call *ast.CallExpr, lhs []ast.Expr, pos token.Pos) (pin, bool) {
	p := pin{conditional: true, pos: pos}
	switch {
	case analysis.IsMethodCall(w.c.pass.TypesInfo, call, "Pool", "FetchNew"):
		if len(lhs) != 3 {
			return p, false
		}
		p.key = types.ExprString(lhs[0])
		p.idObj = w.obj(lhs[0])
		p.dataObj = w.obj(lhs[1])
		p.errObj = w.obj(lhs[2])
	case analysis.IsMethodCall(w.c.pass.TypesInfo, call, "Pool", "Fetch"):
		if len(call.Args) != 1 || len(lhs) != 2 {
			return p, false
		}
		p.key = types.ExprString(call.Args[0])
		p.idObj = w.obj(call.Args[0])
		p.dataObj = w.obj(lhs[0])
		p.errObj = w.obj(lhs[1])
	default: // wrapper
		obj := w.calleeObj(call)
		idx, ok := w.c.wrappers[obj]
		if !ok || idx >= len(call.Args) || len(lhs) != 2 {
			return p, false
		}
		p.key = types.ExprString(call.Args[idx])
		p.idObj = w.obj(call.Args[idx])
		p.dataObj = w.obj(lhs[0])
		p.errObj = w.obj(lhs[1])
	}
	if p.errObj == nil {
		p.conditional = false
	}
	return p, true
}

// returnTransfers handles pins whose id or data is part of the returned
// results: the caller inherits them, and — when the id came in as a
// parameter — the function is recorded as a pin-returning wrapper.
func (w *walker) returnTransfers(st state, results []ast.Expr) state {
	// `return t.fetchStab(id)` style propagation.
	if w.c.collect && len(results) == 1 {
		if call, ok := results[0].(*ast.CallExpr); ok && w.isAcquire(call) {
			if arg := w.acquireIDArg(call); arg != nil {
				if idx, ok := w.params[w.obj(arg)]; ok {
					w.recordWrapper(idx)
				}
			}
		}
	}
	out := st[:0:0]
	for _, p := range st {
		transferred := false
		for _, r := range results {
			id, ok := r.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.obj(id)
			if obj == nil || (obj != p.dataObj && obj != p.idObj) {
				continue
			}
			transferred = true
			if w.c.collect && p.idObj != nil {
				if idx, ok := w.params[p.idObj]; ok {
					w.recordWrapper(idx)
				}
			}
		}
		if !transferred {
			out = append(out, p)
		}
	}
	return out
}

func (w *walker) recordWrapper(paramIdx int) {
	if w.fnObj == nil {
		return
	}
	if _, ok := w.c.wrappers[w.fnObj]; !ok {
		w.c.wrappers[w.fnObj] = paramIdx
		w.c.changed = true
	}
}

// deferred handles defer/go: a deferred release covers the pin for the
// rest of the function; a deferred closure releasing pins does the same;
// anything else taking the id transfers ownership.
func (w *walker) deferred(st state, call *ast.CallExpr) state {
	if w.isRelease(call) {
		return w.release(st, call.Args[0])
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && w.isRelease(c) {
				st = w.release(st, c.Args[0])
			}
			return true
		})
		return st
	}
	return w.scanExprs(st, call)
}

// scanExprs folds releases and ownership transfers found anywhere in the
// given expressions into st. Function-literal bodies are skipped: they
// run later (or never) and are analyzed as functions of their own.
func (w *walker) scanExprs(st state, exprs ...ast.Expr) state {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if w.isRelease(call) {
				st = w.release(st, call.Args[0])
				return true
			}
			// Type conversions read values; they transfer nothing.
			if tv, ok := w.c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return true
			}
			// Fetch-like calls don't consume an existing pin on the same
			// page (pin counts nest), and advisory calls never take one.
			if w.isAcquire(call) || w.isAdvisory(call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok {
					if obj := w.obj(id); obj != nil {
						st = removeByID(st, obj)
					}
				}
			}
			return true
		})
		// Storing the pinned *data* into a composite literal transfers
		// ownership (iterator construction keeps the page pinned across
		// Next calls). Storing the page *id* alone is bookkeeping — the
		// pin obligation stays with this function.
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, el := range cl.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				id, ok := el.(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.obj(id)
				if obj == nil {
					continue
				}
				out := st[:0:0]
				for _, p := range st {
					if p.dataObj != nil && p.dataObj == obj {
						continue
					}
					out = append(out, p)
				}
				st = out
			}
			return true
		})
	}
	return st
}

func (w *walker) release(st state, arg ast.Expr) state {
	obj := w.obj(arg)
	key := types.ExprString(arg)
	// Release the most recent matching pin (pin counts nest LIFO).
	for i := len(st) - 1; i >= 0; i-- {
		if (obj != nil && st[i].idObj == obj) || st[i].key == key {
			out := st.clone()
			return append(out[:i], out[i+1:]...)
		}
	}
	return st
}

// isAdvisory matches Pool methods that read page ids without assuming any
// pin obligation: pinless copies and readahead hints neither release nor
// take over a pin, so passing a pinned id to them is not an ownership
// transfer (a hint must never be mistaken for an Unpin).
func (w *walker) isAdvisory(call *ast.CallExpr) bool {
	info := w.c.pass.TypesInfo
	return analysis.IsMethodCall(info, call, "Pool", "FetchCopy") ||
		analysis.IsMethodCall(info, call, "Pool", "TryFetchCopy") ||
		analysis.IsMethodCall(info, call, "Pool", "Prefetch")
}

func (w *walker) isRelease(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	info := w.c.pass.TypesInfo
	return analysis.IsMethodCall(info, call, "Pool", "Unpin") ||
		analysis.IsMethodCall(info, call, "Pool", "Discard")
}

func (w *walker) isAcquire(call *ast.CallExpr) bool {
	info := w.c.pass.TypesInfo
	if analysis.IsMethodCall(info, call, "Pool", "Fetch") || analysis.IsMethodCall(info, call, "Pool", "FetchNew") {
		return true
	}
	_, ok := w.c.wrappers[w.calleeObj(call)]
	return ok
}

// acquireIDArg returns the page-id argument of an acquisition call, or
// nil (FetchNew mints its own id).
func (w *walker) acquireIDArg(call *ast.CallExpr) ast.Expr {
	info := w.c.pass.TypesInfo
	if analysis.IsMethodCall(info, call, "Pool", "Fetch") && len(call.Args) == 1 {
		return call.Args[0]
	}
	if idx, ok := w.c.wrappers[w.calleeObj(call)]; ok && idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

func (w *walker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return w.c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return w.c.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func (w *walker) callee(call *ast.CallExpr) (string, types.Object) {
	return analysis.CalleeName(call), w.calleeObj(call)
}

func (w *walker) obj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return w.c.pass.TypesInfo.Defs[id]
}

func (w *walker) reportLeaks(st state, at token.Pos) {
	if w.c.collect {
		return
	}
	for _, p := range st {
		w.report(at, "pin leak: %s fetched at line %d is still pinned on this return path", p.key, w.line(p.pos))
	}
}

func (w *walker) reportLoopLeaks(st state, body *ast.BlockStmt) {
	if w.c.collect {
		return
	}
	for _, p := range st {
		if p.pos > body.Lbrace && p.pos < body.Rbrace {
			w.report(p.pos, "pin leak: %s fetched at line %d is still pinned when the loop repeats", p.key, w.line(p.pos))
		}
	}
}

func (w *walker) report(at token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := strconv.Itoa(int(at)) + "|" + msg
	if w.c.reported[key] {
		return
	}
	w.c.reported[key] = true
	w.c.pass.Report(analysis.Diagnostic{Pos: at, Message: msg})
}

func (w *walker) line(pos token.Pos) int {
	return w.c.pass.Fset.Position(pos).Line
}
