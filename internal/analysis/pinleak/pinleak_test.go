package pinleak_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/pinleak"
)

func TestPinleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), pinleak.Analyzer, "a")
}
