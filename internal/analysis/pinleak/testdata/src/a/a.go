// Package a models the buffer-pool pinning protocol for the pinleak
// analyzer tests: a local Pool type with the real method shapes, plus
// positive (leaking) and negative (correctly released) functions.
package a

import "errors"

type PageID uint32

const invalid PageID = 0

var errShort = errors.New("short page")

type Pool struct{}

func (p *Pool) Fetch(id PageID) ([]byte, error)         { return nil, nil }
func (p *Pool) FetchNew() (PageID, []byte, error)       { return 0, nil, nil }
func (p *Pool) FetchCopy(id PageID, dst []byte) error   { return nil }
func (p *Pool) TryFetchCopy(id PageID, dst []byte) bool { return false }
func (p *Pool) Prefetch(ids ...PageID)                  {}
func (p *Pool) Unpin(id PageID, dirty bool) error       { return nil }
func (p *Pool) Discard(id PageID) error                 { return nil }

func use(b byte) {}

// ---- negative cases: every pin released on every path ----

func goodDeferDirect(p *Pool, id PageID) (byte, error) {
	data, err := p.Fetch(id)
	if err != nil {
		return 0, err
	}
	defer p.Unpin(id, false)
	return data[0], nil
}

func goodExplicitBothPaths(p *Pool, id PageID) error {
	data, err := p.Fetch(id)
	if err != nil {
		return err
	}
	if data[0] == 0 {
		return p.Unpin(id, false)
	}
	err = p.Unpin(id, true)
	return err
}

func goodFetchNewDeferLit(p *Pool) error {
	id, data, err := p.FetchNew()
	if err != nil {
		return err
	}
	data[0] = 1
	defer func() { p.Unpin(id, true) }()
	return nil
}

func goodDiscard(p *Pool, id PageID) error {
	_, err := p.Fetch(id)
	if err != nil {
		return err
	}
	return p.Discard(id)
}

// goodChain walks a page chain, releasing each page before advancing —
// the elemlist/stab-list idiom.
func goodChain(p *Pool, id PageID) error {
	for id != invalid {
		data, err := p.Fetch(id)
		if err != nil {
			return err
		}
		next := PageID(data[0])
		if err := p.Unpin(id, false); err != nil {
			return err
		}
		id = next
	}
	return nil
}

func goodLoopUnpin(p *Pool, ids []PageID) error {
	for _, id := range ids {
		data, err := p.Fetch(id)
		if err != nil {
			return err
		}
		use(data[0])
		if err := p.Unpin(id, true); err != nil {
			return err
		}
	}
	return nil
}

func park(p *Pool, id PageID) {}

// goodHandoff passes the pinned page id to a function that assumes
// ownership of the release.
func goodHandoff(p *Pool, id PageID) error {
	_, err := p.Fetch(id)
	if err != nil {
		return err
	}
	park(p, id)
	return nil
}

type pageIter struct {
	p    *Pool
	id   PageID
	data []byte
}

// goodIterator stores the pinned data in a returned structure; the
// iterator now owns the pin.
func goodIterator(p *Pool, id PageID) (*pageIter, error) {
	data, err := p.Fetch(id)
	if err != nil {
		return nil, err
	}
	return &pageIter{p: p, id: id, data: data}, nil
}

// fetchWrap returns pinned data to its caller, making it a pin-returning
// wrapper (like core's fetchStab): its own mid-function release paths are
// clean, and the terminal return transfers the pin out.
func fetchWrap(p *Pool, id PageID) ([]byte, error) {
	data, err := p.Fetch(id)
	if err != nil {
		return nil, err
	}
	if data[0] == 0 {
		p.Unpin(id, false)
		return nil, errShort
	}
	return data, nil
}

func goodWrapCaller(p *Pool, id PageID) error {
	data, err := fetchWrap(p, id)
	if err != nil {
		return err
	}
	use(data[0])
	return p.Unpin(id, false)
}

// goodReadaheadDescent mirrors core.Tree.PrefetchGE and the prefetcher's
// serve loop: residency probes (TryFetchCopy), pinless copies (FetchCopy),
// and published hints (Prefetch) create no pin obligation, so a function
// built only from them owes no releases on any path — prefetched pages are
// admitted unpinned and must not trip the net-pin ledger.
func goodReadaheadDescent(p *Pool, ids []PageID, buf []byte) error {
	id := ids[0]
	for range ids {
		if ok := p.TryFetchCopy(id, buf); !ok {
			break
		}
		id = PageID(buf[0])
	}
	p.Prefetch(id)
	for _, id := range ids[1:] {
		if err := p.FetchCopy(id, buf); err != nil {
			return err
		}
	}
	return nil
}

// goodPrefetchThenDemand: hinting a page and later demand-fetching it
// carries exactly one obligation — the demand pin, not the hint.
func goodPrefetchThenDemand(p *Pool, id PageID) (byte, error) {
	p.Prefetch(id)
	data, err := p.Fetch(id)
	if err != nil {
		return 0, err
	}
	defer p.Unpin(id, false)
	return data[0], nil
}

// badPrefetchDoesNotRelease: a hint is not a release — the demand pin from
// Fetch still leaks even though the same id was handed to Prefetch.
func badPrefetchDoesNotRelease(p *Pool, id PageID) error {
	_, err := p.Fetch(id)
	if err != nil {
		return err
	}
	p.Prefetch(id)
	return nil // want `pin leak: id fetched at line \d+ is still pinned on this return path`
}

//xrvet:pinleak-ignore exercised only by pool-draining tests
func ignored(p *Pool, id PageID) {
	p.Fetch(id)
}

// ---- positive cases: leaks the analyzer must report ----

// badEarlyReturn leaks on one of several returns (multi-return case).
func badEarlyReturn(p *Pool, id PageID, cond bool) error {
	_, err := p.Fetch(id)
	if err != nil {
		return err
	}
	if cond {
		return nil // want `pin leak: id fetched at line \d+ is still pinned on this return path`
	}
	return p.Unpin(id, false)
}

// badSecondFetch leaks the first pin on the second fetch's error path.
func badSecondFetch(p *Pool, a, b PageID) error {
	_, err := p.Fetch(a)
	if err != nil {
		return err
	}
	_, err = p.Fetch(b)
	if err != nil {
		return err // want `pin leak: a fetched at line \d+ is still pinned on this return path`
	}
	p.Unpin(b, false)
	return p.Unpin(a, false)
}

// badFetchNew leaks a freshly allocated page on one branch.
func badFetchNew(p *Pool, flag bool) error {
	id, data, err := p.FetchNew()
	if err != nil {
		return err
	}
	data[0] = 1
	if flag {
		return errShort // want `pin leak: id fetched at line \d+ is still pinned on this return path`
	}
	return p.Unpin(id, true)
}

// badLoop re-enters the loop with the iteration's pin still held.
func badLoop(p *Pool, ids []PageID) error {
	sum := 0
	for _, id := range ids {
		data, err := p.Fetch(id) // want `pin leak: id fetched at line \d+ is still pinned when the loop repeats`
		if err != nil {
			return err
		}
		sum += int(data[0])
	}
	_ = sum
	return nil
}

// badOverwrite loses the only handle to a pinned page.
func badOverwrite(p *Pool, id, next PageID) error {
	_, err := p.Fetch(id)
	if err != nil {
		return err
	}
	id = next // want `pin leak: id is overwritten while still pinned \(fetched at line \d+\)`
	return p.Unpin(id, false)
}

// badDiscarded drops the pinned result on the floor.
func badDiscarded(p *Pool, id PageID) {
	p.Fetch(id) // want `pin leak: pinned result of p.Fetch is discarded`
}

// badWrapCaller inherits the pin obligation from fetchWrap and drops it.
func badWrapCaller(p *Pool, id PageID) int {
	data, err := fetchWrap(p, id)
	if err != nil {
		return 0
	}
	return len(data) // want `pin leak: id fetched at line \d+ is still pinned on this return path`
}

// badSwitch leaks in one case clause of a switch.
func badSwitch(p *Pool, id PageID, k int) error {
	_, err := p.Fetch(id)
	if err != nil {
		return err
	}
	switch k {
	case 0:
		return nil // want `pin leak: id fetched at line \d+ is still pinned on this return path`
	}
	return p.Unpin(id, false)
}
