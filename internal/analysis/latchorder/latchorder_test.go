package latchorder_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/latchorder"
)

func TestLatchOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), latchorder.Analyzer, "a")
}
