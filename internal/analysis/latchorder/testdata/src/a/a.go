// Package a models the repo's seven lock classes for the latchorder
// analyzer tests: Tree.wlatch (level 1), Pool.ckptGate (level 2),
// Tree.pl page latches (level 3, LockRight coupling), shard.mu
// (level 4), Pool.seriesMu (level 5), shardState.mu (level 6), and
// Prober.mu (level 7), with methods matching the summarized names.
package a

import "sync"

type Pool struct {
	ckptGate sync.RWMutex
	seriesMu sync.Mutex
}

func (p *Pool) Fetch(id uint32) ([]byte, error)         { return nil, nil }
func (p *Pool) Unpin(id uint32, dirty bool) error       { return nil }
func (p *Pool) Prefetch(ids ...uint32)                  {}
func (p *Pool) TryFetchCopy(id uint32, dst []byte) bool { return false }
func (p *Pool) Close()                                  {}
func (p *Pool) CommitTx(tx any) error                   { return nil }
func (p *Pool) FlushAll() error                         { return nil }

type shard struct {
	mu sync.Mutex
}

// Table stands in for platch.Table: per-page latches addressed by page
// ID, with the LockRight spelling for B-link coupling acquisitions.
type Table struct{}

func (t *Table) Lock(id uint32)          {}
func (t *Table) LockRight(id uint32)     {}
func (t *Table) Unlock(id uint32)        {}
func (t *Table) RLock(id uint32)         {}
func (t *Table) TryRLock(id uint32) bool { return true }
func (t *Table) RUnlock(id uint32)       {}

type Tree struct {
	wlatch sync.Mutex
	pl     *Table
	pool   *Pool
	s      *shard
}

func (t *Tree) Insert(k int)        {}
func (t *Tree) Lookup(k uint32)     {}
func (t *Tree) PrefetchGE(k uint32) {}

type shardState struct {
	mu sync.Mutex
}

type Prober struct {
	mu sync.Mutex
}

func (p *Prober) Up(name string) bool { return true }

// ---- negative cases: acquisitions in increasing level order ----

func goodOrder(t *Tree) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	t.pool.Fetch(1) // wlatch (1) then pool shard (4): ok
}

func goodSeriesLast(t *Tree) {
	t.wlatch.Lock()
	t.s.mu.Lock()
	t.pool.seriesMu.Lock()
	t.pool.seriesMu.Unlock()
	t.s.mu.Unlock()
	t.wlatch.Unlock()
}

func goodSequential(t *Tree) {
	t.wlatch.Lock()
	t.wlatch.Unlock()
	t.wlatch.Lock() // first latch released: not nested
	t.wlatch.Unlock()
}

func goodBranchRelease(t *Tree, cond bool) {
	t.wlatch.Lock()
	if cond {
		t.wlatch.Unlock()
		return
	}
	t.pool.Fetch(1)
	t.wlatch.Unlock()
}

func goodGoroutine(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	go func() {
		t.wlatch.Lock() // fresh goroutine: empty held set
		t.wlatch.Unlock()
	}()
}

// goodWriterBracket mirrors a B-link mutation: wlatch for the whole
// operation, an exclusive page latch around the one reader-visible
// write, the pool fetch (4) under that latch.
func goodWriterBracket(t *Tree) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	t.pl.Lock(7)
	t.pool.Fetch(7)
	t.pl.Unlock(7)
}

// goodLatchCoupling mirrors rebalancePair: parent first, then the two
// children left-to-right — the second and third page latches go through
// LockRight, making the rightward/downward direction auditable.
func goodLatchCoupling(t *Tree) {
	t.pl.Lock(1)
	t.pl.LockRight(2)
	t.pl.LockRight(3)
	t.pl.Unlock(3)
	t.pl.Unlock(2)
	t.pl.Unlock(1)
}

// goodReaderHop mirrors a B-link descent: one shared page latch at a
// time, released before the next is taken.
func goodReaderHop(t *Tree) {
	t.pl.RLock(1)
	t.pl.RUnlock(1)
	t.pl.RLock(2)
	t.pl.RUnlock(2)
}

// goodTryReaderProbe mirrors PrefetchGE: an advisory residency probe
// under a shared page latch taken with TryRLock.
func goodTryReaderProbe(t *Tree, buf []byte) {
	if !t.pl.TryRLock(5) {
		return
	}
	t.pool.TryFetchCopy(5, buf)
	t.pool.Prefetch(6)
	t.pl.RUnlock(5)
}

// goodCommitUnderLatch mirrors the WAL protocol: a mutation holds
// wlatch for its whole transaction and commits under it — the gate (2)
// nests inside wlatch (1).
func goodCommitUnderLatch(t *Tree) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	t.pool.CommitTx(nil)
}

// goodCheckpointShape mirrors Pool.Checkpoint: the gate's write side via
// TryLock, then the shard-level flush under it.
func goodCheckpointShape(p *Pool) {
	if !p.ckptGate.TryLock() {
		return
	}
	defer p.ckptGate.Unlock()
	p.FlushAll()
}

//xrvet:latchorder-ignore deliberate inversion exercised under test
func ignoredInversion(t *Tree) {
	t.s.mu.Lock()
	t.wlatch.Lock()
	t.wlatch.Unlock()
	t.s.mu.Unlock()
}

// ---- positive cases: order violations ----

func badPoolUnderShard(t *Tree) {
	t.s.mu.Lock()
	t.pool.Fetch(1) // want `latch order violation: calling t.pool.Fetch \(acquires level 4\) while holding t.s.mu \(level 4\)`
	t.s.mu.Unlock()
}

func badLatchUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.wlatch.Lock() // want `latch order violation: acquiring t.wlatch \(level 1\) while holding t.s.mu \(level 4\)`
	t.wlatch.Unlock()
}

func badRecursiveLatch(t *Tree) {
	t.wlatch.Lock()
	t.wlatch.Lock() // want `latch order violation: acquiring t.wlatch \(level 1\) while holding t.wlatch \(level 1\)`
	t.wlatch.Unlock()
	t.wlatch.Unlock()
}

func badSeriesFirst(t *Tree) {
	t.pool.seriesMu.Lock()
	t.s.mu.Lock() // want `latch order violation: acquiring t.s.mu \(level 4\) while holding t.pool.seriesMu \(level 5\)`
	t.s.mu.Unlock()
	t.pool.seriesMu.Unlock()
}

// badSecondPageLatchPlain couples two page latches with a plain Lock:
// nothing marks the direction, so it is indistinguishable from a
// left-or-upward acquisition that deadlocks against a writer coupling
// rightward.
func badSecondPageLatchPlain(t *Tree) {
	t.pl.Lock(1)
	t.pl.Lock(2) // want `latch order violation: acquiring page latch t.pl\(2\) while holding t.pl\(1\); a second page latch must be taken with LockRight`
	t.pl.Unlock(2)
	t.pl.Unlock(1)
}

// badSecondPageLatchShared is the same mistake on the read side — a
// descent must release before hopping, never hold two shared latches.
func badSecondPageLatchShared(t *Tree) {
	t.pl.RLock(1)
	t.pl.RLock(2) // want `latch order violation: acquiring page latch t.pl\(2\) while holding t.pl\(1\); a second page latch must be taken with LockRight`
	t.pl.RUnlock(2)
	t.pl.RUnlock(1)
}

// badPageLatchUnderShard takes a page latch under a pool shard mutex:
// the fetch inside the latched region would re-enter the shard.
func badPageLatchUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pl.Lock(1) // want `latch order violation: acquiring t.pl\(1\) \(level 3\) while holding t.s.mu \(level 4\)`
	t.pl.Unlock(1)
}

// badLockRightUnderShard: LockRight only licenses same-level coupling;
// it does not excuse acquiring below a higher held level.
func badLockRightUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pl.LockRight(1) // want `latch order violation: acquiring t.pl\(1\) \(level 3\) while holding t.s.mu \(level 4\)`
	t.pl.Unlock(1)
}

// badWlatchUnderPageLatch reaches back up to the writer mutex while a
// page latch is held — the shape of calling the exact-answer fallback
// from inside a latched probe.
func badWlatchUnderPageLatch(t *Tree) {
	t.pl.RLock(1)
	t.wlatch.Lock() // want `latch order violation: acquiring t.wlatch \(level 1\) while holding t.pl\(1\) \(level 3\)`
	t.wlatch.Unlock()
	t.pl.RUnlock(1)
}

// badReaderReentry re-enters a page-latching read entry point while a
// page latch is held — self-deadlock if the descent reaches the same
// page.
func badReaderReentry(t, u *Tree) {
	t.pl.RLock(1)
	u.Lookup(7) // want `latch order violation: calling u.Lookup \(acquires level 3\) while holding t.pl\(1\) \(level 3\)`
	t.pl.RUnlock(1)
}

// badGateUnderShard inverts the PR 7 commit protocol: the checkpoint
// gate (2) must be taken before any shard mutex (4), the way CommitTx
// does, never under one.
func badGateUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pool.ckptGate.RLock() // want `latch order violation: acquiring t.pool.ckptGate \(level 2\) while holding t.s.mu \(level 4\)`
	t.pool.ckptGate.RUnlock()
}

// badTryGateUnderShard is the same inversion through TryLock — trying
// out of order is still ordered wrong.
func badTryGateUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.pool.ckptGate.TryLock() { // want `latch order violation: acquiring t.pool.ckptGate \(level 2\) while holding t.s.mu \(level 4\)`
		t.pool.ckptGate.Unlock()
	}
}

// badCommitUnderSeries commits while holding the series mutex (5): the
// commit takes the gate (2) and shard mutexes (4) internally.
func badCommitUnderSeries(t *Tree) {
	t.pool.seriesMu.Lock()
	defer t.pool.seriesMu.Unlock()
	t.pool.CommitTx(nil) // want `latch order violation: calling t.pool.CommitTx \(acquires level 2\) while holding t.pool.seriesMu \(level 5\)`
}

// badNestedTreeOp re-enters a wlatch entry point while write-latched —
// the self-deadlock shape CheckInvariants-under-wlatch would have.
func badNestedTreeOp(t, u *Tree) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	u.Insert(1) // want `latch order violation: calling u.Insert \(acquires level 1\) while holding t.wlatch \(level 1\)`
}

// badPrefetchUnderShard publishes a readahead hint while holding a shard
// mutex: the hint's consumer locks shards, so the order check treats
// Prefetch as a shard-level acquisition.
func badPrefetchUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pool.Prefetch(1) // want `latch order violation: calling t.pool.Prefetch \(acquires level 4\) while holding t.s.mu \(level 4\)`
}

// badCloseUnderShard joins the prefetch workers while holding a shard
// mutex — a worker blocked on that same shard would never exit.
func badCloseUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pool.Close() // want `latch order violation: calling t.pool.Close \(acquires level 4\) while holding t.s.mu \(level 4\)`
}

// lockHelper gives the fixpoint a same-package summary to propagate.
func lockHelper(t *Tree) {
	t.wlatch.Lock()
	t.wlatch.Unlock()
}

func badCallsHelperUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	lockHelper(t) // want `latch order violation: calling lockHelper \(acquires level 1\) while holding t.s.mu \(level 4\)`
}

// rightHelper couples rightward only: its fixpoint summary is marked
// right-only, so calling it under a held page latch is legal — the
// shape of a rebalance helper doing a merge's prev-pointer fix.
func rightHelper(t *Tree) {
	t.pl.LockRight(8)
	t.pl.Unlock(8)
}

func goodCallsRightHelperLatched(t *Tree) {
	t.pl.Lock(1)
	defer t.pl.Unlock(1)
	rightHelper(t)
}

// latchHelper summarizes to the page-latch level through the fixpoint.
func latchHelper(t *Tree) {
	t.pl.RLock(9)
	t.pl.RUnlock(9)
}

func badCallsLatchHelperLatched(t *Tree) {
	t.pl.Lock(1)
	defer t.pl.Unlock(1)
	latchHelper(t) // want `latch order violation: calling latchHelper \(acquires level 3\) while holding t.pl\(1\) \(level 3\)`
}

func badGoroutineBody(t *Tree) {
	go func() {
		t.s.mu.Lock()
		t.wlatch.Lock() // want `latch order violation: acquiring t.wlatch \(level 1\) while holding t.s.mu \(level 4\)`
		t.wlatch.Unlock()
		t.s.mu.Unlock()
	}()
}

// ---- cluster lock classes (PR 8): router-side leaves ----

func goodProberUnderInventory(st *shardState, pr *Prober) {
	st.mu.Lock()
	defer st.mu.Unlock()
	pr.Up("s0") // shard state (6) then prober (7): ok
}

func badInventoryUnderProber(st *shardState, pr *Prober) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	st.mu.Lock() // want `latch order violation: acquiring st.mu \(level 6\) while holding pr.mu \(level 7\)`
	st.mu.Unlock()
}

// badPoolUnderProber: cluster locks are leaves above every storage lock;
// reaching back into the pool while holding one is ordered wrong.
func badPoolUnderProber(pr *Prober, p *Pool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	p.Fetch(1) // want `latch order violation: calling p.Fetch \(acquires level 4\) while holding pr.mu \(level 7\)`
}
