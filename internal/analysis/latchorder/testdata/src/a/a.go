// Package a models the repo's six lock classes for the latchorder
// analyzer tests: Tree.latch (level 1), Pool.ckptGate (level 2),
// shard.mu (level 3), Pool.seriesMu (level 4), shardState.mu (level 5),
// and Prober.mu (level 6), with methods matching the summarized names.
package a

import "sync"

type Pool struct {
	ckptGate sync.RWMutex
	seriesMu sync.Mutex
}

func (p *Pool) Fetch(id uint32) ([]byte, error)         { return nil, nil }
func (p *Pool) Unpin(id uint32, dirty bool) error       { return nil }
func (p *Pool) Prefetch(ids ...uint32)                  {}
func (p *Pool) TryFetchCopy(id uint32, dst []byte) bool { return false }
func (p *Pool) Close()                                  {}
func (p *Pool) CommitTx(tx any) error                   { return nil }
func (p *Pool) FlushAll() error                         { return nil }

type shard struct {
	mu sync.Mutex
}

type Tree struct {
	latch sync.RWMutex
	pool  *Pool
	s     *shard
}

func (t *Tree) Insert(k int)        {}
func (t *Tree) PrefetchGE(k uint32) {}

type shardState struct {
	mu sync.Mutex
}

type Prober struct {
	mu sync.Mutex
}

func (p *Prober) Up(name string) bool { return true }

// ---- negative cases: acquisitions in increasing level order ----

func goodOrder(t *Tree) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	t.pool.Fetch(1) // latch (1) then pool shard (3): ok
}

func goodSeriesLast(t *Tree) {
	t.latch.RLock()
	t.s.mu.Lock()
	t.pool.seriesMu.Lock()
	t.pool.seriesMu.Unlock()
	t.s.mu.Unlock()
	t.latch.RUnlock()
}

func goodSequential(t *Tree) {
	t.latch.RLock()
	t.latch.RUnlock()
	t.latch.Lock() // first latch released: not nested
	t.latch.Unlock()
}

func goodBranchRelease(t *Tree, cond bool) {
	t.latch.Lock()
	if cond {
		t.latch.Unlock()
		return
	}
	t.pool.Fetch(1)
	t.latch.Unlock()
}

func goodGoroutine(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	go func() {
		t.latch.RLock() // fresh goroutine: empty held set
		t.latch.RUnlock()
	}()
}

// goodPrefetchUnderLatch mirrors core.Tree.PrefetchGE: an advisory
// readahead descent holds the tree latch (1) while probing residency and
// publishing hints (3) — increasing order, allowed.
func goodPrefetchUnderLatch(t *Tree, buf []byte) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	t.pool.TryFetchCopy(1, buf)
	t.pool.Prefetch(2)
}

// goodCommitUnderLatch mirrors the WAL protocol: a mutation holds the
// tree latch for its whole transaction and commits under it — the gate
// (2) nests inside the latch (1).
func goodCommitUnderLatch(t *Tree) {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.pool.CommitTx(nil)
}

// goodCheckpointShape mirrors Pool.Checkpoint: the gate's write side via
// TryLock, then the shard-level flush under it.
func goodCheckpointShape(p *Pool) {
	if !p.ckptGate.TryLock() {
		return
	}
	defer p.ckptGate.Unlock()
	p.FlushAll()
}

//xrvet:latchorder-ignore deliberate inversion exercised under test
func ignoredInversion(t *Tree) {
	t.s.mu.Lock()
	t.latch.RLock()
	t.latch.RUnlock()
	t.s.mu.Unlock()
}

// ---- positive cases: order violations ----

func badPoolUnderShard(t *Tree) {
	t.s.mu.Lock()
	t.pool.Fetch(1) // want `latch order violation: calling t.pool.Fetch \(acquires level 3\) while holding t.s.mu \(level 3\)`
	t.s.mu.Unlock()
}

func badLatchUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.latch.RLock() // want `latch order violation: acquiring t.latch \(level 1\) while holding t.s.mu \(level 3\)`
	t.latch.RUnlock()
}

func badRecursiveLatch(t *Tree) {
	t.latch.RLock()
	t.latch.RLock() // want `latch order violation: acquiring t.latch \(level 1\) while holding t.latch \(level 1\)`
	t.latch.RUnlock()
	t.latch.RUnlock()
}

func badSeriesFirst(t *Tree) {
	t.pool.seriesMu.Lock()
	t.s.mu.Lock() // want `latch order violation: acquiring t.s.mu \(level 3\) while holding t.pool.seriesMu \(level 4\)`
	t.s.mu.Unlock()
	t.pool.seriesMu.Unlock()
}

// badGateUnderShard inverts the PR 7 commit protocol: the checkpoint
// gate (2) must be taken before any shard mutex (3), the way CommitTx
// does, never under one.
func badGateUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pool.ckptGate.RLock() // want `latch order violation: acquiring t.pool.ckptGate \(level 2\) while holding t.s.mu \(level 3\)`
	t.pool.ckptGate.RUnlock()
}

// badTryGateUnderShard is the same inversion through TryLock — trying
// out of order is still ordered wrong.
func badTryGateUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.pool.ckptGate.TryLock() { // want `latch order violation: acquiring t.pool.ckptGate \(level 2\) while holding t.s.mu \(level 3\)`
		t.pool.ckptGate.Unlock()
	}
}

// badCommitUnderSeries commits while holding the series mutex (4): the
// commit takes the gate (2) and shard mutexes (3) internally.
func badCommitUnderSeries(t *Tree) {
	t.pool.seriesMu.Lock()
	defer t.pool.seriesMu.Unlock()
	t.pool.CommitTx(nil) // want `latch order violation: calling t.pool.CommitTx \(acquires level 2\) while holding t.pool.seriesMu \(level 4\)`
}

// badNestedTreeOp re-enters a latching entry point while latched — the
// self-deadlock shape CheckInvariants-under-write-latch would have.
func badNestedTreeOp(t, u *Tree) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	u.Insert(1) // want `latch order violation: calling u.Insert \(acquires level 1\) while holding t.latch \(level 1\)`
}

// badPrefetchUnderShard publishes a readahead hint while holding a shard
// mutex: the hint's consumer locks shards, so the order check treats
// Prefetch as a shard-level acquisition.
func badPrefetchUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pool.Prefetch(1) // want `latch order violation: calling t.pool.Prefetch \(acquires level 3\) while holding t.s.mu \(level 3\)`
}

// badCloseUnderShard joins the prefetch workers while holding a shard
// mutex — a worker blocked on that same shard would never exit.
func badCloseUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	t.pool.Close() // want `latch order violation: calling t.pool.Close \(acquires level 3\) while holding t.s.mu \(level 3\)`
}

// badPrefetchGEUnderLatch re-enters the latching advisory descent while
// already latched — the same self-deadlock shape as badNestedTreeOp.
func badPrefetchGEUnderLatch(t, u *Tree) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	u.PrefetchGE(7) // want `latch order violation: calling u.PrefetchGE \(acquires level 1\) while holding t.latch \(level 1\)`
}

// lockHelper gives the fixpoint a same-package summary to propagate.
func lockHelper(t *Tree) {
	t.latch.Lock()
	t.latch.Unlock()
}

func badCallsHelperUnderShard(t *Tree) {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	lockHelper(t) // want `latch order violation: calling lockHelper \(acquires level 1\) while holding t.s.mu \(level 3\)`
}

func badGoroutineBody(t *Tree) {
	go func() {
		t.s.mu.Lock()
		t.latch.RLock() // want `latch order violation: acquiring t.latch \(level 1\) while holding t.s.mu \(level 3\)`
		t.latch.RUnlock()
		t.s.mu.Unlock()
	}()
}

// ---- cluster lock classes (PR 8): router-side leaves ----

func goodProberUnderInventory(st *shardState, pr *Prober) {
	st.mu.Lock()
	defer st.mu.Unlock()
	pr.Up("s0") // shard state (5) then prober (6): ok
}

func badInventoryUnderProber(st *shardState, pr *Prober) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	st.mu.Lock() // want `latch order violation: acquiring st.mu \(level 5\) while holding pr.mu \(level 6\)`
	st.mu.Unlock()
}

// badPoolUnderProber: cluster locks are leaves above every storage lock;
// reaching back into the pool while holding one is ordered wrong.
func badPoolUnderProber(pr *Prober, p *Pool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	p.Fetch(1) // want `latch order violation: calling p.Fetch \(acquires level 3\) while holding pr.mu \(level 6\)`
}
