// Package latchorder enforces the repo's lock-acquisition order. The
// concurrency design (PRs 2, 7, 8) layers six lock classes:
//
//	level 1: Tree.latch      — btree/core tree latch (RWMutex)
//	level 2: Pool.ckptGate   — WAL checkpoint gate (RWMutex, PR 7)
//	level 3: shard.mu        — buffer-pool shard mutexes
//	level 4: Pool.seriesMu   — buffer-pool series/stats mutex
//	level 5: shardState.mu   — cluster coordinator inventory mutex (PR 8)
//	level 6: Prober.mu       — cluster health prober mutex (PR 8)
//
// A goroutine may only acquire locks in strictly increasing level order.
// Mutations hold the tree latch across the whole transaction and commit
// takes the checkpoint gate's read side under it (CommitTx, BeginUnlogged
// under BulkLoad), then per-shard mutexes, then the series mutex; the
// cluster locks are router-side leaves never nested with pool locks or
// each other. Acquiring a lock at a level at or below one already held —
// including a second lock of the same class, which neither the sharded
// pool nor the coordinator ever nests — risks deadlock with a writer
// queued on the RWMutex or with another goroutine locking in the
// documented order.
//
// The check is lexical and branch-aware within one function: it tracks
// locks acquired via x.Lock()/x.RLock()/x.TryLock()/x.TryRLock() on
// classified fields (releases via Unlock/RUnlock and defers understood)
// and flags both direct acquisitions and calls to methods that are known
// to acquire a level (Pool.Fetch acquires a shard, Tree.Insert acquires
// the latch, Pool.CommitTx the checkpoint gate, and so on). Same-package
// helpers inherit summaries from the locks their bodies acquire,
// propagated to a fixpoint through same-package calls.
// `//xrvet:latchorder-ignore` on a function declaration suppresses the
// check for that function.
package latchorder

import (
	"go/ast"
	"go/types"

	"xrtree/internal/analysis"
)

// Analyzer is the latchorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "latchorder",
	Doc:  "enforce tree-latch → ckpt-gate → pool-shard → pool-series → cluster lock acquisition order",
	Run:  run,
}

// lockClasses maps (receiver type name, field name) of a mutex field to
// its level.
var lockClasses = map[[2]string]int{
	{"Tree", "latch"}:    1,
	{"Pool", "ckptGate"}: 2,
	{"shard", "mu"}:      3,
	{"Pool", "seriesMu"}: 4,
	{"shardState", "mu"}: 5,
	{"Prober", "mu"}:     6,
}

// methodLevels summarizes exported entry points of other packages: the
// lowest lock level the method acquires internally. Matching is by
// receiver type name, so btree.Tree and core.Tree share the Tree rows.
var methodLevels = map[[2]string]int{
	{"Tree", "Insert"}: 1, {"Tree", "Delete"}: 1, {"Tree", "BulkLoad"}: 1,
	{"Tree", "Lookup"}: 1, {"Tree", "SeekGE"}: 1, {"Tree", "Scan"}: 1,
	{"Tree", "Range"}: 1, {"Tree", "FindAncestors"}: 1,
	{"Tree", "AppendAncestors"}: 1, {"Tree", "FindDescendants"}: 1,
	{"Tree", "FindChildren"}: 1, {"Tree", "FindParent"}: 1,
	{"Tree", "CheckInvariants"}: 1, {"Tree", "PrefetchGE"}: 1,
	// The WAL protocol methods take the checkpoint gate: commits and
	// unlogged bulk builds on the read side, checkpoints on the write side.
	{"Pool", "CommitTx"}: 2, {"Pool", "BeginUnlogged"}: 2,
	{"Pool", "Checkpoint"}: 2, {"Pool", "CheckpointWait"}: 2,
	{"Pool", "Fetch"}: 3, {"Pool", "FetchTraced"}: 3,
	{"Pool", "FetchCopy"}: 3, {"Pool", "FetchCopyTraced"}: 3,
	{"Pool", "FetchNew"}:  3,
	{"Pool", "FetchHeld"}: 3, {"Pool", "FetchHeldTraced"}: 3,
	{"Pool", "FetchNewHeld"}: 3, {"Pool", "UnpinTx"}: 3,
	{"Pool", "DiscardTx"}: 3, {"Pool", "FreeTx"}: 3,
	{"Pool", "Unpin"}: 3, {"Pool", "Discard"}: 3, {"Pool", "FlushAll"}: 3,
	{"Pool", "DropClean"}: 3, {"Pool", "PinnedCount"}: 3,
	// TryFetchCopy locks the target shard like any fetch. Prefetch only
	// enqueues, but its hints are consumed by workers that lock shards, and
	// Close joins those workers — treating both as level 3 forbids hinting
	// or shutting down the prefetcher while a shard mutex is held (Close
	// would deadlock outright against a worker blocked on that shard).
	{"Pool", "TryFetchCopy"}: 3, {"Pool", "Prefetch"}: 3, {"Pool", "Close"}: 3,
	{"Pool", "EnableHitRateSeries"}: 4, {"Pool", "HitRateSeries"}: 4,
	// Cluster router-side leaves: the coordinator's per-shard inventory
	// mutex and the health prober's state mutex. Prober.Start spawns the
	// probe loop and Close joins it, so both count as acquisitions — Close
	// while holding the mutex would deadlock against the loop.
	{"Coordinator", "Gather"}: 5, {"Coordinator", "Status"}: 5,
	{"Coordinator", "Backends"}: 5,
	{"Prober", "Up"}:            6, {"Prober", "Observe"}: 6,
	{"Prober", "Start"}: 6, {"Prober", "Close"}: 6,
}

const orderDoc = "required order: tree latch (1) → ckpt gate (2) → pool shard (3) → pool series (4) → cluster shard state (5) → prober (6)"

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		summaries: map[types.Object]int{},
		ignore:    analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:latchorder-ignore"),
	}
	// Fixpoint: derive a lock-level summary for every same-package
	// function from the locks its body acquires and the summaries of the
	// functions it calls.
	for {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				lvl := c.bodyMinLevel(fn.Body)
				obj := pass.TypesInfo.Defs[fn.Name]
				if obj == nil || lvl == 0 {
					continue
				}
				if old, ok := c.summaries[obj]; !ok || lvl < old {
					c.summaries[obj] = lvl
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || analysis.Annotated(pass.Fset, c.ignore, fn.Pos()) {
				continue
			}
			// The function that *implements* a lock acquisition is where
			// the classified Lock call lives; it is checked like any
			// other, which also validates the pool's own internals.
			c.walk(fn.Body.List, nil)
		}
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	summaries map[types.Object]int
	ignore    map[analysis.LineKey]string
}

// held is one lock currently held at this program point.
type held struct {
	level int
	key   string // source text of the lock expression, e.g. "t.latch"
}

// bodyMinLevel returns the lowest level fn's body acquires directly or
// through already-summarized same-package calls (0 = none).
func (c *checker) bodyMinLevel(body *ast.BlockStmt) int {
	min := 0
	record := func(lvl int) {
		if lvl != 0 && (min == 0 || lvl < min) {
			min = lvl
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, _ := c.lockCall(call); lock != nil {
			record(lock.level)
		}
		record(c.callLevel(call))
		return true
	})
	return min
}

// lockCall classifies call as Lock/RLock (acquire=true) or
// Unlock/RUnlock (acquire=false) on a classified mutex field.
func (c *checker) lockCall(call *ast.CallExpr) (*held, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	var acquire bool
	switch sel.Sel.Name {
	// TryLock/TryRLock are acquisitions for ordering purposes: on the
	// success branch the lock is held, and even attempting one out of
	// order means the code was written against the wrong level.
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false
	}
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	recv := analysis.NamedType(c.pass.TypesInfo.TypeOf(fieldSel.X))
	if recv == nil {
		return nil, false
	}
	lvl, ok := lockClasses[[2]string{recv.Obj().Name(), fieldSel.Sel.Name}]
	if !ok {
		return nil, false
	}
	return &held{level: lvl, key: types.ExprString(sel.X)}, acquire
}

// callLevel returns the summarized lock level call acquires (0 = none).
func (c *checker) callLevel(call *ast.CallExpr) int {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recv := analysis.NamedType(c.pass.TypesInfo.TypeOf(sel.X)); recv != nil {
			if lvl, ok := methodLevels[[2]string{recv.Obj().Name(), sel.Sel.Name}]; ok {
				return lvl
			}
		}
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	if lvl, ok := c.summaries[obj]; ok {
		return lvl
	}
	return 0
}

// walk processes a statement list with the current held set, recursing
// into branches with copies. The returned set is the held set at normal
// fall-through, taking the intersection across branch exits.
func (c *checker) walk(stmts []ast.Stmt, hs []held) []held {
	for _, s := range stmts {
		hs = c.stmt(s, hs)
	}
	return hs
}

func (c *checker) stmt(s ast.Stmt, hs []held) []held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.expr(s.X, hs)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			hs = c.expr(e, hs)
		}
		return hs
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			hs = c.expr(e, hs)
		}
		return hs
	case *ast.DeferStmt:
		// A deferred unlock runs at exit: the lock stays held for the
		// remainder of the body, which is exactly what hs models, so a
		// deferred release changes nothing. Deferred acquisitions or
		// level-acquiring calls are checked against the current set.
		if lock, acquire := c.lockCall(s.Call); lock != nil && !acquire {
			return hs
		}
		return c.expr(s.Call, hs)
	case *ast.GoStmt:
		// The goroutine starts with an empty held set; only the argument
		// expressions are evaluated at the go statement itself.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walk(lit.Body.List, nil)
		}
		for _, a := range s.Call.Args {
			hs = c.expr(a, hs)
		}
		return hs
	case *ast.IfStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		hs = c.expr(s.Cond, hs)
		thenOut := c.walk(s.Body.List, clone(hs))
		elseOut := clone(hs)
		if s.Else != nil {
			elseOut = c.stmt(s.Else, elseOut)
		}
		return intersect(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		hs = c.expr(s.Cond, hs)
		c.walk(s.Body.List, clone(hs))
		return hs
	case *ast.RangeStmt:
		hs = c.expr(s.X, hs)
		c.walk(s.Body.List, clone(hs))
		return hs
	case *ast.SwitchStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		hs = c.expr(s.Tag, hs)
		c.walkClauses(s.Body, hs)
		return hs
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		c.walkClauses(s.Body, hs)
		return hs
	case *ast.SelectStmt:
		c.walkClauses(s.Body, hs)
		return hs
	case *ast.BlockStmt:
		return c.walk(s.List, hs)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, hs)
	case *ast.SendStmt:
		hs = c.expr(s.Chan, hs)
		return c.expr(s.Value, hs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						hs = c.expr(v, hs)
					}
				}
			}
		}
		return hs
	}
	return hs
}

func (c *checker) walkClauses(body *ast.BlockStmt, hs []held) {
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			c.walk(cl.Body, clone(hs))
		case *ast.CommClause:
			sub := clone(hs)
			if cl.Comm != nil {
				sub = c.stmt(cl.Comm, sub)
			}
			c.walk(cl.Body, sub)
		}
	}
}

// expr scans one expression for lock operations and level-acquiring
// calls, in evaluation order (good enough lexically), skipping function
// literals — those are separate goroutine/deferred bodies checked on
// their own with an empty held set.
func (c *checker) expr(e ast.Expr, hs []held) []held {
	if e == nil {
		return hs
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walk(lit.Body.List, nil)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, acquire := c.lockCall(call); lock != nil {
			if acquire {
				c.checkAcquire(call, *lock, hs)
				hs = append(clone(hs), *lock)
			} else {
				hs = release(hs, lock.key)
			}
			return true
		}
		if lvl := c.callLevel(call); lvl != 0 {
			for _, h := range hs {
				if h.level >= lvl {
					c.pass.Reportf(call.Pos(),
						"latch order violation: calling %s (acquires level %d) while holding %s (level %d); %s",
						types.ExprString(call.Fun), lvl, h.key, h.level, orderDoc)
				}
			}
		}
		return true
	})
	return hs
}

func (c *checker) checkAcquire(call *ast.CallExpr, lock held, hs []held) {
	for _, h := range hs {
		if h.level >= lock.level {
			c.pass.Reportf(call.Pos(),
				"latch order violation: acquiring %s (level %d) while holding %s (level %d); %s",
				lock.key, lock.level, h.key, h.level, orderDoc)
		}
	}
}

func clone(hs []held) []held {
	out := make([]held, len(hs))
	copy(out, hs)
	return out
}

func release(hs []held, key string) []held {
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].key == key {
			out := clone(hs)
			return append(out[:i], out[i+1:]...)
		}
	}
	return hs
}

func intersect(a, b []held) []held {
	var out []held
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}
