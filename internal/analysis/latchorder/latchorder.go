// Package latchorder enforces the repo's lock-acquisition order. The
// concurrency design (PRs 2, 7, 8, and the B-link protocol) layers seven
// lock classes:
//
//	level 1: Tree.wlatch     — btree/core writer mutex
//	level 2: Pool.ckptGate   — WAL checkpoint gate (RWMutex, PR 7)
//	level 3: Tree.pl         — per-page latches (platch.Table)
//	level 4: shard.mu        — buffer-pool shard mutexes
//	level 5: Pool.seriesMu   — buffer-pool series/stats mutex
//	level 6: shardState.mu   — cluster coordinator inventory mutex (PR 8)
//	level 7: Prober.mu       — cluster health prober mutex (PR 8)
//
// A goroutine may only acquire locks in strictly increasing level order,
// with one deliberate exception: page latches nest with each other.
// B-link latch coupling acquires a second (or third) page latch while
// holding one, but ONLY rightward or downward — right sibling during a
// split's prev-pointer fix, left-to-right sibling pair during a
// rebalance, parent-then-children top-down. Those second same-level
// acquisitions must go through platch's LockRight method; a plain
// Lock/RLock while a page latch is held is flagged, because nothing then
// distinguishes the safe rightward coupling from a left-or-upward
// acquisition that deadlocks against a writer coupling in the documented
// direction. (LockRight is operationally identical to Lock — the split
// name exists exactly so this analyzer can audit coupling sites.)
//
// Mutations hold wlatch across the whole transaction and commit takes
// the checkpoint gate's read side under it (CommitTx, BeginUnlogged
// under BulkLoad); page latches nest inside both, pool shard and series
// mutexes under those; the cluster locks are router-side leaves never
// nested with pool locks or each other. Acquiring a lock at a level at
// or below one already held — including a second lock of the same
// non-page class, which neither the sharded pool nor the coordinator
// ever nests — risks deadlock with another goroutine locking in the
// documented order.
//
// The check is lexical and branch-aware within one function: it tracks
// locks acquired via x.Lock()/x.RLock()/x.TryLock()/x.TryRLock()/
// x.LockRight() on classified fields (releases via Unlock/RUnlock and
// defers understood; page-latch identity includes the page-ID argument)
// and flags both direct acquisitions and calls to methods that are known
// to acquire a level (Pool.Fetch acquires a shard, Tree.Insert acquires
// wlatch, Pool.CommitTx the checkpoint gate, and so on). Same-package
// helpers inherit summaries from the locks their bodies acquire,
// propagated to a fixpoint through same-package calls.
// `//xrvet:latchorder-ignore` on a function declaration suppresses the
// check for that function.
package latchorder

import (
	"go/ast"
	"go/types"

	"xrtree/internal/analysis"
)

// Analyzer is the latchorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "latchorder",
	Doc:  "enforce wlatch → ckpt-gate → page-latch (LockRight coupling) → pool-shard → pool-series → cluster lock acquisition order",
	Run:  run,
}

// lockClasses maps (receiver type name, field name) of a latch field to
// its level. Tree.pl is not a mutex but a platch.Table; its Lock-family
// methods take the page ID as the first argument, which the checker folds
// into the lock identity.
var lockClasses = map[[2]string]int{
	{"Tree", "wlatch"}:   1,
	{"Pool", "ckptGate"}: 2,
	{"Tree", "pl"}:       pageLatchLevel,
	{"shard", "mu"}:      4,
	{"Pool", "seriesMu"}: 5,
	{"shardState", "mu"}: 6,
	{"Prober", "mu"}:     7,
}

// pageLatchLevel is the one level where same-level nesting is legal —
// through LockRight only (B-link rightward/downward coupling).
const pageLatchLevel = 3

// summary is what the checker knows about a function: the lowest lock
// level it acquires, and — when that includes the page-latch level —
// whether every page latch it takes goes through LockRight, making it
// safe to call while a page latch is already held (B-link coupling
// delegated to a helper, e.g. a merge's prev-pointer fix).
type summary struct {
	level int
	right bool
}

// methodLevels summarizes exported entry points of other packages: the
// lowest lock level the method acquires internally. Matching is by
// receiver type name, so btree.Tree and core.Tree share the Tree rows.
var methodLevels = map[[2]string]int{
	// Mutations take wlatch; so do the exact-answer fallback inside the
	// ancestor probe, the full checker, and the space census.
	{"Tree", "Insert"}: 1, {"Tree", "Delete"}: 1, {"Tree", "BulkLoad"}: 1,
	{"Tree", "FindAncestors"}: 1, {"Tree", "AppendAncestors"}: 1,
	{"Tree", "FindParent"}: 1, {"Tree", "CheckInvariants"}: 1,
	{"Tree", "Space"}: 1,
	// Pure B-link readers latch pages only: their lowest acquisition is a
	// shared page latch (3). Calling one while a page latch is held risks
	// self-deadlock on that same page's latch.
	{"Tree", "Lookup"}: 3, {"Tree", "SeekGE"}: 3, {"Tree", "Scan"}: 3,
	{"Tree", "Range"}: 3, {"Tree", "FindDescendants"}: 3,
	{"Tree", "FindChildren"}: 3, {"Tree", "PrefetchGE"}: 3,
	{"Tree", "MaxNesting"}: 3,
	// platch.Table through a non-field receiver (a local alias); calls
	// through a classified field (t.pl.Lock) are handled by lockCall.
	{"Table", "Lock"}: pageLatchLevel, {"Table", "LockRight"}: pageLatchLevel,
	{"Table", "RLock"}: pageLatchLevel, {"Table", "TryRLock"}: pageLatchLevel,
	// The WAL protocol methods take the checkpoint gate: commits and
	// unlogged bulk builds on the read side, checkpoints on the write side.
	{"Pool", "CommitTx"}: 2, {"Pool", "BeginUnlogged"}: 2,
	{"Pool", "Checkpoint"}: 2, {"Pool", "CheckpointWait"}: 2,
	{"Pool", "Fetch"}: 4, {"Pool", "FetchTraced"}: 4,
	{"Pool", "FetchCopy"}: 4, {"Pool", "FetchCopyTraced"}: 4,
	{"Pool", "FetchNew"}:  4,
	{"Pool", "FetchHeld"}: 4, {"Pool", "FetchHeldTraced"}: 4,
	{"Pool", "FetchNewHeld"}: 4, {"Pool", "UnpinTx"}: 4,
	{"Pool", "DiscardTx"}: 4, {"Pool", "FreeTx"}: 4,
	{"Pool", "Unpin"}: 4, {"Pool", "Discard"}: 4, {"Pool", "FlushAll"}: 4,
	{"Pool", "DropClean"}: 4, {"Pool", "PinnedCount"}: 4,
	// TryFetchCopy locks the target shard like any fetch. Prefetch only
	// enqueues, but its hints are consumed by workers that lock shards, and
	// Close joins those workers — treating both as level 4 forbids hinting
	// or shutting down the prefetcher while a shard mutex is held (Close
	// would deadlock outright against a worker blocked on that shard).
	{"Pool", "TryFetchCopy"}: 4, {"Pool", "Prefetch"}: 4, {"Pool", "Close"}: 4,
	{"Pool", "EnableHitRateSeries"}: 5, {"Pool", "HitRateSeries"}: 5,
	// Cluster router-side leaves: the coordinator's per-shard inventory
	// mutex and the health prober's state mutex. Prober.Start spawns the
	// probe loop and Close joins it, so both count as acquisitions — Close
	// while holding the mutex would deadlock against the loop.
	{"Coordinator", "Gather"}: 6, {"Coordinator", "Status"}: 6,
	{"Coordinator", "Backends"}: 6,
	{"Prober", "Up"}:            7, {"Prober", "Observe"}: 7,
	{"Prober", "Start"}: 7, {"Prober", "Close"}: 7,
}

const orderDoc = "required order: wlatch (1) → ckpt gate (2) → page latch (3, second acquisition must be LockRight) → pool shard (4) → pool series (5) → cluster shard state (6) → prober (7)"

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		summaries: map[types.Object]summary{},
		ignore:    analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:latchorder-ignore"),
	}
	// Fixpoint: derive a lock summary for every same-package function
	// from the locks its body acquires and the summaries of the functions
	// it calls. Both components are monotone (level only decreases, right
	// only decays true→false), so the iteration terminates.
	for {
		changed := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				s := c.bodySummary(fn.Body)
				obj := pass.TypesInfo.Defs[fn.Name]
				if obj == nil || s.level == 0 {
					continue
				}
				old, seen := c.summaries[obj]
				if !seen || s.level < old.level || (old.right && !s.right) {
					if seen && s.level > old.level {
						s.level = old.level
					}
					if seen && !old.right {
						s.right = false
					}
					c.summaries[obj] = s
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || analysis.Annotated(pass.Fset, c.ignore, fn.Pos()) {
				continue
			}
			// The function that *implements* a lock acquisition is where
			// the classified Lock call lives; it is checked like any
			// other, which also validates the pool's own internals.
			c.walk(fn.Body.List, nil)
		}
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	summaries map[types.Object]summary
	ignore    map[analysis.LineKey]string
}

// held is one lock currently held at this program point.
type held struct {
	level int
	key   string // source text of the lock expression, e.g. "t.latch"
}

// bodySummary returns the lowest level fn's body acquires directly or
// through already-summarized same-package calls (level 0 = none), and
// whether every page-latch acquisition it makes — direct or delegated —
// goes through LockRight.
func (c *checker) bodySummary(body *ast.BlockStmt) summary {
	s := summary{right: true}
	record := func(lvl int, right bool) {
		if lvl == 0 {
			return
		}
		if s.level == 0 || lvl < s.level {
			s.level = lvl
		}
		if lvl == pageLatchLevel && !right {
			s.right = false
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, acquire, right := c.lockCall(call); lock != nil {
			if acquire {
				record(lock.level, right)
			}
			return true
		}
		cs := c.callSummary(call)
		record(cs.level, cs.right)
		return true
	})
	return s
}

// lockCall classifies call as Lock/RLock/LockRight (acquire=true) or
// Unlock/RUnlock (acquire=false) on a classified latch field. right
// reports an acquisition through LockRight — the only form allowed to
// nest at the page-latch level. Page-latch identity folds in the page-ID
// argument, so Lock(a)…Unlock(a) brackets balance per page.
func (c *checker) lockCall(call *ast.CallExpr) (lock *held, acquire, right bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	switch sel.Sel.Name {
	// TryLock/TryRLock are acquisitions for ordering purposes: on the
	// success branch the lock is held, and even attempting one out of
	// order means the code was written against the wrong level.
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "LockRight":
		acquire, right = true, true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	recv := analysis.NamedType(c.pass.TypesInfo.TypeOf(fieldSel.X))
	if recv == nil {
		return nil, false, false
	}
	lvl, ok := lockClasses[[2]string{recv.Obj().Name(), fieldSel.Sel.Name}]
	if !ok {
		return nil, false, false
	}
	key := types.ExprString(sel.X)
	if lvl == pageLatchLevel && len(call.Args) > 0 {
		key += "(" + types.ExprString(call.Args[0]) + ")"
	}
	return &held{level: lvl, key: key}, acquire, right
}

// callSummary returns the summarized locks call acquires (level 0 =
// none).
func (c *checker) callSummary(call *ast.CallExpr) summary {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if recv := analysis.NamedType(c.pass.TypesInfo.TypeOf(sel.X)); recv != nil {
			if lvl, ok := methodLevels[[2]string{recv.Obj().Name(), sel.Sel.Name}]; ok {
				// The only right-only row is the coupling method itself.
				return summary{level: lvl, right: lvl == pageLatchLevel && sel.Sel.Name == "LockRight"}
			}
		}
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	if s, ok := c.summaries[obj]; ok {
		return s
	}
	return summary{}
}

// walk processes a statement list with the current held set, recursing
// into branches with copies. The returned set is the held set at normal
// fall-through, taking the intersection across branch exits.
func (c *checker) walk(stmts []ast.Stmt, hs []held) []held {
	for _, s := range stmts {
		hs = c.stmt(s, hs)
	}
	return hs
}

func (c *checker) stmt(s ast.Stmt, hs []held) []held {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.expr(s.X, hs)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			hs = c.expr(e, hs)
		}
		return hs
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			hs = c.expr(e, hs)
		}
		return hs
	case *ast.DeferStmt:
		// A deferred unlock runs at exit: the lock stays held for the
		// remainder of the body, which is exactly what hs models, so a
		// deferred release changes nothing. Deferred acquisitions or
		// level-acquiring calls are checked against the current set.
		if lock, acquire, _ := c.lockCall(s.Call); lock != nil && !acquire {
			return hs
		}
		return c.expr(s.Call, hs)
	case *ast.GoStmt:
		// The goroutine starts with an empty held set; only the argument
		// expressions are evaluated at the go statement itself.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walk(lit.Body.List, nil)
		}
		for _, a := range s.Call.Args {
			hs = c.expr(a, hs)
		}
		return hs
	case *ast.IfStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		hs = c.expr(s.Cond, hs)
		thenOut := c.walk(s.Body.List, clone(hs))
		elseOut := clone(hs)
		if s.Else != nil {
			elseOut = c.stmt(s.Else, elseOut)
		}
		return intersect(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		hs = c.expr(s.Cond, hs)
		c.walk(s.Body.List, clone(hs))
		return hs
	case *ast.RangeStmt:
		hs = c.expr(s.X, hs)
		c.walk(s.Body.List, clone(hs))
		return hs
	case *ast.SwitchStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		hs = c.expr(s.Tag, hs)
		c.walkClauses(s.Body, hs)
		return hs
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			hs = c.stmt(s.Init, hs)
		}
		c.walkClauses(s.Body, hs)
		return hs
	case *ast.SelectStmt:
		c.walkClauses(s.Body, hs)
		return hs
	case *ast.BlockStmt:
		return c.walk(s.List, hs)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, hs)
	case *ast.SendStmt:
		hs = c.expr(s.Chan, hs)
		return c.expr(s.Value, hs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						hs = c.expr(v, hs)
					}
				}
			}
		}
		return hs
	}
	return hs
}

func (c *checker) walkClauses(body *ast.BlockStmt, hs []held) {
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			c.walk(cl.Body, clone(hs))
		case *ast.CommClause:
			sub := clone(hs)
			if cl.Comm != nil {
				sub = c.stmt(cl.Comm, sub)
			}
			c.walk(cl.Body, sub)
		}
	}
}

// expr scans one expression for lock operations and level-acquiring
// calls, in evaluation order (good enough lexically), skipping function
// literals — those are separate goroutine/deferred bodies checked on
// their own with an empty held set.
func (c *checker) expr(e ast.Expr, hs []held) []held {
	if e == nil {
		return hs
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walk(lit.Body.List, nil)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, acquire, right := c.lockCall(call); lock != nil {
			if acquire {
				c.checkAcquire(call, *lock, right, hs)
				hs = append(clone(hs), *lock)
			} else {
				hs = release(hs, lock.key)
			}
			return true
		}
		if cs := c.callSummary(call); cs.level != 0 {
			for _, h := range hs {
				if h.level < cs.level {
					continue
				}
				// A callee whose only page latches are LockRight couplings
				// may run under a held page latch (e.g. a rebalance helper
				// doing a merge's prev-pointer fix).
				if h.level == pageLatchLevel && cs.level == pageLatchLevel && cs.right {
					continue
				}
				c.pass.Reportf(call.Pos(),
					"latch order violation: calling %s (acquires level %d) while holding %s (level %d); %s",
					types.ExprString(call.Fun), cs.level, h.key, h.level, orderDoc)
			}
		}
		return true
	})
	return hs
}

func (c *checker) checkAcquire(call *ast.CallExpr, lock held, right bool, hs []held) {
	for _, h := range hs {
		if h.level < lock.level {
			continue
		}
		// B-link coupling: a second page latch is legal, but only through
		// LockRight so the rightward/downward direction is explicit at the
		// call site.
		if h.level == pageLatchLevel && lock.level == pageLatchLevel {
			if right {
				continue
			}
			c.pass.Reportf(call.Pos(),
				"latch order violation: acquiring page latch %s while holding %s; a second page latch must be taken with LockRight (right sibling or child only); %s",
				lock.key, h.key, orderDoc)
			continue
		}
		c.pass.Reportf(call.Pos(),
			"latch order violation: acquiring %s (level %d) while holding %s (level %d); %s",
			lock.key, lock.level, h.key, h.level, orderDoc)
	}
}

func clone(hs []held) []held {
	out := make([]held, len(hs))
	copy(out, hs)
	return out
}

func release(hs []held, key string) []held {
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].key == key {
			out := clone(hs)
			return append(out[:i], out[i+1:]...)
		}
	}
	return hs
}

func intersect(a, b []held) []held {
	var out []held
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}
