// Package btree (a testdata stand-in reusing a checked package name)
// exercises the ctxpoll analyzer: loops that fetch pages or advance
// cursors inside Counters-carrying functions must poll for cancellation.
package btree

import "context"

type Counters struct {
	Ctx context.Context
}

func (c *Counters) Interrupted() error {
	if c == nil || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

type Pool struct{}

func (p *Pool) Fetch(id uint32) ([]byte, error)       { return nil, nil }
func (p *Pool) FetchCopy(id uint32, dst []byte) error { return nil }
func (p *Pool) Unpin(id uint32, dirty bool) error     { return nil }

type cursor struct{ valid bool }

func (cu *cursor) advance() {}

type poller struct{ n int }

func (pl *poller) interrupted(c *Counters) error { return c.Interrupted() }

// ---- negative cases ----

func goodPolledFetch(p *Pool, c *Counters, ids []uint32) error {
	for _, id := range ids {
		if err := c.Interrupted(); err != nil {
			return err
		}
		data, err := p.Fetch(id)
		if err != nil {
			return err
		}
		_ = data
		if err := p.Unpin(id, false); err != nil {
			return err
		}
	}
	return nil
}

func goodStridedPoller(cu *cursor, c *Counters) error {
	var pl poller
	for cu.valid {
		if err := pl.interrupted(c); err != nil {
			return err
		}
		cu.advance()
	}
	return nil
}

func goodBounded(p *Pool, c *Counters, h int) error {
	buf := make([]byte, 16)
	//xrvet:bounded root-to-leaf descent, at most h iterations
	for i := 0; i < h; i++ {
		if err := p.FetchCopy(uint32(i), buf); err != nil {
			return err
		}
	}
	return nil
}

// writePath has no Counters parameter: mutation paths must not be
// cancelled midway, so they are out of scope by design.
func writePath(p *Pool, ids []uint32) error {
	for _, id := range ids {
		if _, err := p.Fetch(id); err != nil {
			return err
		}
		if err := p.Unpin(id, true); err != nil {
			return err
		}
	}
	return nil
}

// goodNoPageAccess loops over memory only; nothing to poll for.
func goodNoPageAccess(c *Counters, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// ---- positive cases ----

func badUnpolledFetch(p *Pool, c *Counters, ids []uint32) error {
	for _, id := range ids { // want `loop fetches pages or advances a cursor but never polls Counters.Interrupted`
		data, err := p.Fetch(id)
		if err != nil {
			return err
		}
		_ = data
		if err := p.Unpin(id, false); err != nil {
			return err
		}
	}
	return nil
}

func badCursorLoop(cu *cursor, c *Counters) {
	for cu.valid { // want `loop fetches pages or advances a cursor but never polls Counters.Interrupted`
		cu.advance()
	}
}

// badBareBounded carries an escape with no justification: rejected, the
// annotation must document why the loop is bounded.
func badBareBounded(p *Pool, c *Counters, h int) error {
	buf := make([]byte, 16)
	//xrvet:bounded
	for i := 0; i < h; i++ { // want `bare //xrvet:bounded escape: add a justification`
		if err := p.FetchCopy(uint32(i), buf); err != nil {
			return err
		}
	}
	return nil
}

func badChainWalk(p *Pool, c *Counters, id uint32) error {
	for id != 0 { // want `loop fetches pages or advances a cursor but never polls Counters.Interrupted`
		data, err := p.Fetch(id)
		if err != nil {
			return err
		}
		id = uint32(data[0])
		if err := p.Unpin(id, false); err != nil {
			return err
		}
	}
	return nil
}
