// Package ctxpoll flags page-access and cursor-advance loops that never
// poll for cancellation. PR 3's cancellation work established the
// convention: long-running read paths carry a *metrics.Counters whose
// Ctx is polled via Counters.Interrupted at page-granular boundaries
// (directly, or through the join loops' strided poller). A loop that
// fetches pages or advances a join cursor without ever reaching an
// Interrupted check reintroduces the unbounded-cancellation-latency bug
// class that PR fixed by hand.
//
// Scope: only functions that take a *Counters parameter are checked —
// write-path helpers deliberately take none, because cancelling midway
// through a structure mutation would corrupt the tree, and functions
// without the parameter have nothing to poll. Loops that are bounded by
// construction (root-to-leaf descents bounded by tree height) are
// annotated `//xrvet:bounded <reason>` at the loop, which both documents
// and suppresses the finding. The reason is mandatory: a bare
// `//xrvet:bounded` suppresses nothing and is flagged itself, so every
// escape in the tree carries its audit trail.
package ctxpoll

import (
	"go/ast"
	"go/token"

	"xrtree/internal/analysis"
)

// Analyzer is the ctxpoll analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "flag page/cursor loops in Counters-carrying functions that never poll Counters.Interrupted",
	Run:  run,
}

// checkedPackages are the packages whose loops drive page I/O on read
// paths. (Testdata packages reuse one of these names.)
var checkedPackages = map[string]bool{
	"core": true, "btree": true, "elemlist": true, "join": true,
}

// triggers are the call names whose presence makes a loop page-bound or
// cursor-bound: fetching through the buffer pool (or core's fetchStab
// wrapper) and the join cursors' advance.
var triggers = map[string]bool{
	"Fetch": true, "FetchCopy": true, "fetchStab": true, "advance": true,
}

// polls are the call names that count as a cancellation poll: the
// Counters method and the join loops' strided wrapper.
var polls = map[string]bool{
	"Interrupted": true, "interrupted": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !checkedPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	bounded := analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:bounded")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasCountersParam(pass, fn.Type) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				body, pos := loopBody(n)
				if body == nil {
					return true
				}
				if reason, ok := analysis.Annotation(pass.Fset, bounded, pos); ok {
					// The escape documents as much as it suppresses: a
					// bare //xrvet:bounded with no justification is
					// itself a finding.
					if reason == "" && containsCall(body, triggers) && !containsCall(body, polls) {
						pass.Reportf(pos, "bare //xrvet:bounded escape: add a justification (//xrvet:bounded <reason>)")
					}
					return true
				}
				if containsCall(body, triggers) && !containsCall(body, polls) {
					pass.Reportf(pos, "loop fetches pages or advances a cursor but never polls Counters.Interrupted; poll, or annotate //xrvet:bounded <reason>")
				}
				return true
			})
		}
	}
	return nil, nil
}

func loopBody(n ast.Node) (*ast.BlockStmt, token.Pos) {
	switch s := n.(type) {
	case *ast.ForStmt:
		return s.Body, s.Pos()
	case *ast.RangeStmt:
		return s.Body, s.Pos()
	}
	return nil, token.NoPos
}

// hasCountersParam reports whether the function takes a parameter of
// type *Counters (a named type Counters, any package).
func hasCountersParam(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, fld := range ftype.Params.List {
		if analysis.TypeNameIs(pass.TypesInfo.TypeOf(fld.Type), "", "Counters") {
			return true
		}
	}
	return false
}

// containsCall reports whether body contains a call to one of names,
// not counting function literals (they run elsewhere).
func containsCall(body *ast.BlockStmt, names map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && names[analysis.CalleeName(call)] {
			found = true
			return false
		}
		return true
	})
	return found
}
