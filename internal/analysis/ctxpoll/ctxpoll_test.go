package ctxpoll_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxpoll.Analyzer, "btree")
}
