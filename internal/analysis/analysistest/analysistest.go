// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's stdlib-only
// analysis framework.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"xrtree/internal/analysis"
)

// T is the subset of *testing.T the harness reports through. Meta-tests
// (which check the harness's own failure messages) substitute a
// recorder; ordinary callers pass their *testing.T unchanged.
type T interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
}

// TestData returns the absolute path of the calling test's testdata
// directory, for passing to Run.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads dir/src/<pkg> (dir is normally TestData()), applies the
// analyzer, and verifies that the diagnostics and the package's want
// comments agree: every diagnostic must be expected by a want comment on
// its line, and every want comment must be matched by a diagnostic. A
// line may carry several expectations: // want "first" "second".
// Patterns are regexps and may be double- or back-quoted.
func Run(t T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.LoadDir(filepath.Join(dir, "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(p, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, p)
	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := lineKey{file: pos.Filename, line: pos.Line}
		if matchWant(wants[key], d.Message) {
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// matchWant consumes the first unmatched expectation matching msg.
func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\")|(`[^`]*`)")

// collectWants extracts the want expectations of every file in p, keyed
// by (file, line) of the comment.
func collectWants(t T, p *analysis.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range p.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := lineKey{file: pos.Filename, line: pos.Line}
				for _, m := range wantRe.FindAllString(text, -1) {
					pat, err := strconv.Unquote(m)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, m, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
