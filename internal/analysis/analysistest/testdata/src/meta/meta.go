// Package meta is fixture input for the analysistest meta-tests: its
// want comments deliberately disagree with the meta analyzer (which
// flags every call to trigger) so the tests can check the harness's own
// failure messages.
package meta

func trigger() {}

// matched is the only well-behaved case: diagnostic and want agree.
func matched() {
	trigger() // want "finding: trigger call"
}

// extra produces a diagnostic with no want comment on its line.
func extra() {
	trigger() // extra: the harness must flag this as unexpected
}

// missing carries a want comment on a line with no diagnostic.
func missing() { // want "finding: trigger call"
	_ = 0
}

// wrongpos puts the want one line below the diagnostic: the harness
// must report both halves of the mismatch.
func wrongpos() {
	trigger() // wrongpos: diagnostic here, want below
	// want "finding: trigger .all"
}
