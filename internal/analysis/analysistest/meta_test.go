package analysistest_test

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xrtree/internal/analysis"
	"xrtree/internal/analysis/analysistest"
)

// metaAnalyzer flags every call to a function literally named trigger —
// just enough behavior to drive the harness meta-tests.
var metaAnalyzer = &analysis.Analyzer{
	Name: "meta",
	Doc:  "report a finding at every call to trigger",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "trigger" {
						pass.Reportf(call.Pos(), "finding: trigger call")
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

// recorder satisfies analysistest.T and captures the harness's output
// instead of failing the real test.
type recorder struct {
	errors []string
	fatal  string
}

type metaFatal struct{}

func (r *recorder) Helper() {}
func (r *recorder) Fatal(args ...any) {
	r.fatal = fmt.Sprint(args...)
	panic(metaFatal{})
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatal = fmt.Sprintf(format, args...)
	panic(metaFatal{})
}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

// TestHarnessReportsMismatches runs the harness over a fixture whose
// want comments deliberately disagree with the analyzer and checks that
// every mismatch — extra diagnostic, missing diagnostic, wrong position
// — fails with a message carrying a readable file:line location.
func TestHarnessReportsMismatches(t *testing.T) {
	rec := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(metaFatal); !ok {
					panic(p)
				}
			}
		}()
		analysistest.Run(rec, analysistest.TestData(), metaAnalyzer, "meta")
	}()
	if rec.fatal != "" {
		t.Fatalf("harness died instead of reporting mismatches: %s", rec.fatal)
	}

	src := filepath.Join(analysistest.TestData(), "src", "meta", "meta.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	lineOf := func(marker string) int {
		for i, l := range lines {
			if strings.Contains(l, marker) {
				return i + 1
			}
		}
		t.Fatalf("marker %q not found in %s", marker, src)
		return 0
	}

	// One error per mismatch half; the matched case contributes none.
	if len(rec.errors) != 4 {
		t.Fatalf("harness reported %d errors, want 4:\n%s", len(rec.errors), strings.Join(rec.errors, "\n"))
	}
	expect := func(wantLoc, wantText string) {
		t.Helper()
		for _, e := range rec.errors {
			if strings.Contains(e, wantLoc) && strings.Contains(e, wantText) {
				return
			}
		}
		t.Errorf("no harness error at %q mentioning %q; got:\n%s", wantLoc, wantText, strings.Join(rec.errors, "\n"))
	}
	loc := func(line int) string { return fmt.Sprintf("meta.go:%d", line) }

	expect(loc(lineOf("// extra: the harness")), "unexpected diagnostic: finding: trigger call")
	expect(loc(lineOf("func missing()")), `no diagnostic matching "finding: trigger call"`)
	expect(loc(lineOf("// wrongpos: diagnostic here")), "unexpected diagnostic: finding: trigger call")
	expect(loc(lineOf(`"finding: trigger .all"`)), "no diagnostic matching")
}

// TestHarnessAcceptsAgreement runs the matched fixture shape through a
// real *testing.T (the interface's production instantiation) with an
// analyzer that agrees with no want comments at all: a package with
// neither diagnostics nor wants passes silently.
func TestHarnessAcceptsAgreement(t *testing.T) {
	quiet := &analysis.Analyzer{
		Name: "quiet",
		Doc:  "never reports",
		Run:  func(pass *analysis.Pass) (any, error) { return nil, nil },
	}
	rec := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(metaFatal); !ok {
					panic(p)
				}
			}
		}()
		analysistest.Run(rec, analysistest.TestData(), quiet, "meta")
	}()
	if rec.fatal != "" {
		t.Fatalf("unexpected fatal: %s", rec.fatal)
	}
	// The fixture's want comments are now all unmatched; the silent
	// analyzer must trip every one of them but invent nothing.
	for _, e := range rec.errors {
		if strings.Contains(e, "unexpected diagnostic") {
			t.Errorf("quiet analyzer produced a diagnostic: %s", e)
		}
	}
	if len(rec.errors) != 3 {
		t.Errorf("want 3 unmatched-want errors, got %d:\n%s", len(rec.errors), strings.Join(rec.errors, "\n"))
	}
}
