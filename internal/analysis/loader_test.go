package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"xrtree/internal/analysis"
)

// TestPackagesNoMatchFatal pins the fix for xrvet's silent exit-0: `go
// list` reports a typo'd pattern only as a stderr warning with exit 0,
// and the loader used to turn that into an empty package set — an
// analyzer run over nothing that looked like a clean bill of health.
func TestPackagesNoMatchFatal(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.Packages([]string{"./nosuchdir/..."}); err == nil {
		t.Fatal("Packages matched nothing but returned no error")
	}
	if _, err := l.PackageDirs([]string{"./nosuchdir/..."}); err == nil {
		t.Fatal("PackageDirs matched nothing but returned no error")
	}
}

// TestBrokenImportFatal checks that a module whose package imports
// something unresolvable fails loading loudly instead of analyzing a
// partial package set.
func TestBrokenImportFatal(t *testing.T) {
	t.Setenv("GOPROXY", "off")
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module brokenmod\n\ngo 1.21\n",
		"a.go":   "package a\n\nimport _ \"no.such/pkg\"\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := analysis.NewLoader(dir); err == nil {
		t.Fatal("NewLoader succeeded on a module with an unresolvable import")
	}
}

// TestCacheRoundTrip exercises the per-(package, analyzer) diagnostic
// cache: miss before Put, hit after, clean runs distinguishable from
// absent entries, and source edits changing the key.
func TestCacheRoundTrip(t *testing.T) {
	t.Setenv("XDG_CACHE_HOME", t.TempDir())
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	c, err := analysis.OpenCache(l)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}

	pkgDir := t.TempDir()
	src := filepath.Join(pkgDir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key := c.PackageKey(pkgDir)
	if key == "" {
		t.Fatal("PackageKey returned empty for a readable package")
	}

	if _, ok := c.Get(key, "pinleak"); ok {
		t.Fatal("Get hit before Put")
	}
	want := []string{"p.go:1:1: finding one", "p.go:2:2: finding two"}
	c.Put(key, "pinleak", want)
	got, ok := c.Get(key, "pinleak")
	if !ok || len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Get after Put = %q, %v; want %q, true", got, ok, want)
	}

	// A clean run caches as an empty-but-present entry.
	c.Put(key, "latchorder", nil)
	if got, ok := c.Get(key, "latchorder"); !ok || len(got) != 0 {
		t.Fatalf("clean-run Get = %q, %v; want empty, true", got, ok)
	}

	// Editing the source must change the key.
	if err := os.WriteFile(src, []byte("package p\n\nvar x int\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if newKey := c.PackageKey(pkgDir); newKey == key {
		t.Fatal("PackageKey unchanged after source edit")
	}

	// A nil cache never hits and never panics.
	var nilCache *analysis.Cache
	if k := nilCache.PackageKey(pkgDir); k != "" {
		t.Fatalf("nil cache PackageKey = %q", k)
	}
	if _, ok := nilCache.Get("k", "pinleak"); ok {
		t.Fatal("nil cache Get hit")
	}
	nilCache.Put("k", "pinleak", want)
}
