// Package atomicfield flags mixed atomic/plain access to struct fields.
//
// The repo's hot counters (pagefile physical-read stats, prefetch sink
// hit counters) are updated with sync/atomic from reader goroutines and
// scraped by the metrics endpoint. A field that is touched with
// atomic.AddUint64 in one place and read with a plain load in another is
// a data race the race detector only catches when both sides happen to
// run under -race at the same moment; statically the rule is simple —
// once any access to a field is atomic, every access must be.
//
// The analyzer collects every field whose address is taken as the first
// argument of a sync/atomic call (Add*, Load*, Store*, Swap*,
// CompareAndSwap*), then reports every other selector access to that
// field that is not itself part of an atomic call. Composite-literal
// keys are exempt — a literal builds a fresh, unshared value (the
// pagefile Stats() snapshot idiom) and cannot race.
// `//xrvet:atomicfield-ignore <reason>` on the access line (or the line
// above) escapes a proven-safe plain access — for example
// single-threaded construction before the value is shared. The
// justification is mandatory; a bare escape is itself a finding.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xrtree/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "check that fields accessed with sync/atomic are never accessed plainly",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	ignores := analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:atomicfield-ignore")

	// Pass 1: collect the fields used atomically and the exact selector
	// nodes that appear inside atomic calls (those are not plain uses).
	atomicFields := map[types.Object]token.Pos{}
	inAtomicCall := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			// &x.f, possibly through nested selectors (&t.stats.Reads):
			// only the leaf field becomes atomic-only.
			sel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObj(pass.TypesInfo, sel)
			if obj == nil {
				return true
			}
			if _, seen := atomicFields[obj]; !seen {
				atomicFields[obj] = sel.Pos()
			}
			inAtomicCall[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil, nil
	}

	// Pass 2: every other appearance of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Composite-literal keys are deliberately not flagged: a
			// literal builds a fresh, unshared value (the pagefile
			// Stats() snapshot idiom), which cannot race.
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			obj := fieldObj(pass.TypesInfo, sel)
			pos := sel.Pos()
			name := types.ExprString(sel)
			firstAtomic, tracked := atomicFields[obj]
			if obj == nil || !tracked {
				return true
			}
			reason, annotated := analysis.Annotation(pass.Fset, ignores, pos)
			if annotated {
				if reason == "" {
					pass.Reportf(pos,
						"bare //xrvet:atomicfield-ignore escape: add a justification (//xrvet:atomicfield-ignore <reason>)")
				}
				return true
			}
			pass.Reportf(pos,
				"non-atomic access to %s: the field is accessed with sync/atomic at line %d — mixing plain and atomic access races; use atomic.Load/Store here or annotate //xrvet:atomicfield-ignore <reason>",
				name, pass.Fset.Position(firstAtomic).Line)
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call is sync/atomic.{Add,Load,Store,
// Swap,CompareAndSwap}*.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// fieldObj resolves a selector to the struct field it names, or nil when
// it names something else (method, package member, qualified type).
func fieldObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
