package atomicfield_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}
