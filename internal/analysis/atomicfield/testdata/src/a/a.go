// Package a models the pagefile/prefetch counter idiom for the
// atomicfield analyzer tests: a stats struct whose counters are bumped
// with sync/atomic and must never be touched plainly.
package a

import "sync/atomic"

type Stats struct {
	Reads  uint64
	Writes uint64
	Mode   int32
	Label  string
}

type File struct {
	stats Stats
	open  bool
}

// ---- negative cases ----

func (f *File) Record() {
	atomic.AddUint64(&f.stats.Reads, 1)
	atomic.AddUint64(&f.stats.Writes, 1)
}

// goodSnapshot mirrors pagefile.Stats(): a fresh literal keyed by the
// tracked fields, populated from atomic loads — unshared, no race.
func (f *File) goodSnapshot() Stats {
	return Stats{
		Reads:  atomic.LoadUint64(&f.stats.Reads),
		Writes: atomic.LoadUint64(&f.stats.Writes),
		Mode:   atomic.LoadInt32(&f.stats.Mode),
	}
}

func (f *File) Snapshot() uint64 {
	return atomic.LoadUint64(&f.stats.Reads)
}

func (f *File) SetMode(m int32) {
	atomic.StoreInt32(&f.stats.Mode, m)
}

// Label is never touched atomically: plain access is fine.
func (f *File) PlainLabel() string { return f.stats.Label }

// open is not in the atomic set either.
func (f *File) Open() { f.open = true }

// NewFile initializes the counter before the value is shared; the
// escape carries its justification.
func NewFile() *File {
	f := &File{}
	//xrvet:atomicfield-ignore construction precedes sharing, no concurrent reader yet
	f.stats.Reads = 0
	return f
}

// ---- positive cases ----

func (f *File) BadRead() uint64 {
	return f.stats.Reads // want `non-atomic access to f.stats.Reads`
}

func (f *File) BadWrite() {
	f.stats.Reads++ // want `non-atomic access to f.stats.Reads`
}

func (f *File) BadMode() int32 {
	return f.stats.Mode // want `non-atomic access to f.stats.Mode`
}

func (f *File) BadDouble() uint64 {
	return f.stats.Reads + f.stats.Writes // want `non-atomic access to f.stats.Reads` `non-atomic access to f.stats.Writes`
}

// BadBare carries an escape with no justification: rejected.
func (f *File) BadBare() {
	//xrvet:atomicfield-ignore
	f.stats.Reads = 7 // want `bare //xrvet:atomicfield-ignore escape: add a justification`
}
