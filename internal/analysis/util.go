package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Type- and call-matching helpers shared by the analyzers. Matching is by
// type *name* (optionally qualified by package name), not by import path:
// the repo's own packages match naturally, and analysistest packages can
// model bufferpool.Pool or metrics.Counters with local stand-in types.

// NamedType returns the named type underlying t, unwrapping pointers and
// aliases, or nil.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// TypeNameIs reports whether t (possibly behind a pointer) is a named
// type with the given name. If pkg is non-empty the defining package's
// name must match too; testdata stand-ins are exempted by passing "".
func TypeNameIs(t types.Type, pkg, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Name() != name {
		return false
	}
	if pkg == "" {
		return true
	}
	p := n.Obj().Pkg()
	return p != nil && p.Name() == pkg
}

// ReceiverOf resolves the receiver expression type of a method call
// `x.M(...)`. It returns nil for non-selector calls.
func ReceiverOf(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return info.TypeOf(sel.X)
}

// IsMethodCall reports whether call is `x.name(...)` with x of named type
// recvName (any package — the analyzers' tables are name-scoped).
func IsMethodCall(info *types.Info, call *ast.CallExpr, recvName, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return TypeNameIs(info.TypeOf(sel.X), "", recvName)
}

// CalleeName returns the bare called-function name of call: "M" for both
// x.M(...) and M(...), "" otherwise.
func CalleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// Comment directives ------------------------------------------------------

// LineKey identifies one source line of one file.
type LineKey struct {
	File string
	Line int
}

// CommentLines returns, per (file, line), the trailing text of every
// comment beginning with directive (for example "//xrvet:bounded").
// Analyzers use it for annotation escape hatches.
func CommentLines(fset *token.FileSet, files []*ast.File, directive string) map[LineKey]string {
	out := map[LineKey]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, directive); ok {
					pos := fset.Position(c.Pos())
					out[LineKey{File: pos.Filename, Line: pos.Line}] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return out
}

// Annotated reports whether pos's line or the line directly above carries
// a directive collected by CommentLines.
func Annotated(fset *token.FileSet, lines map[LineKey]string, pos token.Pos) bool {
	_, ok := Annotation(fset, lines, pos)
	return ok
}

// Annotation returns the trailing justification text of the directive on
// pos's line or the line directly above, and whether one is present. An
// empty string with ok=true is a bare, unjustified escape — analyzers
// that require justifications reject those.
func Annotation(fset *token.FileSet, lines map[LineKey]string, pos token.Pos) (string, bool) {
	p := fset.Position(pos)
	if reason, ok := lines[LineKey{File: p.Filename, Line: p.Line}]; ok {
		return reason, true
	}
	reason, ok := lines[LineKey{File: p.Filename, Line: p.Line - 1}]
	return reason, ok
}
