// Package a models the obs span API for the spanend analyzer tests: a
// Span with End/EndDur, a Counters-style wrapper whose StartSpan returns
// one, and a routerTrace-shaped wrapper returning a possibly-nil span.
package a

type Span struct{}

func (s *Span) End()                        {}
func (s *Span) EndDur(d int64)              {}
func (s *Span) StartSpan(name string) *Span { return nil }

type Counters struct{ Tracer any }

func (c *Counters) StartSpan(name string) *Span { return nil }

func work() error { return nil }

func takeOwnership(sp *Span) {}

type holder struct{ span *Span }

// routerTrace mirrors the server's wrapper: it starts a span and returns
// it (nil when tracing is off) — callers inherit the End obligation.
func routerTrace(c *Counters) (*Span, int) {
	return c.StartSpan("request"), 1
}

// ---- negative cases ----

func goodDeferEnd(c *Counters) error {
	sp := c.StartSpan("query")
	defer sp.End()
	return work()
}

func goodBothPaths(c *Counters) error {
	sp := c.StartSpan("join")
	if err := work(); err != nil {
		sp.End()
		return err
	}
	sp.EndDur(42)
	return nil
}

func goodNilGuard(c *Counters) {
	sp, n := routerTrace(c)
	_ = n
	if sp != nil {
		defer sp.End()
	}
	work()
}

func goodNilReturn(c *Counters) error {
	sp, _ := routerTrace(c)
	if sp == nil {
		return work() // never started on this side
	}
	defer sp.End()
	return work()
}

func goodDeferredClosure(c *Counters) error {
	sp := c.StartSpan("scan")
	defer func() {
		sp.End()
	}()
	return work()
}

func goodTransferField(c *Counters, h *holder) {
	sp := c.StartSpan("pinned")
	h.span = sp // the holder owns the End now
}

func goodTransferArg(c *Counters) {
	sp := c.StartSpan("handoff")
	takeOwnership(sp)
}

func goodGoroutineBody(c *Counters) {
	go func() {
		sp := c.StartSpan("task")
		defer sp.End()
		work()
	}()
}

func goodLoop(c *Counters, n int) {
	for i := 0; i < n; i++ {
		sp := c.StartSpan("iter")
		work()
		sp.End()
	}
}

//xrvet:spanend-ignore lifecycle handed to the flight recorder under test
func ignoredLeak(c *Counters) {
	_ = c.StartSpan("recorded").StartSpan("child")
}

// ---- positive cases ----

func badErrorPath(c *Counters) error {
	sp := c.StartSpan("join")
	if err := work(); err != nil {
		return err // want `span leak: sp started at line \d+ is not ended on this return path`
	}
	sp.End()
	return nil
}

func badDiscard(c *Counters) {
	c.StartSpan("dropped") // want `span leak: started span from c.StartSpan is discarded`
}

func badWrapperCaller(c *Counters) {
	sp, _ := routerTrace(c) // the wrapper's span is inherited here
	if sp != nil {
		work()
	}
} // want `span leak: sp started at line \d+ is not ended on this return path`

func badGoroutineBody(c *Counters) {
	go func() {
		sp := c.StartSpan("task")
		if sp == nil {
			return
		}
		work()
	}() // want `span leak: sp started at line \d+ is not ended on this return path`
}

func badLoop(c *Counters, n int) {
	for i := 0; i < n; i++ {
		sp := c.StartSpan("iter") // want `span leak: sp started at line \d+ is not ended when the loop repeats`
		if sp == nil {
			continue
		}
		work()
	}
}

func badOverwrite(c *Counters) {
	sp := c.StartSpan("first")
	sp = c.StartSpan("second") // want `span leak: sp is overwritten while still unended \(started at line \d+\)`
	sp.End()
}
