package spanend_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spanend.Analyzer, "a")
}
