// Package spanend checks that every started obs.Span is ended on every
// path. A call to a method named StartSpan returning a *Span starts a
// span; the span must reach End or EndDur — directly, through a defer,
// or inside a deferred function literal — before the function returns or
// re-enters a loop iteration, on success and error paths alike. A span
// that is never ended never reaches its trace's flight-recorder record,
// so the request's slow-trace evidence silently loses the span and every
// child under it.
//
// The check is flow-sensitive, in the manner of pinleak: it walks every
// path through the function body tracking the set of unended spans. It
// understands the idiomatic shapes the tracing plumbing uses:
//
//   - nil guards: the Span API is nil-safe and span-producing wrappers
//     return nil when tracing is off, so on the `sp == nil` side of a
//     guard the obligation vanishes;
//   - defer end, including `defer sp.End()` and defers of function
//     literals whose body ends the span;
//   - ownership transfer: returning the span (which marks the function
//     as a span-returning wrapper whose callers inherit the obligation),
//     assigning it to a field, passing it to another function, or
//     storing it in a composite literal;
//   - goroutine bodies: function literals are checked as functions in
//     their own right.
//
// Matching is by method name and result type name (StartSpan returning a
// named type Span), so analysistest packages can model the obs API with
// local stand-in types. `//xrvet:spanend-ignore` on a function
// declaration suppresses the check for that function.
package spanend

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"xrtree/internal/analysis"
)

// Analyzer is the spanend analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "check that every started obs.Span is ended (End/EndDur) on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		wrappers: map[types.Object]int{},
		reported: map[string]bool{},
		ignore:   analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:spanend-ignore"),
	}
	// Fixpoint pass: discover span-returning wrappers (whose callers then
	// inherit the obligation) before reporting anything.
	c.collect = true
	for range 4 {
		c.changed = false
		c.walkAll()
		if !c.changed {
			break
		}
	}
	c.collect = false
	c.walkAll()
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	// wrappers maps a function object to the result index at which it
	// returns a span it started: callers own that span.
	wrappers map[types.Object]int
	collect  bool
	changed  bool
	reported map[string]bool
	ignore   map[analysis.LineKey]string
}

func (c *checker) walkAll() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil || analysis.Annotated(c.pass.Fset, c.ignore, fn.Pos()) {
					return false
				}
				c.checkFunc(fn.Body, c.pass.TypesInfo.Defs[fn.Name])
			case *ast.FuncLit:
				// Checked as a function of its own: spans it starts must end
				// inside it; spans of the enclosing function reaching in are
				// that function's transfers.
				c.checkFunc(fn.Body, nil)
			}
			return true
		})
	}
}

// oblig is one unended span on one path.
type oblig struct {
	obj types.Object // the span variable
	key string       // source text, for diagnostics
	pos token.Pos    // StartSpan site
}

type state []oblig

func (st state) clone() state {
	out := make(state, len(st))
	copy(out, st)
	return out
}

func (st state) sig() string {
	s := ""
	for _, o := range st {
		s += o.key + "@" + strconv.Itoa(int(o.pos)) + ";"
	}
	return s
}

func (st state) drop(obj types.Object) state {
	out := st[:0:0]
	for _, o := range st {
		if o.obj != obj {
			out = append(out, o)
		}
	}
	return out
}

type outKind int

const (
	outFall outKind = iota
	outBreak
	outContinue
	outTerm
)

type outcome struct {
	kind outKind
	st   state
}

func mergeOutcomes(outs []outcome) []outcome {
	seen := map[string]bool{}
	var res []outcome
	for _, o := range outs {
		key := strconv.Itoa(int(o.kind)) + "|" + o.st.sig()
		if seen[key] {
			continue
		}
		seen[key] = true
		res = append(res, o)
		if len(res) >= 64 {
			break
		}
	}
	return res
}

type walker struct {
	c     *checker
	fnObj types.Object // nil for function literals
}

func (c *checker) checkFunc(body *ast.BlockStmt, fnObj types.Object) {
	w := &walker{c: c, fnObj: fnObj}
	outs := w.walkList(body.List, nil)
	for _, o := range outs {
		if o.kind == outFall {
			w.reportLeaks(o.st, body.Rbrace)
		}
	}
}

func (w *walker) walkList(stmts []ast.Stmt, st state) []outcome {
	if len(stmts) == 0 {
		return []outcome{{outFall, st}}
	}
	first := w.walkStmt(stmts[0], st)
	var res []outcome
	for _, o := range first {
		if o.kind == outFall {
			res = append(res, w.walkList(stmts[1:], o.st)...)
		} else {
			res = append(res, o)
		}
	}
	return mergeOutcomes(res)
}

func (w *walker) walkStmt(s ast.Stmt, st state) []outcome {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return []outcome{{outFall, w.assign(st, s.Lhs, s.Rhs, s.Pos())}}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					st = w.assign(st, lhs, vs.Values, s.Pos())
				}
			}
		}
		return []outcome{{outFall, st}}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if analysis.CalleeName(call) == "panic" {
				return []outcome{{outTerm, st}}
			}
			if w.acquireIndex(call) >= 0 {
				if !w.c.collect {
					w.report(s.Pos(), "span leak: started span from %s is discarded — end it or hand it to an owner", types.ExprString(call.Fun))
				}
				return []outcome{{outFall, w.scanExprs(st, s.X)}}
			}
		}
		return []outcome{{outFall, w.scanExprs(st, s.X)}}
	case *ast.ReturnStmt:
		st = w.scanExprs(st, s.Results...)
		st = w.returnTransfers(st, s.Results)
		w.reportLeaks(st, s.Pos())
		return []outcome{{outTerm, st}}
	case *ast.DeferStmt:
		return []outcome{{outFall, w.deferred(st, s.Call)}}
	case *ast.GoStmt:
		return []outcome{{outFall, w.deferred(st, s.Call)}}
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		return w.forStmt(s, st)
	case *ast.RangeStmt:
		return w.rangeStmt(s, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.simple(s.Init, st)
		}
		st = w.scanExprs(st, s.Tag)
		return w.clauses(s.Body, st, hasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.simple(s.Init, st)
		}
		return w.clauses(s.Body, st, hasDefault(s.Body))
	case *ast.SelectStmt:
		return w.clauses(s.Body, st, true)
	case *ast.BlockStmt:
		return w.walkList(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return []outcome{{outBreak, st}}
		case token.CONTINUE:
			return []outcome{{outContinue, st}}
		case token.FALLTHROUGH:
			return []outcome{{outFall, st}}
		default: // goto
			return []outcome{{outTerm, st}}
		}
	case *ast.SendStmt:
		return []outcome{{outFall, w.scanExprs(st, s.Chan, s.Value)}}
	}
	return []outcome{{outFall, st}}
}

func (w *walker) simple(s ast.Stmt, st state) state {
	for _, o := range w.walkStmt(s, st) {
		if o.kind == outFall {
			return o.st
		}
	}
	return st
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

func (w *walker) clauses(body *ast.BlockStmt, st state, exhaustive bool) []outcome {
	var res []outcome
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			st2 := w.scanExprs(st.clone(), cl.List...)
			res = append(res, w.walkList(cl.Body, st2)...)
		case *ast.CommClause:
			st2 := st.clone()
			if cl.Comm != nil {
				st2 = w.simple(cl.Comm, st2)
			}
			res = append(res, w.walkList(cl.Body, st2)...)
		}
	}
	if !exhaustive {
		res = append(res, outcome{outFall, st})
	}
	for i, o := range res {
		if o.kind == outBreak {
			res[i].kind = outFall
		}
	}
	return mergeOutcomes(res)
}

func (w *walker) ifStmt(s *ast.IfStmt, st state) []outcome {
	if s.Init != nil {
		st = w.simple(s.Init, st)
	}
	st = w.scanExprs(st, s.Cond)
	thenSt, elseSt := w.applyGuard(st, s.Cond)
	res := w.walkList(s.Body.List, thenSt)
	if s.Else != nil {
		res = append(res, w.walkStmt(s.Else, elseSt)...)
	} else {
		res = append(res, outcome{outFall, elseSt})
	}
	return mergeOutcomes(res)
}

// applyGuard interprets `sp == nil` / `sp != nil` conditions on a tracked
// span: on the nil side the span was never started (wrappers return nil
// with tracing off, and the Span API is nil-safe), so the obligation
// vanishes there.
func (w *walker) applyGuard(st state, cond ast.Expr) (thenSt, elseSt state) {
	thenSt, elseSt = st.clone(), st.clone()
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return
	}
	id := guardOperand(be)
	if id == nil {
		return
	}
	obj := w.obj(id)
	if obj == nil {
		return
	}
	for _, o := range st {
		if o.obj != obj {
			continue
		}
		if be.Op == token.EQL { // sp == nil: then = never started
			thenSt = thenSt.drop(obj)
		} else { // sp != nil: else = never started
			elseSt = elseSt.drop(obj)
		}
	}
	return
}

func guardOperand(be *ast.BinaryExpr) *ast.Ident {
	if isNil(be.Y) {
		if id, ok := be.X.(*ast.Ident); ok {
			return id
		}
	}
	if isNil(be.X) {
		if id, ok := be.Y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func (w *walker) forStmt(s *ast.ForStmt, st state) []outcome {
	if s.Init != nil {
		st = w.simple(s.Init, st)
	}
	st = w.scanExprs(st, s.Cond)
	body := w.walkList(s.Body.List, st.clone())
	var res []outcome
	for _, o := range body {
		switch o.kind {
		case outFall, outContinue:
			w.reportLoopLeaks(o.st, s.Body)
			if s.Cond != nil {
				res = append(res, outcome{outFall, dropBodySpans(o.st, s.Body)})
			}
		case outBreak:
			res = append(res, outcome{outFall, o.st})
		default:
			res = append(res, o)
		}
	}
	if s.Cond != nil {
		res = append(res, outcome{outFall, st})
	}
	return mergeOutcomes(res)
}

func (w *walker) rangeStmt(s *ast.RangeStmt, st state) []outcome {
	st = w.scanExprs(st, s.X)
	body := w.walkList(s.Body.List, st.clone())
	var res []outcome
	for _, o := range body {
		switch o.kind {
		case outFall, outContinue:
			w.reportLoopLeaks(o.st, s.Body)
			res = append(res, outcome{outFall, dropBodySpans(o.st, s.Body)})
		case outBreak:
			res = append(res, outcome{outFall, o.st})
		default:
			res = append(res, o)
		}
	}
	res = append(res, outcome{outFall, st})
	return mergeOutcomes(res)
}

func dropBodySpans(st state, body *ast.BlockStmt) state {
	out := st[:0:0]
	for _, o := range st {
		if o.pos > body.Lbrace && o.pos < body.Rbrace {
			continue
		}
		out = append(out, o)
	}
	return out
}

// assign processes one assignment: ends and transfers in the RHS,
// alias/overwrite bookkeeping, then span acquisition.
func (w *walker) assign(st state, lhs, rhs []ast.Expr, pos token.Pos) state {
	st = w.scanExprs(st, rhs...)

	// A tracked span appearing as a plain RHS value moves: to the LHS
	// variable when that is a same-typed ident (aliasing, obligation
	// follows), otherwise out of this function's hands (field stores,
	// interface captures — the new holder owns the End).
	for i, r := range rhs {
		id, ok := r.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.obj(id)
		if obj == nil || !holds(st, obj) {
			continue
		}
		if len(lhs) == len(rhs) {
			if lid, ok := lhs[i].(*ast.Ident); ok && lid.Name != "_" {
				if dst := w.obj(lid); dst != nil && isSpanType(w.c.pass.TypesInfo.TypeOf(lid)) {
					st = moveOblig(st, obj, dst, types.ExprString(lid))
					continue
				}
			}
		}
		st = st.drop(obj)
	}

	var acq *ast.CallExpr
	idx := -1
	if len(rhs) == 1 {
		if call, ok := rhs[0].(*ast.CallExpr); ok {
			if i := w.acquireIndex(call); i >= 0 {
				acq, idx = call, i
			}
		}
	}

	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.obj(id)
		if obj == nil {
			continue
		}
		for _, o := range st {
			if o.obj == obj && !w.c.collect {
				w.report(pos, "span leak: %s is overwritten while still unended (started at line %d)",
					o.key, w.line(o.pos))
			}
		}
		st = st.drop(obj)
	}

	if acq != nil && idx < len(lhs) {
		if id, ok := lhs[idx].(*ast.Ident); ok {
			if id.Name == "_" {
				if !w.c.collect {
					w.report(pos, "span leak: started span from %s is discarded — end it or hand it to an owner",
						types.ExprString(acq.Fun))
				}
			} else if obj := w.obj(id); obj != nil {
				st = append(st.clone(), oblig{obj: obj, key: types.ExprString(id), pos: pos})
			}
		}
	}
	return st
}

func holds(st state, obj types.Object) bool {
	for _, o := range st {
		if o.obj == obj {
			return true
		}
	}
	return false
}

func moveOblig(st state, from, to types.Object, key string) state {
	out := st.clone()
	for i := range out {
		if out[i].obj == from {
			out[i].obj = to
			out[i].key = key
		}
	}
	return out
}

// returnTransfers hands returned spans to the caller and records the
// function as a span-returning wrapper.
func (w *walker) returnTransfers(st state, results []ast.Expr) state {
	for i, r := range results {
		switch r := r.(type) {
		case *ast.CallExpr:
			// `return tr.Root().StartSpan(name), tr` — the span is born
			// directly into the caller's hands.
			if w.acquireIndex(r) == 0 && len(results) > 0 {
				w.recordWrapper(i)
			}
		case *ast.Ident:
			obj := w.obj(r)
			if obj == nil || !holds(st, obj) {
				continue
			}
			w.recordWrapper(i)
			st = st.drop(obj)
		}
	}
	return st
}

func (w *walker) recordWrapper(resultIdx int) {
	if w.fnObj == nil {
		return
	}
	if _, ok := w.c.wrappers[w.fnObj]; !ok {
		w.c.wrappers[w.fnObj] = resultIdx
		w.c.changed = true
	}
}

// deferred handles defer/go: a deferred End covers the span for the rest
// of the function, as does a deferred closure ending it; a span passed as
// an argument is transferred.
func (w *walker) deferred(st state, call *ast.CallExpr) state {
	if obj := w.endReceiver(call); obj != nil {
		return st.drop(obj)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if obj := w.endReceiver(c); obj != nil {
					st = st.drop(obj)
				}
			}
			return true
		})
		return st
	}
	return w.scanExprs(st, call)
}

// scanExprs folds End calls and ownership transfers found anywhere in the
// given expressions into st. Function-literal bodies are skipped: they
// run later (or never) and are analyzed as functions of their own — but a
// tracked span captured by one transfers there.
func (w *walker) scanExprs(st state, exprs ...ast.Expr) state {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A closure capturing the span takes over its lifecycle
				// (parallel task bodies end their own spans).
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := w.obj(id); obj != nil && holds(st, obj) {
							st = st.drop(obj)
						}
					}
					return true
				})
				return false
			case *ast.CallExpr:
				if obj := w.endReceiver(n); obj != nil {
					st = st.drop(obj)
					return true
				}
				if tv, ok := w.c.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					return true
				}
				for _, arg := range n.Args {
					if id, ok := arg.(*ast.Ident); ok {
						if obj := w.obj(id); obj != nil {
							st = st.drop(obj)
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if id, ok := el.(*ast.Ident); ok {
						if obj := w.obj(id); obj != nil {
							st = st.drop(obj)
						}
					}
				}
			}
			return true
		})
	}
	return st
}

// endReceiver returns the tracked span variable a `sp.End()` /
// `sp.EndDur(d)` call discharges, or nil.
func (w *walker) endReceiver(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndDur") {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if !isSpanType(w.c.pass.TypesInfo.TypeOf(sel.X)) {
		return nil
	}
	return w.obj(id)
}

// acquireIndex reports whether call starts a span the caller owns: 0 for
// a direct StartSpan call, the recorded result index for a wrapper, -1
// otherwise.
func (w *walker) acquireIndex(call *ast.CallExpr) int {
	if analysis.CalleeName(call) == "StartSpan" && isSpanType(w.c.pass.TypesInfo.TypeOf(call)) {
		return 0
	}
	if idx, ok := w.c.wrappers[w.calleeObj(call)]; ok {
		return idx
	}
	return -1
}

func isSpanType(t types.Type) bool {
	return analysis.TypeNameIs(t, "", "Span")
}

func (w *walker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return w.c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return w.c.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func (w *walker) obj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return w.c.pass.TypesInfo.Defs[id]
}

func (w *walker) reportLeaks(st state, at token.Pos) {
	if w.c.collect {
		return
	}
	for _, o := range st {
		w.report(at, "span leak: %s started at line %d is not ended on this return path", o.key, w.line(o.pos))
	}
}

func (w *walker) reportLoopLeaks(st state, body *ast.BlockStmt) {
	if w.c.collect {
		return
	}
	for _, o := range st {
		if o.pos > body.Lbrace && o.pos < body.Rbrace {
			w.report(o.pos, "span leak: %s started at line %d is not ended when the loop repeats", o.key, w.line(o.pos))
		}
	}
}

func (w *walker) report(at token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := strconv.Itoa(int(at)) + "|" + msg
	if w.c.reported[key] {
		return
	}
	w.c.reported[key] = true
	w.c.pass.Report(analysis.Diagnostic{Pos: at, Message: msg})
}

func (w *walker) line(pos token.Pos) int {
	return w.c.pass.Fset.Position(pos).Line
}
