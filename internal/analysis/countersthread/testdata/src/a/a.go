// Package a exercises the countersthread analyzer with a local Counters
// stand-in: value copies and nil-drops are flagged, snapshots by return
// and annotated drops are not.
package a

import "context"

type Counters struct {
	ElementsScanned int64
	Ctx             context.Context
}

// countedLayer stands in for an instrumented storage-layer entry point.
func countedLayer(n int, c *Counters) {}

func variadicSink(vals ...interface{}) {}

// ---- negative cases ----

func goodPtrParam(c *Counters) {
	c.ElementsScanned++
}

// goodSnapshotReturn returns a value copy deliberately — the snapshot
// idiom (Pool.Stats, metrics.FromSnapshot) is allowed.
func goodSnapshotReturn(c *Counters) Counters {
	return *c
}

func goodThreaded(c *Counters) {
	countedLayer(1, c)
}

// goodNilWithoutCounters has no counters to give, so nil is fine.
func goodNilWithoutCounters(n int) {
	countedLayer(n, nil)
}

func goodAnnotatedDrop(c *Counters) {
	//xrvet:nocounters totals are reported by the caller
	countedLayer(1, nil)
}

func goodVariadicNil(c *Counters) {
	variadicSink(nil)
}

// ---- positive cases ----

func badValueParam(c Counters) { // want `Counters passed by value: increments accumulate into a copy; pass \*Counters`
	c.ElementsScanned++
}

func badDerefCopy(c *Counters) int64 {
	local := *c // want `Counters deref-copied: increments into the copy are lost; keep the pointer`
	local.ElementsScanned++
	return local.ElementsScanned
}

func badDerefCopyVar(c *Counters) int64 {
	var local Counters = *c // want `Counters deref-copied: increments into the copy are lost; keep the pointer`
	return local.ElementsScanned
}

func badNilDrop(c *Counters) {
	countedLayer(1, nil) // want `nil Counters passed to a counted layer while the caller has a \*Counters`
}

func badLitParam() func(Counters) {
	return func(c Counters) { // want `Counters passed by value: increments accumulate into a copy; pass \*Counters`
		c.ElementsScanned++
	}
}
