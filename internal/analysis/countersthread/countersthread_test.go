package countersthread_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/countersthread"
)

func TestCountersThread(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), countersthread.Analyzer, "a")
}
