// Package countersthread enforces the metrics.Counters threading
// contract. Counters is a plain (non-atomic) struct that accumulates in
// place; the design threads exactly one *Counters down each query path
// (or one per parallel task, merged afterward). Two bug classes break
// that contract silently:
//
//   - copying Counters by value — a value parameter or a `x := *c`
//     deref-copy accumulates into the copy and the increments are lost
//     when it dies (value *returns* are fine: Pool.Stats and
//     metrics.FromSnapshot hand out deliberate snapshots);
//
//   - dropping the counters mid-path — calling a counted layer with a
//     literal nil Counters argument while the caller itself received a
//     *Counters: the callee's page accesses and element scans vanish
//     from the query's accounting, and with them the Ctx cancellation
//     checks. `//xrvet:nocounters <reason>` on the call line (or the
//     line above) documents the rare deliberate drop.
package countersthread

import (
	"go/ast"
	"go/types"

	"xrtree/internal/analysis"
)

// Analyzer is the countersthread analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "countersthread",
	Doc:  "flag Counters passed by value, deref-copied, or dropped (nil) when calling counted layers",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	nocounters := analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:nocounters")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkParams(pass, n.Type)
				if n.Body != nil {
					checkBody(pass, n.Type, n.Body, nocounters)
				}
				return false // checkBody descends, including into FuncLits
			case *ast.FuncLit:
				checkParams(pass, n.Type)
			}
			return true
		})
	}
	return nil, nil
}

// isCounters reports whether t is the named type Counters (any package
// named metrics, or a testdata stand-in).
func isCounters(t types.Type) bool {
	n, _ := types.Unalias(t).(*types.Named)
	return n != nil && n.Obj().Name() == "Counters"
}

func isCountersPtr(t types.Type) bool {
	p, ok := types.Unalias(t).Underlying().(*types.Pointer)
	return ok && isCounters(p.Elem())
}

// checkParams flags value-typed Counters parameters.
func checkParams(pass *analysis.Pass, ftype *ast.FuncType) {
	if ftype.Params == nil {
		return
	}
	for _, fld := range ftype.Params.List {
		t := pass.TypesInfo.TypeOf(fld.Type)
		if t != nil && isCounters(t) {
			pass.Reportf(fld.Pos(), "Counters passed by value: increments accumulate into a copy; pass *Counters")
		}
	}
}

// checkBody flags deref-copies and nil-drops inside one function.
func checkBody(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt, nocounters map[analysis.LineKey]string) {
	hasCounters := false
	if ftype.Params != nil {
		for _, fld := range ftype.Params.List {
			if t := pass.TypesInfo.TypeOf(fld.Type); t != nil && isCountersPtr(t) {
				hasCounters = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				checkDerefCopy(pass, r)
			}
		case *ast.ValueSpec:
			for _, r := range n.Values {
				checkDerefCopy(pass, r)
			}
		case *ast.CallExpr:
			if hasCounters {
				checkNilDrop(pass, n, nocounters)
			}
		case *ast.FuncLit:
			// Nested literals are checked with their own parameter set.
			checkParams(pass, n.Type)
			checkBody(pass, n.Type, n.Body, nocounters)
			return false
		}
		return true
	})
}

// checkDerefCopy flags `x := *c` for c *Counters.
func checkDerefCopy(pass *analysis.Pass, e ast.Expr) {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return
	}
	if t := pass.TypesInfo.TypeOf(star.X); t != nil && isCountersPtr(t) {
		pass.Reportf(e.Pos(), "Counters deref-copied: increments into the copy are lost; keep the pointer")
	}
}

// checkNilDrop flags literal nil passed where the callee expects a
// *Counters, in a function that has one to give.
func checkNilDrop(pass *analysis.Pass, call *ast.CallExpr, nocounters map[analysis.LineKey]string) {
	sig, ok := types.Unalias(pass.TypesInfo.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if pass.TypesInfo.Uses[id] != nil && pass.TypesInfo.Uses[id] != types.Universe.Lookup("nil") {
			continue // shadowed nil, not the predeclared one
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			continue // variadic tail: element type check not worth the noise
		}
		if pi >= sig.Params().Len() {
			continue
		}
		if !isCountersPtr(sig.Params().At(pi).Type()) {
			continue
		}
		if analysis.Annotated(pass.Fset, nocounters, arg.Pos()) {
			continue
		}
		pass.Reportf(arg.Pos(), "nil Counters passed to a counted layer while the caller has a *Counters; thread it through or annotate //xrvet:nocounters <reason>")
	}
}
