// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework, built only on the standard
// library so the repo's custom vet checks (cmd/xrvet) carry no module
// dependencies. It provides the same core vocabulary — Analyzer, Pass,
// Diagnostic — plus a package loader (loader.go) and a want-comment test
// harness (analysistest.go).
//
// The subset is deliberately small: no facts, no cross-analyzer requires,
// no suggested fixes. Each analyzer gets one fully type-checked package at
// a time and reports diagnostics through Pass.Reportf. Cross-package
// knowledge (for example, that bufferpool.Pool.Fetch pins a page) is
// encoded in the analyzers by name-matching on types and methods, which
// also lets the testdata packages model those APIs with local stand-in
// types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. The returned value is unused by this framework (kept for
	// signature compatibility with go/analysis).
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver and the test harness
	// install their own sinks.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies each analyzer to pkg and returns the collected diagnostics
// in source order. Analyzer errors (not findings) are returned as-is.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny and this avoids pulling in
	// sort just for a stable position ordering.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diags[j].Pos < diags[j-1].Pos; j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}
