package errclass_test

import (
	"testing"

	"xrtree/internal/analysis/analysistest"
	"xrtree/internal/analysis/errclass"
)

func TestErrClass(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errclass.Analyzer, "a")
}
