// Package a models the cluster coordinator's error contract for the
// errclass analyzer tests: a ShardError type, a classify helper, a
// shard-clean exec, and gather-shaped callers that do and do not honor
// the boundary.
package a

import (
	"errors"
	"fmt"
)

type ShardError struct {
	Shard     string
	Msg       string
	Retriable bool
}

func (e *ShardError) Error() string { return e.Shard + ": " + e.Msg }

var errUnavailable = errors.New("a: unavailable")

func classify(shard string, err error) *ShardError {
	return &ShardError{Shard: shard, Msg: err.Error()}
}

type Coordinator struct{}

func (c *Coordinator) post(shard string) ([]byte, error) { return nil, nil }

// exec is shard-clean: every error it returns is classified.
func (c *Coordinator) exec(shard string) ([]byte, error) {
	b, err := c.post(shard)
	if err != nil {
		return nil, classify(shard, err)
	}
	return b, nil
}

// decodeInto returns naked errors; it is not a boundary function itself
// (no shard-typed return), but its summary taints boundary callers.
func decodeInto(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("a: empty response")
	}
	return nil
}

// ---- negative cases ----

// goodGather wraps the decode failure before it crosses the boundary.
func (c *Coordinator) goodGather(shards []string) error {
	for _, s := range shards {
		b, err := c.exec(s)
		if err != nil {
			return err
		}
		if derr := decodeInto(b); derr != nil {
			return classify(s, derr)
		}
	}
	return nil
}

// goodForward forwards a shard-clean callee's results wholesale.
func (c *Coordinator) goodForward(shard string) ([]byte, error) {
	return c.exec(shard)
}

// goodValidation deliberately maps a bad request to a plain error (400,
// not a shard 502); the escape carries its justification.
func (c *Coordinator) goodValidation(kind, shard string) error {
	if kind != "join" && kind != "query" {
		//xrvet:errclass-ok request validation must map to 400, not a shard 502
		return fmt.Errorf("a: unknown request kind %q", kind)
	}
	_, err := c.exec(shard)
	return err
}

// plumbing has no shard-typed return: out of contract, callers wrap.
func plumbing(addr string) error {
	if addr == "" {
		return errors.New("a: empty address")
	}
	return nil
}

// ---- positive cases ----

// badGather's task closure hands decodeInto's naked error straight
// across the boundary — the shape of the real coordinator bug.
func (c *Coordinator) badGather(shards []string) []func() error {
	var tasks []func() error
	for _, s := range shards {
		s := s
		tasks = append(tasks, func() error {
			b, err := c.exec(s)
			if err != nil {
				return err
			}
			return decodeInto(b) // want `error crossing the shard boundary is not a \*ShardError`
		})
	}
	return tasks
}

// badVar launders the naked constructor through a local variable.
func (c *Coordinator) badVar(shard string) error {
	if shard == "" {
		return &ShardError{Shard: shard, Msg: "no shard"}
	}
	err := errors.New("a: raw failure")
	return err // want `error crossing the shard boundary is not a \*ShardError`
}

// badWrap: fmt.Errorf-wrapping a ShardError still hides the type from
// errors.As-free switches on the boundary.
func (c *Coordinator) badWrap(shard string) error {
	_, err := c.exec(shard)
	if err != nil {
		return fmt.Errorf("a: shard %s: %w", shard, err) // want `error crossing the shard boundary is not a \*ShardError`
	}
	return classify(shard, errUnavailable)
}

// badBare carries an escape with no justification: rejected.
func (c *Coordinator) badBare(shard string) error {
	if shard == "" {
		//xrvet:errclass-ok
		return errors.New("a: missing shard") // want `bare //xrvet:errclass-ok escape: add a justification`
	}
	return classify(shard, errUnavailable)
}
