// Package errclass enforces the cluster's shard-boundary error contract:
// every error a coordinator-side function hands across the shard
// boundary must be a typed *ShardError — built literally or run through
// classify — so the router can decide retriable-vs-fatal, fire hedges,
// and map shard failures to 502 instead of 400. A naked fmt.Errorf or
// errors.New escaping such a function defeats all three at once, which
// is exactly how a malformed shard response once skipped the
// partial-result policy.
//
// A function is a *boundary* function when at least one of its return
// paths produces a *ShardError (a literal, a classify call, or a call to
// a function summarized as shard-clean). In a boundary function, every
// other error return must be shard-typed too; returns of naked
// constructor errors (fmt.Errorf, errors.New — directly, via a local
// variable, or via a call to a function summarized as naked-returning)
// are flagged. Functions with no shard-typed return (config validation,
// HTTP plumbing) are out of contract and unchecked — their callers wrap.
//
// Summaries are propagated to a fixpoint through same-package calls, so
// helper chains (exec → attempt → classify) keep their classification.
// Function literals are checked too: the coordinator's scatter-gather
// task closures are the boundary's busiest crossing.
//
// The package is only checked when it declares a named type ShardError,
// so the analyzer self-scopes to the cluster package and its testdata
// stand-ins. `//xrvet:errclass-ok <reason>` on the return line (or the
// line above) escapes a deliberate plain-error return — request
// validation that must map to 400, not 502. The justification is
// mandatory; a bare `//xrvet:errclass-ok` is itself a finding.
package errclass

import (
	"go/ast"
	"go/types"

	"xrtree/internal/analysis"
)

// Analyzer is the errclass analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errclass",
	Doc:  "check that errors crossing the cluster's shard boundary are typed ShardError",
	Run:  run,
}

// kind classifies one error-position return expression.
type kind int

const (
	unknownK kind = iota
	nilK
	shardK // *ShardError literal, classify call, or shard-clean callee
	nakedK // fmt.Errorf / errors.New lineage
)

// summary classifies one function's error returns as a whole.
type summary int

const (
	sumUnknown summary = iota
	sumClean           // every error return is nil or shard-typed
	sumNaked           // some return is a naked constructor error
)

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Scope().Lookup("ShardError") == nil {
		return nil, nil
	}
	c := &checker{
		pass:      pass,
		summaries: map[types.Object]summary{},
		escapes:   analysis.CommentLines(pass.Fset, pass.Files, "//xrvet:errclass-ok"),
	}
	for range 4 {
		c.changed = false
		c.forEachFunc(func(body *ast.BlockStmt, ftype *ast.FuncType, obj types.Object) {
			s, _ := c.classifyFunc(body, ftype)
			if obj == nil {
				return
			}
			if old := c.summaries[obj]; s != old && old == sumUnknown {
				c.summaries[obj] = s
				c.changed = true
			}
		})
		if !c.changed {
			break
		}
	}
	c.report = true
	c.forEachFunc(func(body *ast.BlockStmt, ftype *ast.FuncType, obj types.Object) {
		c.classifyFunc(body, ftype)
	})
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	summaries map[types.Object]summary
	escapes   map[analysis.LineKey]string
	changed   bool
	report    bool
}

func (c *checker) forEachFunc(fn func(*ast.BlockStmt, *ast.FuncType, types.Object)) {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body, d.Type, c.pass.TypesInfo.Defs[d.Name])
				}
			case *ast.FuncLit:
				fn(d.Body, d.Type, nil)
			}
			return true
		})
	}
}

// classifyFunc classifies every error-position return in the body and,
// in report mode, flags naked returns when the function is a boundary
// function. It returns the function's summary.
func (c *checker) classifyFunc(body *ast.BlockStmt, ftype *ast.FuncType) (summary, bool) {
	errIdx := errResultIndexes(c.pass.TypesInfo, ftype)
	if len(errIdx) == 0 {
		return sumUnknown, false
	}
	type ret struct {
		expr ast.Expr
		k    kind
	}
	var rets []ret
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals are classified on their own.
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rs, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(rs.Results) == 0 {
			return true // naked return of named results: unclassifiable
		}
		if len(rs.Results) == 1 && len(errIdx) >= 1 && errIdx[0] != 0 {
			// `return f()` forwarding a multi-result call.
			if call, ok := rs.Results[0].(*ast.CallExpr); ok {
				rets = append(rets, ret{call, c.classifyExpr(body, call)})
			}
			return true
		}
		for _, i := range errIdx {
			if i < len(rs.Results) {
				rets = append(rets, ret{rs.Results[i], c.classifyExpr(body, rs.Results[i])})
			}
		}
		return true
	})

	boundary := false
	naked := false
	clean := true
	for _, r := range rets {
		switch r.k {
		case shardK:
			boundary = true
		case nakedK:
			naked = true
			clean = false
		case unknownK:
			clean = false
		}
	}
	if c.report && boundary {
		for _, r := range rets {
			if r.k == nakedK {
				c.flag(r.expr)
			}
		}
	}
	switch {
	case naked:
		return sumNaked, boundary
	case clean:
		return sumClean, boundary
	default:
		return sumUnknown, boundary
	}
}

func (c *checker) flag(expr ast.Expr) {
	reason, annotated := analysis.Annotation(c.pass.Fset, c.escapes, expr.Pos())
	if annotated {
		if reason == "" {
			c.pass.Reportf(expr.Pos(),
				"bare //xrvet:errclass-ok escape: add a justification (//xrvet:errclass-ok <reason>)")
		}
		return
	}
	c.pass.Reportf(expr.Pos(),
		"error crossing the shard boundary is not a *ShardError: %s — build a ShardError or run it through classify so retriable-vs-fatal routing, hedging, and the partial-result policy see it; annotate deliberate plain errors with //xrvet:errclass-ok <reason>",
		types.ExprString(expr))
}

// classifyExpr classifies one error-position expression.
func (c *checker) classifyExpr(body *ast.BlockStmt, e ast.Expr) kind {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return nilK
		}
		if isShardType(c.pass.TypesInfo.TypeOf(e)) {
			return shardK
		}
		return c.classifyVar(body, e)
	case *ast.UnaryExpr, *ast.CompositeLit:
		if isShardType(c.pass.TypesInfo.TypeOf(e.(ast.Expr))) {
			return shardK
		}
		return unknownK
	case *ast.CallExpr:
		return c.classifyCall(e)
	}
	if isShardType(c.pass.TypesInfo.TypeOf(e)) {
		return shardK
	}
	return unknownK
}

// classifyCall classifies the error a call produces.
func (c *checker) classifyCall(call *ast.CallExpr) kind {
	if isShardType(c.pass.TypesInfo.TypeOf(call)) {
		return shardK // classify(...) and friends: static result type *ShardError
	}
	if pkg, name := stdCallee(c.pass.TypesInfo, call); pkg != "" {
		if (pkg == "fmt" && name == "Errorf") || (pkg == "errors" && (name == "New" || name == "Join")) {
			return nakedK
		}
	}
	switch c.summaries[c.calleeObj(call)] {
	case sumClean:
		return shardK
	case sumNaked:
		return nakedK
	}
	return unknownK
}

// classifyVar classifies a local error variable from every assignment to
// it in the enclosing body: all shard/nil sources → shard, any naked
// source → naked.
func (c *checker) classifyVar(body *ast.BlockStmt, id *ast.Ident) kind {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return unknownK
	}
	k := unknownK
	sawNaked := false
	sawShard := false
	sawOther := false
	consider := func(e ast.Expr) {
		switch c.classifyRHS(e) {
		case nakedK:
			sawNaked = true
		case shardK, nilK:
			sawShard = true
		default:
			sawOther = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				lid, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				lobj := c.pass.TypesInfo.Defs[lid]
				if lobj == nil {
					lobj = c.pass.TypesInfo.Uses[lid]
				}
				if lobj != obj {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					consider(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					// Multi-value call: the error position follows the callee's
					// summary.
					consider(n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				nobj := c.pass.TypesInfo.Defs[name]
				if nobj != obj {
					continue
				}
				if i < len(n.Values) {
					consider(n.Values[i])
				} else if len(n.Values) == 1 {
					consider(n.Values[0])
				}
			}
		}
		return true
	})
	switch {
	case sawNaked:
		k = nakedK
	case sawShard && !sawOther:
		k = shardK
	}
	return k
}

// classifyRHS classifies an assignment source feeding an error variable.
func (c *checker) classifyRHS(e ast.Expr) kind {
	switch e := e.(type) {
	case *ast.CallExpr:
		return c.classifyCall(e)
	case *ast.Ident:
		if e.Name == "nil" {
			return nilK
		}
		if isShardType(c.pass.TypesInfo.TypeOf(e)) {
			return shardK
		}
		return unknownK
	case *ast.UnaryExpr, *ast.CompositeLit:
		if isShardType(c.pass.TypesInfo.TypeOf(e.(ast.Expr))) {
			return shardK
		}
	}
	return unknownK
}

func isShardType(t types.Type) bool {
	return analysis.TypeNameIs(t, "", "ShardError")
}

// errResultIndexes returns the result positions with static type error.
func errResultIndexes(info *types.Info, ftype *ast.FuncType) []int {
	if ftype.Results == nil {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	var out []int
	idx := 0
	for _, fld := range ftype.Results.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		t := info.TypeOf(fld.Type)
		for range n {
			if t != nil && types.Identical(t, errType) {
				out = append(out, idx)
			}
			idx++
		}
	}
	return out
}

// stdCallee resolves pkg.Fn calls on an imported package (fmt.Errorf,
// errors.New).
func stdCallee(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if pn, ok := info.Uses[x].(*types.PkgName); ok {
		return pn.Imported().Path(), sel.Sel.Name
	}
	return "", ""
}

func (c *checker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
