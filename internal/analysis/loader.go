package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses packages from source and resolves their imports from the
// gc export data of the enclosing module's build. `go list -export -deps`
// hands back the export files the toolchain already produced (compiling
// on demand), so imports — standard library and module-internal alike —
// type-check without golang.org/x/tools and without re-checking whole
// dependency source trees. Only the package under analysis is parsed; its
// imports are opaque type information, which is all the analyzers need.
type Loader struct {
	Fset    *token.FileSet
	ModDir  string // module root (directory containing go.mod)
	ModPath string // module path from go.mod

	exports map[string]string // import path -> export data file
	imp     types.Importer
	pkgs    map[string]*Package // memoized by directory
}

// NewLoader builds a loader for the module enclosing dir.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModDir:  modDir,
		ModPath: modPath,
		exports: map[string]string{},
		pkgs:    map[string]*Package{},
	}
	out, _, err := goList(modDir, "-export", "-deps", "-f", "{{.ImportPath}}={{.Export}}", "./...")
	if err != nil {
		return nil, fmt.Errorf("analysis: listing export data: %w", err)
	}
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '='); i > 0 && i+1 < len(line) {
			l.exports[line[:i]] = line[i+1:]
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (package outside the module's dependency closure)", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

func goList(dir string, args ...string) (out, warnings string, err error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	outb, err := cmd.Output()
	if err != nil {
		return "", stderr.String(), fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return string(outb), stderr.String(), nil
}

// PackageDirs expands go package patterns (for example "./...") relative
// to the module root. A pattern set that matches no packages is an error,
// not an empty result: `go list` exits 0 with only a stderr warning for a
// typo'd path, and an analyzer run that silently checks nothing reports a
// deceptive all-clear.
func (l *Loader) PackageDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	out, warn, err := goList(l.ModDir, append([]string{"-f", "{{.Dir}}"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, dir := range strings.Split(strings.TrimSpace(out), "\n") {
		if dir != "" {
			dirs = append(dirs, dir)
		}
	}
	if len(dirs) == 0 {
		if warn = strings.TrimSpace(warn); warn != "" {
			return nil, fmt.Errorf("analysis: no packages matched %s: %s", strings.Join(patterns, " "), warn)
		}
		return nil, fmt.Errorf("analysis: no packages matched %s", strings.Join(patterns, " "))
	}
	return dirs, nil
}

// Packages expands patterns with PackageDirs and loads each matched
// package.
func (l *Loader) Packages(patterns []string) ([]*Package, error) {
	dirs, err := l.PackageDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the (non-test) package in dir. File
// selection honors build constraints under the default build context, so
// tag-gated files (//go:build xrtreedebug) resolve exactly as a normal
// build would. Directories outside the module — analysistest testdata
// packages — load the same way; their imports must stay within the
// module's dependency closure.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkgPath := l.pkgPathFor(dir, bp.Name)
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.Fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[dir] = pkg
	return pkg, nil
}

// pkgPathFor derives an import path for dir: module-relative when inside
// the module, otherwise the bare package name (testdata packages).
func (l *Loader) pkgPathFor(dir, name string) string {
	if rel, err := filepath.Rel(l.ModDir, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.ModPath
		}
		return l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return name
}

// Import implements types.Importer by delegating to the module's gc
// export data ("unsafe" is resolved specially, as required).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return l.imp.Import(path)
}
