package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"go/build"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Cache memoizes per-(package, analyzer) rendered diagnostics on disk so
// repeat `make vet` runs skip type-checking and re-analysis of unchanged
// packages. Entries live under os.UserCacheDir()/xrvet and are keyed by
//
//   - the analyzer binary's content hash (new analyzer code invalidates
//     everything),
//   - the module's export-data surface (the gc export files `go list
//     -export -deps` hands back live in the content-addressed build
//     cache, so their paths change whenever any dependency's API
//     changes), and
//   - the package's own source files, by content.
//
// A hit replays the rendered diagnostics verbatim — findings stay
// visible on every run, not just the first. All cache failures degrade
// to a miss: a nil *Cache is valid and never hits.
type Cache struct {
	dir string
	sig []byte // binary hash + module export surface
}

// OpenCache builds the cache for the running analyzer binary and the
// loader's module.
func OpenCache(l *Loader) (*Cache, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(base, "xrvet")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	h := sha256.New()
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	f, err := os.Open(exe)
	if err != nil {
		return nil, err
	}
	_, cerr := io.Copy(h, f)
	f.Close()
	if cerr != nil {
		return nil, cerr
	}
	surface := make([]string, 0, len(l.exports))
	for ip, file := range l.exports {
		surface = append(surface, ip+"="+file)
	}
	sort.Strings(surface)
	for _, s := range surface {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	return &Cache{dir: dir, sig: h.Sum(nil)}, nil
}

// PackageKey derives the cache key for the package in dir from the cache
// signature and the package's source file contents. It returns "" (never
// cached) when the directory or a file cannot be read.
func (c *Cache) PackageKey(dir string) string {
	if c == nil {
		return ""
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return ""
	}
	h := sha256.New()
	h.Write(c.sig)
	io.WriteString(h, dir)
	names := append([]string{}, bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return ""
		}
		io.WriteString(h, name)
		h.Write([]byte{0})
		h.Write(data)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (c *Cache) entry(pkgKey, analyzer string) string {
	return filepath.Join(c.dir, pkgKey+"-"+analyzer)
}

// Get returns the cached rendered diagnostics for (pkgKey, analyzer).
// The second result distinguishes "cached clean run" from "no entry".
func (c *Cache) Get(pkgKey, analyzer string) ([]string, bool) {
	if c == nil || pkgKey == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.entry(pkgKey, analyzer))
	if err != nil {
		return nil, false
	}
	s := strings.TrimRight(string(data), "\n")
	if s == "" {
		return nil, true
	}
	return strings.Split(s, "\n"), true
}

// Put stores the rendered diagnostics for (pkgKey, analyzer). Failures
// are dropped — the next run simply misses.
func (c *Cache) Put(pkgKey, analyzer string, lines []string) {
	if c == nil || pkgKey == "" {
		return
	}
	var data string
	if len(lines) > 0 {
		data = strings.Join(lines, "\n") + "\n"
	}
	tmp := c.entry(pkgKey, analyzer) + ".tmp"
	if err := os.WriteFile(tmp, []byte(data), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.entry(pkgKey, analyzer))
}
