package pathexpr

import (
	"errors"
	"math/rand"
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/core"
	"xrtree/internal/datagen"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"employee//name", "//employee//name", false},
		{"//employee//name", "//employee//name", false},
		{"/departments/department", "/departments/department", false},
		{"a/b//c/d", "//a/b//c/d", false},
		{"  a//b ", "//a//b", false},
		{"", "", true},
		{"a//", "", true},
		{"a///b", "", true}, // empty step between // and /
		{"a b//c", "", true},
		{"/", "", true},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error (got %v)", tc.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if p.String() != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, p.String(), tc.want)
		}
	}
}

func TestParseAxes(t *testing.T) {
	p, err := Parse("a/b//c")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Axis != Descendant || p.Steps[1].Axis != Child || p.Steps[2].Axis != Descendant {
		t.Errorf("axes = %v %v %v", p.Steps[0].Axis, p.Steps[1].Axis, p.Steps[2].Axis)
	}
}

// docProvider indexes a document's tags in XR-trees for Evaluate.
type docProvider struct {
	t     *testing.T
	doc   *xmldoc.Document
	pool  *bufferpool.Pool
	trees map[string]*core.Tree
}

func newDocProvider(t *testing.T, doc *xmldoc.Document) *docProvider {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: 1024})
	t.Cleanup(func() { f.Close() })
	pool, err := bufferpool.New(f, 256)
	if err != nil {
		t.Fatal(err)
	}
	return &docProvider{t: t, doc: doc, pool: pool, trees: make(map[string]*core.Tree)}
}

func (p *docProvider) XRTreeForTag(tag string) (*core.Tree, error) {
	if tr, ok := p.trees[tag]; ok {
		return tr, nil
	}
	els := p.doc.ElementsByTag(tag)
	if tag == "*" {
		els = p.doc.AllElements()
	}
	if len(els) == 0 {
		p.trees[tag] = nil
		return nil, nil
	}
	tr, err := core.New(p.pool, p.doc.DocID, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := tr.BulkLoad(els, 1.0); err != nil {
		return nil, err
	}
	p.trees[tag] = tr
	return tr, nil
}

func sameStarts(t *testing.T, what string, got, want []xmldoc.Element) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\ngot %v\nwant %v", what, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Start != want[i].Start {
			t.Fatalf("%s: result %d = %v, want %v", what, i, got[i], want[i])
		}
	}
}

func TestEvaluateOnDepartmentCorpus(t *testing.T) {
	doc, err := datagen.Department(datagen.DeptConfig{Seed: 3, DocID: 1, Departments: 8, Employees: 10})
	if err != nil {
		t.Fatal(err)
	}
	prov := newDocProvider(t, doc)
	for _, expr := range []string{
		"employee//name",
		"employee/name",
		"department//employee",
		"departments/department/employee/name",
		"department//employee//employee",
		"department/employee/employee/name",
		"employee//employee/email",
		"department/*/name",
		"*//email",
		"employee/*",
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		var c metrics.Counters
		got, err := Evaluate(p, prov, &c)
		if err != nil {
			t.Fatalf("Evaluate(%q): %v", expr, err)
		}
		want := Reference(p, doc)
		sameStarts(t, expr, got, want)
	}
}

func TestEvaluateEmptyCases(t *testing.T) {
	doc, err := xmldoc.ParseString("<a><b/></a>", xmldoc.ParseOptions{DocID: 1})
	if err != nil {
		t.Fatal(err)
	}
	prov := newDocProvider(t, doc)
	p, _ := Parse("a//nosuch")
	got, err := Evaluate(p, prov, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("missing tag matched %d elements", len(got))
	}
	p2, _ := Parse("nosuch//b")
	got, err = Evaluate(p2, prov, nil)
	if err != nil || len(got) != 0 {
		t.Errorf("missing first step: %v, %v", got, err)
	}
	if _, err := Evaluate(Path{}, prov, nil); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty path err = %v", err)
	}
}

func TestEvaluateRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Random documents over a small tag alphabet and random 2-4 step paths.
	tags := []string{"w", "x", "y", "z"}
	for trial := 0; trial < 15; trial++ {
		b := xmldoc.NewBuilder(1, 1)
		b.Open("root")
		count := 0
		var build func(depth int)
		build = func(depth int) {
			count++
			b.Open(tags[rng.Intn(len(tags))])
			kids := rng.Intn(4)
			if depth > 8 {
				kids = 0
			}
			for i := 0; i < kids && count < 300; i++ {
				build(depth + 1)
			}
			b.Close()
		}
		for count < 300 {
			build(1)
		}
		b.Close()
		doc, err := b.Document()
		if err != nil {
			t.Fatal(err)
		}
		prov := newDocProvider(t, doc)

		steps := 2 + rng.Intn(3)
		var expr string
		for s := 0; s < steps; s++ {
			if s > 0 {
				if rng.Intn(2) == 0 {
					expr += "/"
				} else {
					expr += "//"
				}
			}
			expr += tags[rng.Intn(len(tags))]
		}
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		got, err := Evaluate(p, prov, nil)
		if err != nil {
			t.Fatalf("Evaluate(%q): %v", expr, err)
		}
		sameStarts(t, expr, got, Reference(p, doc))
	}
}

func TestParsePredicates(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"employee[email]", "//employee[email]", false},
		{"employee[email]//name", "//employee[email]//name", false},
		{"employee[//email]", "//employee[//email]", false},
		{"a[b][c]", "//a[b][c]", false},
		{"a[b[c]]/d", "//a[b[c]]/d", false},
		{"a[b/c]", "//a[b/c]", false},
		{"a[]", "", true},
		{"a[b", "", true},
		{"a]b", "", true},
		{"[b]", "", true},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("Parse(%q) succeeded: %v", tc.in, p)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if p.String() != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, p.String(), tc.want)
		}
	}
	// Predicate axes: default child, explicit descendant.
	p, err := Parse("a[b//c]")
	if err != nil {
		t.Fatal(err)
	}
	pred := p.Steps[0].Predicates[0]
	if pred.Steps[0].Axis != Child || pred.Steps[1].Axis != Descendant {
		t.Errorf("predicate axes = %v %v", pred.Steps[0].Axis, pred.Steps[1].Axis)
	}
}

func TestEvaluatePredicatesAgainstReference(t *testing.T) {
	// Small corpus: the brute-force oracle re-derives predicate sets per
	// candidate and is super-quadratic on nested predicates.
	doc, err := datagen.Department(datagen.DeptConfig{Seed: 13, DocID: 1, Departments: 3, Employees: 4})
	if err != nil {
		t.Fatal(err)
	}
	prov := newDocProvider(t, doc)
	for _, expr := range []string{
		"employee[email]",
		"employee[email]/name",
		"employee[//email]//name",
		"employee[employee]",
		"employee[employee[email]]/name",
		"department[employee/employee]//email",
		"employee[email][employee]",
		"employee[nosuch]",
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		got, err := Evaluate(p, prov, nil)
		if err != nil {
			t.Fatalf("Evaluate(%q): %v", expr, err)
		}
		want := Reference(p, doc)
		sameStarts(t, expr, got, want)
		if expr == "employee[email]" {
			all := Reference(Path{Steps: []Step{{Axis: Descendant, Tag: "employee"}}}, doc)
			if len(got) == 0 || len(got) >= len(all) {
				t.Errorf("predicate did not filter: %d of %d", len(got), len(all))
			}
		}
	}
}

func TestEvaluatePredicatesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tags := []string{"w", "x", "y"}
	for trial := 0; trial < 10; trial++ {
		b := xmldoc.NewBuilder(1, 1)
		b.Open("root")
		count := 0
		var build func(depth int)
		build = func(depth int) {
			count++
			b.Open(tags[rng.Intn(len(tags))])
			kids := rng.Intn(4)
			if depth > 7 {
				kids = 0
			}
			for i := 0; i < kids && count < 250; i++ {
				build(depth + 1)
			}
			b.Close()
		}
		for count < 250 {
			build(1)
		}
		b.Close()
		doc, err := b.Document()
		if err != nil {
			t.Fatal(err)
		}
		prov := newDocProvider(t, doc)
		axisStr := func() string {
			if rng.Intn(2) == 0 {
				return "/"
			}
			return "//"
		}
		// Random expression: t1[t2 axis t3] axis t4
		expr := tags[rng.Intn(3)] + "[" + tags[rng.Intn(3)] + axisStr() + tags[rng.Intn(3)] + "]" +
			axisStr() + tags[rng.Intn(3)]
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		got, err := Evaluate(p, prov, nil)
		if err != nil {
			t.Fatalf("Evaluate(%q): %v", expr, err)
		}
		sameStarts(t, expr, got, Reference(p, doc))
	}
}

func TestMemSourceFindAncestors(t *testing.T) {
	els := []xmldoc.Element{
		{DocID: 1, Start: 1, End: 100},
		{DocID: 1, Start: 2, End: 40},
		{DocID: 1, Start: 5, End: 10},
		{DocID: 1, Start: 12, End: 30},
		{DocID: 1, Start: 50, End: 90},
	}
	m := memSource{els: els}
	got, err := m.AppendAncestors(nil, 20, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []xmldoc.Element{{Start: 1, End: 100}, {Start: 2, End: 40}, {Start: 12, End: 30}}
	sameStarts(t, "AppendAncestors(20)", got, want)

	got, err = m.AppendAncestors(nil, 20, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameStarts(t, "AppendAncestors(20,min=2)", got, []xmldoc.Element{{Start: 12, End: 30}})
}
