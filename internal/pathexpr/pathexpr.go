// Package pathexpr evaluates XPath-style path expressions as pipelines of
// structural joins — the paper's stated future work ("query evaluation
// strategies for complex XML queries (i.e. a combination of multiple
// structural joins) over XML data on which proper XR-tree indexes have been
// built", §7).
//
// A path expression is a sequence of steps, each an axis ('/' parent-child
// or '//' ancestor-descendant) and a tag name:
//
//	//department//employee/name
//	employee//name            (leading // implied)
//
// Evaluation runs left to right: the matches of step i become the ancestor
// side of the structural join with step i+1's element set, and the
// distinct descendants that join survive. Every binary join runs XR-stack
// over the per-tag XR-trees, so each step costs one index-assisted
// structural join rather than a document traversal.
package pathexpr

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"xrtree/internal/core"
	"xrtree/internal/join"
	"xrtree/internal/metrics"
	"xrtree/internal/xmldoc"
)

// Axis is the structural relationship between consecutive steps.
type Axis int

const (
	// Child is the '/' axis (parent-child).
	Child Axis = iota
	// Descendant is the '//' axis (ancestor-descendant).
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Step is one location step of a path expression. Predicates are
// existence tests evaluated as structural semi-joins: a step like
// "employee[email]" keeps only the employees with at least one email
// child ("[.//x]"-style descendant tests use a leading "//": "[//email]").
// Multiple predicates AND together.
type Step struct {
	Axis       Axis
	Tag        string
	Predicates []Path
}

// Path is a parsed path expression.
type Path struct {
	Steps []Step
}

// String renders the path in its source form.
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i > 0 || s.Axis == Descendant {
			// A leading // is the implied default; a leading / is kept.
			b.WriteString(s.Axis.String())
		} else {
			b.WriteString("/")
		}
		b.WriteString(s.Tag)
		for _, pred := range s.Predicates {
			b.WriteString("[")
			b.WriteString(pred.predString())
			b.WriteString("]")
		}
	}
	return b.String()
}

// predString renders a predicate path: inside brackets the leading axis
// defaults to '/' (XPath child semantics), so a leading child axis is
// omitted and a leading descendant axis prints as "//".
func (p Path) predString() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteString(s.Axis.String())
		} else if s.Axis == Descendant {
			b.WriteString("//")
		}
		b.WriteString(s.Tag)
		for _, pred := range s.Predicates {
			b.WriteString("[")
			b.WriteString(pred.predString())
			b.WriteString("]")
		}
	}
	return b.String()
}

// ErrEmptyPath is returned for expressions with no steps.
var ErrEmptyPath = errors.New("pathexpr: empty path expression")

// Parse parses a path expression. A leading axis is optional and defaults
// to '//' (search anywhere), matching XQuery's common usage; inside a
// predicate the default is '/' (XPath child semantics). Steps may carry
// bracketed existence predicates, nested to any depth:
// "department[name]//employee[email][//employee]/name".
func Parse(expr string) (Path, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return Path{}, ErrEmptyPath
	}
	pr := &parser{src: s}
	path, err := pr.parsePath(Descendant)
	if err != nil {
		return Path{}, fmt.Errorf("pathexpr: %v in %q", err, expr)
	}
	if !pr.eof() {
		return Path{}, fmt.Errorf("pathexpr: unexpected %q at offset %d in %q", pr.src[pr.pos], pr.pos, expr)
	}
	return path, nil
}

// parser is a tiny recursive-descent parser over the expression bytes.
type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

// parsePath parses a step sequence until ']' or end of input. leading is
// the axis assumed when the first step has none.
func (p *parser) parsePath(leading Axis) (Path, error) {
	var path Path
	axis := leading
	for {
		// Optional axis before the step (required between steps).
		if p.peek() == '/' {
			p.pos++
			if p.peek() == '/' {
				p.pos++
				axis = Descendant
			} else {
				axis = Child
			}
		} else if len(path.Steps) > 0 {
			return Path{}, fmt.Errorf("missing axis at offset %d", p.pos)
		}
		step, err := p.parseStep(axis)
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
		axis = Child
		if p.eof() || p.peek() == ']' {
			break
		}
		if p.peek() != '/' {
			return Path{}, fmt.Errorf("unexpected %q at offset %d", p.peek(), p.pos)
		}
	}
	if len(path.Steps) == 0 {
		return Path{}, ErrEmptyPath
	}
	return path, nil
}

// parseStep parses one tag plus any bracketed predicates.
func (p *parser) parseStep(axis Axis) (Step, error) {
	start := p.pos
	for !p.eof() {
		c := p.peek()
		if c == '/' || c == '[' || c == ']' {
			break
		}
		p.pos++
	}
	tag := p.src[start:p.pos]
	if !validTag(tag) {
		return Step{}, fmt.Errorf("invalid step %q", tag)
	}
	step := Step{Axis: axis, Tag: tag}
	for p.peek() == '[' {
		p.pos++
		pred, err := p.parsePath(Child)
		if err != nil {
			return Step{}, err
		}
		if p.peek() != ']' {
			return Step{}, fmt.Errorf("unclosed predicate at offset %d", p.pos)
		}
		p.pos++
		step.Predicates = append(step.Predicates, pred)
	}
	return step, nil
}

func validTag(tag string) bool {
	if tag == "" {
		return false
	}
	// Attribute steps ("@id") and text steps ("#text") address the nodes
	// ParseOptions.IncludeAttributes / IncludeText materialize; "*" matches
	// any element (the provider supplies the all-elements set).
	if tag == "#text" || tag == "*" {
		return true
	}
	body := tag
	if body[0] == '@' {
		body = body[1:]
		if body == "" {
			return false
		}
	}
	for _, r := range body {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// SetProvider resolves a tag name to its XR-tree index. The Evaluate
// pipeline needs nothing else: each step is one XR-stack join.
type SetProvider interface {
	// XRTreeForTag returns the XR-tree over the tag's element set, or
	// (nil, nil) when the document has no such elements.
	XRTreeForTag(tag string) (*core.Tree, error)
}

// Evaluate runs the path over the provider and returns the elements
// matching the final step, sorted by start. Costs accumulate into c.
func Evaluate(p Path, prov SetProvider, c *metrics.Counters) ([]xmldoc.Element, error) {
	if len(p.Steps) == 0 {
		return nil, ErrEmptyPath
	}
	defer func(t *metrics.Timer) { t.Stop() }(metrics.StartTimer(c))

	// Step 0: the whole element set of the first tag, predicate-filtered.
	cur, err := stepCandidates(p.Steps[0], prov, c)
	if err != nil {
		return nil, err
	}

	for _, step := range p.Steps[1:] {
		// Step boundary: each step is one structural join, so a canceled
		// pipeline stops before starting the next join (the joins themselves
		// poll at page boundaries and on a stride).
		if err := c.Interrupted(); err != nil {
			return nil, err
		}
		if len(cur) == 0 {
			return nil, nil
		}
		tree, err := prov.XRTreeForTag(step.Tag)
		if err != nil {
			return nil, err
		}
		if tree == nil {
			return nil, nil
		}
		next, err := joinStep(cur, tree, modeOf(step.Axis), c)
		if err != nil {
			return nil, err
		}
		cur, err = applyPredicates(next, step.Predicates, prov, c)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func modeOf(a Axis) join.Mode {
	if a == Child {
		return join.ParentChild
	}
	return join.AncestorDescendant
}

// stepCandidates returns the step's full tag set filtered by its own
// predicates.
func stepCandidates(st Step, prov SetProvider, c *metrics.Counters) ([]xmldoc.Element, error) {
	tree, err := prov.XRTreeForTag(st.Tag)
	if err != nil || tree == nil {
		return nil, err
	}
	els, err := scanAll(tree, c)
	if err != nil {
		return nil, err
	}
	return applyPredicates(els, st.Predicates, prov, c)
}

// applyPredicates keeps the elements of cur satisfying every predicate.
func applyPredicates(cur []xmldoc.Element, preds []Path, prov SetProvider, c *metrics.Counters) ([]xmldoc.Element, error) {
	var err error
	for _, pred := range preds {
		if len(cur) == 0 {
			return nil, nil
		}
		cur, err = filterByPredicate(cur, pred, prov, c)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// filterByPredicate evaluates one existence predicate as a chain of
// structural semi-joins, processed backward so every step keeps the
// ancestor side: S_i = step-i elements with a step-(i+1) match in S_{i+1}.
func filterByPredicate(cur []xmldoc.Element, pred Path, prov SetProvider, c *metrics.Counters) ([]xmldoc.Element, error) {
	n := len(pred.Steps)
	S, err := stepCandidates(pred.Steps[n-1], prov, c)
	if err != nil {
		return nil, err
	}
	for i := n - 2; i >= 0; i-- {
		if err := c.Interrupted(); err != nil {
			return nil, err
		}
		if len(S) == 0 {
			return nil, nil
		}
		Ci, err := stepCandidates(pred.Steps[i], prov, c)
		if err != nil {
			return nil, err
		}
		S, err = semiJoinAncestors(Ci, S, modeOf(pred.Steps[i+1].Axis), c)
		if err != nil {
			return nil, err
		}
	}
	if len(S) == 0 {
		return nil, nil
	}
	return semiJoinAncestors(cur, S, modeOf(pred.Steps[0].Axis), c)
}

// semiJoinAncestors returns the distinct elements of anc (sorted by start)
// that join at least one element of desc under mode, via XR-stack over
// in-memory sources.
func semiJoinAncestors(anc, desc []xmldoc.Element, mode join.Mode, c *metrics.Counters) ([]xmldoc.Element, error) {
	if len(anc) == 0 || len(desc) == 0 {
		return nil, nil
	}
	seen := make(map[uint32]xmldoc.Element, 64)
	err := join.XRStack(mode, memSource{els: anc}, memSource{els: desc}, func(av, _ xmldoc.Element) {
		seen[av.Start] = av
	}, c)
	if err != nil {
		return nil, err
	}
	out := make([]xmldoc.Element, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

// scanAll materializes a tree's element set in start order.
func scanAll(t *core.Tree, c *metrics.Counters) ([]xmldoc.Element, error) {
	it, err := t.Scan(c)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := make([]xmldoc.Element, 0, t.Len())
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out, it.Err()
}

// joinStep returns the distinct elements of the descendant tree that join
// with any ancestor in cur under the given mode, via the XR-stack
// algorithm with the in-memory ancestor list as one side.
func joinStep(cur []xmldoc.Element, desc *core.Tree, mode join.Mode, c *metrics.Counters) ([]xmldoc.Element, error) {
	a := memSource{els: cur}
	d := join.XRTreeSource{T: desc}
	seen := make(map[uint32]xmldoc.Element, 64)
	err := join.XRStack(mode, a, d, func(_, dv xmldoc.Element) {
		seen[dv.Start] = dv
	}, c)
	if err != nil {
		return nil, err
	}
	out := make([]xmldoc.Element, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

// memSource adapts an in-memory sorted element slice to the join package's
// AncestorSeeker, so intermediate step results join without being
// re-indexed: FindAncestors and SeekGE are binary searches.
type memSource struct {
	els []xmldoc.Element
}

// Len returns the number of elements.
func (m memSource) Len() int { return len(m.els) }

// Scan opens an iterator over the whole slice.
func (m memSource) Scan(c *metrics.Counters) (join.Iterator, error) {
	return &memIterator{els: m.els, c: c}, nil
}

// SeekGE opens an iterator at the first element with start ≥ key.
func (m memSource) SeekGE(key uint32, c *metrics.Counters) (join.Iterator, error) {
	i := sort.Search(len(m.els), func(i int) bool { return m.els[i].Start >= key })
	return &memIterator{els: m.els, idx: i, c: c}, nil
}

// AppendAncestors appends the elements strictly containing sd with start
// beyond minStart, by scanning left of sd's position with subtree skips —
// the in-memory analogue of Algorithm 4's leaf phase.
func (m memSource) AppendAncestors(dst []xmldoc.Element, sd, minStart uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	out := dst
	hi := sort.Search(len(m.els), func(i int) bool { return m.els[i].Start >= sd })
	lo := 0
	if minStart > 0 {
		lo = sort.Search(len(m.els), func(i int) bool { return m.els[i].Start > minStart })
	}
	for i := lo; i < hi; {
		e := m.els[i]
		if e.End <= sd {
			// Skip e's subtree: nothing inside can contain sd.
			i = sort.Search(len(m.els), func(j int) bool { return m.els[j].Start > e.End })
			continue
		}
		if c != nil {
			c.ElementsScanned++
		}
		out = append(out, e)
		i++
	}
	return out, nil
}

type memIterator struct {
	els []xmldoc.Element
	idx int
	c   *metrics.Counters
}

func (it *memIterator) Next() (xmldoc.Element, bool) {
	if it.idx >= len(it.els) {
		return xmldoc.Element{}, false
	}
	e := it.els[it.idx]
	it.idx++
	if it.c != nil {
		it.c.ElementsScanned++
	}
	return e, true
}

func (it *memIterator) Peek() (xmldoc.Element, bool) {
	if it.idx >= len(it.els) {
		return xmldoc.Element{}, false
	}
	return it.els[it.idx], true
}

func (it *memIterator) Err() error   { return nil }
func (it *memIterator) Close() error { return nil }

// Reference evaluates the path by brute force over a parsed document — the
// oracle the tests compare Evaluate against. Predicates are evaluated by
// exhaustive existence search.
func Reference(p Path, doc *xmldoc.Document) []xmldoc.Element {
	if len(p.Steps) == 0 {
		return nil
	}
	cur := refStepSet(doc, p.Steps[0])
	for _, step := range p.Steps[1:] {
		cand := refStepSet(doc, step)
		var next []xmldoc.Element
		for _, d := range cand {
			for _, a := range cur {
				if refRelated(a, d, step.Axis) {
					next = append(next, d)
					break
				}
			}
		}
		cur = next
	}
	return cur
}

func refByTag(doc *xmldoc.Document, tag string) []xmldoc.Element {
	if tag == "*" {
		return doc.AllElements()
	}
	return doc.ElementsByTag(tag)
}

func refRelated(a, d xmldoc.Element, axis Axis) bool {
	if axis == Child {
		return a.IsParentOf(d)
	}
	return a.IsAncestorOf(d)
}

// refStepSet returns the step's tag set filtered by its predicates.
func refStepSet(doc *xmldoc.Document, st Step) []xmldoc.Element {
	els := refByTag(doc, st.Tag)
	if len(st.Predicates) == 0 {
		return els
	}
	var out []xmldoc.Element
	for _, e := range els {
		ok := true
		for _, pred := range st.Predicates {
			if !refPredHolds(doc, e, pred) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// refPredHolds reports whether a chain matching pred exists under a.
func refPredHolds(doc *xmldoc.Document, a xmldoc.Element, pred Path) bool {
	cur := []xmldoc.Element{a}
	for _, st := range pred.Steps {
		cand := refStepSet(doc, st)
		var next []xmldoc.Element
		for _, d := range cand {
			for _, x := range cur {
				if refRelated(x, d, st.Axis) {
					next = append(next, d)
					break
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return true
}
