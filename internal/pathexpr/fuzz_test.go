package pathexpr

import "testing"

// FuzzPathExpr checks that Parse never panics and that every accepted
// expression round-trips: rendering the parsed path and parsing it again
// must reproduce the same rendering (String is the canonical form).
func FuzzPathExpr(f *testing.F) {
	f.Add("//a//b")
	f.Add("/a/b/c")
	f.Add("department[name]//employee[email][//employee]/name")
	f.Add("a[b[c]]")
	f.Add("//a[/b]")
	f.Add("a[")
	f.Add("]")
	f.Add("a//")
	f.Add("  //a  ")
	f.Add("a[b][c][d]")
	f.Fuzz(func(t *testing.T, expr string) {
		p, err := Parse(expr)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("round-trip parse of %q (from %q) failed: %v", s, expr, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("canonical form not stable: %q -> %q -> %q", expr, s, s2)
		}
	})
}
