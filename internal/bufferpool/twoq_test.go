package bufferpool

import (
	"context"
	"sync"
	"testing"
	"time"

	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
)

// new2QPool builds a single-shard 2Q pool (single shard makes eviction
// order exact) over a fresh memory file and pre-allocates pages.
func new2QPool(t *testing.T, frames, pages int, prefetch bool) (*Pool, []pagefile.PageID) {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	t.Cleanup(func() { f.Close() })
	p, err := NewWithConfig(f, Config{Capacity: frames, Shards: 1, Policy: Policy2Q, Prefetch: prefetch})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	ids := make([]pagefile.PageID, pages)
	for i := range ids {
		id, data, err := p.FetchNew()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(id)
		if err := p.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropClean(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	return p, ids
}

func touch(t *testing.T, p *Pool, id pagefile.PageID) {
	t.Helper()
	data, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch %d: %v", id, err)
	}
	if data[0] != byte(id) {
		t.Fatalf("page %d carries byte %d, want %d", id, data[0], byte(id))
	}
	if err := p.Unpin(id, false); err != nil {
		t.Fatalf("Unpin %d: %v", id, err)
	}
}

func resident(p *Pool, id pagefile.PageID) bool {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.frames[id]
	return ok
}

// TestTwoQEvictionOrder is the promotion/demotion oracle: a re-referenced
// page moves to the protected segment and survives evictions that recycle
// never-re-referenced probationary frames in FIFO order.
func TestTwoQEvictionOrder(t *testing.T) {
	p, ids := new2QPool(t, 4, 8, false)
	// Fill the pool: ids[0..3] land in probation in touch order.
	for _, id := range ids[:4] {
		touch(t, p, id)
	}
	// Re-reference ids[1]: promoted to protected immediately.
	touch(t, p, ids[1])
	// Admit two new pages. Probation holds {3,2,0}, quota is 1 (cap/4), so
	// the probation tail goes first each time: ids[0], then ids[2].
	touch(t, p, ids[4])
	if resident(p, ids[1]) == false {
		t.Fatal("protected page evicted while probation was non-empty")
	}
	if resident(p, ids[0]) {
		t.Fatal("probation tail ids[0] should have been the first victim")
	}
	touch(t, p, ids[5])
	if resident(p, ids[2]) {
		t.Fatal("probation tail ids[2] should have been the second victim")
	}
	if !resident(p, ids[1]) {
		t.Fatal("protected page lost during probation churn")
	}
	st := p.Stats()
	if st.ScanEvictions != 2 {
		t.Fatalf("ScanEvictions = %d, want 2", st.ScanEvictions)
	}
	if st.PageEvictions != 2 {
		t.Fatalf("PageEvictions = %d, want 2", st.PageEvictions)
	}
}

// TestTwoQProtectedHits: the first re-reference promotes (not yet a
// protected hit); later hits on the promoted frame count.
func TestTwoQProtectedHits(t *testing.T) {
	p, ids := new2QPool(t, 4, 1, false)
	touch(t, p, ids[0]) // miss, admitted to probation
	touch(t, p, ids[0]) // hit, promotes
	if st := p.Stats(); st.ProtectedHits != 0 {
		t.Fatalf("ProtectedHits after promotion = %d, want 0", st.ProtectedHits)
	}
	touch(t, p, ids[0]) // hit on protected frame
	touch(t, p, ids[0])
	if st := p.Stats(); st.ProtectedHits != 2 {
		t.Fatalf("ProtectedHits = %d, want 2", st.ProtectedHits)
	}
}

// TestTwoQFetchCopyPromotes: FetchCopy re-references count like Fetch ones.
func TestTwoQFetchCopyPromotes(t *testing.T) {
	p, ids := new2QPool(t, 4, 6, false)
	buf := make([]byte, 256)
	for _, id := range ids[:4] {
		if err := p.FetchCopy(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Re-reference ids[0] via FetchCopy: immediate promotion (the frame is
	// unpinned on the probation list).
	if err := p.FetchCopy(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	// Churn probation with two admissions; the protected frame survives.
	touch(t, p, ids[4])
	touch(t, p, ids[5])
	if !resident(p, ids[0]) {
		t.Fatal("FetchCopy re-reference did not protect the page")
	}
}

// TestTwoQScanResistance is the regression oracle for the tentpole claim:
// after a hot set is promoted, a sequential scan of many cold pages must
// not evict it. Under LRU the same access pattern evicts the entire hot
// set (asserted as a contrast check).
func TestTwoQScanResistance(t *testing.T) {
	const frames = 16
	const hot = 3
	const cold = 200
	run := func(t *testing.T, policy Policy) (hotMissesAfterScan int64) {
		f := pagefile.NewMem(pagefile.Options{PageSize: 256})
		t.Cleanup(func() { f.Close() })
		p, err := NewWithConfig(f, Config{Capacity: frames, Shards: 1, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]pagefile.PageID, hot+cold)
		for i := range ids {
			id, data, err := p.FetchNew()
			if err != nil {
				t.Fatal(err)
			}
			data[0] = byte(id)
			if err := p.Unpin(id, true); err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if err := p.DropClean(); err != nil {
			t.Fatal(err)
		}
		// Promote the hot set: touch twice.
		for round := 0; round < 2; round++ {
			for _, id := range ids[:hot] {
				touch(t, p, id)
			}
		}
		// One long sequential scan over the cold pages.
		for _, id := range ids[hot:] {
			touch(t, p, id)
		}
		before := p.Stats().BufferMisses
		for _, id := range ids[:hot] {
			touch(t, p, id)
		}
		return p.Stats().BufferMisses - before
	}
	if m := run(t, Policy2Q); m != 0 {
		t.Fatalf("2Q: %d hot-set misses after scan, want 0 (scan evicted the working set)", m)
	}
	if m := run(t, PolicyLRU); m != hot {
		t.Fatalf("LRU contrast check: %d hot-set misses after scan, want %d", m, hot)
	}
}

// TestTwoQGhostAdmitsToProtected: a page whose first touch was washed out
// of probation is remembered by the A1out ghost list, so its second touch
// (a miss) admits straight to the protected segment and survives further
// probation churn.
func TestTwoQGhostAdmitsToProtected(t *testing.T) {
	p, ids := new2QPool(t, 4, 8, false)
	for _, id := range ids[:4] {
		touch(t, p, id) // probation, FIFO order 0..3
	}
	touch(t, p, ids[4]) // evicts ids[0] from probation → ghost remembers it
	touch(t, p, ids[5]) // evicts ids[1]
	if resident(p, ids[0]) || resident(p, ids[1]) {
		t.Fatal("probation tail pages not evicted")
	}
	// Second touch of ids[0]: a miss, but a ghost hit — admitted protected.
	touch(t, p, ids[0])
	touch(t, p, ids[6])
	touch(t, p, ids[7])
	if !resident(p, ids[0]) {
		t.Fatal("ghost-hit page was evicted by probation churn, want protected")
	}
	before := p.Stats().ProtectedHits
	touch(t, p, ids[0])
	if d := p.Stats().ProtectedHits - before; d != 1 {
		t.Fatalf("ProtectedHits delta = %d after hit on ghost-admitted page, want 1", d)
	}
}

// TestReadaheadReprieve: a prefetched-but-not-yet-demanded frame survives
// one eviction wave (the reprieve), and the frame that lost the reprieve
// race is evicted in its place.
func TestReadaheadReprieve(t *testing.T) {
	p, ids := new2QPool(t, 4, 8, true)
	p.Prefetch(nil, ids[0])
	waitCounter(t, func() int64 { return p.ObsStats().PrefetchReads.Load() }, 1, "PrefetchReads")
	for _, id := range ids[1:4] {
		touch(t, p, id) // fill to capacity; probation = [3,2,1,0(ra)]
	}
	// First eviction wave: the tail carries ra, so it is recycled to the
	// probation head and ids[1] is the victim instead.
	touch(t, p, ids[4])
	if !resident(p, ids[0]) {
		t.Fatal("prefetched frame evicted despite reprieve")
	}
	if resident(p, ids[1]) {
		t.Fatal("reprieve did not shift eviction to the next tail frame")
	}
	// The reprieve is one-shot: the next wave may take it normally.
	touch(t, p, ids[5]) // evicts ids[2] (ids[0] now at probation head)
	touch(t, p, ids[6]) // evicts ids[3]
	touch(t, p, ids[7]) // evicts ids[4]
	touch(t, p, ids[8-1])
	if st := p.Stats(); st.PrefetchReads != 1 {
		t.Fatalf("PrefetchReads = %d, want 1", st.PrefetchReads)
	}
}

// TestReadaheadFirstHitIsFirstTouch: the first demand hit on a prefetched
// frame counts as a first touch, not a promoting re-reference — sequential
// scan pages must stay probationary even when readahead beat the demand.
func TestReadaheadFirstHitIsFirstTouch(t *testing.T) {
	p, ids := new2QPool(t, 4, 8, true)
	p.Prefetch(nil, ids[0])
	waitCounter(t, func() int64 { return p.ObsStats().PrefetchReads.Load() }, 1, "PrefetchReads")
	before := p.Stats().BufferMisses
	touch(t, p, ids[0]) // demand arrives: a hit, and the frame's first touch
	if d := p.Stats().BufferMisses - before; d != 0 {
		t.Fatalf("%d misses on prefetched page, want 0", d)
	}
	for _, id := range ids[1:4] {
		touch(t, p, id)
	}
	// ids[0] is the probation tail with no reprieve left and no promotion:
	// one admission must evict it. A wrongly promoted frame would survive.
	touch(t, p, ids[4])
	if resident(p, ids[0]) {
		t.Fatal("first demand hit promoted a prefetched page to protected")
	}
}

// TestTwoQConcurrentScans runs concurrent scanners and a hot-set prober
// against one 2Q pool; -race checks the locking, the byte pattern checks
// frame identity, and the pin ledger must drain to zero.
func TestTwoQConcurrentScans(t *testing.T) {
	p, ids := new2QPool(t, 32, 256, false)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := g * 64; i < (g+1)*64; i++ {
					id := ids[i]
					data, err := p.Fetch(id)
					if err != nil {
						t.Errorf("Fetch %d: %v", id, err)
						return
					}
					if data[0] != byte(id) {
						t.Errorf("page %d carries byte %d", id, data[0])
					}
					if err := p.Unpin(id, false); err != nil {
						t.Errorf("Unpin %d: %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 256)
		for i := 0; i < 200; i++ {
			if err := p.FetchCopy(ids[i%4], buf); err != nil {
				t.Errorf("FetchCopy: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if n := p.PinnedCount(); n != 0 {
		t.Fatalf("%d pages still pinned after concurrent scans", n)
	}
}

// waitCounter polls an atomic counter until it reaches want or the
// deadline passes.
func waitCounter(t *testing.T, load func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if load() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s = %d, want ≥ %d after 5s", what, load(), want)
}

// TestPrefetchBringsPagesIn: hinted pages become resident without pins,
// and the subsequent demand fetches are hits.
func TestPrefetchBringsPagesIn(t *testing.T) {
	p, ids := new2QPool(t, 16, 8, true)
	p.Prefetch(nil, ids[:8]...)
	waitCounter(t, func() int64 { return p.ObsStats().PrefetchReads.Load() }, 8, "PrefetchReads")
	if n := p.PinnedCount(); n != 0 {
		t.Fatalf("%d pages pinned by prefetch, want 0", n)
	}
	st := p.Stats()
	if st.PrefetchIssued != 8 {
		t.Fatalf("PrefetchIssued = %d, want 8", st.PrefetchIssued)
	}
	before := p.Stats().BufferMisses
	for _, id := range ids[:8] {
		touch(t, p, id)
	}
	if d := p.Stats().BufferMisses - before; d != 0 {
		t.Fatalf("%d misses on prefetched pages, want 0", d)
	}
}

// TestPrefetchCoalesces: sequentially allocated pages arrive in fewer
// read calls than pages (the vectored-read path).
func TestPrefetchCoalesces(t *testing.T) {
	p, ids := new2QPool(t, 16, 8, true)
	p.File().ResetStats()
	p.Prefetch(nil, ids[:8]...)
	waitCounter(t, func() int64 { return p.ObsStats().PrefetchReads.Load() }, 8, "PrefetchReads")
	st := p.File().Stats()
	if st.PhysicalReads != 8 {
		t.Fatalf("PhysicalReads = %d, want 8", st.PhysicalReads)
	}
	if st.ReadCalls >= st.PhysicalReads {
		t.Fatalf("ReadCalls = %d for %d pages: prefetch did not coalesce", st.ReadCalls, st.PhysicalReads)
	}
}

// TestPrefetchCanceled: a hint carrying an interrupted counter set is
// dropped before any I/O, and nothing stays pinned.
func TestPrefetchCanceled(t *testing.T) {
	p, ids := new2QPool(t, 16, 8, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &metrics.Counters{Ctx: ctx}
	p.Prefetch(c, ids[:8]...)
	if got := p.ObsStats().PrefetchIssued.Load(); got != 0 {
		t.Fatalf("PrefetchIssued = %d for canceled hint, want 0", got)
	}
	// A live hint is accepted, then the worker re-checks cancellation.
	ctx2, cancel2 := context.WithCancel(context.Background())
	c2 := &metrics.Counters{Ctx: ctx2}
	cancel2()
	p.Prefetch(c2, ids[:8]...)
	p.Close() // drains workers; canceled hints must not leave pins behind
	if n := p.PinnedCount(); n != 0 {
		t.Fatalf("%d pages pinned after canceled prefetch, want 0", n)
	}
}

// TestPrefetchDisabledIsNoop: Prefetch on a pool without workers is a
// cheap no-op (the xrbench default path).
func TestPrefetchDisabledIsNoop(t *testing.T) {
	p, ids := new2QPool(t, 16, 4, false)
	p.Prefetch(nil, ids...)
	if got := p.ObsStats().PrefetchIssued.Load(); got != 0 {
		t.Fatalf("PrefetchIssued = %d on disabled pool, want 0", got)
	}
}

// TestPoolCloseIdempotent: Close is safe to call repeatedly, with and
// without prefetch workers.
func TestPoolCloseIdempotent(t *testing.T) {
	p, _ := new2QPool(t, 8, 1, true)
	p.Close()
	p.Close()
	p2, _ := new2QPool(t, 8, 1, false)
	p2.Close()
}

// TestParsePolicy covers the flag-parsing helper.
func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": PolicyLRU, "lru": PolicyLRU, "2q": Policy2Q} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Fatal("ParsePolicy accepted unknown policy")
	}
}
