package bufferpool

import (
	"errors"
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
)

func newPool(t *testing.T, frames int) (*Pool, *pagefile.File) {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	t.Cleanup(func() { f.Close() })
	p, err := New(f, frames)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p, f
}

func TestFetchNewAndReadBack(t *testing.T) {
	p, _ := newPool(t, 4)
	id, data, err := p.FetchNew()
	if err != nil {
		t.Fatalf("FetchNew: %v", err)
	}
	data[0] = 0xAA
	data[255] = 0xBB
	if err := p.Unpin(id, true); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	got, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if got[0] != 0xAA || got[255] != 0xBB {
		t.Error("page contents lost between FetchNew and Fetch")
	}
	if err := p.Unpin(id, false); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p, f := newPool(t, 2)
	// Create three pages; with capacity 2 the first must be evicted.
	ids := make([]pagefile.PageID, 3)
	for i := range ids {
		id, data, err := p.FetchNew()
		if err != nil {
			t.Fatalf("FetchNew %d: %v", i, err)
		}
		data[0] = byte(i + 1)
		if err := p.Unpin(id, true); err != nil {
			t.Fatalf("Unpin: %v", err)
		}
		ids[i] = id
	}
	// Page ids[0] should have been evicted and written back.
	buf := make([]byte, 256)
	if err := f.ReadPage(ids[0], buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if buf[0] != 1 {
		t.Errorf("evicted page byte = %d, want 1 (dirty write-back)", buf[0])
	}
	// Fetching it again must still see the data (a miss).
	got, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if got[0] != 1 {
		t.Errorf("refetched byte = %d, want 1", got[0])
	}
	p.Unpin(ids[0], false)
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p, _ := newPool(t, 2)
	a, _, err := p.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	// Both pinned; a third fetch must fail with ErrPoolFull.
	if _, _, err := p.FetchNew(); !errors.Is(err, ErrPoolFull) {
		t.Errorf("FetchNew with all pinned err = %v, want ErrPoolFull", err)
	}
	p.Unpin(a, true)
	p.Unpin(b, true)
	if _, _, err := p.FetchNew(); err != nil {
		t.Errorf("FetchNew after unpin: %v", err)
	}
}

func TestLRUEvictsLeastRecentlyUnpinned(t *testing.T) {
	p, _ := newPool(t, 2)
	a, _, _ := p.FetchNew()
	p.Unpin(a, true)
	b, _, _ := p.FetchNew()
	p.Unpin(b, true)
	// Touch a so b becomes LRU.
	if _, err := p.Fetch(a); err != nil {
		t.Fatal(err)
	}
	p.Unpin(a, false)
	p.ResetStats()
	// A new page should evict b, not a.
	c, _, _ := p.FetchNew()
	p.Unpin(c, true)
	if _, err := p.Fetch(a); err != nil {
		t.Fatal(err)
	}
	p.Unpin(a, false)
	st := p.Stats()
	if st.BufferMisses != 0 {
		t.Errorf("Fetch(a) missed (misses=%d); LRU should have evicted b", st.BufferMisses)
	}
}

func TestHitMissCounting(t *testing.T) {
	p, _ := newPool(t, 4)
	var sink metrics.Counters
	p.SetSink(&sink)
	id, _, _ := p.FetchNew()
	p.Unpin(id, true)
	p.ResetStats()
	sink.Reset()

	if _, err := p.Fetch(id); err != nil { // hit
		t.Fatal(err)
	}
	p.Unpin(id, false)
	if err := p.DropClean(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(id); err != nil { // miss
		t.Fatal(err)
	}
	p.Unpin(id, false)

	st := p.Stats()
	if st.BufferHits != 1 || st.BufferMisses != 1 {
		t.Errorf("pool stats hits=%d misses=%d, want 1/1", st.BufferHits, st.BufferMisses)
	}
	if sink.BufferHits != 1 || sink.BufferMisses != 1 {
		t.Errorf("sink hits=%d misses=%d, want 1/1", sink.BufferHits, sink.BufferMisses)
	}
}

func TestUnpinErrors(t *testing.T) {
	p, _ := newPool(t, 2)
	if err := p.Unpin(42, false); !errors.Is(err, ErrBadUnpin) {
		t.Errorf("Unpin of unknown page err = %v, want ErrBadUnpin", err)
	}
	id, _, _ := p.FetchNew()
	p.Unpin(id, true)
	if err := p.Unpin(id, false); !errors.Is(err, ErrNotPinned) {
		t.Errorf("double Unpin err = %v, want ErrNotPinned", err)
	}
}

func TestNestedPins(t *testing.T) {
	p, _ := newPool(t, 2)
	id, _, _ := p.FetchNew()
	if _, err := p.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(id, false); err != nil {
		t.Fatal(err)
	}
	if got := p.PinnedCount(); got != 1 {
		t.Errorf("PinnedCount = %d, want 1 (still pinned once)", got)
	}
	if err := p.Unpin(id, true); err != nil {
		t.Fatal(err)
	}
	if got := p.PinnedCount(); got != 0 {
		t.Errorf("PinnedCount = %d, want 0", got)
	}
}

func TestDiscardFreesPage(t *testing.T) {
	p, f := newPool(t, 4)
	id, _, _ := p.FetchNew()
	if err := p.Discard(id); err != nil {
		t.Fatalf("Discard: %v", err)
	}
	// The freed page should be reused by the next allocation.
	id2, _, err := p.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Errorf("FetchNew after Discard = %d, want reuse of %d", id2, id)
	}
	p.Unpin(id2, true)
	_ = f
}

func TestFlushAllPersists(t *testing.T) {
	p, f := newPool(t, 4)
	id, data, _ := p.FetchNew()
	data[7] = 0x7E
	p.Unpin(id, true)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	buf := make([]byte, 256)
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[7] != 0x7E {
		t.Error("FlushAll did not write dirty page back")
	}
}

func TestZeroCapacityRejected(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	if _, err := New(f, 0); !errors.Is(err, ErrZeroFrames) {
		t.Errorf("New(0) err = %v, want ErrZeroFrames", err)
	}
}

func TestManyPagesThroughSmallPool(t *testing.T) {
	// Write 100 pages through a 3-frame pool, then verify all contents.
	p, _ := newPool(t, 3)
	ids := make([]pagefile.PageID, 100)
	for i := range ids {
		id, data, err := p.FetchNew()
		if err != nil {
			t.Fatalf("FetchNew %d: %v", i, err)
		}
		data[0] = byte(i)
		data[1] = byte(i >> 8)
		p.Unpin(id, true)
		ids[i] = id
	}
	for i, id := range ids {
		data, err := p.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d: %v", i, err)
		}
		if data[0] != byte(i) || data[1] != byte(i>>8) {
			t.Fatalf("page %d corrupted: got %d,%d", i, data[0], data[1])
		}
		p.Unpin(id, false)
	}
}

// TestEvictionCounting verifies PageEvictions in both the pool stats and an
// attached sink when the working set exceeds the pool.
func TestEvictionCounting(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := New(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]pagefile.PageID, 6)
	for i := range ids {
		id, _, err := pool.FetchNew()
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool.ResetStats()
	var sink metrics.Counters
	pool.SetSink(&sink)
	for _, id := range ids { // working set 6 ≫ 2 frames: every fetch evicts
		if _, err := pool.Fetch(id); err != nil {
			t.Fatal(err)
		}
		if err := pool.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	pool.SetSink(nil)
	st := pool.Stats()
	if st.PageEvictions == 0 {
		t.Error("no evictions counted")
	}
	if sink.PageEvictions != st.PageEvictions {
		t.Errorf("sink evictions %d != pool %d", sink.PageEvictions, st.PageEvictions)
	}
}

// TestHitRateSeries checks the bounded hit-rate-over-time series: points
// appear per window, and when the buffer fills, pairwise compaction halves
// the point count and doubles the window.
func TestHitRateSeries(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := New(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := pool.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Unpin(id, true); err != nil {
		t.Fatal(err)
	}

	pool.EnableHitRateSeries(2)
	for i := 0; i < 10; i++ { // all hits after the first admission
		if _, err := pool.Fetch(id); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
	}
	window, points := pool.HitRateSeries()
	if window != 2 || len(points) != 5 {
		t.Fatalf("window=%d points=%d, want 2 and 5", window, len(points))
	}
	for _, p := range points {
		if p != 1.0 {
			t.Errorf("expected all-hit windows, got %v", points)
		}
	}

	// Force compaction: with window 1, the buffer fills at seriesMaxPoints
	// accesses and halves; the window doubles.
	pool.EnableHitRateSeries(1)
	for i := 0; i < seriesMaxPoints+10; i++ {
		if _, err := pool.Fetch(id); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
	}
	window, points = pool.HitRateSeries()
	if window != 2 {
		t.Errorf("window after compaction = %d, want 2", window)
	}
	if len(points) >= seriesMaxPoints || len(points) == 0 {
		t.Errorf("points after compaction = %d", len(points))
	}

	pool.EnableHitRateSeries(0) // disable
	if _, err := pool.Fetch(id); err != nil {
		t.Fatal(err)
	}
	pool.Unpin(id, false)
	if _, points = pool.HitRateSeries(); len(points) != 0 {
		t.Errorf("disabled series still records: %d points", len(points))
	}
}
