package bufferpool

import (
	"context"
	"sync"
	"sync/atomic"

	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
)

// Asynchronous readahead. Iterators that know which pages they will touch
// next (leaf chains, elemlist scans, XR-stack skip landing pages) publish
// hints via Pool.Prefetch; a bounded set of workers (one per pool shard)
// pulls the hinted pages into the probationary queue without pinning them,
// coalescing physically adjacent pages into vectored ReadPages calls.
//
// The protocol is strictly best-effort and never blocks the hinting query:
// hints are dropped when the queue is full, when the hinted page is already
// resident, when every candidate victim frame is pinned, or when the hint's
// counter set reports cancellation (workers poll Counters.Interrupted both
// before reading and before admitting, so a canceled query's readahead
// stops promptly). Prefetched frames are admitted unpinned, so they never
// touch the debug-build net-pin ledger.
//
// Staleness: a prefetched copy is read without any latch, so a writer
// modifying the page between the physical read and admission could be
// shadowed. Every index here is write-once (bulk load) then read-many, and
// hints are only produced by queries over built indexes, so the window is
// unreachable; the residency re-check at admission covers the read-read
// race (demand fetch wins, the prefetched copy is dropped).

// prefetchBatch is the maximum pages one hint carries.
const prefetchBatch = 8

// prefetchRunPages is the maximum pages one worker serves per wakeup; it
// bounds the per-worker read buffer at prefetchRunPages×pageSize bytes.
// Workers opportunistically drain queued hints up to this budget, so a
// stream of single-page next-leaf hints from a sequential scan merges into
// vectored ReadPages calls (bulk-loaded leaf chains are physically
// adjacent, so the merged batch coalesces into long runs).
const prefetchRunPages = 16

// hint is one readahead request. A fixed-size id array keeps the channel
// send allocation-free, and the hint carries only the query's context —
// not the *Counters — so a stack-allocated Counters never escapes just
// because its query published hints (the leaf-scan hot path allocates
// nothing).
type hint struct {
	ids [prefetchBatch]pagefile.PageID
	n   int
	ctx context.Context // cancellation carrier; may be nil
}

// canceled reports whether a hint's carried context has been canceled.
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

type prefetcher struct {
	p    *Pool
	ch   chan hint
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

func newPrefetcher(p *Pool, workers int) *prefetcher {
	pf := &prefetcher{
		p:    p,
		ch:   make(chan hint, workers*4),
		done: make(chan struct{}),
	}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.run()
	}
	return pf
}

// stop shuts the workers down and waits for them; idempotent.
func (pf *prefetcher) stop() {
	pf.once.Do(func() { close(pf.done) })
	pf.wg.Wait()
}

// Prefetch asks the readahead workers to pull the given pages into the
// probationary queue without pinning them. Non-blocking and best-effort:
// hints are dropped when prefetch is disabled, the queue is full, or c is
// already interrupted. Safe for concurrent use.
func (p *Pool) Prefetch(c *metrics.Counters, ids ...pagefile.PageID) {
	if p.pf == nil || len(ids) == 0 {
		return
	}
	if c.Interrupted() != nil {
		return
	}
	var h hint
	if c != nil {
		h.ctx = c.Ctx
	}
	for _, id := range ids {
		if id == pagefile.InvalidPage {
			continue
		}
		if h.n < len(h.ids) {
			h.ids[h.n] = id
			h.n++
		}
	}
	if h.n == 0 {
		return
	}
	select {
	case p.pf.ch <- h:
		p.stats.PrefetchIssued.Add(int64(h.n))
		if sink := p.sink.Load(); sink != nil {
			atomic.AddInt64(&sink.PrefetchIssued, int64(h.n))
		}
	default:
		// Queue full: the pool is already I/O-bound; drop the hint.
	}
}

// PrefetchEnabled reports whether the pool runs readahead workers.
func (p *Pool) PrefetchEnabled() bool { return p.pf != nil }

func (pf *prefetcher) run() {
	defer pf.wg.Done()
	// Per-worker scratch, reused across wakeups: the hint batch, the
	// vectored-read id/buffer vectors, and one backing array sliced into
	// page buffers.
	ps := pf.p.file.PageSize()
	hs := make([]hint, 0, prefetchRunPages)
	ids := make([]pagefile.PageID, 0, prefetchRunPages)
	dsts := make([][]byte, 0, prefetchRunPages)
	backing := make([]byte, prefetchRunPages*ps)
	for {
		select {
		case <-pf.done:
			return
		case h := <-pf.ch:
			hs = append(hs[:0], h)
			// Drain whatever else queued up while this worker slept: merged
			// hints share one vectored read, which is where the coalescing
			// win of sequential scans comes from.
			for len(hs) < cap(hs) {
				select {
				case h2 := <-pf.ch:
					hs = append(hs, h2)
				default:
					goto drained
				}
			}
		drained:
			pf.serve(hs, ids, dsts, backing)
		}
	}
}

// serve reads a hint batch's non-resident pages and admits them unpinned.
func (pf *prefetcher) serve(hs []hint, ids []pagefile.PageID, dsts [][]byte, backing []byte) {
	p := pf.p
	ps := p.file.PageSize()
	ids, dsts = ids[:0], dsts[:0]
collect:
	for _, h := range hs {
		if canceled(h.ctx) {
			continue
		}
		for i := 0; i < h.n; i++ {
			id := h.ids[i]
			dup := false
			for _, e := range ids {
				if e == id {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			s := p.shardFor(id)
			s.mu.Lock()
			_, resident := s.frames[id]
			s.mu.Unlock()
			if resident {
				continue
			}
			k := len(ids)
			ids = append(ids, id)
			dsts = append(dsts, backing[k*ps:(k+1)*ps])
			if len(ids) == prefetchRunPages {
				break collect
			}
		}
	}
	if len(ids) == 0 {
		return
	}
	// ReadPages sorts ids and dsts in tandem, so ids[i]↔dsts[i] holds after
	// the call. Errors (e.g. a hint for a page freed meanwhile) drop the
	// whole hint — readahead must never fail the hinting query.
	if err := p.file.ReadPages(ids, dsts); err != nil {
		return
	}
	// Re-poll after the read: if every hinting query has been canceled
	// meanwhile, drop the batch instead of admitting dead pages.
	live := false
	for _, h := range hs {
		if !canceled(h.ctx) {
			live = true
			break
		}
	}
	if !live {
		return
	}
	for i, id := range ids {
		s := p.shardFor(id)
		s.mu.Lock()
		if _, ok := s.frames[id]; ok {
			// A demand fetch raced the page in; its copy is authoritative.
			s.mu.Unlock()
			continue
		}
		f, err := p.admitLocked(s, id)
		if err != nil {
			// Every victim candidate is pinned; skip rather than wait.
			s.mu.Unlock()
			continue
		}
		copy(f.data, dsts[i])
		f.restSum()
		// Prefetched pages always enter cold (probation head), even when the
		// id is remembered by the 2Q ghost list: nothing has demanded the
		// page yet, so it has no claim on the protected segment. ra buys the
		// frame one eviction reprieve until the demand arrives.
		f.prot, f.ra = false, true
		s.releaseLocked(f)
		s.mu.Unlock()
		p.stats.PrefetchReads.Add(1)
		if sink := p.sink.Load(); sink != nil {
			atomic.AddInt64(&sink.PrefetchReads, 1)
		}
	}
}
