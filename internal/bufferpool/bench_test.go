package bufferpool

import (
	"testing"

	"xrtree/internal/pagefile"
)

// benchPool builds a pool of the given capacity over a fresh memory file
// and pre-allocates pages through it, returning their ids unpinned.
func benchPool(b *testing.B, frames, pages int) (*Pool, []pagefile.PageID) {
	b.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: pagefile.DefaultPageSize})
	b.Cleanup(func() { f.Close() })
	p, err := New(f, frames)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]pagefile.PageID, pages)
	for i := range ids {
		id, _, err := p.FetchNew()
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Unpin(id, true); err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	return p, ids
}

// BenchmarkPoolFetch measures the pin/unpin fast path: all-hit (working
// set resident) and all-miss (working set far larger than the pool, every
// fetch evicts and reads).
func BenchmarkPoolFetch(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		p, ids := benchPool(b, 128, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[i%len(ids)]
			data, err := p.Fetch(id)
			if err != nil {
				b.Fatal(err)
			}
			_ = data[0]
			if err := p.Unpin(id, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		p, ids := benchPool(b, 16, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[i%len(ids)]
			data, err := p.Fetch(id)
			if err != nil {
				b.Fatal(err)
			}
			_ = data[0]
			if err := p.Unpin(id, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}
