package bufferpool

import (
	"fmt"

	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/wal"
)

// This file is the pool's side of the write-ahead-log protocol (see
// package wal for the log itself and the package comment there for the
// full picture).
//
// A mutation runs as a transaction: every page it touches is fetched
// "held" (FetchHeld / FetchNewHeld), which marks the frame no-steal — it
// stays off the replacement lists and is skipped by every write-back path
// until CommitTx has appended its after-image to the log and the
// group-commit flusher has fsynced past the commit record. Only the
// mutation's owner touches its held frames (the index latching protocol
// serializes writers per tree), so commit can snapshot their bytes
// without copying.
//
// Page frees inside a transaction are deferred to after commit
// (DiscardTx): the free list is threaded through unlogged writes, so
// freeing before the commit is durable could hand the page to another
// allocation whose crash-recovered state would then be wrong.
//
// Bulk builds (tree construction) bypass the log entirely — their
// durability point is the store's explicit save, which flushes, fsyncs,
// and checkpoints. BeginUnlogged/EndUnlogged bracket them so a
// concurrent fuzzy checkpoint never reads a half-built frame.

// DefaultCheckpointBytes is the default fuzzy-checkpoint trigger: a
// checkpoint is written once this many log bytes accumulate.
const DefaultCheckpointBytes = 4 << 20

// Tx is one in-flight transaction. It is owned by a single goroutine
// (the mutation holds its tree's exclusive latch) and is not safe for
// concurrent use.
type Tx struct {
	pages []pagefile.PageID // held pages, in first-touch order
	seen  map[pagefile.PageID]struct{}
	frees []pagefile.PageID // frees deferred to after commit
}

// SetWAL attaches the write-ahead log to the pool. ckptBytes is the
// fuzzy-checkpoint trigger (DefaultCheckpointBytes when ≤ 0). Attach
// before the pool sees concurrent transactions.
func (p *Pool) SetWAL(l *wal.Log, ckptBytes int64) {
	if ckptBytes <= 0 {
		ckptBytes = DefaultCheckpointBytes
	}
	p.ckptBytes = ckptBytes
	p.wal.Store(l)
}

// WAL returns the attached log, or nil.
func (p *Pool) WAL() *wal.Log { return p.wal.Load() }

// Begin starts a transaction. It returns nil when the pool has no log
// attached; every Tx-taking method accepts a nil Tx and degrades to the
// plain unlogged call, so callers thread the Tx through unconditionally.
func (p *Pool) Begin() *Tx {
	if p.wal.Load() == nil {
		return nil
	}
	return &Tx{seen: make(map[pagefile.PageID]struct{}, 8)}
}

// hold marks frame f as belonging to tx. Caller holds the shard mutex.
func (tx *Tx) hold(s *shard, f *frame) {
	if _, ok := tx.seen[f.id]; ok {
		return
	}
	tx.seen[f.id] = struct{}{}
	tx.pages = append(tx.pages, f.id)
	f.held = true
	// A held frame must not sit on a replacement list: it would become an
	// eviction victim, and eviction writes frames back.
	if f.pins == 0 && f.where != offList {
		s.listRemove(f)
	}
}

// FetchHeld is Fetch within a transaction: the frame is pinned and marked
// held until the transaction commits. With tx == nil it is plain Fetch.
func (p *Pool) FetchHeld(tx *Tx, id pagefile.PageID) ([]byte, error) {
	return p.FetchHeldTraced(tx, id, nil)
}

// FetchHeldTraced is FetchHeld with per-call read attribution (see
// FetchTraced). Every page a transaction might dirty must come through a
// held fetch: an unheld dirty frame is both invisible to the commit's
// snapshot (its image never reaches the log) and stealable by eviction
// before the commit is durable.
func (p *Pool) FetchHeldTraced(tx *Tx, id pagefile.PageID, tr obs.Tracer) ([]byte, error) {
	if tx == nil {
		return p.FetchTraced(id, tr)
	}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := p.fetchLocked(s, id, tr)
	if err != nil {
		return nil, err
	}
	tx.hold(s, f)
	s.pinLocked(f)
	p.debugPinned(1)
	return f.data, nil
}

// FetchNewHeld is FetchNew within a transaction. With tx == nil it is
// plain FetchNew.
func (p *Pool) FetchNewHeld(tx *Tx) (pagefile.PageID, []byte, error) {
	id, data, err := p.FetchNew()
	if err != nil || tx == nil {
		return id, data, err
	}
	s := p.shardFor(id)
	s.mu.Lock()
	tx.hold(s, s.frames[id])
	s.mu.Unlock()
	return id, data, nil
}

// UnpinTx is Unpin within a transaction. The frame stays held (and off
// the replacement lists) until commit. Unpin itself is transaction-aware,
// so this is a plain alias kept for call-site symmetry.
func (p *Pool) UnpinTx(tx *Tx, id pagefile.PageID, dirty bool) error {
	return p.Unpin(id, dirty)
}

// DiscardTx drops page id from the pool without write-back and defers
// freeing it in the file until the transaction commits. The page must be
// pinned exactly once by the caller. With tx == nil it is plain Discard.
func (p *Pool) DiscardTx(tx *Tx, id pagefile.PageID) error {
	if tx == nil {
		return p.Discard(id)
	}
	s := p.shardFor(id)
	s.mu.Lock()
	f, ok := s.frames[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: page %d", ErrBadUnpin, id)
	}
	if f.pins != 1 {
		s.mu.Unlock()
		return fmt.Errorf("bufferpool: discard of page %d with %d pins", id, f.pins)
	}
	f.held = false
	delete(s.frames, id)
	p.debugPinned(-1)
	s.mu.Unlock()
	tx.frees = append(tx.frees, id)
	return nil
}

// FreeTx drops any resident frame for page id (which must be unpinned)
// without write-back and frees the page in the file — immediately outside
// a transaction, or deferred to after commit inside one. Used for pages
// that go dead without being pinned at the time (e.g. the old root when
// the tree shrinks).
func (p *Pool) FreeTx(tx *Tx, id pagefile.PageID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		if f.pins != 0 {
			s.mu.Unlock()
			return fmt.Errorf("bufferpool: free of pinned page %d", id)
		}
		if f.where != offList {
			s.listRemove(f)
		}
		f.held = false
		delete(s.frames, id)
	}
	s.mu.Unlock()
	if tx == nil {
		return p.file.Free(id)
	}
	tx.frees = append(tx.frees, id)
	return nil
}

// CommitTx makes the transaction durable: the after-images of every page
// it dirtied are appended to the log together with a commit record, the
// committer waits for the group-commit fsync, and only then are the
// frames released for ordinary lazy write-back and the deferred page
// frees applied. A nil Tx is a no-op. Commit errors leave the frames
// released but still dirty; the log is dead at that point (its errors
// are sticky), so nothing can write them back out of order.
func (p *Pool) CommitTx(tx *Tx) error {
	if tx == nil {
		return nil
	}
	l := p.wal.Load()
	// The commit — log append through frame release — runs under the
	// checkpoint gate in read mode. A checkpoint asserts that every
	// committed image below its record is durably in the page file; by
	// excluding half-released commits (log record written, frames still
	// held and so skipped by the checkpoint's flush) the assertion is
	// exact. Commits and unlogged bulk builds share the gate's read side
	// and never block each other.
	p.ckptGate.RLock()
	// Snapshot the dirty held frames. No copy: held frames cannot be
	// evicted, and only this transaction's owner writes their bytes.
	images := make([]wal.PageImage, 0, len(tx.pages))
	for _, id := range tx.pages {
		s := p.shardFor(id)
		s.mu.Lock()
		f, ok := s.frames[id]
		if ok && f.held && f.dirty {
			images = append(images, wal.PageImage{ID: id, Data: f.data})
		}
		s.mu.Unlock()
	}
	lsn, cerr := l.Commit(images)
	// Release the frames whether or not the commit stuck: a dead log makes
	// every later flushLocked fail closed, and leaving frames held forever
	// would wedge the pool.
	for _, id := range tx.pages {
		s := p.shardFor(id)
		s.mu.Lock()
		f, ok := s.frames[id]
		if ok && f.held {
			f.held = false
			if cerr == nil && f.dirty {
				f.lsn = lsn
			}
			if f.pins == 0 {
				s.releaseLocked(f)
			}
		}
		s.mu.Unlock()
	}
	p.ckptGate.RUnlock()
	if cerr != nil {
		return cerr
	}
	for _, id := range tx.frees {
		if err := p.file.Free(id); err != nil {
			return err
		}
	}
	if l.SinceCheckpoint() >= p.ckptBytes {
		return p.Checkpoint()
	}
	return nil
}

// BeginUnlogged brackets an unlogged bulk write (tree construction):
// while any unlogged writer is active, fuzzy checkpoints are skipped, so
// a checkpoint's flush never reads a frame the builder is mutating.
// Pair with EndUnlogged.
func (p *Pool) BeginUnlogged() { p.ckptGate.RLock() }

// EndUnlogged ends an unlogged bulk write begun with BeginUnlogged.
func (p *Pool) EndUnlogged() { p.ckptGate.RUnlock() }

// Checkpoint writes a fuzzy checkpoint: flush every unheld dirty frame,
// fsync the page file, append a checkpoint record (which prunes dead log
// segments). Skipped — successfully — when an unlogged bulk build is in
// progress or another checkpoint is already running; the next trigger
// retries. No-op without an attached log.
func (p *Pool) Checkpoint() error {
	l := p.wal.Load()
	if l == nil {
		return nil
	}
	if !p.ckptGate.TryLock() {
		return nil
	}
	defer p.ckptGate.Unlock()
	return p.checkpointLocked(l)
}

// CheckpointWait is Checkpoint, but it waits for in-flight commits and
// unlogged bulk builds to drain instead of skipping. The store's save path
// uses it: the checkpoint is the barrier that stops older logged images
// from replaying over pages a bulk build reused, so the save must not
// proceed without one.
func (p *Pool) CheckpointWait() error {
	l := p.wal.Load()
	if l == nil {
		return nil
	}
	p.ckptGate.Lock()
	defer p.ckptGate.Unlock()
	return p.checkpointLocked(l)
}

func (p *Pool) checkpointLocked(l *wal.Log) error {
	if err := p.FlushAll(); err != nil {
		return err
	}
	if err := p.file.Sync(); err != nil {
		return err
	}
	return l.Checkpoint()
}
