package bufferpool

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
)

// TestDefaultShards pins the shard-count heuristic: exact single-LRU
// semantics for small pools, striping only once every shard keeps at least
// minFramesPerShard frames.
func TestDefaultShards(t *testing.T) {
	cases := []struct{ capacity, want int }{
		{1, 1}, {2, 1}, {16, 1}, {31, 1},
		{32, 2}, {63, 2},
		{64, 4}, {100, 4}, {127, 4},
		{128, 8}, {1024, 8}, {100000, 8},
	}
	for _, c := range cases {
		if got := defaultShards(c.capacity); got != c.want {
			t.Errorf("defaultShards(%d) = %d, want %d", c.capacity, got, c.want)
		}
	}
}

func TestNewShardedCapacityDistribution(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := NewSharded(f, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", pool.Shards())
	}
	if pool.Capacity() != 10 {
		t.Fatalf("Capacity() = %d, want 10", pool.Capacity())
	}
	total := 0
	for _, s := range pool.shards {
		if s.cap < 2 || s.cap > 3 {
			t.Errorf("uneven shard capacity %d", s.cap)
		}
		total += s.cap
	}
	if total != 10 {
		t.Fatalf("shard capacities sum to %d, want 10", total)
	}

	// Shard counts are clamped so every shard has at least one frame, and
	// non-powers round up.
	pool2, err := NewSharded(f, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pool2.Shards() != 2 {
		t.Fatalf("clamped Shards() = %d, want 2", pool2.Shards())
	}
	pool3, err := NewSharded(f, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pool3.Shards() != 4 {
		t.Fatalf("rounded Shards() = %d, want 4", pool3.Shards())
	}
}

func TestFetchCopy(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := New(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	id, data, err := pool.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = byte(i)
	}
	if err := pool.Unpin(id, true); err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 256)
	if err := pool.FetchCopy(id, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("FetchCopy returned different bytes than the frame")
	}
	if pool.PinnedCount() != 0 {
		t.Fatalf("FetchCopy left %d pages pinned", pool.PinnedCount())
	}
	if err := pool.FetchCopy(id, make([]byte, 64)); err == nil {
		t.Fatal("FetchCopy accepted a short buffer")
	}

	// A missed FetchCopy admits the page as an unpinned replacement
	// candidate and counts a miss.
	if err := pool.DropClean(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if err := pool.FetchCopy(id, dst); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.BufferMisses != 1 || st.BufferHits != 0 {
		t.Fatalf("after cold FetchCopy: hits=%d misses=%d, want 0/1", st.BufferHits, st.BufferMisses)
	}
	if err := pool.FetchCopy(id, dst); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.BufferHits != 1 {
		t.Fatalf("after warm FetchCopy: hits=%d, want 1", st.BufferHits)
	}
	// The admitted frame must be evictable (it is on the LRU).
	for i := 0; i < 6; i++ {
		nid, _, err := pool.FetchNew()
		if err != nil {
			t.Fatalf("FetchNew %d with FetchCopy frame resident: %v", i, err)
		}
		if err := pool.Unpin(nid, true); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedConcurrentFetchUnpin hammers a multi-shard pool with
// overlapping Fetch/Unpin and FetchCopy from many goroutines; run with
// -race. Pages carry their index so cross-shard frame mixups are caught.
func TestShardedConcurrentFetchUnpin(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := NewSharded(f, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", pool.Shards())
	}
	ids := make([]pagefile.PageID, 256)
	for i := range ids {
		id, data, err := pool.FetchNew()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i)
		data[1] = byte(i >> 8)
		if err := pool.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var sink metrics.Counters
	pool.SetSink(&sink)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < 3000; i++ {
				idx := (g*37 + i*13) % len(ids)
				if i%3 == 0 {
					if err := pool.FetchCopy(ids[idx], buf); err != nil {
						t.Errorf("FetchCopy: %v", err)
						return
					}
					if int(buf[0])|int(buf[1])<<8 != idx {
						t.Errorf("page %d copy corrupted", idx)
						return
					}
					continue
				}
				data, err := pool.Fetch(ids[idx])
				if err != nil {
					t.Errorf("Fetch: %v", err)
					return
				}
				if int(data[0])|int(data[1])<<8 != idx {
					t.Errorf("page %d corrupted", idx)
					return
				}
				if err := pool.Unpin(ids[idx], false); err != nil {
					t.Errorf("Unpin: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	pool.SetSink(nil)

	if n := pool.PinnedCount(); n != 0 {
		t.Fatalf("%d pages left pinned", n)
	}
	// 8 goroutines × 3000 accesses flowed through both the pool stats and
	// the attached sink.
	st := pool.Stats()
	if st.BufferHits+st.BufferMisses < 8*3000 {
		t.Fatalf("pool counted %d accesses, want ≥ %d", st.BufferHits+st.BufferMisses, 8*3000)
	}
	if sink.BufferHits+sink.BufferMisses != 8*3000 {
		t.Fatalf("sink counted %d accesses, want %d", sink.BufferHits+sink.BufferMisses, 8*3000)
	}
}

// TestShardPoolFullError checks that pinning a whole shard reports
// ErrPoolFull for pages of that shard.
func TestShardPoolFullError(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := NewSharded(f, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate pages until one shard has both its frames pinned.
	pinned := map[*shard][]pagefile.PageID{}
	var full *shard
	for i := 0; i < 16 && full == nil; i++ {
		id, _, err := pool.FetchNew()
		if err != nil {
			t.Fatal(err)
		}
		s := pool.shardFor(id)
		pinned[s] = append(pinned[s], id)
		if len(pinned[s]) == s.cap {
			full = s
		}
	}
	if full == nil {
		t.Fatal("never filled a shard")
	}
	// The next page landing in the full shard must fail to admit.
	for i := 0; ; i++ {
		id, err := pool.file.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if pool.shardFor(id) != full {
			continue
		}
		if _, err := pool.Fetch(id); !errors.Is(err, ErrPoolFull) {
			t.Fatalf("Fetch into full shard: err = %v, want ErrPoolFull", err)
		}
		break
	}
}
