//go:build xrtreedebug

package bufferpool

import (
	"testing"
)

// TestChecksumCatchesUseAfterUnpin proves the debug-build oracle is live:
// writing through a page slice kept across Unpin must panic on the next
// fetch of the resting frame.
func TestChecksumCatchesUseAfterUnpin(t *testing.T) {
	p, _ := newPool(t, 4)
	id, data, err := p.FetchNew()
	if err != nil {
		t.Fatalf("FetchNew: %v", err)
	}
	data[0] = 1
	if err := p.Unpin(id, true); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	data[0] = 2 // use-after-unpin: the frame is resting

	defer func() {
		if recover() == nil {
			t.Fatal("fetch of a corrupted resting frame did not panic")
		}
	}()
	p.Fetch(id) // panics before pinning; nothing to unpin
}

// TestPinLedgerBalanced exercises the net-pin ledger through a
// fetch/unpin/discard cycle; any imbalance panics inside the calls.
func TestPinLedgerBalanced(t *testing.T) {
	p, _ := newPool(t, 4)
	id, _, err := p.FetchNew()
	if err != nil {
		t.Fatalf("FetchNew: %v", err)
	}
	if err := p.Unpin(id, true); err != nil {
		t.Fatalf("Unpin: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Fetch(id); err != nil {
			t.Fatalf("Fetch: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := p.Unpin(id, false); err != nil {
			t.Fatalf("Unpin: %v", err)
		}
	}
	if got := p.debugPins.Load(); got != 0 {
		t.Fatalf("net pins after balanced cycle = %d, want 0", got)
	}
}
