package bufferpool

import (
	"xrtree/internal/invariant"
)

// Debug-build (xrtreedebug) oracles for the pinning protocol. Every hook
// is gated on the invariant.Enabled constant, so release builds compile
// them away entirely.
//
//   - Resting-page checksums: when a frame's pin count returns to zero
//     (or it is admitted without being pinned), an FNV-1a checksum of its
//     bytes is recorded; the next fetch or flush of the still-resting
//     frame re-verifies it. A mismatch means someone wrote through a page
//     slice after Unpin — the use-after-unpin bug class the pin
//     discipline (and the pinleak analyzer) exists to prevent.
//
//   - Net pin ledger: a pool-wide atomic count of outstanding pins that
//     must never go negative; it gives operation-exit balance checks
//     (core's write paths compare PinnedCount before and after) a cheap
//     always-on cross-check under the debug tag.

// restSum records the checksum of a frame that has come to rest
// (unpinned, bytes final until the next pin).
func (f *frame) restSum() {
	if invariant.Enabled {
		f.sum = invariant.Checksum(f.data)
		f.hasSum = true
	}
}

// dropSum invalidates the resting checksum when the frame is pinned (its
// bytes may now change legitimately) or its identity changes.
func (f *frame) dropSum() {
	if invariant.Enabled {
		f.hasSum = false
	}
}

// verifySum checks a resting frame's bytes against the recorded checksum.
func (f *frame) verifySum() {
	if invariant.Enabled && f.pins == 0 && f.hasSum {
		invariant.Assertf(invariant.Checksum(f.data) == f.sum,
			"page %d: bytes of an unpinned frame changed (write through a stale slice after Unpin?)", f.id)
	}
}

// debugPinned tracks the pool-wide net pin count.
func (p *Pool) debugPinned(d int64) {
	if !invariant.Enabled {
		return
	}
	v := p.debugPins.Add(d)
	invariant.Assertf(v >= 0, "net pin count went negative (%d)", v)
}
