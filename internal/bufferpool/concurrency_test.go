package bufferpool

import (
	"sync"
	"testing"

	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
)

// TestConcurrentFetchUnpin hammers the pool from many goroutines; run with
// -race to validate the locking.
func TestConcurrentFetchUnpin(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := New(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Seed 64 pages, each tagged with its index.
	ids := make([]pagefile.PageID, 64)
	for i := range ids {
		id, data, err := pool.FetchNew()
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i)
		if err := pool.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				idx := (g*31 + i) % len(ids)
				data, err := pool.Fetch(ids[idx])
				if err != nil {
					errs <- err
					return
				}
				if data[0] != byte(idx) {
					t.Errorf("page %d corrupted: got %d", idx, data[0])
				}
				if err := pool.Unpin(ids[idx], false); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", pool.PinnedCount())
	}
}

// TestConcurrentWriters checks dirty write-back under concurrent mutation
// of disjoint pages.
func TestConcurrentWriters(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := New(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	const pagesPerWorker = 16
	const workers = 4
	ids := make([][]pagefile.PageID, workers)
	for w := range ids {
		ids[w] = make([]pagefile.PageID, pagesPerWorker)
		for i := range ids[w] {
			id, _, err := pool.FetchNew()
			if err != nil {
				t.Fatal(err)
			}
			if err := pool.Unpin(id, true); err != nil {
				t.Fatal(err)
			}
			ids[w][i] = id
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				for i, id := range ids[w] {
					data, err := pool.Fetch(id)
					if err != nil {
						t.Error(err)
						return
					}
					data[0] = byte(w)
					data[1] = byte(i)
					data[2] = byte(round)
					if err := pool.Unpin(id, true); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range ids {
		for i, id := range ids[w] {
			data, err := pool.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != byte(w) || data[1] != byte(i) || data[2] != byte(199) {
				t.Errorf("worker %d page %d: got %d,%d,%d", w, i, data[0], data[1], data[2])
			}
			pool.Unpin(id, false)
		}
	}
}

// TestConcurrentSharedSink shares one metrics sink between concurrent
// fetchers — the data race the atomic sink increments fix; run with -race.
// After detaching, the sink's plain reads must equal the pool's own
// counters exactly.
func TestConcurrentSharedSink(t *testing.T) {
	f := pagefile.NewMem(pagefile.Options{PageSize: 256})
	defer f.Close()
	pool, err := New(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]pagefile.PageID, 32)
	for i := range ids {
		id, _, err := pool.FetchNew()
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Unpin(id, true); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	pool.ResetStats()

	var sink metrics.Counters
	pool.SetSink(&sink)
	const workers, rounds = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := ids[(g*7+i)%len(ids)]
				if _, err := pool.Fetch(id); err != nil {
					t.Error(err)
					return
				}
				if err := pool.Unpin(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	pool.SetSink(nil)

	if got := sink.PageAccesses(); got != workers*rounds {
		t.Errorf("sink saw %d accesses, want %d", got, workers*rounds)
	}
	own := pool.Stats()
	if sink.BufferHits != own.BufferHits || sink.BufferMisses != own.BufferMisses ||
		sink.PageEvictions != own.PageEvictions {
		t.Errorf("sink %+v disagrees with pool stats %+v", sink, own)
	}
}
