// Package bufferpool implements the buffer manager that sits between every
// index and the paged storage manager. It mirrors the component the paper's
// experimental system uses: a fixed number of page frames, pin/unpin
// discipline, LRU replacement among unpinned frames, dirty write-back, and
// hit/miss counters (the paper's elapsed-time results are dominated by page
// misses, so the miss counter is the primary cost signal of the benchmark
// harness).
//
// The paper runs all join experiments with a pool of 100 pages and reports
// that varying the pool size does not essentially change the results; the
// default here is likewise 100 frames and the size is configurable for the
// ablation benchmark.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
)

// DefaultFrames is the default pool capacity in frames, matching §6.1.
const DefaultFrames = 100

// Errors returned by the pool.
var (
	ErrPoolFull   = errors.New("bufferpool: all frames pinned")
	ErrNotPinned  = errors.New("bufferpool: page not pinned")
	ErrBadUnpin   = errors.New("bufferpool: unpin of page not in pool")
	ErrZeroFrames = errors.New("bufferpool: pool must have at least one frame")
)

// frame is one buffered page. Frames on the LRU list link to each other
// intrusively so pin/unpin never allocates.
type frame struct {
	id    pagefile.PageID
	data  []byte
	pins  int
	dirty bool
	// prev/next form the LRU list when the frame is unpinned; onLRU marks
	// membership.
	prev, next *frame
	onLRU      bool
}

// Pool is a buffer pool over a single pagefile.File. All methods are safe
// for concurrent use.
type Pool struct {
	mu     sync.Mutex
	file   *pagefile.File
	frames map[pagefile.PageID]*frame
	// lruHead is most recently unpinned; lruTail is the eviction victim.
	lruHead, lruTail *frame
	cap              int

	// stats are the pool's always-on counters, atomic so Stats snapshots
	// never race with concurrent fetches.
	stats obs.Counters
	// sink, when non-nil, also receives hit/miss/eviction increments;
	// experiments point this at their per-run counter set. Increments use
	// atomic adds on the sink's fields so a sink shared between concurrent
	// queries does not race (the owner still reads it plainly after
	// detaching, which SetSink's mutex makes safe). The sink's Tracer, if
	// set, receives PageEvict events.
	sink *metrics.Counters

	// series, when enabled, records the hit rate of every window of page
	// accesses — the hit-rate-over-time view of the paper's dominant cost.
	series hitRateSeries
}

// hitRateSeries accumulates a bounded hit-rate time series. When the point
// buffer is full, adjacent points are merged pairwise and the window
// doubles, so memory stays constant over arbitrarily long runs while the
// whole history keeps uniform resolution.
type hitRateSeries struct {
	window   int // accesses per point; 0 = disabled
	hits     int // hits in the current window
	accesses int // accesses in the current window
	points   []float64
}

// seriesMaxPoints bounds the series buffer before pairwise compaction.
const seriesMaxPoints = 512

func (s *hitRateSeries) record(hit bool) {
	if s.window == 0 {
		return
	}
	s.accesses++
	if hit {
		s.hits++
	}
	if s.accesses < s.window {
		return
	}
	s.points = append(s.points, float64(s.hits)/float64(s.accesses))
	s.hits, s.accesses = 0, 0
	if len(s.points) >= seriesMaxPoints {
		half := s.points[:0]
		for i := 0; i+1 < len(s.points); i += 2 {
			half = append(half, (s.points[i]+s.points[i+1])/2)
		}
		s.points = half
		s.window *= 2
	}
}

// New creates a pool of capacity frames over file. Capacity must be ≥ 1.
func New(file *pagefile.File, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, ErrZeroFrames
	}
	return &Pool{
		file:   file,
		frames: make(map[pagefile.PageID]*frame, capacity),
		cap:    capacity,
	}, nil
}

// File returns the underlying paged file.
func (p *Pool) File() *pagefile.File { return p.file }

// Capacity returns the pool capacity in frames.
func (p *Pool) Capacity() int { return p.cap }

// SetSink directs hit/miss/eviction counting to c in addition to the
// pool's own statistics. Pass nil to detach. Attaching and detaching
// through the pool mutex establishes the happens-before edge that lets the
// owner read the sink plainly after detaching.
func (p *Pool) SetSink(c *metrics.Counters) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sink = c
}

// Stats returns a snapshot view of the pool's atomic counters in the
// historical plain-counter form.
func (p *Pool) Stats() metrics.Counters {
	return metrics.FromSnapshot(p.stats.Snapshot())
}

// ObsStats exposes the pool's live atomic counters for callers that want
// to take their own deltas.
func (p *Pool) ObsStats() *obs.Counters { return &p.stats }

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	p.stats.Reset()
}

// EnableHitRateSeries starts recording the pool hit rate once per window
// of page accesses (window ≥ 1); 0 disables. When the internal buffer
// fills, adjacent points merge and the effective window doubles, so the
// series stays bounded. Enabling resets any prior series.
func (p *Pool) EnableHitRateSeries(window int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if window < 0 {
		window = 0
	}
	p.series = hitRateSeries{window: window}
}

// HitRateSeries returns the recorded hit-rate points and the number of
// page accesses each point currently spans (0 when disabled).
func (p *Pool) HitRateSeries() (window int, points []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]float64, len(p.series.points))
	copy(out, p.series.points)
	return p.series.window, out
}

// --- intrusive LRU list ---------------------------------------------------

func (p *Pool) lruPushFront(f *frame) {
	f.prev = nil
	f.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = f
	}
	p.lruHead = f
	if p.lruTail == nil {
		p.lruTail = f
	}
	f.onLRU = true
}

func (p *Pool) lruRemove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
	f.onLRU = false
}

// Fetch pins page id and returns its in-pool bytes. The returned slice
// aliases the frame and is valid until the matching Unpin. Callers that
// modify the bytes must pass dirty=true to Unpin.
func (p *Pool) Fetch(id pagefile.PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		p.stats.BufferHits.Add(1)
		if p.sink != nil {
			atomic.AddInt64(&p.sink.BufferHits, 1)
		}
		p.series.record(true)
		p.pinLocked(f)
		return f.data, nil
	}
	p.stats.BufferMisses.Add(1)
	if p.sink != nil {
		atomic.AddInt64(&p.sink.BufferMisses, 1)
	}
	p.series.record(false)
	f, err := p.admitLocked(id)
	if err != nil {
		return nil, err
	}
	if err := p.file.ReadPage(id, f.data); err != nil {
		// Admission failed; drop the frame entirely.
		delete(p.frames, id)
		return nil, err
	}
	p.pinLocked(f)
	return f.data, nil
}

// FetchNew allocates a new page in the file, pins it, and returns its id
// and zeroed in-pool bytes. The caller must Unpin with dirty=true after
// initializing it.
func (p *Pool) FetchNew() (pagefile.PageID, []byte, error) {
	id, err := p.file.Allocate()
	if err != nil {
		return pagefile.InvalidPage, nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.admitLocked(id)
	if err != nil {
		return pagefile.InvalidPage, nil, err
	}
	clear(f.data)
	f.dirty = true
	p.pinLocked(f)
	return id, f.data, nil
}

// Unpin releases one pin on page id. dirty marks the page as modified so it
// is written back before eviction.
func (p *Pool) Unpin(id pagefile.PageID, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrBadUnpin, id)
	}
	if f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		p.lruPushFront(f)
	}
	return nil
}

// Discard drops page id from the pool without writing it back and frees it
// in the file. The page must be pinned exactly once by the caller.
func (p *Pool) Discard(id pagefile.PageID) error {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: page %d", ErrBadUnpin, id)
	}
	if f.pins != 1 {
		p.mu.Unlock()
		return fmt.Errorf("bufferpool: discard of page %d with %d pins", id, f.pins)
	}
	delete(p.frames, id)
	p.mu.Unlock()
	return p.file.Free(id)
}

// FlushAll writes every dirty frame back to the file. Pinned frames are
// flushed too (they stay pinned and in the pool).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if err := p.flushLocked(f); err != nil {
			return err
		}
	}
	return nil
}

// DropClean evicts every unpinned frame after flushing it; useful between
// experiment runs to cold-start the cache deterministically.
func (p *Pool) DropClean() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for f := p.lruHead; f != nil; {
		next := f.next
		if err := p.flushLocked(f); err != nil {
			return err
		}
		p.lruRemove(f)
		delete(p.frames, f.id)
		f = next
	}
	return nil
}

// PinnedCount returns the number of frames currently pinned (for tests).
func (p *Pool) PinnedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

func (p *Pool) pinLocked(f *frame) {
	if f.pins == 0 && f.onLRU {
		p.lruRemove(f)
	}
	f.pins++
}

// admitLocked finds a frame for page id, evicting the LRU unpinned frame
// when the pool is at capacity. The returned frame is registered in the
// frame map with zero pins and stale data.
func (p *Pool) admitLocked(id pagefile.PageID) (*frame, error) {
	if len(p.frames) >= p.cap {
		victim := p.lruTail
		if victim == nil {
			return nil, fmt.Errorf("%w (%d frames)", ErrPoolFull, p.cap)
		}
		if err := p.flushLocked(victim); err != nil {
			return nil, err
		}
		p.stats.PageEvictions.Add(1)
		if p.sink != nil {
			atomic.AddInt64(&p.sink.PageEvictions, 1)
			p.sink.Emit(obs.EvPageEvict, 1)
		}
		p.lruRemove(victim)
		delete(p.frames, victim.id)
		victim.id = id
		victim.dirty = false
		p.frames[id] = victim
		return victim, nil
	}
	f := &frame{id: id, data: make([]byte, p.file.PageSize())}
	p.frames[id] = f
	return f, nil
}

func (p *Pool) flushLocked(f *frame) error {
	if !f.dirty {
		return nil
	}
	if err := p.file.WritePage(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}
