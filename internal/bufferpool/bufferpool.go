// Package bufferpool implements the buffer manager that sits between every
// index and the paged storage manager. It mirrors the component the paper's
// experimental system uses: a fixed number of page frames, pin/unpin
// discipline, LRU replacement among unpinned frames, dirty write-back, and
// hit/miss counters (the paper's elapsed-time results are dominated by page
// misses, so the miss counter is the primary cost signal of the benchmark
// harness).
//
// # Replacement policies
//
// Two policies are available (Config.Policy): PolicyLRU, strict
// least-recently-unpinned replacement and the paper-faithful default; and
// Policy2Q, a scan-resistant 2Q-style scheme in which first-touch pages
// enter a per-shard probationary FIFO and only re-referenced pages are
// promoted to a protected LRU segment. Eviction prefers the probation tail
// whenever probation holds its quota (a quarter of the shard), so one large
// sequential leaf-chain scan recycles its own probationary frames instead
// of flushing the hot internal nodes every probe needs. A bounded ghost
// list of ids recently evicted from probation (the classic A1out) lets a
// page whose re-reference interval exceeds the short probation queue still
// reach the protected segment on its second touch. The scan_evictions and
// protected_hits counters expose the split.
//
// # Readahead
//
// Config.Prefetch starts one background worker per shard; iterators
// publish next-page hints via Pool.Prefetch and the workers pull the pages
// into the probationary queue without pinning them, coalescing physically
// adjacent pages into vectored reads (see prefetch.go).
//
// The paper runs all join experiments with a pool of 100 pages and reports
// that varying the pool size does not essentially change the results; the
// default here is likewise 100 frames and the size is configurable for the
// ablation benchmark.
//
// # Sharding
//
// The pool is lock-striped: frames are partitioned into a power-of-two
// number of shards keyed by page id, each shard owning its own mutex,
// frame map, and LRU list, so concurrent queries on different pages never
// contend on one global lock. Page ids are allocated sequentially, so the
// modulo mapping spreads a tree's pages round-robin across shards.
// Replacement is LRU within a shard (an approximation of global LRU with
// the same worst-case bound: a shard holds capacity/shards frames). The
// shard count defaults to a heuristic — the largest power of two ≤ 8 that
// keeps every shard at ≥ 16 frames — so small pools (including every
// eviction-order test fixture) keep exact single-LRU semantics.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/wal"
)

// DefaultFrames is the default pool capacity in frames, matching §6.1.
const DefaultFrames = 100

// Shard-count heuristic bounds: shards never exceed maxShards and never
// hold fewer than minFramesPerShard frames (so a single descent can always
// pin its whole root-to-leaf path inside one shard).
const (
	maxShards         = 8
	minFramesPerShard = 16
)

// Errors returned by the pool.
var (
	ErrPoolFull   = errors.New("bufferpool: all frames pinned")
	ErrNotPinned  = errors.New("bufferpool: page not pinned")
	ErrBadUnpin   = errors.New("bufferpool: unpin of page not in pool")
	ErrZeroFrames = errors.New("bufferpool: pool must have at least one frame")
)

// Replacement-list membership of a frame. A frame is on at most one list.
const (
	offList uint8 = iota
	onProbation
	onProtected
)

// frame is one buffered page. Frames on a replacement list link to each
// other intrusively so pin/unpin never allocates.
type frame struct {
	id    pagefile.PageID
	data  []byte
	pins  int
	dirty bool
	// prev/next form the replacement list the frame is on when unpinned;
	// where marks which list (offList while pinned or being admitted).
	prev, next *frame
	where      uint8
	// 2Q state: ref marks a re-reference observed while the frame was off
	// its list (pinned), deferring promotion to release time; prot marks a
	// frame that has been promoted to the protected segment (sticky while
	// resident). Both are always false under plain LRU.
	ref  bool
	prot bool
	// ra marks a frame admitted by the readahead workers that has not yet
	// been demanded. It grants one eviction reprieve (victimLocked) so a
	// burst of point-query misses cannot wash readahead out of probation
	// just ahead of the consuming scan, and it makes the first demand hit
	// count as a first touch rather than a promoting re-reference.
	ra bool
	// held marks a frame touched by an in-flight WAL transaction (no-steal
	// policy, see wal.go in this package): set at fetch time, cleared at
	// commit. A held frame is never on a replacement list — it stays
	// offList when its pins drop to zero — and flushLocked skips it, so it
	// cannot reach the page file before its redo records are durable.
	held bool
	// lsn is the commit LSN of the frame's newest logged image; write-back
	// waits for the log to be durable past it (the WAL-before-page rule).
	lsn uint64
	// sum is the resting-page checksum oracle (debug builds only; see
	// debug.go). hasSum marks it valid.
	sum    uint64
	hasSum bool
}

// flist is an intrusive doubly-linked frame list: head is most recently
// pushed, tail is the replacement victim.
type flist struct {
	head, tail *frame
}

// shard is one lock-striped partition of the pool: its own mutex, frame
// map, and replacement lists over its slice of the capacity.
//
// Under plain LRU only the probation list is used, as the single LRU list.
// Under 2Q, first-touch pages go to the probation FIFO and re-referenced
// pages to the protected LRU; eviction prefers the probation tail whenever
// probation holds at least probTarget frames, so a sequential scan churns
// through probation without displacing the protected working set.
type shard struct {
	mu               sync.Mutex
	frames           map[pagefile.PageID]*frame
	prob             flist // probation FIFO (LRU policy: the only list)
	prot             flist // protected LRU (2Q only)
	probLen, protLen int
	probTarget       int // 2Q probation quota; 0 under LRU
	twoQ             bool
	cap              int

	// The 2Q ghost list (the classic A1out): a bounded FIFO of page ids
	// recently evicted from probation, holding ids only — no page data. A
	// miss on a remembered id is a genuine re-reference whose first touch
	// was washed out of probation by intervening traffic, so the page is
	// admitted directly to the protected segment. Without it, any page
	// whose re-reference interval exceeds the short probation queue could
	// never be promoted at all. ghost is a ring (ghostPos next overwrite);
	// ghostSet counts live ring occurrences per id.
	ghost    []pagefile.PageID
	ghostPos int
	ghostSet map[pagefile.PageID]int
}

// ghostFactor sizes the ghost ring at ghostFactor × the shard's frame
// count, the memory-cheap "twice the cache" retention the 2Q authors
// suggest for A1out (ids only: 8 bytes per remembered eviction).
const ghostFactor = 2

// ghostPush remembers a page id just evicted from probation, forgetting
// the oldest remembered id when the ring is full.
func (s *shard) ghostPush(id pagefile.PageID) {
	if len(s.ghost) == 0 {
		return
	}
	if old := s.ghost[s.ghostPos]; old != pagefile.InvalidPage {
		if n := s.ghostSet[old]; n <= 1 {
			delete(s.ghostSet, old)
		} else {
			s.ghostSet[old] = n - 1
		}
	}
	s.ghost[s.ghostPos] = id
	s.ghostSet[id]++
	s.ghostPos = (s.ghostPos + 1) % len(s.ghost)
}

// ghostHit reports whether id was recently evicted from probation and
// forgets it (stale ring slots are reconciled lazily by ghostPush).
func (s *shard) ghostHit(id pagefile.PageID) bool {
	if s.ghostSet == nil {
		return false
	}
	if _, ok := s.ghostSet[id]; !ok {
		return false
	}
	delete(s.ghostSet, id)
	return true
}

// ghostClear forgets every remembered eviction (deterministic cold start).
func (s *shard) ghostClear() {
	if len(s.ghost) == 0 {
		return
	}
	for i := range s.ghost {
		s.ghost[i] = pagefile.InvalidPage
	}
	s.ghostPos = 0
	clear(s.ghostSet)
}

// Pool is a sharded buffer pool over a single pagefile.File. All methods
// are safe for concurrent use; per-page pin counts are protected by the
// owning shard's mutex.
type Pool struct {
	file   *pagefile.File
	shards []*shard
	mask   uint32 // len(shards)-1; len(shards) is a power of two
	cap    int
	policy Policy

	// pf is the asynchronous readahead machinery; nil when disabled.
	pf *prefetcher

	// wal, when set, is the write-ahead log beneath the pool: mutations run
	// as transactions (Begin/CommitTx) whose touched frames are held back
	// from write-back until their images are durably logged. ckptBytes is
	// the fuzzy-checkpoint trigger; ckptGate serializes checkpoints and
	// excludes them from unlogged bulk builds (see wal.go).
	wal       atomic.Pointer[wal.Log]
	ckptBytes int64
	ckptGate  sync.RWMutex

	// stats are the pool's always-on counters, atomic so Stats snapshots
	// never race with concurrent fetches.
	stats obs.Counters
	// sink, when non-nil, also receives hit/miss/eviction increments;
	// experiments point this at their per-run counter set. Increments use
	// atomic adds on the sink's fields so a sink shared between concurrent
	// queries does not race. The owner may read the sink plainly only
	// after detaching AND after every concurrent operation on the pool has
	// returned (AttachStats callers detach after their join finishes). The
	// sink's Tracer, if set, receives PageEvict events.
	sink atomic.Pointer[metrics.Counters]

	// series, when enabled, records the hit rate of every window of page
	// accesses — the hit-rate-over-time view of the paper's dominant cost.
	// seriesOn mirrors series.window != 0 so the disabled fast path is one
	// atomic load instead of a mutex acquisition.
	seriesMu sync.Mutex
	seriesOn atomic.Bool
	series   hitRateSeries

	// debugPins is the xrtreedebug net-pin ledger (see debug.go).
	debugPins atomic.Int64
}

// hitRateSeries accumulates a bounded hit-rate time series. When the point
// buffer is full, adjacent points are merged pairwise and the window
// doubles, so memory stays constant over arbitrarily long runs while the
// whole history keeps uniform resolution.
type hitRateSeries struct {
	window   int // accesses per point; 0 = disabled
	hits     int // hits in the current window
	accesses int // accesses in the current window
	points   []float64
}

// seriesMaxPoints bounds the series buffer before pairwise compaction.
const seriesMaxPoints = 512

func (s *hitRateSeries) record(hit bool) {
	if s.window == 0 {
		return
	}
	s.accesses++
	if hit {
		s.hits++
	}
	if s.accesses < s.window {
		return
	}
	s.points = append(s.points, float64(s.hits)/float64(s.accesses))
	s.hits, s.accesses = 0, 0
	if len(s.points) >= seriesMaxPoints {
		half := s.points[:0]
		for i := 0; i+1 < len(s.points); i += 2 {
			half = append(half, (s.points[i]+s.points[i+1])/2)
		}
		s.points = half
		s.window *= 2
	}
}

// defaultShards returns the heuristic shard count for a pool of the given
// capacity: the largest power of two ≤ maxShards with at least
// minFramesPerShard frames per shard. Deterministic in the capacity alone,
// so experiment miss counts do not depend on the host.
func defaultShards(capacity int) int {
	n := 1
	for n < maxShards && capacity/(n*2) >= minFramesPerShard {
		n *= 2
	}
	return n
}

// Policy selects the pool's replacement policy.
type Policy string

const (
	// PolicyLRU is strict least-recently-unpinned replacement, the
	// paper-faithful default.
	PolicyLRU Policy = "lru"
	// Policy2Q is scan-resistant 2Q-style replacement: first-touch pages
	// enter a probationary FIFO and only re-referenced pages reach the
	// protected LRU segment, so one large sequential scan cannot flush the
	// hot working set.
	Policy2Q Policy = "2q"
)

// ParsePolicy validates a policy name ("" means PolicyLRU).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return PolicyLRU, nil
	case PolicyLRU, Policy2Q:
		return Policy(s), nil
	}
	return "", fmt.Errorf("bufferpool: unknown policy %q (want %q or %q)", s, PolicyLRU, Policy2Q)
}

// Config configures NewWithConfig.
type Config struct {
	// Capacity is the pool size in frames; must be ≥ 1.
	Capacity int
	// Shards is the lock-stripe count (rounded up to a power of two,
	// clamped to capacity); ≤ 0 selects the heuristic.
	Shards int
	// Policy is the replacement policy; "" means PolicyLRU.
	Policy Policy
	// Prefetch enables the asynchronous readahead workers (one per shard)
	// that pull hinted pages into the pool without pinning them.
	Prefetch bool
}

// New creates a pool of capacity frames over file with the heuristic shard
// count. Capacity must be ≥ 1.
func New(file *pagefile.File, capacity int) (*Pool, error) {
	return NewWithConfig(file, Config{Capacity: capacity})
}

// NewSharded creates a pool with an explicit shard count (rounded up to a
// power of two, clamped to capacity); shards ≤ 0 selects the heuristic.
func NewSharded(file *pagefile.File, capacity, shards int) (*Pool, error) {
	return NewWithConfig(file, Config{Capacity: capacity, Shards: shards})
}

// NewWithConfig creates a pool from an explicit configuration.
func NewWithConfig(file *pagefile.File, cfg Config) (*Pool, error) {
	capacity := cfg.Capacity
	if capacity <= 0 {
		return nil, ErrZeroFrames
	}
	policy, err := ParsePolicy(string(cfg.Policy))
	if err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = defaultShards(capacity)
	}
	for shards > capacity {
		shards /= 2
	}
	n := 1
	for n < shards {
		n *= 2
	}
	p := &Pool{file: file, shards: make([]*shard, n), mask: uint32(n - 1), cap: capacity, policy: policy}
	for i := range p.shards {
		c := capacity / n
		if i < capacity%n {
			c++
		}
		s := &shard{frames: make(map[pagefile.PageID]*frame, c), cap: c}
		if policy == Policy2Q {
			s.twoQ = true
			// Probation quota: a quarter of the shard, at least one frame.
			s.probTarget = c / 4
			if s.probTarget < 1 {
				s.probTarget = 1
			}
			s.ghost = make([]pagefile.PageID, ghostFactor*c)
			for i := range s.ghost {
				s.ghost[i] = pagefile.InvalidPage
			}
			s.ghostSet = make(map[pagefile.PageID]int, ghostFactor*c)
		}
		p.shards[i] = s
	}
	if cfg.Prefetch {
		p.pf = newPrefetcher(p, n)
	}
	return p, nil
}

// Close stops the pool's background prefetch workers, if any. It does not
// flush or close the underlying file. Safe to call more than once.
func (p *Pool) Close() {
	if p.pf != nil {
		p.pf.stop()
	}
}

// ReplacementPolicy returns the pool's replacement policy.
func (p *Pool) ReplacementPolicy() Policy { return p.policy }

// File returns the underlying paged file.
func (p *Pool) File() *pagefile.File { return p.file }

// Capacity returns the pool capacity in frames.
func (p *Pool) Capacity() int { return p.cap }

// Shards returns the number of lock-striped partitions.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor maps a page id to its owning shard. Sequential allocation makes
// this a round-robin spread.
func (p *Pool) shardFor(id pagefile.PageID) *shard {
	return p.shards[uint32(id)&p.mask]
}

// SetSink directs hit/miss/eviction counting to c in addition to the
// pool's own statistics. Pass nil to detach. Increments use atomic adds,
// so attaching is immediately safe; plain reads of the sink are safe once
// it is detached and no pool operation is in flight.
func (p *Pool) SetSink(c *metrics.Counters) {
	p.sink.Store(c)
}

// Stats returns a snapshot view of the pool's atomic counters in the
// historical plain-counter form.
func (p *Pool) Stats() metrics.Counters {
	return metrics.FromSnapshot(p.stats.Snapshot())
}

// ObsStats exposes the pool's live atomic counters for callers that want
// to take their own deltas.
func (p *Pool) ObsStats() *obs.Counters { return &p.stats }

// ResetStats zeroes the pool counters.
func (p *Pool) ResetStats() {
	p.stats.Reset()
}

// EnableHitRateSeries starts recording the pool hit rate once per window
// of page accesses (window ≥ 1); 0 disables. When the internal buffer
// fills, adjacent points merge and the effective window doubles, so the
// series stays bounded. Enabling resets any prior series.
func (p *Pool) EnableHitRateSeries(window int) {
	p.seriesMu.Lock()
	defer p.seriesMu.Unlock()
	if window < 0 {
		window = 0
	}
	p.series = hitRateSeries{window: window}
	p.seriesOn.Store(window != 0)
}

// HitRateSeries returns the recorded hit-rate points and the number of
// page accesses each point currently spans (0 when disabled).
func (p *Pool) HitRateSeries() (window int, points []float64) {
	p.seriesMu.Lock()
	defer p.seriesMu.Unlock()
	out := make([]float64, len(p.series.points))
	copy(out, p.series.points)
	return p.series.window, out
}

// countAccess records one pool lookup in the always-on stats, the attached
// sink, and (when enabled) the hit-rate series.
func (p *Pool) countAccess(hit bool) {
	if hit {
		p.stats.BufferHits.Add(1)
	} else {
		p.stats.BufferMisses.Add(1)
	}
	if sink := p.sink.Load(); sink != nil {
		if hit {
			atomic.AddInt64(&sink.BufferHits, 1)
		} else {
			atomic.AddInt64(&sink.BufferMisses, 1)
		}
	}
	if p.seriesOn.Load() {
		p.seriesMu.Lock()
		p.series.record(hit)
		p.seriesMu.Unlock()
	}
}

// --- intrusive replacement lists (per shard) -------------------------------

func (l *flist) pushFront(f *frame) {
	f.prev = nil
	f.next = l.head
	if l.head != nil {
		l.head.prev = f
	}
	l.head = f
	if l.tail == nil {
		l.tail = f
	}
}

func (l *flist) remove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		l.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		l.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

// listRemove takes f off whichever replacement list it is on.
func (s *shard) listRemove(f *frame) {
	switch f.where {
	case onProbation:
		s.prob.remove(f)
		s.probLen--
	case onProtected:
		s.prot.remove(f)
		s.protLen--
	}
	f.where = offList
}

// releaseLocked puts an unpinned frame on the appropriate replacement
// list: the single LRU list under PolicyLRU; under Policy2Q the protected
// segment when the frame has been re-referenced (prot sticky, ref set
// during a pinned hit), the probation FIFO otherwise.
func (s *shard) releaseLocked(f *frame) {
	if s.twoQ && (f.prot || f.ref) {
		f.prot, f.ref = true, false
		s.prot.pushFront(f)
		s.protLen++
		f.where = onProtected
		return
	}
	s.prob.pushFront(f)
	s.probLen++
	f.where = onProbation
}

// victimLocked picks the frame to evict. Under LRU this is the tail of the
// single list. Under 2Q the probation tail goes first whenever probation
// holds its quota (scans evict only themselves); otherwise the protected
// tail, falling back to whichever list is non-empty.
func (s *shard) victimLocked() *frame {
	// Readahead reprieve: a frame pulled in by the prefetcher but never yet
	// demanded gets one trip back to the probation head before becoming a
	// victim. ra is cleared as the frame is recycled, so the loop visits
	// each frame at most once and a second trip to the tail evicts normally.
	for f := s.prob.tail; f != nil && f.ra; f = s.prob.tail {
		f.ra = false
		s.prob.remove(f)
		s.prob.pushFront(f)
	}
	if !s.twoQ {
		return s.prob.tail
	}
	if s.probLen >= s.probTarget && s.prob.tail != nil {
		return s.prob.tail
	}
	if s.prot.tail != nil {
		return s.prot.tail
	}
	return s.prob.tail
}

// Fetch pins page id and returns its in-pool bytes. The returned slice
// aliases the frame and is valid until the matching Unpin. Callers that
// modify the bytes must pass dirty=true to Unpin.
func (p *Pool) Fetch(id pagefile.PageID) ([]byte, error) {
	return p.FetchTraced(id, nil)
}

// FetchTraced is Fetch with per-call read attribution: when the lookup
// misses and tr is non-nil, the physical read's EvPageRead event is
// charged to tr instead of the file-attached tracer (see
// pagefile.ReadPageTo). The nil-tr path is identical to Fetch.
func (p *Pool) FetchTraced(id pagefile.PageID, tr obs.Tracer) ([]byte, error) {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := p.fetchLocked(s, id, tr)
	if err != nil {
		return nil, err
	}
	s.pinLocked(f)
	p.debugPinned(1)
	return f.data, nil
}

// FetchCopy copies page id into dst (which must be PageSize bytes) with
// the same hit/miss accounting as Fetch, but leaves nothing pinned: the
// copy happens under the shard mutex. Iterators use it so they never hold
// pins between calls. Callers must ensure no concurrent writer is mutating
// the page's bytes (the index latching protocol does).
func (p *Pool) FetchCopy(id pagefile.PageID, dst []byte) error {
	return p.FetchCopyTraced(id, dst, nil)
}

// FetchCopyTraced is FetchCopy with per-call read attribution, mirroring
// FetchTraced: a miss's EvPageRead goes to tr when non-nil.
func (p *Pool) FetchCopyTraced(id pagefile.PageID, dst []byte, tr obs.Tracer) error {
	if len(dst) != p.file.PageSize() {
		return fmt.Errorf("bufferpool: FetchCopy buffer is %d bytes, want %d", len(dst), p.file.PageSize())
	}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := p.fetchLocked(s, id, tr)
	if err != nil {
		return err
	}
	copy(dst, f.data)
	if f.pins == 0 && f.where == offList && !f.held {
		// Freshly admitted by this call: make it a replacement candidate.
		s.releaseLocked(f)
	}
	return nil
}

// TryFetchCopy copies page id into dst only when the page is already
// resident, without pinning, hit/miss accounting, or replacement-state
// changes. Advisory readahead descents (core.Tree.PrefetchGE) use it to
// walk cached internal nodes without distorting the cost metrics.
func (p *Pool) TryFetchCopy(id pagefile.PageID, dst []byte) (bool, error) {
	if len(dst) != p.file.PageSize() {
		return false, fmt.Errorf("bufferpool: TryFetchCopy buffer is %d bytes, want %d", len(dst), p.file.PageSize())
	}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return false, nil
	}
	f.verifySum()
	copy(dst, f.data)
	return true, nil
}

// fetchLocked returns the resident frame for page id, admitting and
// reading it on a miss. The caller holds s.mu; the returned frame is not
// pinned by this call (a missed frame is registered but off the LRU).
// tr, when non-nil, receives the miss's EvPageRead instead of the
// file-attached tracer.
func (p *Pool) fetchLocked(s *shard, id pagefile.PageID, tr obs.Tracer) (*frame, error) {
	if f, ok := s.frames[id]; ok {
		p.countAccess(true)
		if f.ra {
			// First demand hit on a readahead frame: the page has now been
			// touched once, not re-referenced, so it stays probationary.
			f.ra = false
		} else if s.twoQ {
			p.touch2Q(s, f)
		}
		f.verifySum()
		return f, nil
	}
	p.countAccess(false)
	f, err := p.admitLocked(s, id)
	if err != nil {
		return nil, err
	}
	if err := p.file.ReadPageTo(id, f.data, tr); err != nil {
		// Admission failed; drop the frame entirely.
		delete(s.frames, id)
		return nil, err
	}
	f.restSum()
	return f, nil
}

// FetchNew allocates a new page in the file, pins it, and returns its id
// and zeroed in-pool bytes. The caller must Unpin with dirty=true after
// initializing it.
func (p *Pool) FetchNew() (pagefile.PageID, []byte, error) {
	id, err := p.file.Allocate()
	if err != nil {
		return pagefile.InvalidPage, nil, err
	}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := p.admitLocked(s, id)
	if err != nil {
		return pagefile.InvalidPage, nil, err
	}
	clear(f.data)
	f.dirty = true
	s.pinLocked(f)
	p.debugPinned(1)
	return id, f.data, nil
}

// Unpin releases one pin on page id. dirty marks the page as modified so it
// is written back before eviction.
func (p *Pool) Unpin(id pagefile.PageID, dirty bool) error {
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrBadUnpin, id)
	}
	if f.pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	p.debugPinned(-1)
	if f.pins == 0 {
		f.restSum()
		// Held frames stay offList until their transaction commits.
		if !f.held {
			s.releaseLocked(f)
		}
	}
	return nil
}

// Discard drops page id from the pool without writing it back and frees it
// in the file. The page must be pinned exactly once by the caller.
func (p *Pool) Discard(id pagefile.PageID) error {
	s := p.shardFor(id)
	s.mu.Lock()
	f, ok := s.frames[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: page %d", ErrBadUnpin, id)
	}
	if f.pins != 1 {
		s.mu.Unlock()
		return fmt.Errorf("bufferpool: discard of page %d with %d pins", id, f.pins)
	}
	delete(s.frames, id)
	p.debugPinned(-1)
	s.mu.Unlock()
	return p.file.Free(id)
}

// FlushAll writes every dirty frame back to the file. Pinned frames are
// flushed too (they stay pinned and in the pool); frames held by an
// in-flight WAL transaction are skipped — their write-back happens after
// their commit makes the redo records durable.
func (p *Pool) FlushAll() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if err := p.flushLocked(f); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// DropClean evicts every unpinned frame after flushing it; useful between
// experiment runs to cold-start the cache deterministically.
func (p *Pool) DropClean() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for _, l := range []*flist{&s.prob, &s.prot} {
			for f := l.head; f != nil; {
				next := f.next
				if err := p.flushLocked(f); err != nil {
					s.mu.Unlock()
					return err
				}
				s.listRemove(f)
				delete(s.frames, f.id)
				f = next
			}
		}
		s.ghostClear()
		s.mu.Unlock()
	}
	return nil
}

// PinnedCount returns the number of frames currently pinned (for tests).
func (p *Pool) PinnedCount() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.pins > 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

func (s *shard) pinLocked(f *frame) {
	if f.pins == 0 && f.where != offList {
		s.listRemove(f)
	}
	f.dropSum()
	f.pins++
}

// touch2Q records a re-reference under Policy2Q: hits on protected frames
// count toward the protected-hit metric (and refresh their LRU position);
// a first re-reference promotes a probationary frame immediately when it
// is unpinned, or defers via ref when it is currently pinned.
func (p *Pool) touch2Q(s *shard, f *frame) {
	if f.prot {
		p.stats.ProtectedHits.Add(1)
		if sink := p.sink.Load(); sink != nil {
			atomic.AddInt64(&sink.ProtectedHits, 1)
		}
		if f.where == onProtected {
			s.listRemove(f)
			f.prot = true
			s.releaseLocked(f)
		}
		return
	}
	if f.where == onProbation {
		s.listRemove(f)
		f.prot = true
		s.releaseLocked(f)
		return
	}
	// Pinned (or mid-admission) first-touch frame: promote at release.
	f.ref = true
}

// admitLocked finds a frame for page id within shard s, evicting the
// shard's LRU unpinned frame when the shard is at capacity. The returned
// frame is registered in the frame map with zero pins and stale data.
func (p *Pool) admitLocked(s *shard, id pagefile.PageID) (*frame, error) {
	if len(s.frames) >= s.cap {
		victim := s.victimLocked()
		if victim == nil {
			return nil, fmt.Errorf("%w (%d of %d shard frames)", ErrPoolFull, s.cap, p.cap)
		}
		if err := p.flushLocked(victim); err != nil {
			return nil, err
		}
		p.stats.PageEvictions.Add(1)
		scanEvict := s.twoQ && victim.where == onProbation && !victim.ref
		if scanEvict {
			p.stats.ScanEvictions.Add(1)
		}
		if sink := p.sink.Load(); sink != nil {
			atomic.AddInt64(&sink.PageEvictions, 1)
			if scanEvict {
				atomic.AddInt64(&sink.ScanEvictions, 1)
			}
			sink.Emit(obs.EvPageEvict, 1)
		}
		if s.twoQ && victim.where == onProbation {
			s.ghostPush(victim.id)
		}
		s.listRemove(victim)
		delete(s.frames, victim.id)
		victim.id = id
		victim.dirty = false
		victim.ref, victim.prot, victim.ra = false, false, false
		if s.twoQ && s.ghostHit(id) {
			// Second touch of a page whose first touch was already washed
			// out of probation: admit straight to the protected segment.
			victim.prot = true
		}
		victim.dropSum()
		s.frames[id] = victim
		return victim, nil
	}
	f := &frame{id: id, data: make([]byte, p.file.PageSize())}
	if s.twoQ && s.ghostHit(id) {
		f.prot = true
	}
	s.frames[id] = f
	return f, nil
}

func (p *Pool) flushLocked(f *frame) error {
	f.verifySum()
	if !f.dirty || f.held {
		return nil
	}
	// WAL-before-page: the log must be durable past the frame's newest
	// logged image before that image reaches the page file.
	if f.lsn > 0 {
		if l := p.wal.Load(); l != nil {
			if err := l.FlushTo(f.lsn); err != nil {
				return err
			}
		}
	}
	if err := p.file.WritePage(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}
