package datagen

import (
	"bytes"
	"testing"

	"xrtree/internal/xmldoc"
)

func TestDepartmentConformsToDTD(t *testing.T) {
	doc, err := Department(DeptConfig{Seed: 1, DocID: 1, Departments: 5, Employees: 8})
	if err != nil {
		t.Fatalf("Department: %v", err)
	}
	if doc.Root.Tag != "departments" {
		t.Fatalf("root = %q", doc.Root.Tag)
	}
	for _, dep := range doc.Root.Children {
		if dep.Tag != "department" {
			t.Fatalf("child of departments = %q", dep.Tag)
		}
		if len(dep.Children) == 0 || dep.Children[0].Tag != "name" {
			t.Fatal("department must start with name")
		}
		emp := 0
		for _, c := range dep.Children {
			switch c.Tag {
			case "name", "email":
			case "employee":
				emp++
				checkEmployee(t, c)
			default:
				t.Fatalf("unexpected %q under department", c.Tag)
			}
		}
		if emp == 0 {
			t.Fatal("department has no employees")
		}
	}
	if err := xmldoc.ValidateStrictNesting(doc.AllElements()); err != nil {
		t.Fatalf("nesting: %v", err)
	}
}

func checkEmployee(t *testing.T, n *xmldoc.Node) {
	t.Helper()
	if len(n.Children) == 0 || n.Children[0].Tag != "name" {
		t.Fatal("employee must start with name")
	}
	for _, c := range n.Children {
		switch c.Tag {
		case "name", "email":
		case "employee":
			checkEmployee(t, c)
		default:
			t.Fatalf("unexpected %q under employee", c.Tag)
		}
	}
}

func TestDepartmentIsHighlyNested(t *testing.T) {
	doc, err := Department(DeptConfig{Seed: 2, DocID: 1, Departments: 10, Employees: 15})
	if err != nil {
		t.Fatal(err)
	}
	emps := doc.ElementsByTag("employee")
	maxLevel := uint16(0)
	for _, e := range emps {
		if e.Level > maxLevel {
			maxLevel = e.Level
		}
	}
	// employees start at level 3; nesting must go several levels deeper.
	if maxLevel < 6 {
		t.Errorf("max employee level = %d, want ≥ 6 (highly nested)", maxLevel)
	}
}

func TestConferenceIsFlat(t *testing.T) {
	doc, err := Conference(ConfConfig{Seed: 3, DocID: 2, Conferences: 10, Papers: 10})
	if err != nil {
		t.Fatal(err)
	}
	papers := doc.ElementsByTag("paper")
	if len(papers) == 0 {
		t.Fatal("no papers")
	}
	for _, p := range papers {
		if p.Level != 3 {
			t.Fatalf("paper at level %d, want 3 (flat)", p.Level)
		}
	}
	// No paper nests in another.
	for i := 1; i < len(papers); i++ {
		if papers[i-1].IsAncestorOf(papers[i]) {
			t.Fatal("papers nest; Conference DTD must be flat")
		}
	}
	authors := doc.ElementsByTag("author")
	if len(authors) == 0 {
		t.Fatal("no authors")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Department(DeptConfig{Seed: 7, DocID: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Department(DeptConfig{Seed: 7, DocID: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.WriteXML(&ba)
	b.WriteXML(&bb)
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("same seed produced different documents")
	}
	c, err := Department(DeptConfig{Seed: 8, DocID: 1})
	if err != nil {
		t.Fatal(err)
	}
	var bc bytes.Buffer
	c.WriteXML(&bc)
	if bytes.Equal(ba.Bytes(), bc.Bytes()) {
		t.Error("different seeds produced identical documents")
	}
}

func TestNestedDepthBound(t *testing.T) {
	for _, depth := range []int{1, 3, 10, 25} {
		doc, err := Nested(NestedConfig{Seed: 5, DocID: 1, Elements: 500, MaxDepth: depth, DeepBias: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		items := doc.ElementsByTag("item")
		maxLevel := 0
		for _, e := range items {
			if int(e.Level) > maxLevel {
				maxLevel = int(e.Level)
			}
		}
		// items start at level 2 under root; depth knob bounds them.
		if maxLevel > depth+1 {
			t.Errorf("MaxDepth=%d: item level %d exceeds bound", depth, maxLevel)
		}
		if depth >= 10 && maxLevel < 6 {
			t.Errorf("MaxDepth=%d: deepest level only %d; DeepBias not effective", depth, maxLevel)
		}
	}
}

func TestPaperCorpora(t *testing.T) {
	cs, err := PaperCorpora(1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d corpora", len(cs))
	}
	for _, c := range cs {
		as := c.Doc.ElementsByTag(c.AncestorTag)
		ds := c.Doc.ElementsByTag(c.DescendantTag)
		if len(as) == 0 || len(ds) == 0 {
			t.Errorf("%s: empty sets (%d, %d)", c.Name, len(as), len(ds))
		}
		if err := xmldoc.ValidateStrictNesting(c.Doc.AllElements()); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if cs[0].Doc.DocID == cs[1].Doc.DocID {
		t.Error("corpora share a DocID")
	}
}

func TestParseRoundTrip(t *testing.T) {
	// The generated document, serialized and reparsed, must carry identical
	// region codes — proving the Builder fast path equals the XML text path.
	doc, err := Department(DeptConfig{Seed: 11, DocID: 4, Departments: 3, Employees: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := xmldoc.ParseString(buf.String(), xmldoc.ParseOptions{DocID: 4, PositionGap: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := doc.AllElements()
	got := re.AllElements()
	if len(got) != len(want) {
		t.Fatalf("element counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
