// Package datagen generates the synthetic XML corpora the paper's
// experiments use (§6.1): documents conforming to the two DTDs of Figure 6,
// produced in the spirit of the IBM XML data generator the authors ran.
//
//	departments → department+              conferences → conference+
//	department  → (name, email?, employee+) conference  → paper+
//	employee    → (name, email?, employee*) paper       → (title, author+)
//
// The Department DTD recurses on employee, yielding the "highly nested"
// ancestor sets of the employee-vs-name experiments; the Conference DTD is
// flat, yielding the "less nested" paper-vs-author sets. A third generator
// produces forests with a direct nesting-depth knob for the §3.3 stab-list
// size study (our stand-in for the XMach/XMark corpora).
//
// All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"xrtree/internal/xmldoc"
)

// DeptConfig parameterizes the Department DTD generator.
type DeptConfig struct {
	Seed        int64
	DocID       uint32
	Departments int     // number of department elements; default 10
	Employees   int     // top-level employees per department (mean); default 20
	NestProb    float64 // probability an employee has sub-employees; default 0.4
	SubMean     int     // mean sub-employees when nesting; default 3
	MaxDepth    int     // maximum employee nesting depth; default 12
	EmailProb   float64 // probability of the optional email; default 0.5
	PositionGap uint32  // region numbering gap, as in Figure 1; default 2
}

func (c *DeptConfig) defaults() {
	if c.Departments <= 0 {
		c.Departments = 10
	}
	if c.Employees <= 0 {
		c.Employees = 20
	}
	if c.NestProb <= 0 {
		c.NestProb = 0.4
	}
	if c.SubMean <= 0 {
		c.SubMean = 3
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.EmailProb <= 0 {
		c.EmailProb = 0.5
	}
	if c.PositionGap == 0 {
		c.PositionGap = 2
	}
}

// Department generates a document conforming to the Department DTD of
// Figure 6(a).
func Department(cfg DeptConfig) (*xmldoc.Document, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := xmldoc.NewBuilder(cfg.DocID, cfg.PositionGap)
	b.Open("departments")
	var employee func(depth int)
	employee = func(depth int) {
		b.Open("employee")
		b.Leaf("name")
		if rng.Float64() < cfg.EmailProb {
			b.Leaf("email")
		}
		if depth < cfg.MaxDepth && rng.Float64() < cfg.NestProb {
			n := 1 + rng.Intn(2*cfg.SubMean-1)
			for i := 0; i < n; i++ {
				employee(depth + 1)
			}
		}
		b.Close()
	}
	for d := 0; d < cfg.Departments; d++ {
		b.Open("department")
		b.Leaf("name")
		if rng.Float64() < cfg.EmailProb {
			b.Leaf("email")
		}
		n := 1 + rng.Intn(2*cfg.Employees-1)
		for i := 0; i < n; i++ {
			employee(1)
		}
		b.Close()
	}
	b.Close()
	return b.Document()
}

// ConfConfig parameterizes the Conference DTD generator.
type ConfConfig struct {
	Seed        int64
	DocID       uint32
	Conferences int    // number of conference elements; default 20
	Papers      int    // papers per conference (mean); default 30
	Authors     int    // authors per paper (mean); default 3
	PositionGap uint32 // region numbering gap, as in Figure 1; default 2
}

func (c *ConfConfig) defaults() {
	if c.Conferences <= 0 {
		c.Conferences = 20
	}
	if c.Papers <= 0 {
		c.Papers = 30
	}
	if c.Authors <= 0 {
		c.Authors = 3
	}
	if c.PositionGap == 0 {
		c.PositionGap = 2
	}
}

// Conference generates a document conforming to the Conference DTD of
// Figure 6(b): paper elements never nest, making the ancestor set flat.
func Conference(cfg ConfConfig) (*xmldoc.Document, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := xmldoc.NewBuilder(cfg.DocID, cfg.PositionGap)
	b.Open("conferences")
	for c := 0; c < cfg.Conferences; c++ {
		b.Open("conference")
		np := 1 + rng.Intn(2*cfg.Papers-1)
		for p := 0; p < np; p++ {
			b.Open("paper")
			b.Leaf("title")
			na := 1 + rng.Intn(2*cfg.Authors-1)
			for a := 0; a < na; a++ {
				b.Leaf("author")
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()
	return b.Document()
}

// NestedConfig parameterizes the generic nested-forest generator used by
// the §3.3 stab-list size study.
type NestedConfig struct {
	Seed     int64
	DocID    uint32
	Elements int     // approximate element count under the root; default 1000
	MaxDepth int     // maximum nesting depth; default 10
	Fanout   int     // mean children per element; default 3
	DeepBias float64 // probability of continuing downward; default 0.5
	Tag      string  // tag for generated elements; default "item"
	// PositionGap is the region numbering gap; real region encoders leave
	// gaps (the paper's Figure 1 does) so separators that stab nothing
	// exist. Default 2.
	PositionGap uint32
}

func (c *NestedConfig) defaults() {
	if c.Elements <= 0 {
		c.Elements = 1000
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.DeepBias <= 0 {
		c.DeepBias = 0.5
	}
	if c.Tag == "" {
		c.Tag = "item"
	}
	if c.PositionGap == 0 {
		c.PositionGap = 2
	}
}

// Nested generates a forest of identically tagged elements with the given
// maximum nesting depth — the knob the stab-list size bound S_max = 2·h_d
// depends on.
func Nested(cfg NestedConfig) (*xmldoc.Document, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := xmldoc.NewBuilder(cfg.DocID, cfg.PositionGap)
	b.Open("root")
	count := 0
	var build func(depth int)
	build = func(depth int) {
		count++
		b.Open(cfg.Tag)
		if depth < cfg.MaxDepth && rng.Float64() < cfg.DeepBias {
			n := 1 + rng.Intn(2*cfg.Fanout-1)
			for i := 0; i < n && count < cfg.Elements; i++ {
				build(depth + 1)
			}
		}
		b.Close()
	}
	for count < cfg.Elements {
		build(1)
	}
	b.Close()
	return b.Document()
}

// Corpus names a generated document together with the tag pair its join
// experiments use.
type Corpus struct {
	Name          string
	Doc           *xmldoc.Document
	AncestorTag   string
	DescendantTag string
}

// PaperCorpora generates the two corpora of §6.1 — employee vs name
// (highly nested) and paper vs author (less nested) — scaled by the given
// factor (1.0 reproduces the defaults used by the benchmark harness).
func PaperCorpora(seed int64, scale float64) ([]Corpus, error) {
	if scale <= 0 {
		scale = 1.0
	}
	mul := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	dept, err := Department(DeptConfig{
		Seed:        seed,
		DocID:       1,
		Departments: mul(40),
		Employees:   mul(25),
	})
	if err != nil {
		return nil, fmt.Errorf("datagen: department corpus: %w", err)
	}
	conf, err := Conference(ConfConfig{
		Seed:        seed + 1,
		DocID:       2,
		Conferences: mul(60),
		Papers:      mul(40),
	})
	if err != nil {
		return nil, fmt.Errorf("datagen: conference corpus: %w", err)
	}
	return []Corpus{
		{Name: "employee vs name", Doc: dept, AncestorTag: "employee", DescendantTag: "name"},
		{Name: "paper vs author", Doc: conf, AncestorTag: "paper", DescendantTag: "author"},
	}, nil
}
