package server

import (
	"context"
	"net/http"
	"time"

	"xrtree"
	"xrtree/internal/obs"
)

// Request tracing at the serving layer. Every admitted request may carry
// an obs.Trace: the root span covers arrival to response (its duration is
// the same measurement recorded as EvServeSpan), handlers open child
// spans for the engine work, and the completed trace lands in the flight
// recorder behind /debug/traces. A request is traced when its incoming
// W3C traceparent header has the sampled flag set (the caller already
// holds the trace id, so refusing would orphan it) or when the head
// sampler says so; the response always echoes the server's trace context
// back via the traceparent header so clients can report actionable
// handles (xrblast does, for its slowest decile).

// traceKey carries the *obs.Trace through the request context.
type traceKey struct{}

// traceFrom returns the request's trace, or nil when the request is not
// being traced.
func traceFrom(ctx context.Context) *obs.Trace {
	tr, _ := ctx.Value(traceKey{}).(*obs.Trace)
	return tr
}

// startTrace makes the head-sampling decision for one request and, when
// traced, creates the trace (adopting an incoming trace id) and echoes
// the assigned context in the response headers.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) *obs.Trace {
	var tid obs.TraceID
	var parent obs.SpanID
	forced := false
	if h := r.Header.Get("traceparent"); h != "" {
		if t, p, sampled, ok := obs.ParseTraceparent(h); ok {
			tid, parent, forced = t, p, sampled
		}
	}
	if !forced && !s.sampler.Sample() {
		return nil
	}
	tr := obs.NewTrace("serve "+r.URL.Path, tid, parent, s.ids, nil)
	w.Header().Set("traceparent", obs.Traceparent(tr.ID(), tr.Root().ID(), true))
	return tr
}

// finishTrace closes the root span with the same duration recorded as
// EvServeSpan and hands the trace to the flight recorder. nil-safe.
func (s *Server) finishTrace(tr *obs.Trace, total time.Duration) {
	if tr == nil {
		return
	}
	tr.Root().EndDur(total)
	s.rec.Record(tr.Record())
}

// tracesResponse is the body of /debug/traces.
type tracesResponse struct {
	Stats  obs.RecorderStats  `json:"stats"`
	Traces []*obs.TraceRecord `json:"traces"`
}

// handleTraces serves the flight recorder's retained traces, newest
// first, pinned slow traces ahead of the rolling ring.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tracesResponse{
		Stats:  s.rec.Stats(),
		Traces: s.rec.Snapshot(),
	})
}

// handleMetrics serves the Prometheus text exposition: serving outcome
// counters and gauges, every Collector event kind as a labeled histogram
// family, per-backend buffer-pool counters, and the flight recorder's
// accounting. Families are emitted grouped, as the text format requires.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	s.met.writeProm(p, s.lim.InFlight(), s.lim.Waiting())

	type poolRow struct {
		label                              obs.PromLabel
		hits, misses, reads, writes, evict float64
		pinned                             float64
		wal                                xrtree.WALStats
		hasWAL                             bool
	}
	s.mu.RLock()
	rows := make([]poolRow, 0, len(s.order))
	for _, name := range s.order {
		b := s.backends[name]
		ps := b.store.PoolStats()
		ws, ok := b.store.WALStats()
		rows = append(rows, poolRow{
			label:  obs.PromLabel{Name: "backend", Value: name},
			hits:   float64(ps.BufferHits),
			misses: float64(ps.BufferMisses),
			reads:  float64(ps.PhysicalReads),
			writes: float64(ps.PhysicalWrites),
			evict:  float64(ps.PageEvictions),
			pinned: float64(b.store.PinnedPages()),
			wal:    ws,
			hasWAL: ok,
		})
	}
	s.mu.RUnlock()
	for _, r := range rows {
		p.Counter("xrtree_pool_buffer_hits_total", "Buffer-pool lookup hits per backend.", r.hits, r.label)
	}
	for _, r := range rows {
		p.Counter("xrtree_pool_buffer_misses_total", "Buffer-pool lookup misses per backend.", r.misses, r.label)
	}
	for _, r := range rows {
		p.Counter("xrtree_pool_physical_reads_total", "Pages read from the backing file per backend.", r.reads, r.label)
	}
	for _, r := range rows {
		p.Counter("xrtree_pool_physical_writes_total", "Pages written to the backing file per backend.", r.writes, r.label)
	}
	for _, r := range rows {
		p.Counter("xrtree_pool_page_evictions_total", "Buffer-pool frames evicted per backend.", r.evict, r.label)
	}
	for _, r := range rows {
		p.Gauge("xrtree_pool_pinned_pages", "Currently pinned buffer pages per backend.", r.pinned, r.label)
	}

	// WAL families, for WAL-enabled backends only. Fsyncs staying well
	// below commits is the group-commit signature worth alerting on.
	for _, r := range rows {
		if r.hasWAL {
			p.Counter("xrtree_wal_commits_total", "Transactions committed to the write-ahead log per backend.", float64(r.wal.Commits), r.label)
		}
	}
	for _, r := range rows {
		if r.hasWAL {
			p.Counter("xrtree_wal_fsyncs_total", "Group-commit fsyncs issued by the log flusher per backend.", float64(r.wal.Fsyncs), r.label)
		}
	}
	for _, r := range rows {
		if r.hasWAL {
			p.Counter("xrtree_wal_bytes_total", "Record bytes appended to the write-ahead log per backend.", float64(r.wal.Bytes), r.label)
		}
	}
	for _, r := range rows {
		if r.hasWAL {
			p.Counter("xrtree_wal_checkpoints_total", "Fuzzy checkpoints written per backend.", float64(r.wal.Checkpoints), r.label)
		}
	}
	for _, r := range rows {
		if r.hasWAL {
			p.Gauge("xrtree_wal_max_commit_group", "Most commits acknowledged by a single fsync per backend.", float64(r.wal.MaxGroup), r.label)
		}
	}

	rs := s.rec.Stats()
	p.Counter("xrtree_traces_recorded_total", "Request traces recorded by the flight recorder.", float64(rs.Recorded))
	p.Counter("xrtree_traces_slow_total", "Recorded traces at or above the slow threshold.", float64(rs.Slow))
	p.Gauge("xrtree_trace_buffer_capacity", "Flight-recorder ring capacity.", float64(rs.Capacity))
	if s.coord != nil {
		s.coord.Metrics().WriteProm(p)
	}
	_ = p.Err() // headers are sent; a broken client connection is not actionable
}
