// Package server is the query-serving subsystem: an HTTP/JSON layer over
// the xrtree engine that runs structural-join and path-expression queries
// against pre-built stores under admission control.
//
// The admission policy (see DESIGN.md "Serving") is two bounds and a
// deadline: at most MaxConcurrent requests execute at once, at most
// MaxQueue more wait for a slot, and every request carries a
// context deadline that is honored both while queued and mid-query — the
// engine's poll points (page boundaries, element strides) stop a
// timed-out join promptly and release every page pin on the way out.
package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Acquire when the wait queue is already at
// capacity. The HTTP layer maps it to 429 Too Many Requests: the client
// should back off, not wait.
var ErrQueueFull = errors.New("server: admission queue full")

// Limiter is the admission controller. It is a counting semaphore with a
// bounded, deadline-aware wait queue: goroutines never block unboundedly
// and a waiter whose context expires leaves the queue immediately.
type Limiter struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

// NewLimiter creates a limiter with maxConcurrent execution slots
// (clamped to ≥ 1) and room for maxQueue waiting requests (clamped to
// ≥ 0; 0 means saturate → reject, no queuing).
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{slots: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// Acquire claims an execution slot, waiting while all slots are busy.
// It returns nil on success (pair with Release), ErrQueueFull when the
// wait queue is at capacity, and ctx's error when the context is canceled
// or its deadline passes while queued.
func (l *Limiter) Acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	// All slots busy: join the wait queue if there is room. The counter
	// is advisory-optimistic — increment first, back out if over bound —
	// so two racing arrivals at the last queue seat never both wait.
	if l.waiting.Add(1) > l.maxQueue {
		l.waiting.Add(-1)
		return ErrQueueFull
	}
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns the slot claimed by a successful Acquire.
func (l *Limiter) Release() { <-l.slots }

// InFlight returns the number of slots currently claimed.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Waiting returns the current wait-queue depth.
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// Capacity returns the limiter's bounds (execution slots, queue seats).
func (l *Limiter) Capacity() (maxConcurrent, maxQueue int) {
	return cap(l.slots), int(l.maxQueue)
}
