package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xrtree"
	"xrtree/internal/datagen"
)

// testStore creates a memory store sized like the paper's setup but small.
func testStore(t *testing.T) *xrtree.Store {
	t.Helper()
	st, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024, BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func deptDoc(t *testing.T, docID uint32, seed int64) *xrtree.Document {
	t.Helper()
	doc, err := datagen.Department(datagen.DeptConfig{
		Seed: seed, DocID: docID, Departments: 4, Employees: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// storeServer builds a server over a catalogued store backend named
// "dept" holding the department/employee/name sets of one generated doc.
func storeServer(t *testing.T, cfg Config) (*Server, *xrtree.Store) {
	t.Helper()
	st := testStore(t)
	doc := deptDoc(t, 1, 42)
	for _, tag := range []string{"department", "employee", "name"} {
		set, err := st.IndexElements(doc.ElementsByTag(tag), xrtree.IndexOptions{})
		if err != nil {
			t.Fatalf("index %s: %v", tag, err)
		}
		if err := st.SaveSet(tag, set); err != nil {
			t.Fatalf("save %s: %v", tag, err)
		}
	}
	s := New(cfg)
	if err := s.AddStore("dept", st); err != nil {
		t.Fatal(err)
	}
	return s, st
}

// docServer builds a server over a two-document collection backend named
// "docs" (path queries and parallel joins available).
func docServer(t *testing.T, cfg Config) (*Server, *xrtree.Store, int) {
	t.Helper()
	st := testStore(t)
	d1, d2 := deptDoc(t, 1, 1), deptDoc(t, 2, 2)
	employees := len(d1.ElementsByTag("employee")) + len(d2.ElementsByTag("employee"))
	s := New(cfg)
	if err := s.AddDocuments("docs", st, d1, d2); err != nil {
		t.Fatal(err)
	}
	return s, st, employees
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
	}
	return resp.StatusCode, string(body)
}

func TestJoinEndpointStoreBackend(t *testing.T) {
	s, st := storeServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var xr joinResponse
	code, body := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&alg=xr&limit=5", &xr)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if xr.Pairs <= 0 || len(xr.Sample) != 5 || !xr.Truncated {
		t.Fatalf("unexpected response: pairs=%d sample=%d truncated=%v", xr.Pairs, len(xr.Sample), xr.Truncated)
	}
	if xr.Backend != "dept" || xr.Query != "employee//name" || xr.Alg != "XR-stack" {
		t.Fatalf("bad echo fields: %+v", xr)
	}

	// Every algorithm agrees on the pair count — the server is a thin
	// shell over the join engine.
	for _, alg := range []string{"noindex", "mpmgjn", "bplus", "bplussp"} {
		var r joinResponse
		code, body := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&alg="+alg, &r)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", alg, code, body)
		}
		if r.Pairs != xr.Pairs {
			t.Errorf("%s: pairs = %d, want %d", alg, r.Pairs, xr.Pairs)
		}
	}

	// Parent-child axis yields fewer pairs than ancestor-descendant on a
	// nested corpus, and per-request stats arrive when asked for.
	var pc joinResponse
	code, body = getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&axis=/&stats=1", &pc)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if pc.Pairs >= xr.Pairs {
		t.Errorf("parent-child pairs %d not < descendant pairs %d", pc.Pairs, xr.Pairs)
	}
	if pc.Phases == nil || pc.Events == nil || pc.Phases.AncProbes == 0 {
		t.Errorf("stats=1 response lacks phases/events: %+v", pc)
	}
	if pc.Stats.ElementsScanned == 0 {
		t.Error("per-request ElementsScanned = 0")
	}

	if n := st.PinnedPages(); n != 0 {
		t.Errorf("pinned pages after requests = %d, want 0", n)
	}
}

func TestJoinAndQueryDocumentBackend(t *testing.T) {
	s, st, employees := docServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var jr joinResponse
	code, body := getJSON(t, ts, "/api/v1/join?anc=department&desc=employee&workers=2", &jr)
	if code != http.StatusOK {
		t.Fatalf("join status %d: %s", code, body)
	}
	// Every employee sits under exactly one department in this DTD, so
	// department//employee covers all employees at least once.
	if jr.Pairs < int64(employees) {
		t.Errorf("join pairs = %d, want ≥ %d", jr.Pairs, employees)
	}
	if jr.Workers != 2 {
		t.Errorf("workers echo = %d, want 2", jr.Workers)
	}

	var qr queryResponse
	code, body = getJSON(t, ts, "/api/v1/query?path=departments//employee&limit=3", &qr)
	if code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}
	if qr.Matches != employees {
		t.Errorf("query matches = %d, want %d", qr.Matches, employees)
	}
	if len(qr.Sample) != 3 || !qr.Truncated {
		t.Errorf("sample = %d truncated=%v, want 3/true", len(qr.Sample), qr.Truncated)
	}

	if n := st.PinnedPages(); n != 0 {
		t.Errorf("pinned pages after requests = %d, want 0", n)
	}
}

func TestBadRequests(t *testing.T) {
	s, _ := storeServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		want int
	}{
		{"/api/v1/join?anc=employee", http.StatusBadRequest}, // missing desc
		{"/api/v1/join?anc=employee&desc=name&alg=zzz", http.StatusBadRequest},
		{"/api/v1/join?anc=employee&desc=name&axis=up", http.StatusBadRequest},
		{"/api/v1/join?anc=employee&desc=name&timeout=bogus", http.StatusBadRequest},
		{"/api/v1/join?anc=employee&desc=name&workers=-1", http.StatusBadRequest},
		{"/api/v1/join?anc=employee&desc=nosuch", http.StatusNotFound}, // unknown set
		{"/api/v1/join?backend=zzz&anc=a&desc=b", http.StatusNotFound}, // unknown backend
		{"/api/v1/query?path=a//b", http.StatusBadRequest},             // store backend: no path queries
	}
	for _, c := range cases {
		code, body := getJSON(t, ts, c.path, nil)
		if code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.path, code, c.want, body)
		}
		var eb errorBody
		if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error == "" || eb.Status != c.want {
			t.Errorf("%s: error body %q not well-formed", c.path, body)
		}
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v\n%s", path, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func TestInsertEndpoint(t *testing.T) {
	s, st := storeServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A wide parent plus a nested child, far above the generated corpus.
	const base = uint32(1) << 30
	req := insertRequest{Set: "employee", Elements: []xrtree.Element{
		{Start: base, End: base + 1000, Level: 1},
		{Start: base + 4, End: base + 6, Level: 2},
	}}
	var ins insertResponse
	code, body := postJSON(t, ts, "/api/v1/insert", req, &ins)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if ins.Backend != "dept" || ins.Set != "employee" || ins.Inserted != 2 {
		t.Fatalf("unexpected response: %+v", ins)
	}

	// The inserts land in the set's XR-tree: a fresh handle over the same
	// pages finds the wide parent as an ancestor of the nested child.
	set, err := st.OpenSet("employee")
	if err != nil {
		t.Fatal(err)
	}
	var stats xrtree.Stats
	anc, err := set.FindAncestors(base+4, &stats)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range anc {
		if e.Start == base && e.End == base+1000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted parent missing from FindAncestors: %+v", anc)
	}

	// Joins over the set still answer after the mutation.
	var jr joinResponse
	code, body = getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&alg=xr", &jr)
	if code != http.StatusOK || jr.Pairs <= 0 {
		t.Fatalf("join after insert: status %d pairs %d: %s", code, jr.Pairs, body)
	}

	// Malformed inserts are refused with the usual error envelope.
	for _, c := range []struct {
		req  insertRequest
		want int
	}{
		{insertRequest{Elements: []xrtree.Element{{Start: 1, End: 2}}}, http.StatusBadRequest}, // no set
		{insertRequest{Set: "nosuch", Elements: []xrtree.Element{{Start: 1, End: 2}}}, http.StatusNotFound},
		{insertRequest{Set: "employee"}, http.StatusBadRequest},                                                 // no elements
		{insertRequest{Set: "employee", Elements: []xrtree.Element{{Start: 9, End: 9}}}, http.StatusBadRequest}, // degenerate
	} {
		code, body := postJSON(t, ts, "/api/v1/insert", c.req, nil)
		if code != c.want {
			t.Errorf("%+v: status %d, want %d (%s)", c.req, code, c.want, body)
		}
	}
}

func TestInsertRequiresStoreBackend(t *testing.T) {
	s, _, _ := docServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := insertRequest{Set: "employee", Elements: []xrtree.Element{{Start: 1, End: 2}}}
	code, body := postJSON(t, ts, "/api/v1/insert", req, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("document backend insert: status %d, want 400 (%s)", code, body)
	}
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	s, _ := storeServer(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only execution slot so the next arrival overflows.
	if err := s.lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.lim.Release()

	resp, err := ts.Client().Get(ts.URL + "/api/v1/join?anc=employee&desc=name")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response lacks Retry-After")
	}
	snap := s.met.Snapshot(s.lim.InFlight(), s.lim.Waiting())
	if snap.Rejected != 1 {
		t.Errorf("rejected count = %d, want 1", snap.Rejected)
	}
}

func TestAdmissionDeadlineWhileQueued(t *testing.T) {
	s, st := storeServer(t, Config{MaxConcurrent: 1, MaxQueue: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.lim.Release()

	code, body := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&timeout=20ms", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", code, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Errorf("503 body %q does not mention the deadline", body)
	}
	snap := s.met.Snapshot(s.lim.InFlight(), s.lim.Waiting())
	if snap.Timeouts != 1 {
		t.Errorf("timeout count = %d, want 1", snap.Timeouts)
	}
	// The canceled request must leave no pinned pages behind.
	if n := st.PinnedPages(); n != 0 {
		t.Errorf("pinned pages = %d, want 0", n)
	}
}

func TestTimedOutQueryLeaksNoPins(t *testing.T) {
	s, st := storeServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A 1ns deadline expires before (or during) the join; either way the
	// request must come back 503 with every page pin released.
	code, body := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&timeout=1ns", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", code, body)
	}
	if n := st.PinnedPages(); n != 0 {
		t.Errorf("pinned pages after timeout = %d, want 0", n)
	}
}

func TestConcurrentRequestsRaceClean(t *testing.T) {
	s, st, _ := docServer(t, Config{MaxConcurrent: 4, MaxQueue: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	const n = 24
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/api/v1/join?anc=department&desc=employee"
			if i%3 == 0 {
				path = "/api/v1/query?path=departments//employee/name"
			}
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	if n := st.PinnedPages(); n != 0 {
		t.Errorf("pinned pages = %d, want 0", n)
	}
	snap := s.met.Snapshot(0, 0)
	if snap.OK != n || snap.Latency.Count != n {
		t.Errorf("metrics ok=%d latency.count=%d, want %d", snap.OK, snap.Latency.Count, n)
	}
}

func TestStatsAndDiscoveryEndpoints(t *testing.T) {
	s, _ := storeServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name", nil); code != http.StatusOK {
		t.Fatalf("warmup join failed: %d", code)
	}

	code, body := getJSON(t, ts, "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	var stats statsResponse
	if code, body := getJSON(t, ts, "/api/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("/api/v1/stats = %d: %s", code, body)
	}
	if stats.Server.Requests < 1 || stats.Server.OK < 1 {
		t.Errorf("stats counters not advancing: %+v", stats.Server)
	}
	if len(stats.Backends) != 1 || stats.Backends[0].Name != "dept" || stats.Backends[0].Pool.PinnedPages != 0 {
		t.Errorf("backend stats wrong: %+v", stats.Backends)
	}
	if stats.Server.Latency.Count < 1 || stats.Server.Latency.P99MS <= 0 {
		t.Errorf("latency digest empty: %+v", stats.Server.Latency)
	}

	var bl struct {
		Backends []backendInfo `json:"backends"`
	}
	if code, body := getJSON(t, ts, "/api/v1/backends", &bl); code != http.StatusOK {
		t.Fatalf("/api/v1/backends = %d: %s", code, body)
	}
	if len(bl.Backends) != 1 || bl.Backends[0].Kind != "store" || len(bl.Backends[0].Sets) != 3 {
		t.Errorf("backend listing wrong: %+v", bl.Backends)
	}

	var vars map[string]json.RawMessage
	if code, body := getJSON(t, ts, "/debug/vars", &vars); code != http.StatusOK {
		t.Fatalf("/debug/vars = %d: %s", code, body)
	} else if _, ok := vars["xrtree_serve"]; !ok {
		t.Errorf("/debug/vars lacks xrtree_serve: %s", body)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, _ := storeServer(t, Config{MaxConcurrent: 1, MaxQueue: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := fmt.Sprintf("http://%s", ln.Addr())

	// Hold the only slot so the request below is in flight (queued) when
	// Shutdown begins.
	if err := s.lim.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/api/v1/join?anc=employee&desc=name")
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return s.lim.Waiting() == 1 })

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	// Give the drain a moment to close the listener, then release the
	// slot: the queued request must still complete successfully.
	time.Sleep(20 * time.Millisecond)
	s.lim.Release()

	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

func TestParseTimeout(t *testing.T) {
	def, max := 5*time.Second, 30*time.Second
	if d, err := parseTimeout("", def, max); err != nil || d != def {
		t.Errorf("empty: %v %v", d, err)
	}
	if d, err := parseTimeout("250ms", def, max); err != nil || d != 250*time.Millisecond {
		t.Errorf("250ms: %v %v", d, err)
	}
	if d, err := parseTimeout("5m", def, max); err != nil || d != max {
		t.Errorf("cap: %v %v", d, err)
	}
	if _, err := parseTimeout("-1s", def, max); err == nil {
		t.Error("negative accepted")
	}
	if _, err := parseTimeout("soon", def, max); err == nil {
		t.Error("garbage accepted")
	}
}
