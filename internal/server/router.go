package server

// Router mode: the same HTTP surface, backed by a cluster coordinator
// instead of local backends. /api/v1/join and /api/v1/query fan out to the
// owning shards and stream-merge the sub-results in document order, so a
// router response is byte-compatible with a single-node response over the
// union of the fleet's documents — plus the cluster-only fields (shards,
// shards_failed, degraded, hedges, retries). Requests pass the same
// admission chokepoint as local ones: concurrency limits and deadlines
// protect the router exactly as they protect a shard.
//
// The partial-result policy is per request: partial=1 turns a failed
// shard into a degraded 200 whose shards_failed lists the casualties (and
// an X-XR-Shards-Failed count header for cheap client-side accounting);
// without it, the first shard failure fails the request with 502.

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"strconv"

	"xrtree"
	"xrtree/internal/cluster"
	"xrtree/internal/obs"
)

// NewRouter creates a server in router mode over the coordinator. The
// caller owns the coordinator's lifecycle (Start before Serve, Close after
// Shutdown). Local backends may not be registered on a router.
func NewRouter(cfg Config, coord *cluster.Coordinator) *Server {
	s := New(cfg)
	s.coord = coord
	s.mux.HandleFunc("GET /api/v1/cluster", s.handleCluster)
	return s
}

// handleCluster serves the router's live fleet view.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Status())
}

// clusterBackends is the router-mode /api/v1/backends: the fleet's
// aggregated inventory (per backend, the union of owned documents).
func (s *Server) clusterBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Backends []cluster.BackendInfo `json:"backends"`
	}{s.coord.Backends(r.Context())})
}

// mapClusterErr translates coordinator failures for the admit chokepoint:
// context errors pass through (admit turns deadlines into 503), a shard
// failure under the fail-fast policy is a 502 naming the shard, and
// anything else — backend inference, parameter validation — is a 400.
func mapClusterErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return err
	}
	var se *cluster.ShardError
	if errors.As(err, &se) {
		return &httpError{http.StatusBadGateway, se.Error()}
	}
	return badRequest("%v", err)
}

// parsePartial reads the partial=1 flag selecting degraded results over
// fail-fast.
func parsePartial(q url.Values) bool {
	v := q.Get("partial")
	return v == "1" || v == "true"
}

// routerTrace starts the scatter span for a traced router request and
// returns the tracer handed to the coordinator. The coordinator threads it
// through the merge driver, which opens one child span per sub-request;
// those span ids ride the outgoing traceparent headers, so the shard-side
// traces are children of this router request under one trace id.
func routerTrace(r *http.Request, req *cluster.Request, name string) (*obs.Span, *obs.Trace) {
	tr := traceFrom(r.Context())
	if tr == nil {
		return nil, nil
	}
	req.TraceID = tr.ID()
	req.Traced = true
	return tr.Root().StartSpan(name), tr
}

// routeJoin is handleJoin in router mode: validate locally (a malformed
// request must 400 here, not 400 on every shard), scatter, merge, respond.
func (s *Server) routeJoin(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	anc, desc := q.Get("anc"), q.Get("desc")
	if anc == "" || desc == "" {
		return badRequest("anc and desc parameters are required")
	}
	mode, err := parseMode(q.Get("axis"))
	if err != nil {
		return err
	}
	alg, err := parseAlg(q.Get("alg"))
	if err != nil {
		return err
	}
	if _, err := parseIntParam(q.Get("workers"), s.cfg.Workers, "workers"); err != nil {
		return err
	}
	limit, err := parseIntParam(q.Get("limit"), s.cfg.DefaultLimit, "limit")
	if err != nil {
		return err
	}
	axis := "//"
	if mode == xrtree.ParentChild {
		axis = "/"
	}

	params := url.Values{}
	for _, k := range []string{"anc", "desc", "axis", "alg", "workers", "stats"} {
		if v := q.Get(k); v != "" {
			params.Set(k, v)
		}
	}
	req := &cluster.Request{
		Kind:    "join",
		Backend: q.Get("backend"),
		Params:  params,
		Limit:   limit,
		Partial: parsePartial(q),
	}
	span, tr := routerTrace(r, req, "scatter join "+anc+axis+desc+" alg="+alg.String())
	var tracer obs.Tracer
	if span != nil {
		defer span.End()
		tracer = span
	}

	res, err := s.coord.Gather(r.Context(), req, tracer)
	if err != nil {
		return mapClusterErr(err)
	}

	resp := joinResponse{
		Backend:      res.Backend,
		Query:        anc + axis + desc,
		Alg:          alg.String(),
		Pairs:        res.Total,
		Truncated:    res.Truncated,
		Shards:       res.Shards,
		ShardsFailed: res.ShardsFailed,
		Degraded:     len(res.ShardsFailed) > 0,
		Hedges:       res.Hedges,
		Retries:      res.Retries,
		Stats: requestStats{
			ElementsScanned: res.Stats.ElementsScanned,
			IndexNodeReads:  res.Stats.IndexNodeReads,
			LeafReads:       res.Stats.LeafReads,
			StabPageReads:   res.Stats.StabPageReads,
			ElapsedMS:       float64(res.Stats.Elapsed.Microseconds()) / 1000,
		},
	}
	for _, p := range res.Pairs {
		resp.Sample = append(resp.Sample, pairJSON{Anc: p.A, Desc: p.D})
	}
	if tr != nil {
		resp.TraceID = tr.ID().String()
	}
	if resp.Degraded {
		w.Header().Set("X-XR-Shards-Failed", strconv.Itoa(len(res.ShardsFailed)))
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// routeQuery is handleQuery in router mode.
func (s *Server) routeQuery(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	path := q.Get("path")
	if path == "" {
		return badRequest("path parameter is required")
	}
	limit, err := parseIntParam(q.Get("limit"), s.cfg.DefaultLimit, "limit")
	if err != nil {
		return err
	}

	params := url.Values{}
	params.Set("path", path)
	req := &cluster.Request{
		Kind:    "query",
		Backend: q.Get("backend"),
		Params:  params,
		Limit:   limit,
		Partial: parsePartial(q),
	}
	span, tr := routerTrace(r, req, "scatter query "+path)
	var tracer obs.Tracer
	if span != nil {
		defer span.End()
		tracer = span
	}

	res, err := s.coord.Gather(r.Context(), req, tracer)
	if err != nil {
		return mapClusterErr(err)
	}

	resp := queryResponse{
		Backend:      res.Backend,
		Path:         path,
		Matches:      int(res.Total),
		Truncated:    res.Truncated,
		Shards:       res.Shards,
		ShardsFailed: res.ShardsFailed,
		Degraded:     len(res.ShardsFailed) > 0,
		Hedges:       res.Hedges,
		Retries:      res.Retries,
		Stats: requestStats{
			ElementsScanned: res.Stats.ElementsScanned,
			IndexNodeReads:  res.Stats.IndexNodeReads,
			LeafReads:       res.Stats.LeafReads,
			StabPageReads:   res.Stats.StabPageReads,
			ElapsedMS:       float64(res.Stats.Elapsed.Microseconds()) / 1000,
		},
	}
	for _, p := range res.Pairs {
		resp.Sample = append(resp.Sample, p.A)
	}
	if tr != nil {
		resp.TraceID = tr.ID().String()
	}
	if resp.Degraded {
		w.Header().Set("X-XR-Shards-Failed", strconv.Itoa(len(res.ShardsFailed)))
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
