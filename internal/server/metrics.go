package server

import (
	"sync/atomic"
	"time"

	"xrtree"
	"xrtree/internal/obs"
)

// Metrics aggregates the serving layer's request accounting: outcome
// counters (atomic, one per terminal state) plus an obs.Collector holding
// the latency, queue-wait and queue-depth distributions under the
// EvServe* event kinds. All methods are safe for concurrent use.
type Metrics struct {
	col *obs.Collector

	requests atomic.Int64 // arrivals, before admission
	ok       atomic.Int64 // completed with a 2xx response
	rejected atomic.Int64 // 429: queue full at admission
	timeouts atomic.Int64 // deadline exceeded, queued or mid-query
	canceled atomic.Int64 // client went away before completion
	failed   atomic.Int64 // bad request or internal error
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{col: obs.NewCollector()}
}

// Collector exposes the underlying event collector (for expvar export).
func (m *Metrics) Collector() *obs.Collector { return m.col }

// Arrived records one request arrival and samples the queue depth it saw.
func (m *Metrics) Arrived(queueDepth int) {
	m.requests.Add(1)
	m.QueueDepth(queueDepth)
}

// QueueDepth samples the admission queue depth into the depth
// distribution. The serving layer calls it at admission and again at
// completion, so the distribution reflects draining as well as filling.
func (m *Metrics) QueueDepth(depth int) {
	m.col.Event(obs.EvServeQueueDepth, int64(depth))
}

// Rejected records one 429 (queue full at admission).
func (m *Metrics) Rejected() {
	m.rejected.Add(1)
	m.col.Event(obs.EvServeReject, 1)
}

// TimedOut records one request that hit its deadline, queued or mid-query.
func (m *Metrics) TimedOut() {
	m.timeouts.Add(1)
	m.col.Event(obs.EvServeTimeout, 1)
}

// Canceled records one request whose client went away before completion.
func (m *Metrics) Canceled() { m.canceled.Add(1) }

// Failed records one request that ended in a 4xx/5xx other than
// rejection or timeout.
func (m *Metrics) Failed() { m.failed.Add(1) }

// Done records one admitted request's completion: queue wait and total
// admission-to-response latency. ok distinguishes 2xx from error
// responses (errors are also counted by TimedOut/Failed — Done only owns
// the distributions and the ok counter).
func (m *Metrics) Done(ok bool, queueWait, total time.Duration) {
	if ok {
		m.ok.Add(1)
	}
	m.col.Event(obs.EvServeQueueWait, queueWait.Nanoseconds())
	m.col.Event(obs.EvServeSpan, total.Nanoseconds())
}

// summarize digests one nanosecond-valued event kind into milliseconds
// (quantiles are upper bounds from the power-of-two buckets — coarse but
// cheap and lock-free).
func (m *Metrics) summarize(kind obs.EventKind) xrtree.LatencySummary {
	h := m.col.Histogram(kind)
	if h == nil || h.Count() == 0 {
		return xrtree.LatencySummary{}
	}
	const msPerNs = 1e-6
	return xrtree.LatencySummary{
		Count:  h.Count(),
		MeanMS: h.Mean() * msPerNs,
		P50MS:  float64(h.Quantile(0.50)) * msPerNs,
		P90MS:  float64(h.Quantile(0.90)) * msPerNs,
		P99MS:  float64(h.Quantile(0.99)) * msPerNs,
		MaxMS:  float64(h.Quantile(1)) * msPerNs,
	}
}

// MetricsSnapshot is the JSON shape of /api/v1/stats and the expvar
// variable: outcome counts, live gauges, latency digests, and the raw
// event snapshot for anything not pre-digested.
type MetricsSnapshot struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Rejected int64 `json:"rejected"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	Failed   int64 `json:"failed"`
	InFlight int   `json:"in_flight"`
	Queued   int   `json:"queued"`
	// QueueDepth is the live admission-queue depth at snapshot time (the
	// current-value gauge; the ServeQueueDepth event histogram holds the
	// sampled distribution).
	QueueDepth int                   `json:"queue_depth"`
	Latency    xrtree.LatencySummary `json:"latency"`
	QueueWait  xrtree.LatencySummary `json:"queue_wait"`
	Events     obs.Snapshot          `json:"events"`
}

// Snapshot exports the current state; inFlight and queued are sampled
// from the limiter by the caller.
func (m *Metrics) Snapshot(inFlight, queued int) MetricsSnapshot {
	return MetricsSnapshot{
		Requests:   m.requests.Load(),
		OK:         m.ok.Load(),
		Rejected:   m.rejected.Load(),
		Timeouts:   m.timeouts.Load(),
		Canceled:   m.canceled.Load(),
		Failed:     m.failed.Load(),
		InFlight:   inFlight,
		Queued:     queued,
		QueueDepth: queued,
		Latency:    m.summarize(obs.EvServeSpan),
		QueueWait:  m.summarize(obs.EvServeQueueWait),
		Events:     m.col.Snapshot(),
	}
}

// writeProm renders the serving metrics in Prometheus text form: outcome
// counters, the live limiter gauges, and every collector event kind as a
// labeled histogram family.
func (m *Metrics) writeProm(p *obs.PromWriter, inFlight, queued int) {
	p.Counter("xrtree_serve_requests_total", "Request arrivals, before admission.", float64(m.requests.Load()))
	p.Counter("xrtree_serve_ok_total", "Requests completed with a 2xx response.", float64(m.ok.Load()))
	p.Counter("xrtree_serve_rejected_total", "Requests rejected 429 at admission.", float64(m.rejected.Load()))
	p.Counter("xrtree_serve_timeouts_total", "Requests that exceeded their deadline.", float64(m.timeouts.Load()))
	p.Counter("xrtree_serve_canceled_total", "Requests whose client went away.", float64(m.canceled.Load()))
	p.Counter("xrtree_serve_failed_total", "Requests failed with another 4xx/5xx.", float64(m.failed.Load()))
	p.Gauge("xrtree_serve_in_flight", "Requests currently executing.", float64(inFlight))
	p.Gauge("xrtree_serve_queue_depth", "Requests currently waiting for admission.", float64(queued))
	p.CollectorEvents("xrtree", m.col)
}
