package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"xrtree"
	"xrtree/internal/cluster"
	"xrtree/internal/obs"
)

// Config tunes the serving layer. The zero value selects the defaults
// noted on each field.
type Config struct {
	// MaxConcurrent is the number of requests that may execute at once
	// (default 8).
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue: 0 selects 2×MaxConcurrent,
	// negative disables queuing entirely (saturation → immediate 429).
	MaxQueue int
	// DefaultTimeout applies to requests that name no ?timeout (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the ?timeout a request may ask for (default 60s).
	MaxTimeout time.Duration
	// Workers is the default parallel-join worker count for collection
	// backends when the request names no ?workers (default 1).
	Workers int
	// DefaultLimit caps the result sample returned per request when the
	// request names no ?limit (default 10).
	DefaultLimit int
	// TraceSample is the head-based trace-sampling rate in [0, 1] for
	// requests arriving without a sampled traceparent header (default 0:
	// only explicitly sampled requests are traced).
	TraceSample float64
	// TraceBuffer is the flight recorder's main ring capacity (default 64,
	// rounded up to a power of two).
	TraceBuffer int
	// TracePinned is the slow-trace ring capacity (default 16).
	TracePinned int
	// SlowTrace pins recorded traces at or above this duration into the
	// slow ring (default 0: pinning disabled).
	SlowTrace time.Duration
	// TraceSeed seeds the sampler and id generator; 0 draws random seeds.
	// A fixed seed makes the sampling decision sequence deterministic for
	// tests.
	TraceSeed uint64
	// ShardName identifies this node when it serves as one shard of a
	// cluster; it only labels errors and logs, enforcement is Owns.
	ShardName string
	// Owns, when non-nil, restricts document backends to the DocIds this
	// shard owns under the cluster placement: unowned documents are
	// invisible to joins, queries and the /api/v1/backends inventory, and
	// a docs= request explicitly naming a present-but-unowned document is
	// refused with 421 Misdirected Request.
	Owns func(docID uint32) bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 10
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 64
	}
	if c.TracePinned <= 0 {
		c.TracePinned = 16
	}
	return c
}

// backend is one named query target: either a catalogued store (two-step
// joins over persisted sets) or a document collection (joins plus path
// expressions, lazily indexed).
type backend struct {
	name  string
	store *xrtree.Store
	coll  *xrtree.Collection

	mu    sync.Mutex
	sets  map[string]*xrtree.ElementSet // store-backed handles, opened once
	names []string                      // catalogued set names (store kind)
	tags  []string                      // document tags (collection kind)
}

func (b *backend) kind() string {
	if b.coll != nil {
		return "documents"
	}
	return "store"
}

// set returns the catalogued element set for tag, opening and caching the
// handle on first use. Concurrent joins over one cached set are safe: the
// index structures are immutable and page access is latched in the pool.
func (b *backend) set(tag string) (*xrtree.ElementSet, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if set, ok := b.sets[tag]; ok {
		return set, nil
	}
	set, err := b.store.OpenSet(tag)
	if err != nil {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("backend %q has no set %q", b.name, tag)}
	}
	b.sets[tag] = set
	return set, nil
}

// Server is the HTTP query server: named backends, an admission-controlled
// API, and serving metrics. Create with New, register backends, then
// Serve; Shutdown drains in-flight requests.
type Server struct {
	cfg     Config
	lim     *Limiter
	met     *Metrics
	hs      *http.Server
	mux     *http.ServeMux
	rec     *obs.FlightRecorder
	ids     *obs.IDSource
	sampler *obs.Sampler
	coord   *cluster.Coordinator // non-nil in router mode (NewRouter)

	mu       sync.RWMutex
	backends map[string]*backend
	order    []string
}

// New creates a server with no backends.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		met:      NewMetrics(),
		backends: make(map[string]*backend),
	}
	s.lim = NewLimiter(s.cfg.MaxConcurrent, s.cfg.MaxQueue)
	s.ids = obs.NewIDSource(s.cfg.TraceSeed)
	s.sampler = obs.NewSampler(s.cfg.TraceSample, s.cfg.TraceSeed)
	s.rec = obs.NewFlightRecorder(s.cfg.TraceBuffer, s.cfg.TracePinned)
	s.rec.SetSlowThreshold(s.cfg.SlowTrace)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/v1/backends", s.handleBackends)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /api/v1/join", s.admit(s.handleJoin))
	s.mux.Handle("GET /api/v1/query", s.admit(s.handleQuery))
	s.mux.Handle("POST /api/v1/insert", s.admit(s.handleInsert))
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Recorder exposes the flight recorder (for tests and embedding).
func (s *Server) Recorder() *obs.FlightRecorder { return s.rec }

// AddStore registers a catalogued store under name: its persisted sets
// become join operands. Backends must be registered before Serve.
func (s *Server) AddStore(name string, st *xrtree.Store) error {
	names, err := st.SetNames()
	if err != nil {
		return fmt.Errorf("server: backend %q: %w", name, err)
	}
	sort.Strings(names)
	return s.add(&backend{name: name, store: st, sets: make(map[string]*xrtree.ElementSet), names: names})
}

// AddDocuments registers a document collection under name: joins run per
// document with the DocId condition, and path-expression queries are
// available. Tag indexes build lazily on first use.
func (s *Server) AddDocuments(name string, st *xrtree.Store, docs ...*xrtree.Document) error {
	if len(docs) == 0 {
		return fmt.Errorf("server: backend %q: no documents", name)
	}
	// Ascending DocId is the emit order of every collection join and the
	// document order the cluster router's merge assumes; sorting here makes
	// it hold regardless of registration order.
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	coll := st.NewCollection()
	tagSet := make(map[string]struct{})
	for _, d := range docs {
		if err := coll.Add(d); err != nil {
			return fmt.Errorf("server: backend %q: %w", name, err)
		}
		for _, t := range d.Tags() {
			tagSet[t] = struct{}{}
		}
	}
	tags := make([]string, 0, len(tagSet))
	for t := range tagSet {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return s.add(&backend{name: name, store: st, coll: coll, tags: tags})
}

func (s *Server) add(b *backend) error {
	if b.name == "" {
		return errors.New("server: backend name must be non-empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.backends[b.name]; dup {
		return fmt.Errorf("server: duplicate backend %q", b.name)
	}
	s.backends[b.name] = b
	s.order = append(s.order, b.name)
	return nil
}

// backend resolves the ?backend parameter; an empty name selects the sole
// backend when exactly one is registered.
func (s *Server) backend(name string) (*backend, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.order) == 1 {
			return s.backends[s.order[0]], nil
		}
		return nil, badRequest("backend parameter required (%d backends registered)", len(s.order))
	}
	b, ok := s.backends[name]
	if !ok {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown backend %q", name)}
	}
	return b, nil
}

// Metrics exposes the serving metrics (for expvar publication or tests).
func (s *Server) Metrics() *Metrics { return s.met }

// Handler returns the server's HTTP handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like http.Server.Serve.
func (s *Server) Serve(ln net.Listener) error { return s.hs.Serve(ln) }

// Shutdown gracefully drains the server: the listener closes immediately,
// in-flight requests run to completion (engine deadlines still apply),
// and new arrivals are refused at the socket. ctx bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error { return s.hs.Shutdown(ctx) }

// httpError carries a status code through the handler error path.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // header already sent; a broken client connection is not actionable
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg, Status: code})
}

// apiFunc is an admitted handler: it returns nil after writing a 2xx
// response, or an error that admit maps to an HTTP status (httpError →
// its code, context errors → 503, anything else → 500).
type apiFunc func(w http.ResponseWriter, r *http.Request) error

// admit wraps an apiFunc with the admission policy: parse and apply the
// request deadline, acquire an execution slot (bounded queue, 429 on
// overflow, 503 on deadline-in-queue), record queue wait and latency, and
// translate handler errors. This is the single chokepoint every query
// request passes through.
func (s *Server) admit(fn apiFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrive := time.Now()
		timeout, err := parseTimeout(r.URL.Query().Get("timeout"), s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
		if err != nil {
			s.met.Failed()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		tr := s.startTrace(w, r)
		if tr != nil {
			ctx = context.WithValue(ctx, traceKey{}, tr)
		}
		s.met.Arrived(s.lim.Waiting())
		if err := s.lim.Acquire(ctx); err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				s.met.Rejected()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "admission queue full")
			case errors.Is(err, context.DeadlineExceeded):
				s.met.TimedOut()
				writeError(w, http.StatusServiceUnavailable, "deadline exceeded while queued")
			default: // client went away while queued; nothing to write
				s.met.Canceled()
			}
			s.finishTrace(tr, time.Since(arrive))
			return
		}
		defer func() {
			s.lim.Release()
			// Completion-side depth sample: sampling only at admission
			// leaves the depth distribution stale after an idle-then-burst
			// phase (the last burst arrival saw a full queue; nothing
			// recorded it draining).
			s.met.QueueDepth(s.lim.Waiting())
		}()
		wait := time.Since(arrive)
		if tr != nil {
			tr.Root().Event(obs.EvServeQueueWait, wait.Nanoseconds())
		}

		err = fn(w, r.WithContext(ctx))
		switch {
		case err == nil:
		case errors.Is(err, context.DeadlineExceeded):
			s.met.TimedOut()
			writeError(w, http.StatusServiceUnavailable, "deadline exceeded")
		case errors.Is(err, context.Canceled):
			s.met.Canceled()
		default:
			s.met.Failed()
			var he *httpError
			if errors.As(err, &he) {
				writeError(w, he.code, he.msg)
			} else {
				writeError(w, http.StatusInternalServerError, err.Error())
			}
		}
		total := time.Since(arrive)
		s.met.Done(err == nil, wait, total)
		// The root span ends with the identical measurement EvServeSpan
		// records, so the trace and the latency histogram agree exactly.
		s.finishTrace(tr, total)
	})
}

// parseTimeout resolves the ?timeout parameter (a Go duration such as
// "500ms") against the configured default and cap.
func parseTimeout(raw string, def, max time.Duration) (time.Duration, error) {
	if raw == "" {
		return def, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout must be positive, got %q", raw)
	}
	if d > max {
		d = max
	}
	return d, nil
}

func parseAlg(raw string) (xrtree.Algorithm, error) {
	switch raw {
	case "", "xr", "xrstack":
		return xrtree.AlgXRStack, nil
	case "noindex":
		return xrtree.AlgNoIndex, nil
	case "mpmgjn":
		return xrtree.AlgMPMGJN, nil
	case "bplus", "b+":
		return xrtree.AlgBPlus, nil
	case "bplussp", "b+sp":
		return xrtree.AlgBPlusSP, nil
	default:
		return 0, badRequest("unknown algorithm %q", raw)
	}
}

func parseMode(raw string) (xrtree.Mode, error) {
	switch raw {
	case "", "//", "desc", "descendant", "ad":
		return xrtree.AncestorDescendant, nil
	case "/", "child", "pc":
		return xrtree.ParentChild, nil
	default:
		return 0, badRequest("unknown axis %q (want // or /)", raw)
	}
}

func parseIntParam(raw string, def int, name string) (int, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, badRequest("bad %s %q: want a non-negative integer", name, raw)
	}
	return n, nil
}

// docFilter resolves the docs= parameter and the shard ownership function
// into a document filter for a collection backend (nil keeps everything).
// With an explicit docs= set, naming a present document this shard does
// not own is a misdirected request (421): the router only pins documents
// to their owner, so a hit here means router and shard disagree about
// placement and silently serving would risk double-counted results.
func (s *Server) docFilter(b *backend, docsParam string) (func(uint32) bool, error) {
	owns := s.cfg.Owns
	if docsParam == "" {
		return owns, nil
	}
	if b.coll == nil {
		return nil, badRequest("docs parameter requires a document backend, %q serves catalogued sets", b.name)
	}
	set, err := cluster.ParseDocSet(docsParam)
	if err != nil {
		return nil, badRequest("bad docs %q: %v", docsParam, err)
	}
	if owns != nil {
		for _, id := range b.coll.DocIDs() {
			if cluster.DocSetContains(set, id) && !owns(id) {
				return nil, &httpError{http.StatusMisdirectedRequest,
					fmt.Sprintf("document %d is present but not owned by shard %q", id, s.cfg.ShardName)}
			}
		}
	}
	return func(id uint32) bool {
		return cluster.DocSetContains(set, id) && (owns == nil || owns(id))
	}, nil
}

// pairJSON is one sampled result pair.
type pairJSON struct {
	Anc  xrtree.Element `json:"anc"`
	Desc xrtree.Element `json:"desc"`
}

// requestStats is the per-request cost digest, mirroring the fields of
// xrquery -stats-json that are attributable to one request. Buffer-pool
// hit/miss counters are store-global under concurrency and reported per
// backend by /api/v1/stats instead.
type requestStats struct {
	ElementsScanned int64   `json:"elements_scanned"`
	IndexNodeReads  int64   `json:"index_node_reads"`
	LeafReads       int64   `json:"leaf_reads"`
	StabPageReads   int64   `json:"stab_page_reads"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// joinResponse is the body of a successful /api/v1/join.
type joinResponse struct {
	Backend   string                `json:"backend"`
	Query     string                `json:"query"`
	Alg       string                `json:"alg"`
	Workers   int                   `json:"workers,omitempty"`
	TraceID   string                `json:"trace_id,omitempty"`
	Pairs     int64                 `json:"pairs"`
	Sample    []pairJSON            `json:"sample,omitempty"`
	Truncated bool                  `json:"truncated,omitempty"`
	Stats     requestStats          `json:"stats"`
	Phases    *xrtree.JoinPhases    `json:"phases,omitempty"`
	Events    *xrtree.TraceSnapshot `json:"events,omitempty"`

	// Cluster-mode fields, set only by the router (omitted on shards and
	// single-node servers, keeping their responses byte-compatible).
	Shards       int      `json:"shards,omitempty"`
	ShardsFailed []string `json:"shards_failed,omitempty"`
	Degraded     bool     `json:"degraded,omitempty"`
	Hedges       int64    `json:"hedges,omitempty"`
	Retries      int64    `json:"retries,omitempty"`
}

// handleJoin runs one structural join: GET /api/v1/join?backend=&anc=&
// desc=&axis=&alg=&workers=&limit=&timeout=&stats=1.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) error {
	if s.coord != nil {
		return s.routeJoin(w, r)
	}
	q := r.URL.Query()
	b, err := s.backend(q.Get("backend"))
	if err != nil {
		return err
	}
	anc, desc := q.Get("anc"), q.Get("desc")
	if anc == "" || desc == "" {
		return badRequest("anc and desc parameters are required")
	}
	mode, err := parseMode(q.Get("axis"))
	if err != nil {
		return err
	}
	alg, err := parseAlg(q.Get("alg"))
	if err != nil {
		return err
	}
	workers, err := parseIntParam(q.Get("workers"), s.cfg.Workers, "workers")
	if err != nil {
		return err
	}
	limit, err := parseIntParam(q.Get("limit"), s.cfg.DefaultLimit, "limit")
	if err != nil {
		return err
	}
	withStats := q.Get("stats") == "1" || q.Get("stats") == "true"
	keep, err := s.docFilter(b, q.Get("docs"))
	if err != nil {
		return err
	}

	axis := "//"
	if mode == xrtree.ParentChild {
		axis = "/"
	}

	var col *obs.Collector
	var st xrtree.Stats
	if withStats {
		col = obs.NewCollector()
		st.Tracer = col
	}
	// A traced request gets a child span for the engine work; the span
	// chains the stats collector (when present) as the trace's sink, so
	// stats=1 sees the identical event stream either way.
	tr := traceFrom(r.Context())
	var joinSpan *obs.Span
	if tr != nil {
		if col != nil {
			tr.SetSink(col)
		}
		joinSpan = tr.Root().StartSpan("join " + anc + axis + desc + " alg=" + alg.String())
		defer joinSpan.End()
		st.Tracer = joinSpan
	}
	var (
		pairs     int64
		sample    []pairJSON
		truncated bool
	)
	emit := func(a, d xrtree.Element) {
		pairs++
		if len(sample) < limit {
			sample = append(sample, pairJSON{Anc: a, Desc: d})
		} else {
			truncated = true
		}
	}

	start := time.Now()
	ctx := r.Context()
	if b.coll != nil {
		err = b.coll.ParallelJoinContext(ctx, alg, mode, anc, desc, emit, &st,
			xrtree.ParallelJoinOptions{Workers: workers, Keep: keep})
	} else {
		var a, d *xrtree.ElementSet
		if a, err = b.set(anc); err != nil {
			return err
		}
		if d, err = b.set(desc); err != nil {
			return err
		}
		err = xrtree.JoinContext(ctx, alg, mode, a, d, emit, &st)
	}
	if err != nil {
		return err
	}

	resp := joinResponse{
		Backend:   b.name,
		Query:     anc + axis + desc,
		Alg:       alg.String(),
		Pairs:     pairs,
		Sample:    sample,
		Truncated: truncated,
		Stats: requestStats{
			ElementsScanned: st.ElementsScanned,
			IndexNodeReads:  st.IndexNodeReads,
			LeafReads:       st.LeafReads,
			StabPageReads:   st.StabPageReads,
			ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000,
		},
	}
	if b.coll != nil {
		resp.Workers = workers
	}
	if tr != nil {
		resp.TraceID = tr.ID().String()
	}
	if col != nil {
		ph := col.JoinPhases()
		ev := col.Snapshot()
		resp.Phases = &ph
		resp.Events = &ev
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// queryResponse is the body of a successful /api/v1/query.
type queryResponse struct {
	Backend   string           `json:"backend"`
	Path      string           `json:"path"`
	TraceID   string           `json:"trace_id,omitempty"`
	Matches   int              `json:"matches"`
	Sample    []xrtree.Element `json:"sample,omitempty"`
	Truncated bool             `json:"truncated,omitempty"`
	Stats     requestStats     `json:"stats"`

	// Cluster-mode fields, set only by the router.
	Shards       int      `json:"shards,omitempty"`
	ShardsFailed []string `json:"shards_failed,omitempty"`
	Degraded     bool     `json:"degraded,omitempty"`
	Hedges       int64    `json:"hedges,omitempty"`
	Retries      int64    `json:"retries,omitempty"`
}

// handleQuery evaluates a path expression over a document backend:
// GET /api/v1/query?backend=&path=&limit=&timeout=.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	if s.coord != nil {
		return s.routeQuery(w, r)
	}
	q := r.URL.Query()
	b, err := s.backend(q.Get("backend"))
	if err != nil {
		return err
	}
	if b.coll == nil {
		return badRequest("backend %q serves catalogued sets; path queries need a document backend", b.name)
	}
	path := q.Get("path")
	if path == "" {
		return badRequest("path parameter is required")
	}
	limit, err := parseIntParam(q.Get("limit"), s.cfg.DefaultLimit, "limit")
	if err != nil {
		return err
	}
	keep, err := s.docFilter(b, q.Get("docs"))
	if err != nil {
		return err
	}

	var st xrtree.Stats
	tr := traceFrom(r.Context())
	var querySpan *obs.Span
	if tr != nil {
		querySpan = tr.Root().StartSpan("query " + path)
		defer querySpan.End()
		st.Tracer = querySpan
	}
	start := time.Now()
	els, err := b.coll.QueryContextDocs(r.Context(), path, keep, &st)
	if err != nil {
		var he *httpError
		if errors.As(err, &he) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return err
		}
		return badRequest("path %q: %v", path, err)
	}
	sample := els
	truncated := false
	if len(sample) > limit {
		sample, truncated = sample[:limit], true
	}
	resp := queryResponse{
		Backend:   b.name,
		Path:      path,
		Matches:   len(els),
		Sample:    sample,
		Truncated: truncated,
		Stats: requestStats{
			ElementsScanned: st.ElementsScanned,
			IndexNodeReads:  st.IndexNodeReads,
			LeafReads:       st.LeafReads,
			StabPageReads:   st.StabPageReads,
			ElapsedMS:       float64(time.Since(start).Microseconds()) / 1000,
		},
	}
	if tr != nil {
		resp.TraceID = tr.ID().String()
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// insertRequest is the body of POST /api/v1/insert: elements to add to
// one catalogued set's XR-tree. A zero DocID inherits the set's document.
type insertRequest struct {
	Set      string           `json:"set"`
	Elements []xrtree.Element `json:"elements"`
}

// insertResponse is the body of a successful insert.
type insertResponse struct {
	Backend   string  `json:"backend"`
	Set       string  `json:"set"`
	Inserted  int     `json:"inserted"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// maxInsertBody bounds the insert request body (about 16k elements per
// request at JSON encoding sizes — far above any sane batch).
const maxInsertBody = 1 << 20

// handleInsert adds elements to a catalogued set's XR-tree:
// POST /api/v1/insert?backend=&set= with an insertRequest body. Inserts
// run concurrently with joins and queries over the same set — the tree's
// per-page latching keeps readers flowing during splits — and are
// admission-controlled like every query, so ingest load competes for the
// same execution slots the limiter meters. Inserted elements are visible
// to the XR-tree access path (xr joins, FindAncestors probes); the set's
// catalogued element list and B+-tree are not updated.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	if s.coord != nil {
		return badRequest("the router does not accept inserts; POST to the shard that owns the document")
	}
	q := r.URL.Query()
	b, err := s.backend(q.Get("backend"))
	if err != nil {
		return err
	}
	if b.coll != nil {
		return badRequest("backend %q serves documents; inserts need a catalogued store backend", b.name)
	}
	var req insertRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxInsertBody)).Decode(&req); err != nil {
		return badRequest("bad insert body: %v", err)
	}
	tag := req.Set
	if tag == "" {
		tag = q.Get("set")
	}
	if tag == "" {
		return badRequest("set parameter (or body field) is required")
	}
	if len(req.Elements) == 0 {
		return badRequest("no elements to insert")
	}
	set, err := b.set(tag)
	if err != nil {
		return err
	}
	xr, err := set.XRTree()
	if err != nil {
		return badRequest("set %q was built without an XR-tree access path", tag)
	}
	docID := set.Elements()[0].DocID
	tr := traceFrom(r.Context())
	if tr != nil {
		span := tr.Root().StartSpan(fmt.Sprintf("insert %d elements into %s", len(req.Elements), tag))
		defer span.End()
	}
	ctx := r.Context()
	start := time.Now()
	inserted := 0
	for _, e := range req.Elements {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.DocID == 0 {
			e.DocID = docID
		}
		if err := xr.Insert(e); err != nil {
			// Earlier elements of the batch stay inserted; the count in the
			// error lets the client account for them.
			return badRequest("element %d of %d: %v", inserted+1, len(req.Elements), err)
		}
		inserted++
	}
	writeJSON(w, http.StatusOK, insertResponse{
		Backend:   b.name,
		Set:       tag,
		Inserted:  inserted,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// backendInfo is one entry of /api/v1/backends. In shard mode, Documents
// and DocIDs cover only the documents this shard owns: the inventory is
// the router's placement input, so advertising unowned copies would make
// the router ask for documents the shard will refuse.
type backendInfo struct {
	Name      string   `json:"name"`
	Kind      string   `json:"kind"` // "store" or "documents"
	Sets      []string `json:"sets,omitempty"`
	Tags      []string `json:"tags,omitempty"`
	Documents int      `json:"documents,omitempty"`
	DocIDs    []uint32 `json:"doc_ids,omitempty"`
}

func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	if s.coord != nil {
		s.clusterBackends(w, r)
		return
	}
	s.mu.RLock()
	infos := make([]backendInfo, 0, len(s.order))
	for _, name := range s.order {
		b := s.backends[name]
		info := backendInfo{Name: b.name, Kind: b.kind(), Sets: b.names, Tags: b.tags}
		if b.coll != nil {
			ids := b.coll.DocIDs()
			if owns := s.cfg.Owns; owns != nil {
				owned := make([]uint32, 0, len(ids))
				for _, id := range ids {
					if owns(id) {
						owned = append(owned, id)
					}
				}
				ids = owned
			}
			info.Documents = len(ids)
			info.DocIDs = ids
		}
		infos = append(infos, info)
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, struct {
		Backends []backendInfo `json:"backends"`
	}{infos})
}

// poolJSON is the store-global buffer-pool digest of one backend.
type poolJSON struct {
	BufferHits     int64 `json:"buffer_hits"`
	BufferMisses   int64 `json:"buffer_misses"`
	PhysicalReads  int64 `json:"physical_reads"`
	PhysicalWrites int64 `json:"physical_writes"`
	PageEvictions  int64 `json:"page_evictions"`
	PinnedPages    int   `json:"pinned_pages"`
}

// backendStats is one backend's entry in /api/v1/stats. PinnedPages is
// the live pin count — 0 on a quiesced server; the smoke test asserts
// that canceled queries leave it there.
type backendStats struct {
	Name string   `json:"name"`
	Kind string   `json:"kind"`
	Pool poolJSON `json:"pool"`
}

// statsResponse is the body of /api/v1/stats.
type statsResponse struct {
	Server   MetricsSnapshot `json:"server"`
	Backends []backendStats  `json:"backends"`
}

func (s *Server) statsSnapshot() statsResponse {
	s.mu.RLock()
	backends := make([]backendStats, 0, len(s.order))
	for _, name := range s.order {
		b := s.backends[name]
		ps := b.store.PoolStats()
		backends = append(backends, backendStats{
			Name: b.name,
			Kind: b.kind(),
			Pool: poolJSON{
				BufferHits:     ps.BufferHits,
				BufferMisses:   ps.BufferMisses,
				PhysicalReads:  ps.PhysicalReads,
				PhysicalWrites: ps.PhysicalWrites,
				PageEvictions:  ps.PageEvictions,
				PinnedPages:    b.store.PinnedPages(),
			},
		})
	}
	s.mu.RUnlock()
	return statsResponse{
		Server:   s.met.Snapshot(s.lim.InFlight(), s.lim.Waiting()),
		Backends: backends,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleVars serves the metrics in expvar's JSON-map shape (one top-level
// key per variable) without registering in the process-global expvar
// namespace, so multiple servers coexist in one process (tests).
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"xrtree_serve": s.statsSnapshot()})
}
