package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"xrtree"
	"xrtree/internal/cluster"
	"xrtree/internal/obs"
)

// fleet is a three-shard cluster plus the single-node reference server
// holding the union of the fleet's documents: the setup behind the
// scatter-gather equivalence proof.
type fleet struct {
	router   *httptest.Server // router-mode server over the coordinator
	single   *httptest.Server // one node holding all six documents
	servers  map[string]*Server
	backends map[string]*httptest.Server
	coord    *cluster.Coordinator
}

func rangeOwns(lo, hi uint32) func(uint32) bool {
	return func(id uint32) bool { return id >= lo && id <= hi }
}

// newFleet builds three shards owning DocIds 1-2 / 3-4 / 5-6. Shard a also
// holds a stray, unowned copy of document 3: ownership filtering must keep
// it invisible so the duplicate cannot double-count.
//
// Timeouts are generous throughout: under the race detector on a one-CPU
// machine a scatter-gather request runs many seconds, and these tests
// assert correctness, not latency. Hedging defaults off for the same
// reason (it doubles load without a second CPU to absorb it); the hedging
// machinery has its own unit tests in internal/cluster.
func newFleet(t *testing.T, routerCfg Config, opt cluster.Options) *fleet {
	t.Helper()
	f := &fleet{servers: make(map[string]*Server), backends: make(map[string]*httptest.Server)}

	shard := func(name string, lo, hi uint32, docIDs ...uint32) {
		st := testStore(t)
		s := New(Config{ShardName: name, Owns: rangeOwns(lo, hi), DefaultTimeout: time.Minute})
		var docs []*xrtree.Document
		for _, id := range docIDs {
			docs = append(docs, deptDoc(t, id, int64(id)))
		}
		if err := s.AddDocuments("docs", st, docs...); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.servers[name] = s
		f.backends[name] = ts
	}
	shard("a", 1, 2, 1, 2, 3) // doc 3 present but unowned
	shard("b", 3, 4, 3, 4)
	shard("c", 5, 6, 5, 6)

	st := testStore(t)
	single := New(Config{DefaultTimeout: time.Minute})
	var all []*xrtree.Document
	for id := uint32(1); id <= 6; id++ {
		all = append(all, deptDoc(t, id, int64(id)))
	}
	if err := single.AddDocuments("docs", st, all...); err != nil {
		t.Fatal(err)
	}
	f.single = httptest.NewServer(single.Handler())
	t.Cleanup(f.single.Close)

	ccfg := &cluster.Config{Shards: []cluster.ShardSpec{
		{Name: "a", Addr: f.backends["a"].URL, Lo: 1, Hi: 2, HasRange: true},
		{Name: "b", Addr: f.backends["b"].URL, Lo: 3, Hi: 4, HasRange: true},
		{Name: "c", Addr: f.backends["c"].URL, Lo: 5, Hi: 6, HasRange: true},
	}}
	if opt.SubTimeout == 0 {
		opt.SubTimeout = 30 * time.Second
	}
	if opt.HedgeAfter == 0 {
		opt.HedgeAfter = 30 * time.Second
	}
	if routerCfg.DefaultTimeout == 0 {
		routerCfg.DefaultTimeout = time.Minute
	}
	co, err := cluster.New(ccfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	co.Start()
	t.Cleanup(co.Close)
	f.coord = co

	rs := NewRouter(routerCfg, co)
	f.servers["router"] = rs
	f.router = httptest.NewServer(rs.Handler())
	t.Cleanup(f.router.Close)
	return f
}

// sampleOf decodes the fields the equivalence proof compares: the result
// total and the raw bytes of the sample array.
type sampleOf struct {
	Pairs        int64           `json:"pairs"`
	Matches      int             `json:"matches"`
	Truncated    bool            `json:"truncated"`
	Sample       json.RawMessage `json:"sample"`
	Shards       int             `json:"shards"`
	ShardsFailed []string        `json:"shards_failed"`
	Degraded     bool            `json:"degraded"`
}

func fetchSample(t *testing.T, ts *httptest.Server, path string) (sampleOf, *http.Response) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out sampleOf
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
	return out, resp
}

// TestRouterEquivalence is the acceptance proof of the tentpole: a
// scatter-gather join over three shards returns byte-identical results —
// same pairs, same document order — to the single-node join over the union
// of the fleet's documents, despite the stray duplicate of document 3.
func TestRouterEquivalence(t *testing.T) {
	f := newFleet(t, Config{}, cluster.Options{})

	const join = "/api/v1/join?anc=employee&desc=name&limit=100000"
	want, wresp := fetchSample(t, f.single, join)
	got, gresp := fetchSample(t, f.router, join)
	if wresp.StatusCode != http.StatusOK || gresp.StatusCode != http.StatusOK {
		t.Fatalf("status single=%d router=%d", wresp.StatusCode, gresp.StatusCode)
	}
	if want.Pairs == 0 {
		t.Fatal("reference join found nothing")
	}
	if got.Pairs != want.Pairs || got.Truncated != want.Truncated {
		t.Fatalf("router pairs=%d truncated=%v, single-node %d/%v", got.Pairs, got.Truncated, want.Pairs, want.Truncated)
	}
	if string(got.Sample) != string(want.Sample) {
		t.Fatalf("join sample streams differ:\nrouter: %.200s\nsingle: %.200s", got.Sample, want.Sample)
	}
	if got.Shards != 3 || len(got.ShardsFailed) != 0 || got.Degraded {
		t.Fatalf("router meta = %+v", got)
	}

	const query = "/api/v1/query?path=departments//employee&limit=100000"
	want, _ = fetchSample(t, f.single, query)
	got, _ = fetchSample(t, f.router, query)
	if want.Matches == 0 || got.Matches != want.Matches {
		t.Fatalf("query matches: router %d, single-node %d", got.Matches, want.Matches)
	}
	if string(got.Sample) != string(want.Sample) {
		t.Fatalf("query sample streams differ:\nrouter: %.200s\nsingle: %.200s", got.Sample, want.Sample)
	}

	// The parent-child axis and the truncation path must agree too.
	const pc = "/api/v1/join?anc=employee&desc=name&axis=/&limit=7"
	want, _ = fetchSample(t, f.single, pc)
	got, _ = fetchSample(t, f.router, pc)
	if got.Pairs != want.Pairs || string(got.Sample) != string(want.Sample) || !got.Truncated {
		t.Fatalf("parent-child/limit mismatch: router %d/%v, single-node %d", got.Pairs, got.Truncated, want.Pairs)
	}
}

// TestShardRefusesMisdirectedDocs: explicitly asking a shard for a
// document it holds but does not own is a 421, not a silently served
// duplicate.
func TestShardRefusesMisdirectedDocs(t *testing.T) {
	f := newFleet(t, Config{}, cluster.Options{})
	_, resp := fetchSample(t, f.backends["a"], "/api/v1/join?anc=employee&desc=name&docs=3")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status %d, want 421", resp.StatusCode)
	}
	// The same docs= set against the owner is fine.
	got, resp := fetchSample(t, f.backends["b"], "/api/v1/join?anc=employee&desc=name&docs=3&limit=100000")
	if resp.StatusCode != http.StatusOK || got.Pairs == 0 {
		t.Fatalf("owner refused its own document: status %d pairs %d", resp.StatusCode, got.Pairs)
	}
}

// TestRouterDegradedMode: with one shard killed, partial=1 requests serve
// the healthy shards' results (still in document order, still correct)
// with the casualty in shards_failed; fail-fast requests get 502; nothing
// hangs and no goroutines leak.
func TestRouterDegradedMode(t *testing.T) {
	f := newFleet(t, Config{}, cluster.Options{
		ProbeInterval: 50 * time.Millisecond,
	})

	// Warm path (also primes the inventory cache) and goroutine baseline.
	if _, resp := fetchSample(t, f.router, "/api/v1/join?anc=employee&desc=name"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request failed: %d", resp.StatusCode)
	}
	baseline := runtime.NumGoroutine()

	f.backends["c"].Close()

	const degradedJoin = "/api/v1/join?anc=employee&desc=name&limit=100000&partial=1"
	var got sampleOf
	var resp *http.Response
	for i := 0; i < 5; i++ {
		got, resp = fetchSample(t, f.router, degradedJoin)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded request got status %d", resp.StatusCode)
		}
	}
	if len(got.ShardsFailed) != 1 || got.ShardsFailed[0] != "c" || !got.Degraded {
		t.Fatalf("shards_failed = %v degraded=%v, want [c] true", got.ShardsFailed, got.Degraded)
	}
	if resp.Header.Get("X-XR-Shards-Failed") != "1" {
		t.Fatalf("X-XR-Shards-Failed = %q", resp.Header.Get("X-XR-Shards-Failed"))
	}

	// The healthy shards' slice of the stream is exactly the single-node
	// result over their documents.
	want, _ := fetchSample(t, f.single, "/api/v1/join?anc=employee&desc=name&limit=100000&docs=1-4")
	if got.Pairs != want.Pairs || string(got.Sample) != string(want.Sample) {
		t.Fatalf("degraded results diverge from single-node over docs 1-4: %d vs %d pairs", got.Pairs, want.Pairs)
	}

	// Fail-fast policy: same failure, typed 502.
	_, resp = fetchSample(t, f.router, "/api/v1/join?anc=employee&desc=name")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("fail-fast status = %d, want 502", resp.StatusCode)
	}

	// The router's metrics must show the shard down and stay lint-clean.
	deadline := time.Now().Add(3 * time.Second)
	for {
		mresp, err := f.router.Client().Get(f.router.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, mresp.Body); err != nil {
			t.Fatal(err)
		}
		mresp.Body.Close()
		body := sb.String()
		if problems := obs.PromLint(strings.NewReader(body)); len(problems) != 0 {
			t.Fatalf("router /metrics fails lint:\n%s", strings.Join(problems, "\n"))
		}
		if strings.Contains(body, `xr_cluster_shard_up{shard="c"} 0`) &&
			strings.Contains(body, `xr_cluster_degraded_total`) &&
			strings.Contains(body, `xr_cluster_subrequests_total{shard="a"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard c never marked down on /metrics:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// No goroutine leak: everything spawned per request must settle.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+8 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew %d → %d after degraded traffic", baseline, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRouterTracePropagation: one sampled trace id spans the router and
// every shard it fanned out to.
func TestRouterTracePropagation(t *testing.T) {
	f := newFleet(t, Config{TraceSample: 1}, cluster.Options{})

	req, err := http.NewRequest(http.MethodGet, f.router.URL+"/api/v1/join?anc=employee&desc=name", nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := obs.NewIDSource(7)
	tid := ids.TraceID()
	req.Header.Set("traceparent", obs.Traceparent(tid, ids.SpanID(), true))
	resp, err := f.router.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jr joinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.TraceID != tid.String() {
		t.Fatalf("router trace id %q, want adopted %q", jr.TraceID, tid)
	}

	// The router recorded the scatter span...
	rec := findTrace(t, f.servers["router"], tid.String())
	var scatter bool
	for _, sp := range rec.Spans {
		if strings.HasPrefix(sp.Name, "scatter join") {
			scatter = true
		}
	}
	if !scatter {
		t.Fatalf("router trace has no scatter span: %+v", rec.Spans)
	}
	// ...and every shard adopted the same trace id for its sub-request.
	for _, name := range []string{"a", "b", "c"} {
		findTrace(t, f.servers[name], tid.String())
	}
}
