package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestLimiterFastPathAndCapacity(t *testing.T) {
	l := NewLimiter(2, 0)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	// Saturated with no queue seats: immediate rejection, no blocking.
	if err := l.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated Acquire = %v, want ErrQueueFull", err)
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	l.Release()
	l.Release()
	if mc, mq := l.Capacity(); mc != 2 || mq != 0 {
		t.Fatalf("Capacity = (%d,%d), want (2,0)", mc, mq)
	}
}

func TestLimiterQueueBound(t *testing.T) {
	l := NewLimiter(1, 2)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	// Two waiters fit in the queue; they block until the slot frees.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- l.Acquire(ctx)
		}()
	}
	waitFor(t, func() bool { return l.Waiting() == 2 })

	// A third arrival overflows the queue.
	if err := l.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Acquire = %v, want ErrQueueFull", err)
	}

	// Draining the slot admits both waiters, one at a time.
	l.Release()
	if err := <-errs; err != nil {
		t.Fatalf("first waiter: %v", err)
	}
	l.Release()
	if err := <-errs; err != nil {
		t.Fatalf("second waiter: %v", err)
	}
	wg.Wait()
	l.Release()
	if got := l.Waiting(); got != 0 {
		t.Fatalf("Waiting = %d after drain, want 0", got)
	}
}

func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := NewLimiter(1, 4)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire = %v, want DeadlineExceeded", err)
	}
	if got := l.Waiting(); got != 0 {
		t.Fatalf("Waiting = %d after deadline, want 0", got)
	}
	l.Release()
}

func TestLimiterCanceledBeforeAcquire(t *testing.T) {
	l := NewLimiter(4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Acquire = %v, want Canceled", err)
	}
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0 (no slot claimed)", got)
	}
}

func TestLimiterClampsBounds(t *testing.T) {
	l := NewLimiter(0, -3)
	if mc, mq := l.Capacity(); mc != 1 || mq != 0 {
		t.Fatalf("Capacity = (%d,%d), want clamped (1,0)", mc, mq)
	}
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
