package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xrtree"
	"xrtree/internal/obs"
)

// tracedStoreServer is storeServer with tracing on and a tiny buffer pool,
// so every join performs physical page reads that must show up as span
// attributes.
func tracedStoreServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	st, err := xrtree.NewMemStore(xrtree.StoreOptions{PageSize: 1024, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	doc := deptDoc(t, 1, 42)
	for _, tag := range []string{"department", "employee", "name"} {
		set, err := st.IndexElements(doc.ElementsByTag(tag), xrtree.IndexOptions{})
		if err != nil {
			t.Fatalf("index %s: %v", tag, err)
		}
		if err := st.SaveSet(tag, set); err != nil {
			t.Fatalf("save %s: %v", tag, err)
		}
	}
	s := New(cfg)
	if err := s.AddStore("dept", st); err != nil {
		t.Fatal(err)
	}
	return s
}

func findTrace(t *testing.T, s *Server, id string) *obs.TraceRecord {
	t.Helper()
	for _, rec := range s.Recorder().Snapshot() {
		if rec.TraceID == id {
			return rec
		}
	}
	t.Fatalf("trace %s not in the flight recorder", id)
	return nil
}

// TestTracedJoinEndToEnd is the acceptance check of the tracing tentpole:
// a sampled join yields a span tree in the flight recorder whose leaf
// spans account for the request's page reads and whose root duration is
// the same measurement recorded as EvServeSpan.
func TestTracedJoinEndToEnd(t *testing.T) {
	s := tracedStoreServer(t, Config{TraceSample: 1, TraceSeed: 7})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/api/v1/join?anc=employee&desc=name&alg=xr&stats=1")
	if err != nil {
		t.Fatal(err)
	}
	var jr joinResponse
	decodeBody(t, resp, &jr)
	if jr.TraceID == "" {
		t.Fatal("traced response carries no trace_id")
	}
	tid, _, sampled, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || !sampled || tid.String() != jr.TraceID {
		t.Fatalf("response traceparent %q does not echo trace %s", resp.Header.Get("traceparent"), jr.TraceID)
	}

	rec := findTrace(t, s, jr.TraceID)
	if len(rec.Spans) < 2 {
		t.Fatalf("want a root and a join span, got %d spans", len(rec.Spans))
	}
	if !strings.HasPrefix(rec.Name, "serve ") {
		t.Errorf("root span name %q", rec.Name)
	}

	// Page reads: the trace totals must match the per-request collector
	// delta (stats=1 chains the collector as the trace sink, so both saw
	// the identical event stream), and the span attributes must account
	// for the totals.
	reads := rec.Totals[obs.EvPageRead.String()].Count
	if reads == 0 {
		t.Fatal("no page reads traced despite a 4-page buffer pool")
	}
	if got := jr.Events.Events[obs.EvPageRead.String()].Count; got != reads {
		t.Errorf("request PageRead delta %d, trace totals %d", got, reads)
	}
	var spanReads int64
	for _, sp := range rec.Spans {
		spanReads += sp.Attrs[obs.EvPageRead.String()].Count
	}
	if spanReads != reads {
		t.Errorf("span attributes account for %d page reads, trace saw %d", spanReads, reads)
	}

	// Root duration: the identical value recorded as EvServeSpan. One
	// admitted request ran, so the serving histogram's sum is that value.
	if sum := s.met.col.Snapshot().Events[obs.EvServeSpan.String()].Sum; sum != rec.DurNS {
		t.Errorf("root DurNS %d != EvServeSpan measurement %d", rec.DurNS, sum)
	}
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestTraceparentAdoption: an incoming sampled traceparent forces tracing
// even at sample rate 0, adopting the caller's trace id; an unsampled one
// does not.
func TestTraceparentAdoption(t *testing.T) {
	s := tracedStoreServer(t, Config{TraceSample: 0})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := obs.NewIDSource(11)
	tid, parent := ids.TraceID(), ids.SpanID()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/join?anc=employee&desc=name", nil)
	req.Header.Set("traceparent", obs.Traceparent(tid, parent, true))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var jr joinResponse
	decodeBody(t, resp, &jr)
	if jr.TraceID != tid.String() {
		t.Fatalf("trace id %q, want the propagated %s", jr.TraceID, tid)
	}
	rec := findTrace(t, s, tid.String())
	if rec.RemoteParent != parent.String() {
		t.Errorf("RemoteParent %q, want the caller's span %s", rec.RemoteParent, parent)
	}

	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/join?anc=employee&desc=name", nil)
	req2.Header.Set("traceparent", obs.Traceparent(ids.TraceID(), ids.SpanID(), false))
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var jr2 joinResponse
	decodeBody(t, resp2, &jr2)
	if jr2.TraceID != "" || resp2.Header.Get("traceparent") != "" {
		t.Error("unsampled traceparent at rate 0 still produced a trace")
	}
	if got := s.rec.Stats().Recorded; got != 1 {
		t.Errorf("recorder holds %d traces, want 1", got)
	}
}

// TestSlowTraceQueryablePinned: a request past the slow threshold arrives
// pinned in /debug/traces.
func TestSlowTraceQueryablePinned(t *testing.T) {
	s := tracedStoreServer(t, Config{TraceSample: 1, SlowTrace: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/api/v1/join?anc=employee&desc=name")
	if err != nil {
		t.Fatal(err)
	}
	var jr joinResponse
	decodeBody(t, resp, &jr)

	var tresp tracesResponse
	code, body := getJSON(t, ts, "/debug/traces", &tresp)
	if code != http.StatusOK {
		t.Fatalf("/debug/traces: %d %s", code, body)
	}
	if tresp.Stats.Slow != 1 || tresp.Stats.Recorded != 1 {
		t.Fatalf("recorder stats %+v", tresp.Stats)
	}
	found := false
	for _, rec := range tresp.Traces {
		if rec.TraceID == jr.TraceID {
			found = true
			if !rec.Pinned {
				t.Error("slow trace not pinned")
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from /debug/traces", jr.TraceID)
	}
}

// TestMetricsEndpointLints: the exposition covers the serving counters,
// the event histograms, and the per-backend pool counters, and survives
// the same linter CI runs via xrcheckbench -promlint.
func TestMetricsEndpointLints(t *testing.T) {
	s := tracedStoreServer(t, Config{TraceSample: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if code, body := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name&stats=1", nil); code != http.StatusOK {
			t.Fatalf("join: %d %s", code, body)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"xrtree_serve_requests_total 3",
		`xrtree_pool_buffer_hits_total{backend="dept"}`,
		`xrtree_event_value_bucket{kind="ServeSpan",le="+Inf"}`,
		"xrtree_traces_recorded_total 3",
		"xrtree_serve_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if problems := obs.PromLint(strings.NewReader(body)); len(problems) != 0 {
		t.Fatalf("/metrics fails lint:\n%s\n---\n%s", strings.Join(problems, "\n"), body)
	}
}

// TestQueueDepthSampledBothEnds: the depth histogram gets an admission
// and a completion sample per request, and /api/v1/stats reports the live
// gauge.
func TestQueueDepthSampledBothEnds(t *testing.T) {
	s := tracedStoreServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	for i := 0; i < n; i++ {
		if code, body := getJSON(t, ts, "/api/v1/join?anc=employee&desc=name", nil); code != http.StatusOK {
			t.Fatalf("join: %d %s", code, body)
		}
	}
	if got := s.met.col.Count(obs.EvServeQueueDepth); got != 2*n {
		t.Errorf("queue-depth samples = %d, want %d (admission + completion per request)", got, 2*n)
	}
	var st statsResponse
	code, body := getJSON(t, ts, "/api/v1/stats", &st)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	if st.Server.QueueDepth != 0 {
		t.Errorf("idle queue_depth gauge = %d", st.Server.QueueDepth)
	}
	if !strings.Contains(body, `"queue_depth"`) {
		t.Error("queue_depth absent from /api/v1/stats JSON")
	}
}
