package btree

import (
	"fmt"

	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Insert adds e to the tree. The start position must be unique within the
// indexed set (region starts of distinct elements are distinct by
// construction); inserting a duplicate start returns ErrDuplicate.
//
// Writers serialize on wlatch but never block readers tree-wide: every
// mutation of a reader-reachable page happens under that page's exclusive
// latch, and structural changes follow the B-link split order (populate
// the new right sibling while it is unreachable, then shrink the left
// page and install its right link in one latched write, then update the
// parent — readers that race the parent update recover by moving right).
func (t *Tree) Insert(e xmldoc.Element) (err error) {
	if e.DocID != t.docID {
		return fmt.Errorf("btree: insert of DocID %d into tree for DocID %d", e.DocID, t.docID)
	}
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	defer t.debugPinBalance()()
	commit := t.beginTx()
	defer commit(&err)
	root, h := t.loadRoot()
	promoKey, promoChild, err := t.insertInto(root, h, e)
	if err != nil {
		return err
	}
	if promoChild != pagefile.InvalidPage {
		// Root split: grow the tree. The new root is unreachable until
		// setRoot publishes it, so it needs no latch while being built;
		// readers still descending from the old root reach the new right
		// half through its right link.
		newRootID, data, err := t.fetchNew()
		if err != nil {
			return err
		}
		initInternal(data)
		setIntCount(data, 1)
		setIntChild(data, 0, root)
		setIntKey(data, 0, promoKey)
		setIntChild(data, 1, promoChild)
		if err := t.unpin(newRootID, true); err != nil {
			return err
		}
		t.setRoot(newRootID, h+1)
	}
	t.count.Add(1)
	return t.syncMeta()
}

// insertInto inserts e under page id at the given height (1 = leaf).
// On split it returns the separator key and the new right sibling.
// The writer's descent reads pages without latching: writers are
// serialized, so no one else mutates pages, and concurrent readers only
// copy them.
func (t *Tree) insertInto(id pagefile.PageID, height int, e xmldoc.Element) (uint32, pagefile.PageID, error) {
	data, err := t.fetch(id)
	if err != nil {
		return 0, pagefile.InvalidPage, err
	}
	if height == 1 {
		if !isLeaf(data) {
			t.unpin(id, false)
			return 0, pagefile.InvalidPage, fmt.Errorf("%w: expected leaf at page %d", ErrCorrupt, id)
		}
		return t.insertLeaf(id, data, e)
	}
	ci := intSearch(data, e.Start)
	child := intChild(data, ci)
	t.countNode()
	// Unpin before recursing to keep at most O(1) pins per level... we must
	// re-fetch after the child returns a promotion. Simpler and safe: hold
	// the pin across recursion (pool capacity must exceed tree height).
	promoKey, promoChild, err := t.insertInto(child, height-1, e)
	if err != nil {
		t.unpin(id, false)
		return 0, pagefile.InvalidPage, err
	}
	if promoChild == pagefile.InvalidPage {
		return 0, pagefile.InvalidPage, t.unpin(id, false)
	}
	return t.insertInternalEntry(id, data, ci, promoKey, promoChild)
}

// insertLeaf inserts e into a pinned leaf page, splitting on overflow.
// It consumes the pin.
func (t *Tree) insertLeaf(id pagefile.PageID, data []byte, e xmldoc.Element) (uint32, pagefile.PageID, error) {
	t.countLeaf()
	n := leafCount(data)
	pos := leafSearch(data, e.Start)
	if pos < n && leafKey(data, pos) == e.Start {
		t.unpin(id, false)
		return 0, pagefile.InvalidPage, fmt.Errorf("%w: start %d", ErrDuplicate, e.Start)
	}
	if n < t.leafCap {
		t.pl.Lock(id)
		insertLeafEntry(data, pos, n, e)
		t.pl.Unlock(id)
		return 0, pagefile.InvalidPage, t.unpin(id, true)
	}

	// Split: move the upper half to a new right sibling. The new page is
	// unreachable until the left page's right link is installed, so it is
	// populated completely — entries, chain pointers, high key, and e if e
	// belongs in it — without a latch.
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(id, false)
		return 0, pagefile.InvalidPage, err
	}
	initLeaf(newData)
	mid := n / 2
	moved := n - mid
	copy(newData[leafHeader:], data[leafHeader+mid*xmldoc.EncodedSize:leafHeader+n*xmldoc.EncodedSize])
	setLeafCount(newData, moved)
	oldNext := leafNext(data)
	setLeafNext(newData, oldNext)
	setLeafPrev(newData, id)
	setLeafHigh(newData, leafHigh(data))
	sep := leafKey(newData, 0)
	if e.Start >= sep {
		npos := leafSearch(newData, e.Start)
		insertLeafEntry(newData, npos, moved, e)
	}

	// The one latched write that performs the split: shrink the left page,
	// add e to it if it sorts left, and install the right link and high
	// key together. A reader sees either the full pre-split page or a left
	// half whose high key routes keys ≥ sep through the new right link.
	t.pl.Lock(id)
	setLeafCount(data, mid)
	if e.Start < sep {
		insertLeafEntry(data, pos, mid, e)
	}
	setLeafNext(data, newID)
	setLeafHigh(data, sep)
	t.pl.Unlock(id)

	// Fix the old right neighbor's back pointer (scans only follow next,
	// so this can be its own latched write after the split is visible).
	if oldNext != pagefile.InvalidPage {
		nd, err := t.fetch(oldNext)
		if err == nil {
			t.pl.Lock(oldNext)
			setLeafPrev(nd, newID)
			t.pl.Unlock(oldNext)
			err = t.unpin(oldNext, true)
		}
		if err != nil {
			t.unpin(newID, true)
			t.unpin(id, true)
			return 0, pagefile.InvalidPage, err
		}
	}
	if err := t.unpin(newID, true); err != nil {
		return 0, pagefile.InvalidPage, err
	}
	if err := t.unpin(id, true); err != nil {
		return 0, pagefile.InvalidPage, err
	}
	return sep, newID, nil
}

// insertLeafEntry shifts entries right and writes e at pos. n is the count
// before insertion; the caller guarantees capacity.
func insertLeafEntry(data []byte, pos, n int, e xmldoc.Element) {
	start := leafHeader + pos*xmldoc.EncodedSize
	end := leafHeader + n*xmldoc.EncodedSize
	copy(data[start+xmldoc.EncodedSize:end+xmldoc.EncodedSize], data[start:end])
	e.Encode(data[start:], 0)
	setLeafCount(data, n+1)
}

// insertInternalEntry inserts (key, child) after child index ci in a pinned
// internal page, splitting on overflow. It consumes the pin.
func (t *Tree) insertInternalEntry(id pagefile.PageID, data []byte, ci int, key uint32, child pagefile.PageID) (uint32, pagefile.PageID, error) {
	m := intCount(data)
	if m < t.intCap {
		t.pl.Lock(id)
		insertIntEntry(data, ci, m, key, child)
		t.pl.Unlock(id)
		return 0, pagefile.InvalidPage, t.unpin(id, true)
	}

	// Split the internal node. Gather the m+1 entries logically, find the
	// middle separator to promote, and distribute.
	keys := make([]uint32, 0, m+1)
	childs := make([]pagefile.PageID, 0, m+2)
	childs = append(childs, intChild(data, 0))
	for i := 0; i < m; i++ {
		keys = append(keys, intKey(data, i))
		childs = append(childs, intChild(data, i+1))
	}
	// Insert the new entry at position ci.
	keys = append(keys[:ci], append([]uint32{key}, keys[ci:]...)...)
	childs = append(childs[:ci+1], append([]pagefile.PageID{child}, childs[ci+1:]...)...)

	total := m + 1
	mid := total / 2 // keys[mid] is promoted
	promoted := keys[mid]

	// Populate the new right node while unreachable (as in insertLeaf).
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(id, false)
		return 0, pagefile.InvalidPage, err
	}
	initInternal(newData)
	rightKeys := keys[mid+1:]
	setIntCount(newData, len(rightKeys))
	setIntChild(newData, 0, childs[mid+1])
	for i, k := range rightKeys {
		setIntKey(newData, i, k)
		setIntChild(newData, i+1, childs[mid+2+i])
	}
	setIntNext(newData, intNext(data))
	setIntHigh(newData, intHigh(data))

	// Latched split write: left node keeps keys[0:mid], children[0:mid+1];
	// the promoted key becomes its high key and the right link points at
	// the new node.
	t.pl.Lock(id)
	setIntCount(data, mid)
	setIntChild(data, 0, childs[0])
	for i := 0; i < mid; i++ {
		setIntKey(data, i, keys[i])
		setIntChild(data, i+1, childs[i+1])
	}
	setIntNext(data, newID)
	setIntHigh(data, promoted)
	t.pl.Unlock(id)

	if err := t.unpin(newID, true); err != nil {
		return 0, pagefile.InvalidPage, err
	}
	if err := t.unpin(id, true); err != nil {
		return 0, pagefile.InvalidPage, err
	}
	return promoted, newID, nil
}

// insertIntEntry writes (key, child) as entry ci into an internal page with
// m existing keys and room for one more.
func insertIntEntry(data []byte, ci, m int, key uint32, child pagefile.PageID) {
	start := internalHeader + ci*intEntrySize
	end := internalHeader + m*intEntrySize
	copy(data[start+intEntrySize:end+intEntrySize], data[start:end])
	putU32(data[start:], key)
	putU32(data[start+4:], uint32(child))
	setIntCount(data, m+1)
}

// BulkLoad builds the tree from a start-sorted element slice, packing
// leaves to a fill factor and building internal levels bottom-up. The tree
// must be empty. fill is the target leaf occupancy in (0,1]; 0 means 1.0
// (fully packed, which is what the read-only join experiments use).
func (t *Tree) BulkLoad(es []xmldoc.Element, fill float64) error {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	defer t.debugPinBalance()()
	// Unlogged bulk construction; durability comes from the store's save.
	t.pool.BeginUnlogged()
	defer t.pool.EndUnlogged()
	if n := t.count.Load(); n != 0 {
		return fmt.Errorf("btree: BulkLoad into non-empty tree (%d elements)", n)
	}
	if len(es) == 0 {
		return nil
	}
	if fill <= 0 || fill > 1 {
		fill = 1.0
	}
	perLeaf := int(float64(t.leafCap) * fill)
	if perLeaf < 1 {
		perLeaf = 1
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].Start >= es[i].Start {
			return fmt.Errorf("btree: BulkLoad input not sorted at %d", i)
		}
	}

	// Build the leaf level, reusing the existing (empty) root as first
	// leaf. That page — and everything the leaf chain reaches from it — is
	// visible to concurrent readers, so mutations of already-linked pages
	// are latched; a fresh page is filled unlatched and only then linked.
	root, _ := t.loadRoot()
	type levelEntry struct {
		firstKey uint32
		id       pagefile.PageID
	}
	var level []levelEntry
	var prevID pagefile.PageID
	var prevData []byte
	for off := 0; off < len(es); off += perLeaf {
		n := len(es) - off
		if n > perLeaf {
			n = perLeaf
		}
		var id pagefile.PageID
		var data []byte
		var err error
		if off == 0 {
			id = root
			data, err = t.fetch(id)
		} else {
			id, data, err = t.fetchNew()
		}
		if err != nil {
			return err
		}
		fillPage := func() {
			initLeaf(data)
			for i := 0; i < n; i++ {
				es[off+i].Encode(leafEntry(data, i), 0)
			}
			setLeafCount(data, n)
		}
		if off == 0 {
			t.pl.Lock(id)
			fillPage()
			t.pl.Unlock(id)
		} else {
			fillPage()
			setLeafPrev(data, prevID)
		}
		if prevData != nil {
			t.pl.Lock(prevID)
			setLeafNext(prevData, id)
			setLeafHigh(prevData, es[off].Start)
			t.pl.Unlock(prevID)
			if err := t.unpin(prevID, true); err != nil {
				return err
			}
		}
		level = append(level, levelEntry{firstKey: es[off].Start, id: id})
		prevID, prevData = id, data
	}
	if err := t.unpin(prevID, true); err != nil {
		return err
	}

	// Build internal levels until one node remains. These pages are
	// unreachable until setRoot publishes the top one, so they are built
	// unlatched; the previous node stays pinned so its right link and high
	// key can be set once its right neighbor exists.
	height := 1
	perInt := int(float64(t.intCap) * fill)
	if perInt < 2 {
		perInt = 2
	}
	for len(level) > 1 {
		var next []levelEntry
		prevID = pagefile.InvalidPage
		prevData = nil
		for off := 0; off < len(level); {
			n := len(level) - off
			if n > perInt+1 {
				n = perInt + 1
			}
			// A node with n children has n-1 keys; avoid leaving a
			// dangling single-child node at the end.
			if rem := len(level) - off - n; rem == 1 {
				n--
			}
			id, data, err := t.fetchNew()
			if err != nil {
				return err
			}
			initInternal(data)
			setIntChild(data, 0, level[off].id)
			for i := 1; i < n; i++ {
				setIntKey(data, i-1, level[off+i].firstKey)
				setIntChild(data, i, level[off+i].id)
			}
			setIntCount(data, n-1)
			if prevData != nil {
				setIntNext(prevData, id)
				setIntHigh(prevData, level[off].firstKey)
				if err := t.unpin(prevID, true); err != nil {
					return err
				}
			}
			next = append(next, levelEntry{firstKey: level[off].firstKey, id: id})
			prevID, prevData = id, data
			off += n
		}
		if err := t.unpin(prevID, true); err != nil {
			return err
		}
		level = next
		height++
	}
	t.setRoot(level[0].id, height)
	t.count.Store(int64(len(es)))
	return t.syncMeta()
}
