package btree

import (
	"fmt"
	"sync"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// pageBufs pools the per-iterator leaf-copy buffers; XR joins open
// thousands of short-lived iterators, so Seek/Close must not allocate.
var pageBufs sync.Pool

func getPageBuf(n int) []byte {
	if v := pageBufs.Get(); v != nil {
		if b := *(v.(*[]byte)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putPageBuf(b []byte) {
	if b != nil {
		pageBufs.Put(&b)
	}
}

// readPage copies page id into buf under its shared page latch, so the
// copy cannot be torn by a concurrent writer mutating the frame.
func (t *Tree) readPage(id pagefile.PageID, buf []byte, c *metrics.Counters) error {
	t.pl.RLock(id)
	err := t.pool.FetchCopyTraced(id, buf, c.TraceSink())
	t.pl.RUnlock(id)
	return err
}

// Lookup returns the element whose start equals key, or ErrNotFound, with
// costs attributed to c (nil discards them). Safe for concurrent readers
// and concurrent writers: the descent takes no tree-wide latch.
func (t *Tree) Lookup(key uint32, c *metrics.Counters) (xmldoc.Element, error) {
	buf := getPageBuf(t.pool.File().PageSize())
	defer putPageBuf(buf)
	if err := t.descendToLeafCopy(key, c, buf); err != nil {
		return xmldoc.Element{}, err
	}
	pos := leafSearch(buf, key)
	if pos < leafCount(buf) && leafKey(buf, pos) == key {
		e := leafElem(buf, pos)
		e.DocID = t.docID
		addScan(c, 1)
		return e, nil
	}
	return xmldoc.Element{}, fmt.Errorf("%w: start %d", ErrNotFound, key)
}

// descendToLeafCopy walks from the root to the leaf covering key, copying
// each visited page into buf under its shared page latch; on return buf
// holds the leaf. This is the B-link descent: it holds one page latch at
// a time, never a tree latch, and recovers from concurrent splits by
// following right links whenever key is at or beyond a page's high key —
// including at the leaf level, where a stale parent may have sent us to a
// freshly split left half. The root snapshot may be stale (a concurrent
// root growth is invisible); that is safe because the old root still
// reaches every key through right links.
func (t *Tree) descendToLeafCopy(key uint32, c *metrics.Counters, buf []byte) error {
	id, h := t.loadRoot()
	//xrvet:bounded root-to-leaf descent: h levels plus one right move per
	// concurrent split outrunning us; cancellation is polled per right move.
	for {
		if err := t.readPage(id, buf, c); err != nil {
			return err
		}
		if isLeaf(buf) {
			if moveRight(leafHigh(buf), leafNext(buf), key) {
				if err := c.Interrupted(); err != nil {
					return err
				}
				addLeaf(c)
				id = leafNext(buf)
				continue
			}
			addLeaf(c)
			c.Emit(obs.EvIndexDescend, int64(h))
			return nil
		}
		if buf[0] != internalType {
			return fmt.Errorf("%w: page %d is neither leaf nor internal", ErrCorrupt, id)
		}
		addNode(c)
		if moveRight(intHigh(buf), intNext(buf), key) {
			if err := c.Interrupted(); err != nil {
				return err
			}
			id = intNext(buf)
			continue
		}
		id = intChild(buf, intSearch(buf, key))
	}
}

// Iterator walks leaf entries in ascending start order. It owns a private
// copy of the current leaf, so it holds no pin and no latch between calls:
// any number of iterators — including several on one tree within a single
// goroutine, as self-joins do — coexist with each other and with point
// queries. A scan that races a concurrent Delete's page merge may observe a
// recycled page; that is detected (ErrCorrupt) rather than latched away,
// keeping iterators deadlock-free. Close returns the page copy to a pool.
type Iterator struct {
	t    *Tree
	c    *metrics.Counters
	buf  []byte
	idx  int
	err  error
	done bool
}

// SeekGE returns an iterator positioned at the first element with
// start ≥ key. This is the range-query primitive of the B+ join algorithm.
// Safe for concurrent readers.
func (t *Tree) SeekGE(key uint32, c *metrics.Counters) (*Iterator, error) {
	if err := c.Interrupted(); err != nil {
		return nil, err
	}
	buf := getPageBuf(t.pool.File().PageSize())
	if err := t.descendToLeafCopy(key, c, buf); err != nil {
		putPageBuf(buf)
		return nil, err
	}
	t.hintNextLeaf(c, buf)
	return &Iterator{t: t, c: c, buf: buf, idx: leafSearch(buf, key)}, nil
}

// hintNextLeaf publishes the chained next leaf to the pool's prefetcher,
// so a leaf-chain scan's I/O overlaps the scan of the current leaf.
func (t *Tree) hintNextLeaf(c *metrics.Counters, buf []byte) {
	if t.pool.PrefetchEnabled() {
		if next := leafNext(buf); next != pagefile.InvalidPage {
			t.pool.Prefetch(c, next)
		}
	}
}

// Scan returns an iterator over the whole tree from the smallest start.
func (t *Tree) Scan(c *metrics.Counters) (*Iterator, error) {
	return t.SeekGE(0, c)
}

// Next returns the next element. Each returned element counts as one
// element scanned. Returns false at the end or on error (check Err).
func (it *Iterator) Next() (xmldoc.Element, bool) {
	if it.err != nil || it.done {
		return xmldoc.Element{}, false
	}
	for {
		if it.idx < leafCount(it.buf) {
			e := leafElem(it.buf, it.idx)
			e.DocID = it.t.docID
			it.idx++
			addScan(it.c, 1)
			return e, true
		}
		if !it.advancePage() {
			return xmldoc.Element{}, false
		}
	}
}

// Peek returns the element Next would return without consuming it.
func (it *Iterator) Peek() (xmldoc.Element, bool) {
	if it.err != nil || it.done {
		return xmldoc.Element{}, false
	}
	for it.idx >= leafCount(it.buf) {
		if !it.advancePage() {
			return xmldoc.Element{}, false
		}
	}
	e := leafElem(it.buf, it.idx)
	e.DocID = it.t.docID
	return e, true
}

// advancePage replaces the iterator's leaf copy with the next leaf on the
// chain, latching the next page for the hop.
func (it *Iterator) advancePage() bool {
	next := leafNext(it.buf)
	if next == pagefile.InvalidPage {
		it.done = true
		return false
	}
	// Page boundary: the natural cancellation point of a leaf-chain scan.
	if err := it.c.Interrupted(); err != nil {
		it.err = err
		return false
	}
	t := it.t
	if err := t.readPage(next, it.buf, it.c); err != nil {
		it.err = err
		return false
	}
	if !isLeaf(it.buf) {
		// The page was merged away and recycled between hops.
		it.err = fmt.Errorf("%w: leaf chain broken at page %d by a concurrent structural change", ErrCorrupt, next)
		return false
	}
	t.hintNextLeaf(it.c, it.buf)
	it.idx = 0
	if it.c != nil {
		it.c.LeafReads++
	}
	return true
}

// Err returns the first iteration error.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's page copy. Safe to call multiple times.
func (it *Iterator) Close() error {
	if it.buf != nil {
		putPageBuf(it.buf)
		it.buf = nil
	}
	return it.err
}

// Range returns all elements with start in [lo, hi], a convenience wrapper
// over SeekGE used in tests and examples.
func (t *Tree) Range(lo, hi uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	it, err := t.SeekGE(lo, c)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []xmldoc.Element
	for {
		e, ok := it.Next()
		if !ok || e.Start > hi {
			break
		}
		out = append(out, e)
	}
	return out, it.Err()
}
