package btree

import (
	"fmt"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Lookup returns the element whose start equals key, or ErrNotFound.
func (t *Tree) Lookup(key uint32) (xmldoc.Element, error) {
	id, data, err := t.descendToLeaf(key)
	if err != nil {
		return xmldoc.Element{}, err
	}
	defer t.pool.Unpin(id, false)
	pos := leafSearch(data, key)
	if pos < leafCount(data) && leafKey(data, pos) == key {
		e := leafElem(data, pos)
		e.DocID = t.docID
		t.countScan(1)
		return e, nil
	}
	return xmldoc.Element{}, fmt.Errorf("%w: start %d", ErrNotFound, key)
}

// descendToLeaf walks from the root to the leaf that would contain key,
// returning the pinned leaf. The caller must unpin it.
func (t *Tree) descendToLeaf(key uint32) (pagefile.PageID, []byte, error) {
	id := t.root
	for level := t.h; ; level-- {
		data, err := t.pool.Fetch(id)
		if err != nil {
			return pagefile.InvalidPage, nil, err
		}
		if level == 1 {
			if !isLeaf(data) {
				t.pool.Unpin(id, false)
				return pagefile.InvalidPage, nil, fmt.Errorf("%w: expected leaf at page %d", ErrCorrupt, id)
			}
			t.countLeaf()
			t.c.Emit(obs.EvIndexDescend, int64(t.h))
			return id, data, nil
		}
		if isLeaf(data) {
			t.pool.Unpin(id, false)
			return pagefile.InvalidPage, nil, fmt.Errorf("%w: unexpected leaf at height %d", ErrCorrupt, level)
		}
		t.countNode()
		child := intChild(data, intSearch(data, key))
		if err := t.pool.Unpin(id, false); err != nil {
			return pagefile.InvalidPage, nil, err
		}
		id = child
	}
}

// Iterator walks leaf entries in ascending start order. At most one page is
// pinned at a time; Close releases it.
type Iterator struct {
	t      *Tree
	c      *metrics.Counters
	pageID pagefile.PageID
	data   []byte
	idx    int
	err    error
	done   bool
}

// SeekGE returns an iterator positioned at the first element with
// start ≥ key. This is the range-query primitive of the B+ join algorithm.
// Safe for concurrent readers.
func (t *Tree) SeekGE(key uint32, c *metrics.Counters) (*Iterator, error) {
	id, data, err := t.descendToLeafCounted(key, c)
	if err != nil {
		return nil, err
	}
	it := &Iterator{t: t, c: c, pageID: id, data: data, idx: leafSearch(data, key)}
	return it, nil
}

// descendToLeafCounted is descendToLeaf with costs attributed to an
// explicit counter set instead of the tree-attached sink.
func (t *Tree) descendToLeafCounted(key uint32, c *metrics.Counters) (pagefile.PageID, []byte, error) {
	id := t.root
	for level := t.h; ; level-- {
		data, err := t.pool.Fetch(id)
		if err != nil {
			return pagefile.InvalidPage, nil, err
		}
		if level == 1 {
			if !isLeaf(data) {
				t.pool.Unpin(id, false)
				return pagefile.InvalidPage, nil, fmt.Errorf("%w: expected leaf at page %d", ErrCorrupt, id)
			}
			if c != nil {
				c.LeafReads++
			}
			c.Emit(obs.EvIndexDescend, int64(t.h))
			return id, data, nil
		}
		if isLeaf(data) {
			t.pool.Unpin(id, false)
			return pagefile.InvalidPage, nil, fmt.Errorf("%w: unexpected leaf at height %d", ErrCorrupt, level)
		}
		if c != nil {
			c.IndexNodeReads++
		}
		child := intChild(data, intSearch(data, key))
		if err := t.pool.Unpin(id, false); err != nil {
			return pagefile.InvalidPage, nil, err
		}
		id = child
	}
}

// Scan returns an iterator over the whole tree from the smallest start.
func (t *Tree) Scan(c *metrics.Counters) (*Iterator, error) {
	return t.SeekGE(0, c)
}

// Next returns the next element. Each returned element counts as one
// element scanned. Returns false at the end or on error (check Err).
func (it *Iterator) Next() (xmldoc.Element, bool) {
	if it.err != nil || it.done {
		return xmldoc.Element{}, false
	}
	for {
		if it.idx < leafCount(it.data) {
			e := leafElem(it.data, it.idx)
			e.DocID = it.t.docID
			it.idx++
			if it.c != nil {
				it.c.ElementsScanned++
			}
			return e, true
		}
		next := leafNext(it.data)
		if err := it.t.pool.Unpin(it.pageID, false); err != nil {
			it.err = err
			it.data = nil
			return xmldoc.Element{}, false
		}
		it.data = nil
		if next == pagefile.InvalidPage {
			it.done = true
			return xmldoc.Element{}, false
		}
		data, err := it.t.pool.Fetch(next)
		if err != nil {
			it.err = err
			return xmldoc.Element{}, false
		}
		it.pageID = next
		it.data = data
		it.idx = 0
		if it.c != nil {
			it.c.LeafReads++
		}
	}
}

// Peek returns the element Next would return without consuming it.
func (it *Iterator) Peek() (xmldoc.Element, bool) {
	if it.err != nil || it.done {
		return xmldoc.Element{}, false
	}
	// Advance page boundaries without consuming.
	for it.idx >= leafCount(it.data) {
		next := leafNext(it.data)
		if err := it.t.pool.Unpin(it.pageID, false); err != nil {
			it.err = err
			it.data = nil
			return xmldoc.Element{}, false
		}
		it.data = nil
		if next == pagefile.InvalidPage {
			it.done = true
			return xmldoc.Element{}, false
		}
		data, err := it.t.pool.Fetch(next)
		if err != nil {
			it.err = err
			return xmldoc.Element{}, false
		}
		it.pageID = next
		it.data = data
		it.idx = 0
		if it.c != nil {
			it.c.LeafReads++
		}
	}
	e := leafElem(it.data, it.idx)
	e.DocID = it.t.docID
	return e, true
}

// Err returns the first iteration error.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's pin. Safe to call multiple times.
func (it *Iterator) Close() error {
	if it.data != nil {
		err := it.t.pool.Unpin(it.pageID, false)
		it.data = nil
		if it.err == nil {
			it.err = err
		}
		return err
	}
	return nil
}

// Range returns all elements with start in [lo, hi], a convenience wrapper
// over SeekGE used in tests and examples.
func (t *Tree) Range(lo, hi uint32, c *metrics.Counters) ([]xmldoc.Element, error) {
	it, err := t.SeekGE(lo, c)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []xmldoc.Element
	for {
		e, ok := it.Next()
		if !ok || e.Start > hi {
			break
		}
		out = append(out, e)
	}
	return out, it.Err()
}
