package btree

import (
	"fmt"

	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Delete removes the element with the given start key. It returns
// ErrNotFound if no such element exists.
//
// Deletes follow the same per-page latching as Insert. Rebalancing latches
// the parent and both siblings top-to-bottom, left-to-right (the B-link
// order), so readers see either the pre-rebalance pair or the final one.
// A merge frees the right page after its latch is released; a reader that
// already resolved the freed id detects the recycled page by its type
// byte and reports ErrCorrupt rather than returning wrong data — the same
// contract leaf-chain scans have always had for racing merges.
func (t *Tree) Delete(key uint32) (err error) {
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	defer t.debugPinBalance()()
	commit := t.beginTx()
	defer commit(&err)
	root, h := t.loadRoot()
	if _, err := t.deleteFrom(root, h, key); err != nil {
		return err
	}
	t.count.Add(-1)
	// Shrink the tree if the root is an internal node with a single child.
	for h > 1 {
		data, err := t.fetch(root)
		if err != nil {
			return err
		}
		if intCount(data) > 0 {
			if err := t.unpin(root, false); err != nil {
				return err
			}
			break
		}
		onlyChild := intChild(data, 0)
		if err := t.unpin(root, false); err != nil {
			return err
		}
		old := root
		root, h = onlyChild, h-1
		t.setRoot(root, h)
		if err := t.free(old); err != nil {
			return err
		}
	}
	return t.syncMeta()
}

func (t *Tree) leafMin() int { return t.leafCap / 2 }
func (t *Tree) intMin() int  { return t.intCap / 2 }

// deleteFrom removes key from the subtree rooted at id (height 1 = leaf).
// It reports whether the node underflowed below its minimum occupancy.
func (t *Tree) deleteFrom(id pagefile.PageID, height int, key uint32) (bool, error) {
	data, err := t.fetch(id)
	if err != nil {
		return false, err
	}
	if height == 1 {
		t.countLeaf()
		n := leafCount(data)
		pos := leafSearch(data, key)
		if pos >= n || leafKey(data, pos) != key {
			t.unpin(id, false)
			return false, fmt.Errorf("%w: start %d", ErrNotFound, key)
		}
		t.pl.Lock(id)
		removeLeafEntry(data, pos, n)
		t.pl.Unlock(id)
		under := leafCount(data) < t.leafMin()
		return under, t.unpin(id, true)
	}

	t.countNode()
	ci := intSearch(data, key)
	child := intChild(data, ci)
	childUnder, err := t.deleteFrom(child, height-1, key)
	if err != nil {
		t.unpin(id, false)
		return false, err
	}
	if !childUnder {
		return false, t.unpin(id, false)
	}
	if err := t.rebalanceChild(id, data, ci, height-1); err != nil {
		t.unpin(id, true)
		return false, err
	}
	m := intCount(data)
	return m < t.intMin(), t.unpin(id, true)
}

// rebalanceChild restores minimum occupancy of the child at index ci of the
// pinned internal page data (page id), whose children live at childHeight.
func (t *Tree) rebalanceChild(id pagefile.PageID, data []byte, ci int, childHeight int) error {
	m := intCount(data)
	// Prefer borrowing from / merging with the left sibling; fall back to
	// the right sibling when ci is the leftmost child.
	if ci > 0 {
		return t.rebalancePair(id, data, ci-1, childHeight)
	}
	if ci < m {
		return t.rebalancePair(id, data, ci, childHeight)
	}
	// Single-child node: nothing to rebalance against (only possible at a
	// root that is about to shrink).
	return nil
}

// rebalancePair fixes the pair of children at indexes li and li+1 separated
// by parent key li. One of them is known to be under minimum. The whole
// rebalance — parent separator rewrite included — happens inside one latch
// bracket acquired parent, then left child, then right child, so a reader
// descending through the parent never sees a separator pointing at a
// half-rebalanced pair.
func (t *Tree) rebalancePair(parentID pagefile.PageID, parent []byte, li int, childHeight int) error {
	leftID := intChild(parent, li)
	rightID := intChild(parent, li+1)
	left, err := t.fetch(leftID)
	if err != nil {
		return err
	}
	right, err := t.fetch(rightID)
	if err != nil {
		t.unpin(leftID, false)
		return err
	}

	t.pl.Lock(parentID)
	t.pl.LockRight(leftID)
	t.pl.LockRight(rightID)
	var merged bool
	if childHeight == 1 {
		merged, err = t.rebalanceLeaves(parent, li, leftID, left, rightID, right)
	} else {
		merged, err = t.rebalanceInternals(parent, li, left, right)
	}
	t.pl.Unlock(rightID)
	t.pl.Unlock(leftID)
	t.pl.Unlock(parentID)

	if err != nil {
		t.unpin(leftID, true)
		t.unpin(rightID, true)
		return err
	}
	if err := t.unpin(leftID, true); err != nil {
		t.unpin(rightID, true)
		return err
	}
	if merged {
		// The right page leaves the tree; free it only after its latch is
		// released (a blocked reader re-checks the page type and errors).
		return t.discard(rightID)
	}
	return t.unpin(rightID, true)
}

// rebalanceLeaves redistributes or merges two sibling leaves, maintaining
// their B-link high keys. Called with all three page latches held; reports
// whether the right page was merged away. Pins stay with the caller.
func (t *Tree) rebalanceLeaves(parent []byte, li int, leftID pagefile.PageID, left []byte, rightID pagefile.PageID, right []byte) (bool, error) {
	ln, rn := leafCount(left), leafCount(right)
	min := t.leafMin()
	switch {
	case ln+rn <= t.leafCap:
		// Merge right into left: left absorbs right's entries, chain link,
		// and high key.
		copy(left[leafHeader+ln*xmldoc.EncodedSize:], right[leafHeader:leafHeader+rn*xmldoc.EncodedSize])
		setLeafCount(left, ln+rn)
		next := leafNext(right)
		setLeafNext(left, next)
		setLeafHigh(left, leafHigh(right))
		if next != pagefile.InvalidPage {
			nd, err := t.fetch(next)
			if err != nil {
				return false, err
			}
			t.pl.LockRight(next)
			setLeafPrev(nd, leftID)
			t.pl.Unlock(next)
			if err := t.unpin(next, true); err != nil {
				return false, err
			}
		}
		removeIntEntry(parent, li, intCount(parent))
		return true, nil

	case ln < min:
		// Borrow the first entry of right.
		e := leafElem(right, 0)
		removeLeafEntry(right, 0, rn)
		insertLeafEntry(left, ln, ln, e)
		sep := leafKey(right, 0)
		setIntKey(parent, li, sep)
		setLeafHigh(left, sep)

	default:
		// Borrow the last entry of left.
		e := leafElem(left, ln-1)
		setLeafCount(left, ln-1)
		insertLeafEntry(right, 0, rn, e)
		setIntKey(parent, li, e.Start)
		setLeafHigh(left, e.Start)
	}
	return false, nil
}

// rebalanceInternals redistributes or merges two sibling internal nodes
// through the parent separator at index li, maintaining right links and
// high keys. Called with all three page latches held; reports whether the
// right page was merged away. Pins stay with the caller.
func (t *Tree) rebalanceInternals(parent []byte, li int, left, right []byte) (bool, error) {
	lm, rm := intCount(left), intCount(right)
	sep := intKey(parent, li)
	min := t.intMin()
	switch {
	case lm+rm+1 <= t.intCap:
		// Merge: left ++ sep ++ right; left absorbs right's link and high.
		setIntKey(left, lm, sep)
		setIntChild(left, lm+1, intChild(right, 0))
		for i := 0; i < rm; i++ {
			setIntKey(left, lm+1+i, intKey(right, i))
			setIntChild(left, lm+2+i, intChild(right, i+1))
		}
		setIntCount(left, lm+rm+1)
		setIntNext(left, intNext(right))
		setIntHigh(left, intHigh(right))
		removeIntEntry(parent, li, intCount(parent))
		return true, nil

	case lm < min:
		// Rotate left: sep moves down to left, right's first key moves up.
		newSep := intKey(right, 0)
		setIntKey(left, lm, sep)
		setIntChild(left, lm+1, intChild(right, 0))
		setIntCount(left, lm+1)
		setIntKey(parent, li, newSep)
		setIntChild(right, 0, intChild(right, 1))
		removeIntEntry(right, 0, rm)
		setIntHigh(left, newSep)

	default:
		// Rotate right: left's last key moves up, sep moves down to right.
		// shiftIntRight moves right's old child 0 into the child-1 slot and
		// opens key 0 / child 0 for the incoming entry.
		newSep := intKey(left, lm-1)
		shiftIntRight(right, rm)
		setIntKey(right, 0, sep)
		setIntCount(right, rm+1)
		setIntKey(parent, li, newSep)
		setIntChild(right, 0, intChild(left, lm))
		setIntCount(left, lm-1)
		setIntHigh(left, newSep)
	}
	return false, nil
}

// removeLeafEntry deletes entry pos from a leaf with n entries.
func removeLeafEntry(data []byte, pos, n int) {
	start := leafHeader + pos*xmldoc.EncodedSize
	end := leafHeader + n*xmldoc.EncodedSize
	copy(data[start:], data[start+xmldoc.EncodedSize:end])
	setLeafCount(data, n-1)
}

// removeIntEntry deletes separator li and the child to its right from an
// internal page with m keys.
func removeIntEntry(data []byte, li, m int) {
	start := internalHeader + li*intEntrySize
	end := internalHeader + m*intEntrySize
	copy(data[start:], data[start+intEntrySize:end])
	setIntCount(data, m-1)
}

// shiftIntRight makes room for one entry at the front of an internal page
// with m keys: entries move one slot right and child pointers shift so that
// old child i becomes child i+1. Child 0 and key 0 are left for the caller
// to fill.
func shiftIntRight(data []byte, m int) {
	// Move the key/child entry array right by one slot.
	start := internalHeader
	end := internalHeader + m*intEntrySize
	copy(data[start+intEntrySize:end+intEntrySize], data[start:end])
	// Old child0 becomes the child of the (new) first entry.
	putU32(data[internalHeader+4:], getU32(data[offIntChild0:]))
}
