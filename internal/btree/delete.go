package btree

import (
	"fmt"

	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Delete removes the element with the given start key. It returns
// ErrNotFound if no such element exists.
func (t *Tree) Delete(key uint32) (err error) {
	t.latch.Lock()
	defer t.latch.Unlock()
	defer t.debugPinBalance()()
	commit := t.beginTx()
	defer commit(&err)
	if _, err := t.deleteFrom(t.root, t.h, key); err != nil {
		return err
	}
	t.count--
	// Shrink the tree if the root is an internal node with a single child.
	for t.h > 1 {
		data, err := t.fetch(t.root)
		if err != nil {
			return err
		}
		if intCount(data) > 0 {
			if err := t.unpin(t.root, false); err != nil {
				return err
			}
			break
		}
		onlyChild := intChild(data, 0)
		if err := t.unpin(t.root, false); err != nil {
			return err
		}
		old := t.root
		t.root = onlyChild
		t.h--
		if err := t.free(old); err != nil {
			return err
		}
	}
	return t.syncMeta()
}

func (t *Tree) leafMin() int { return t.leafCap / 2 }
func (t *Tree) intMin() int  { return t.intCap / 2 }

// deleteFrom removes key from the subtree rooted at id (height 1 = leaf).
// It reports whether the node underflowed below its minimum occupancy.
func (t *Tree) deleteFrom(id pagefile.PageID, height int, key uint32) (bool, error) {
	data, err := t.fetch(id)
	if err != nil {
		return false, err
	}
	if height == 1 {
		t.countLeaf()
		n := leafCount(data)
		pos := leafSearch(data, key)
		if pos >= n || leafKey(data, pos) != key {
			t.unpin(id, false)
			return false, fmt.Errorf("%w: start %d", ErrNotFound, key)
		}
		removeLeafEntry(data, pos, n)
		under := leafCount(data) < t.leafMin()
		return under, t.unpin(id, true)
	}

	t.countNode()
	ci := intSearch(data, key)
	child := intChild(data, ci)
	childUnder, err := t.deleteFrom(child, height-1, key)
	if err != nil {
		t.unpin(id, false)
		return false, err
	}
	if !childUnder {
		return false, t.unpin(id, false)
	}
	if err := t.rebalanceChild(data, ci, height-1); err != nil {
		t.unpin(id, true)
		return false, err
	}
	m := intCount(data)
	return m < t.intMin(), t.unpin(id, true)
}

// rebalanceChild restores minimum occupancy of the child at index ci of the
// pinned internal page data, whose children live at childHeight.
func (t *Tree) rebalanceChild(data []byte, ci int, childHeight int) error {
	m := intCount(data)
	// Prefer borrowing from / merging with the left sibling; fall back to
	// the right sibling when ci is the leftmost child.
	if ci > 0 {
		return t.rebalancePair(data, ci-1, childHeight)
	}
	if ci < m {
		return t.rebalancePair(data, ci, childHeight)
	}
	// Single-child node: nothing to rebalance against (only possible at a
	// root that is about to shrink).
	return nil
}

// rebalancePair fixes the pair of children at indexes li and li+1 separated
// by parent key li. One of them is known to be under minimum.
func (t *Tree) rebalancePair(parent []byte, li int, childHeight int) error {
	leftID := intChild(parent, li)
	rightID := intChild(parent, li+1)
	left, err := t.fetch(leftID)
	if err != nil {
		return err
	}
	right, err := t.fetch(rightID)
	if err != nil {
		t.unpin(leftID, false)
		return err
	}

	if childHeight == 1 {
		err = t.rebalanceLeaves(parent, li, leftID, left, rightID, right)
	} else {
		err = t.rebalanceInternals(parent, li, leftID, left, rightID, right)
	}
	return err
}

// rebalanceLeaves redistributes or merges two sibling leaves. Consumes both
// pins.
func (t *Tree) rebalanceLeaves(parent []byte, li int, leftID pagefile.PageID, left []byte, rightID pagefile.PageID, right []byte) error {
	ln, rn := leafCount(left), leafCount(right)
	min := t.leafMin()
	switch {
	case ln+rn <= t.leafCap:
		// Merge right into left.
		copy(left[leafHeader+ln*xmldoc.EncodedSize:], right[leafHeader:leafHeader+rn*xmldoc.EncodedSize])
		setLeafCount(left, ln+rn)
		next := leafNext(right)
		setLeafNext(left, next)
		if next != pagefile.InvalidPage {
			nd, err := t.fetch(next)
			if err != nil {
				t.unpin(leftID, true)
				t.unpin(rightID, false)
				return err
			}
			setLeafPrev(nd, leftID)
			if err := t.unpin(next, true); err != nil {
				t.unpin(leftID, true)
				t.unpin(rightID, false)
				return err
			}
		}
		removeIntEntry(parent, li, intCount(parent))
		if err := t.unpin(leftID, true); err != nil {
			t.unpin(rightID, false)
			return err
		}
		return t.discard(rightID)

	case ln < min:
		// Borrow the first entry of right.
		e := leafElem(right, 0)
		removeLeafEntry(right, 0, rn)
		insertLeafEntry(left, ln, ln, e)
		setIntKey(parent, li, leafKey(right, 0))

	default:
		// Borrow the last entry of left.
		e := leafElem(left, ln-1)
		setLeafCount(left, ln-1)
		insertLeafEntry(right, 0, rn, e)
		setIntKey(parent, li, e.Start)
	}
	if err := t.unpin(leftID, true); err != nil {
		t.unpin(rightID, true)
		return err
	}
	return t.unpin(rightID, true)
}

// rebalanceInternals redistributes or merges two sibling internal nodes
// through the parent separator at index li. Consumes both pins.
func (t *Tree) rebalanceInternals(parent []byte, li int, leftID pagefile.PageID, left []byte, rightID pagefile.PageID, right []byte) error {
	lm, rm := intCount(left), intCount(right)
	sep := intKey(parent, li)
	min := t.intMin()
	switch {
	case lm+rm+1 <= t.intCap:
		// Merge: left ++ sep ++ right.
		setIntKey(left, lm, sep)
		setIntChild(left, lm+1, intChild(right, 0))
		for i := 0; i < rm; i++ {
			setIntKey(left, lm+1+i, intKey(right, i))
			setIntChild(left, lm+2+i, intChild(right, i+1))
		}
		setIntCount(left, lm+rm+1)
		removeIntEntry(parent, li, intCount(parent))
		if err := t.unpin(leftID, true); err != nil {
			t.unpin(rightID, false)
			return err
		}
		return t.discard(rightID)

	case lm < min:
		// Rotate left: sep moves down to left, right's first key moves up.
		setIntKey(left, lm, sep)
		setIntChild(left, lm+1, intChild(right, 0))
		setIntCount(left, lm+1)
		setIntKey(parent, li, intKey(right, 0))
		setIntChild(right, 0, intChild(right, 1))
		removeIntEntry(right, 0, rm)

	default:
		// Rotate right: left's last key moves up, sep moves down to right.
		// shiftIntRight moves right's old child 0 into the child-1 slot and
		// opens key 0 / child 0 for the incoming entry.
		shiftIntRight(right, rm)
		setIntKey(right, 0, sep)
		setIntCount(right, rm+1)
		setIntKey(parent, li, intKey(left, lm-1))
		setIntChild(right, 0, intChild(left, lm))
		setIntCount(left, lm-1)
	}
	if err := t.unpin(leftID, true); err != nil {
		t.unpin(rightID, true)
		return err
	}
	return t.unpin(rightID, true)
}

// removeLeafEntry deletes entry pos from a leaf with n entries.
func removeLeafEntry(data []byte, pos, n int) {
	start := leafHeader + pos*xmldoc.EncodedSize
	end := leafHeader + n*xmldoc.EncodedSize
	copy(data[start:], data[start+xmldoc.EncodedSize:end])
	setLeafCount(data, n-1)
}

// removeIntEntry deletes separator li and the child to its right from an
// internal page with m keys.
func removeIntEntry(data []byte, li, m int) {
	start := internalHeader + li*intEntrySize
	end := internalHeader + m*intEntrySize
	copy(data[start:], data[start+intEntrySize:end])
	setIntCount(data, m-1)
}

// shiftIntRight makes room for one entry at the front of an internal page
// with m keys: entries move one slot right and child pointers shift so that
// old child i becomes child i+1. Child 0 and key 0 are left for the caller
// to fill.
func shiftIntRight(data []byte, m int) {
	// Move the key/child entry array right by one slot.
	start := internalHeader
	end := internalHeader + m*intEntrySize
	copy(data[start+intEntrySize:end+intEntrySize], data[start:end])
	// Old child0 becomes the child of the (new) first entry.
	putU32(data[internalHeader+4:], getU32(data[offIntChild0:]))
}
