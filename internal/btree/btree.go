// Package btree implements the paged B+-tree used by the Anc_Des_B+
// structural-join baseline [Chien et al., VLDB 2002] that the paper
// compares against. It indexes region-encoded elements on their start
// position: leaf pages hold full element entries sorted by start and are
// linked left to right; internal pages hold separator keys and child
// pointers.
//
// The tree is dynamic (insert and delete with split, redistribution and
// merge) and all page access goes through the buffer pool so experiments
// observe page misses. Iterators support SeekGE, the primitive the B+ join
// algorithm uses to skip descendants ("range queries"), and sequential
// scans over the leaf chain.
//
// # Concurrency
//
// The tree uses the B-link protocol (Lehman–Yao): every index page
// carries a high key (the lowest key of its right sibling; 0 = +∞) and a
// right-sibling link in its header. Readers never take a tree-wide latch:
// a descent holds one per-page shared latch at a time (see
// internal/platch) just long enough to copy the page, and recovers from
// a concurrent split by moving right whenever the search key is at or
// beyond the page's high key. Writers serialize against each other on
// wlatch (the WAL transaction state is per-tree) but block readers only
// page by page: every byte mutation of a reader-reachable page happens
// inside that page's exclusive latch, and a split populates the new
// right sibling before the one latched write that shrinks the left page
// and installs its right-link — so readers observe either the pre-split
// page or a well-formed left half whose high key sends them right, never
// a torn page. Iterators work on private leaf copies and re-latch only
// for the hop to the next leaf. Query paths attribute costs to
// caller-supplied counters, never to the shared tree sink.
package btree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/platch"
	"xrtree/internal/xmldoc"
)

// Page layouts.
//
// Meta page (one per tree):
//
//	0: magic u32 | 4: root u32 | 8: height u32 | 12: count u32 | 16: docID u32
//
// Leaf page:
//
//	0: type u8 (=leafType) | 2: count u16 | 4: next u32 | 8: prev u32
//	12: highKey u32 (lowest key of the right sibling; 0 = +∞)
//	16: entries, count × xmldoc.EncodedSize, sorted by start
//
// Internal page:
//
//	0: type u8 (=internalType) | 2: count u16 (number of keys m)
//	4: child0 u32 | 8: next u32 (right sibling) | 12: highKey u32
//	16: entries, m × 8 bytes: key u32 | child u32
//	    (child of entry i is the subtree with keys ≥ key i)
//
// The high key and right link are the B-link fields: a page covers keys
// strictly below its high key, and a reader finding its search key at or
// beyond the high key follows the right link (for leaves, the existing
// chain's next pointer doubles as the right link).
const (
	metaMagic = 0x42545230 // "BTR0"

	leafType     = 1
	internalType = 2

	leafHeader     = 16
	offLeafCount   = 2
	offLeafNext    = 4
	offLeafPrev    = 8
	offLeafHigh    = 12
	internalHeader = 16
	offIntCount    = 2
	offIntChild0   = 4
	offIntNext     = 8
	offIntHigh     = 12
	intEntrySize   = 8
)

// Errors returned by the tree.
var (
	ErrNotFound  = errors.New("btree: element not found")
	ErrDuplicate = errors.New("btree: duplicate start key")
	ErrCorrupt   = errors.New("btree: corrupt page")
)

// Tree is a disk-resident B+-tree over elements keyed by Start.
type Tree struct {
	pool  *bufferpool.Pool
	meta  pagefile.PageID
	docID uint32

	// rootH packs the root page id (high 32 bits) and the tree height
	// (low 32 bits; 1 = root is a leaf) into one word so lock-free
	// readers start every descent from a consistent pair. Stale values
	// are safe: an old root still reaches every key via right-links.
	rootH atomic.Uint64

	count atomic.Int64

	leafCap int // max elements per leaf
	intCap  int // max keys per internal node

	// wlatch serializes writers (Insert, Delete, BulkLoad) against each
	// other; the per-mutation WAL transaction state below is per-tree.
	// Readers never take it — they synchronize with writers through the
	// per-page latches in pl.
	wlatch sync.Mutex

	// pl holds the per-page latches of the B-link protocol: readers
	// latch one page shared while copying it; writers latch a page
	// exclusively for each byte mutation of a reader-reachable page.
	pl *platch.Table

	// tx is the WAL transaction of the mutation in flight, nil outside one.
	// Guarded by wlatch (see the core package's twin for details).
	tx *bufferpool.Tx

	c *metrics.Counters // optional counter sink, used by write paths only
}

// loadRoot returns a consistent (root page, height) snapshot.
func (t *Tree) loadRoot() (pagefile.PageID, int) {
	v := t.rootH.Load()
	return pagefile.PageID(v >> 32), int(uint32(v))
}

// setRoot publishes a new (root page, height) pair. Writer-only; the new
// root must be fully populated before the call.
func (t *Tree) setRoot(id pagefile.PageID, h int) {
	t.rootH.Store(uint64(id)<<32 | uint64(uint32(h)))
}

// The fetch/unpin wrappers route page accesses through the in-flight WAL
// transaction when one exists; otherwise they are the plain pool calls.

func (t *Tree) fetch(id pagefile.PageID) ([]byte, error) {
	return t.pool.FetchHeld(t.tx, id)
}

func (t *Tree) fetchNew() (pagefile.PageID, []byte, error) {
	return t.pool.FetchNewHeld(t.tx)
}

func (t *Tree) unpin(id pagefile.PageID, dirty bool) error {
	return t.pool.UnpinTx(t.tx, id, dirty)
}

func (t *Tree) discard(id pagefile.PageID) error {
	return t.pool.DiscardTx(t.tx, id)
}

func (t *Tree) free(id pagefile.PageID) error {
	return t.pool.FreeTx(t.tx, id)
}

// beginTx starts a WAL transaction for one mutation and returns its
// commit function, to be deferred with the mutation's named error.
func (t *Tree) beginTx() func(*error) {
	t.tx = t.pool.Begin()
	return func(errp *error) {
		tx := t.tx
		t.tx = nil
		if cerr := t.pool.CommitTx(tx); cerr != nil && *errp == nil {
			*errp = cerr
		}
	}
}

// New creates an empty tree whose pages come from pool's file.
func New(pool *bufferpool.Pool, docID uint32) (*Tree, error) {
	t := &Tree{pool: pool, docID: docID, pl: platch.NewTable()}
	t.computeCaps()
	metaID, metaData, err := pool.FetchNew()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	rootID, rootData, err := pool.FetchNew()
	if err != nil {
		pool.Unpin(metaID, true)
		return nil, err
	}
	initLeaf(rootData)
	if err := pool.Unpin(rootID, true); err != nil {
		pool.Unpin(metaID, true) // best-effort: the first error propagates
		return nil, err
	}
	t.setRoot(rootID, 1)
	putU32(metaData[0:], metaMagic)
	t.writeMeta(metaData)
	if err := pool.Unpin(metaID, true); err != nil {
		return nil, err
	}
	return t, nil
}

// Open reattaches to a tree previously created by New in pool's file.
func Open(pool *bufferpool.Pool, meta pagefile.PageID) (*Tree, error) {
	t := &Tree{pool: pool, meta: meta, pl: platch.NewTable()}
	t.computeCaps()
	data, err := pool.Fetch(meta)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(meta, false)
	if getU32(data[0:]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	t.setRoot(pagefile.PageID(getU32(data[4:])), int(getU32(data[8:])))
	t.count.Store(int64(getU32(data[12:])))
	t.docID = getU32(data[16:])
	return t, nil
}

func (t *Tree) computeCaps() {
	ps := t.pool.File().PageSize()
	t.leafCap = (ps - leafHeader) / xmldoc.EncodedSize
	t.intCap = (ps - internalHeader) / intEntrySize
	if t.leafCap < 2 || t.intCap < 3 {
		panic(fmt.Sprintf("btree: page size %d too small", ps))
	}
}

func (t *Tree) syncMeta() error {
	data, err := t.fetch(t.meta)
	if err != nil {
		return err
	}
	t.writeMeta(data)
	return t.unpin(t.meta, true)
}

func (t *Tree) writeMeta(data []byte) {
	root, h := t.loadRoot()
	putU32(data[4:], uint32(root))
	putU32(data[8:], uint32(h))
	putU32(data[12:], uint32(t.count.Load()))
	putU32(data[16:], t.docID)
}

// Meta returns the meta page id, the handle needed by Open.
func (t *Tree) Meta() pagefile.PageID { return t.meta }

// Len returns the number of elements in the tree.
func (t *Tree) Len() int { return int(t.count.Load()) }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { _, h := t.loadRoot(); return h }

// DocID returns the document id of the indexed set.
func (t *Tree) DocID() uint32 { return t.docID }

// SetCounters directs cost accounting to c (nil detaches).
func (t *Tree) SetCounters(c *metrics.Counters) { t.c = c }

func (t *Tree) countNode() {
	if t.c != nil {
		t.c.IndexNodeReads++
	}
}

func (t *Tree) countLeaf() {
	if t.c != nil {
		t.c.LeafReads++
	}
}

func (t *Tree) countScan(n int) {
	if t.c != nil {
		t.c.ElementsScanned += int64(n)
	}
}

// The add* helpers attribute costs to an explicit counter set; query paths
// use them (instead of the tree-attached sink) so concurrent readers never
// share mutable counter state.
func addNode(c *metrics.Counters) {
	if c != nil {
		c.IndexNodeReads++
	}
}

func addLeaf(c *metrics.Counters) {
	if c != nil {
		c.LeafReads++
	}
}

func addScan(c *metrics.Counters, n int64) {
	if c != nil {
		c.ElementsScanned += n
	}
}

// --- page helpers -------------------------------------------------------

func initLeaf(data []byte) {
	for i := range data[:leafHeader] {
		data[i] = 0
	}
	data[0] = leafType
	putU32(data[offLeafNext:], uint32(pagefile.InvalidPage))
	putU32(data[offLeafPrev:], uint32(pagefile.InvalidPage))
}

func initInternal(data []byte) {
	for i := range data[:internalHeader] {
		data[i] = 0
	}
	data[0] = internalType
	putU32(data[offIntNext:], uint32(pagefile.InvalidPage))
}

func leafCount(data []byte) int    { return int(getU16(data[offLeafCount:])) }
func intCount(data []byte) int     { return int(getU16(data[offIntCount:])) }
func isLeaf(data []byte) bool      { return data[0] == leafType }
func setLeafCount(d []byte, n int) { putU16(d[offLeafCount:], uint16(n)) }
func setIntCount(d []byte, n int)  { putU16(d[offIntCount:], uint16(n)) }

func leafEntry(data []byte, i int) []byte {
	off := leafHeader + i*xmldoc.EncodedSize
	return data[off : off+xmldoc.EncodedSize]
}

func leafElem(data []byte, i int) xmldoc.Element {
	e, _ := xmldoc.DecodeElement(leafEntry(data, i))
	return e
}

func leafKey(data []byte, i int) uint32 { return getU32(leafEntry(data, i)) }

func leafNext(data []byte) pagefile.PageID     { return pagefile.PageID(getU32(data[offLeafNext:])) }
func leafPrev(data []byte) pagefile.PageID     { return pagefile.PageID(getU32(data[offLeafPrev:])) }
func setLeafNext(d []byte, id pagefile.PageID) { putU32(d[offLeafNext:], uint32(id)) }
func setLeafPrev(d []byte, id pagefile.PageID) { putU32(d[offLeafPrev:], uint32(id)) }

// The high key is the lowest key of the page's right sibling; 0 means +∞
// (rightmost page at its level). A reader whose search key is ≥ the high
// key moves right. For leaves the chain's next pointer is the right link.
func leafHigh(data []byte) uint32             { return getU32(data[offLeafHigh:]) }
func setLeafHigh(d []byte, k uint32)          { putU32(d[offLeafHigh:], k) }
func intNext(data []byte) pagefile.PageID     { return pagefile.PageID(getU32(data[offIntNext:])) }
func setIntNext(d []byte, id pagefile.PageID) { putU32(d[offIntNext:], uint32(id)) }
func intHigh(data []byte) uint32              { return getU32(data[offIntHigh:]) }
func setIntHigh(d []byte, k uint32)           { putU32(d[offIntHigh:], k) }

// moveRight reports whether a B-link reader positioned at a page with the
// given high key and right link must follow the link to find key.
func moveRight(high uint32, next pagefile.PageID, key uint32) bool {
	return high != 0 && key >= high && next != pagefile.InvalidPage
}

func intKey(data []byte, i int) uint32 {
	return getU32(data[internalHeader+i*intEntrySize:])
}

func setIntKey(data []byte, i int, k uint32) {
	putU32(data[internalHeader+i*intEntrySize:], k)
}

// intChild returns child pointer i (0..m). Child 0 is stored separately.
func intChild(data []byte, i int) pagefile.PageID {
	if i == 0 {
		return pagefile.PageID(getU32(data[offIntChild0:]))
	}
	return pagefile.PageID(getU32(data[internalHeader+(i-1)*intEntrySize+4:]))
}

func setIntChild(data []byte, i int, id pagefile.PageID) {
	if i == 0 {
		putU32(data[offIntChild0:], uint32(id))
		return
	}
	putU32(data[internalHeader+(i-1)*intEntrySize+4:], uint32(id))
}

// leafSearch returns the index of the first entry with start ≥ key.
func leafSearch(data []byte, key uint32) int {
	lo, hi := 0, leafCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(data, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intSearch returns the child index to follow for key: the child after the
// largest separator ≤ key, or child 0 if every separator exceeds key.
func intSearch(data []byte, key uint32) int {
	lo, hi := 0, intCount(data) // searching over separators
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(data, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // number of separators ≤ key == child index
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
