// Package btree implements the paged B+-tree used by the Anc_Des_B+
// structural-join baseline [Chien et al., VLDB 2002] that the paper
// compares against. It indexes region-encoded elements on their start
// position: leaf pages hold full element entries sorted by start and are
// linked left to right; internal pages hold separator keys and child
// pointers.
//
// The tree is dynamic (insert and delete with split, redistribution and
// merge) and all page access goes through the buffer pool so experiments
// observe page misses. Iterators support SeekGE, the primitive the B+ join
// algorithm uses to skip descendants ("range queries"), and sequential
// scans over the leaf chain.
//
// # Concurrency
//
// A Tree carries a coarse read/write latch: Insert, Delete and BulkLoad
// hold it exclusively; Lookup and SeekGE hold it shared for the duration of
// one descent. Iterators release the latch between calls by working on a
// private copy of the current leaf (see Iterator), so readers — including
// multiple iterators per goroutine — never deadlock against queued
// writers. Query paths attribute costs to caller-supplied counters, never
// to the shared tree sink.
package btree

import (
	"errors"
	"fmt"
	"sync"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// Page layouts.
//
// Meta page (one per tree):
//
//	0: magic u32 | 4: root u32 | 8: height u32 | 12: count u32 | 16: docID u32
//
// Leaf page:
//
//	0: type u8 (=leafType) | 2: count u16 | 4: next u32 | 8: prev u32
//	12: entries, count × xmldoc.EncodedSize, sorted by start
//
// Internal page:
//
//	0: type u8 (=internalType) | 2: count u16 (number of keys m)
//	4: child0 u32
//	8: entries, m × 8 bytes: key u32 | child u32
//	    (child of entry i is the subtree with keys ≥ key i)
const (
	metaMagic = 0x42545230 // "BTR0"

	leafType     = 1
	internalType = 2

	leafHeader     = 12
	offLeafCount   = 2
	offLeafNext    = 4
	offLeafPrev    = 8
	internalHeader = 8
	offIntCount    = 2
	offIntChild0   = 4
	intEntrySize   = 8
)

// Errors returned by the tree.
var (
	ErrNotFound  = errors.New("btree: element not found")
	ErrDuplicate = errors.New("btree: duplicate start key")
	ErrCorrupt   = errors.New("btree: corrupt page")
)

// Tree is a disk-resident B+-tree over elements keyed by Start.
type Tree struct {
	pool  *bufferpool.Pool
	meta  pagefile.PageID
	root  pagefile.PageID
	h     int // height: 1 = root is a leaf
	count int
	docID uint32

	leafCap int // max elements per leaf
	intCap  int // max keys per internal node

	// latch is the tree's coarse reader/writer latch: writers (Insert,
	// Delete, BulkLoad) hold it exclusively, readers take it shared per
	// descent or per leaf hop.
	latch sync.RWMutex

	// tx is the WAL transaction of the mutation in flight, nil outside one.
	// Guarded by the write latch (see the core package's twin for details).
	tx *bufferpool.Tx

	c *metrics.Counters // optional counter sink, used by write paths only
}

// The fetch/unpin wrappers route page accesses through the in-flight WAL
// transaction when one exists; otherwise they are the plain pool calls.

func (t *Tree) fetch(id pagefile.PageID) ([]byte, error) {
	return t.pool.FetchHeld(t.tx, id)
}

func (t *Tree) fetchNew() (pagefile.PageID, []byte, error) {
	return t.pool.FetchNewHeld(t.tx)
}

func (t *Tree) unpin(id pagefile.PageID, dirty bool) error {
	return t.pool.UnpinTx(t.tx, id, dirty)
}

func (t *Tree) discard(id pagefile.PageID) error {
	return t.pool.DiscardTx(t.tx, id)
}

func (t *Tree) free(id pagefile.PageID) error {
	return t.pool.FreeTx(t.tx, id)
}

// beginTx starts a WAL transaction for one mutation and returns its
// commit function, to be deferred with the mutation's named error.
func (t *Tree) beginTx() func(*error) {
	t.tx = t.pool.Begin()
	return func(errp *error) {
		tx := t.tx
		t.tx = nil
		if cerr := t.pool.CommitTx(tx); cerr != nil && *errp == nil {
			*errp = cerr
		}
	}
}

// New creates an empty tree whose pages come from pool's file.
func New(pool *bufferpool.Pool, docID uint32) (*Tree, error) {
	t := &Tree{pool: pool, docID: docID}
	t.computeCaps()
	metaID, metaData, err := pool.FetchNew()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	rootID, rootData, err := pool.FetchNew()
	if err != nil {
		pool.Unpin(metaID, true)
		return nil, err
	}
	initLeaf(rootData)
	if err := pool.Unpin(rootID, true); err != nil {
		pool.Unpin(metaID, true) // best-effort: the first error propagates
		return nil, err
	}
	t.root = rootID
	t.h = 1
	putU32(metaData[0:], metaMagic)
	t.writeMeta(metaData)
	if err := pool.Unpin(metaID, true); err != nil {
		return nil, err
	}
	return t, nil
}

// Open reattaches to a tree previously created by New in pool's file.
func Open(pool *bufferpool.Pool, meta pagefile.PageID) (*Tree, error) {
	t := &Tree{pool: pool, meta: meta}
	t.computeCaps()
	data, err := pool.Fetch(meta)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(meta, false)
	if getU32(data[0:]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	t.root = pagefile.PageID(getU32(data[4:]))
	t.h = int(getU32(data[8:]))
	t.count = int(getU32(data[12:]))
	t.docID = getU32(data[16:])
	return t, nil
}

func (t *Tree) computeCaps() {
	ps := t.pool.File().PageSize()
	t.leafCap = (ps - leafHeader) / xmldoc.EncodedSize
	t.intCap = (ps - internalHeader) / intEntrySize
	if t.leafCap < 2 || t.intCap < 3 {
		panic(fmt.Sprintf("btree: page size %d too small", ps))
	}
}

func (t *Tree) syncMeta() error {
	data, err := t.fetch(t.meta)
	if err != nil {
		return err
	}
	t.writeMeta(data)
	return t.unpin(t.meta, true)
}

func (t *Tree) writeMeta(data []byte) {
	putU32(data[4:], uint32(t.root))
	putU32(data[8:], uint32(t.h))
	putU32(data[12:], uint32(t.count))
	putU32(data[16:], t.docID)
}

// Meta returns the meta page id, the handle needed by Open.
func (t *Tree) Meta() pagefile.PageID { return t.meta }

// Len returns the number of elements in the tree.
func (t *Tree) Len() int { return t.count }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.h }

// DocID returns the document id of the indexed set.
func (t *Tree) DocID() uint32 { return t.docID }

// SetCounters directs cost accounting to c (nil detaches).
func (t *Tree) SetCounters(c *metrics.Counters) { t.c = c }

func (t *Tree) countNode() {
	if t.c != nil {
		t.c.IndexNodeReads++
	}
}

func (t *Tree) countLeaf() {
	if t.c != nil {
		t.c.LeafReads++
	}
}

func (t *Tree) countScan(n int) {
	if t.c != nil {
		t.c.ElementsScanned += int64(n)
	}
}

// The add* helpers attribute costs to an explicit counter set; query paths
// use them (instead of the tree-attached sink) so concurrent readers never
// share mutable counter state.
func addNode(c *metrics.Counters) {
	if c != nil {
		c.IndexNodeReads++
	}
}

func addLeaf(c *metrics.Counters) {
	if c != nil {
		c.LeafReads++
	}
}

func addScan(c *metrics.Counters, n int64) {
	if c != nil {
		c.ElementsScanned += n
	}
}

// --- page helpers -------------------------------------------------------

func initLeaf(data []byte) {
	for i := range data[:leafHeader] {
		data[i] = 0
	}
	data[0] = leafType
	putU32(data[offLeafNext:], uint32(pagefile.InvalidPage))
	putU32(data[offLeafPrev:], uint32(pagefile.InvalidPage))
}

func initInternal(data []byte) {
	for i := range data[:internalHeader] {
		data[i] = 0
	}
	data[0] = internalType
}

func leafCount(data []byte) int    { return int(getU16(data[offLeafCount:])) }
func intCount(data []byte) int     { return int(getU16(data[offIntCount:])) }
func isLeaf(data []byte) bool      { return data[0] == leafType }
func setLeafCount(d []byte, n int) { putU16(d[offLeafCount:], uint16(n)) }
func setIntCount(d []byte, n int)  { putU16(d[offIntCount:], uint16(n)) }

func leafEntry(data []byte, i int) []byte {
	off := leafHeader + i*xmldoc.EncodedSize
	return data[off : off+xmldoc.EncodedSize]
}

func leafElem(data []byte, i int) xmldoc.Element {
	e, _ := xmldoc.DecodeElement(leafEntry(data, i))
	return e
}

func leafKey(data []byte, i int) uint32 { return getU32(leafEntry(data, i)) }

func leafNext(data []byte) pagefile.PageID     { return pagefile.PageID(getU32(data[offLeafNext:])) }
func leafPrev(data []byte) pagefile.PageID     { return pagefile.PageID(getU32(data[offLeafPrev:])) }
func setLeafNext(d []byte, id pagefile.PageID) { putU32(d[offLeafNext:], uint32(id)) }
func setLeafPrev(d []byte, id pagefile.PageID) { putU32(d[offLeafPrev:], uint32(id)) }

func intKey(data []byte, i int) uint32 {
	return getU32(data[internalHeader+i*intEntrySize:])
}

func setIntKey(data []byte, i int, k uint32) {
	putU32(data[internalHeader+i*intEntrySize:], k)
}

// intChild returns child pointer i (0..m). Child 0 is stored separately.
func intChild(data []byte, i int) pagefile.PageID {
	if i == 0 {
		return pagefile.PageID(getU32(data[offIntChild0:]))
	}
	return pagefile.PageID(getU32(data[internalHeader+(i-1)*intEntrySize+4:]))
}

func setIntChild(data []byte, i int, id pagefile.PageID) {
	if i == 0 {
		putU32(data[offIntChild0:], uint32(id))
		return
	}
	putU32(data[internalHeader+(i-1)*intEntrySize+4:], uint32(id))
}

// leafSearch returns the index of the first entry with start ≥ key.
func leafSearch(data []byte, key uint32) int {
	lo, hi := 0, leafCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(data, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intSearch returns the child index to follow for key: the child after the
// largest separator ≤ key, or child 0 if every separator exceeds key.
func intSearch(data []byte, key uint32) int {
	lo, hi := 0, intCount(data) // searching over separators
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(data, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo // number of separators ≤ key == child index
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
