package btree

import "xrtree/internal/invariant"

// debugPinBalance snapshots the pool's pinned-frame count at operation
// entry; the returned func asserts it is unchanged at exit (xrtreedebug
// builds only — the hook compiles away otherwise). Registered after the
// latch defer so it runs while the tree is still write-latched.
func (t *Tree) debugPinBalance() func() {
	if !invariant.Enabled {
		return func() {}
	}
	before := t.pool.PinnedCount()
	return func() {
		after := t.pool.PinnedCount()
		invariant.Assertf(after == before,
			"pin balance: %d frames pinned at operation entry, %d at exit", before, after)
	}
}
