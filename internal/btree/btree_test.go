package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

func newPool(t *testing.T, pageSize, frames int) *bufferpool.Pool {
	t.Helper()
	f := pagefile.NewMem(pagefile.Options{PageSize: pageSize})
	t.Cleanup(func() { f.Close() })
	p, err := bufferpool.New(f, frames)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func elem(start uint32) xmldoc.Element {
	return xmldoc.Element{DocID: 1, Start: start, End: start + 1, Level: 1, Ref: start}
}

// collect drains the tree via a full scan.
func collect(t *testing.T, tr *Tree) []xmldoc.Element {
	t.Helper()
	it, err := tr.Scan(nil)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	defer it.Close()
	var out []xmldoc.Element
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	if it.Err() != nil {
		t.Fatalf("scan error: %v", it.Err())
	}
	return out
}

func TestInsertLookupScan(t *testing.T) {
	pool := newPool(t, 256, 32)
	tr, err := New(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := rand.New(rand.NewSource(1)).Perm(1000)
	for _, k := range keys {
		if err := tr.Insert(elem(uint32(k*2 + 1))); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tr.Len() != 1000 {
		t.Errorf("Len = %d, want 1000", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("Height = %d, want ≥ 3 with 256B pages", tr.Height())
	}
	for _, k := range keys {
		e, err := tr.Lookup(uint32(k*2+1), nil)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", k*2+1, err)
		}
		if e.Start != uint32(k*2+1) {
			t.Fatalf("Lookup(%d) = %v", k*2+1, e)
		}
	}
	if _, err := tr.Lookup(4, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("Lookup(missing) err = %v, want ErrNotFound", err)
	}
	got := collect(t, tr)
	if len(got) != 1000 {
		t.Fatalf("scan found %d, want 1000", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Start >= got[i].Start {
			t.Fatalf("scan out of order at %d", i)
		}
	}
	if pool.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", pool.PinnedCount())
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	pool := newPool(t, 256, 16)
	tr, _ := New(pool, 1)
	if err := tr.Insert(elem(5)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(elem(5)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert err = %v, want ErrDuplicate", err)
	}
	bad := elem(9)
	bad.DocID = 2
	if err := tr.Insert(bad); err == nil {
		t.Error("cross-DocID insert accepted")
	}
}

func TestSeekGE(t *testing.T) {
	pool := newPool(t, 256, 16)
	tr, _ := New(pool, 1)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(elem(uint32(i*10 + 5))); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		seek uint32
		want uint32
		ok   bool
	}{
		{0, 5, true},
		{5, 5, true},
		{6, 15, true},
		{994, 995, true},
		{995, 995, true},
		{996, 0, false},
	}
	for _, tc := range cases {
		it, err := tr.SeekGE(tc.seek, nil)
		if err != nil {
			t.Fatalf("SeekGE(%d): %v", tc.seek, err)
		}
		e, ok := it.Next()
		it.Close()
		if ok != tc.ok || (ok && e.Start != tc.want) {
			t.Errorf("SeekGE(%d) = %v,%v want %d,%v", tc.seek, e.Start, ok, tc.want, tc.ok)
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	pool := newPool(t, 256, 16)
	tr, _ := New(pool, 1)
	for i := 1; i <= 50; i++ {
		tr.Insert(elem(uint32(i * 3)))
	}
	it, err := tr.Scan(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	p1, ok1 := it.Peek()
	p2, ok2 := it.Peek()
	n, ok3 := it.Next()
	if !ok1 || !ok2 || !ok3 || p1 != p2 || p1 != n {
		t.Errorf("Peek/Next disagree: %v %v %v", p1, p2, n)
	}
}

func TestRange(t *testing.T) {
	pool := newPool(t, 256, 16)
	tr, _ := New(pool, 1)
	for i := 1; i <= 200; i++ {
		tr.Insert(elem(uint32(i)))
	}
	got, err := tr.Range(50, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[0].Start != 50 || got[10].Start != 60 {
		t.Errorf("Range(50,60) returned %d elements", len(got))
	}
}

func TestDeleteSimple(t *testing.T) {
	pool := newPool(t, 256, 32)
	tr, _ := New(pool, 1)
	for i := 1; i <= 500; i++ {
		if err := tr.Insert(elem(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 500; i += 2 {
		if err := tr.Delete(uint32(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 250 {
		t.Errorf("Len = %d, want 250", tr.Len())
	}
	for i := 1; i <= 500; i++ {
		_, err := tr.Lookup(uint32(i), nil)
		if i%2 == 1 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("Lookup(%d) after delete: %v", i, err)
		}
		if i%2 == 0 && err != nil {
			t.Fatalf("Lookup(%d): %v", i, err)
		}
	}
	if err := tr.Delete(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(missing) err = %v, want ErrNotFound", err)
	}
}

func TestDeleteAllShrinksTree(t *testing.T) {
	pool := newPool(t, 256, 32)
	tr, _ := New(pool, 1)
	n := 300
	for i := 1; i <= n; i++ {
		tr.Insert(elem(uint32(i)))
	}
	hBefore := tr.Height()
	if hBefore < 2 {
		t.Fatalf("height %d too small for test", hBefore)
	}
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, k := range perm {
		if err := tr.Delete(uint32(k + 1)); err != nil {
			t.Fatalf("Delete(%d): %v", k+1, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d after deleting all, want 1", tr.Height())
	}
	if got := collect(t, tr); len(got) != 0 {
		t.Errorf("scan of empty tree returned %d elements", len(got))
	}
}

// TestRandomizedAgainstModel runs a random op sequence against a map model.
func TestRandomizedAgainstModel(t *testing.T) {
	for _, pageSize := range []int{256, 512} {
		pool := newPool(t, pageSize, 64)
		tr, err := New(pool, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(pageSize)))
		model := make(map[uint32]bool)
		for op := 0; op < 6000; op++ {
			k := uint32(rng.Intn(2000) + 1)
			switch {
			case rng.Intn(3) != 0: // insert
				err := tr.Insert(elem(k))
				if model[k] {
					if !errors.Is(err, ErrDuplicate) {
						t.Fatalf("op %d: duplicate insert err = %v", op, err)
					}
				} else {
					if err != nil {
						t.Fatalf("op %d: Insert(%d): %v", op, k, err)
					}
					model[k] = true
				}
			default: // delete
				err := tr.Delete(k)
				if model[k] {
					if err != nil {
						t.Fatalf("op %d: Delete(%d): %v", op, k, err)
					}
					delete(model, k)
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: Delete(missing %d) err = %v", op, k, err)
				}
			}
			if op%500 == 0 {
				verifyMatchesModel(t, tr, model)
			}
		}
		verifyMatchesModel(t, tr, model)
		if pool.PinnedCount() != 0 {
			t.Errorf("leaked pins: %d", pool.PinnedCount())
		}
	}
}

func verifyMatchesModel(t *testing.T, tr *Tree, model map[uint32]bool) {
	t.Helper()
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", tr.Len(), len(model))
	}
	want := make([]uint32, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := collect(t, tr)
	if len(got) != len(want) {
		t.Fatalf("scan found %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Start != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i].Start, want[i])
		}
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	pool := newPool(t, 512, 64)
	n := 3000
	es := make([]xmldoc.Element, n)
	for i := range es {
		es[i] = elem(uint32(i*2 + 1))
	}
	tr, _ := New(pool, 1)
	if err := tr.BulkLoad(es, 1.0); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if tr.Len() != n {
		t.Errorf("Len = %d, want %d", tr.Len(), n)
	}
	got := collect(t, tr)
	for i := range es {
		if got[i] != es[i] {
			t.Fatalf("element %d mismatch: %v vs %v", i, got[i], es[i])
		}
	}
	// Bulk-loaded tree must still accept updates.
	if err := tr.Insert(elem(4)); err != nil {
		t.Fatalf("Insert after BulkLoad: %v", err)
	}
	if err := tr.Delete(1); err != nil {
		t.Fatalf("Delete after BulkLoad: %v", err)
	}
	if _, err := tr.Lookup(4, nil); err != nil {
		t.Errorf("Lookup(4): %v", err)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	pool := newPool(t, 256, 16)
	tr, _ := New(pool, 1)
	unsorted := []xmldoc.Element{elem(5), elem(1)}
	if err := tr.BulkLoad(unsorted, 1.0); err == nil {
		t.Error("BulkLoad accepted unsorted input")
	}
	tr2, _ := New(pool, 1)
	tr2.Insert(elem(1))
	if err := tr2.BulkLoad([]xmldoc.Element{elem(9)}, 1.0); err == nil {
		t.Error("BulkLoad into non-empty tree accepted")
	}
	tr3, _ := New(pool, 1)
	if err := tr3.BulkLoad(nil, 1.0); err != nil {
		t.Errorf("BulkLoad(nil): %v", err)
	}
}

func TestBulkLoadPartialFill(t *testing.T) {
	pool := newPool(t, 512, 64)
	es := make([]xmldoc.Element, 1000)
	for i := range es {
		es[i] = elem(uint32(i + 1))
	}
	full, _ := New(pool, 1)
	if err := full.BulkLoad(es, 1.0); err != nil {
		t.Fatal(err)
	}
	half, _ := New(pool, 1)
	if err := half.BulkLoad(es, 0.5); err != nil {
		t.Fatal(err)
	}
	got := collect(t, half)
	if len(got) != 1000 {
		t.Fatalf("half-fill scan found %d", len(got))
	}
}

func TestOpenReattaches(t *testing.T) {
	pool := newPool(t, 256, 32)
	tr, _ := New(pool, 42)
	for i := 1; i <= 100; i++ {
		e := elem(uint32(i))
		e.DocID = 42
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(pool, tr.Meta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if tr2.Len() != 100 || tr2.DocID() != 42 || tr2.Height() != tr.Height() {
		t.Errorf("reopened tree: len=%d docID=%d h=%d", tr2.Len(), tr2.DocID(), tr2.Height())
	}
	if _, err := tr2.Lookup(50, nil); err != nil {
		t.Errorf("Lookup after Open: %v", err)
	}
}

func TestCountersAttributeCosts(t *testing.T) {
	pool := newPool(t, 256, 64)
	tr, _ := New(pool, 1)
	es := make([]xmldoc.Element, 1000)
	for i := range es {
		es[i] = elem(uint32(i + 1))
	}
	tr.BulkLoad(es, 1.0)

	var c metrics.Counters
	it, err := tr.SeekGE(500, &c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("unexpected end")
		}
	}
	it.Close()
	if c.ElementsScanned != 10 {
		t.Errorf("ElementsScanned = %d, want 10", c.ElementsScanned)
	}
	if c.IndexNodeReads == 0 {
		t.Error("IndexNodeReads = 0, want > 0 for SeekGE descent")
	}
}

// TestSequentialAndReverseInsert covers the classic split-pattern edge cases.
func TestSequentialAndReverseInsert(t *testing.T) {
	for name, order := range map[string]func(i, n int) uint32{
		"ascending":  func(i, n int) uint32 { return uint32(i + 1) },
		"descending": func(i, n int) uint32 { return uint32(n - i) },
	} {
		pool := newPool(t, 256, 64)
		tr, _ := New(pool, 1)
		n := 1000
		for i := 0; i < n; i++ {
			if err := tr.Insert(elem(order(i, n))); err != nil {
				t.Fatalf("%s Insert %d: %v", name, i, err)
			}
		}
		got := collect(t, tr)
		if len(got) != n {
			t.Fatalf("%s: scan found %d", name, len(got))
		}
		for i := range got {
			if got[i].Start != uint32(i+1) {
				t.Fatalf("%s: scan[%d] = %d", name, i, got[i].Start)
			}
		}
	}
}
