package workload

import (
	"math"
	"testing"

	"xrtree/internal/datagen"
	"xrtree/internal/xmldoc"
)

func baseSets(t *testing.T) (as, ds []xmldoc.Element) {
	t.Helper()
	doc, err := datagen.Department(datagen.DeptConfig{
		Seed: 1, DocID: 1, Departments: 20, Employees: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc.ElementsByTag("employee"), doc.ElementsByTag("name")
}

func flatSets(t *testing.T) (as, ds []xmldoc.Element) {
	t.Helper()
	doc, err := datagen.Conference(datagen.ConfConfig{
		Seed: 2, DocID: 2, Conferences: 20, Papers: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc.ElementsByTag("paper"), doc.ElementsByTag("author")
}

func checkSorted(t *testing.T, what string, es []xmldoc.Element) {
	t.Helper()
	for i := 1; i < len(es); i++ {
		if es[i-1].Start >= es[i].Start {
			t.Fatalf("%s: not sorted/unique at %d (%d, %d)", what, i, es[i-1].Start, es[i].Start)
		}
	}
}

func TestMeasureOnBaseSets(t *testing.T) {
	as, ds := baseSets(t)
	st := Measure(Sets{A: as, D: ds})
	if st.NumA != len(as) || st.NumD != len(ds) {
		t.Fatalf("sizes wrong: %+v", st)
	}
	// Every employee has a name child, so every ancestor joins; every name
	// under an employee joins (department names do not).
	if st.FracA < 0.99 {
		t.Errorf("FracA = %.3f, want ≈ 1 (every employee has a name)", st.FracA)
	}
	if st.Pairs == 0 {
		t.Error("no pairs")
	}
}

func TestAncestorChainsAgainstBruteForce(t *testing.T) {
	as, ds := baseSets(t)
	if len(ds) > 300 {
		ds = ds[:300]
	}
	chains := ancestorChains(as, ds)
	for di, d := range ds {
		var want []int
		for ai, a := range as {
			if a.Start < d.Start && d.Start < a.End {
				want = append(want, ai)
			}
		}
		got := chains[di]
		if len(got) != len(want) {
			t.Fatalf("d %d: chain size %d, want %d", di, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("d %d: chain[%d] = %d, want %d", di, i, got[i], want[i])
			}
		}
	}
}

func TestVaryAncestorSelectivity(t *testing.T) {
	for _, base := range []string{"nested", "flat"} {
		var as, ds []xmldoc.Element
		if base == "nested" {
			as, ds = baseSets(t)
		} else {
			as, ds = flatSets(t)
		}
		for _, pct := range SelectivitySweep {
			s := VaryAncestorSelectivity(as, ds, pct, 0.99, 7)
			checkSorted(t, "A", s.A)
			checkSorted(t, "D", s.D)
			if len(s.A) != len(as) {
				t.Errorf("%s pct %.2f: |A| changed (%d → %d)", base, pct, len(as), len(s.A))
			}
			st := Measure(s)
			if math.Abs(st.FracA-pct) > 0.08 && float64(st.JoiningA) > 5 {
				t.Errorf("%s: target ancestor selectivity %.2f, achieved %.3f (%+v)", base, pct, st.FracA, st)
			}
			if st.NumD > 50 && (st.FracD < 0.93 || st.FracD > 1.0) {
				t.Errorf("%s pct %.2f: descendant join fraction %.3f, want ≈ 0.99", base, pct, st.FracD)
			}
		}
	}
}

func TestVaryDescendantSelectivity(t *testing.T) {
	as, ds := baseSets(t)
	for _, pct := range SelectivitySweep {
		s := VaryDescendantSelectivity(as, ds, pct, 0.99, 11)
		checkSorted(t, "A", s.A)
		checkSorted(t, "D", s.D)
		if len(s.D) != len(ds) {
			t.Errorf("pct %.2f: |D| changed (%d → %d)", pct, len(ds), len(s.D))
		}
		st := Measure(s)
		if math.Abs(st.FracD-pct) > 0.08 && st.JoiningD > 5 {
			t.Errorf("target descendant selectivity %.2f, achieved %.3f (%+v)", pct, st.FracD, st)
		}
		if st.NumA > 50 && st.FracA < 0.93 {
			t.Errorf("pct %.2f: ancestor join fraction %.3f, want ≈ 0.99", pct, st.FracA)
		}
	}
}

func TestVaryBothSelectivity(t *testing.T) {
	as, ds := baseSets(t)
	for _, pct := range SelectivitySweep {
		s := VaryBothSelectivity(as, ds, pct, 13)
		checkSorted(t, "A", s.A)
		checkSorted(t, "D", s.D)
		if len(s.A) != len(as) || len(s.D) != len(ds) {
			t.Errorf("pct %.2f: sizes changed (%d,%d) → (%d,%d)",
				pct, len(as), len(ds), len(s.A), len(s.D))
		}
		st := Measure(s)
		if math.Abs(st.FracA-pct) > 0.10 && st.JoiningA > 5 {
			t.Errorf("pct %.2f: ancestor fraction %.3f", pct, st.FracA)
		}
		if math.Abs(st.FracD-pct) > 0.10 && st.JoiningD > 5 {
			t.Errorf("pct %.2f: descendant fraction %.3f", pct, st.FracD)
		}
	}
}

func TestDummiesDoNotJoin(t *testing.T) {
	as, ds := baseSets(t)
	s := VaryBothSelectivity(as, ds, 0.05, 17)
	st := Measure(s)
	// With 5% selectivity, 95% of both lists are dummies or non-joiners.
	if st.FracA > 0.15 || st.FracD > 0.15 {
		t.Errorf("dummies appear to join: %+v", st)
	}
	// All dummies lie beyond the original maximum position.
	var max uint32
	for _, e := range as {
		if e.End > max {
			max = e.End
		}
	}
	for _, e := range ds {
		if e.End > max {
			max = e.End
		}
	}
	for _, e := range s.A {
		if e.Start > max && e.End != e.Start+1 {
			t.Errorf("dummy %v is not a unit region", e)
		}
	}
}

func TestSweepLabels(t *testing.T) {
	labels := SweepLabels()
	if len(labels) != len(SelectivitySweep) {
		t.Fatal("label count mismatch")
	}
	if labels[0] != "90%" || labels[len(labels)-1] != "1%" {
		t.Errorf("labels = %v", labels)
	}
}

func TestSortedCopyDoesNotAlias(t *testing.T) {
	as, _ := baseSets(t)
	cp := SortedCopy(as)
	if len(cp) != len(as) {
		t.Fatal("length mismatch")
	}
	cp[0].Start = 999999
	if as[0].Start == 999999 {
		t.Error("SortedCopy aliases its input")
	}
}
