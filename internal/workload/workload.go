// Package workload derives the joining element sets of the paper's
// performance study (§6). Starting from a base ancestor list A and
// descendant list D extracted from a corpus, it manufactures inputs with
// controlled join selectivity:
//
//   - VaryAncestorSelectivity (§6.2, Table 2 / Figure 8(a)(b)): descendants
//     are removed until only the requested fraction of ancestors has at
//     least one match, while ~99% of the remaining descendants match.
//   - VaryDescendantSelectivity (§6.3, Table 3 / Figure 8(c)(d)): ancestors
//     are removed until only the requested fraction of descendants has a
//     match, while ~99% of the remaining ancestors match.
//   - VaryBothSelectivity (§6.4, Figure 8(e)(f)): joined elements are
//     removed from both sets and replaced by dummy elements that join
//     nothing, keeping both list sizes unchanged.
//
// The constructions follow the paper's described methodology; achieved
// selectivities are reported via Stats so the harness can print them.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"xrtree/internal/xmldoc"
)

// Sets is one derived workload: the two join inputs.
type Sets struct {
	A []xmldoc.Element
	D []xmldoc.Element
}

// Stats describes the achieved join characteristics of a Sets.
type Stats struct {
	NumA, NumD         int
	JoiningA, JoiningD int     // elements with at least one match
	FracA, FracD       float64 // joining fractions
	Pairs              int     // total result pairs
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("|A|=%d |D|=%d joinA=%.1f%% joinD=%.1f%% pairs=%d",
		s.NumA, s.NumD, 100*s.FracA, 100*s.FracD, s.Pairs)
}

// Measure computes the achieved statistics of a workload by a sweep join.
func Measure(s Sets) Stats {
	chains := ancestorChains(s.A, s.D)
	st := Stats{NumA: len(s.A), NumD: len(s.D)}
	joinedA := make([]bool, len(s.A))
	for _, chain := range chains {
		if len(chain) > 0 {
			st.JoiningD++
		}
		st.Pairs += len(chain)
		for _, ai := range chain {
			joinedA[ai] = true
		}
	}
	for _, j := range joinedA {
		if j {
			st.JoiningA++
		}
	}
	if st.NumA > 0 {
		st.FracA = float64(st.JoiningA) / float64(st.NumA)
	}
	if st.NumD > 0 {
		st.FracD = float64(st.JoiningD) / float64(st.NumD)
	}
	return st
}

// ancestorChains returns, for every element of D (by index), the indices of
// its ancestors in A, outermost first. Both inputs must be start-sorted.
// It runs one stack sweep over the merged lists.
func ancestorChains(A, D []xmldoc.Element) [][]int {
	chains := make([][]int, len(D))
	var stack []int
	ai, di := 0, 0
	for di < len(D) {
		if ai < len(A) && A[ai].Start < D[di].Start {
			for len(stack) > 0 && A[stack[len(stack)-1]].End < A[ai].Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ai)
			ai++
			continue
		}
		for len(stack) > 0 && A[stack[len(stack)-1]].End < D[di].Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			chains[di] = append([]int(nil), stack...)
		}
		di++
	}
	return chains
}

// dummyFactory mints elements that join nothing: disjoint unit regions
// placed beyond every existing position.
type dummyFactory struct {
	pos   uint32
	docID uint32
	ref   uint32
}

func newDummyFactory(A, D []xmldoc.Element) *dummyFactory {
	var max uint32
	var docID uint32 = 1
	for _, e := range A {
		if e.End > max {
			max = e.End
		}
		docID = e.DocID
	}
	for _, e := range D {
		if e.End > max {
			max = e.End
		}
	}
	return &dummyFactory{pos: max + 10, docID: docID, ref: 1 << 30}
}

func (f *dummyFactory) next(level uint16) xmldoc.Element {
	e := xmldoc.Element{DocID: f.docID, Start: f.pos, End: f.pos + 1, Level: level, Ref: f.ref}
	f.pos += 3
	f.ref++
	return e
}

// VaryAncestorSelectivity builds the §6.2 workload: the ancestor list is
// unchanged; the descendant list is reduced so that about pctA of the
// ancestors join, with dJoinFrac (the paper uses 0.99) of the remaining
// descendants joining.
func VaryAncestorSelectivity(A, D []xmldoc.Element, pctA, dJoinFrac float64, seed int64) Sets {
	chains := ancestorChains(A, D)
	rng := rand.New(rand.NewSource(seed))
	budget := int(pctA * float64(len(A)))

	joined := make([]bool, len(A))
	joinedCount := 0
	keepD := make([]bool, len(D))
	// Pass 1: admit descendants while their ancestor chains fit the budget.
	for _, di := range rng.Perm(len(D)) {
		chain := chains[di]
		if len(chain) == 0 {
			continue
		}
		fresh := 0
		for _, ai := range chain {
			if !joined[ai] {
				fresh++
			}
		}
		if joinedCount+fresh > budget {
			continue
		}
		for _, ai := range chain {
			if !joined[ai] {
				joined[ai] = true
				joinedCount++
			}
		}
		keepD[di] = true
	}
	// Tiny budgets (1% of a small A) may admit nothing; keep the experiment
	// meaningful by admitting the descendant with the shortest chain.
	if joinedCount == 0 {
		best := -1
		for di, chain := range chains {
			if len(chain) == 0 {
				continue
			}
			if best < 0 || len(chain) < len(chains[best]) {
				best = di
			}
		}
		if best >= 0 {
			for _, ai := range chains[best] {
				if !joined[ai] {
					joined[ai] = true
					joinedCount++
				}
			}
			keepD[best] = true
		}
	}
	// Pass 2: admit any remaining descendant whose chain is fully joined.
	for di, chain := range chains {
		if keepD[di] || len(chain) == 0 {
			continue
		}
		ok := true
		for _, ai := range chain {
			if !joined[ai] {
				ok = false
				break
			}
		}
		keepD[di] = ok
	}

	var out []xmldoc.Element
	joiningD := 0
	var nonJoinPool []int
	for di := range D {
		if keepD[di] {
			out = append(out, D[di])
			joiningD++
		} else if len(chains[di]) == 0 {
			nonJoinPool = append(nonJoinPool, di)
		}
	}
	// Mix in non-joining descendants to hit the requested join fraction.
	needNonJoin := int(float64(joiningD)*(1-dJoinFrac)/dJoinFrac + 0.5)
	rng.Shuffle(len(nonJoinPool), func(i, j int) {
		nonJoinPool[i], nonJoinPool[j] = nonJoinPool[j], nonJoinPool[i]
	})
	factory := newDummyFactory(A, D)
	for i := 0; i < needNonJoin; i++ {
		if i < len(nonJoinPool) {
			out = append(out, D[nonJoinPool[i]])
		} else {
			out = append(out, factory.next(3))
		}
	}
	xmldoc.SortByStart(out)
	return Sets{A: A, D: out}
}

// VaryDescendantSelectivity builds the §6.3 workload: the descendant list
// is unchanged; the ancestor list is reduced so that about pctD of the
// descendants join, with aJoinFrac (0.99 in the paper) of the remaining
// ancestors joining.
func VaryDescendantSelectivity(A, D []xmldoc.Element, pctD, aJoinFrac float64, seed int64) Sets {
	chains := ancestorChains(A, D)
	rng := rand.New(rand.NewSource(seed))
	budget := int(pctD * float64(len(D)))

	// Group ancestors into top-level subtrees: keeping a group makes all
	// descendants under its root join.
	group := make([]int, len(A)) // A index → group id
	var groupRoots []int
	for ai := range A {
		if len(groupRoots) > 0 {
			rootIdx := groupRoots[len(groupRoots)-1]
			if A[rootIdx].Contains(A[ai]) {
				group[ai] = len(groupRoots) - 1
				continue
			}
		}
		group[ai] = len(groupRoots)
		groupRoots = append(groupRoots, ai)
	}
	// Descendants covered per group.
	dsPerGroup := make([][]int, len(groupRoots))
	for di, chain := range chains {
		if len(chain) > 0 {
			g := group[chain[0]]
			dsPerGroup[g] = append(dsPerGroup[g], di)
		}
	}
	keepGroup := make([]bool, len(groupRoots))
	covered := 0
	for _, g := range rng.Perm(len(groupRoots)) {
		n := len(dsPerGroup[g])
		if n == 0 || covered+n > budget {
			continue
		}
		keepGroup[g] = true
		covered += n
	}
	// If every group overshoots a tiny budget, keep the smallest non-empty
	// group so the workload still has a join.
	if covered == 0 {
		best := -1
		for g, ds := range dsPerGroup {
			if len(ds) == 0 {
				continue
			}
			if best < 0 || len(ds) < len(dsPerGroup[best]) {
				best = g
			}
		}
		if best >= 0 {
			keepGroup[best] = true
		}
	}

	// Ancestors of kept groups stay; those among them that join nothing
	// count toward the 1% non-joining allowance.
	joins := make([]bool, len(A))
	for _, chain := range chains {
		if len(chain) == 0 {
			continue
		}
		if keepGroup[group[chain[0]]] {
			for _, ai := range chain {
				joins[ai] = true
			}
		}
	}
	var kept []xmldoc.Element
	joiningA := 0
	var nonJoiners []xmldoc.Element
	for ai := range A {
		if !keepGroup[group[ai]] {
			continue
		}
		if joins[ai] {
			kept = append(kept, A[ai])
			joiningA++
		} else {
			nonJoiners = append(nonJoiners, A[ai])
		}
	}
	needNonJoin := int(float64(joiningA)*(1-aJoinFrac)/aJoinFrac + 0.5)
	factory := newDummyFactory(A, D)
	for i := 0; i < needNonJoin; i++ {
		if i < len(nonJoiners) {
			kept = append(kept, nonJoiners[i])
		} else {
			kept = append(kept, factory.next(2))
		}
	}
	xmldoc.SortByStart(kept)
	return Sets{A: kept, D: D}
}

// VaryBothSelectivity builds the §6.4 workload: about pct of each list
// joins, and both lists keep their original sizes — removed joined elements
// are replaced with dummies that join nothing.
func VaryBothSelectivity(A, D []xmldoc.Element, pct float64, seed int64) Sets {
	chains := ancestorChains(A, D)
	rng := rand.New(rand.NewSource(seed))
	budgetA := int(pct * float64(len(A)))
	budgetD := int(pct * float64(len(D)))

	joined := make([]bool, len(A))
	joinedCount := 0
	keepD := make([]bool, len(D))
	keptD := 0
	for _, di := range rng.Perm(len(D)) {
		if keptD >= budgetD {
			break
		}
		chain := chains[di]
		if len(chain) == 0 {
			continue
		}
		fresh := 0
		for _, ai := range chain {
			if !joined[ai] {
				fresh++
			}
		}
		if joinedCount+fresh > budgetA {
			continue
		}
		for _, ai := range chain {
			if !joined[ai] {
				joined[ai] = true
				joinedCount++
			}
		}
		keepD[di] = true
		keptD++
	}
	// Keep at least one joining pair when the budgets round down to zero.
	if keptD == 0 {
		best := -1
		for di, chain := range chains {
			if len(chain) == 0 {
				continue
			}
			if best < 0 || len(chain) < len(chains[best]) {
				best = di
			}
		}
		if best >= 0 {
			for _, ai := range chains[best] {
				if !joined[ai] {
					joined[ai] = true
					joinedCount++
				}
			}
			keepD[best] = true
			keptD++
		}
	}

	var outA []xmldoc.Element
	for ai := range A {
		if joined[ai] {
			outA = append(outA, A[ai])
		}
	}
	var outD []xmldoc.Element
	for di := range D {
		if keepD[di] {
			outD = append(outD, D[di])
		}
	}
	// Pad both lists back to their original sizes with dummies that join
	// nothing. Dummies are laid out in alternating chunks of ancestors and
	// descendants across the position space, the way removed document
	// structure leaves non-joining elements interleaved: runs of dummy
	// descendants sit between dummy ancestors, so an algorithm that can
	// range-skip descendants (B+, XR) benefits while one that cannot skip
	// flat ancestors (B+) still pays for every dummy ancestor — the
	// behavior Figure 8(e)(f) contrasts.
	// Chunks span several 4 KiB pages (a page holds ~255 elements) so that
	// skipping a run of dummies also skips whole pages — otherwise every
	// algorithm touches every page and the I/O difference disappears.
	factory := newDummyFactory(A, D)
	const chunk = 2048
	needA, needD := len(A)-len(outA), len(D)-len(outD)
	for needA > 0 || needD > 0 {
		for i := 0; i < chunk && needA > 0; i++ {
			outA = append(outA, factory.next(2))
			needA--
		}
		for i := 0; i < chunk && needD > 0; i++ {
			outD = append(outD, factory.next(3))
			needD--
		}
	}
	xmldoc.SortByStart(outA)
	xmldoc.SortByStart(outD)
	return Sets{A: outA, D: outD}
}

// SelectivitySweep is the x-axis of the paper's §6 experiments.
var SelectivitySweep = []float64{0.90, 0.70, 0.55, 0.40, 0.25, 0.15, 0.05, 0.01}

// SweepLabels renders the sweep points the way the paper's tables do.
func SweepLabels() []string {
	labels := make([]string, len(SelectivitySweep))
	for i, p := range SelectivitySweep {
		labels[i] = fmt.Sprintf("%d%%", int(p*100+0.5))
	}
	return labels
}

// SortedCopy returns a start-sorted copy of es (workload outputs share
// backing arrays with their inputs; callers that mutate should copy).
func SortedCopy(es []xmldoc.Element) []xmldoc.Element {
	out := append([]xmldoc.Element(nil), es...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
