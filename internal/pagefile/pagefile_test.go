package pagefile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")
	f, err := Create(path, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	id, err := f.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := make([]byte, 512)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := f.WritePage(id, want); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f2, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f2.Close()
	if f2.PageSize() != 512 {
		t.Errorf("PageSize = %d, want 512", f2.PageSize())
	}
	got := make([]byte, 512)
	if err := f2.ReadPage(id, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("page contents did not round-trip")
	}
}

func TestAllocateReusesFreedPages(t *testing.T) {
	f := NewMem(Options{PageSize: 256})
	defer f.Close()
	a, _ := f.Allocate()
	b, _ := f.Allocate()
	c, _ := f.Allocate()
	if a == b || b == c || a == c {
		t.Fatalf("allocated ids not distinct: %d %d %d", a, b, c)
	}
	if err := f.Free(b); err != nil {
		t.Fatalf("Free: %v", err)
	}
	d, err := f.Allocate()
	if err != nil {
		t.Fatalf("Allocate after free: %v", err)
	}
	if d != b {
		t.Errorf("Allocate = %d, want reused page %d", d, b)
	}
	n := f.NumPages()
	if _, err := f.Allocate(); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if f.NumPages() != n+1 {
		t.Errorf("NumPages = %d, want %d", f.NumPages(), n+1)
	}
}

func TestFreeListSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "free.db")
	f, err := Create(path, Options{PageSize: 256})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a, _ := f.Allocate()
	b, _ := f.Allocate()
	_ = b
	if err := f.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f2, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f2.Close()
	got, err := f2.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got != a {
		t.Errorf("Allocate after reopen = %d, want freed page %d", got, a)
	}
}

func TestPageBoundsChecks(t *testing.T) {
	f := NewMem(Options{PageSize: 256})
	defer f.Close()
	buf := make([]byte, 256)
	if err := f.ReadPage(InvalidPage, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("ReadPage(0) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.ReadPage(99, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("ReadPage(99) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.WritePage(99, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("WritePage(99) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.Free(InvalidPage); !errors.Is(err, ErrPageOutOfRange) {
		t.Errorf("Free(0) err = %v, want ErrPageOutOfRange", err)
	}
	if err := f.ReadPage(1, make([]byte, 10)); err == nil {
		t.Error("ReadPage with short buffer succeeded, want error")
	}
}

func TestBadPageSizeRejected(t *testing.T) {
	dir := t.TempDir()
	for _, ps := range []int{100, 257, 3000} {
		_, err := Create(filepath.Join(dir, "bad.db"), Options{PageSize: ps})
		if !errors.Is(err, ErrBadPageSize) {
			t.Errorf("Create(pageSize=%d) err = %v, want ErrBadPageSize", ps, err)
		}
	}
}

func TestClosedFileFails(t *testing.T) {
	f := NewMem(Options{})
	id, _ := f.Allocate()
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if _, err := f.Allocate(); !errors.Is(err, ErrClosed) {
		t.Errorf("Allocate after close err = %v, want ErrClosed", err)
	}
	if err := f.ReadPage(id, make([]byte, f.PageSize())); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadPage after close err = %v, want ErrClosed", err)
	}
}

func TestStatsCountPhysicalIO(t *testing.T) {
	f := NewMem(Options{PageSize: 256})
	defer f.Close()
	f.ResetStats()
	id, _ := f.Allocate()
	buf := make([]byte, 256)
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.PhysicalReads < 1 {
		t.Errorf("PhysicalReads = %d, want ≥ 1", st.PhysicalReads)
	}
	if st.PhysicalWrites < 1 {
		t.Errorf("PhysicalWrites = %d, want ≥ 1", st.PhysicalWrites)
	}
	f.ResetStats()
	if got := f.Stats(); got.PhysicalReads != 0 || got.PhysicalWrites != 0 {
		t.Errorf("after ResetStats: %+v", got)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.db")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xAB}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("Open of garbage file succeeded, want error")
	}
}

// TestOpenRefusesOldVersion verifies both open paths return the typed
// ErrVersion for a structurally valid file written by an earlier page
// format (pre-B-link, no high-key/right-link headers), and plain
// ErrBadHeader for a version from the future.
func TestOpenRefusesOldVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.db")
	f, err := Create(path, Options{PageSize: MinPageSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	stamp := func(version uint32) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		putU32(raw[4:], version)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stamp(1)
	if _, err := Open(path); !errors.Is(err, ErrVersion) {
		t.Errorf("Open of version-1 file: err = %v, want ErrVersion", err)
	}
	if _, err := OpenRepair(path); !errors.Is(err, ErrVersion) {
		t.Errorf("OpenRepair of version-1 file: err = %v, want ErrVersion", err)
	}
	stamp(headerVersion + 1)
	if _, err := Open(path); !errors.Is(err, ErrBadHeader) {
		t.Errorf("Open of future-version file: err = %v, want ErrBadHeader", err)
	}
}

// TestPropertyWriteReadIdentity is a property test: any page written can be
// read back identically, across a random sequence of allocations.
func TestPropertyWriteReadIdentity(t *testing.T) {
	f := NewMem(Options{PageSize: 256})
	defer f.Close()
	check := func(data [256]byte) bool {
		id, err := f.Allocate()
		if err != nil {
			return false
		}
		if err := f.WritePage(id, data[:]); err != nil {
			return false
		}
		got := make([]byte, 256)
		if err := f.ReadPage(id, got); err != nil {
			return false
		}
		return bytes.Equal(got, data[:])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFreeReallocate checks that freeing then reallocating any set
// of pages never hands out the same page twice concurrently.
func TestPropertyFreeReallocate(t *testing.T) {
	check := func(frees []bool) bool {
		f := NewMem(Options{PageSize: 256})
		defer f.Close()
		if len(frees) > 64 {
			frees = frees[:64]
		}
		ids := make([]PageID, len(frees))
		for i := range frees {
			id, err := f.Allocate()
			if err != nil {
				return false
			}
			ids[i] = id
		}
		freed := 0
		for i, doFree := range frees {
			if doFree {
				if err := f.Free(ids[i]); err != nil {
					return false
				}
				freed++
			}
		}
		// Reallocate; all returned ids must be distinct.
		seen := make(map[PageID]bool)
		for i := 0; i < freed+5; i++ {
			id, err := f.Allocate()
			if err != nil {
				return false
			}
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
