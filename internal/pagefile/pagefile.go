// Package pagefile implements the paged storage manager underneath every
// index in this reproduction. A File is a flat array of fixed-size pages
// addressed by PageID, backed either by an operating-system file or by an
// in-memory store (for tests and benchmarks that want deterministic I/O
// accounting without filesystem noise).
//
// The manager keeps a free list threaded through freed pages so space is
// reused, and counts physical reads and writes so experiments can report
// I/O exactly as the paper does.
package pagefile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"xrtree/internal/metrics"
	"xrtree/internal/obs"
)

// PageID identifies a page within a File. Page 0 is the file header and is
// never handed out; InvalidPage (0) therefore doubles as a nil pointer in
// on-page structures.
type PageID uint32

// InvalidPage is the zero PageID, used as a nil page pointer on disk.
const InvalidPage PageID = 0

// DefaultPageSize is the page size used unless overridden; 4 KiB matches
// common database pages and the scale the paper assumes.
const DefaultPageSize = 4096

// MinPageSize is the smallest supported page size. Small pages are useful
// in tests to force deep trees and multi-page stab lists.
const MinPageSize = 256

const (
	headerMagic = 0x58525446 // "XRTF"
	// headerVersion 2 (the B-link page format): index pages carry a
	// high key and right-sibling link in their headers. Version-1 files
	// (coarse-latch era, no right-links) cannot be patched in place —
	// every index page would need its high key derived from the parent
	// separators — so Open and OpenRepair refuse them with ErrVersion
	// and the caller rebuilds from source.
	headerVersion = 2
	// header layout: magic u32 | version u32 | pageSize u32 | pageCount u32 | freeHead u32
	headerSize = 20
)

// Errors returned by the storage manager.
var (
	ErrPageOutOfRange = errors.New("pagefile: page id out of range")
	ErrBadPageSize    = errors.New("pagefile: invalid page size")
	ErrClosed         = errors.New("pagefile: file is closed")
	ErrBadHeader      = errors.New("pagefile: bad or corrupt file header")
	// ErrVersion means the file is a valid paged file written by an
	// earlier page-format version. Neither Open nor OpenRepair can read
	// it; rebuild the store from its source document(s).
	ErrVersion = errors.New("pagefile: unsupported page-format version (file written by an older release; rebuild the store)")
	// ErrTornTail means the file is shorter than its header's page count —
	// a crash landed between the header write and the extending page write.
	// Open refuses such files; OpenRepair re-extends them so WAL redo can
	// rewrite whatever the tail was supposed to hold.
	ErrTornTail = errors.New("pagefile: file shorter than header page count (torn tail)")
)

// backend abstracts the byte store so File can run over an OS file or RAM.
type backend interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// memBackend is an in-memory backend used by NewMem.
type memBackend struct {
	mu  sync.RWMutex
	buf []byte
}

func (m *memBackend) ReadAt(p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (m *memBackend) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(m.buf)) {
		grown := make([]byte, end)
		copy(grown, m.buf)
		m.buf = grown
	}
	copy(m.buf[off:end], p)
	return len(p), nil
}

func (m *memBackend) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.buf)) {
		m.buf = m.buf[:size]
	}
	return nil
}

func (m *memBackend) Sync() error  { return nil }
func (m *memBackend) Close() error { return nil }

// File is a paged file. Methods are safe for concurrent use; ReadPage and
// WritePage of distinct pages proceed in parallel (they take the mutex in
// read mode — both backends support concurrent page-granular I/O), while
// structural operations (Allocate, Free, Close) are exclusive.
type File struct {
	mu       sync.RWMutex
	b        backend
	pageSize int
	closed   bool

	// header state
	pageCount uint32 // pages allocated, including header page 0
	freeHead  PageID // head of the free-page list

	// stats fields are updated with atomic adds: page I/O runs under the
	// read lock, so concurrent readers would otherwise race on the
	// counters (the same non-atomic-sink pattern fixed in the buffer pool).
	stats metrics.Counters

	// tracer, when non-nil, receives one PageRead/PageWrite event per
	// physical page transfer, mirroring the stats counters exactly.
	// Implementations must be safe for concurrent use (obs.Collector is).
	tracer obs.Tracer

	// Scratch buffers reused across calls that hold f.mu exclusively
	// (writeHeader, Allocate, Free), so the structural paths stop
	// allocating per call. hdr carries the header page image (bytes past
	// headerSize stay zero); zeroPage stays all-zero and extends the file;
	// u32 carries free-list links.
	hdr      []byte
	zeroPage []byte
	u32      [4]byte

	// readBufs pools coalesced-run buffers for ReadPages; runs execute
	// under the read lock so concurrent readers need separate buffers.
	readBufs sync.Pool
}

// maxCoalesce bounds how many physically adjacent pages one ReadPages run
// merges into a single backend ReadAt, which also bounds the pooled run
// buffers at maxCoalesce×pageSize bytes.
const maxCoalesce = 16

// Options configures Create/Open.
type Options struct {
	// PageSize is the page size in bytes; DefaultPageSize if zero.
	PageSize int
}

func (o Options) pageSize() (int, error) {
	ps := o.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps < MinPageSize || ps&(ps-1) != 0 {
		return 0, fmt.Errorf("%w: %d (must be a power of two ≥ %d)", ErrBadPageSize, ps, MinPageSize)
	}
	return ps, nil
}

// Create creates a new paged file at path, truncating any existing file.
func Create(path string, opts Options) (*File, error) {
	ps, err := opts.pageSize()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: create %s: %w", path, err)
	}
	pf := &File{b: f, pageSize: ps, pageCount: 1, freeHead: InvalidPage}
	if err := pf.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

// Open opens an existing paged file created by Create. A file whose byte
// length is shorter than its header's page count fails with ErrTornTail;
// callers with a write-ahead log use OpenRepair instead and let redo
// reconstruct the tail.
func Open(path string) (*File, error) {
	return open(path, false)
}

// OpenRepair opens an existing paged file, re-extending a torn tail with
// zero pages. Only safe when the caller is about to replay a write-ahead
// log over the file: the zeroed tail pages are exactly the ones whose
// extending write was lost, and every committed image of them is in the
// log.
func OpenRepair(path string) (*File, error) {
	return open(path, true)
}

func open(path string, repair bool) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagefile: open %s: %w", path, err)
	}
	pf := &File{b: f}
	if err := pf.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pagefile: stat %s: %w", path, err)
	}
	want := int64(pf.pageCount) * int64(pf.pageSize)
	if st.Size() < want {
		if !repair {
			f.Close()
			return nil, fmt.Errorf("%w: %s is %d bytes, header claims %d", ErrTornTail, path, st.Size(), want)
		}
		// Zero-extend to the claimed length; os.File.Truncate grows with
		// zeros. WAL redo overwrites any page that ever held committed data.
		if err := f.Truncate(want); err != nil {
			f.Close()
			return nil, fmt.Errorf("pagefile: repair %s: %w", path, err)
		}
	}
	return pf, nil
}

// NewMem creates an in-memory paged file. It never touches the filesystem
// but is otherwise identical to a disk-backed file, including I/O counting.
func NewMem(opts Options) *File {
	ps, err := opts.pageSize()
	if err != nil {
		// Options misuse is a programming error in this codebase.
		panic(err)
	}
	pf := &File{b: &memBackend{}, pageSize: ps, pageCount: 1, freeHead: InvalidPage}
	if err := pf.writeHeader(); err != nil {
		panic(err) // cannot fail for the memory backend
	}
	return pf
}

func (f *File) writeHeader() error {
	if f.hdr == nil {
		f.hdr = make([]byte, f.pageSize)
	}
	buf := f.hdr
	putU32(buf[0:], headerMagic)
	putU32(buf[4:], headerVersion)
	putU32(buf[8:], uint32(f.pageSize))
	putU32(buf[12:], f.pageCount)
	putU32(buf[16:], uint32(f.freeHead))
	if _, err := f.b.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("pagefile: write header: %w", err)
	}
	return nil
}

func (f *File) readHeader() error {
	var hdr [headerSize]byte
	buf := hdr[:]
	if _, err := io.ReadFull(readerAt{f.b, 0}, buf); err != nil {
		return fmt.Errorf("pagefile: read header: %w", err)
	}
	if getU32(buf[0:]) != headerMagic {
		return ErrBadHeader
	}
	if v := getU32(buf[4:]); v != headerVersion {
		if v > 0 && v < headerVersion {
			return fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, headerVersion)
		}
		return ErrBadHeader
	}
	ps := int(getU32(buf[8:]))
	if ps < MinPageSize || ps&(ps-1) != 0 {
		return ErrBadHeader
	}
	f.pageSize = ps
	f.pageCount = getU32(buf[12:])
	f.freeHead = PageID(getU32(buf[16:]))
	if f.pageCount == 0 {
		return ErrBadHeader
	}
	return nil
}

// readerAt adapts a backend to io.Reader at a fixed offset.
type readerAt struct {
	b   backend
	off int64
}

func (r readerAt) Read(p []byte) (int, error) {
	n, err := r.b.ReadAt(p, r.off)
	return n, err
}

// PageSize returns the page size in bytes.
func (f *File) PageSize() int { return f.pageSize }

// NumPages returns the number of pages in the file including the header and
// any freed pages.
func (f *File) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int(f.pageCount)
}

// Stats returns a snapshot of the physical I/O counters.
func (f *File) Stats() metrics.Counters {
	return metrics.Counters{
		PhysicalReads:  atomic.LoadInt64(&f.stats.PhysicalReads),
		PhysicalWrites: atomic.LoadInt64(&f.stats.PhysicalWrites),
		ReadCalls:      atomic.LoadInt64(&f.stats.ReadCalls),
	}
}

// ResetStats zeroes the physical I/O counters.
func (f *File) ResetStats() {
	atomic.StoreInt64(&f.stats.PhysicalReads, 0)
	atomic.StoreInt64(&f.stats.PhysicalWrites, 0)
	atomic.StoreInt64(&f.stats.ReadCalls, 0)
}

// SetTracer attaches tr to the file: every physical page read and write
// emits one obs.EvPageRead / obs.EvPageWrite event. Pass nil to detach.
func (f *File) SetTracer(tr obs.Tracer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracer = tr
}

// emit sends one event to the attached tracer; callers hold f.mu in at
// least read mode (which excludes SetTracer's write lock).
func (f *File) emit(kind obs.EventKind) {
	if f.tracer != nil {
		f.tracer.Event(kind, 1)
	}
}

// countRead records one physical page read; callers hold f.mu in at least
// read mode. Atomic because concurrent readers share the counter.
func (f *File) countRead() {
	atomic.AddInt64(&f.stats.PhysicalReads, 1)
	atomic.AddInt64(&f.stats.ReadCalls, 1)
	f.emit(obs.EvPageRead)
}

// countReadRun records one coalesced read call covering n pages; callers
// hold f.mu in at least read mode.
func (f *File) countReadRun(n int) {
	atomic.AddInt64(&f.stats.PhysicalReads, int64(n))
	atomic.AddInt64(&f.stats.ReadCalls, 1)
	if f.tracer != nil {
		f.tracer.Event(obs.EvPageRead, int64(n))
	}
}

// countWrite records one physical page write; callers hold f.mu in at
// least read mode.
func (f *File) countWrite() {
	atomic.AddInt64(&f.stats.PhysicalWrites, 1)
	f.emit(obs.EvPageWrite)
}

// Allocate returns a fresh page, reusing a freed page when available.
// The page contents are undefined; callers must fully initialize it.
func (f *File) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return InvalidPage, ErrClosed
	}
	if f.freeHead != InvalidPage {
		id := f.freeHead
		// The first 4 bytes of a free page hold the next free page.
		buf := f.u32[:]
		if _, err := f.b.ReadAt(buf, int64(id)*int64(f.pageSize)); err != nil {
			return InvalidPage, fmt.Errorf("pagefile: read free list: %w", err)
		}
		f.countRead()
		f.freeHead = PageID(getU32(buf))
		return id, f.writeHeader()
	}
	id := PageID(f.pageCount)
	f.pageCount++
	// Extend the file so the page exists on disk.
	if f.zeroPage == nil {
		f.zeroPage = make([]byte, f.pageSize)
	}
	if _, err := f.b.WriteAt(f.zeroPage, int64(id)*int64(f.pageSize)); err != nil {
		f.pageCount--
		return InvalidPage, fmt.Errorf("pagefile: extend: %w", err)
	}
	f.countWrite()
	return id, f.writeHeader()
}

// Free returns a page to the free list. Freeing the header page or an
// out-of-range page is an error.
func (f *File) Free(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if id == InvalidPage || uint32(id) >= f.pageCount {
		return fmt.Errorf("%w: free %d of %d", ErrPageOutOfRange, id, f.pageCount)
	}
	buf := f.u32[:]
	putU32(buf, uint32(f.freeHead))
	if _, err := f.b.WriteAt(buf, int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: write free list: %w", err)
	}
	f.countWrite()
	f.freeHead = id
	return f.writeHeader()
}

// ReadPage reads page id into dst, which must be exactly PageSize bytes.
// Reads of distinct pages run concurrently.
func (f *File) ReadPage(id PageID, dst []byte) error {
	return f.ReadPageTo(id, dst, nil)
}

// ReadPageTo is ReadPage with per-call read attribution: when tr is
// non-nil the EvPageRead event goes to tr INSTEAD of the file-attached
// tracer (either/or, so a read is never double-counted), which is how a
// request's trace span is charged for exactly the physical reads its miss
// path caused even while other requests hammer the same file. The
// process-wide stats counters are updated either way.
func (f *File) ReadPageTo(id PageID, dst []byte, tr obs.Tracer) error {
	if len(dst) != f.pageSize {
		return fmt.Errorf("pagefile: ReadPage buffer is %d bytes, want %d", len(dst), f.pageSize)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if id == InvalidPage || uint32(id) >= f.pageCount {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, f.pageCount)
	}
	if _, err := f.b.ReadAt(dst, int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: read page %d: %w", id, err)
	}
	atomic.AddInt64(&f.stats.PhysicalReads, 1)
	atomic.AddInt64(&f.stats.ReadCalls, 1)
	if tr != nil {
		tr.Event(obs.EvPageRead, 1)
	} else {
		f.emit(obs.EvPageRead)
	}
	return nil
}

// ReadPages reads len(ids) pages, ids[i] into dsts[i], sorting the batch
// and coalescing physically adjacent pages into single backend ReadAt
// calls (at most maxCoalesce pages per call). It reorders ids and dsts in
// tandem in place, so callers must own both slices. Each dst must be
// exactly PageSize bytes. Reads of distinct batches run concurrently.
func (f *File) ReadPages(ids []PageID, dsts [][]byte) error {
	if len(ids) != len(dsts) {
		return fmt.Errorf("pagefile: ReadPages got %d ids and %d buffers", len(ids), len(dsts))
	}
	for _, dst := range dsts {
		if len(dst) != f.pageSize {
			return fmt.Errorf("pagefile: ReadPages buffer is %d bytes, want %d", len(dst), f.pageSize)
		}
	}
	// Insertion sort by page id, moving the buffers in tandem. Batches are
	// small (prefetch windows), so this beats sort.Slice and allocates
	// nothing.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
			dsts[j], dsts[j-1] = dsts[j-1], dsts[j]
		}
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	for _, id := range ids {
		if id == InvalidPage || uint32(id) >= f.pageCount {
			return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, f.pageCount)
		}
	}
	for i := 0; i < len(ids); {
		// Find the adjacent run starting at i.
		n := 1
		for i+n < len(ids) && n < maxCoalesce && ids[i+n] == ids[i]+PageID(n) {
			n++
		}
		if n == 1 {
			if _, err := f.b.ReadAt(dsts[i], int64(ids[i])*int64(f.pageSize)); err != nil {
				return fmt.Errorf("pagefile: read page %d: %w", ids[i], err)
			}
			f.countRead()
		} else {
			buf, _ := f.readBufs.Get().([]byte)
			if buf == nil {
				buf = make([]byte, maxCoalesce*f.pageSize)
			}
			if _, err := f.b.ReadAt(buf[:n*f.pageSize], int64(ids[i])*int64(f.pageSize)); err != nil {
				f.readBufs.Put(buf)
				return fmt.Errorf("pagefile: read pages %d..%d: %w", ids[i], ids[i+n-1], err)
			}
			for k := 0; k < n; k++ {
				copy(dsts[i+k], buf[k*f.pageSize:(k+1)*f.pageSize])
			}
			f.readBufs.Put(buf)
			f.countReadRun(n)
		}
		i += n
	}
	return nil
}

// WritePage writes src (exactly PageSize bytes) to page id. Writes of
// distinct pages run concurrently; concurrent writes to the same page are
// the caller's race, exactly as with a kernel pwrite.
func (f *File) WritePage(id PageID, src []byte) error {
	if len(src) != f.pageSize {
		return fmt.Errorf("pagefile: WritePage buffer is %d bytes, want %d", len(src), f.pageSize)
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	if id == InvalidPage || uint32(id) >= f.pageCount {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, f.pageCount)
	}
	if _, err := f.b.WriteAt(src, int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: write page %d: %w", id, err)
	}
	f.countWrite()
	return nil
}

// ApplyPage writes a recovered page image, extending the file when id
// lies past the current page count (the crash lost the extending write
// but the image was committed). It implements the WAL recovery applier.
func (f *File) ApplyPage(id PageID, data []byte) error {
	if len(data) != f.pageSize {
		return fmt.Errorf("pagefile: ApplyPage image is %d bytes, want %d", len(data), f.pageSize)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if id == InvalidPage {
		return fmt.Errorf("%w: apply %d", ErrPageOutOfRange, id)
	}
	if _, err := f.b.WriteAt(data, int64(id)*int64(f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: apply page %d: %w", id, err)
	}
	f.countWrite()
	if uint32(id) >= f.pageCount {
		f.pageCount = uint32(id) + 1
		return f.writeHeader()
	}
	return nil
}

// ResetFreeList empties the free-page list. Recovery calls this after a
// non-clean shutdown: the free list is threaded through unlogged link
// writes, so after a crash its links cannot be trusted. The freed pages
// leak (bounded by what was freed since the last clean shutdown), which
// beats handing the allocator a corrupt link.
func (f *File) ResetFreeList() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if f.freeHead == InvalidPage {
		return nil
	}
	f.freeHead = InvalidPage
	return f.writeHeader()
}

// Abandon closes the backend without flushing — the crash harness's way
// of dropping a store on the floor mid-run.
func (f *File) Abandon() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	f.b.Close()
}

// Sync flushes the backend to stable storage.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return f.b.Sync()
}

// Close flushes the header and closes the backend. Further operations fail
// with ErrClosed.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if err := f.b.Sync(); err != nil {
		f.b.Close()
		return err
	}
	return f.b.Close()
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
