package pagefile

import (
	"bytes"
	"testing"
)

// fillPage writes a page whose every byte is the low byte of its id, so
// reads can be verified against the id they claim to carry.
func fillPage(t *testing.T, f *File, id PageID) {
	t.Helper()
	buf := bytes.Repeat([]byte{byte(id)}, f.PageSize())
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
}

func TestReadPagesCoalescesAdjacentRuns(t *testing.T) {
	f := NewMem(Options{PageSize: MinPageSize})
	defer f.Close()
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(t, f, id)
		ids = append(ids, id)
	}
	f.ResetStats()

	// Request pages {7,2,3,4,9} out of order: run 2-3-4 coalesces into one
	// call, 7 and 9 are singletons — 5 pages in 3 calls.
	req := []PageID{ids[6], ids[1], ids[2], ids[3], ids[8]}
	dsts := make([][]byte, len(req))
	for i := range dsts {
		dsts[i] = make([]byte, f.PageSize())
	}
	want := append([]PageID(nil), req...)
	if err := f.ReadPages(req, dsts); err != nil {
		t.Fatal(err)
	}
	// ReadPages sorts in tandem: every returned buffer must match its id.
	for i, id := range req {
		for _, b := range dsts[i] {
			if b != byte(id) {
				t.Fatalf("page %d: got byte %d, want %d", id, b, byte(id))
			}
		}
	}
	// Same set of pages, reordered.
	got := append([]PageID(nil), req...)
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("page %d lost during ReadPages reorder", w)
		}
	}
	st := f.Stats()
	if st.PhysicalReads != 5 {
		t.Fatalf("PhysicalReads = %d, want 5", st.PhysicalReads)
	}
	if st.ReadCalls != 3 {
		t.Fatalf("ReadCalls = %d, want 3 (run 2-3-4 plus two singletons)", st.ReadCalls)
	}
}

func TestReadPagesFullRunOneCall(t *testing.T) {
	f := NewMem(Options{PageSize: MinPageSize})
	defer f.Close()
	var ids []PageID
	for i := 0; i < 8; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(t, f, id)
		ids = append(ids, id)
	}
	f.ResetStats()
	dsts := make([][]byte, len(ids))
	for i := range dsts {
		dsts[i] = make([]byte, f.PageSize())
	}
	if err := f.ReadPages(append([]PageID(nil), ids...), dsts); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.PhysicalReads != 8 || st.ReadCalls != 1 {
		t.Fatalf("reads=%d calls=%d, want 8 pages in 1 call", st.PhysicalReads, st.ReadCalls)
	}
}

func TestReadPagesValidation(t *testing.T) {
	f := NewMem(Options{PageSize: MinPageSize})
	defer f.Close()
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	good := make([]byte, f.PageSize())
	if err := f.ReadPages([]PageID{id}, [][]byte{make([]byte, 8)}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := f.ReadPages([]PageID{id, id}, [][]byte{good}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := f.ReadPages([]PageID{InvalidPage}, [][]byte{good}); err == nil {
		t.Fatal("header page read accepted")
	}
	if err := f.ReadPages([]PageID{id + 99}, [][]byte{good}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestSingleReadCountsOneCall(t *testing.T) {
	f := NewMem(Options{PageSize: MinPageSize})
	defer f.Close()
	id, err := f.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fillPage(t, f, id)
	f.ResetStats()
	buf := make([]byte, f.PageSize())
	if err := f.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.PhysicalReads != 1 || st.ReadCalls != 1 {
		t.Fatalf("reads=%d calls=%d, want 1 and 1", st.PhysicalReads, st.ReadCalls)
	}
}
