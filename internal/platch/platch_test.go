package platch

import (
	"sync"
	"sync/atomic"
	"testing"

	"xrtree/internal/pagefile"
)

// TestExclusion verifies writer/writer and writer/reader exclusion per
// page, and that distinct pages do not exclude each other.
func TestExclusion(t *testing.T) {
	tab := NewTable()
	var counter int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tab.Lock(7)
				c := atomic.AddInt64(&counter, 1)
				if c != 1 {
					t.Errorf("exclusive latch held by %d goroutines", c)
				}
				atomic.AddInt64(&counter, -1)
				tab.Unlock(7)
				// A different page must be independent even when it maps
				// to the same shard (7 + latchShards).
				tab.Lock(7 + latchShards)
				tab.Unlock(7 + latchShards)
			}
		}()
	}
	wg.Wait()
	checkQuiesced(t, tab)
}

// checkQuiesced asserts the retention invariant on an idle table: no
// entry is referenced, and each shard holds at most coldCap resident
// entries (every cooled entry has a cold-list marker, and the list is
// pruned to coldCap on overflow).
func checkQuiesced(t *testing.T, tab *Table) {
	t.Helper()
	for i := range tab.shards {
		s := &tab.shards[i]
		if n := len(s.m); n > coldCap {
			t.Fatalf("shard %d retains %d latch entries after quiesce, cap %d", i, n, coldCap)
		}
		for id, e := range s.m {
			if e.refs != 0 {
				t.Fatalf("shard %d page %d: %d refs after quiesce", i, id, e.refs)
			}
		}
	}
}

// TestSharedReaders verifies multiple readers hold one page concurrently.
func TestSharedReaders(t *testing.T) {
	tab := NewTable()
	const readers = 4
	var inside sync.WaitGroup
	inside.Add(readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tab.RLock(3)
			inside.Done()
			inside.Wait() // all readers inside simultaneously
			tab.RUnlock(3)
		}()
	}
	wg.Wait()
}

// TestTryRLock verifies the advisory acquisition fails without blocking
// against a writer and releases its reference either way.
func TestTryRLock(t *testing.T) {
	tab := NewTable()
	id := pagefile.PageID(11)
	tab.Lock(id)
	if tab.TryRLock(id) {
		t.Fatal("TryRLock succeeded against a held exclusive latch")
	}
	tab.Unlock(id)
	if !tab.TryRLock(id) {
		t.Fatal("TryRLock failed on an idle latch")
	}
	tab.RUnlock(id)
	checkQuiesced(t, tab)
}

// TestColdRetention verifies that a page latched repeatedly keeps its
// entry resident between acquisitions (no map churn on the hot path)
// and that a scan over many distinct pages stays within the retention
// bound instead of growing the table.
func TestColdRetention(t *testing.T) {
	tab := NewTable()
	id := pagefile.PageID(9)
	tab.Lock(id)
	e := tab.shard(id).m[id]
	tab.Unlock(id)
	if got := tab.shard(id).m[id]; got != e {
		t.Fatal("hot entry was not retained across unlock")
	}
	// Touch many pages in one shard; eviction must bound residency.
	for i := 0; i < 10*coldCap; i++ {
		p := pagefile.PageID(uint64(i) * latchShards)
		tab.RLock(p)
		tab.RUnlock(p)
	}
	checkQuiesced(t, tab)
}

// TestCoupling verifies the left-to-right coupling pattern (hold left,
// LockRight the sibling) interleaves safely with single-latch writers.
func TestCoupling(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tab.Lock(1)
				tab.LockRight(2)
				tab.Unlock(2)
				tab.Unlock(1)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tab.Lock(2)
				tab.Unlock(2)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkRLockRUnlock(b *testing.B) {
	tab := NewTable()
	b.RunParallel(func(pb *testing.PB) {
		id := pagefile.PageID(5)
		for pb.Next() {
			tab.RLock(id)
			tab.RUnlock(id)
		}
	})
}
