// Package platch provides per-page latches: short-term reader/writer
// locks keyed by page id, the concurrency primitive behind the B-link
// protocol in btree and core (see DESIGN.md "Index latching").
//
// A Table hands out refcounted RWMutexes on demand. Latches are created
// the first time a page is latched and linger briefly after the last
// holder leaves (a bounded per-shard cold list), so a page latched
// repeatedly — a leaf absorbing sequential inserts, a hot stab home —
// does not pay a map insert and delete per acquisition. An idle table's
// footprint is a few dozen entries per shard, independent of tree size,
// and evicted entries are recycled through a free list so steady-state
// latching does not allocate.
//
// Latches are keyed by id in a sharded map rather than hashed onto a
// fixed stripe array: with striping, two distinct pages can share a
// stripe, and a writer coupling "latch right sibling while holding the
// left" would self-deadlock when both hash to the same stripe. Refcounted
// entries make every page's latch independent, so the B-link ordering
// rules (top-to-bottom, left-to-right, never left-or-parent while
// holding right-or-child) are the only deadlock-freedom requirements.
//
// Lock ordering: page latches sit between the WAL checkpoint gate and the
// buffer-pool shard mutexes (level 3 of the latchorder analyzer). Within
// the level, acquiring a second page latch while holding one must go
// through LockRight, which documents — and lets the analyzer verify —
// that the second page is to the right of (or below) every held one.
package platch

import (
	"sync"

	"xrtree/internal/pagefile"
)

// latchShards is the shard count of the id → latch map; latching is a
// per-page-access hot path, so the map itself must not serialize readers.
const latchShards = 64

// entry is one live latch: its RWMutex plus the number of goroutines
// holding or waiting for it.
type entry struct {
	mu   sync.RWMutex
	refs int
}

// coldCap bounds the per-shard FIFO of eviction candidates: ids whose
// entry hit refs == 0 and was left resident in the map. Candidates are
// appended on every cool-down, so a hot page appears many times and is
// re-evaluated (refs check) at eviction time rather than tracked.
const coldCap = 32

// latchShard is one shard of the latch table.
type latchShard struct {
	mu   sync.Mutex
	m    map[pagefile.PageID]*entry
	cold []pagefile.PageID
	free []*entry
}

// Table is a set of per-page latches. The zero value is not ready; use
// NewTable.
type Table struct {
	shards [latchShards]latchShard
}

// NewTable returns an empty latch table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[pagefile.PageID]*entry)
	}
	return t
}

func (t *Table) shard(id pagefile.PageID) *latchShard {
	return &t.shards[uint64(id)%latchShards]
}

// pin returns the latch entry for id, creating it if needed, with its
// refcount raised by one.
func (s *latchShard) pin(id pagefile.PageID) *entry {
	s.mu.Lock()
	e := s.m[id]
	if e == nil {
		if n := len(s.free); n > 0 {
			e = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			e = &entry{}
		}
		s.m[id] = e
	}
	e.refs++
	s.mu.Unlock()
	return e
}

// unpin drops one reference to id's latch entry, recycling it when the
// last holder leaves.
func (s *latchShard) unpin(id pagefile.PageID) {
	s.mu.Lock()
	s.unpinLocked(id)
	s.mu.Unlock()
}

func (s *latchShard) unpinLocked(id pagefile.PageID) {
	e := s.m[id]
	e.refs--
	if e.refs == 0 {
		s.cold = append(s.cold, id)
		if len(s.cold) > coldCap {
			s.evictLocked()
		}
	}
}

// evictLocked deletes the older half of the cold candidates that are
// still unreferenced. A candidate may be stale — re-pinned since it
// cooled, or a duplicate of one already evicted — in which case the
// refs check skips it (or, for an id that cooled again after a
// re-create, evicts a recently idle entry early, which only costs a
// future re-insert). An entry at refs == 0 has no holder and no waiter
// — both pin before locking — so recycling its mutex is safe.
func (s *latchShard) evictLocked() {
	n := len(s.cold) / 2
	for _, id := range s.cold[:n] {
		if e := s.m[id]; e != nil && e.refs == 0 {
			delete(s.m, id)
			if len(s.free) < 32 {
				s.free = append(s.free, e)
			}
		}
	}
	s.cold = append(s.cold[:0], s.cold[n:]...)
}

// release is the combined lookup-unlock-unpin of the Unlock/RUnlock
// paths, in one shard-mutex cycle. Unlocking e.mu while the shard mutex
// is held cannot deadlock: waiters it wakes blocked inside e.mu after
// pin already released the shard mutex.
func (s *latchShard) release(id pagefile.PageID, shared bool) {
	s.mu.Lock()
	e := s.m[id]
	if shared {
		e.mu.RUnlock()
	} else {
		e.mu.Unlock()
	}
	s.unpinLocked(id)
	s.mu.Unlock()
}

// Lock acquires id's latch exclusively. The caller must hold no other
// page latch (use LockRight for the coupling acquisitions).
func (t *Table) Lock(id pagefile.PageID) {
	t.shard(id).pin(id).mu.Lock()
}

// LockRight is Lock for the latch-coupling acquisitions of the B-link
// protocol: the caller already holds one or more page latches and id is
// to the right of — or below — every one of them (a right sibling during
// a split's chain relink, or a child pair under its latched parent
// during rebalancing). Acquiring a left sibling or a parent through
// LockRight is an ordering bug; the latchorder analyzer flags plain
// Lock/RLock when a page latch is already held, so every coupling site
// is forced through here and is auditable.
func (t *Table) LockRight(id pagefile.PageID) {
	t.shard(id).pin(id).mu.Lock()
}

// Unlock releases an exclusive latch on id.
func (t *Table) Unlock(id pagefile.PageID) {
	t.shard(id).release(id, false)
}

// RLock acquires id's latch shared. Readers hold at most one page latch
// at a time (the B-link descent re-latches per hop), so there is no
// shared coupling variant.
func (t *Table) RLock(id pagefile.PageID) {
	t.shard(id).pin(id).mu.RLock()
}

// TryRLock acquires id's latch shared without blocking, reporting
// success. Advisory paths (readahead hints) use it so they never queue
// behind a writer.
func (t *Table) TryRLock(id pagefile.PageID) bool {
	s := t.shard(id)
	e := s.pin(id)
	if e.mu.TryRLock() {
		return true
	}
	s.unpin(id)
	return false
}

// RUnlock releases a shared latch on id.
func (t *Table) RUnlock(id pagefile.PageID) {
	t.shard(id).release(id, true)
}
