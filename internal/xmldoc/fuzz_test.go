package xmldoc

import (
	"bytes"
	"testing"
)

// FuzzParseDocument feeds arbitrary bytes through Parse under both the
// minimal and the fully materialized option sets and checks the region
// encoding invariants on every accepted document: strict (Start, End)
// regions, strict containment of children, and level bookkeeping —
// exactly the properties the structural joins rely on.
func FuzzParseDocument(f *testing.F) {
	f.Add([]byte("<a><b/></a>"))
	f.Add([]byte("<dept><name>X</name><employee id=\"1\"><email>e</email></employee></dept>"))
	f.Add([]byte("<a>text<b>more</b>tail</a>"))
	f.Add([]byte("<a><b><c><d/></c></b></a>"))
	f.Add([]byte("<a><!-- comment --><?pi data?><b/></a>"))
	f.Add([]byte("<a xmlns:x=\"u\"><x:b/></a>"))
	f.Add([]byte("<a><b></a></b>"))
	f.Add([]byte("</a>"))
	f.Add([]byte(""))
	f.Add([]byte("<a>&lt;&#65;</a>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range []ParseOptions{
			{DocID: 1},
			{DocID: 2, PositionGap: 100, KeepText: true, IncludeAttributes: true, IncludeText: true},
		} {
			doc, err := Parse(bytes.NewReader(data), opts)
			if err != nil {
				continue
			}
			if doc.Root == nil {
				t.Fatalf("opts %+v: nil root without error", opts)
			}
			checkRegions(t, doc.Root, nil)
			if got, want := len(doc.AllElements()), doc.NumElements(); got != want {
				t.Fatalf("opts %+v: AllElements returned %d elements, NumElements says %d", opts, got, want)
			}
		}
	})
}

// checkRegions walks the node tree verifying the §2.1 region encoding.
func checkRegions(t *testing.T, n *Node, parent *Node) {
	t.Helper()
	if n.Element.Start >= n.Element.End {
		t.Fatalf("node %q: degenerate region (%d,%d)", n.Tag, n.Element.Start, n.Element.End)
	}
	if parent != nil {
		if n.Parent != parent {
			t.Fatalf("node %q: wrong parent link", n.Tag)
		}
		if n.Element.Start <= parent.Element.Start || n.Element.End >= parent.Element.End {
			t.Fatalf("node %q (%d,%d) not strictly inside parent %q (%d,%d)",
				n.Tag, n.Element.Start, n.Element.End, parent.Tag, parent.Element.Start, parent.Element.End)
		}
		if n.Element.Level != parent.Element.Level+1 {
			t.Fatalf("node %q: level %d under parent level %d", n.Tag, n.Element.Level, parent.Element.Level)
		}
	}
	last := n.Element.Start
	for _, c := range n.Children {
		if c.Element.Start <= last {
			t.Fatalf("node %q: children out of document order", n.Tag)
		}
		last = c.Element.End
		checkRegions(t, c, n)
	}
}
