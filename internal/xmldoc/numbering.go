package xmldoc

import (
	"errors"
	"fmt"
)

// This file implements the two alternative numbering schemes surveyed in
// §2.1 of the paper alongside region encoding, with converters from a
// parsed Document. They are not used by the XR-tree itself (which indexes
// region codes) but are provided — and cross-checked in tests — because the
// paper positions region encoding against them and downstream users may
// hold data numbered either way.

// DurableCode is the durable numbering scheme of Li & Moon / Chien et al.:
// each element is numbered (order, size) and u is an ancestor of v iff
// u.Order < v.Order < u.Order + u.Size.
type DurableCode struct {
	Order uint32
	Size  uint32
}

// IsAncestorOf reports the ancestor relation under durable numbering.
func (u DurableCode) IsAncestorOf(v DurableCode) bool {
	return u.Order < v.Order && v.Order < u.Order+u.Size
}

// DietzCode is Dietz's numbering: (preorder, postorder) tree traversal
// ranks. u is an ancestor of v iff u.Pre < v.Pre and v.Post < u.Post.
type DietzCode struct {
	Pre  uint32
	Post uint32
}

// IsAncestorOf reports the ancestor relation under Dietz numbering.
func (u DietzCode) IsAncestorOf(v DietzCode) bool {
	return u.Pre < v.Pre && v.Post < u.Post
}

// DurableCodes assigns durable (order, size) codes to every element of d,
// indexed by Element.Ref. Order is the preorder rank scaled by a gap of 1;
// Size counts the descendants (so order+size bounds the subtree).
func (d *Document) DurableCodes() []DurableCode {
	codes := make([]DurableCode, len(d.nodes))
	var order uint32
	var walk func(n *Node) uint32 // returns subtree node count
	walk = func(n *Node) uint32 {
		order++
		my := order
		var count uint32 = 1
		for _, c := range n.Children {
			count += walk(c)
		}
		codes[n.Element.Ref] = DurableCode{Order: my, Size: count}
		return count
	}
	if d.Root != nil {
		walk(d.Root)
	}
	return codes
}

// DietzCodes assigns (preorder, postorder) codes to every element of d,
// indexed by Element.Ref.
func (d *Document) DietzCodes() []DietzCode {
	codes := make([]DietzCode, len(d.nodes))
	var pre, post uint32
	var walk func(n *Node)
	walk = func(n *Node) {
		pre++
		codes[n.Element.Ref] = DietzCode{Pre: pre}
		for _, c := range n.Children {
			walk(c)
		}
		post++
		codes[n.Element.Ref].Post = post
	}
	if d.Root != nil {
		walk(d.Root)
	}
	return codes
}

// FromDurable converts durably numbered elements to region-encoded ones so
// data numbered with the (order, size) scheme can be indexed by an XR-tree
// directly. Durable intervals are half-open ([order, order+size)), so
// sibling intervals may touch; mapping onto a doubled axis —
// Start = 2·order, End = 2·(order+size) − 1 — yields strict regions while
// preserving the ancestor relation exactly:
// u.order < v.order < u.order + u.size ⟺ u.Start < v.Start < u.End.
// Levels are reconstructed by a stack sweep and Refs are assigned in
// order. The input must describe a strictly nested forest sorted by Order;
// ErrNotNested is returned otherwise.
func FromDurable(docID uint32, codes []DurableCode) ([]Element, error) {
	out := make([]Element, len(codes))
	var stack []Element
	for i, c := range codes {
		if i > 0 && codes[i-1].Order >= c.Order {
			return nil, fmt.Errorf("%w: orders not strictly increasing at %d", ErrNotNested, i)
		}
		if c.Size == 0 {
			return nil, fmt.Errorf("%w: zero size at %d", ErrNotNested, i)
		}
		e := Element{DocID: docID, Start: 2 * c.Order, End: 2*(c.Order+c.Size) - 1, Ref: uint32(i)}
		for len(stack) > 0 && stack[len(stack)-1].End < e.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if !top.Contains(e) {
				return nil, fmt.Errorf("%w: %v and %v partially overlap", ErrNotNested, top, e)
			}
			e.Level = top.Level + 1
		} else {
			e.Level = 1
		}
		stack = append(stack, e)
		out[i] = e
	}
	return out, nil
}

// FromDietz converts Dietz-numbered elements ((preorder, postorder) ranks)
// to region-encoded ones. The regions are synthesized on a fresh position
// axis — two numbers per element assigned during a stack sweep — such that
// the ancestor relation is preserved exactly: u is an ancestor of v under
// Dietz numbering iff the returned u.Start < v.Start < u.End. The input
// must be sorted by Pre with distinct ranks; ErrNotNested otherwise.
func FromDietz(docID uint32, codes []DietzCode) ([]Element, error) {
	out := make([]Element, len(codes))
	type open struct {
		idx  int
		post uint32
	}
	var stack []open
	var pos Position
	next := func() Position { pos++; return pos }
	for i, c := range codes {
		if i > 0 && codes[i-1].Pre >= c.Pre {
			return nil, fmt.Errorf("%w: preorders not strictly increasing at %d", ErrNotNested, i)
		}
		// Close every open element that is not an ancestor of this one:
		// ancestors have a larger postorder.
		for len(stack) > 0 && stack[len(stack)-1].post < c.Post {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out[top.idx].End = next()
		}
		out[i] = Element{
			DocID: docID,
			Start: next(),
			Level: uint16(len(stack) + 1),
			Ref:   uint32(i),
		}
		stack = append(stack, open{idx: i, post: c.Post})
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out[top.idx].End = next()
	}
	return out, nil
}

// ErrNotNested is returned by the numbering converters for input that does
// not describe a strictly nested forest.
var ErrNotNested = errors.New("xmldoc: input is not a strictly nested forest")
