package xmldoc

import (
	"errors"
	"math/rand"
	"testing"
)

// randomDoc builds a random strictly nested document for converter tests.
func randomDoc(t *testing.T, seed int64, n int) *Document {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(1, 1)
	count := 0
	var build func(depth int)
	build = func(depth int) {
		count++
		b.Open("n")
		kids := rng.Intn(3)
		if depth > 7 {
			kids = 0
		}
		for i := 0; i < kids && count < n; i++ {
			build(depth + 1)
		}
		b.Close()
	}
	b.Open("root")
	for count < n {
		build(1)
	}
	b.Close()
	doc, err := b.Document()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestFromDurableRoundTrip(t *testing.T) {
	doc := randomDoc(t, 5, 200)
	dur := doc.DurableCodes()
	// Durable codes are indexed by Ref = document order, which is also
	// ascending Order, so they are already sorted.
	els, err := FromDurable(9, dur)
	if err != nil {
		t.Fatalf("FromDurable: %v", err)
	}
	orig := doc.AllElements()
	if len(els) != len(orig) {
		t.Fatalf("length %d, want %d", len(els), len(orig))
	}
	if err := ValidateStrictNesting(els); err != nil {
		t.Fatalf("converted elements not nested: %v", err)
	}
	for i := range orig {
		for j := range orig {
			if i == j {
				continue
			}
			if orig[i].IsAncestorOf(orig[j]) != els[i].IsAncestorOf(els[j]) {
				t.Fatalf("ancestor relation differs for pair (%d,%d)", i, j)
			}
		}
	}
	// Levels must be reconstructed identically.
	for i := range orig {
		if els[i].Level != orig[i].Level {
			t.Fatalf("element %d level %d, want %d", i, els[i].Level, orig[i].Level)
		}
	}
}

func TestFromDietzRoundTrip(t *testing.T) {
	doc := randomDoc(t, 7, 200)
	dz := doc.DietzCodes()
	els, err := FromDietz(9, dz)
	if err != nil {
		t.Fatalf("FromDietz: %v", err)
	}
	orig := doc.AllElements()
	if err := ValidateStrictNesting(els); err != nil {
		t.Fatalf("converted elements not nested: %v", err)
	}
	for i := range orig {
		for j := range orig {
			if i == j {
				continue
			}
			if orig[i].IsAncestorOf(orig[j]) != els[i].IsAncestorOf(els[j]) {
				t.Fatalf("ancestor relation differs for pair (%d,%d)", i, j)
			}
		}
		if els[i].Level != orig[i].Level {
			t.Fatalf("element %d level %d, want %d", i, els[i].Level, orig[i].Level)
		}
	}
}

func TestFromDurableErrors(t *testing.T) {
	bad := []DurableCode{{Order: 5, Size: 2}, {Order: 5, Size: 1}}
	if _, err := FromDurable(1, bad); !errors.Is(err, ErrNotNested) {
		t.Errorf("unsorted orders: err = %v", err)
	}
	zero := []DurableCode{{Order: 1, Size: 0}}
	if _, err := FromDurable(1, zero); !errors.Is(err, ErrNotNested) {
		t.Errorf("zero size: err = %v", err)
	}
	overlap := []DurableCode{{Order: 1, Size: 5}, {Order: 4, Size: 10}}
	if _, err := FromDurable(1, overlap); !errors.Is(err, ErrNotNested) {
		t.Errorf("partial overlap: err = %v", err)
	}
	if els, err := FromDurable(1, nil); err != nil || len(els) != 0 {
		t.Errorf("empty input: %v, %v", els, err)
	}
}

func TestFromDietzErrors(t *testing.T) {
	bad := []DietzCode{{Pre: 2, Post: 1}, {Pre: 2, Post: 2}}
	if _, err := FromDietz(1, bad); !errors.Is(err, ErrNotNested) {
		t.Errorf("unsorted preorders: err = %v", err)
	}
	if els, err := FromDietz(1, nil); err != nil || len(els) != 0 {
		t.Errorf("empty input: %v, %v", els, err)
	}
}

func TestFromDurableSingleAndChain(t *testing.T) {
	// One element.
	els, err := FromDurable(1, []DurableCode{{Order: 10, Size: 3}})
	if err != nil || len(els) != 1 || els[0].Level != 1 {
		t.Fatalf("single: %v, %v", els, err)
	}
	// A pure chain a ⊃ b ⊃ c.
	chain := []DurableCode{{Order: 1, Size: 10}, {Order: 2, Size: 5}, {Order: 3, Size: 2}}
	els, err = FromDurable(1, chain)
	if err != nil {
		t.Fatal(err)
	}
	if els[0].Level != 1 || els[1].Level != 2 || els[2].Level != 3 {
		t.Errorf("chain levels: %v", els)
	}
	if !els[0].IsAncestorOf(els[2]) || !els[1].IsAncestorOf(els[2]) {
		t.Error("chain ancestry broken")
	}
}
