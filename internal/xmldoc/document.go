package xmldoc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Node is one element node of a parsed document tree.
type Node struct {
	Tag      string
	Element  Element
	Parent   *Node
	Children []*Node
	// Text holds the concatenated character data directly under this node.
	Text string
}

// Document is a parsed, region-encoded XML document.
type Document struct {
	DocID uint32
	Root  *Node
	// nodes is the node list in document order; index = Element.Ref.
	nodes []*Node
	// tagMu guards byTag: concurrent queries (the serving layer) extract
	// tag sets from one shared document.
	tagMu sync.RWMutex
	// byTag caches tag → elements extraction results.
	byTag map[string][]Element
	// maxPos is the largest position assigned.
	maxPos Position
}

// ErrEmptyDocument is returned when parsing input with no root element.
var ErrEmptyDocument = errors.New("xmldoc: document has no root element")

// ParseOptions configures Parse.
type ParseOptions struct {
	// DocID is the document identifier stamped on every element.
	DocID uint32
	// PositionGap is the increment between consecutive assigned positions.
	// The paper's Figure 1 leaves gaps (1,100 / 2,15 / …) so later
	// insertions have room; a gap of 1 packs positions densely. Zero means 1.
	PositionGap uint32
	// KeepText retains character data on nodes (off by default: the join
	// experiments only need structure).
	KeepText bool
	// IncludeAttributes materializes each attribute as a region-encoded
	// child node tagged "@name", following the paper's tree model where
	// "nodes represent elements, attributes and text data" (§2). Attribute
	// nodes carry their value as Text and can participate in structural
	// joins like any element.
	IncludeAttributes bool
	// IncludeText materializes each non-empty character-data run as a
	// region-encoded child node tagged "#text" whose Text holds the data.
	IncludeText bool
}

func (o ParseOptions) gap() uint32 {
	if o.PositionGap == 0 {
		return 1
	}
	return o.PositionGap
}

// Parse reads XML from r and region-encodes every element by depth-first
// traversal, assigning a number at each visit (opening and closing tag)
// exactly as §2.1 describes.
func Parse(r io.Reader, opts ParseOptions) (*Document, error) {
	dec := xml.NewDecoder(r)
	doc := &Document{DocID: opts.DocID, byTag: make(map[string][]Element)}
	gap := opts.gap()
	var pos Position
	next := func() Position {
		pos += gap
		return pos
	}
	var stack []*Node
	var textBuf strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{
				Tag: t.Name.Local,
				Element: Element{
					DocID: opts.DocID,
					Start: next(),
					Level: uint16(len(stack) + 1),
					Ref:   uint32(len(doc.nodes)),
				},
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				n.Parent = parent
				parent.Children = append(parent.Children, n)
			} else if doc.Root == nil {
				doc.Root = n
			} else {
				return nil, errors.New("xmldoc: multiple root elements")
			}
			doc.nodes = append(doc.nodes, n)
			stack = append(stack, n)
			if opts.IncludeAttributes {
				for _, attr := range t.Attr {
					a := &Node{
						Tag:  "@" + attr.Name.Local,
						Text: attr.Value,
						Element: Element{
							DocID: opts.DocID,
							Start: next(),
							Level: uint16(len(stack) + 1),
							Ref:   uint32(len(doc.nodes)),
						},
						Parent: n,
					}
					a.Element.End = next()
					n.Children = append(n.Children, a)
					doc.nodes = append(doc.nodes, a)
				}
			}
			textBuf.Reset()
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldoc: unbalanced end element")
			}
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n.Element.End = next()
			if opts.KeepText && n.Text == "" {
				n.Text = strings.TrimSpace(textBuf.String())
			}
			textBuf.Reset()
		case xml.CharData:
			if opts.IncludeText {
				if txt := strings.TrimSpace(string(t)); txt != "" && len(stack) > 0 {
					parent := stack[len(stack)-1]
					tn := &Node{
						Tag:  "#text",
						Text: txt,
						Element: Element{
							DocID: opts.DocID,
							Start: next(),
							Level: uint16(len(stack) + 1),
							Ref:   uint32(len(doc.nodes)),
						},
						Parent: parent,
					}
					tn.Element.End = next()
					parent.Children = append(parent.Children, tn)
					doc.nodes = append(doc.nodes, tn)
				}
			}
			if opts.KeepText {
				textBuf.Write(t)
			}
		}
	}
	if doc.Root == nil {
		return nil, ErrEmptyDocument
	}
	if len(stack) != 0 {
		return nil, errors.New("xmldoc: unclosed elements at EOF")
	}
	doc.maxPos = pos
	return doc, nil
}

// ParseString is Parse over a string, for tests and examples.
func ParseString(s string, opts ParseOptions) (*Document, error) {
	return Parse(strings.NewReader(s), opts)
}

// NumElements returns the number of element nodes in the document.
func (d *Document) NumElements() int { return len(d.nodes) }

// MaxPosition returns the largest region position assigned.
func (d *Document) MaxPosition() Position { return d.maxPos }

// Node returns the node with the given Ref (document-order ordinal).
func (d *Document) Node(ref uint32) (*Node, bool) {
	if int(ref) >= len(d.nodes) {
		return nil, false
	}
	return d.nodes[ref], true
}

// ElementsByTag returns the start-sorted element set for one tag name —
// the input lists a structural join consumes. The slice is cached and must
// not be modified by callers.
func (d *Document) ElementsByTag(tag string) []Element {
	d.tagMu.RLock()
	es, ok := d.byTag[tag]
	d.tagMu.RUnlock()
	if ok {
		return es
	}
	d.tagMu.Lock()
	defer d.tagMu.Unlock()
	if es, ok := d.byTag[tag]; ok {
		return es
	}
	for _, n := range d.nodes {
		if n.Tag == tag {
			es = append(es, n.Element)
		}
	}
	// Document order already sorts by start, but be defensive.
	SortByStart(es)
	d.byTag[tag] = es
	return es
}

// Tags returns the distinct tag names in the document, sorted.
func (d *Document) Tags() []string {
	seen := make(map[string]bool)
	for _, n := range d.nodes {
		seen[n.Tag] = true
	}
	tags := make([]string, 0, len(seen))
	for t := range seen {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// AllElements returns every element in document (= start) order.
func (d *Document) AllElements() []Element {
	es := make([]Element, len(d.nodes))
	for i, n := range d.nodes {
		es[i] = n.Element
	}
	return es
}

// Builder constructs a document tree directly, bypassing XML text. The
// synthetic data generator uses it to build large corpora quickly; tests
// verify it agrees with Parse over the serialized form.
type Builder struct {
	doc   *Document
	stack []*Node
	pos   Position
	gap   uint32
	err   error
}

// NewBuilder returns a Builder for a new document.
func NewBuilder(docID uint32, positionGap uint32) *Builder {
	if positionGap == 0 {
		positionGap = 1
	}
	return &Builder{
		doc: &Document{DocID: docID, byTag: make(map[string][]Element)},
		gap: positionGap,
	}
}

// Open starts a new element with the given tag as a child of the current
// element (or as the root).
func (b *Builder) Open(tag string) *Builder {
	if b.err != nil {
		return b
	}
	b.pos += b.gap
	n := &Node{
		Tag: tag,
		Element: Element{
			DocID: b.doc.DocID,
			Start: b.pos,
			Level: uint16(len(b.stack) + 1),
			Ref:   uint32(len(b.doc.nodes)),
		},
	}
	if len(b.stack) > 0 {
		parent := b.stack[len(b.stack)-1]
		n.Parent = parent
		parent.Children = append(parent.Children, n)
	} else if b.doc.Root == nil {
		b.doc.Root = n
	} else {
		b.err = errors.New("xmldoc: builder: multiple root elements")
		return b
	}
	b.doc.nodes = append(b.doc.nodes, n)
	b.stack = append(b.stack, n)
	return b
}

// Close ends the current element.
func (b *Builder) Close() *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) == 0 {
		b.err = errors.New("xmldoc: builder: close with no open element")
		return b
	}
	b.pos += b.gap
	n := b.stack[len(b.stack)-1]
	n.Element.End = b.pos
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Leaf emits an element with no children (Open immediately followed by Close).
func (b *Builder) Leaf(tag string) *Builder { return b.Open(tag).Close() }

// Text sets the text of the currently open element.
func (b *Builder) Text(s string) *Builder {
	if b.err == nil && len(b.stack) > 0 {
		b.stack[len(b.stack)-1].Text = s
	}
	return b
}

// Document finishes the build and returns the document.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.doc.Root == nil {
		return nil, ErrEmptyDocument
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmldoc: builder: %d unclosed elements", len(b.stack))
	}
	b.doc.maxPos = b.pos
	return b.doc, nil
}

// WriteXML serializes the document as XML text to w. Together with Parse it
// round-trips the structure; tests use it to prove Builder ≡ Parse.
// Attribute nodes ("@name") render as attributes of their parent's opening
// tag and text nodes ("#text") as character data.
func (d *Document) WriteXML(w io.Writer) error {
	var write func(n *Node) error
	write = func(n *Node) error {
		if _, err := fmt.Fprintf(w, "<%s", n.Tag); err != nil {
			return err
		}
		for _, c := range n.Children {
			if strings.HasPrefix(c.Tag, "@") {
				if _, err := fmt.Fprintf(w, " %s=%q", c.Tag[1:], c.Text); err != nil {
					return err
				}
			}
		}
		if _, err := io.WriteString(w, ">"); err != nil {
			return err
		}
		if n.Text != "" {
			if err := xml.EscapeText(w, []byte(n.Text)); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			switch {
			case strings.HasPrefix(c.Tag, "@"):
				// already rendered in the opening tag
			case c.Tag == "#text":
				if err := xml.EscapeText(w, []byte(c.Text)); err != nil {
					return err
				}
			default:
				if err := write(c); err != nil {
					return err
				}
			}
		}
		_, err := fmt.Fprintf(w, "</%s>", n.Tag)
		return err
	}
	return write(d.Root)
}
