package xmldoc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperFigure1 builds the example document of the paper's Figure 1 with a
// position gap chosen so the numbers land close to the figure's spirit
// (exact figure values are hand-picked in the paper; what matters is the
// nesting structure).
const paperFigure1XML = `<dept>
  <emp><name/><emp><emp/></emp></emp>
  <emp><emp><emp/></emp><emp><name/><emp><emp/><emp/></emp></emp><name/></emp>
  <emp><name/><emp/></emp>
  <office/>
</dept>`

func TestParseAssignsNestedRegions(t *testing.T) {
	doc, err := ParseString(paperFigure1XML, ParseOptions{DocID: 1})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if doc.Root.Tag != "dept" {
		t.Fatalf("root tag = %q, want dept", doc.Root.Tag)
	}
	all := doc.AllElements()
	if err := ValidateStrictNesting(all); err != nil {
		t.Fatalf("nesting: %v", err)
	}
	root := doc.Root.Element
	if root.Level != 1 {
		t.Errorf("root level = %d, want 1", root.Level)
	}
	for _, e := range all[1:] {
		if !root.IsAncestorOf(e) {
			t.Errorf("root %v is not ancestor of %v", root, e)
		}
	}
	emps := doc.ElementsByTag("emp")
	if len(emps) != 12 {
		t.Errorf("len(emp) = %d, want 12", len(emps))
	}
	names := doc.ElementsByTag("name")
	if len(names) != 4 {
		t.Errorf("len(name) = %d, want 4", len(names))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></b>"},
		{"garbage", "<a></b>"},
		{"two roots", "<a/><b/>"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.in, ParseOptions{}); err == nil {
			t.Errorf("%s: Parse succeeded, want error", tc.name)
		}
	}
}

func TestParseKeepText(t *testing.T) {
	doc, err := ParseString("<a><b>hello</b></a>", ParseOptions{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Root.Children[0]
	if b.Text != "hello" {
		t.Errorf("text = %q, want hello", b.Text)
	}
}

func TestPositionGap(t *testing.T) {
	doc, err := ParseString("<a><b/></a>", ParseOptions{PositionGap: 10})
	if err != nil {
		t.Fatal(err)
	}
	a := doc.Root.Element
	b := doc.Root.Children[0].Element
	if a.Start != 10 || b.Start != 20 || b.End != 30 || a.End != 40 {
		t.Errorf("positions a=%v b=%v, want (10,40) and (20,30)", a, b)
	}
}

func TestAncestorParentPredicates(t *testing.T) {
	a := Element{DocID: 1, Start: 1, End: 100, Level: 1}
	b := Element{DocID: 1, Start: 2, End: 15, Level: 2}
	c := Element{DocID: 1, Start: 5, End: 6, Level: 3}
	other := Element{DocID: 2, Start: 2, End: 15, Level: 2}

	if !a.IsAncestorOf(b) || !a.IsAncestorOf(c) || !b.IsAncestorOf(c) {
		t.Error("ancestor relations wrong")
	}
	if b.IsAncestorOf(a) || c.IsAncestorOf(a) {
		t.Error("inverted ancestor relation")
	}
	if a.IsAncestorOf(a) {
		t.Error("element is its own ancestor")
	}
	if a.IsAncestorOf(other) {
		t.Error("cross-document ancestor")
	}
	if !a.IsParentOf(b) || a.IsParentOf(c) || !b.IsParentOf(c) {
		t.Error("parent relations wrong")
	}
}

func TestStabs(t *testing.T) {
	e := Element{Start: 10, End: 20}
	for _, k := range []Position{10, 15, 20} {
		if !e.Stabs(k) {
			t.Errorf("Stabs(%d) = false, want true", k)
		}
	}
	for _, k := range []Position{9, 21} {
		if e.Stabs(k) {
			t.Errorf("Stabs(%d) = true, want false", k)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	check := func(start, end uint32, level uint16, ref uint32, flags uint16) bool {
		e := Element{Start: start, End: end, Level: level, Ref: ref}
		var buf [EncodedSize]byte
		e.Encode(buf[:], flags)
		got, gotFlags := DecodeElement(buf[:])
		return got.Start == start && got.End == end && got.Level == level &&
			got.Ref == ref && gotFlags == flags
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderMatchesParse(t *testing.T) {
	// Build a random tree, serialize, parse, and compare region codes.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder(7, 1)
		var build func(depth int)
		count := 0
		build = func(depth int) {
			count++
			b.Open("n")
			kids := rng.Intn(4)
			if depth > 5 {
				kids = 0
			}
			for i := 0; i < kids && count < 200; i++ {
				build(depth + 1)
			}
			b.Close()
		}
		build(0)
		doc, err := b.Document()
		if err != nil {
			t.Fatalf("Document: %v", err)
		}
		var buf bytes.Buffer
		if err := doc.WriteXML(&buf); err != nil {
			t.Fatalf("WriteXML: %v", err)
		}
		parsed, err := ParseString(buf.String(), ParseOptions{DocID: 7})
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		want := doc.AllElements()
		got := parsed.AllElements()
		if len(want) != len(got) {
			t.Fatalf("element counts differ: built %d, parsed %d", len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("element %d: built %+v, parsed %+v", i, want[i], got[i])
			}
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(1, 1).Open("a").Document(); err == nil {
		t.Error("unclosed element accepted")
	}
	if _, err := NewBuilder(1, 1).Document(); err == nil {
		t.Error("empty document accepted")
	}
	b := NewBuilder(1, 1)
	b.Open("a").Close()
	b.Open("b") // second root
	if _, err := b.Document(); err == nil {
		t.Error("multiple roots accepted")
	}
	if _, err := func() (*Document, error) {
		b := NewBuilder(1, 1)
		b.Close()
		return b.Document()
	}(); err == nil {
		t.Error("close without open accepted")
	}
}

func TestValidateStrictNesting(t *testing.T) {
	good := []Element{{Start: 1, End: 100}, {Start: 2, End: 15}, {Start: 5, End: 6}, {Start: 20, End: 75}}
	if err := ValidateStrictNesting(good); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	overlap := []Element{{Start: 1, End: 10}, {Start: 5, End: 20}}
	if err := ValidateStrictNesting(overlap); err == nil {
		t.Error("partially overlapping regions accepted")
	}
	unsorted := []Element{{Start: 5, End: 6}, {Start: 1, End: 100}}
	if err := ValidateStrictNesting(unsorted); err == nil {
		t.Error("unsorted list accepted")
	}
	degenerate := []Element{{Start: 5, End: 5}}
	if err := ValidateStrictNesting(degenerate); err == nil {
		t.Error("degenerate region accepted")
	}
}

func TestNumberingSchemesAgree(t *testing.T) {
	// Property: for every pair of elements in a random document, the
	// ancestor relation is identical under region, durable, and Dietz
	// numbering.
	rng := rand.New(rand.NewSource(99))
	b := NewBuilder(1, 1)
	count := 0
	var build func(depth int)
	build = func(depth int) {
		count++
		b.Open("n")
		kids := rng.Intn(3)
		if depth > 6 {
			kids = 0
		}
		for i := 0; i < kids && count < 120; i++ {
			build(depth + 1)
		}
		b.Close()
	}
	build(0)
	doc, err := b.Document()
	if err != nil {
		t.Fatal(err)
	}
	es := doc.AllElements()
	dur := doc.DurableCodes()
	dietz := doc.DietzCodes()
	for i := range es {
		for j := range es {
			if i == j {
				continue
			}
			r := es[i].IsAncestorOf(es[j])
			d := dur[es[i].Ref].IsAncestorOf(dur[es[j].Ref])
			z := dietz[es[i].Ref].IsAncestorOf(dietz[es[j].Ref])
			if r != d || r != z {
				t.Fatalf("schemes disagree for %v vs %v: region=%v durable=%v dietz=%v",
					es[i], es[j], r, d, z)
			}
		}
	}
}

func TestElementsByTagSortedAndCached(t *testing.T) {
	doc, err := ParseString(paperFigure1XML, ParseOptions{DocID: 1})
	if err != nil {
		t.Fatal(err)
	}
	emps := doc.ElementsByTag("emp")
	for i := 1; i < len(emps); i++ {
		if emps[i-1].Start >= emps[i].Start {
			t.Fatalf("not sorted at %d", i)
		}
	}
	again := doc.ElementsByTag("emp")
	if &again[0] != &emps[0] {
		t.Error("ElementsByTag did not cache")
	}
	if got := doc.ElementsByTag("nosuch"); len(got) != 0 {
		t.Errorf("unknown tag returned %d elements", len(got))
	}
}

func TestTags(t *testing.T) {
	doc, err := ParseString(paperFigure1XML, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := doc.Tags()
	want := []string{"dept", "emp", "name", "office"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Tags = %v, want %v", got, want)
	}
}

func TestNodeLookup(t *testing.T) {
	doc, err := ParseString("<a><b/></a>", ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, ok := doc.Node(1)
	if !ok || n.Tag != "b" {
		t.Errorf("Node(1) = %v,%v", n, ok)
	}
	if _, ok := doc.Node(99); ok {
		t.Error("Node(99) found")
	}
	if n.Parent == nil || n.Parent.Tag != "a" {
		t.Error("parent link broken")
	}
}

func TestWriteXMLEscapesText(t *testing.T) {
	b := NewBuilder(1, 1)
	b.Open("a").Text("x<y&z").Close()
	doc, err := b.Document()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "x<y") {
		t.Errorf("unescaped text in output: %s", out)
	}
	re, err := ParseString(out, ParseOptions{KeepText: true})
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if re.Root.Text != "x<y&z" {
		t.Errorf("round-tripped text = %q", re.Root.Text)
	}
}
