// Package xmldoc models XML documents as ordered trees of region-encoded
// elements, following §2.1 of the paper. Each element carries a
// (DocID, Start, End, Level) tuple such that element u is an ancestor of v
// iff u.Start < v.Start < u.End (regions never partially overlap for
// strictly nested XML). The package provides:
//
//   - a streaming parser over encoding/xml that assigns region codes by
//     depth-first traversal,
//   - a direct tree builder used by the synthetic data generator,
//   - element-set extraction by tag name (the "tag index" of the
//     set-at-a-time strategy), and
//   - the two alternative numbering schemes surveyed in §2.1 — the durable
//     (order, size) scheme and Dietz's (preorder, postorder) scheme — with
//     conversions, so all three can be cross-checked in tests.
package xmldoc

import (
	"fmt"
	"sort"
)

// Position is a location in the document's region numbering space.
type Position = uint32

// Element is one region-encoded XML element. It is the unit every index
// and join in this repository operates on.
type Element struct {
	DocID uint32   // document identifier
	Start Position // region start, assigned at the opening tag
	End   Position // region end, assigned at the closing tag
	Level uint16   // depth in the tree; the root is level 1
	Ref   uint32   // opaque record locator: ordinal of the element in document order
}

// EncodedSize is the fixed on-page size of one element entry:
// start u32 | end u32 | level u16 | flags u16 | ref u32.
const EncodedSize = 16

// Flag bits stored in the on-page flags field.
const (
	// FlagInStabList marks a leaf entry that also appears in the stab list
	// of some internal XR-tree node (Definition 4, property 6).
	FlagInStabList uint16 = 1 << 0
)

// Encode writes e into b, which must be at least EncodedSize bytes.
// DocID is not encoded: element sets are stored per document set and the
// DocID travels out of band, as in the paper's (DocId, start, end, level)
// lists that are grouped by document.
func (e Element) Encode(b []byte, flags uint16) {
	putU32(b[0:], e.Start)
	putU32(b[4:], e.End)
	putU16(b[8:], e.Level)
	putU16(b[10:], flags)
	putU32(b[12:], e.Ref)
}

// DecodeElement reads an element entry written by Encode.
func DecodeElement(b []byte) (Element, uint16) {
	return Element{
		Start: getU32(b[0:]),
		End:   getU32(b[4:]),
		Level: getU16(b[8:]),
		Ref:   getU32(b[12:]),
	}, getU16(b[10:])
}

// IsAncestorOf reports whether e is a (strict) ancestor of d under region
// encoding: e.Start < d.Start < e.End. Both must be from the same document.
func (e Element) IsAncestorOf(d Element) bool {
	return e.DocID == d.DocID && e.Start < d.Start && d.Start < e.End
}

// IsParentOf reports whether e is the parent of d: ancestor with the level
// condition of §2.2 (ai.level = dj.level − 1).
func (e Element) IsParentOf(d Element) bool {
	return e.IsAncestorOf(d) && e.Level == d.Level-1
}

// Stabs reports whether position k stabs e (Definition 1): s ≤ k ≤ e.
func (e Element) Stabs(k Position) bool {
	return e.Start <= k && k <= e.End
}

// Contains reports whether e's region contains f's region entirely.
func (e Element) Contains(f Element) bool {
	return e.Start <= f.Start && f.End <= e.End
}

// String renders the element the way the paper's figures do, e.g. "(2, 15)".
func (e Element) String() string {
	return fmt.Sprintf("(%d, %d)", e.Start, e.End)
}

// CompareStart orders elements by Start (the sort order of every element
// list in the paper's join algorithms).
func CompareStart(a, b Element) int {
	switch {
	case a.Start < b.Start:
		return -1
	case a.Start > b.Start:
		return 1
	default:
		return 0
	}
}

// SortByStart sorts elements by ascending Start in place.
func SortByStart(es []Element) {
	sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
}

// ValidateStrictNesting checks that a start-sorted element list satisfies
// the strictly-nested property: any two regions are disjoint or one
// contains the other. It returns the first violating pair, if any.
func ValidateStrictNesting(es []Element) error {
	// A stack-based sweep: maintain the chain of currently open regions.
	var stack []Element
	for i, e := range es {
		if i > 0 && es[i-1].Start >= e.Start {
			return fmt.Errorf("xmldoc: elements not sorted by start at %d: %v then %v", i, es[i-1], e)
		}
		if e.End <= e.Start {
			return fmt.Errorf("xmldoc: degenerate region %v", e)
		}
		for len(stack) > 0 && stack[len(stack)-1].End < e.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if !(top.Contains(e)) {
				return fmt.Errorf("xmldoc: regions partially overlap: %v and %v", top, e)
			}
		}
		stack = append(stack, e)
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
