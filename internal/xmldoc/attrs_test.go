package xmldoc

import (
	"bytes"
	"strings"
	"testing"
)

const attrXML = `<emp id="7" dept="eng"><name lang="en">alice</name><emp id="8"><name>bob</name></emp></emp>`

func TestIncludeAttributes(t *testing.T) {
	doc, err := ParseString(attrXML, ParseOptions{DocID: 1, IncludeAttributes: true, KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := doc.ElementsByTag("@id")
	if len(ids) != 2 {
		t.Fatalf("@id nodes = %d, want 2", len(ids))
	}
	depts := doc.ElementsByTag("@dept")
	if len(depts) != 1 {
		t.Fatalf("@dept nodes = %d", len(depts))
	}
	// Attribute node nests directly inside its owner.
	emp := doc.ElementsByTag("emp")[0]
	if !emp.IsParentOf(ids[0]) {
		t.Errorf("emp %v is not parent of @id %v", emp, ids[0])
	}
	n, ok := doc.Node(ids[0].Ref)
	if !ok || n.Text != "7" {
		t.Errorf("@id value = %q", n.Text)
	}
	if err := ValidateStrictNesting(doc.AllElements()); err != nil {
		t.Fatalf("nesting with attributes: %v", err)
	}
}

func TestIncludeText(t *testing.T) {
	doc, err := ParseString(attrXML, ParseOptions{DocID: 1, IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	texts := doc.ElementsByTag("#text")
	if len(texts) != 2 {
		t.Fatalf("#text nodes = %d, want 2 (alice, bob)", len(texts))
	}
	n, ok := doc.Node(texts[0].Ref)
	if !ok || n.Text != "alice" {
		t.Errorf("first text node = %q", n.Text)
	}
	if err := ValidateStrictNesting(doc.AllElements()); err != nil {
		t.Fatalf("nesting with text nodes: %v", err)
	}
	// Whitespace-only runs must not produce nodes.
	doc2, err := ParseString("<a> <b/> </a>", ParseOptions{IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := doc2.ElementsByTag("#text"); len(got) != 0 {
		t.Errorf("whitespace produced %d text nodes", len(got))
	}
}

func TestAttributesRoundTripThroughWriteXML(t *testing.T) {
	doc, err := ParseString(attrXML, ParseOptions{DocID: 1, IncludeAttributes: true, IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `id="7"`) || !strings.Contains(out, `dept="eng"`) {
		t.Errorf("attributes missing from output: %s", out)
	}
	if !strings.Contains(out, "alice") || !strings.Contains(out, "bob") {
		t.Errorf("text missing from output: %s", out)
	}
	re, err := ParseString(out, ParseOptions{DocID: 1, IncludeAttributes: true, IncludeText: true})
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if re.NumElements() != doc.NumElements() {
		t.Errorf("round trip: %d elements, want %d", re.NumElements(), doc.NumElements())
	}
}

func TestAttributesOffByDefault(t *testing.T) {
	doc, err := ParseString(attrXML, ParseOptions{DocID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.ElementsByTag("@id"); len(got) != 0 {
		t.Errorf("attributes materialized without opt-in: %d", len(got))
	}
	if got := doc.ElementsByTag("#text"); len(got) != 0 {
		t.Errorf("text materialized without opt-in: %d", len(got))
	}
}
