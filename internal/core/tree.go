// Package core implements the XR-tree (XML Region Tree), the paper's
// primary contribution: a paged, dynamic external-memory index over
// region-encoded XML elements (§3, Definition 4).
//
// An XR-tree is a B+-tree keyed on element start positions whose internal
// nodes are augmented with stab lists. A key k "stabs" an element (s, e)
// when s ≤ k ≤ e; the stab list SL(n) of internal node n holds every
// element stabbed by at least one key of n but by no key of any ancestor of
// n, so each element appears in at most one stab list — that of the highest
// stabbing node. Within a node the elements are grouped by their primary
// stabbing key (the smallest stabbing key of the node, Definition 2); the
// run for key k is its primary stab list PSL(k), stored outermost-first.
// Every internal key entry carries (ps, pe), the region of the first
// element of its PSL (Definition 3), plus a direct pointer to the stab-list
// page holding that element — the equivalent of the paper's ps directory
// page (§3.3, Figure 4) folded into the key entry.
//
// These structures make FindAncestors run in O(log_F N + R) worst-case page
// accesses (Theorem 4) while FindDescendants remains the plain B+-tree
// range scan (Theorem 3), which is what the XR-stack join algorithm
// exploits to skip both non-joining ancestors and descendants.
//
// # Concurrency
//
// The tree uses the B-link protocol (Lehman–Yao), extended to cover stab
// lists. Every index page carries a high key (the lowest key of its right
// sibling; 0 = +∞) and a right-sibling link; a page covers keys strictly
// below its high key, and a reader finding its search key at or beyond
// the high key follows the right link. Readers (FindAncestors,
// FindDescendants, Lookup, SeekGE, Scan, FindParent, FindChildren, Space,
// CheckInvariants) take no tree-wide latch: a descent holds one per-page
// shared latch at a time (see internal/platch) and recovers from
// concurrent splits by moving right. Writers (Insert, Delete, BulkLoad)
// serialize against each other on wlatch (the WAL transaction state is
// per-tree) but block readers only page by page: every byte mutation of a
// reader-reachable page happens under that page's exclusive latch, and a
// split populates the new right sibling before the one latched write that
// shrinks the left page and installs its right link.
//
// A node's page latch also covers its stab chain: FindAncestors reads a
// node's stab pages while still holding that node's shared latch, and
// writers keep the owning node latched exclusively for the duration of
// any stab-chain mutation, so stab pages need no latches of their own.
// Iterators keep no latch (or page pin) between calls: each leaf hop
// latches the next leaf only long enough to copy it into an
// iterator-private buffer, so several iterators can live in one goroutine
// (as self-joins require) without deadlocking against a writer. Query
// paths attribute costs to the caller-supplied counter set and share no
// mutable tree state; the SetCounters sink is consulted by write paths
// only.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"xrtree/internal/bufferpool"
	"xrtree/internal/metrics"
	"xrtree/internal/pagefile"
	"xrtree/internal/platch"
	"xrtree/internal/xmldoc"
)

// Page layouts.
//
// Meta page:
//
//	0: magic u32 | 4: root u32 | 8: height u32 | 12: count u32 | 16: docID u32
//	20: stabCount u32 (elements currently held in stab lists)
//	24: stabPages u32 (stab-list pages currently allocated)
//
// Leaf page (identical to the B+-tree backbone):
//
//	0: type u8 (=leafType) | 2: count u16 | 4: next u32 | 8: prev u32
//	12: highKey u32 (lowest key of the right sibling; 0 = +∞)
//	16: entries, count × xmldoc.EncodedSize, sorted by start;
//	    flags bit 0 = InStabList
//
// Internal page:
//
//	0: type u8 (=internalType) | 2: count u16 (number of keys m)
//	4: child0 u32 | 8: stabHead u32 | 12: stabTail u32
//	16: next u32 (right sibling) | 20: highKey u32
//	24: entries, m × 20 bytes:
//	    key u32 | child u32 (right child) | ps u32 | pe u32 | pslPage u32
//	    ps == 0 encodes a nil (ps, pe): positions are ≥ 1 by construction.
//
// The high key and right link are the B-link fields (for leaves the chain
// next pointer doubles as the right link).
//
// Stab-list page:
//
//	0: type u8 (=stabType) | 2: count u16 | 4: next u32 | 8: prev u32
//	12: entries, count × 20 bytes:
//	    key u32 | start u32 | end u32 | ref u32 | level u16 | pad u16
//	    sorted by (key, start) across the whole chain.
const (
	metaMagic = 0x58525431 // "XRT1"

	leafType     = 1
	internalType = 3
	stabType     = 4

	leafHeader   = 16
	offLeafCount = 2
	offLeafNext  = 4
	offLeafPrev  = 8
	offLeafHigh  = 12

	intHeader      = 24
	offIntCount    = 2
	offIntChild0   = 4
	offIntStabHead = 8
	offIntStabTail = 12
	offIntNext     = 16
	offIntHigh     = 20
	intEntrySize   = 20

	stabHeader    = 12
	offStabCount  = 2
	offStabNext   = 4
	offStabPrev   = 8
	stabEntrySize = 20
)

// Errors returned by the XR-tree.
var (
	ErrNotFound  = errors.New("xrtree: element not found")
	ErrDuplicate = errors.New("xrtree: duplicate start key")
	ErrCorrupt   = errors.New("xrtree: corrupt page")
)

// Options tunes tree construction.
type Options struct {
	// DisableKeyChoice turns off the §3.2 separator-choice optimization
	// (preferring separator s−1 over s when it still separates the halves),
	// for the ablation benchmark.
	DisableKeyChoice bool
}

// Tree is a disk-resident XR-tree over one document's element set.
type Tree struct {
	pool  *bufferpool.Pool
	meta  pagefile.PageID
	docID uint32
	opts  Options

	// rootH packs the root page id (high 32 bits) and the tree height
	// (low 32 bits; 1 = root is a leaf) into one word so latch-free
	// readers start every descent from a consistent pair. Stale values
	// are safe: an old root still reaches every key via right links.
	rootH atomic.Uint64

	count atomic.Int64

	// stab statistics, persisted in the meta page (used by the §3.3
	// stab-list size experiment). Mutated only under wlatch; atomic so
	// StabStats can read them concurrently.
	stabCount atomic.Int64 // elements in stab lists
	stabPages atomic.Int64 // allocated stab-list pages

	leafCap int
	intCap  int
	stabCap int

	// lastInsertPage records where insertAt physically placed the most
	// recent stab entry (after any page split); only meaningful right after
	// the call. Tree mutation is single-threaded (under wlatch).
	lastInsertPage pagefile.PageID

	// wlatch serializes writers (Insert, Delete, BulkLoad) against each
	// other; the per-mutation WAL transaction state is per-tree. Readers
	// never take it — they synchronize with writers through the per-page
	// latches in pl.
	wlatch sync.Mutex

	// pl holds the per-page latches of the B-link protocol. A node's
	// latch also covers its stab chain (see the package doc).
	pl *platch.Table

	// stabEpoch is a seqlock-style generation counter around moves of
	// existing stab content BETWEEN containers — promotions to a parent
	// chain on splits, demotions to plain leaf entries and rotations on
	// rebalances. Per-page latches cannot make such moves atomic for a
	// top-down reader (content can move up behind it), so writers hold
	// the epoch odd while a move is in flight and readers validate it
	// around each ancestor probe, retrying on overlap. Moves happen only
	// on structural changes, so validation failures are rare.
	stabEpoch atomic.Uint64

	// stabMoveOpen tracks whether the running mutation already opened a
	// stab-move bracket. Guarded by wlatch.
	stabMoveOpen bool

	// debugOps counts mutations for the xrtreedebug sampled invariant
	// check (see debug.go). Guarded by wlatch.
	debugOps int

	// debugReadEpoch counts reader sections that pin pool frames;
	// debugReadActive counts those currently in flight. Only the
	// xrtreedebug pin ledger reads them: the global pinned-frame balance
	// is attributable to a writer only when no reader overlapped its
	// bracket (see debugPinBalance).
	debugReadEpoch  atomic.Int64
	debugReadActive atomic.Int64

	// tx is the WAL transaction of the mutation in flight, nil outside one
	// (and always nil when the pool has no log attached). Guarded by
	// wlatch: only Insert/Delete set it, and the page-access wrappers
	// below read it. Reader paths must not use the tx-routed wrappers.
	tx *bufferpool.Tx

	c *metrics.Counters
}

// beginStabMove opens the mutation's stab-move bracket (idempotent per
// operation): the epoch turns odd, telling concurrent ancestor probes
// that stab content is in flight between containers. Caller holds wlatch.
func (t *Tree) beginStabMove() {
	if !t.stabMoveOpen {
		t.stabMoveOpen = true
		t.stabEpoch.Add(1)
	}
}

// endStabMove closes the bracket at operation exit: the epoch turns even
// again once every moved element has reached its final container. A no-op
// when the operation moved nothing. Caller holds wlatch.
func (t *Tree) endStabMove() {
	if t.stabMoveOpen {
		t.stabMoveOpen = false
		t.stabEpoch.Add(1)
	}
}

// loadRoot returns a consistent (root page, height) snapshot.
func (t *Tree) loadRoot() (pagefile.PageID, int) {
	v := t.rootH.Load()
	return pagefile.PageID(v >> 32), int(uint32(v))
}

// setRoot publishes a new (root page, height) pair. Writer-only; the new
// root must be fully populated before the call.
func (t *Tree) setRoot(id pagefile.PageID, h int) {
	t.rootH.Store(uint64(id)<<32 | uint64(uint32(h)))
}

// The fetch/unpin wrappers route every page access through the in-flight
// WAL transaction when one exists; outside a transaction (queries, bulk
// load, stores without a log) they are the plain pool calls.

func (t *Tree) fetch(id pagefile.PageID) ([]byte, error) {
	return t.pool.FetchHeld(t.tx, id)
}

func (t *Tree) fetchNew() (pagefile.PageID, []byte, error) {
	return t.pool.FetchNewHeld(t.tx)
}

func (t *Tree) unpin(id pagefile.PageID, dirty bool) error {
	return t.pool.UnpinTx(t.tx, id, dirty)
}

func (t *Tree) discard(id pagefile.PageID) error {
	return t.pool.DiscardTx(t.tx, id)
}

func (t *Tree) free(id pagefile.PageID) error {
	return t.pool.FreeTx(t.tx, id)
}

// beginTx starts a WAL transaction for one mutation and returns its
// commit function, to be deferred with the mutation's named error: commit
// runs before the write latch is released, and a commit failure surfaces
// unless the mutation already failed. No-ops when the pool has no log.
func (t *Tree) beginTx() func(*error) {
	t.tx = t.pool.Begin()
	return func(errp *error) {
		tx := t.tx
		t.tx = nil
		if cerr := t.pool.CommitTx(tx); cerr != nil && *errp == nil {
			*errp = cerr
		}
	}
}

// New creates an empty XR-tree whose pages come from pool's file.
func New(pool *bufferpool.Pool, docID uint32, opts Options) (*Tree, error) {
	t := &Tree{pool: pool, docID: docID, opts: opts, pl: platch.NewTable()}
	t.computeCaps()
	metaID, metaData, err := pool.FetchNew()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	rootID, rootData, err := pool.FetchNew()
	if err != nil {
		pool.Unpin(metaID, true)
		return nil, err
	}
	initLeaf(rootData)
	if err := pool.Unpin(rootID, true); err != nil {
		pool.Unpin(metaID, true) // best-effort: the first error propagates
		return nil, err
	}
	t.setRoot(rootID, 1)
	putU32(metaData[0:], metaMagic)
	t.writeMeta(metaData)
	if err := pool.Unpin(metaID, true); err != nil {
		return nil, err
	}
	return t, nil
}

// Open reattaches to an XR-tree previously created by New in pool's file.
func Open(pool *bufferpool.Pool, meta pagefile.PageID, opts Options) (*Tree, error) {
	t := &Tree{pool: pool, meta: meta, opts: opts, pl: platch.NewTable()}
	t.computeCaps()
	data, err := pool.Fetch(meta)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(meta, false)
	if getU32(data[0:]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	t.setRoot(pagefile.PageID(getU32(data[4:])), int(getU32(data[8:])))
	t.count.Store(int64(getU32(data[12:])))
	t.docID = getU32(data[16:])
	t.stabCount.Store(int64(getU32(data[20:])))
	t.stabPages.Store(int64(getU32(data[24:])))
	return t, nil
}

func (t *Tree) computeCaps() {
	ps := t.pool.File().PageSize()
	t.leafCap = (ps - leafHeader) / xmldoc.EncodedSize
	t.intCap = (ps - intHeader) / intEntrySize
	t.stabCap = (ps - stabHeader) / stabEntrySize
	if t.leafCap < 4 || t.intCap < 4 || t.stabCap < 4 {
		panic(fmt.Sprintf("xrtree: page size %d too small", ps))
	}
}

func (t *Tree) writeMeta(data []byte) {
	root, h := t.loadRoot()
	putU32(data[4:], uint32(root))
	putU32(data[8:], uint32(h))
	putU32(data[12:], uint32(t.count.Load()))
	putU32(data[16:], t.docID)
	putU32(data[20:], uint32(t.stabCount.Load()))
	putU32(data[24:], uint32(t.stabPages.Load()))
}

func (t *Tree) syncMeta() error {
	data, err := t.fetch(t.meta)
	if err != nil {
		return err
	}
	t.writeMeta(data)
	return t.unpin(t.meta, true)
}

// Meta returns the meta page id, the handle needed by Open.
func (t *Tree) Meta() pagefile.PageID { return t.meta }

// Len returns the number of indexed elements.
func (t *Tree) Len() int { return int(t.count.Load()) }

// Height returns the tree height (1 = the root is a leaf).
func (t *Tree) Height() int { _, h := t.loadRoot(); return h }

// DocID returns the document id of the indexed element set.
func (t *Tree) DocID() uint32 { return t.docID }

// StabStats returns the number of elements currently held in stab lists and
// the number of stab-list pages allocated — the quantities measured by the
// §3.3 stab-list size study.
func (t *Tree) StabStats() (elements, pages int) {
	return int(t.stabCount.Load()), int(t.stabPages.Load())
}

// SetCounters directs cost accounting to c (nil detaches).
func (t *Tree) SetCounters(c *metrics.Counters) { t.c = c }

func (t *Tree) countNode() {
	if t.c != nil {
		t.c.IndexNodeReads++
	}
}

func (t *Tree) countLeaf() {
	if t.c != nil {
		t.c.LeafReads++
	}
}

func (t *Tree) countStabPage() {
	if t.c != nil {
		t.c.StabPageReads++
	}
}

func (t *Tree) countScan(n int) {
	if t.c != nil {
		t.c.ElementsScanned += int64(n)
	}
}

// The add* helpers attribute costs to an explicit counter set; the query
// paths use them (instead of the tree-attached sink) so concurrent readers
// never share mutable state — a Tree supports any number of concurrent
// readers as long as no writer runs.
func addNode(c *metrics.Counters) {
	if c != nil {
		c.IndexNodeReads++
	}
}

func addLeaf(c *metrics.Counters) {
	if c != nil {
		c.LeafReads++
	}
}

func addStabPage(c *metrics.Counters) {
	if c != nil {
		c.StabPageReads++
	}
}

func addScan(c *metrics.Counters, n int64) {
	if c != nil {
		c.ElementsScanned += n
	}
}

// --- leaf page helpers ---------------------------------------------------

func initLeaf(data []byte) {
	for i := range data[:leafHeader] {
		data[i] = 0
	}
	data[0] = leafType
	putU32(data[offLeafNext:], uint32(pagefile.InvalidPage))
	putU32(data[offLeafPrev:], uint32(pagefile.InvalidPage))
}

func isLeaf(data []byte) bool                  { return data[0] == leafType }
func leafCount(data []byte) int                { return int(getU16(data[offLeafCount:])) }
func setLeafCount(d []byte, n int)             { putU16(d[offLeafCount:], uint16(n)) }
func leafNext(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offLeafNext:])) }
func leafPrev(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offLeafPrev:])) }
func setLeafNext(d []byte, id pagefile.PageID) { putU32(d[offLeafNext:], uint32(id)) }
func setLeafPrev(d []byte, id pagefile.PageID) { putU32(d[offLeafPrev:], uint32(id)) }

// The high key is the lowest key of the page's right sibling; 0 means +∞
// (rightmost page at its level). A reader whose search key is ≥ the high
// key moves right. For leaves the chain's next pointer is the right link.
func leafHigh(d []byte) uint32       { return getU32(d[offLeafHigh:]) }
func setLeafHigh(d []byte, k uint32) { putU32(d[offLeafHigh:], k) }

// moveRight reports whether a B-link reader positioned at a page with the
// given high key and right link must follow the link to find key.
func moveRight(high uint32, next pagefile.PageID, key uint32) bool {
	return high != 0 && key >= high && next != pagefile.InvalidPage
}

func leafEntry(data []byte, i int) []byte {
	off := leafHeader + i*xmldoc.EncodedSize
	return data[off : off+xmldoc.EncodedSize]
}

func leafElem(data []byte, i int) (xmldoc.Element, uint16) {
	return xmldoc.DecodeElement(leafEntry(data, i))
}

func leafKey(data []byte, i int) uint32 { return getU32(leafEntry(data, i)) }

func setLeafFlags(data []byte, i int, flags uint16) {
	putU16(leafEntry(data, i)[10:], flags)
}

// leafSearch returns the index of the first entry with start ≥ key.
func leafSearch(data []byte, key uint32) int {
	lo, hi := 0, leafCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(data, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertLeafEntry writes e at position pos in a leaf with n entries and
// room for one more.
func insertLeafEntry(data []byte, pos, n int, e xmldoc.Element, flags uint16) {
	start := leafHeader + pos*xmldoc.EncodedSize
	end := leafHeader + n*xmldoc.EncodedSize
	copy(data[start+xmldoc.EncodedSize:end+xmldoc.EncodedSize], data[start:end])
	e.Encode(data[start:], flags)
	setLeafCount(data, n+1)
}

// removeLeafEntry deletes entry pos from a leaf with n entries.
func removeLeafEntry(data []byte, pos, n int) {
	start := leafHeader + pos*xmldoc.EncodedSize
	end := leafHeader + n*xmldoc.EncodedSize
	copy(data[start:], data[start+xmldoc.EncodedSize:end])
	setLeafCount(data, n-1)
}

// --- internal page helpers -----------------------------------------------

func initInternal(data []byte) {
	for i := range data[:intHeader] {
		data[i] = 0
	}
	data[0] = internalType
	putU32(data[offIntStabHead:], uint32(pagefile.InvalidPage))
	putU32(data[offIntStabTail:], uint32(pagefile.InvalidPage))
	putU32(data[offIntNext:], uint32(pagefile.InvalidPage))
}

func intCount(data []byte) int    { return int(getU16(data[offIntCount:])) }
func setIntCount(d []byte, n int) { putU16(d[offIntCount:], uint16(n)) }

func intNext(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offIntNext:])) }
func setIntNext(d []byte, id pagefile.PageID) { putU32(d[offIntNext:], uint32(id)) }
func intHigh(d []byte) uint32                 { return getU32(d[offIntHigh:]) }
func setIntHigh(d []byte, k uint32)           { putU32(d[offIntHigh:], k) }

func stabHead(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offIntStabHead:])) }
func stabTail(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offIntStabTail:])) }
func setStabHead(d []byte, id pagefile.PageID) { putU32(d[offIntStabHead:], uint32(id)) }
func setStabTail(d []byte, id pagefile.PageID) { putU32(d[offIntStabTail:], uint32(id)) }

func intEntry(data []byte, i int) []byte {
	off := intHeader + i*intEntrySize
	return data[off : off+intEntrySize]
}

func intKey(data []byte, i int) uint32       { return getU32(intEntry(data, i)) }
func setIntKey(data []byte, i int, k uint32) { putU32(intEntry(data, i), k) }

// intChild returns child pointer i (0..m).
func intChild(data []byte, i int) pagefile.PageID {
	if i == 0 {
		return pagefile.PageID(getU32(data[offIntChild0:]))
	}
	return pagefile.PageID(getU32(intEntry(data, i-1)[4:]))
}

func setIntChild(data []byte, i int, id pagefile.PageID) {
	if i == 0 {
		putU32(data[offIntChild0:], uint32(id))
		return
	}
	putU32(intEntry(data, i-1)[4:], uint32(id))
}

// keyPS/keyPE return the (ps, pe) fields of key i; ps == 0 means nil.
func keyPS(data []byte, i int) uint32 { return getU32(intEntry(data, i)[8:]) }
func keyPE(data []byte, i int) uint32 { return getU32(intEntry(data, i)[12:]) }

func setKeyPSPE(data []byte, i int, ps, pe uint32) {
	putU32(intEntry(data, i)[8:], ps)
	putU32(intEntry(data, i)[12:], pe)
}

// keyPSLPage returns the stab page holding the head of PSL(key i).
func keyPSLPage(data []byte, i int) pagefile.PageID {
	return pagefile.PageID(getU32(intEntry(data, i)[16:]))
}

func setKeyPSLPage(data []byte, i int, id pagefile.PageID) {
	putU32(intEntry(data, i)[16:], uint32(id))
}

// intSearch returns the child index to follow for key: the number of
// separators ≤ key (Definition 4.3 and Algorithm 3 line 3-4).
func intSearch(data []byte, key uint32) int {
	lo, hi := 0, intCount(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(data, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// keyIndex returns the index of the key with exact value k, or -1.
func keyIndex(data []byte, k uint32) int {
	i := intSearch(data, k) - 1 // largest key ≤ k
	if i >= 0 && intKey(data, i) == k {
		return i
	}
	return -1
}

// primaryKeyIndex returns the index of the smallest key of the node that
// stabs (s, e) — the element's primary stabbing key (Definition 1) — or -1
// if no key stabs it.
func primaryKeyIndex(data []byte, s, e uint32) int {
	// Smallest key ≥ s; it stabs iff it is ≤ e.
	m := intCount(data)
	lo, hi := 0, m
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(data, mid) < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < m && intKey(data, lo) <= e {
		return lo
	}
	return -1
}

// insertIntEntry writes (key, rightChild) as entry ci into an internal page
// with m existing keys and room for one more. The new key's (ps, pe) is nil
// and its PSL pointer invalid; the caller populates them afterwards.
func insertIntEntry(data []byte, ci, m int, key uint32, child pagefile.PageID) {
	start := intHeader + ci*intEntrySize
	end := intHeader + m*intEntrySize
	copy(data[start+intEntrySize:end+intEntrySize], data[start:end])
	entry := data[start : start+intEntrySize]
	putU32(entry[0:], key)
	putU32(entry[4:], uint32(child))
	putU32(entry[8:], 0)
	putU32(entry[12:], 0)
	putU32(entry[16:], uint32(pagefile.InvalidPage))
	setIntCount(data, m+1)
}

// removeIntEntry deletes key li and the child to its right from an internal
// page with m keys. The caller must have emptied PSL(key li) first.
func removeIntEntry(data []byte, li, m int) {
	start := intHeader + li*intEntrySize
	end := intHeader + m*intEntrySize
	copy(data[start:], data[start+intEntrySize:end])
	setIntCount(data, m-1)
}

// --- stab page helpers ----------------------------------------------------

// stabEntry is the in-memory form of one stab-list entry.
type stabEntry struct {
	key   uint32 // primary stabbing key within the owning node
	start uint32
	end   uint32
	ref   uint32
	level uint16
}

func (se stabEntry) element(docID uint32) xmldoc.Element {
	return xmldoc.Element{DocID: docID, Start: se.start, End: se.end, Level: se.level, Ref: se.ref}
}

// stabs reports whether position k stabs the entry's region.
func (se stabEntry) stabs(k uint32) bool { return se.start <= k && k <= se.end }

func initStabPage(data []byte) {
	for i := range data[:stabHeader] {
		data[i] = 0
	}
	data[0] = stabType
	putU32(data[offStabNext:], uint32(pagefile.InvalidPage))
	putU32(data[offStabPrev:], uint32(pagefile.InvalidPage))
}

func stabCount(data []byte) int    { return int(getU16(data[offStabCount:])) }
func setStabCount(d []byte, n int) { putU16(d[offStabCount:], uint16(n)) }

func stabNext(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offStabNext:])) }
func stabPrev(d []byte) pagefile.PageID        { return pagefile.PageID(getU32(d[offStabPrev:])) }
func setStabNext(d []byte, id pagefile.PageID) { putU32(d[offStabNext:], uint32(id)) }
func setStabPrev(d []byte, id pagefile.PageID) { putU32(d[offStabPrev:], uint32(id)) }

func stabEntryAt(data []byte, i int) stabEntry {
	off := stabHeader + i*stabEntrySize
	b := data[off : off+stabEntrySize]
	return stabEntry{
		key:   getU32(b[0:]),
		start: getU32(b[4:]),
		end:   getU32(b[8:]),
		ref:   getU32(b[12:]),
		level: getU16(b[16:]),
	}
}

func putStabEntry(data []byte, i int, se stabEntry) {
	off := stabHeader + i*stabEntrySize
	b := data[off : off+stabEntrySize]
	putU32(b[0:], se.key)
	putU32(b[4:], se.start)
	putU32(b[8:], se.end)
	putU32(b[12:], se.ref)
	putU16(b[16:], se.level)
	putU16(b[18:], 0)
}

// insertStabEntry writes se at position pos in a stab page with n entries
// and room for one more.
func insertStabEntry(data []byte, pos, n int, se stabEntry) {
	start := stabHeader + pos*stabEntrySize
	end := stabHeader + n*stabEntrySize
	copy(data[start+stabEntrySize:end+stabEntrySize], data[start:end])
	putStabEntry(data, pos, se)
	setStabCount(data, n+1)
}

// removeStabEntry deletes entry pos from a stab page with n entries.
func removeStabEntry(data []byte, pos, n int) {
	start := stabHeader + pos*stabEntrySize
	end := stabHeader + n*stabEntrySize
	copy(data[start:], data[start+stabEntrySize:end])
	setStabCount(data, n-1)
}

// stabLess orders stab entries by (key, start).
func stabLess(aKey, aStart, bKey, bStart uint32) bool {
	if aKey != bKey {
		return aKey < bKey
	}
	return aStart < bStart
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
