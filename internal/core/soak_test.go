package core

import (
	"math/rand"
	"testing"
)

// TestSoakLargeMixedWorkload is a longer-running confidence test: a large
// randomized insert/delete/query workload across page sizes with periodic
// full invariant checks. Skipped under -short.
func TestSoakLargeMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, pageSize := range []int{256, 1024} {
		pageSize := pageSize
		t.Run(sizeName(pageSize), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(pageSize) * 13))
			universe := genNested(rng, 5000, 18)
			pool := newPool(t, pageSize, 1024)
			tr, err := New(pool, 1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			o := newOracle()
			present := make([]bool, len(universe))
			maxPos := universe[len(universe)-1].End + 3

			for op := 0; op < 20000; op++ {
				i := rng.Intn(len(universe))
				e := universe[i]
				if !present[i] && rng.Intn(3) != 0 {
					if err := tr.Insert(e); err != nil {
						t.Fatalf("op %d Insert(%v): %v", op, e, err)
					}
					o.insert(e)
					present[i] = true
				} else if present[i] {
					if err := tr.Delete(e.Start); err != nil {
						t.Fatalf("op %d Delete(%v): %v", op, e, err)
					}
					o.remove(e.Start)
					present[i] = false
				}
				if op%500 == 499 {
					sd := uint32(rng.Intn(int(maxPos)) + 1)
					got, err := tr.FindAncestors(sd, 0, nil)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(o.ancestors(sd, 0)) {
						t.Fatalf("op %d: FindAncestors(%d) = %d, want %d",
							op, sd, len(got), len(o.ancestors(sd, 0)))
					}
				}
				if op%4000 == 3999 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("final: %v", err)
			}
			if pool.PinnedCount() != 0 {
				t.Errorf("leaked pins: %d", pool.PinnedCount())
			}
		})
	}
}
