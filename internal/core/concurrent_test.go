package core

import (
	"math/rand"
	"sync"
	"testing"

	"xrtree/internal/metrics"
)

// TestConcurrentReaders runs FindAncestors, FindDescendants, and scans from
// many goroutines against a static tree; run with -race. Queries take
// explicit counter sets, so readers share no mutable tree state.
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	es := genNested(rng, 2000, 14)
	pool := newPool(t, 1024, 512)
	tr, err := New(pool, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(es, 1.0); err != nil {
		t.Fatal(err)
	}
	o := newOracle()
	for _, e := range es {
		o.insert(e)
	}
	maxPos := es[len(es)-1].End + 3

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				var c metrics.Counters
				switch i % 3 {
				case 0:
					sd := uint32(r.Intn(int(maxPos)) + 1)
					got, err := tr.FindAncestors(sd, 0, &c)
					if err != nil {
						t.Errorf("FindAncestors: %v", err)
						return
					}
					if len(got) != len(o.ancestors(sd, 0)) {
						t.Errorf("FindAncestors(%d) wrong size", sd)
						return
					}
				case 1:
					e := es[r.Intn(len(es))]
					got, err := tr.FindDescendants(e.Start, e.End, &c)
					if err != nil {
						t.Errorf("FindDescendants: %v", err)
						return
					}
					if len(got) != len(o.descendants(e.Start, e.End)) {
						t.Errorf("FindDescendants(%v) wrong size", e)
						return
					}
				default:
					it, err := tr.SeekGE(uint32(r.Intn(int(maxPos))), &c)
					if err != nil {
						t.Errorf("SeekGE: %v", err)
						return
					}
					for k := 0; k < 20; k++ {
						if _, ok := it.Next(); !ok {
							break
						}
					}
					it.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	if pool.PinnedCount() != 0 {
		t.Errorf("leaked pins: %d", pool.PinnedCount())
	}
}
