package core

// Algorithm 1 (§4.1): insertion with stab-list maintenance. On the way
// down, the new element joins the stab list of the highest internal node
// that stabs it (step I1). Leaf overflow splits the page and gives up a new
// separator key together with StabSet', the elements newly stabbed by it
// (step I22); internal overflow splits the node and its stab-list chain and
// likewise gives up the promoted key with the elements it stabs (step I32,
// Figure 5). Split propagation that reaches the root grows the tree (I4).

import (
	"fmt"

	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// splitResult carries a split's promotion to the parent level.
type splitResult struct {
	key     uint32
	child   pagefile.PageID
	stabSet []stabEntry // elements stabbed by key, to join the parent's SL
}

// intEntryMem is the in-memory form of one internal key entry.
type intEntryMem struct {
	key   uint32
	child pagefile.PageID
	ps    uint32
	pe    uint32
	psl   pagefile.PageID
}

func readIntEntry(data []byte, i int) intEntryMem {
	b := intEntry(data, i)
	return intEntryMem{
		key:   getU32(b[0:]),
		child: pagefile.PageID(getU32(b[4:])),
		ps:    getU32(b[8:]),
		pe:    getU32(b[12:]),
		psl:   pagefile.PageID(getU32(b[16:])),
	}
}

func writeIntEntry(data []byte, i int, e intEntryMem) {
	b := intEntry(data, i)
	putU32(b[0:], e.key)
	putU32(b[4:], uint32(e.child))
	putU32(b[8:], e.ps)
	putU32(b[12:], e.pe)
	putU32(b[16:], uint32(e.psl))
}

// Insert adds e to the tree, maintaining every stab-list invariant.
func (t *Tree) Insert(e xmldoc.Element) (err error) {
	if e.DocID != t.docID {
		return fmt.Errorf("xrtree: insert of DocID %d into tree for DocID %d", e.DocID, t.docID)
	}
	if e.End <= e.Start {
		return fmt.Errorf("xrtree: degenerate region %v", e)
	}
	t.latch.Lock()
	defer t.latch.Unlock()
	defer t.debugPinBalance()()
	commit := t.beginTx()
	defer commit(&err)
	t.c.Emit(obs.EvIndexDescend, int64(t.h))
	res, err := t.insertInto(t.root, t.h, e, false)
	if err != nil {
		return err
	}
	if res != nil {
		// I4: grow the tree with a new root.
		newRootID, data, err := t.fetchNew()
		if err != nil {
			return err
		}
		initInternal(data)
		setIntCount(data, 1)
		setIntChild(data, 0, t.root)
		writeIntEntry(data, 0, intEntryMem{key: res.key, child: res.child, psl: pagefile.InvalidPage})
		rejects, err := t.stabReinsertAll(data, res.stabSet)
		if err != nil {
			t.unpin(newRootID, true)
			return err
		}
		if len(rejects) > 0 {
			t.unpin(newRootID, true)
			return fmt.Errorf("%w: %d StabSet' elements not stabbed by new root key", ErrCorrupt, len(rejects))
		}
		if err := t.unpin(newRootID, true); err != nil {
			return err
		}
		t.root = newRootID
		t.h++
	}
	t.count++
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.debugPostMutation()
}

// insertInto inserts e under page id at the given height (1 = leaf). homed
// reports whether e already joined a stab list higher up.
func (t *Tree) insertInto(id pagefile.PageID, height int, e xmldoc.Element, homed bool) (*splitResult, error) {
	data, err := t.fetch(id)
	if err != nil {
		return nil, err
	}
	if height == 1 {
		if !isLeaf(data) {
			t.unpin(id, false)
			return nil, fmt.Errorf("%w: expected leaf at page %d", ErrCorrupt, id)
		}
		return t.insertLeaf(id, data, e, homed)
	}

	dirty := false
	// I1: home e in the highest stabbing node.
	if !homed && primaryKeyIndex(data, e.Start, e.End) >= 0 {
		if err := t.stabInsertElement(data, e); err != nil {
			t.unpin(id, true)
			return nil, err
		}
		homed = true
		dirty = true
	}
	ci := intSearch(data, e.Start)
	child := intChild(data, ci)
	res, err := t.insertInto(child, height-1, e, homed)
	if err != nil {
		t.unpin(id, dirty)
		return nil, err
	}
	if res == nil {
		return nil, t.unpin(id, dirty)
	}
	return t.insertInternalEntry(id, data, ci, res)
}

// insertLeaf inserts e into a pinned leaf, consuming the pin. The element's
// InStabList flag mirrors whether it was homed above (Definition 4.6).
func (t *Tree) insertLeaf(id pagefile.PageID, data []byte, e xmldoc.Element, homed bool) (*splitResult, error) {
	n := leafCount(data)
	pos := leafSearch(data, e.Start)
	if pos < n && leafKey(data, pos) == e.Start {
		t.unpin(id, false)
		return nil, fmt.Errorf("%w: start %d", ErrDuplicate, e.Start)
	}
	var flags uint16
	if homed {
		flags = xmldoc.FlagInStabList
	}
	if n < t.leafCap {
		insertLeafEntry(data, pos, n, e, flags)
		return nil, t.unpin(id, true)
	}

	// I22: split the leaf.
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(id, false)
		return nil, err
	}
	initLeaf(newData)
	mid := n / 2
	moved := n - mid
	copy(newData[leafHeader:], data[leafHeader+mid*xmldoc.EncodedSize:leafHeader+n*xmldoc.EncodedSize])
	setLeafCount(newData, moved)
	setLeafCount(data, mid)

	oldNext := leafNext(data)
	setLeafNext(newData, oldNext)
	setLeafPrev(newData, id)
	setLeafNext(data, newID)
	if oldNext != pagefile.InvalidPage {
		nd, err := t.fetch(oldNext)
		if err == nil {
			setLeafPrev(nd, newID)
			err = t.unpin(oldNext, true)
		}
		if err != nil {
			t.unpin(newID, true)
			t.unpin(id, true)
			return nil, err
		}
	}

	if e.Start < leafKey(newData, 0) {
		insertLeafEntry(data, pos, mid, e, flags)
	} else {
		npos := leafSearch(newData, e.Start)
		insertLeafEntry(newData, npos, moved, e, flags)
	}

	// Choose the separator (§3.2 key choice): prefer firstRight−1, which
	// avoids stabbing the right half's first element, when it still
	// separates the halves.
	firstRight := leafKey(newData, 0)
	lastLeft := leafKey(data, leafCount(data)-1)
	sep := firstRight
	if !t.opts.DisableKeyChoice && firstRight-1 > lastLeft {
		sep = firstRight - 1
	}

	// StabSet': elements of either half newly stabbed by sep get their
	// flags turned to yes and move to the parent's stab list.
	var stabSet []stabEntry
	collect := func(d []byte) {
		cnt := leafCount(d)
		for i := 0; i < cnt; i++ {
			el, fl := leafElem(d, i)
			if fl&xmldoc.FlagInStabList != 0 {
				continue
			}
			if el.Start <= sep && sep <= el.End {
				setLeafFlags(d, i, fl|xmldoc.FlagInStabList)
				stabSet = append(stabSet, stabEntry{
					key: sep, start: el.Start, end: el.End, ref: el.Ref, level: el.Level,
				})
			}
		}
	}
	collect(data)
	collect(newData)

	if err := t.unpin(newID, true); err != nil {
		t.unpin(id, true)
		return nil, err
	}
	if err := t.unpin(id, true); err != nil {
		return nil, err
	}
	return &splitResult{key: sep, child: newID, stabSet: stabSet}, nil
}

// insertInternalEntry applies a child split's promotion to the pinned
// internal node at child index ci, consuming the pin. It splits the node —
// and its stab-list chain — on overflow (I32).
func (t *Tree) insertInternalEntry(id pagefile.PageID, data []byte, ci int, res *splitResult) (*splitResult, error) {
	m := intCount(data)
	if m < t.intCap {
		insertIntEntry(data, ci, m, res.key, res.child)
		// Existing stab entries now primarily stabbed by the new key move
		// into its PSL (the successor PSL's stabbed prefix).
		if err := t.rekeyStabbedPrefix(data, ci); err != nil {
			t.unpin(id, true)
			return nil, err
		}
		rejects, err := t.stabReinsertAll(data, res.stabSet)
		if err != nil {
			t.unpin(id, true)
			return nil, err
		}
		if len(rejects) > 0 {
			t.unpin(id, true)
			return nil, fmt.Errorf("%w: %d StabSet' elements not stabbed at node %d", ErrCorrupt, len(rejects), id)
		}
		return nil, t.unpin(id, true)
	}

	// Gather entries with the new one in place.
	entries := make([]intEntryMem, 0, m+1)
	for i := 0; i < m; i++ {
		entries = append(entries, readIntEntry(data, i))
	}
	newEntry := intEntryMem{key: res.key, child: res.child, psl: pagefile.InvalidPage}
	entries = append(entries[:ci], append([]intEntryMem{newEntry}, entries[ci:]...)...)

	total := m + 1
	mid := total / 2
	promoted := entries[mid]
	midKey := promoted.key

	// Extract PSL(midKey) before rewriting the node: those elements rise
	// with the promoted key. When the promoted key is the brand-new one its
	// PSL is empty and the directory has nothing to extract.
	var outSet []stabEntry
	if j := keyIndex(data, midKey); j >= 0 {
		ext, err := t.extractPSL(data, j)
		if err != nil {
			t.unpin(id, true)
			return nil, err
		}
		outSet = append(outSet, ext...)
	}

	// Allocate the right node and lay out both halves.
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(id, true)
		return nil, err
	}
	initInternal(newData)
	child0 := intChild(data, 0)

	setIntCount(data, mid)
	setIntChild(data, 0, child0)
	for i := 0; i < mid; i++ {
		writeIntEntry(data, i, entries[i])
	}
	right := entries[mid+1:]
	setIntCount(newData, len(right))
	setIntChild(newData, 0, promoted.child)
	for i, en := range right {
		writeIntEntry(newData, i, en)
	}

	// Split the stab chain between the halves (Figure 5(a)).
	if err := t.splitStabChain(data, newData, midKey); err != nil {
		t.unpin(newID, true)
		t.unpin(id, true)
		return nil, err
	}

	// Route the incoming StabSet' to the half holding the incoming key, and
	// re-key that half's entries now primarily stabbed by it. If the
	// incoming key itself was promoted, its stab set rises with it.
	if res.key == midKey {
		outSet = append(outSet, res.stabSet...)
	} else {
		half := data
		if res.key > midKey {
			half = newData
		}
		if ki := keyIndex(half, res.key); ki >= 0 {
			if err := t.rekeyStabbedPrefix(half, ki); err != nil {
				t.unpin(newID, true)
				t.unpin(id, true)
				return nil, err
			}
		}
		rejects, err := t.stabReinsertAll(half, res.stabSet)
		if err != nil {
			t.unpin(newID, true)
			t.unpin(id, true)
			return nil, err
		}
		if len(rejects) > 0 {
			t.unpin(newID, true)
			t.unpin(id, true)
			return nil, fmt.Errorf("%w: %d StabSet' elements lost in split", ErrCorrupt, len(rejects))
		}
	}

	// Elements of either half stabbed by the promoted key rise as well
	// (Figure 5(b)): the stabbed prefixes of the remaining PSLs.
	for _, half := range [][]byte{data, newData} {
		ext, err := t.extractStabbedBy(half, midKey)
		if err != nil {
			t.unpin(newID, true)
			t.unpin(id, true)
			return nil, err
		}
		outSet = append(outSet, ext...)
	}

	if err := t.unpin(newID, true); err != nil {
		t.unpin(id, true)
		return nil, err
	}
	if err := t.unpin(id, true); err != nil {
		return nil, err
	}
	return &splitResult{key: midKey, child: newID, stabSet: outSet}, nil
}
