package core

// Algorithm 1 (§4.1): insertion with stab-list maintenance. On the way
// down, the new element joins the stab list of the highest internal node
// that stabs it (step I1). Leaf overflow splits the page and gives up a new
// separator key together with StabSet', the elements newly stabbed by it
// (step I22); internal overflow splits the node and its stab-list chain and
// likewise gives up the promoted key with the elements it stabs (step I32,
// Figure 5). Split propagation that reaches the root grows the tree (I4).
//
// Concurrency: the writer holds wlatch throughout and takes per-page
// exclusive latches only around mutations of reader-reachable pages. A
// node's latch covers its stab chain, so every stab-mutating step (I1
// homing, re-keying, chain splits) runs inside the owning node's latch
// bracket; stab pages themselves are never latched. Splits follow the
// B-link order: the new right sibling — page, entries, stab chain — is
// fully populated while unreachable, then one latched write shrinks the
// left node and installs its right link and high key.

import (
	"fmt"

	"xrtree/internal/obs"
	"xrtree/internal/pagefile"
	"xrtree/internal/xmldoc"
)

// splitResult carries a split's promotion to the parent level.
type splitResult struct {
	key     uint32
	child   pagefile.PageID
	stabSet []stabEntry // elements stabbed by key, to join the parent's SL
}

// intEntryMem is the in-memory form of one internal key entry.
type intEntryMem struct {
	key   uint32
	child pagefile.PageID
	ps    uint32
	pe    uint32
	psl   pagefile.PageID
}

func readIntEntry(data []byte, i int) intEntryMem {
	b := intEntry(data, i)
	return intEntryMem{
		key:   getU32(b[0:]),
		child: pagefile.PageID(getU32(b[4:])),
		ps:    getU32(b[8:]),
		pe:    getU32(b[12:]),
		psl:   pagefile.PageID(getU32(b[16:])),
	}
}

func writeIntEntry(data []byte, i int, e intEntryMem) {
	b := intEntry(data, i)
	putU32(b[0:], e.key)
	putU32(b[4:], uint32(e.child))
	putU32(b[8:], e.ps)
	putU32(b[12:], e.pe)
	putU32(b[16:], uint32(e.psl))
}

// Insert adds e to the tree, maintaining every stab-list invariant.
func (t *Tree) Insert(e xmldoc.Element) (err error) {
	if e.DocID != t.docID {
		return fmt.Errorf("xrtree: insert of DocID %d into tree for DocID %d", e.DocID, t.docID)
	}
	if e.End <= e.Start {
		return fmt.Errorf("xrtree: degenerate region %v", e)
	}
	t.wlatch.Lock()
	defer t.wlatch.Unlock()
	defer t.endStabMove()
	defer t.debugPinBalance()()
	commit := t.beginTx()
	defer commit(&err)
	root, h := t.loadRoot()
	t.c.Emit(obs.EvIndexDescend, int64(h))
	res, err := t.insertInto(root, h, e, false)
	if err != nil {
		return err
	}
	if res != nil {
		// I4: grow the tree with a new root. The new root — including its
		// stab list — is built while unreachable and published by setRoot;
		// readers still descending from the old root reach the new right
		// half through its right link.
		newRootID, data, err := t.fetchNew()
		if err != nil {
			return err
		}
		initInternal(data)
		setIntCount(data, 1)
		setIntChild(data, 0, root)
		writeIntEntry(data, 0, intEntryMem{key: res.key, child: res.child, psl: pagefile.InvalidPage})
		rejects, err := t.stabReinsertAll(data, res.stabSet)
		if err != nil {
			t.unpin(newRootID, true)
			return err
		}
		if len(rejects) > 0 {
			t.unpin(newRootID, true)
			return fmt.Errorf("%w: %d StabSet' elements not stabbed by new root key", ErrCorrupt, len(rejects))
		}
		if err := t.unpin(newRootID, true); err != nil {
			return err
		}
		t.setRoot(newRootID, h+1)
	}
	t.count.Add(1)
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.debugPostMutation()
}

// insertInto inserts e under page id at the given height (1 = leaf). homed
// reports whether e already joined a stab list higher up. The writer's
// descent reads pages without latching (writers are serialized; readers
// only copy); mutations happen inside per-page latch brackets below.
func (t *Tree) insertInto(id pagefile.PageID, height int, e xmldoc.Element, homed bool) (*splitResult, error) {
	data, err := t.fetch(id)
	if err != nil {
		return nil, err
	}
	if height == 1 {
		if !isLeaf(data) {
			t.unpin(id, false)
			return nil, fmt.Errorf("%w: expected leaf at page %d", ErrCorrupt, id)
		}
		return t.insertLeaf(id, data, e, homed)
	}

	dirty := false
	// I1: home e in the highest stabbing node. The stab-chain mutation is
	// covered by the node's exclusive latch.
	if !homed && primaryKeyIndex(data, e.Start, e.End) >= 0 {
		t.pl.Lock(id)
		err := t.stabInsertElement(data, e)
		t.pl.Unlock(id)
		if err != nil {
			t.unpin(id, true)
			return nil, err
		}
		homed = true
		dirty = true
	}
	ci := intSearch(data, e.Start)
	child := intChild(data, ci)
	res, err := t.insertInto(child, height-1, e, homed)
	if err != nil {
		t.unpin(id, dirty)
		return nil, err
	}
	if res == nil {
		return nil, t.unpin(id, dirty)
	}
	return t.insertInternalEntry(id, data, ci, res)
}

// insertLeaf inserts e into a pinned leaf, consuming the pin. The element's
// InStabList flag mirrors whether it was homed above (Definition 4.6).
func (t *Tree) insertLeaf(id pagefile.PageID, data []byte, e xmldoc.Element, homed bool) (*splitResult, error) {
	n := leafCount(data)
	pos := leafSearch(data, e.Start)
	if pos < n && leafKey(data, pos) == e.Start {
		t.unpin(id, false)
		return nil, fmt.Errorf("%w: start %d", ErrDuplicate, e.Start)
	}
	var flags uint16
	if homed {
		flags = xmldoc.FlagInStabList
	}
	if n < t.leafCap {
		t.pl.Lock(id)
		insertLeafEntry(data, pos, n, e, flags)
		t.pl.Unlock(id)
		return nil, t.unpin(id, true)
	}

	// I22: split the leaf. The new right page is populated — upper half,
	// chain pointers, inherited high key — while unreachable.
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(id, false)
		return nil, err
	}
	initLeaf(newData)
	mid := n / 2
	moved := n - mid
	copy(newData[leafHeader:], data[leafHeader+mid*xmldoc.EncodedSize:leafHeader+n*xmldoc.EncodedSize])
	setLeafCount(newData, moved)
	oldNext := leafNext(data)
	setLeafNext(newData, oldNext)
	setLeafPrev(newData, id)
	setLeafHigh(newData, leafHigh(data))

	// The split raises StabSet' flags on elements that are not yet in the
	// parent's chain: a stab move is now in flight until the enclosing
	// Insert commits.
	t.beginStabMove()

	// The latched split write: shrink the left half, place e, choose the
	// separator, raise the StabSet' flags in both halves, and install the
	// right link and high key last — a reader sees the pre-split page or a
	// left half whose high key routes keys ≥ sep through the new link. The
	// right half is still private here, so its mutations ride inside the
	// same bracket without a latch of their own.
	t.pl.Lock(id)
	setLeafCount(data, mid)
	if e.Start < leafKey(newData, 0) {
		insertLeafEntry(data, pos, mid, e, flags)
	} else {
		npos := leafSearch(newData, e.Start)
		insertLeafEntry(newData, npos, moved, e, flags)
	}

	// Choose the separator (§3.2 key choice): prefer firstRight−1, which
	// avoids stabbing the right half's first element, when it still
	// separates the halves.
	firstRight := leafKey(newData, 0)
	lastLeft := leafKey(data, leafCount(data)-1)
	sep := firstRight
	if !t.opts.DisableKeyChoice && firstRight-1 > lastLeft {
		sep = firstRight - 1
	}

	// StabSet': elements of either half newly stabbed by sep get their
	// flags turned to yes and move to the parent's stab list.
	var stabSet []stabEntry
	collect := func(d []byte) {
		cnt := leafCount(d)
		for i := 0; i < cnt; i++ {
			el, fl := leafElem(d, i)
			if fl&xmldoc.FlagInStabList != 0 {
				continue
			}
			if el.Start <= sep && sep <= el.End {
				setLeafFlags(d, i, fl|xmldoc.FlagInStabList)
				stabSet = append(stabSet, stabEntry{
					key: sep, start: el.Start, end: el.End, ref: el.Ref, level: el.Level,
				})
			}
		}
	}
	collect(data)
	collect(newData)
	setLeafNext(data, newID)
	setLeafHigh(data, sep)
	t.pl.Unlock(id)

	// Fix the old right neighbor's back pointer (scans only follow next,
	// so this can be its own latched write after the split is visible).
	if oldNext != pagefile.InvalidPage {
		nd, err := t.fetch(oldNext)
		if err == nil {
			t.pl.Lock(oldNext)
			setLeafPrev(nd, newID)
			t.pl.Unlock(oldNext)
			err = t.unpin(oldNext, true)
		}
		if err != nil {
			t.unpin(newID, true)
			t.unpin(id, true)
			return nil, err
		}
	}

	if err := t.unpin(newID, true); err != nil {
		t.unpin(id, true)
		return nil, err
	}
	if err := t.unpin(id, true); err != nil {
		return nil, err
	}
	return &splitResult{key: sep, child: newID, stabSet: stabSet}, nil
}

// insertInternalEntry applies a child split's promotion to the pinned
// internal node at child index ci, consuming the pin. It splits the node —
// and its stab-list chain — on overflow (I32). The node's latch is held
// for the whole mutation: the directory rewrite and every stab-chain
// movement are invisible to readers until the latch drops, so a reader
// never observes a stab list mid-migration.
func (t *Tree) insertInternalEntry(id pagefile.PageID, data []byte, ci int, res *splitResult) (*splitResult, error) {
	m := intCount(data)
	if m < t.intCap {
		t.pl.Lock(id)
		insertIntEntry(data, ci, m, res.key, res.child)
		// Existing stab entries now primarily stabbed by the new key move
		// into its PSL (the successor PSL's stabbed prefix).
		var rejects []stabEntry
		err := t.rekeyStabbedPrefix(data, ci)
		if err == nil {
			rejects, err = t.stabReinsertAll(data, res.stabSet)
		}
		t.pl.Unlock(id)
		if err != nil {
			t.unpin(id, true)
			return nil, err
		}
		if len(rejects) > 0 {
			t.unpin(id, true)
			return nil, fmt.Errorf("%w: %d StabSet' elements not stabbed at node %d", ErrCorrupt, len(rejects), id)
		}
		return nil, t.unpin(id, true)
	}

	// Gather entries with the new one in place (reads only, no latch yet).
	entries := make([]intEntryMem, 0, m+1)
	for i := 0; i < m; i++ {
		entries = append(entries, readIntEntry(data, i))
	}
	newEntry := intEntryMem{key: res.key, child: res.child, psl: pagefile.InvalidPage}
	entries = append(entries[:ci], append([]intEntryMem{newEntry}, entries[ci:]...)...)

	total := m + 1
	mid := total / 2
	promoted := entries[mid]
	midKey := promoted.key

	// Allocate the right node before latching so the allocation error path
	// needs no unlock.
	newID, newData, err := t.fetchNew()
	if err != nil {
		t.unpin(id, true)
		return nil, err
	}
	initInternal(newData)
	child0 := intChild(data, 0)

	// Splitting the node moves chain content between halves and extracts
	// the promoted key's elements for the parent: a stab move in flight.
	t.beginStabMove()
	t.pl.Lock(id)
	outSet, lerr := func() ([]stabEntry, error) {
		// Extract PSL(midKey) before rewriting the node: those elements
		// rise with the promoted key. When the promoted key is the
		// brand-new one its PSL is empty and there is nothing to extract.
		var outSet []stabEntry
		if j := keyIndex(data, midKey); j >= 0 {
			ext, err := t.extractPSL(data, j)
			if err != nil {
				return nil, err
			}
			outSet = append(outSet, ext...)
		}

		// Lay out both halves; the right node inherits the left's link and
		// high key, the left's new high key is the promoted separator.
		right := entries[mid+1:]
		setIntCount(newData, len(right))
		setIntChild(newData, 0, promoted.child)
		for i, en := range right {
			writeIntEntry(newData, i, en)
		}
		setIntNext(newData, intNext(data))
		setIntHigh(newData, intHigh(data))

		setIntCount(data, mid)
		setIntChild(data, 0, child0)
		for i := 0; i < mid; i++ {
			writeIntEntry(data, i, entries[i])
		}
		setIntNext(data, newID)
		setIntHigh(data, midKey)

		// Split the stab chain between the halves (Figure 5(a)).
		if err := t.splitStabChain(data, newData, midKey); err != nil {
			return nil, err
		}

		// Route the incoming StabSet' to the half holding the incoming
		// key, and re-key that half's entries now primarily stabbed by it.
		// If the incoming key itself was promoted, its stab set rises.
		if res.key == midKey {
			outSet = append(outSet, res.stabSet...)
		} else {
			half := data
			if res.key > midKey {
				half = newData
			}
			if ki := keyIndex(half, res.key); ki >= 0 {
				if err := t.rekeyStabbedPrefix(half, ki); err != nil {
					return nil, err
				}
			}
			rejects, err := t.stabReinsertAll(half, res.stabSet)
			if err != nil {
				return nil, err
			}
			if len(rejects) > 0 {
				return nil, fmt.Errorf("%w: %d StabSet' elements lost in split", ErrCorrupt, len(rejects))
			}
		}

		// Elements of either half stabbed by the promoted key rise as well
		// (Figure 5(b)): the stabbed prefixes of the remaining PSLs.
		for _, half := range [][]byte{data, newData} {
			ext, err := t.extractStabbedBy(half, midKey)
			if err != nil {
				return nil, err
			}
			outSet = append(outSet, ext...)
		}
		return outSet, nil
	}()
	t.pl.Unlock(id)
	if lerr != nil {
		t.unpin(newID, true)
		t.unpin(id, true)
		return nil, lerr
	}

	if err := t.unpin(newID, true); err != nil {
		t.unpin(id, true)
		return nil, err
	}
	if err := t.unpin(id, true); err != nil {
		return nil, err
	}
	return &splitResult{key: midKey, child: newID, stabSet: outSet}, nil
}
